GO ?= go

.PHONY: check build vet test race bench faultcheck

## check: full gate — build, vet, race-enabled tests, seeded fault matrix
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...
	$(MAKE) faultcheck

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## faultcheck: seeded fault-matrix tests under the race detector — the
## self-healing flush pipeline, crash-consistent superblock, and replica
## resume paths driven by the fault-injecting device.
faultcheck:
	$(GO) test -race -count=1 -run 'TestFaultMatrix|TestFault|TestTorn|TestScrub|TestReplica' \
		./internal/core/ ./internal/storage/ ./internal/objstore/ ./internal/netback/

## bench: run the paper-claim benchmarks (also refreshes BENCH_pipeline.json
## and BENCH_faults.json)
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
