package faas

import (
	"fmt"
	"testing"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

type rig struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	store *core.StoreBackend
	mem   *core.MemoryBackend
	objs  *objstore.Store
	rt    *Runtime
}

func newRig(t *testing.T) *rig {
	t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	objs := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	store := core.NewStoreBackend(objs, k.Mem, clock)
	mem := core.NewMemoryBackend(k.Mem, 8)
	rt := NewRuntime(o, store, mem)
	rt.RuntimePages = 40 // scaled for tests
	rt.InitLoops = 100_000
	return &rig{clock: clock, k: k, o: o, store: store, mem: mem, objs: objs, rt: rt}
}

func TestColdStartProducesResult(t *testing.T) {
	r := newRig(t)
	got, err := r.rt.ColdStart(21)
	if err != nil {
		t.Fatal(err)
	}
	if want := r.rt.Expected(21); got != want {
		t.Fatalf("cold start result = %d, want %d", got, want)
	}
}

func TestDeployAndWarmInvoke(t *testing.T) {
	r := newRig(t)
	if _, err := r.rt.Deploy("hello", []byte("cfg")); err != nil {
		t.Fatal(err)
	}
	got, bd, err := r.rt.Invoke("hello", 100, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := r.rt.Expected(100); got != want {
		t.Fatalf("warm result = %d, want %d", got, want)
	}
	if bd.Total <= 0 {
		t.Fatal("restore breakdown empty")
	}
	if _, _, err := r.rt.Invoke("nope", 1, core.RestoreOpts{}); err != ErrNoFunction {
		t.Fatalf("missing function err = %v", err)
	}
}

func TestScaleOutRepeatedRestores(t *testing.T) {
	r := newRig(t)
	r.rt.Deploy("scale", nil)
	// Scaling out is just restoring the same checkpoint repeatedly.
	for i := 0; i < 5; i++ {
		got, _, err := r.rt.Invoke("scale", uint64(i+1), core.RestoreOpts{Lazy: true})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if want := r.rt.Expected(uint64(i + 1)); got != want {
			t.Fatalf("instance %d result = %d, want %d", i, got, want)
		}
	}
}

func TestDensityFunctionsShareRuntimePages(t *testing.T) {
	r := newRig(t)
	if _, err := r.rt.BuildBase(); err != nil {
		t.Fatal(err)
	}
	baseBlocks := r.objs.Stats().Blocks

	perFn := make([]int, 0, 6)
	for i := 0; i < 6; i++ {
		before := r.objs.Stats().Blocks
		if _, err := r.rt.Deploy(fmt.Sprintf("fn-%d", i), []byte(fmt.Sprintf("config-%d", i))); err != nil {
			t.Fatal(err)
		}
		perFn = append(perFn, r.objs.Stats().Blocks-before)
	}
	// Each function's delta must be tiny next to the runtime image.
	for i, d := range perFn {
		if d > baseBlocks/4 {
			t.Fatalf("function %d added %d blocks (runtime image is %d): no dedup", i, d, baseBlocks)
		}
	}
	// Dedup hits prove the sharing.
	if r.objs.Stats().DedupHits == 0 {
		t.Fatal("no dedup hits across function images")
	}
}

func TestWarmStartBeatsColdStart(t *testing.T) {
	r := newRig(t)
	r.rt.Deploy("timed", nil)

	// Cold start cost: virtual time for boot + run.
	coldStart := r.clock.Now()
	if _, err := r.rt.ColdStart(5); err != nil {
		t.Fatal(err)
	}
	coldTime := r.clock.Now() - coldStart

	// Warm start: restore latency only (the run cost is identical).
	_, bd, err := r.rt.Invoke("timed", 5, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Total >= coldTime {
		t.Fatalf("warm restore %v not below cold start %v", bd.Total, coldTime)
	}
}

func TestInvokeFromDiskIncludesStoreRead(t *testing.T) {
	r := newRig(t)
	r.rt.Deploy("disk", nil)
	// Force the disk path by dropping the memory backend's images:
	// detach memory from the function group.
	fn, _ := r.rt.Function("disk")
	if err := r.o.Detach(fn.Group, "memory"); err != nil {
		t.Skipf("memory backend not attached: %v", err)
	}
	_, bd, err := r.rt.Invoke("disk", 9, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if bd.ObjectStoreRead <= 0 {
		t.Fatal("disk invoke must pay the object store read")
	}
}

func TestRestoredInstanceResumesMidSpin(t *testing.T) {
	// The function parks mid-execution (PC inside the ready loop);
	// restore must resume exactly there — CPU state fidelity.
	r := newRig(t)
	r.rt.Deploy("spin", nil)
	fn, _ := r.rt.Function("spin")
	ng, _, err := r.o.Restore(fn.Group, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	p, _ := r.k.Process(ng.PIDs()[0])
	pc := p.Threads[0].Regs.PC
	if pc == 0x0040_0000 {
		t.Fatal("restored PC is at program start, not mid-spin")
	}
	if p.Threads[0].Regs.GPR[2] != uint64(r.rt.InitLoops) {
		t.Fatal("init-loop register state lost")
	}
}

func TestCooperativeWarmupSharesFrames(t *testing.T) {
	// The paper: instances of the same function share unmodified pages
	// via COW, so a page faulted in by one warms the others. With the
	// memory backend, restored instances COW-share the image's frames
	// directly: N instances cost ~zero additional resident frames.
	r := newRig(t)
	r.rt.Deploy("shared", nil)
	fn, _ := r.rt.Function("shared")

	img, _, err := r.mem.Load(fn.Group.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	resident := r.k.Mem.Resident()
	groups := make([]*core.Group, 0, 4)
	for i := 0; i < 4; i++ {
		ng, bd, err := r.o.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if bd.Shared == 0 {
			t.Fatalf("instance %d shared no frames (restored via %v)", i, bd)
		}
		groups = append(groups, ng)
	}
	if grew := r.k.Mem.Resident() - resident; grew > 8 {
		t.Fatalf("4 warm instances allocated %d frames — frames not shared", grew)
	}
	// Each instance still computes independently (COW on write).
	for i, ng := range groups {
		p, _ := r.k.Process(ng.PIDs()[0])
		res, err := r.rt.RunInstance(p, uint64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		if want := r.rt.Expected(uint64(i + 1)); res != want {
			t.Fatalf("instance %d result = %d, want %d", i, res, want)
		}
	}
}
