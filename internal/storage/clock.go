// Package storage provides the simulated storage substrate for Aurora:
// a deterministic virtual clock, parameterized block-device models
// (Optane-class NVMe, NVDIMM, SATA SSD, HDD, DRAM), striped device
// arrays, and the accounting primitives used to produce the modeled
// microsecond figures reported by the experiment harness.
//
// All device models move real bytes (reads and writes land in and come
// from actual buffers); only the *cost* of each operation is virtual.
// Costs are charged to a Clock, which the SLS orchestrator samples to
// produce stop-time and restore-time breakdowns comparable in shape to
// the paper's Tables 3 and 4.
package storage

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Clock is a deterministic virtual clock. It counts virtual nanoseconds
// and is advanced explicitly by device models and by the kernel's cost
// accounting. A Clock is safe for concurrent use.
type Clock struct {
	now atomic.Int64 // virtual nanoseconds since boot
}

// NewClock returns a clock starting at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration { return time.Duration(c.now.Load()) }

// Advance moves the clock forward by d and returns the new time.
// Negative advances are ignored so cost formulas can never move the
// clock backwards.
func (c *Clock) Advance(d time.Duration) time.Duration {
	if d < 0 {
		d = 0
	}
	return time.Duration(c.now.Add(int64(d)))
}

// Set forces the clock to an absolute time. It is intended for tests
// and for restoring a checkpointed clock; t must not be negative.
func (c *Clock) Set(t time.Duration) {
	if t < 0 {
		t = 0
	}
	c.now.Store(int64(t))
}

// AdvanceTo moves the clock forward to absolute time t if t is in the
// future, and leaves it alone otherwise. This is the merge point for
// work that ran on a detached lane: the foreground timeline absorbs the
// lane's finish time without ever moving backwards.
func (c *Clock) AdvanceTo(t time.Duration) time.Duration {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return time.Duration(cur)
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return t
		}
	}
}

// Lane returns a new clock seeded at c's current time. Lanes model
// device time that overlaps the foreground timeline: a background
// flusher charges its I/O to a lane so the application's virtual clock
// keeps running during the flush, then (if a caller wants synchronous
// semantics) merges the lane back with AdvanceTo.
func (c *Clock) Lane() *Clock {
	l := NewClock()
	l.Set(c.Now())
	return l
}

// Stopwatch measures an interval of virtual time.
type Stopwatch struct {
	clock *Clock
	start time.Duration
}

// Watch starts a stopwatch at the current virtual time.
func (c *Clock) Watch() Stopwatch { return Stopwatch{clock: c, start: c.Now()} }

// Elapsed reports the virtual time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration { return s.clock.Now() - s.start }

// Micros formats a duration the way the paper's tables do: fractional
// microseconds with one decimal digit.
func Micros(d time.Duration) string {
	return fmt.Sprintf("%.1f µs", float64(d.Nanoseconds())/1e3)
}
