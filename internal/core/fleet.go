package core

import (
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"aurora/internal/storage"
)

// This file implements the fleet runtime: the shared, sharded worker
// pool behind every group's flush pipeline. The paper's FaaS claim
// (Table 4) needs thousands of concurrent persistence groups; giving
// each group its own goroutine stack (the pre-fleet design) costs two
// idle goroutines and a channel per group and makes 10k groups 20k
// goroutines. The fleet replaces that with a fixed pool:
//
//   - groups are placed onto shards by consistent hashing on the group
//     ID (virtual nodes keep placement balanced and stable as the
//     shard count changes);
//   - each shard runs a small set of worker goroutines that pull
//     dispatchable flushers from an event-driven run queue (workers
//     sleep on a condition variable; an enqueue wakes exactly one);
//   - each worker owns a persistent clock lane — the shard's flush
//     lane — so back-to-back flushes on a busy worker model device
//     queueing in virtual time without inflating the foreground
//     timeline; and
//   - a bounded global memory budget caps the frame bytes pinned by
//     queued-but-unflushed images across the whole fleet, so a
//     checkpoint storm cannot hold an unbounded amount of captured
//     memory alive while the devices catch up.
//
// Per-group ordering semantics are unchanged from the per-group
// pipeline: a flusher's in-flight jobs are bounded by its credit count
// (Orchestrator.FlushWorkers), epochs retire strictly in order, and
// Enqueue still exerts backpressure through the same admission window.

// Fleet sizing defaults, overridable per Orchestrator.
const (
	defaultFleetShards  = 4
	defaultShardWorkers = 2
	fleetVirtualNodes   = 32 // ring points per shard
)

// fleet is the orchestrator-wide shard runtime.
type fleet struct {
	o      *Orchestrator
	shards []*fleetShard
	ring   []ringPoint // sorted by hash
	wg     sync.WaitGroup

	dispatches atomic.Int64

	// Global memory budget over queued image frame bytes. Guarded by
	// budgetMu; budgetCond wakes Enqueue callers when bytes come back.
	budgetMu     sync.Mutex
	budgetCond   *sync.Cond
	memBudget    int64 // 0 = unbounded
	memInUse     int64
	memPeak      int64
	budgetStalls int64
	closed       bool
}

// ringPoint is one virtual node on the consistent-hash ring.
type ringPoint struct {
	hash  uint64
	shard int
}

// fleetShard is one shard: a run queue of flushers with dispatchable
// work, drained by the shard's workers.
type fleetShard struct {
	id int

	mu     sync.Mutex
	cond   *sync.Cond
	runq   []*flusher
	queued map[*flusher]bool
	closed bool

	placements atomic.Int64 // flushers placed on this shard, cumulative
}

func newFleet(o *Orchestrator) *fleet {
	shards := o.FleetShards
	if shards <= 0 {
		shards = defaultFleetShards
	}
	workers := o.FleetWorkersPerShard
	if workers <= 0 {
		workers = defaultShardWorkers
	}
	fl := &fleet{o: o, memBudget: o.FleetMemBudget}
	fl.budgetCond = sync.NewCond(&fl.budgetMu)
	for i := 0; i < shards; i++ {
		fs := &fleetShard{id: i, queued: make(map[*flusher]bool)}
		fs.cond = sync.NewCond(&fs.mu)
		fl.shards = append(fl.shards, fs)
		for j := 0; j < fleetVirtualNodes; j++ {
			fl.ring = append(fl.ring, ringPoint{hash: vnodeHash(i, j), shard: i})
		}
	}
	sort.Slice(fl.ring, func(i, j int) bool { return fl.ring[i].hash < fl.ring[j].hash })
	for _, fs := range fl.shards {
		for j := 0; j < workers; j++ {
			fl.wg.Add(1)
			go fl.worker(fs)
		}
	}
	return fl
}

// vnodeHash hashes one (shard, vnode) pair onto the ring.
func vnodeHash(shard, vnode int) uint64 {
	h := fnv.New64a()
	var buf [16]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(shard >> (8 * i))
		buf[8+i] = byte(vnode >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// groupHash hashes a group ID onto the ring.
func groupHash(group uint64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(group >> (8 * i))
	}
	h.Write(buf[:])
	return h.Sum64()
}

// place maps a group onto its shard: the first virtual node at or
// after the group's hash, wrapping around the ring.
func (fl *fleet) place(group uint64) *fleetShard {
	gh := groupHash(group)
	i := sort.Search(len(fl.ring), func(i int) bool { return fl.ring[i].hash >= gh })
	if i == len(fl.ring) {
		i = 0
	}
	fs := fl.shards[fl.ring[i].shard]
	fs.placements.Add(1)
	return fs
}

// wake marks a flusher dispatchable on its shard. After shutdown the
// job runs inline on the caller — correctness over concurrency once
// the runtime is gone.
func (fs *fleetShard) wake(f *flusher) {
	fs.mu.Lock()
	if fs.closed {
		fs.mu.Unlock()
		f.dispatch(nil)
		return
	}
	if !fs.queued[f] {
		fs.queued[f] = true
		fs.runq = append(fs.runq, f)
		fs.cond.Signal()
	}
	fs.mu.Unlock()
}

// worker is one shard worker: it owns a persistent flush lane and
// drains the shard's run queue until shutdown.
func (fl *fleet) worker(fs *fleetShard) {
	defer fl.wg.Done()
	lane := fl.o.K.Clock.Lane()
	for {
		fs.mu.Lock()
		for len(fs.runq) == 0 && !fs.closed {
			fs.cond.Wait()
		}
		if len(fs.runq) == 0 {
			// Closed and drained.
			fs.mu.Unlock()
			return
		}
		f := fs.runq[0]
		fs.runq = fs.runq[1:]
		delete(fs.queued, f)
		fs.mu.Unlock()
		fl.dispatches.Add(1)
		f.dispatch(lane)
	}
}

// acquireBudget charges n bytes of captured frame memory against the
// global budget, blocking while the fleet is over budget. To guarantee
// progress an acquisition is always admitted when nothing else is
// charged, even if it alone exceeds the budget. It returns the bytes
// actually charged (0 when the budget is unbounded or n is 0), which
// the caller must hand back through releaseBudget.
func (fl *fleet) acquireBudget(n int64) int64 {
	if fl.memBudget <= 0 || n <= 0 {
		return 0
	}
	fl.budgetMu.Lock()
	defer fl.budgetMu.Unlock()
	for fl.memInUse > 0 && fl.memInUse+n > fl.memBudget && !fl.closed {
		fl.budgetStalls++
		fl.budgetCond.Wait()
	}
	fl.memInUse += n
	if fl.memInUse > fl.memPeak {
		fl.memPeak = fl.memInUse
	}
	return n
}

// releaseBudget returns charged bytes to the budget.
func (fl *fleet) releaseBudget(n int64) {
	if n <= 0 {
		return
	}
	fl.budgetMu.Lock()
	fl.memInUse -= n
	fl.budgetMu.Unlock()
	fl.budgetCond.Broadcast()
}

// shutdown stops the shard workers after they drain their run queues,
// and wakes anything blocked on the memory budget.
func (fl *fleet) shutdown() {
	for _, fs := range fl.shards {
		fs.mu.Lock()
		fs.closed = true
		fs.cond.Broadcast()
		fs.mu.Unlock()
	}
	fl.budgetMu.Lock()
	fl.closed = true
	fl.budgetMu.Unlock()
	fl.budgetCond.Broadcast()
	fl.wg.Wait()
}

// FleetStats is the externally visible state of the shard runtime
// (`sls fleet`, the fleet bench harness).
type FleetStats struct {
	Shards          int
	WorkersPerShard int
	Placements      []int // flushers placed per shard, cumulative
	Dispatches      int64 // jobs handed to shard workers
	MemBudget       int64 // configured budget (0 = unbounded)
	MemInUse        int64 // frame bytes currently charged
	MemPeak         int64 // high-water mark of charged bytes
	BudgetStalls    int64 // Enqueue waits caused by the budget
}

// FleetStats snapshots the shard runtime. All zero values when no
// group has checkpointed yet (the runtime starts lazily).
func (o *Orchestrator) FleetStats() FleetStats {
	o.fleetMu.Lock()
	fl := o.fleet
	o.fleetMu.Unlock()
	if fl == nil {
		return FleetStats{}
	}
	st := FleetStats{
		Shards:     len(fl.shards),
		Dispatches: fl.dispatches.Load(),
	}
	if w := o.FleetWorkersPerShard; w > 0 {
		st.WorkersPerShard = w
	} else {
		st.WorkersPerShard = defaultShardWorkers
	}
	for _, fs := range fl.shards {
		st.Placements = append(st.Placements, int(fs.placements.Load()))
	}
	fl.budgetMu.Lock()
	st.MemBudget = fl.memBudget
	st.MemInUse = fl.memInUse
	st.MemPeak = fl.memPeak
	st.BudgetStalls = fl.budgetStalls
	fl.budgetMu.Unlock()
	return st
}

// fleetOf returns the orchestrator's shard runtime, starting it on
// first use. fleetMu is a leaf lock: it is never taken with o.mu or
// any group lock held by this code.
func (o *Orchestrator) fleetOf() *fleet {
	o.fleetMu.Lock()
	defer o.fleetMu.Unlock()
	if o.fleet == nil {
		o.fleet = newFleet(o)
	}
	return o.fleet
}

// Close shuts the fleet runtime down: every group's in-flight flushes
// are drained first (failed epochs stay stalled, exactly as Unpersist
// leaves them), then the shard workers exit. Zero goroutines remain
// after Close returns. A closed orchestrator may keep serving
// checkpoints — flushes then run inline on the enqueuing goroutine —
// but the expected sequence is Unpersist/Close at teardown.
func (o *Orchestrator) Close() {
	for _, g := range o.Groups() {
		g.mu.Lock()
		f := g.fl
		g.mu.Unlock()
		if f != nil {
			f.drain()
		}
	}
	o.fleetMu.Lock()
	fl := o.fleet
	o.fleet = nil
	o.fleetMu.Unlock()
	if fl != nil {
		fl.shutdown()
	}
}

// laneFor seeds a detached flush lane from base, or from the kernel
// clock when base is nil (foreground callers).
func (o *Orchestrator) laneFor(base *storage.Clock) *storage.Clock {
	if base == nil {
		base = o.K.Clock
	}
	return base.Lane()
}
