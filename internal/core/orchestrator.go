package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aurora/internal/kernel"
	"aurora/internal/slsfs"
)

// Orchestrator errors.
var (
	ErrNoGroup      = errors.New("core: no such persistence group")
	ErrNotPersisted = errors.New("core: process not in a persistence group")
	ErrNoBackend    = errors.New("core: persistence group has no backend")
)

// Group is a persistence group: a set of processes (a process tree or
// a container) checkpointed together with one or more backends.
type Group struct {
	ID   uint64
	Name string
	// origin is the group's persistent lineage ID: the group ID under
	// which its newest durable images were written. A freshly persisted
	// group is its own origin; a restored group inherits the ID of the
	// image chain it was restored from, so a crashed group that never
	// checkpointed after a restore can still be restored again (the
	// supervisor's crash-loop case) by falling back to the lineage.
	origin uint64

	// ckptMu serializes serialization barriers on the group, so epochs
	// enter the flush pipeline in order.
	ckptMu sync.Mutex

	mu       sync.Mutex
	pids     map[int]bool
	backends []Backend
	epoch    uint64 // epoch currently being built (last barrier)
	durable  uint64 // newest epoch retired by the flush pipeline
	// everFull records whether a full checkpoint exists, so the first
	// checkpoint of a group is always full.
	everFull bool
	last     *Image // newest image (chain head), for rollback/debug
	ckpts    []CheckpointBreakdown
	// fl is the group's background flush pipeline, created on first
	// use; lastQueued is the newest epoch handed to it (epochs
	// checkpointed with SkipFlush are never queued).
	fl         *flusher
	lastQueued uint64
	// excluded memory region count, for diagnostics (sls_mctl).
	excluded int
	// ntSeq is the group's NT-log sequence counter (sls_ntflush).
	ntSeq uint64

	// generation is the group's store generation: the fencing token
	// stamped into every image it checkpoints. It starts at 1 and only
	// moves when a promotion bumps it (see promote.go).
	generation uint64
	// fencedBy/fenceFloor record that a flush was rejected by a newer
	// generation: this group is a stale primary that was superseded
	// while partitioned. A fenced group refuses new checkpoints;
	// fenceFloor is the new primary's contiguous floor at fencing time
	// (epochs above it are divergent and must be quarantined).
	fencedBy   uint64
	fenceFloor uint64

	// originEpoch is the epoch of the image a restored group came from:
	// the lineage anchor its crash-loop fallback restores would target.
	// Space reclamation must never drop it while this group lives.
	originEpoch uint64

	// quorum is the group's write-quorum policy (see quorum.go). The
	// zero value keeps legacy all-backends durability.
	quorum QuorumPolicy

	// Admission-control counters (guarded by mu): checkpoints shed
	// under space pressure, sheds at the emergency watermark, and the
	// current shed streak (reset by every admitted barrier so the
	// durable frontier keeps advancing under sustained pressure).
	sheds          int64
	emergencySheds int64
	shedStreak     int

	// restorePeers are out-of-band block providers lazy restores may
	// fail over to; sources are the demand-paging sources created by
	// lazy restores of this group (both guarded by mu).
	restorePeers []BlockProvider
	sources      []*lazyPageSource

	// healthMu guards health (per-backend state machine, catch-up
	// queues) and quarantined (epochs that failed restore validation).
	// It is never held across backend I/O and never nested inside mu.
	healthMu    sync.Mutex
	health      map[Backend]*backendHealth
	quarantined map[uint64]string
}

// Origin returns the group's persistent lineage ID (see the field).
func (g *Group) Origin() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.origin
}

// originAnchor returns the lineage a restored group came from and the
// epoch it restored at (0, 0 for a group that was never restored).
func (g *Group) originAnchor() (lineage, epoch uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.origin, g.originEpoch
}

// Sheds reports the checkpoints this group's admission control shed
// under space pressure, and how many of those happened at the
// emergency watermark.
func (g *Group) Sheds() (total, emergency int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.sheds, g.emergencySheds
}

// sourcePins lists the (lineage, epoch) pairs this group's live
// demand-paging sources still read blocks from: reclamation must not
// merge those epochs away while a restore pages against them.
func (g *Group) sourcePins() [][2]uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([][2]uint64, 0, len(g.sources))
	for _, s := range g.sources {
		if s.pinGroup != 0 || s.pinEpoch != 0 {
			out = append(out, [2]uint64{s.pinGroup, s.pinEpoch})
		}
	}
	return out
}

// Epoch returns the group's current checkpoint epoch.
func (g *Group) Epoch() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.epoch
}

// Durable returns the newest epoch flushed to all backends. With the
// background flush pipeline this trails Epoch() while flushes are in
// flight; the two meet after Orchestrator.Sync.
func (g *Group) Durable() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.durable
}

// QueueDepth reports the number of epochs in the group's flush
// pipeline that have not retired yet (queued, flushing, or stalled
// behind a failed flush).
func (g *Group) QueueDepth() int {
	g.mu.Lock()
	f := g.fl
	g.mu.Unlock()
	if f == nil {
		return 0
	}
	return f.depth()
}

// PIDs lists member processes.
func (g *Group) PIDs() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]int, 0, len(g.pids))
	for pid := range g.pids {
		out = append(out, pid)
	}
	sort.Ints(out)
	return out
}

// Breakdowns returns the recorded checkpoint breakdowns.
func (g *Group) Breakdowns() []CheckpointBreakdown {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]CheckpointBreakdown, len(g.ckpts))
	copy(out, g.ckpts)
	return out
}

// LastImage returns the newest in-memory image (nil when none).
func (g *Group) LastImage() *Image {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.last
}

// Generation returns the group's store generation (fencing token).
func (g *Group) Generation() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.generation
}

// Fenced reports whether this group has been fenced off by a newer
// store generation (a promotion elsewhere), and by which generation
// and contiguous floor.
func (g *Group) Fenced() (gen, floor uint64, fenced bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fencedBy, g.fenceFloor, g.fencedBy != 0
}

// markFenced records that a flush of this group was rejected by a
// newer store generation. Idempotent; keeps the highest generation.
func (g *Group) markFenced(gen, floor uint64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if gen > g.fencedBy {
		g.fencedBy, g.fenceFloor = gen, floor
	}
}

// Replicated returns the group's replication frontier. Without a
// quorum policy it is the newest epoch actually present on every
// non-ephemeral backend: it equals Durable() while all backends are
// caught up, and is capped below the oldest epoch still owed to a sick
// or partitioned backend — degraded-mode durability keeps Durable()
// advancing on the healthy peer, but output gated on replication must
// wait for the catch-up queue to drain. Under a QuorumPolicy it is the
// newest epoch held by at least W non-ephemeral backends: a lagging
// minority no longer gates external output, because any future
// promotion elects from a surviving quorum that holds the epoch.
func (g *Group) Replicated() uint64 {
	g.mu.Lock()
	rep := g.durable
	w := g.quorum.W
	backends := make([]Backend, len(g.backends))
	copy(backends, g.backends)
	g.mu.Unlock()
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	var floors []uint64
	for _, b := range backends {
		if b.Ephemeral() {
			continue
		}
		floor := rep
		if h := g.health[b]; h != nil && len(h.pending) > 0 {
			if f := h.pending[0].Epoch - 1; f < floor {
				floor = f
			}
		}
		floors = append(floors, floor)
	}
	if len(floors) == 0 {
		return rep
	}
	if w <= 0 {
		// Legacy: every backend must hold the epoch.
		for _, f := range floors {
			if f < rep {
				rep = f
			}
		}
		return rep
	}
	return quorumFloor(floors, quorumNeed(w, len(floors)))
}

// Orchestrator is the SLS orchestrator: it owns persistence groups,
// maps kernel objects to backends, and implements the kernel's
// GroupResolver so IPC can enforce external consistency.
type Orchestrator struct {
	K  *kernel.Kernel
	FS *slsfs.FS // optional Aurora file system for file-backed state

	mu       sync.Mutex
	groups   map[uint64]*Group
	pidGroup map[int]uint64
	nextID   uint64
	// DefaultFullEvery forces a full checkpoint every N incrementals
	// (0 = only the first checkpoint is full).
	DefaultFullEvery int
	// FlushWorkers and FlushQueueDepth size each group's background
	// flush pipeline (0 = package defaults). The queue depth bounds how
	// many un-retired epochs may pile up before Checkpoint blocks.
	FlushWorkers    int
	FlushQueueDepth int
	// FlushRetries is the number of extra flush attempts (with
	// exponential backoff) before a backend is marked degraded
	// (0 = package default).
	FlushRetries int
	// DownAfter is the number of consecutive failed epochs after which
	// a degraded backend is marked down (0 = package default).
	DownAfter int
	// ShedQueueDepth, when positive, makes Checkpoint shed (skip)
	// barriers while the group's flush pipeline holds at least this
	// many un-retired epochs, instead of blocking the group's resume on
	// the bounded queue (0 = never shed on queue depth).
	ShedQueueDepth int
	// ShedAdmitEvery bounds consecutive sheds: every Nth barrier is
	// admitted even under sustained pressure, so the durable frontier
	// keeps advancing (0 = package default).
	ShedAdmitEvery int

	// FleetShards and FleetWorkersPerShard size the shard runtime that
	// dispatches every group's flushes (0 = package defaults). Groups
	// are placed onto shards by consistent hashing on the group ID;
	// total flush concurrency across the fleet is shards × workers.
	FleetShards          int
	FleetWorkersPerShard int
	// FleetMemBudget bounds the captured frame bytes pinned by
	// queued-but-unflushed images across ALL groups; a checkpoint that
	// would exceed it blocks in Enqueue until flushes complete
	// (0 = unbounded). A single image larger than the whole budget is
	// still admitted when nothing else is charged.
	FleetMemBudget int64

	// fleetMu guards lazy creation of the shard runtime. It is a leaf
	// lock: never held together with o.mu or a group lock.
	fleetMu sync.Mutex
	fleet   *fleet
}

// NewOrchestrator attaches an orchestrator to a kernel and installs
// itself as the kernel's group resolver.
func NewOrchestrator(k *kernel.Kernel) *Orchestrator {
	o := &Orchestrator{
		K:        k,
		groups:   make(map[uint64]*Group),
		pidGroup: make(map[int]uint64),
	}
	k.SetResolver(o)
	return o
}

// AttachFS mounts an Aurora file system for descriptor restores.
func (o *Orchestrator) AttachFS(fs *slsfs.FS) { o.FS = fs }

// SetIDBase raises the group-ID allocation floor. Group IDs double as
// lineage and fencing keys, and those keys are compared across stores
// in a multi-store fleet — so a control plane that runs one
// orchestrator per store gives each a disjoint range (the placer
// shifts the store's admission index into the high bits). Lowering the
// floor is a no-op; single-store deployments never call this.
func (o *Orchestrator) SetIDBase(base uint64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.nextID < base {
		o.nextID = base
	}
}

// Persist creates a persistence group containing the process tree
// rooted at p (the `sls persist` command). All VM objects reachable
// from the tree are marked tracked.
func (o *Orchestrator) Persist(name string, p *kernel.Process) (*Group, error) {
	tree := o.K.ProcessTree(p)
	o.mu.Lock()
	o.nextID++
	g := &Group{ID: o.nextID, Name: name, origin: o.nextID, generation: 1, pids: make(map[int]bool)}
	o.groups[g.ID] = g
	for _, proc := range tree {
		g.pids[proc.PID] = true
		o.pidGroup[proc.PID] = g.ID
	}
	o.mu.Unlock()

	for _, proc := range tree {
		for _, obj := range proc.Space.Objects() {
			obj.SetTracked(true)
		}
	}
	return g, nil
}

// PersistContainer creates a persistence group covering a container.
func (o *Orchestrator) PersistContainer(name string, container int) (*Group, error) {
	procs := o.K.ContainerProcesses(container)
	if len(procs) == 0 {
		return nil, fmt.Errorf("core: container %d has no processes", container)
	}
	g, err := o.Persist(name, procs[0])
	if err != nil {
		return nil, err
	}
	for _, p := range procs[1:] {
		o.AddProcess(g, p)
	}
	return g, nil
}

// AddProcess adds a process (e.g. a post-persist fork child) to a
// group.
func (o *Orchestrator) AddProcess(g *Group, p *kernel.Process) {
	o.mu.Lock()
	g.mu.Lock()
	g.pids[p.PID] = true
	g.mu.Unlock()
	o.pidGroup[p.PID] = g.ID
	o.mu.Unlock()
	for _, obj := range p.Space.Objects() {
		obj.SetTracked(true)
	}
}

// Unpersist removes a group entirely, stopping its flush pipeline.
// In-flight flushes complete first (failed epochs are abandoned: the
// group's dissolution releases any gated output anyway).
func (o *Orchestrator) Unpersist(g *Group) {
	o.mu.Lock()
	for pid := range g.pids {
		delete(o.pidGroup, pid)
	}
	delete(o.groups, g.ID)
	o.mu.Unlock()

	g.mu.Lock()
	f := g.fl
	g.fl = nil
	g.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// flusherOf returns the group's flush pipeline, creating it on first
// use with the orchestrator's configured sizing.
func (o *Orchestrator) flusherOf(g *Group) *flusher {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.fl == nil {
		g.fl = newFlusher(o, g, o.FlushWorkers, o.FlushQueueDepth)
	}
	return g.fl
}

// Drain waits for every in-flight flush of g to complete. Unlike Sync
// it does not retry failed epochs, so the durable frontier may still
// trail the barrier epoch afterwards.
func (o *Orchestrator) Drain(g *Group) {
	g.mu.Lock()
	f := g.fl
	g.mu.Unlock()
	if f != nil {
		f.drain()
	}
}

// Sync makes the group's newest barrier epoch durable: it drains the
// flush pipeline, retries any epoch whose background flush failed, and
// finally flushes inline any image checkpointed with SkipFlush. This
// is the "epoch durable" half of the old synchronous checkpoint — the
// first error encountered (including an error from an earlier epoch's
// background flush) is surfaced here.
func (o *Orchestrator) Sync(g *Group) error {
	g.mu.Lock()
	f := g.fl
	g.mu.Unlock()
	if f != nil {
		if err := f.Sync(); err != nil {
			return err
		}
	}
	// Legacy path: an epoch checkpointed with SkipFlush was never
	// queued; sls_barrier semantics demand it become durable now.
	g.mu.Lock()
	epoch, durable, queued, img := g.epoch, g.durable, g.lastQueued, g.last
	g.mu.Unlock()
	if epoch > durable && epoch > queued && img != nil && !img.Released() {
		if _, err := o.flushImage(g, img, false); err != nil {
			return err
		}
		g.mu.Lock()
		if epoch > g.durable {
			g.durable = epoch
		}
		g.mu.Unlock()
		for _, b := range g.Backends() {
			if t, ok := b.(trimmer); ok {
				t.Trim(g.ID)
			}
		}
	}
	// Degraded-mode epilogue: the durable frontier is current, but a
	// sick backend may still owe its catch-up queue. Sync means
	// "durable everywhere", so force the resync and surface a backend
	// that cannot take its missed epochs.
	return o.Resync(g)
}

// Attach registers a backend with a group (`sls attach`).
func (o *Orchestrator) Attach(g *Group, b Backend) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.backends = append(g.backends, b)
}

// Detach removes a backend from a group (`sls detach`).
func (o *Orchestrator) Detach(g *Group, name string) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for i, b := range g.backends {
		if b.Name() == name {
			g.backends = append(g.backends[:i], g.backends[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("core: backend %q not attached", name)
}

// Backends lists a group's backends.
func (g *Group) Backends() []Backend {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]Backend, len(g.backends))
	copy(out, g.backends)
	return out
}

// Group returns a group by ID.
func (o *Orchestrator) Group(id uint64) (*Group, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	g, ok := o.groups[id]
	if !ok {
		return nil, ErrNoGroup
	}
	return g, nil
}

// GroupByName finds a group by its user-visible name.
func (o *Orchestrator) GroupByName(name string) (*Group, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	for _, g := range o.groups {
		if g.Name == name {
			return g, nil
		}
	}
	return nil, ErrNoGroup
}

// Groups lists all persistence groups ordered by ID (`sls ps`).
func (o *Orchestrator) Groups() []*Group {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make([]*Group, 0, len(o.groups))
	for _, g := range o.groups {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GroupOfProcess returns the group containing pid, if any.
func (o *Orchestrator) GroupOfProcess(pid int) (*Group, bool) {
	o.mu.Lock()
	gid, ok := o.pidGroup[pid]
	if !ok {
		o.mu.Unlock()
		return nil, false
	}
	g := o.groups[gid]
	o.mu.Unlock()
	return g, g != nil
}

// --- kernel.GroupResolver ---

// GroupOf implements kernel.GroupResolver.
func (o *Orchestrator) GroupOf(pid int) uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.pidGroup[pid]
}

// EpochOf implements kernel.GroupResolver.
func (o *Orchestrator) EpochOf(group uint64) uint64 {
	o.mu.Lock()
	g := o.groups[group]
	o.mu.Unlock()
	if g == nil {
		return 0
	}
	return g.Epoch()
}

// Released implements kernel.GroupResolver: an epoch's output may
// cross the group boundary once it is actually present on every
// non-ephemeral backend (or once flushed anywhere when only ephemeral
// backends are attached — debugging setups accept that risk
// explicitly). This gates on Replicated(), not Durable(): in degraded
// mode the durable frontier keeps advancing on the healthy peer while
// a sick or partitioned backend owes catch-up epochs, and releasing
// output the replica does not yet hold would lose it if the primary
// then died and the replica were promoted.
func (o *Orchestrator) Released(group, epoch uint64) bool {
	o.mu.Lock()
	g := o.groups[group]
	o.mu.Unlock()
	if g == nil {
		return true // group dissolved: nothing left to hold for
	}
	// Data written during epoch E is covered by checkpoint E+1 (the
	// one whose barrier happens after the write). It is releasable
	// when that epoch is replicated.
	return g.Replicated() > epoch
}

// members resolves the group's live member processes.
func (o *Orchestrator) members(g *Group) []*kernel.Process {
	var out []*kernel.Process
	for _, pid := range g.PIDs() {
		if p, err := o.K.Process(pid); err == nil {
			out = append(out, p)
		}
	}
	return out
}
