package main

import (
	"bufio"
	"bytes"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"aurora/internal/core"
	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// runScript executes semicolon-separated commands in one session and
// returns the combined output.
func runScript(t *testing.T, script string) string {
	t.Helper()
	out, _ := runSession(t, script, nil, "")
	return out
}

// runSession is runScript plus the session's exit code. The optional
// mid hook runs between setup and script, letting a test reach into
// the machine (e.g. corrupt a store block) before the second phase.
func runSession(t *testing.T, setup string, mid func(*session), script string) (string, int) {
	t.Helper()
	var buf bytes.Buffer
	out := bufio.NewWriter(&buf)
	s := newSession(out)
	run := func(lines string) {
		for _, line := range strings.Split(lines, ";") {
			if !s.exec(strings.TrimSpace(line)) {
				return
			}
		}
	}
	run(setup)
	if mid != nil {
		mid(s)
	}
	run(script)
	out.Flush()
	return buf.String(), s.code
}

func TestCLIWorkflow(t *testing.T) {
	got := runScript(t,
		"boot counter; run 20; persist 1 app; attach app nvme; checkpoint app first; ps")
	for _, want := range []string{
		"booted counter, pid 1",
		"persistence group 1 (app)",
		"attached store:",
		"ckpt[full]",
		"GROUP",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

func TestCLIRestore(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app memory; checkpoint app; run 50; restore app")
	if !strings.Contains(got, "restored as group 2") {
		t.Fatalf("restore output:\n%s", got)
	}
}

func TestCLISendRecv(t *testing.T) {
	file := filepath.Join(t.TempDir(), "app.aur")
	got := runScript(t,
		"boot counter; run 7; persist 1 app; attach app nvme; checkpoint app; send app "+file)
	if !strings.Contains(got, "sent group 1") {
		t.Fatalf("send output:\n%s", got)
	}
	// A brand new session receives and resumes the application.
	got2 := runScript(t, "recv "+file+"; ps; run 10")
	if !strings.Contains(got2, "received as group 1") {
		t.Fatalf("recv output:\n%s", got2)
	}
	if !strings.Contains(got2, "counter") {
		t.Fatalf("received process missing from ps:\n%s", got2)
	}
}

func TestCLIDetach(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; detach app nvme; checkpoint app")
	if !strings.Contains(got, "detached") {
		t.Fatalf("detach output:\n%s", got)
	}
}

func TestCLISyncAndQueueColumn(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app; ps")
	if !strings.Contains(got, "durable through epoch 1") {
		t.Fatalf("sync output:\n%s", got)
	}
	if !strings.Contains(got, "QUEUE") {
		t.Fatalf("ps missing QUEUE column:\n%s", got)
	}
}

func TestCLIErrors(t *testing.T) {
	got := runScript(t, "persist 99 x; attach nope nvme; checkpoint nope; restore nope; frobnicate")
	if strings.Count(got, "error:") < 3 {
		t.Fatalf("expected errors for bad arguments:\n%s", got)
	}
	if !strings.Contains(got, "unknown command") {
		t.Fatalf("unknown command not reported:\n%s", got)
	}
}

func TestCLIUsageLines(t *testing.T) {
	got := runScript(t, "persist; attach; detach; checkpoint; restore; send; recv; stat; help")
	if strings.Count(got, "usage:") < 6 {
		t.Fatalf("usage hints missing:\n%s", got)
	}
	if !strings.Contains(got, "single level store") {
		t.Fatalf("help text missing:\n%s", got)
	}
}

func TestCLIRedisBoot(t *testing.T) {
	got := runScript(t, "boot redis; stat 1")
	if !strings.Contains(got, "booted mini-redis") || !strings.Contains(got, "heap") {
		t.Fatalf("redis boot output:\n%s", got)
	}
}

func TestCLIScrub(t *testing.T) {
	got := runScript(t,
		"boot counter; run 5; persist 1 app; attach app nvme; attach app ssd; checkpoint app; sync app; scrub nvme ssd")
	if !strings.Contains(got, "scrub nvme:") || !strings.Contains(got, "0 corrupt") {
		t.Fatalf("scrub output:\n%s", got)
	}
	if !strings.Contains(got, "0 lost") {
		t.Fatalf("clean store reported losses:\n%s", got)
	}
}

func TestCLIScrubErrors(t *testing.T) {
	got := runScript(t, "scrub; scrub nope; scrub memory")
	if !strings.Contains(got, "usage: scrub") {
		t.Fatalf("scrub usage missing:\n%s", got)
	}
	if !strings.Contains(got, `unknown backend "nope"`) {
		t.Fatalf("bad backend not reported:\n%s", got)
	}
	if !strings.Contains(got, "not store-backed") {
		t.Fatalf("memory backend accepted for scrub:\n%s", got)
	}
}

// corruptEpoch overwrites one vm data block written by exactly (group,
// epoch) on a store backend's device, so restore validation quarantines
// that epoch while older epochs stay clean.
func corruptEpoch(t *testing.T, s *session, backend string, group, epoch uint64) {
	t.Helper()
	sb, err := s.storeArg(backend)
	if err != nil {
		t.Fatal(err)
	}
	m, err := sb.Store().Manifest(group, epoch)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range m.Records {
		if key.OID&(uint64(1)<<63) == 0 || key.Epoch != epoch {
			continue
		}
		rec, err := sb.Store().GetRecord(key.Group, key.OID, key.Epoch)
		if err != nil {
			t.Fatal(err)
		}
		for _, ref := range rec.Pages {
			garbage := bytes.Repeat([]byte{0xAA}, objstore.BlockSize)
			if _, err := sb.Store().Device().WriteAt(garbage, ref.Off); err != nil {
				t.Fatal(err)
			}
			return
		}
	}
	t.Fatalf("epoch %d wrote no data block to corrupt", epoch)
}

func TestCLIEpochsListing(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; run 10; checkpoint app; run 10; checkpoint app; sync app; epochs app; epochs app nvme; epochs; epochs app memory")
	for _, want := range []string{"EPOCH", "BACKEND", "STATUS", "usage: epochs", "not store-backed"} {
		if !strings.Contains(got, want) {
			t.Fatalf("epochs output missing %q:\n%s", want, got)
		}
	}
	if strings.Count(got, "ok") < 4 { // 2 epochs × 2 listings
		t.Fatalf("epochs listing missing clean rows:\n%s", got)
	}
}

// TestCLIRestoreQuarantineFallback: the newest epoch is corrupted on
// media; restore falls back one epoch, exits 3, and both ps and epochs
// show the poisoned epoch.
func TestCLIRestoreQuarantineFallback(t *testing.T) {
	got, code := runSession(t,
		"boot counter; persist 1 app; attach app nvme; run 10; checkpoint app; run 10; checkpoint app; sync app",
		func(s *session) { corruptEpoch(t, s, "nvme", 1, 2) },
		"restore app; ps; epochs app")
	if code != 3 {
		t.Fatalf("exit code = %d, want 3 (quarantined fallback):\n%s", code, got)
	}
	for _, want := range []string{
		"warning: epoch 2 quarantined, fell back to epoch 1",
		"restored as group 2",
		"quarantined:",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIRestoreCorruptImage: with every durable epoch corrupted the
// restore has nowhere to fall back to and exits 4.
func TestCLIRestoreCorruptImage(t *testing.T) {
	got, code := runSession(t,
		"boot counter; persist 1 app; attach app nvme; run 10; checkpoint app; sync app",
		func(s *session) { corruptEpoch(t, s, "nvme", 1, 1) },
		"restore app")
	if code != 4 {
		t.Fatalf("exit code = %d, want 4 (corrupt image):\n%s", code, got)
	}
	if !strings.Contains(got, "error:") {
		t.Fatalf("failed restore did not report an error:\n%s", got)
	}
}

// TestRestoreExitCodes pins the error-to-exit-code mapping itself,
// including the backend-down path the scripted session cannot reach
// (its devices have no fault injection).
func TestRestoreExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("restore: %w", core.ErrEpochQuarantined), 4},
		{fmt.Errorf("restore: %w", core.ErrBackendDown), 5},
		{fmt.Errorf("restore: %w", storage.ErrDeviceDown), 5},
		{fmt.Errorf("some other failure"), 1},
	}
	for _, c := range cases {
		if got := restoreExitCode(c.err); got != c.want {
			t.Errorf("restoreExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestPromoteExitCodes pins the promotion error-to-exit-code mapping,
// including the fenced path (7) a scripted session cannot reach
// without a network replica promoting over it.
func TestPromoteExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("promote: %w", core.ErrPrimaryHealthy), 6},
		{fmt.Errorf("promote: %w", core.ErrStaleGeneration), 7},
		{fmt.Errorf("some other failure"), 1},
	}
	for _, c := range cases {
		if got := promoteExitCode(c.err); got != c.want {
			t.Errorf("promoteExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestCLIPromoteRefusedHealthy: promoting over a live primary is how
// split-brain starts; the CLI refuses with exit code 6.
func TestCLIPromoteRefusedHealthy(t *testing.T) {
	got, code := runSession(t,
		"boot counter; run 5; persist 1 app; attach app nvme; attach app ssd; checkpoint app; sync app",
		nil,
		"promote app ssd")
	if code != 6 {
		t.Fatalf("exit code = %d, want 6 (primary healthy):\n%s", code, got)
	}
	if !strings.Contains(got, "still healthy") {
		t.Fatalf("refusal not reported:\n%s", got)
	}
}

// TestCLIPromote: the primary store dies (every write injected to
// fail), the group's flushes keep landing on the secondary, and
// `promote` moves the primary role there — minting generation 2,
// persisting the fence, and exiting 0. ps then shows the GEN column.
func TestCLIPromote(t *testing.T) {
	got, code := runSession(t,
		"boot counter; run 5; persist 1 app",
		func(s *session) {
			s.o.DownAfter = 1
			fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, s.clock), s.clock, storage.FaultConfig{Seed: 9})
			st := objstore.Create(fd, s.clock)
			s.backends["flaky"] = core.NewStoreBackend(st, s.k.Mem, s.clock)
			fd.FailOps(storage.FaultWrite, fd.OpCount()+1, 1<<62)
		},
		"attach app flaky; attach app ssd; checkpoint app; sync app; promote app ssd; ps")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (promoted):\n%s", code, got)
	}
	if !strings.Contains(got, "to primary of group 1: generation 2") {
		t.Fatalf("promotion not reported:\n%s", got)
	}
	if !strings.Contains(got, "GEN") {
		t.Fatalf("ps missing GEN column:\n%s", got)
	}
}

// TestCLIEpochsLinkCounters: epochs renders per-backend link history
// (zero partitions/catch-up for in-machine backends, but the rows are
// always present for scripts to scrape).
func TestCLIEpochsLinkCounters(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; run 10; checkpoint app; sync app; epochs app")
	if !strings.Contains(got, "partitions=0 catchup=0") {
		t.Fatalf("epochs missing link counters:\n%s", got)
	}
}

// TestCLIDF: df renders one row per store backend. The stock session
// devices are unbounded, so capacity and USE% render as placeholders,
// pressure is none, and the exit code stays 0.
func TestCLIDF(t *testing.T) {
	got, code := runSession(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app",
		nil,
		"df")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (no space pressure):\n%s", code, got)
	}
	for _, want := range []string{"BACKEND", "USED", "CAPACITY", "PRESSURE", "nvme", "ssd", "hdd", "none"} {
		if !strings.Contains(got, want) {
			t.Fatalf("df output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIFleet: the fleet command reports the shard runtime once work
// has flowed through it, and the idle message before that.
func TestCLIFleet(t *testing.T) {
	got := runScript(t, "fleet")
	if !strings.Contains(got, "fleet runtime idle") {
		t.Fatalf("idle fleet output = %q", got)
	}
	got = runScript(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app; fleet")
	for _, want := range []string{"shards=", "workers/shard=", "dispatches=1", "shard 0:", "mem budget=", "nvme: dedup-hits="} {
		if !strings.Contains(got, want) {
			t.Fatalf("fleet output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIGC: a retention scan on an unbounded device is a no-op (no
// watermark can be crossed), and the non-store backends are rejected.
func TestCLIGC(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app; gc nvme; gc memory; gc nope; gc")
	for _, want := range []string{
		"gc nvme: freed 0 bytes",
		"pressure none",
		"not store-backed",
		`unknown backend "nope"`,
		"usage: gc",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("gc output missing %q:\n%s", want, got)
		}
	}
}

// TestCLISpacePressure drives the full space story through the CLI: a
// bounded backend with watermarks set so any resident byte counts as
// emergency pressure. Retention reclaims old epochs as checkpoints
// retire, durable still advances, ps grows a USE% figure, gc reports
// the reclamation, and df exits 8.
func TestCLISpacePressure(t *testing.T) {
	got, code := runSession(t,
		"boot counter; run 5; persist 1 app",
		func(s *session) {
			p := storage.ParamsOptaneNVMe
			p.Capacity = 8 << 20
			st := objstore.Create(storage.NewMemDevice(p, s.clock), s.clock)
			sb := core.NewStoreBackend(st, s.k.Mem, s.clock)
			sb.SetReclaimer(core.NewReclaimer(s.o, sb, core.RetentionPolicy{},
				core.Watermarks{Low: 1e-9, High: 2e-9, Emergency: 3e-9}))
			s.backends["tiny"] = sb
		},
		"attach app tiny; checkpoint app; run 5; checkpoint app; run 5; checkpoint app; sync app; ps; gc tiny; df")
	if code != 8 {
		t.Fatalf("exit code = %d, want 8 (emergency watermark):\n%s", code, got)
	}
	for _, want := range []string{
		"durable through epoch 3", // pressure shed frequency, not durability
		"USE%",
		"epochs reclaimed total",
		"emergency",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	// The group's USE% column must render a real percentage for the
	// bounded backend, not the unbounded placeholder.
	psLine := ""
	for _, line := range strings.Split(got, "\n") {
		if strings.Contains(line, "app") && strings.Contains(line, "%") {
			psLine = line
		}
	}
	if psLine == "" {
		t.Fatalf("ps USE%% column missing a percentage:\n%s", got)
	}
}

func TestCLIHealthColumn(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; checkpoint app; sync app; ps")
	if !strings.Contains(got, "HEALTH") {
		t.Fatalf("ps missing HEALTH column:\n%s", got)
	}
	if !strings.Contains(got, "ok") {
		t.Fatalf("healthy backend not shown as ok:\n%s", got)
	}
	// A group with no backends renders a placeholder.
	got2 := runScript(t, "boot counter; persist 1 app; ps")
	if !strings.Contains(got2, "-") {
		t.Fatalf("backendless group health:\n%s", got2)
	}
}

func TestCLIQuorumAndReplicas(t *testing.T) {
	got := runScript(t,
		"boot counter; run 8; persist 1 app; attach app nvme; "+
			"replica app r0; replica app r1; replica app r2; quorum app 2; "+
			"run 4; checkpoint app; sync app; ps; replicas app")
	for _, want := range []string{
		"replica r0 linked to group 1 (1 in set, 0 epochs backfilled)",
		"replica r2 linked to group 1 (3 in set, 0 epochs backfilled)",
		"group 1 write quorum 2 of 4 non-ephemeral backends",
		"QUORUM",
		"4/2:4", // all four non-ephemeral backends ack-complete, W=2
		"REPLICA",
		"r1             healthy    1",
		"quorum floor 1 (W=2 of 3 links)",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}

	// Clearing the quorum restores the legacy "-" column.
	got = runScript(t,
		"boot counter; run 8; persist 1 app; attach app nvme; quorum app 0; ps; replicas app")
	if !strings.Contains(got, "group 1 back on all-backends durability") {
		t.Fatalf("quorum 0 not acknowledged:\n%s", got)
	}
	if !strings.Contains(got, "group 1 has no replica links") {
		t.Fatalf("replicas without links not reported:\n%s", got)
	}

	got = runScript(t, "replica; quorum; replicas")
	for _, want := range []string{"usage: replica", "usage: quorum", "usage: replicas"} {
		if !strings.Contains(got, want) {
			t.Fatalf("usage line missing %q:\n%s", want, got)
		}
	}
}

// TestMigrateExitCodes pins the migration error-to-exit-code mapping:
// 7 for a fenced (stale-generation) source, 9 for an aborted
// migration — scripts distinguish "retry later" from "you lost the
// race".
func TestMigrateExitCodes(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, 0},
		{fmt.Errorf("migrate: %w", core.ErrStaleGeneration), 7},
		{fmt.Errorf("migrate: %w", core.ErrMigrationAborted), 9},
		{&core.MigrationError{Phase: core.PhasePreCopy, Err: fmt.Errorf("link died")}, 9},
		{fmt.Errorf("some other failure"), 1},
	}
	for _, c := range cases {
		if got := migrateExitCode(c.err); got != c.want {
			t.Errorf("migrateExitCode(%v) = %d, want %d", c.err, got, c.want)
		}
	}
}

// TestCLIMigrate: live-migrate a running group over a loopback
// replica link onto the ssd store. The report line carries the
// blackout and source-stop windows, ps shows the migrated group at
// generation 2, and the source group is fully torn down — a
// checkpoint against it no longer resolves.
func TestCLIMigrate(t *testing.T) {
	got, code := runSession(t,
		"boot counter; persist 1 app; attach app nvme; run 4; checkpoint app; sync app; replica app r1",
		nil,
		"migrate app r1 ssd; ps; checkpoint 1")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, got)
	}
	for _, want := range []string{
		"migrated group 1 -> group 2 over r1: generation 2",
		"epochs backfilled, blackout ",
		"source stop ",
		"app-migrated",
		"core: no such persistence group", // the source is torn down
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIStandbyTakeover: two standby rounds keep the target warm
// while the source keeps running, then takeover promotes it with a
// reported TTR. The fenced source stays listed but can no longer
// advance.
func TestCLIStandbyTakeover(t *testing.T) {
	got, code := runSession(t,
		"boot counter; persist 1 app; attach app nvme; run 4; checkpoint app; sync app; replica app r1",
		nil,
		"standby app r1 ssd; run 2; checkpoint app; standby app r1 ssd; takeover app; ps")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, got)
	}
	for _, want := range []string{
		"standby for group 1 warm: 1 rounds shipped",
		"standby for group 1 warm: 2 rounds shipped",
		"standby promoted: group 1 -> group 2, generation 2",
		"(ttr ",
		"app-migrated",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIMigrateErrors: usage lines for the three verbs, plus
// takeover without a warm standby.
func TestCLIMigrateErrors(t *testing.T) {
	got := runScript(t, "migrate; standby; takeover")
	for _, want := range []string{
		"usage: migrate <group> <replica> <store-backend>",
		"usage: standby <group> <replica> <store-backend>",
		"usage: takeover <group>",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("usage line missing %q:\n%s", want, got)
		}
	}
	got = runScript(t,
		"boot counter; persist 1 app; attach app nvme; run 4; checkpoint app; sync app; takeover app")
	if !strings.Contains(got, "has no warm standby") {
		t.Fatalf("bare takeover not refused:\n%s", got)
	}
}

// TestCLIStores: placements spread across the fleet under
// anti-affinity (a replica never shares the primary's rack), the
// stores table reports domain/state/residency, and ps gains STORE and
// DOMAIN columns — "-" for single-machine groups, the primary's home
// for placed ones.
func TestCLIStores(t *testing.T) {
	got := runScript(t,
		"boot counter; persist 1 app; attach app nvme; "+
			"place app1; place app2; place app3; stores; ps")
	for _, want := range []string{
		"placed app1: lineage 4294967297 on store0 (rack0), replicas store1(rack1)",
		"placed app2: lineage 8589934593 on store1 (rack1),",
		"NAME     DOMAIN   STATE",
		"store3   rack1    active",
		"STORE",
		"DOMAIN",
		"app            -        -", // single-machine group: no fleet home
		"app1           store0   rack0",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// TestCLIDrain: a drain live-migrates residents off, fences the
// store, and the fenced store refuses a second drain with exit code
// 11 (no feasible placement).
func TestCLIDrain(t *testing.T) {
	got, code := runSession(t,
		"place app1; place app2; place app3; place app4",
		nil,
		"drain store0; stores")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, got)
	}
	for _, want := range []string{
		"store store0 drained and fenced",
		"store0   rack0    fenced",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "-> store") {
		t.Fatalf("drain reported no migrations:\n%s", got)
	}

	got, code = runSession(t, "place app1; drain store1", nil, "drain store1")
	if code != 11 {
		t.Fatalf("re-draining a fenced store: exit code = %d, want 11:\n%s", code, got)
	}
	if !strings.Contains(got, "not drainable") {
		t.Fatalf("fenced store accepted a drain:\n%s", got)
	}
}

// TestCLIBalance: a fleet of unbounded stores is never pressured —
// one pass reports balance and moves nothing.
func TestCLIBalance(t *testing.T) {
	got, code := runSession(t, "place app1; place app2", nil, "balance; stores")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, got)
	}
	if !strings.Contains(got, "fleet balanced: no store above the high watermark") {
		t.Fatalf("balance pass not reported:\n%s", got)
	}
	got = runScript(t, "place; drain")
	for _, want := range []string{"usage: place <name>", "usage: drain <store>"} {
		if !strings.Contains(got, want) {
			t.Fatalf("usage line missing %q:\n%s", want, got)
		}
	}
}

// TestCLIAutoscale: manual scale-out admits a warm spare and seeds it,
// a second scale verb mid-flight refuses with exit code 12, ticks
// finish the action, and ps grows TARGET/UTIL columns for fleet rows.
func TestCLIAutoscale(t *testing.T) {
	got, code := runSession(t,
		"place app1; place app2; place app3; autoscale; autoscale out", nil,
		"autoscale tick 8; autoscale status; ps; stores")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, got)
	}
	for _, want := range []string{
		"phase=idle tick=0 active=4 target=4 pool=2",
		"scale-out: admitted store4 from the warm pool",
		"scale-out-done store4",
		"TARGET", "UTIL", "/4",
	} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}

	// A second scale verb while the first is still seeding: exit 12.
	got, code = runSession(t, "place app1; autoscale out", nil, "autoscale in")
	if code != 12 {
		t.Fatalf("racing scale verbs: exit code = %d, want 12:\n%s", code, got)
	}
	if !strings.Contains(got, "already in progress") {
		t.Fatalf("in-flight refusal not reported:\n%s", got)
	}

	// Scale-in below the floor: the fleet refuses with exit 11 once at
	// min stores (drive two full drains down to the 2-store minimum).
	got, code = runSession(t,
		"autoscale in; autoscale tick 12; autoscale in; autoscale tick 12", nil,
		"autoscale in")
	if code != 11 {
		t.Fatalf("scale-in at min stores: exit code = %d, want 11:\n%s", code, got)
	}
}

// TestCLISignals: the sample window is empty before any tick, and
// after ticks it carries fleet and per-store utilization rows.
func TestCLISignals(t *testing.T) {
	got := runScript(t, "signals")
	if !strings.Contains(got, "no samples yet") {
		t.Fatalf("empty window not reported:\n%s", got)
	}
	got, code := runSession(t, "place app1; place app2; autoscale tick 3", nil, "signals")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0:\n%s", code, got)
	}
	for _, want := range []string{"TICK", "ACTIVE", "MINUTIL", "BACKLOG", "STORE", "PRIMARIES", "store0"} {
		if !strings.Contains(got, want) {
			t.Fatalf("signals output missing %q:\n%s", want, got)
		}
	}
}
