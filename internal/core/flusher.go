package core

import (
	"sync"
	"time"
)

// This file implements the background flush pipeline. A serialization
// barrier (Checkpoint) hands its immutable image to the group's
// flusher and returns as soon as the group has resumed; worker
// goroutines fan the image out to every attached backend concurrently.
// Durability — g.Durable(), and with it Released()/external
// consistency — advances only when an epoch *retires*: all of its
// backend flushes finished AND every earlier epoch retired first, so
// the durable frontier never skips an epoch whose flush failed or is
// still in flight.

// Pipeline defaults, overridable per Orchestrator.
const (
	defaultFlushWorkers = 2
	defaultFlushQueue   = 4
)

// flushJob tracks one epoch's trip through the pipeline.
type flushJob struct {
	img   *Image
	bdIdx int           // index into g.ckpts whose FlushTime gets patched
	done  chan struct{} // closed when the flush attempt finishes

	// Guarded by the flusher's mu.
	completed bool
	dur       time.Duration
	err       error
}

// flusher is a per-group flush pipeline: a bounded job queue (enqueue
// blocks when full — backpressure on the checkpointing caller), worker
// goroutines, and in-order epoch retirement.
type flusher struct {
	o *Orchestrator
	g *Group

	jobs chan *flushJob
	quit chan struct{}
	wg   sync.WaitGroup

	// syncMu serializes Sync callers so a failed epoch is never
	// retried by two foreground flushers at once.
	syncMu sync.Mutex

	mu      sync.Mutex
	order   []uint64 // epochs in enqueue (== epoch) order, oldest first
	byEpoch map[uint64]*flushJob
}

func newFlusher(o *Orchestrator, g *Group, workers, depth int) *flusher {
	if workers <= 0 {
		workers = defaultFlushWorkers
	}
	if depth <= 0 {
		depth = defaultFlushQueue
	}
	f := &flusher{
		o:       o,
		g:       g,
		jobs:    make(chan *flushJob, depth),
		quit:    make(chan struct{}),
		byEpoch: make(map[uint64]*flushJob),
	}
	for i := 0; i < workers; i++ {
		f.wg.Add(1)
		go f.worker()
	}
	return f
}

// Enqueue hands an image to the pipeline. It blocks while the queue is
// full, which is the backpressure that keeps a checkpoint storm from
// building an unbounded backlog of unflushed epochs.
func (f *flusher) Enqueue(img *Image, bdIdx int) {
	job := &flushJob{img: img, bdIdx: bdIdx, done: make(chan struct{})}
	// Register before sending so Sync/drain always sees the job even
	// if no worker has picked it up yet.
	f.mu.Lock()
	f.order = append(f.order, img.Epoch)
	f.byEpoch[img.Epoch] = job
	f.mu.Unlock()
	f.jobs <- job
}

// depth reports the number of epochs not yet retired (queued, in
// flight, or stalled behind a failure).
func (f *flusher) depth() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.order)
}

func (f *flusher) worker() {
	defer f.wg.Done()
	for {
		select {
		case job := <-f.jobs:
			f.run(job)
		case <-f.quit:
			// Drain whatever is already queued before exiting so Close
			// never strands a registered job.
			for {
				select {
				case job := <-f.jobs:
					f.run(job)
				default:
					return
				}
			}
		}
	}
}

// run executes one flush attempt and retires whatever became eligible.
func (f *flusher) run(job *flushJob) {
	dur, err := f.o.flushImage(f.g, job.img, true)
	f.mu.Lock()
	job.dur, job.err, job.completed = dur, err, true
	f.retireLocked()
	f.mu.Unlock()
	close(job.done)
}

// retireLocked advances the durable frontier over every leading epoch
// that flushed successfully. A failed epoch stalls retirement: later
// epochs may finish out of order but stay unretired, so durability
// never claims a history with a hole in it. Caller holds f.mu.
func (f *flusher) retireLocked() {
	for len(f.order) > 0 {
		epoch := f.order[0]
		job := f.byEpoch[epoch]
		if job == nil || !job.completed || job.err != nil {
			return
		}
		f.order = f.order[1:]
		delete(f.byEpoch, epoch)
		f.retire(epoch, job)
	}
}

// retire marks one epoch durable and lets backends release history.
func (f *flusher) retire(epoch uint64, job *flushJob) {
	g := f.g
	g.mu.Lock()
	if epoch > g.durable {
		g.durable = epoch
	}
	if job.bdIdx >= 0 && job.bdIdx < len(g.ckpts) {
		g.ckpts[job.bdIdx].FlushTime = job.dur
	}
	g.mu.Unlock()
	// History trimming is deferred to retirement: it merges old images
	// forward in place, which must never race with a flush still
	// reading them.
	for _, b := range g.Backends() {
		if t, ok := b.(trimmer); ok {
			t.Trim(g.ID)
		}
	}
}

// drain waits until every enqueued epoch has completed its flush
// attempt. It does not retry failures — failed epochs stay stalled.
func (f *flusher) drain() {
	for {
		f.mu.Lock()
		var wait *flushJob
		for _, j := range f.byEpoch {
			if !j.completed {
				wait = j
				break
			}
		}
		f.mu.Unlock()
		if wait == nil {
			return
		}
		<-wait.done
	}
}

// Sync drains the pipeline and then retries any stalled (failed)
// epochs inline, oldest first. It returns nil only when every epoch
// handed to the pipeline has retired; otherwise it surfaces the first
// failure, leaving the durable frontier where it was.
func (f *flusher) Sync() error {
	f.syncMu.Lock()
	defer f.syncMu.Unlock()
	for {
		f.mu.Lock()
		var wait *flushJob
		for _, j := range f.byEpoch {
			if !j.completed {
				wait = j
				break
			}
		}
		if wait != nil {
			f.mu.Unlock()
			<-wait.done
			continue
		}
		if len(f.order) == 0 {
			f.mu.Unlock()
			return nil
		}
		// Everything completed but the head did not retire: it failed.
		head := f.byEpoch[f.order[0]]
		if head.err == nil {
			// Retired concurrently between checks; re-examine.
			f.retireLocked()
			f.mu.Unlock()
			continue
		}
		f.mu.Unlock()

		dur, err := f.o.flushImage(f.g, head.img, false)
		f.mu.Lock()
		if err != nil {
			head.err = err
			f.mu.Unlock()
			return err
		}
		head.dur, head.err = dur, nil
		f.retireLocked()
		f.mu.Unlock()
	}
}

// Close drains the pipeline and stops the workers. Failed epochs are
// abandoned un-retried (the group is going away).
func (f *flusher) Close() {
	f.drain()
	close(f.quit)
	f.wg.Wait()
}

// trimmer is implemented by backends that defer history trimming to
// epoch retirement (see MemoryBackend.Trim).
type trimmer interface {
	Trim(group uint64)
}
