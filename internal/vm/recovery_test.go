package vm

import (
	"bytes"
	"errors"
	"testing"

	"aurora/internal/storage"
)

// TestRecoveryBoundedSwapInRetry: the pager's swap-in path retries
// transient device faults within its budget but surfaces a typed error
// selectable with errors.Is(err, ErrBackendDown) when the swap device
// stays failed, instead of spinning the faulting thread forever.
func TestRecoveryBoundedSwapInRetry(t *testing.T) {
	clock := storage.NewClock()
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: 1})
	pm := NewPhysMem(0)
	swap := NewSwap(fd)
	pager := NewPager(pm, swap, nil)

	obj := NewObject("victim", 4*PageSize)
	f, err := pm.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data, []byte("precious"))
	obj.InsertPage(pm, 0, f)

	// Evict the page by hand (the eviction half of Pager.evict).
	slot, err := swap.WritePage(f)
	if err != nil {
		t.Fatal(err)
	}
	ev := obj.SwapOut(0, slot)
	if ev == nil {
		t.Fatal("page did not swap out")
	}
	pm.Free(ev)

	// A permanently down device short-circuits to the typed error.
	fd.Down()
	err = pager.SwapIn(obj, 0)
	if err == nil {
		t.Fatal("swap-in from a dead device must fail")
	}
	if !errors.Is(err, ErrBackendDown) {
		t.Fatalf("error not selectable as ErrBackendDown: %v", err)
	}
	if f2, _ := obj.Lookup(0); f2 != nil {
		t.Fatal("failed swap-in must not install a page")
	}

	// Transient faults, by contrast, are retried away within bounds.
	fd.Up()
	fd.FailOps(storage.FaultRead, fd.OpCount()+1, fd.OpCount()+2)
	if err := pager.SwapIn(obj, 0); err != nil {
		t.Fatalf("bounded retry should absorb transient faults: %v", err)
	}
	f2, owner := obj.Lookup(0)
	if f2 == nil || owner != obj || !bytes.HasPrefix(f2.Data, []byte("precious")) {
		t.Fatal("swapped-in page missing or corrupted")
	}
}

// TestRecoverySwapInRetryBudgetConfigurable: the retry budget is
// honored — a fault streak longer than the budget fails typed, a
// shorter one is absorbed.
func TestRecoverySwapInRetryBudgetConfigurable(t *testing.T) {
	clock := storage.NewClock()
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: 7})
	pm := NewPhysMem(0)
	swap := NewSwap(fd)
	pager := NewPager(pm, swap, nil)
	pager.SwapInRetries = 1 // 2 attempts total

	obj := NewObject("victim", PageSize)
	f, err := pm.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data, []byte("keep"))
	obj.InsertPage(pm, 0, f)
	slot, err := swap.WritePage(f)
	if err != nil {
		t.Fatal(err)
	}
	pm.Free(obj.SwapOut(0, slot))

	// 3 straight read faults > 2 attempts: typed failure.
	fd.FailOps(storage.FaultRead, fd.OpCount()+1, fd.OpCount()+3)
	if err := pager.SwapIn(obj, 0); !errors.Is(err, ErrBackendDown) {
		t.Fatalf("budget overrun not typed as ErrBackendDown: %v", err)
	}
	// The remaining scripted fault is within a fresh budget.
	if err := pager.SwapIn(obj, 0); err != nil {
		t.Fatalf("retry within budget failed: %v", err)
	}
	f2, _ := obj.Lookup(0)
	if f2 == nil || !bytes.HasPrefix(f2.Data, []byte("keep")) {
		t.Fatal("page lost across retries")
	}
}
