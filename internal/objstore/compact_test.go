package objstore

import (
	"bytes"
	"fmt"
	"testing"

	"aurora/internal/storage"
)

// TestCompactPacksFreesSparseBlocks drives the pack layout into the
// fragmented state merge-forward GC leaves behind — blocks whose
// extents mostly died with dropped epochs but are pinned by a few
// survivors — and checks that compaction moves the survivors out,
// frees the victims, and leaves a store that still audits clean,
// serves every surviving record, and reopens from disk intact.
func TestCompactPacksFreesSparseBlocks(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)
	s := Create(dev, clock)

	// ~300-byte metas pack ~13 to a block, so each 16-record epoch
	// straddles block boundaries and every pack block holds a mix of
	// adjacent epochs. Dropping all but the newest epoch then leaves
	// boundary blocks sparse instead of empty.
	const (
		group  = uint64(9)
		epochs = uint64(8)
		oids   = 16
	)
	meta := func(oid, e uint64) []byte {
		return bytes.Repeat([]byte(fmt.Sprintf("m-%03d-%03d;", oid, e)), 30)
	}
	for e := uint64(1); e <= epochs; e++ {
		var keys []RecordKey
		for i := 0; i < oids; i++ {
			oid := uint64(100 + i)
			if _, err := s.PutRecord(group, oid, e, 1, true, meta(oid, e),
				map[int64][]byte{0: page(byte(i))}, nil); err != nil {
				t.Fatal(err)
			}
			keys = append(keys, RecordKey{group, oid, e})
		}
		s.PutManifest(&Manifest{Group: group, Epoch: e, Records: keys,
			Roots: []uint64{100}, Prev: e - 1})
	}
	for e := uint64(1); e < epochs; e++ {
		if err := s.DropEpoch(group, e); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.AuditReachability(); err != nil {
		t.Fatalf("audit before compaction: %v", err)
	}

	before := s.Stats()
	freed := s.CompactPacks()
	if freed < 1 {
		t.Fatalf("compaction freed %d pack blocks from %d, want >= 1 (meta bytes %d)",
			freed, before.PackBlocks, before.MetaBytes)
	}
	after := s.Stats()
	if after.PacksCompacted != freed {
		t.Fatalf("PacksCompacted = %d, compaction reported %d", after.PacksCompacted, freed)
	}
	if err := s.AuditReachability(); err != nil {
		t.Fatalf("audit after compaction: %v", err)
	}
	if again := s.CompactPacks(); again != 0 {
		t.Fatalf("second compaction freed %d more blocks, want 0", again)
	}

	// Every surviving record still serves its metadata, and the moved
	// offsets round-trip through an index sync and a fresh mount.
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dev, clock)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < oids; i++ {
		oid := uint64(100 + i)
		rec, err := s2.GetRecord(group, oid, epochs)
		if err != nil {
			t.Fatalf("oid %d after reopen: %v", oid, err)
		}
		if !bytes.Equal(rec.Meta, meta(oid, epochs)) {
			t.Fatalf("oid %d metadata corrupted after compaction+reopen", oid)
		}
	}
	if err := s2.AuditReachability(); err != nil {
		t.Fatalf("audit after reopen: %v", err)
	}
}
