package spec

import (
	"testing"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func fixture(t *testing.T) (*kernel.Kernel, *core.API, *kernel.Process) {
	t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	api := core.NewAPI(o)
	p, _ := k.Spawn(0, "client")
	p.SetProgram(&kernel.FuncProgram{Name: "idle", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }})
	kernel.RegisterProgram("idle", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "idle", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }}, nil
	})
	g, _ := o.Persist("client", p)
	o.Attach(g, core.NewMemoryBackend(k.Mem, 8))
	return k, api, p
}

func TestCommitKeepsSpeculativeState(t *testing.T) {
	_, api, p := fixture(t)
	s := New(api)

	p.WriteMem(p.HeapBase(), []byte("base"))
	if err := s.Begin(p); err != nil {
		t.Fatal(err)
	}
	p.WriteMem(p.HeapBase(), []byte("spec")) // speculative write
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	p.ReadMem(p.HeapBase(), got)
	if string(got) != "spec" {
		t.Fatalf("state after commit = %q", got)
	}
	c, a := s.Stats()
	if c != 1 || a != 0 {
		t.Fatalf("stats = %d/%d", c, a)
	}
}

func TestAbortRollsBackAndNotifies(t *testing.T) {
	k, api, p := fixture(t)
	s := New(api)
	var notified *core.RollbackNotice
	s.OnRollback = func(n *core.RollbackNotice) { notified = n }

	p.WriteMem(p.HeapBase(), []byte("base"))
	if err := s.Begin(p); err != nil {
		t.Fatal(err)
	}
	p.WriteMem(p.HeapBase(), []byte("spec"))

	ng, notice, err := s.Abort(p)
	if err != nil {
		t.Fatal(err)
	}
	if notice == nil || notified != notice {
		t.Fatal("rollback notification not delivered")
	}
	np, _ := k.Process(ng.PIDs()[0])
	got := make([]byte, 4)
	np.ReadMem(np.HeapBase(), got)
	if string(got) != "base" {
		t.Fatalf("state after abort = %q, want pre-speculation", got)
	}
}

func TestAbortWithoutBegin(t *testing.T) {
	_, api, p := fixture(t)
	s := New(api)
	if _, _, err := s.Abort(p); err != ErrNoSpeculation {
		t.Fatalf("err = %v", err)
	}
	if err := s.Commit(); err != ErrNoSpeculation {
		t.Fatalf("err = %v", err)
	}
}

// TestSpeculativeSendPattern models the paper's example: a client
// sends data assuming success; on failure it rolls back to before the
// send and retries conservatively.
func TestSpeculativeSendPattern(t *testing.T) {
	k, api, p := fixture(t)
	s := New(api)

	attempt := func(proc *kernel.Process, transferOK bool) (*kernel.Process, bool) {
		s.Begin(proc)
		proc.WriteMem(proc.HeapBase(), []byte("sent-optimistically"))
		if transferOK {
			s.Commit()
			return proc, true
		}
		ng, _, err := s.Abort(proc)
		if err != nil {
			t.Fatal(err)
		}
		np, _ := k.Process(ng.PIDs()[0])
		return np, false
	}

	// First attempt fails: state rewinds.
	np, ok := attempt(p, false)
	if ok {
		t.Fatal("expected failure")
	}
	got := make([]byte, 19)
	np.ReadMem(np.HeapBase(), got)
	if string(got[:4]) == "sent" {
		t.Fatal("speculative write survived abort")
	}
	// Retry on the restored incarnation succeeds.
	np2, ok := attempt(np, true)
	if !ok {
		t.Fatal("expected success")
	}
	np2.ReadMem(np2.HeapBase(), got)
	if string(got) != "sent-optimistically" {
		t.Fatalf("committed state = %q", got)
	}
}
