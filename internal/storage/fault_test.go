package storage

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

func newFaulty(cfg FaultConfig) (*FaultDevice, *Clock) {
	clock := NewClock()
	inner := NewMemDevice(ParamsOptaneNVMe, clock)
	return NewFaultDevice(inner, clock, cfg), clock
}

// runSchedule performs a fixed op sequence and returns which ops failed.
func runSchedule(d *FaultDevice, n int) []bool {
	buf := make([]byte, 4096)
	outcome := make([]bool, 0, n)
	for i := 0; i < n; i++ {
		var err error
		switch i % 3 {
		case 0:
			_, err = d.WriteAt(buf, int64(i)*4096)
		case 1:
			_, err = d.ReadAt(buf, int64(i-1)*4096)
		case 2:
			_, err = d.Sync()
		}
		outcome = append(outcome, err != nil)
	}
	return outcome
}

func TestFaultDeterminism(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ReadErr: 0.2, WriteErr: 0.2, SyncErr: 0.2, TornWrite: 0.5, BitRot: 0.1}
	a, _ := newFaulty(cfg)
	b, _ := newFaulty(cfg)
	oa, ob := runSchedule(a, 300), runSchedule(b, 300)
	for i := range oa {
		if oa[i] != ob[i] {
			t.Fatalf("op %d diverged between identically seeded devices", i)
		}
	}
	if a.InjectedCount() == 0 {
		t.Fatal("no faults injected at 20% rates over 300 ops")
	}
	c, _ := newFaulty(FaultConfig{Seed: 43, ReadErr: 0.2, WriteErr: 0.2, SyncErr: 0.2})
	if oc := runSchedule(c, 300); equalBools(oa, oc) {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func equalBools(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFaultScriptMode(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 1})
	d.FailOps(FaultWrite, 2, 3)
	buf := make([]byte, 512)
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("op 1 should pass: %v", err)
	}
	if _, err := d.WriteAt(buf, 512); !errors.Is(err, ErrInjected) {
		t.Fatalf("op 2 should be injected, got %v", err)
	}
	// Reads are not targeted by a write script.
	if _, err := d.ReadAt(buf, 0); err != nil {
		t.Fatalf("read (op 3) should pass a write-only script: %v", err)
	}
	if _, err := d.WriteAt(buf, 1024); err != nil {
		t.Fatalf("op 4 is past the script window: %v", err)
	}
	d.ClearScripts()
	d.FailOps(FaultAny, d.OpCount()+1, d.OpCount()+1)
	if _, err := d.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("FaultAny script should hit sync, got %v", err)
	}
}

func TestFaultTornWrite(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 7})
	want := bytes.Repeat([]byte{0xee}, 4096)
	d.TearOps(1, 1)
	_, err := d.WriteAt(want, 0)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write must error, got %v", err)
	}
	got := make([]byte, 4096)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	prefix := 0
	for prefix < len(got) && got[prefix] == 0xee {
		prefix++
	}
	if prefix == 0 || prefix == len(got) {
		t.Fatalf("torn write landed %d of %d bytes; want a strict prefix", prefix, len(got))
	}
	for _, b := range got[prefix:] {
		if b != 0 {
			t.Fatal("bytes beyond the torn prefix must be untouched")
		}
	}
}

func TestFaultBitRot(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 3, BitRot: 1.0})
	want := bytes.Repeat([]byte{0x11}, 4096)
	// Writes are unaffected by BitRot.
	if _, err := d.WriteAt(want, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("bit rot must be silent, got %v", err)
	}
	if bytes.Equal(got, want) {
		t.Fatal("read at BitRot=1.0 returned pristine data")
	}
	diff := 0
	for i := range got {
		if got[i] != want[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit rot flipped %d bytes; want exactly 1", diff)
	}
}

func TestFaultDownUp(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 9})
	buf := make([]byte, 512)
	d.Down()
	if _, err := d.WriteAt(buf, 0); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("down device write: %v", err)
	}
	if _, err := d.ReadAt(buf, 0); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("down device read: %v", err)
	}
	if _, err := d.Sync(); !errors.Is(err, ErrDeviceDown) {
		t.Fatalf("down device sync: %v", err)
	}
	d.Up()
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("device should recover after Up: %v", err)
	}
}

func TestFaultSpikeChargesClock(t *testing.T) {
	d, clock := newFaulty(FaultConfig{Seed: 5, SpikeProb: 1.0, SpikeCost: 3 * time.Millisecond})
	before := clock.Now()
	if _, err := d.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if clock.Now()-before < 3*time.Millisecond {
		t.Fatalf("latency spike not charged: advanced %v", clock.Now()-before)
	}
}

func TestFaultRedirectSharesTimeline(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 11})
	lane := NewClock()
	view := Redirect(Device(d), lane)
	if _, ok := view.(*FaultDevice); !ok {
		t.Fatalf("Redirect returned %T; want *FaultDevice", view)
	}
	buf := make([]byte, 512)
	view.WriteAt(buf, 0)
	d.WriteAt(buf, 512)
	if d.OpCount() != 2 {
		t.Fatalf("views must share the op counter, got %d", d.OpCount())
	}
	// A script set on the parent hits ops issued through the view.
	d.FailOps(FaultAny, 3, 3)
	if _, err := view.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("script must apply across views, got %v", err)
	}
}

func TestFaultOpLog(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 13})
	d.SetLogging(true)
	buf := make([]byte, 512)
	d.WriteAt(buf, 4096)
	d.Sync()
	d.FailOps(FaultRead, 3, 3)
	d.ReadAt(buf, 4096)
	log := d.Log()
	if len(log) != 3 {
		t.Fatalf("log has %d entries; want 3", len(log))
	}
	if log[0].Kind != "write" || log[0].Off != 4096 || log[0].Err {
		t.Fatalf("bad write entry: %+v", log[0])
	}
	if log[1].Kind != "sync" || log[1].Err {
		t.Fatalf("bad sync entry: %+v", log[1])
	}
	if log[2].Kind != "read" || !log[2].Err {
		t.Fatalf("injected read not logged as error: %+v", log[2])
	}
}
