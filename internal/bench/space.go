package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// This file is the space-pressure harness: the checkpoint workload from
// the fault sweep run against a device deliberately sized to a handful
// of epochs, with the retention reclaimer and admission control keeping
// the stream alive forever. A run is only accepted if the durable epoch
// advanced monotonically, no ErrOutOfSpace ever reached a caller, the
// reachability audit passed after every reclamation, and every retained
// epoch restores bit-identical to what an unbounded control run
// checkpointed at the same workload point.

// spacePages is the patterned working set beyond the counter page.
const spacePages = 8

// SpaceConfig parameterizes one space-pressure run. Zero values pick
// defaults.
type SpaceConfig struct {
	Seed          int64
	Checkpoints   int // checkpoint barriers attempted
	StepsPerEpoch int // kernel steps between barriers

	// CapacityEpochs sizes the device to this many steady-state epochs
	// of headroom, measured from the unbounded control run (0 = an
	// unbounded device).
	CapacityEpochs int
	// KeepLast is the retention floor. Setting it at or above
	// CapacityEpochs makes retention and capacity fight, forcing the
	// emergency ladder (ENOSPC reclaim, checkpoint shedding) to cycle.
	KeepLast int
	// WriteErr is a per-write injected fault probability composed on
	// top of the space pressure.
	WriteErr float64
	// Marks overrides the pressure watermarks (zero = defaults).
	Marks core.Watermarks
}

func (c SpaceConfig) withDefaults() SpaceConfig {
	if c.Checkpoints == 0 {
		c.Checkpoints = 200
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 2
	}
	return c
}

// SpaceReport is the outcome of one space-pressure run.
type SpaceReport struct {
	Seed           int64
	CapacityEpochs int   // configured headroom (0 = unbounded)
	Capacity       int64 // device bytes the headroom translated to
	Checkpoints    int   // barriers attempted
	Admitted       int   // barriers that minted an epoch
	Durable        uint64

	Sheds           int64 // barriers shed by admission control
	EmergencySheds  int64 // sheds taken at the emergency watermark
	Scans           int64
	EmergencyScans  int64 // ENOSPC-triggered reclamations
	EpochsReclaimed int64
	BytesReclaimed  int64
	RetainedEpochs  int     // manifests left on the device at the end
	MaxUsage        float64 // worst usage fraction observed at a barrier
	FinalUsage      float64
	Injected        int64 // device faults injected

	VirtualTime time.Duration
	CkptPerVSec float64 // admitted epochs per virtual second
}

// spaceOutcome carries the live machine out of a run for verification.
type spaceOutcome struct {
	rep   *SpaceReport
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	sb    *core.StoreBackend
	g     *core.Group

	counterAt map[uint64]uint64 // epoch -> counter captured at its barrier
	barrierAt map[uint64]int    // epoch -> barrier index that minted it
	usedFirst int64             // device residency after the first durable epoch
}

// runSpace executes the workload loop against a device of the given
// byte capacity (0 = unbounded).
func runSpace(cfg SpaceConfig, capacity int64) (*spaceOutcome, error) {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	o.FlushWorkers = 1 // deterministic fault-schedule ordering

	params := storage.ParamsOptaneNVMe
	params.Capacity = capacity
	fd := storage.NewFaultDevice(storage.NewMemDevice(params, clock), clock,
		storage.FaultConfig{Seed: cfg.Seed, WriteErr: cfg.WriteErr})
	sb := core.NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)
	var rec *core.Reclaimer
	if capacity > 0 {
		rec = core.NewReclaimer(o, sb, core.RetentionPolicy{KeepLast: cfg.KeepLast}, cfg.Marks)
		// The standing invariant: reachability audited after every
		// reclaimed epoch. A failure aborts the scan and fails the run.
		rec.Audit = (*objstore.Store).AuditReachability
		sb.SetReclaimer(rec)
	}

	p, err := k.Spawn(0, "space-app")
	if err != nil {
		return nil, err
	}
	p.SetProgram(&chaosCounter{addr: p.HeapBase()})
	for pg := 1; pg <= spacePages; pg++ {
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, cfg.Seed)); err != nil {
			return nil, err
		}
	}
	g, err := o.Persist("space-app", p)
	if err != nil {
		return nil, err
	}
	o.Attach(g, sb)

	out := &spaceOutcome{
		rep: &SpaceReport{
			Seed:           cfg.Seed,
			CapacityEpochs: cfg.CapacityEpochs,
			Capacity:       capacity,
			Checkpoints:    cfg.Checkpoints,
		},
		clock: clock, k: k, o: o, sb: sb, g: g,
		counterAt: make(map[uint64]uint64),
		barrierAt: make(map[uint64]int),
	}

	readCounter := func() (uint64, error) {
		var b [8]byte
		if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(b[:]), nil
	}

	enospc := func(err error) error {
		if errors.Is(err, storage.ErrOutOfSpace) || errors.Is(err, objstore.ErrStoreFull) {
			return fmt.Errorf("bench: space seed %d: ErrOutOfSpace surfaced to a caller: %w", cfg.Seed, err)
		}
		return err
	}

	t0 := clock.Now()
	prevDurable := g.Durable()
	for i := 1; i <= cfg.Checkpoints; i++ {
		if _, err := k.Run(cfg.StepsPerEpoch); err != nil {
			return nil, err
		}
		counter, err := readCounter()
		if err != nil {
			return nil, err
		}
		bd, err := o.Checkpoint(g, core.CheckpointOpts{})
		if err != nil {
			return nil, enospc(fmt.Errorf("bench: space seed %d: barrier %d: %w", cfg.Seed, i, err))
		}
		if !bd.Shed {
			out.rep.Admitted++
			out.counterAt[g.Epoch()] = counter
			out.barrierAt[g.Epoch()] = i
		}
		if d := g.Durable(); d < prevDurable {
			return nil, fmt.Errorf("bench: space seed %d: durable epoch regressed %d -> %d at barrier %d",
				cfg.Seed, prevDurable, d, i)
		} else {
			prevDurable = d
		}
		if _, _, frac := sb.Store().Usage(); frac > out.rep.MaxUsage {
			out.rep.MaxUsage = frac
		}
		if out.usedFirst == 0 && g.Durable() >= 1 {
			out.usedFirst, _, _ = sb.Store().Usage()
		}
	}

	// Drain the pipeline; under injected faults or a cycling device a
	// round can fail and a later one succeed with fresh rolls.
	var syncErr error
	for round := 0; round < 12; round++ {
		syncErr = o.Sync(g)
		if syncErr == nil && g.Durable() == g.Epoch() {
			break
		}
	}
	if syncErr != nil {
		return nil, enospc(fmt.Errorf("bench: space seed %d: final sync: %w", cfg.Seed, syncErr))
	}
	if g.Durable() != g.Epoch() {
		return nil, fmt.Errorf("bench: space seed %d: durable %d stuck below barrier %d",
			cfg.Seed, g.Durable(), g.Epoch())
	}

	out.rep.Durable = g.Durable()
	out.rep.VirtualTime = clock.Now() - t0
	if out.rep.VirtualTime > 0 {
		out.rep.CkptPerVSec = float64(out.rep.Admitted) / out.rep.VirtualTime.Seconds()
	}
	out.rep.Sheds, out.rep.EmergencySheds = g.Sheds()
	out.rep.Injected = fd.InjectedCount()
	out.rep.RetainedEpochs = len(sb.Store().Manifests(g.ID))
	_, _, out.rep.FinalUsage = sb.Store().Usage()
	if rec != nil {
		st := rec.Stats()
		out.rep.Scans, out.rep.EmergencyScans = st.Scans, st.EmergencyScans
		out.rep.EpochsReclaimed, out.rep.BytesReclaimed = st.EpochsReclaimed, st.BytesReclaimed
		if st.LastAuditErr != "" {
			return nil, fmt.Errorf("bench: space seed %d: reachability audit failed during reclamation: %s",
				cfg.Seed, st.LastAuditErr)
		}
	}
	return out, nil
}

// verifyEpoch restores the lineage at one retained epoch and checks it
// bit-for-bit against the counter recorded at that barrier and the
// patterned working set.
func (out *spaceOutcome) verifyEpoch(seed int64, epoch uint64) error {
	want, ok := out.counterAt[epoch]
	if !ok {
		return fmt.Errorf("bench: space seed %d: retained epoch %d has no recorded barrier", seed, epoch)
	}
	ng, _, err := out.o.Restore(out.g, epoch, core.RestoreOpts{Validate: true})
	if err != nil {
		return fmt.Errorf("bench: space seed %d: restoring retained epoch %d: %w", seed, epoch, err)
	}
	p, err := out.k.Process(ng.PIDs()[0])
	if err != nil {
		return err
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		return fmt.Errorf("bench: space seed %d: epoch %d restored counter %d, want %d — not bit-identical",
			seed, epoch, got, want)
	}
	buf := make([]byte, vm.PageSize)
	for pg := 1; pg <= spacePages; pg++ {
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			return err
		}
		ref := recoveryPattern(pg, seed)
		for i := range buf {
			if buf[i] != ref[i] {
				return fmt.Errorf("bench: space seed %d: epoch %d page %d byte %d differs — not bit-identical",
					seed, epoch, pg, i)
			}
		}
	}
	return nil
}

// verifyAgainstControl checks every epoch retained on the bounded
// device: it must restore bit-identical, and the state it restores must
// be exactly what the unbounded control run checkpointed at the same
// workload barrier.
func (out *spaceOutcome) verifyAgainstControl(seed int64, control *spaceOutcome) error {
	ms := out.sb.Store().Manifests(out.g.ID)
	if len(ms) == 0 {
		return fmt.Errorf("bench: space seed %d: no epochs retained", seed)
	}
	for _, m := range ms {
		if err := out.verifyEpoch(seed, m.Epoch); err != nil {
			return err
		}
		if control == nil {
			continue
		}
		barrier := out.barrierAt[m.Epoch]
		// The control admitted every barrier, so its epoch number IS the
		// barrier index; the captured counters must agree exactly.
		cwant, ok := control.counterAt[uint64(barrier)]
		if !ok {
			return fmt.Errorf("bench: space seed %d: control run has no epoch for barrier %d", seed, barrier)
		}
		if got := out.counterAt[m.Epoch]; got != cwant {
			return fmt.Errorf("bench: space seed %d: epoch %d (barrier %d) captured counter %d, control captured %d",
				seed, m.Epoch, barrier, got, cwant)
		}
	}
	return nil
}

// sizeFor converts an epoch-count headroom into device bytes using the
// control run's measured footprint: the first durable epoch's residency
// (superblock + full image) plus the steady-state per-epoch growth.
func (control *spaceOutcome) sizeFor(epochs int) int64 {
	perEpoch := int64(0)
	usedFinal, _, _ := control.sb.Store().Usage()
	if control.rep.Admitted > 1 {
		perEpoch = (usedFinal - control.usedFirst) / int64(control.rep.Admitted-1)
	}
	if perEpoch <= 0 {
		perEpoch = 1
	}
	// The control-plane reserve (superblock slots + two index
	// generations) is held back from data allocations and never
	// amortizes into per-epoch growth. Since sub-block metadata packing
	// made per-epoch growth a few KB, the reserve must be budgeted
	// explicitly or it would eat a meaningful slice of the headroom.
	return control.usedFirst + perEpoch*int64(epochs) + control.sb.Store().ControlOverhead()
}

// SpaceRun runs the unbounded control and then, if cfg bounds the
// device, the pressured run — verifying every retained epoch restores
// bit-identical to the control. It returns the pressured run's report
// (or the control's when CapacityEpochs is 0).
func SpaceRun(cfg SpaceConfig) (*SpaceReport, error) {
	cfg = cfg.withDefaults()
	control, err := runSpace(cfg, 0)
	if err != nil {
		return nil, err
	}
	if err := control.verifyAgainstControl(cfg.Seed, nil); err != nil {
		return nil, err
	}
	if cfg.CapacityEpochs <= 0 {
		return control.rep, nil
	}
	out, err := runSpace(cfg, control.sizeFor(cfg.CapacityEpochs))
	if err != nil {
		return nil, err
	}
	if err := out.verifyAgainstControl(cfg.Seed, control); err != nil {
		return nil, err
	}
	if out.rep.EpochsReclaimed == 0 {
		return nil, fmt.Errorf("bench: space seed %d: %d checkpoints on a %d-epoch device reclaimed nothing",
			cfg.Seed, cfg.Checkpoints, cfg.CapacityEpochs)
	}
	return out.rep, nil
}

// SpaceSweep runs the checkpoint workload at each capacity headroom
// (epochs of room; 0 = unbounded control) and reports how sustained
// throughput and shedding respond as headroom disappears. One control
// run anchors both the device sizing and the bit-identity checks.
func SpaceSweep(ckpts int, capacities []int, seed int64) ([]*SpaceReport, error) {
	cfg := SpaceConfig{Seed: seed, Checkpoints: ckpts}.withDefaults()
	control, err := runSpace(cfg, 0)
	if err != nil {
		return nil, err
	}
	if err := control.verifyAgainstControl(seed, nil); err != nil {
		return nil, err
	}
	reports := make([]*SpaceReport, 0, len(capacities))
	for _, c := range capacities {
		if c <= 0 {
			reports = append(reports, control.rep)
			continue
		}
		pcfg := cfg
		pcfg.CapacityEpochs = c
		out, err := runSpace(pcfg, control.sizeFor(c))
		if err != nil {
			return nil, err
		}
		if err := out.verifyAgainstControl(seed, control); err != nil {
			return nil, err
		}
		reports = append(reports, out.rep)
	}
	return reports, nil
}
