package core

import (
	"errors"
	"fmt"
	"sync"

	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// This file implements watermark-driven space reclamation: the policy
// layer above the object store's merge-forward GC (objstore/gc.go).
// A bounded device fills up as checkpoints accumulate; the reclaimer
// keeps checkpointing alive forever by dropping old epochs under a
// retention policy when device usage crosses pressure watermarks, and
// by TRIMming freed blocks back to the device. Reclamation runs on a
// detached clock lane (background work, not the group's foreground
// timeline) and never touches an epoch the rest of the system still
// depends on — see protectionFor for the full set of safety floors.

// RetentionPolicy says which old epochs a group may lose to make room.
// The zero value is safe: keep the last defaultKeepLast epochs, never
// reclaim named checkpoints, no interval thinning.
type RetentionPolicy struct {
	// KeepLast is the minimum number of epochs retained per lineage
	// (0 = defaultKeepLast). Emergency reclamation may cut this to 1.
	KeepLast int
	// DropNamed allows reclaiming named checkpoints (snapshots and
	// clone anchors). Off by default: a name is a promise.
	DropNamed bool
	// MinInterval thins retained history under low pressure: epochs
	// closer than MinInterval to their retained predecessor are merged
	// forward (0 = no thinning).
	MinInterval uint64
}

// Watermarks are device-usage fractions driving the pressure ladder.
// The zero value selects the defaults.
type Watermarks struct {
	Low       float64 // reclaim down to here once triggered (default 0.60)
	High      float64 // above: reclaim before admitting checkpoints (default 0.80)
	Emergency float64 // above: shed checkpoints, forced floors (default 0.95)
}

// Default pressure configuration.
const (
	defaultKeepLast       = 2
	defaultLowWatermark   = 0.60
	defaultHighWatermark  = 0.80
	defaultEmergencyMark  = 0.95
	defaultShedAdmitEvery = 4
)

// PressureLevel is the device's position on the space-pressure ladder.
type PressureLevel int

const (
	// PressureNone: below the low watermark (or unbounded device).
	PressureNone PressureLevel = iota
	// PressureLow: above low — thin history, TRIM free blocks.
	PressureLow
	// PressureHigh: above high — reclaim aggressively; admission
	// control sheds checkpoints that reclamation cannot make room for.
	PressureHigh
	// PressureEmergency: above emergency — retention floors drop to
	// one epoch and ENOSPC-triggered reclaim runs inline.
	PressureEmergency
)

func (l PressureLevel) String() string {
	switch l {
	case PressureNone:
		return "none"
	case PressureLow:
		return "low"
	case PressureHigh:
		return "high"
	case PressureEmergency:
		return "emergency"
	default:
		return fmt.Sprintf("PressureLevel(%d)", int(l))
	}
}

// ReclaimStats is the reclaimer's cumulative effort.
type ReclaimStats struct {
	Scans           int64
	EmergencyScans  int64
	EpochsReclaimed int64
	BytesReclaimed  int64 // device residency returned by reclamation
	LastLevel       PressureLevel
	LastAuditErr    string
}

// Reclaimer drives retention GC for one store backend. It is attached
// with StoreBackend.SetReclaimer; the flush pipeline pokes it at every
// epoch retirement (StoreBackend.Trim) and the checkpoint path
// consults it for admission control. All reclamation runs single
// flight: concurrent pokes coalesce into one scan.
type Reclaimer struct {
	o  *Orchestrator
	sb *StoreBackend

	policy RetentionPolicy
	marks  Watermarks

	// Audit, when non-nil, runs against the store after every epoch
	// reclaimed (test harnesses wire AuditReachability here). A failure
	// aborts the scan and surfaces in Stats.
	Audit func(*objstore.Store) error

	mu       sync.Mutex
	scanning bool
	stats    ReclaimStats
}

// NewReclaimer builds a reclaimer for sb with zero-values replaced by
// defaults. It does not attach itself; call sb.SetReclaimer.
func NewReclaimer(o *Orchestrator, sb *StoreBackend, policy RetentionPolicy, marks Watermarks) *Reclaimer {
	if policy.KeepLast <= 0 {
		policy.KeepLast = defaultKeepLast
	}
	if marks.Low <= 0 {
		marks.Low = defaultLowWatermark
	}
	if marks.High <= 0 {
		marks.High = defaultHighWatermark
	}
	if marks.Emergency <= 0 {
		marks.Emergency = defaultEmergencyMark
	}
	return &Reclaimer{o: o, sb: sb, policy: policy, marks: marks}
}

// Usage reports the backing device's residency.
func (r *Reclaimer) Usage() (used, capacity int64, frac float64) {
	return r.sb.store.Usage()
}

// Level places current usage on the pressure ladder.
func (r *Reclaimer) Level() PressureLevel {
	_, capacity, frac := r.sb.store.Usage()
	if capacity <= 0 {
		return PressureNone
	}
	return r.levelOf(frac)
}

func (r *Reclaimer) levelOf(frac float64) PressureLevel {
	switch {
	case frac >= r.marks.Emergency:
		return PressureEmergency
	case frac >= r.marks.High:
		return PressureHigh
	case frac >= r.marks.Low:
		return PressureLow
	default:
		return PressureNone
	}
}

// Stats snapshots the reclaimer's counters.
func (r *Reclaimer) Stats() ReclaimStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Watermarks returns the configured pressure thresholds.
func (r *Reclaimer) Watermarks() Watermarks { return r.marks }

// Scan reclaims history if usage is above the low watermark, stopping
// as soon as usage drops back below it. Returns bytes of device
// residency freed. Safe to call from any goroutine; concurrent calls
// coalesce.
func (r *Reclaimer) Scan() int64 { return r.scan(false) }

// Emergency is the ENOSPC path: reclaim with retention floors forced
// down to one epoch per lineage, regardless of the computed usage
// fraction (an injected full device can reject writes below any
// watermark). Returns bytes freed.
func (r *Reclaimer) Emergency() int64 { return r.scan(true) }

func (r *Reclaimer) scan(emergency bool) int64 {
	r.mu.Lock()
	if r.scanning {
		r.mu.Unlock()
		return 0
	}
	r.scanning = true
	r.stats.Scans++
	if emergency {
		r.stats.EmergencyScans++
	}
	r.mu.Unlock()
	defer func() {
		r.mu.Lock()
		r.scanning = false
		r.mu.Unlock()
	}()

	usedBefore, capacity, frac := r.sb.store.Usage()
	var level PressureLevel
	if capacity > 0 {
		level = r.levelOf(frac)
	} else if emergency {
		// An unbounded (or residency-opaque) device rejected a write:
		// trust the ENOSPC over the computed fraction.
		level = PressureEmergency
	}
	r.mu.Lock()
	r.stats.LastLevel = level
	r.mu.Unlock()
	if !emergency && level < PressureLow {
		return 0
	}

	// Reclamation burns its own time, not the group's foreground
	// timeline: the store view charges to a detached lane.
	view := r.sb.store.WithClock(r.o.K.Clock.Lane())

	keep := r.policy.KeepLast
	if emergency {
		keep = 1
	}

	// Cheapest space first: TRIM blocks already on the free list.
	view.ReleaseSpace()

	epochs := int64(0)
	abort := false
	dropOne := func(gid, epoch uint64) bool {
		if err := view.DropEpoch(gid, epoch); err != nil {
			return false
		}
		epochs++
		if r.Audit != nil {
			if err := r.Audit(view); err != nil {
				r.mu.Lock()
				r.stats.LastAuditErr = err.Error()
				r.mu.Unlock()
				abort = true
			}
		}
		return true
	}

	if !emergency && level == PressureLow {
		// Low pressure: interval thinning only. History stays long; it
		// just loses checkpoints too close together to matter.
		if r.policy.MinInterval > 0 {
			prot := r.protectionFor(view)
			for _, gid := range view.Groups() {
				ms := view.Manifests(gid)
				if len(ms) <= keep {
					continue
				}
				lastKept := ms[0].Epoch
				for _, m := range ms[1 : len(ms)-1] {
					if abort {
						break
					}
					if m.Epoch-lastKept >= r.policy.MinInterval || prot.covers(gid, m.Epoch, r.policy) {
						lastKept = m.Epoch
						continue
					}
					if len(view.Manifests(gid)) <= keep {
						break
					}
					dropOne(gid, m.Epoch)
				}
			}
			view.ReleaseSpace()
		}
	} else {
		// High pressure (or forced emergency): drop the oldest
		// unprotected epoch of each lineage round-robin until usage is
		// back below the low watermark or nothing reclaimable remains.
		for !abort {
			if capacity > 0 {
				if _, _, f := r.sb.store.Usage(); f <= r.marks.Low {
					break
				}
			}
			dropped := false
			prot := r.protectionFor(view)
			for _, gid := range view.Groups() {
				if abort {
					break
				}
				ms := view.Manifests(gid)
				if len(ms) <= keep {
					continue
				}
				// Never the newest: dropping a lineage's last manifest
				// releases everything it still needs.
				for _, m := range ms[:len(ms)-1] {
					if prot.covers(gid, m.Epoch, r.policy) {
						continue
					}
					if dropOne(gid, m.Epoch) {
						dropped = true
					}
					break
				}
			}
			view.ReleaseSpace()
			if !dropped {
				break
			}
		}
		// Last resort, only once dropping found nothing: epoch drops
		// free whole data blocks but only decrement pack refcounts, so
		// a long churn can strand freed space inside half-dead pack
		// blocks. Compaction rewrites the survivors out and frees the
		// blocks. It stays off any scan that reclaimed normally — its
		// device writes would shift a seeded fault schedule for runs
		// that never needed it.
		if emergency && epochs == 0 && view.CompactPacks() > 0 {
			view.ReleaseSpace()
		}
	}

	usedAfter, _, _ := r.sb.store.Usage()
	freed := usedBefore - usedAfter
	if freed < 0 || usedBefore < 0 || usedAfter < 0 {
		freed = 0
	}
	r.mu.Lock()
	r.stats.EpochsReclaimed += epochs
	r.stats.BytesReclaimed += freed
	r.mu.Unlock()
	return freed
}

// protection is the set of epochs reclamation must not touch, per
// lineage: a floor (everything at or above it) plus exact pins.
type protection struct {
	floors map[uint64]uint64          // lineage -> protect epochs >= floor
	exact  map[uint64]map[uint64]bool // lineage -> pinned epochs
	named  map[uint64]map[uint64]bool // lineage -> named epochs
}

func (p *protection) lowerFloor(gid, floor uint64) {
	if cur, ok := p.floors[gid]; !ok || floor < cur {
		p.floors[gid] = floor
	}
}

func (p *protection) pin(gid, epoch uint64) {
	m := p.exact[gid]
	if m == nil {
		m = make(map[uint64]bool)
		p.exact[gid] = m
	}
	m[epoch] = true
}

// covers reports whether (gid, epoch) is protected under policy.
func (p *protection) covers(gid, epoch uint64, policy RetentionPolicy) bool {
	if floor, ok := p.floors[gid]; ok && epoch >= floor {
		return true
	}
	if p.exact[gid][epoch] {
		return true
	}
	if !policy.DropNamed && p.named[gid][epoch] {
		return true
	}
	return false
}

// protectionFor computes the reclamation safety floors against the
// current orchestrator and store state:
//
//  1. the durable/replication frontier — for a live group, every epoch
//     at or above Replicated() (≤ Durable(); epochs a sick backend
//     still owes stay put so catch-up can land on intact history);
//  2. quarantine fallbacks — for every quarantined epoch, the newest
//     good epoch below it (the epoch a restore would fall back to);
//  3. lineage anchors — the origin epoch of every live group restored
//     from this chain (its crash-loop fallback);
//  4. named checkpoints (unless the policy says otherwise);
//  5. replica catch-up floors — epochs at or above what a
//     partition-aware backend has contiguously acknowledged;
//  6. restore pins — epochs live demand-paging sources still read
//     blocks from (DropEpoch may free superseded blocks a lazy source
//     references by raw offset).
//
// The newest retained epoch of every lineage is additionally pinned:
// dropping it would release the lineage wholesale.
func (r *Reclaimer) protectionFor(view *objstore.Store) *protection {
	p := &protection{
		floors: make(map[uint64]uint64),
		exact:  make(map[uint64]map[uint64]bool),
		named:  make(map[uint64]map[uint64]bool),
	}

	for _, g := range r.o.Groups() {
		gid := g.ID
		// (1) the live group's own frontier.
		p.lowerFloor(gid, g.Replicated())
		// (5) what replicas have contiguously caught up to. Under a
		// quorum policy the floor is the W-th highest replica frontier,
		// not the minimum: a permanently-down minority must not pin
		// retention GC forever, because promotion elects from a
		// surviving quorum and the minority's missing epochs replay
		// from its in-memory catch-up queue, not from the store.
		var cuFloors []uint64
		for _, b := range g.Backends() {
			if cf, ok := b.(CatchUpFloorer); ok {
				if f := cf.CatchUpFloor(gid); f > 0 {
					cuFloors = append(cuFloors, f)
				}
			}
		}
		if w := g.quorumW(); w > 0 && len(cuFloors) > 0 {
			p.lowerFloor(gid, quorumFloor(cuFloors, quorumNeed(w, len(cuFloors))))
		} else {
			for _, f := range cuFloors {
				p.lowerFloor(gid, f)
			}
		}
		// (3) the chain this group was restored from.
		if org, anchor := g.originAnchor(); org != 0 && org != gid && anchor > 0 {
			p.pin(org, anchor)
		}
		// (6) epochs live lazy restores still page from.
		for _, pin := range g.sourcePins() {
			p.pin(pin[0], pin[1])
		}
	}

	for _, gid := range view.Groups() {
		ms := view.Manifests(gid)
		if len(ms) > 0 {
			p.pin(gid, ms[len(ms)-1].Epoch)
		}
		for _, m := range ms {
			if m.Name != "" {
				nm := p.named[gid]
				if nm == nil {
					nm = make(map[uint64]bool)
					p.named[gid] = nm
				}
				nm[m.Epoch] = true
			}
		}
		// (2) quarantined epochs must keep their fallback target.
		for q := range view.QuarantinedEpochs(gid) {
			if m, err := view.LatestGoodManifest(gid, q); err == nil {
				p.pin(gid, m.Epoch)
			}
		}
	}
	return p
}

// CatchUpFloorer is implemented by backends (netback replicas) that
// track how far the far side has contiguously acknowledged a lineage's
// epochs. Reclamation never drops an epoch at or above that floor: the
// replica may still need to serve it after a promotion.
type CatchUpFloorer interface {
	CatchUpFloor(group uint64) uint64
}

// emergencyReclaim runs an ENOSPC-triggered emergency reclamation on
// b's reclaimer, reporting whether any space came back.
func (o *Orchestrator) emergencyReclaim(b Backend) bool {
	sb, ok := b.(*StoreBackend)
	if !ok || sb.rec == nil {
		return false
	}
	return sb.rec.Emergency() > 0
}

// syncWithReclaim persists sb's superblock, treating a full device the
// way the flusher does: reclaim under emergency policy and retry as
// long as reclamation keeps finding space. Control-plane writes (fence
// and generation persistence) must not fail just because checkpoint
// history has filled the device.
func (o *Orchestrator) syncWithReclaim(sb *StoreBackend) error {
	for {
		err := sb.Store().Sync()
		if err == nil || !errors.Is(err, storage.ErrOutOfSpace) {
			return err
		}
		if !o.emergencyReclaim(sb) {
			return err
		}
	}
}
