package core_test

// The whole-system chaos harness: storage faults, link faults, process
// crashes with supervisor restarts, a transient partition with heal,
// one forced replica promotion, and one stale-primary return — all
// composed under one seeded schedule, with the core invariants
// (durable monotonicity, bit-identical restores, released output never
// lost, exactly one primary per lineage) re-checked after every event.
// The engine lives in internal/bench (ChaosRun); this test binds it to
// the seeds the repo's `make chaoscheck` pins.

import (
	"testing"

	"aurora/internal/bench"
)

func chaosConfig(seed int64) bench.ChaosConfig {
	return bench.ChaosConfig{
		Seed:            seed,
		Checkpoints:     24,
		StepsPerEpoch:   3,
		LinkDrop:        0.02,
		LinkDup:         0.05,
		LinkReorder:     0.05,
		LinkCorrupt:     0.01,
		StoreWriteErr:   0.02,
		StoreReadErr:    0.01,
		CrashEvery:      8,
		PartitionAt:     10,
		PartitionLen:    3,
		DivergentEpochs: 4,
		PostEpochs:      6,
	}
}

func runChaos(t *testing.T, seed int64) {
	t.Helper()
	rep, err := bench.ChaosRun(chaosConfig(seed))
	if err != nil {
		t.Fatalf("chaos seed %d: %v", seed, err)
	}
	// The schedule must actually have exercised every event class.
	if rep.Crashes < 1 || rep.Restores < 1 {
		t.Fatalf("seed %d: crashes=%d restores=%d, want >= 1 each", seed, rep.Crashes, rep.Restores)
	}
	if rep.Heals != 1 {
		t.Fatalf("seed %d: heals=%d, want 1 transient partition healed", seed, rep.Heals)
	}
	if rep.Partitions < 2 {
		t.Fatalf("seed %d: partitions=%d, want >= 2 (transient + permanent)", seed, rep.Partitions)
	}
	if rep.LinkDropped == 0 {
		t.Fatalf("seed %d: no frames dropped on the link", seed)
	}
	if rep.PromoteGen < 2 {
		t.Fatalf("seed %d: promotion generation %d, want >= 2", seed, rep.PromoteGen)
	}
	if rep.Floor == 0 || rep.Backfilled == 0 {
		t.Fatalf("seed %d: floor=%d backfilled=%d, want nonzero", seed, rep.Floor, rep.Backfilled)
	}
	if rep.PromoteTTR <= 0 {
		t.Fatalf("seed %d: promotion TTR %v not modeled", seed, rep.PromoteTTR)
	}
	if rep.CatchUp <= 0 {
		t.Fatalf("seed %d: catch-up time %v not modeled", seed, rep.CatchUp)
	}
	if rep.StaleRejected < 2 {
		t.Fatalf("seed %d: staleRejected=%d, want the fenced flush and the refused barrier", seed, rep.StaleRejected)
	}
	if rep.Quarantined < 4 {
		t.Fatalf("seed %d: quarantined=%d, want >= 4 divergent epochs", seed, rep.Quarantined)
	}
	if rep.Released <= rep.Floor {
		t.Fatalf("seed %d: released watermark %d did not advance past the promotion floor %d", seed, rep.Released, rep.Floor)
	}
	t.Logf("seed %d: %d checkpoints, %d crashes, %d partitions, floor %d, gen %d, catch-up %v, promote TTR %v",
		seed, rep.Checkpoints, rep.Crashes, rep.Partitions, rep.Floor, rep.PromoteGen, rep.CatchUp, rep.PromoteTTR)
}

func TestChaosSeed1(t *testing.T)  { runChaos(t, 1) }
func TestChaosSeed7(t *testing.T)  { runChaos(t, 7) }
func TestChaosSeed42(t *testing.T) { runChaos(t, 42) }

// Quorum chaos: 500 checkpoints on a 3-replica set (write quorum 2
// over store + links) with one replica killed mid-run and restarted,
// one replica partitioned and healed, and a deliberately slow last
// link — under seeded frame drop/dup/reorder/corrupt on every link.
// The acceptance bar from the quorum-replication PR: durable reaches
// 500 monotone, the W=2 median durable latency beats the all-backends
// baseline (quorum hides the slow member), the killed replica catches
// back up to the contiguous floor, and restores from every member are
// bit-identical after quorum promotion.
func runQuorumChaos(t *testing.T, seed int64) {
	t.Helper()
	rep, err := bench.QuorumChaosRun(bench.QuorumChaosConfig{
		Seed:        seed,
		Replicas:    3,
		W:           2,
		Checkpoints: 500,
		LinkDrop:    0.01,
		LinkDup:     0.02,
		LinkReorder: 0.02,
		LinkCorrupt: 0.005,
	})
	if err != nil {
		t.Fatalf("quorum chaos seed %d: %v", seed, err)
	}
	if rep.Durable != 500 {
		t.Fatalf("seed %d: durable %d, want 500", seed, rep.Durable)
	}
	if rep.BaselineMedian <= 0 || rep.MedianDurable > rep.BaselineMedian {
		t.Fatalf("seed %d: W=2 median durable latency %v exceeds all-backends baseline %v",
			seed, rep.MedianDurable, rep.BaselineMedian)
	}
	if rep.Kills != 1 || rep.Heals < 2 {
		t.Fatalf("seed %d: kills=%d heals=%d, want 1 kill and >= 2 heals", seed, rep.Kills, rep.Heals)
	}
	if rep.CatchUpEpochs == 0 {
		t.Fatalf("seed %d: restarted replica replayed no catch-up epochs", seed)
	}
	if rep.LinkDropped == 0 || rep.LinkInjected == 0 {
		t.Fatalf("seed %d: link faults not exercised (dropped=%d injected=%d)", seed, rep.LinkDropped, rep.LinkInjected)
	}
	if rep.PagesSkipped == 0 {
		t.Fatalf("seed %d: compact deltas never skipped a page by content hash", seed)
	}
	if rep.PromoteGen < 2 || rep.Repaired == 0 {
		t.Fatalf("seed %d: promotion gen=%d repaired=%d, want gen >= 2 and read-repair", seed, rep.PromoteGen, rep.Repaired)
	}
	if rep.RestoresVerified < 3 {
		t.Fatalf("seed %d: only %d bit-identical restores verified, want >= 3", seed, rep.RestoresVerified)
	}
	if rep.Released+1 < rep.Durable {
		t.Fatalf("seed %d: released watermark %d lags durable %d", seed, rep.Released, rep.Durable)
	}
	t.Logf("seed %d: durable %d, median %v vs baseline %v, catch-up %d epochs, pages sent/skipped %d/%d, gen %d, repaired %d, restores %d",
		seed, rep.Durable, rep.MedianDurable, rep.BaselineMedian, rep.CatchUpEpochs,
		rep.PagesSent, rep.PagesSkipped, rep.PromoteGen, rep.Repaired, rep.RestoresVerified)
}

func TestQuorumChaosSeed1(t *testing.T)  { runQuorumChaos(t, 1) }
func TestQuorumChaosSeed7(t *testing.T)  { runQuorumChaos(t, 7) }
func TestQuorumChaosSeed42(t *testing.T) { runQuorumChaos(t, 42) }
