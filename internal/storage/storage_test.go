package storage

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock should start at 0, got %v", c.Now())
	}
	c.Advance(5 * time.Microsecond)
	if got := c.Now(); got != 5*time.Microsecond {
		t.Fatalf("Now() = %v, want 5µs", got)
	}
	c.Advance(-time.Second)
	if got := c.Now(); got != 5*time.Microsecond {
		t.Fatalf("negative advance moved clock: %v", got)
	}
}

func TestClockSetClampsNegative(t *testing.T) {
	c := NewClock()
	c.Set(-time.Second)
	if c.Now() != 0 {
		t.Fatalf("Set(-1s) should clamp to 0, got %v", c.Now())
	}
	c.Set(time.Millisecond)
	if c.Now() != time.Millisecond {
		t.Fatalf("Set(1ms) got %v", c.Now())
	}
}

func TestStopwatch(t *testing.T) {
	c := NewClock()
	sw := c.Watch()
	c.Advance(42 * time.Microsecond)
	if got := sw.Elapsed(); got != 42*time.Microsecond {
		t.Fatalf("Elapsed() = %v, want 42µs", got)
	}
}

func TestMicrosFormat(t *testing.T) {
	if got := Micros(5145900 * time.Nanosecond); got != "5145.9 µs" {
		t.Fatalf("Micros = %q", got)
	}
}

func TestMemDeviceReadWrite(t *testing.T) {
	c := NewClock()
	d := NewMemDevice(ParamsDRAM, c)
	data := []byte("hello single level store")
	if _, err := d.WriteAt(data, 100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestMemDeviceSparseReadsZero(t *testing.T) {
	d := NewMemDevice(ParamsDRAM, NewClock())
	got := make([]byte, 64)
	for i := range got {
		got[i] = 0xff
	}
	if _, err := d.ReadAt(got, 1<<40); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d of unwritten region = %#x, want 0", i, b)
		}
	}
}

func TestMemDeviceCrossBlockWrite(t *testing.T) {
	p := ParamsDRAM
	p.BlockSize = 8
	d := NewMemDevice(p, NewClock())
	data := []byte("0123456789abcdef0123")
	if _, err := d.WriteAt(data, 5); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(got, 5); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("cross-block read %q != %q", got, data)
	}
}

func TestMemDeviceBadOffset(t *testing.T) {
	d := NewMemDevice(ParamsDRAM, NewClock())
	if _, err := d.WriteAt([]byte{1}, -1); err != ErrBadOffset {
		t.Fatalf("WriteAt(-1) err = %v, want ErrBadOffset", err)
	}
	if _, err := d.ReadAt([]byte{1}, -1); err != ErrBadOffset {
		t.Fatalf("ReadAt(-1) err = %v, want ErrBadOffset", err)
	}
}

func TestMemDeviceCapacity(t *testing.T) {
	p := ParamsDRAM
	p.Capacity = 8192
	p.BlockSize = 4096
	d := NewMemDevice(p, NewClock())
	if _, err := d.WriteAt(make([]byte, 8192), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt([]byte{1}, 1<<20); err != ErrOutOfSpace {
		t.Fatalf("over-capacity write err = %v, want ErrOutOfSpace", err)
	}
}

func TestMemDeviceClosed(t *testing.T) {
	d := NewMemDevice(ParamsDRAM, NewClock())
	d.Close()
	if _, err := d.WriteAt([]byte{1}, 0); err != ErrClosed {
		t.Fatalf("write after close err = %v", err)
	}
	if _, err := d.ReadAt([]byte{1}, 0); err != ErrClosed {
		t.Fatalf("read after close err = %v", err)
	}
	if _, err := d.Sync(); err != ErrClosed {
		t.Fatalf("sync after close err = %v", err)
	}
}

func TestMemDeviceDiscard(t *testing.T) {
	p := ParamsDRAM
	p.BlockSize = 4096
	d := NewMemDevice(p, NewClock())
	if _, err := d.WriteAt(make([]byte, 3*4096), 0); err != nil {
		t.Fatal(err)
	}
	if d.Resident() != 3*4096 {
		t.Fatalf("resident = %d", d.Resident())
	}
	d.Discard(4096, 4096)
	if d.Resident() != 2*4096 {
		t.Fatalf("resident after discard = %d, want %d", d.Resident(), 2*4096)
	}
	// Partial-block discard zeroes without releasing.
	if _, err := d.WriteAt([]byte{0xaa}, 10); err != nil {
		t.Fatal(err)
	}
	d.Discard(10, 1)
	b := make([]byte, 1)
	if _, err := d.ReadAt(b, 10); err != nil {
		t.Fatal(err)
	}
	if b[0] != 0 {
		t.Fatalf("partial discard did not zero byte: %#x", b[0])
	}
}

func TestDeviceCostModel(t *testing.T) {
	c := NewClock()
	d := NewMemDevice(ParamsOptaneNVMe, c)
	cost, err := d.WriteAt(make([]byte, 1<<20), 0)
	if err != nil {
		t.Fatal(err)
	}
	// 1 MiB at 2000 MiB/s = 500 µs, plus 10 µs latency.
	want := 10*time.Microsecond + 500*time.Microsecond
	if cost != want {
		t.Fatalf("write cost = %v, want %v", cost, want)
	}
	if c.Now() != want {
		t.Fatalf("clock advanced %v, want %v", c.Now(), want)
	}
}

func TestDeviceStats(t *testing.T) {
	d := NewMemDevice(ParamsDRAM, NewClock())
	d.WriteAt(make([]byte, 100), 0)
	d.ReadAt(make([]byte, 50), 0)
	d.Sync()
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.Syncs != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.BytesWritten != 100 || s.BytesRead != 50 {
		t.Fatalf("byte counters = %+v", s)
	}
	if s.Busy <= 0 {
		t.Fatalf("busy time not accumulated")
	}
}

func TestArrayStriping(t *testing.T) {
	c := NewClock()
	a := NewOptaneArray(4, c)
	data := make([]byte, 300<<10) // spans several 64 KiB stripes
	for i := range data {
		data[i] = byte(i * 7)
	}
	if _, err := a.WriteAt(data, 12345); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := a.ReadAt(got, 12345); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("striped read-back mismatch")
	}
	s := a.Stats()
	if s.BytesWritten != int64(len(data)) {
		t.Fatalf("array bytes written = %d, want %d", s.BytesWritten, len(data))
	}
}

func TestArrayAggregateParams(t *testing.T) {
	a := NewOptaneArray(4, NewClock())
	p := a.Params()
	if p.ReadBW != ParamsOptaneNVMe.ReadBW*4 {
		t.Fatalf("aggregate read BW = %d", p.ReadBW)
	}
	if p.QueueDepth != ParamsOptaneNVMe.QueueDepth*4 {
		t.Fatalf("aggregate queue depth = %d", p.QueueDepth)
	}
}

func TestArraySingleMemberError(t *testing.T) {
	if _, err := NewArray(nil, 0); err == nil {
		t.Fatal("NewArray(nil) should fail")
	}
}

func TestArraySync(t *testing.T) {
	a := NewOptaneArray(2, NewClock())
	if _, err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	if a.Stats().Syncs != 2 {
		t.Fatalf("syncs = %d, want 2", a.Stats().Syncs)
	}
}

func TestBatchCost(t *testing.T) {
	p := ParamsOptaneNVMe // queue depth 16
	each := 10 * time.Microsecond
	if got := Batch(p, 0, each); got != 0 {
		t.Fatalf("Batch(0) = %v", got)
	}
	if got := Batch(p, 1, each); got != each {
		t.Fatalf("Batch(1) = %v, want %v (never below one op)", got, each)
	}
	if got := Batch(p, 160, each); got != 100*time.Microsecond {
		t.Fatalf("Batch(160) = %v, want 100µs", got)
	}
}

func TestBWCostZero(t *testing.T) {
	if bwCost(100, 0) != 0 {
		t.Fatal("bwCost with zero bandwidth should be 0")
	}
	if bwCost(0, 1000) != 0 {
		t.Fatal("bwCost with zero bytes should be 0")
	}
}

// Property: any sequence of writes followed by reads of the same
// ranges returns exactly the written data (device is a faithful store
// regardless of offsets/alignment).
func TestQuickDeviceRoundTrip(t *testing.T) {
	d := NewMemDevice(ParamsDRAM, NewClock())
	f := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := d.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := d.ReadAt(got, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: striping preserves data for arbitrary offsets and sizes.
func TestQuickArrayRoundTrip(t *testing.T) {
	a := NewOptaneArray(3, NewClock())
	f := func(off uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if _, err := a.WriteAt(data, int64(off)); err != nil {
			return false
		}
		got := make([]byte, len(data))
		if _, err := a.ReadAt(got, int64(off)); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDeviceClassString(t *testing.T) {
	names := map[DeviceClass]string{
		ClassDRAM:       "dram",
		ClassNVDIMM:     "nvdimm",
		ClassOptaneNVMe: "optane-nvme",
		ClassFlashNVMe:  "flash-nvme",
		ClassSATASSD:    "sata-ssd",
		ClassHDD:        "hdd",
		DeviceClass(99): "unknown",
	}
	for c, want := range names {
		if c.String() != want {
			t.Fatalf("%d.String() = %q, want %q", c, c.String(), want)
		}
	}
}
