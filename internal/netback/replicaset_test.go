package netback

import (
	"errors"
	"net"
	"strings"
	"testing"

	"aurora/internal/core"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

var _ core.ReplicaRepairTarget = (*Receiver)(nil)

// setMember is one replica link of a test set: its own machine,
// receiver, backend, and pipe.
type setMember struct {
	m    *machine
	recv *Receiver
	rb   *ReplicaBackend
	conn net.Conn
	done chan error
}

func dialMember(t *testing.T, src *machine, group uint64, mem *setMember) {
	t.Helper()
	local, remote := net.Pipe()
	mem.conn = local
	mem.done = serveReplica(mem.recv, remote)
	if _, err := mem.rb.Connect(local, group); err != nil {
		t.Fatal(err)
	}
}

// TestReplicaSetQuorumFloorAndLagging drives a 3-member set with a
// 2-of-3 write quorum: the quorum floor tracks the W-th highest acked
// frontier, durability keeps advancing with one member severed, and
// Lagging names the straggler behind an ErrReplicaLagging wrap that
// callers select on with errors.Is.
func TestReplicaSetQuorumFloorAndLagging(t *testing.T) {
	src := newMachine()
	src.o.FlushWorkers = 1
	_, g := spawn(t, src)

	rs := NewReplicaSet(2)
	members := make([]*setMember, 3)
	for i := range members {
		mem := &setMember{m: newMachine()}
		mem.recv = NewReceiver(mem.m.k.Mem, mem.m.clock)
		mem.rb = NewReplicaBackend(src.clock)
		rs.Add([]string{"r0", "r1", "r2"}[i], mem.rb, mem.recv)
		members[i] = mem
	}
	rs.AttachAll(src.o, g)
	if w, _, n := g.QuorumStatus(); w != 2 || n != 3 {
		t.Fatalf("QuorumStatus = W%d N%d, want W2 N3", w, n)
	}
	for _, mem := range members {
		dialMember(t, src, g.ID, mem)
	}

	ckpt := func() {
		src.k.Run(3)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		ckpt()
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if floors := rs.AckedFloors(g.ID); floors[0] != 3 || floors[1] != 3 || floors[2] != 3 {
		t.Fatalf("healthy acked floors = %v, want [3 3 3]", floors)
	}
	if qf := rs.QuorumFloor(g.ID); qf != 3 {
		t.Fatalf("healthy quorum floor = %d, want 3", qf)
	}
	if err := rs.Lagging(g.ID, 0); err != nil {
		t.Fatalf("healthy Lagging = %v, want nil", err)
	}

	// Sever r2: the quorum of r0+r1 keeps the group durable while r2's
	// frontier freezes, and Lagging reports exactly that member.
	members[2].conn.Close()
	if err := <-members[2].done; err != nil {
		t.Fatalf("serve after hangup: %v", err)
	}
	ckpt()
	ckpt()
	if err := src.o.Sync(g); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("Sync with severed member = %v, want ErrDisconnected wrap", err)
	}
	if got := g.Durable(); got != 5 {
		t.Fatalf("durable = %d with a severed minority, want 5", got)
	}
	if qf := rs.QuorumFloor(g.ID); qf != 5 {
		t.Fatalf("quorum floor = %d with a severed minority, want 5", qf)
	}
	err := rs.Lagging(g.ID, 1)
	if !errors.Is(err, ErrReplicaLagging) {
		t.Fatalf("Lagging = %v, want ErrReplicaLagging wrap", err)
	}
	if !strings.Contains(err.Error(), "r2@3") {
		t.Fatalf("Lagging = %v, want the straggler named as r2@3", err)
	}
	if err := rs.Lagging(g.ID, 10); err != nil {
		t.Fatalf("Lagging within tolerance = %v, want nil", err)
	}

	// Reconnect and resync: the straggler catches up and the report
	// clears.
	dialMember(t, src, g.ID, members[2])
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if err := rs.Lagging(g.ID, 0); err != nil {
		t.Fatalf("post-heal Lagging = %v, want nil", err)
	}
	if f := members[2].rb.AckedFloor(g.ID); f != 5 {
		t.Fatalf("post-heal acked floor = %d, want 5", f)
	}
	if len(rs.Sources()) != 3 {
		t.Fatalf("Sources() = %d members, want 3", len(rs.Sources()))
	}
}

// TestCompactDeltaSkipAndNeedResend pins the compact-delta protocol:
// pages the receiver already acked travel as 32-byte content-hash
// refs; a receiver that cannot resolve a ref answers with a need
// frame, which forces a full resend and resets the sender's cache —
// the cache is an optimization, never a correctness input.
func TestCompactDeltaSkipAndNeedResend(t *testing.T) {
	src := newMachine()
	src.o.FlushWorkers = 1
	p, g := spawn(t, src)
	// A static working set beside the counter page: these pages never
	// change again, so a full recapture can elide them as refs.
	page := make([]byte, vm.PageSize)
	for pg := 1; pg <= 4; pg++ {
		for i := range page {
			page[i] = byte(pg * 31)
		}
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), page); err != nil {
			t.Fatal(err)
		}
	}
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, src.clock)
	sb := core.NewStoreBackend(objstore.Create(dev, src.clock), src.k.Mem, src.clock)
	src.o.Attach(g, sb)
	rb := NewReplicaBackend(src.clock)
	src.o.Attach(g, rb)

	dstA := newMachine()
	recvA := NewReceiver(dstA.k.Mem, dstA.clock)
	local, remote := net.Pipe()
	doneA := serveReplica(recvA, remote)
	if _, err := rb.Connect(local, g.ID); err != nil {
		t.Fatal(err)
	}

	// Epoch 1, then a forced-full epoch 2: the full recapture ships
	// its unchanged pages as refs against the epoch-1 acks.
	src.k.Run(3)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	src.k.Run(3)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{Full: true}); err != nil {
		t.Fatal(err)
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	_, skipped, resends := rb.DeltaStats()
	if skipped == 0 {
		t.Fatal("full recapture skipped no pages by content hash")
	}
	if resends != 0 {
		t.Fatalf("resends = %d against a receiver that has every ref, want 0", resends)
	}
	if img, err := recvA.ImageAt(g.ID, 2); err != nil || img.Epoch != 2 {
		t.Fatalf("receiver A at epoch 2: img=%v err=%v", img, err)
	}

	// Simulate a stale cache: receiver A dies; a brand-new empty
	// receiver B takes over, and we resurrect the pre-crash hash cache
	// behind the protocol's back (Connect correctly reset it on the
	// floor regression). Replayed compact deltas now carry refs B
	// cannot resolve — the need/full-resend path must repair it.
	saved := make(map[objstore.Hash]bool)
	rb.core.mu.Lock()
	for h := range rb.core.known {
		saved[h] = true
	}
	rb.core.mu.Unlock()
	if len(saved) == 0 {
		t.Fatal("no hash cache accumulated over two acked epochs")
	}
	local.Close()
	if err := <-doneA; err != nil {
		t.Fatalf("serve A at shutdown: %v", err)
	}

	dstB := newMachine()
	recvB := NewReceiver(dstB.k.Mem, dstB.clock)
	local, remote = net.Pipe()
	doneB := serveReplica(recvB, remote)
	floor, err := rb.Connect(local, g.ID)
	if err != nil {
		t.Fatal(err)
	}
	if floor != 0 {
		t.Fatalf("fresh receiver floor = %d, want 0", floor)
	}
	if f := rb.AckedFloor(g.ID); f != 0 {
		t.Fatalf("acked ledger = %d after floor regression, want reset to 0", f)
	}
	rb.core.mu.Lock()
	rb.core.known = saved // the lie under test
	rb.core.mu.Unlock()

	for epoch := uint64(1); epoch <= 2; epoch++ {
		img, _, err := sb.Load(g.ID, epoch)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := rb.Flush(img); err != nil {
			t.Fatalf("replaying epoch %d: %v", epoch, err)
		}
	}
	if n := recvB.NeedsSent(); n == 0 {
		t.Fatal("receiver B never sent a need frame for an unresolvable ref")
	}
	if _, _, resends := rb.DeltaStats(); resends == 0 {
		t.Fatal("sender never fell back to a full resend")
	}
	if f := rb.AckedFloor(g.ID); f != 2 {
		t.Fatalf("acked floor after repair = %d, want 2", f)
	}
	if got := recvB.ContiguousEpoch(g.ID); got != 2 {
		t.Fatalf("receiver B contiguous epoch = %d, want 2", got)
	}

	// The repaired replica restores bit-identically.
	img, err := recvB.ImageAt(g.ID, 2)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dstB.o.RestoreImage(img, 0, core.RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := dstB.k.Process(ng.PIDs()[0])
	var c [1]byte
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 6 {
		t.Fatalf("restored counter = %d, want 6", c[0])
	}

	local.Close()
	if err := <-doneB; err != nil {
		t.Fatalf("serve B at shutdown: %v", err)
	}
}
