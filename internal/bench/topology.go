package bench

import (
	"fmt"
	"io"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Shared fleet topology builder. Every chaos engine in this package
// simulates the same two primitives — a *machine* (its own virtual
// clock, kernel, orchestrator, and fault-injecting store) and a *wire*
// (a fault link carrying the acked replica protocol between a sender
// backend and a far-side receiver). The placement, migrate, and quorum
// engines used to each hardcode their own copies; Topology is the one
// builder they all compose stores through, so a fix to the connect /
// reset / teardown dance lands everywhere at once.

// Topology builds machines and wires under one link-fault template.
type Topology struct {
	faults netback.LinkFaultConfig // per-wire template; Seed is per-wire
	nodes  []*Node
}

// NewTopology creates a builder whose wires inject faults per the
// template (the template's Seed is ignored — each wire passes its
// own, so two wires never replay the same fault schedule).
func NewTopology(faults netback.LinkFaultConfig) *Topology {
	return &Topology{faults: faults}
}

// Nodes lists every node built so far, in build order.
func (tp *Topology) Nodes() []*Node { return tp.nodes }

// Node is one simulated machine: its own virtual clock, kernel,
// orchestrator, and fault-injecting store.
type Node struct {
	name  string
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	fd    *storage.FaultDevice
	sb    *core.StoreBackend
}

// Node builds a machine whose store device injects faults at the
// given rates under its own seed.
func (tp *Topology) Node(name string, seed int64, writeErr, readErr float64) *Node {
	n := NewNode(name, seed, writeErr, readErr)
	tp.nodes = append(tp.nodes, n)
	return n
}

// NewNode builds one standalone machine (no topology bookkeeping).
func NewNode(name string, seed int64, writeErr, readErr float64) *Node {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	o.FlushWorkers = 1 // deterministic fan-out ordering
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: seed, WriteErr: writeErr, ReadErr: readErr})
	sb := core.NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)
	return &Node{name: name, clock: clock, k: k, o: o, fd: fd, sb: sb}
}

// Wire is one replication wire: a fault link carrying the acked
// replica stream (plus migration handoff frames) from a sender-side
// ReplicaBackend to a far-side Receiver.
type Wire struct {
	name       string
	link       *netback.FaultLink
	endA, endB io.ReadWriteCloser
	rb         *netback.ReplicaBackend
	recv       *netback.Receiver
	pm         *vm.PhysMem    // standalone endpoints own their memory
	clock      *storage.Clock // ... and their clock
	serveDone  chan error
	serving    bool

	// Scripted partition: while blockedFor > 0, reconnect attempts
	// burn down the counter instead of healing — the wire stays
	// partitioned across that many retry attempts.
	blockedFor int
	// down marks a scripted kill/partition window (engine bookkeeping).
	down bool
}

// Wire strings a wire from src to a receiver on dst's memory and
// clock, injecting faults per the topology template under seed.
func (tp *Topology) Wire(seed int64, src, dst *Node) *Wire {
	w := tp.wire(seed, src)
	w.name = fmt.Sprintf("%s->%s", src.name, dst.name)
	w.recv = netback.NewReceiver(dst.k.Mem, dst.clock)
	return w
}

// Endpoint strings a wire from src to a standalone receiver with its
// own physical memory and clock — a replica that is not a full
// machine (the quorum engine's members).
func (tp *Topology) Endpoint(name string, seed int64, src *Node) *Wire {
	w := tp.wire(seed, src)
	w.name = name
	w.pm = vm.NewPhysMem(0)
	w.clock = storage.NewClock()
	w.recv = netback.NewReceiver(w.pm, w.clock)
	return w
}

func (tp *Topology) wire(seed int64, src *Node) *Wire {
	cfg := tp.faults
	cfg.Seed = seed
	w := &Wire{serveDone: make(chan error, 1)}
	w.link = netback.NewFaultLink(cfg, src.clock)
	w.endA, w.endB = w.link.A(), w.link.B()
	w.rb = netback.NewReplicaBackend(src.clock)
	return w
}

func (w *Wire) startServe() {
	w.serving = true
	go func() {
		_, err := w.recv.ServeReplica(w.endB)
		w.serveDone <- err
	}()
}

// reset re-establishes the wire: poison the serve loop, reap, drain,
// heal, re-handshake. While a scripted partition window is open it
// fails instead, modeling an unreachable far side.
func (w *Wire) reset(group uint64) error {
	if w.blockedFor > 0 {
		w.blockedFor--
		return fmt.Errorf("bench: wire %s partitioned: %w", w.name, netback.ErrDisconnected)
	}
	w.link.PartitionBoth()
	if w.serving {
		<-w.serveDone
		w.serving = false
	}
	w.rb.Disconnect()
	w.link.DrainPending()
	w.link.Heal()
	var err error
	for attempt := 0; attempt < 64; attempt++ {
		if !w.serving {
			w.startServe()
		}
		if _, err = w.rb.Connect(w.endA, group); err == nil {
			return nil
		}
		<-w.serveDone
		w.serving = false
	}
	return fmt.Errorf("bench: wire %s did not recover: %w", w.name, err)
}

// connect performs the initial handshake, falling back to the full
// reset dance when an injected fault eats the hello.
func (w *Wire) connect(group uint64) error {
	if !w.serving {
		w.startServe()
	}
	if _, err := w.rb.Connect(w.endA, group); err == nil {
		return nil
	}
	return w.reset(group)
}

// partition opens a scripted partition that survives the next
// `retries` reconnect attempts.
func (w *Wire) partition(retries int) {
	w.link.PartitionBoth()
	w.blockedFor = retries
}

// stop tears the wire down for good.
func (w *Wire) stop() {
	w.link.PartitionBoth()
	if w.serving {
		<-w.serveDone
		w.serving = false
	}
	w.rb.Disconnect()
	w.link.DrainPending()
	w.link.Heal()
}
