package kernel

import (
	"sync"
)

// segment is a unit of buffered IPC data. When external consistency is
// enforced and the writer belongs to a persistence group, the segment
// is gated on the writer's checkpoint epoch: a reader outside the
// writer's group may not observe it until that epoch is durable,
// preventing other machines (or unpersisted processes) from seeing
// state that a crash could lose.
type segment struct {
	data  []byte
	group uint64 // writer's persistence group (0 = untracked)
	epoch uint64 // writer's checkpoint epoch at write time
	gated bool   // requires durability before crossing group boundary
}

// segQueue is a queue of segments with external-consistency gating.
type segQueue struct {
	mu     sync.Mutex
	segs   []segment
	closed bool
	limit  int // byte capacity; 0 = unbounded
	size   int
}

// push appends data tagged with the writer's group/epoch.
func (q *segQueue) push(k *Kernel, ctx IOCtx, data []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return 0, ErrClosedPipe
	}
	if q.limit > 0 && q.size+len(data) > q.limit {
		if q.size >= q.limit {
			return 0, ErrWouldBlock
		}
		data = data[:q.limit-q.size]
	}
	seg := segment{data: append([]byte(nil), data...)}
	if ctx.Ext && ctx.Proc != nil {
		if g := k.groupOf(ctx.Proc); g != 0 {
			seg.group = g
			seg.epoch = k.epochOf(g)
			seg.gated = true
		}
	}
	q.segs = append(q.segs, seg)
	q.size += len(seg.data)
	return len(seg.data), nil
}

// pop delivers up to len(p) bytes to a reader in group readerGroup.
// Gated segments whose epoch is not yet durable stop delivery unless
// the reader is in the writer's own group (intra-group state is
// checkpointed together and therefore mutually consistent).
func (q *segQueue) pop(k *Kernel, readerGroup uint64, p []byte) (int, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for n < len(p) && len(q.segs) > 0 {
		seg := &q.segs[0]
		if seg.gated && seg.group != readerGroup && !k.released(seg.group, seg.epoch) {
			break // held for external consistency
		}
		c := copy(p[n:], seg.data)
		n += c
		if c == len(seg.data) {
			q.segs = q.segs[1:]
		} else {
			seg.data = seg.data[c:]
		}
		q.size -= c
	}
	if n == 0 {
		if q.closed && len(q.segs) == 0 {
			return 0, errEOF
		}
		return 0, ErrWouldBlock
	}
	return n, nil
}

// pending reports buffered bytes, and how many of them are gated.
func (q *segQueue) pending(k *Kernel, readerGroup uint64) (total, held int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	blocked := false
	for _, seg := range q.segs {
		total += len(seg.data)
		if blocked || (seg.gated && seg.group != readerGroup && !k.released(seg.group, seg.epoch)) {
			blocked = true
			held += len(seg.data)
		}
	}
	return total, held
}

// close marks the queue closed; buffered data remains readable.
func (q *segQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// snapshot serializes the queue contents (used by checkpoint).
func (q *segQueue) snapshot(e *Encoder) {
	q.mu.Lock()
	defer q.mu.Unlock()
	e.Bool(q.closed)
	e.I64(int64(q.limit))
	e.U64(uint64(len(q.segs)))
	for _, s := range q.segs {
		e.Bytes2(s.data)
		e.U64(s.group)
		e.U64(s.epoch)
		e.Bool(s.gated)
	}
}

// restoreQueue rebuilds a queue from its snapshot.
func restoreQueue(d *Decoder) *segQueue {
	q := &segQueue{}
	q.closed = d.Bool()
	q.limit = int(d.I64())
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		s := segment{data: d.Bytes2(), group: d.U64(), epoch: d.U64(), gated: d.Bool()}
		q.segs = append(q.segs, s)
		q.size += len(s.data)
	}
	return q
}

// errEOF distinguishes end-of-stream from would-block. io.EOF is not
// used to keep the kernel deliberately dependency-light.
var errEOF = eofError{}

type eofError struct{}

func (eofError) Error() string { return "EOF" }

// IsEOF reports whether err marks a cleanly closed stream.
func IsEOF(err error) bool { return err == errEOF }

// Pipe is a POSIX pipe: a kernel buffer with a read end and a write
// end. The pipe is one first-class object; its two descriptor-visible
// ends are role-restricted views created by NewPipe.
type Pipe struct {
	oid    uint64
	kernel *Kernel
	q      *segQueue
}

// OID implements Object.
func (p *Pipe) OID() uint64 { return p.oid }

// Kind implements Object.
func (p *Pipe) Kind() Kind { return KindPipe }

// EncodeTo implements Object: the pipe serializes its buffered bytes,
// so data in flight at checkpoint time survives a restore.
func (p *Pipe) EncodeTo(e *Encoder) {
	e.U64(p.oid)
	p.q.snapshot(e)
}

// ReadFile implements OpenFile (read end).
func (p *Pipe) ReadFile(ctx IOCtx, buf []byte) (int, error) {
	var rg uint64
	if ctx.Proc != nil {
		rg = p.kernel.groupOf(ctx.Proc)
	}
	return p.q.pop(p.kernel, rg, buf)
}

// WriteFile implements OpenFile (write end).
func (p *Pipe) WriteFile(ctx IOCtx, buf []byte) (int, error) {
	return p.q.push(p.kernel, ctx, buf)
}

// CloseFile implements OpenFile.
func (p *Pipe) CloseFile() error {
	p.q.close()
	p.kernel.unregister(p.oid)
	return nil
}

// Pending reports (total, held-for-consistency) buffered byte counts
// as seen by a reader outside any persistence group.
func (p *Pipe) Pending() (int, int) { return p.q.pending(p.kernel, 0) }

// NewPipe creates a pipe and installs its two ends in the process's
// descriptor table, returning (readFD, writeFD).
func (k *Kernel) NewPipe(p *Process) (int, int, error) {
	pipe := &Pipe{oid: k.NextOID(), kernel: k, q: &segQueue{limit: 64 << 10}}
	k.register(pipe)
	r, _ := p.FDs.Install(k, pipe, ORdOnly)
	w, _ := p.FDs.Install(k, pipe, OWrOnly)
	k.Clock.Advance(k.Costs.Syscall)
	return r, w, nil
}

// restorePipe rebuilds a pipe from its serialized form.
func (k *Kernel) restorePipe(d *Decoder) (*Pipe, error) {
	p := &Pipe{oid: d.U64(), kernel: k}
	p.q = restoreQueue(d)
	if err := d.Finish("pipe"); err != nil {
		return nil, err
	}
	k.register(p)
	return p, nil
}
