package redis

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/slsfs"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

type rig struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	api   *core.API
	fs    *slsfs.FS
	store *objstore.Store
}

func newRig(t *testing.T) *rig {
	if t != nil {
		t.Helper()
	}
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	fs := slsfs.New(st, 1000)
	o.AttachFS(fs)
	return &rig{clock: clock, k: k, o: o, api: core.NewAPI(o), fs: fs, store: st}
}

func newStore(t *testing.T, r *rig) *Store {
	t.Helper()
	p, err := r.k.Spawn(0, "redis")
	if err != nil {
		t.Fatal(err)
	}
	need := ArenaSize(1024, 1<<20)
	if _, err := p.Sbrk(need + vm.PageSize); err != nil {
		t.Fatal(err)
	}
	st, err := Init(p, p.HeapBase(), 1024, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestStoreSetGetDel(t *testing.T) {
	r := newRig(t)
	st := newStore(t, r)
	if err := st.Set([]byte("k1"), []byte("v1")); err != nil {
		t.Fatal(err)
	}
	v, err := st.Get([]byte("k1"))
	if err != nil || string(v) != "v1" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := st.Get([]byte("nope")); err != ErrNotFound {
		t.Fatalf("missing err = %v", err)
	}
	// Same-size update overwrites in place.
	st.Set([]byte("k1"), []byte("v2"))
	v, _ = st.Get([]byte("k1"))
	if string(v) != "v2" {
		t.Fatalf("update = %q", v)
	}
	// Different-size update.
	st.Set([]byte("k1"), []byte("a-much-longer-value"))
	v, _ = st.Get([]byte("k1"))
	if string(v) != "a-much-longer-value" {
		t.Fatalf("resize update = %q", v)
	}
	if err := st.Del([]byte("k1")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Get([]byte("k1")); err != ErrNotFound {
		t.Fatal("deleted key still present")
	}
	if err := st.Del([]byte("k1")); err != ErrNotFound {
		t.Fatalf("double delete err = %v", err)
	}
}

func TestStoreCountAndForEach(t *testing.T) {
	r := newRig(t)
	st := newStore(t, r)
	for i := 0; i < 50; i++ {
		st.Set([]byte(fmt.Sprintf("key-%d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}
	n, _ := st.Count()
	if n != 50 {
		t.Fatalf("count = %d", n)
	}
	seen := map[string]string{}
	st.ForEach(func(k, v []byte) error {
		seen[string(k)] = string(v)
		return nil
	})
	if len(seen) != 50 || seen["key-7"] != "val-7" {
		t.Fatalf("foreach saw %d entries", len(seen))
	}
}

func TestStoreArenaExhaustion(t *testing.T) {
	r := newRig(t)
	p, _ := r.k.Spawn(0, "redis")
	p.Sbrk(ArenaSize(16, 4096) + vm.PageSize)
	st, _ := Init(p, p.HeapBase(), 16, 4096)
	var err error
	for i := 0; i < 10000; i++ {
		err = st.Set([]byte(fmt.Sprintf("key-%d", i)), bytes.Repeat([]byte("x"), 64))
		if err != nil {
			break
		}
	}
	if err != ErrArenaFull {
		t.Fatalf("err = %v, want ErrArenaFull", err)
	}
}

func TestQuickStoreAgainstMap(t *testing.T) {
	r := newRig(nil)
	p, _ := r.k.Spawn(0, "redis")
	p.Sbrk(ArenaSize(256, 4<<20) + vm.PageSize)
	st, _ := Init(p, p.HeapBase(), 256, 4<<20)
	model := map[string]string{}

	f := func(key uint8, val []byte, del bool) bool {
		k := fmt.Sprintf("key-%d", key%32)
		if len(val) > 128 {
			val = val[:128]
		}
		if del {
			err := st.Del([]byte(k))
			_, existed := model[k]
			delete(model, k)
			if existed != (err == nil) {
				return false
			}
		} else {
			if err := st.Set([]byte(k), val); err != nil {
				return false
			}
			model[k] = string(val)
		}
		// Validate a random key and the count.
		for mk, mv := range model {
			got, err := st.Get([]byte(mk))
			if err != nil || string(got) != mv {
				return false
			}
			break
		}
		n, _ := st.Count()
		return n == uint64(len(model))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func serverFixture(t *testing.T, r *rig, persist Persistence) (*kernel.Process, *Client) {
	t.Helper()
	p, _, err := Spawn(r.k, 0, "/redis.sock", 1024, 4<<20, persist)
	if err != nil {
		t.Fatal(err)
	}
	cp, _ := r.k.Spawn(0, "client")
	cp.SetProgram(&kernel.FuncProgram{Name: "cli", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error {
		return nil
	}})
	cli, err := Dial(r.k, cp, "/redis.sock", func() { r.k.Run(4) })
	if err != nil {
		t.Fatal(err)
	}
	return p, cli
}

func TestServerProtocol(t *testing.T) {
	r := newRig(t)
	_, cli := serverFixture(t, r, nil)

	if got, _ := cli.Do("PING"); got != "+PONG" {
		t.Fatalf("PING = %q", got)
	}
	if got, _ := cli.Do("SET greeting hello world"); got != "+OK" {
		t.Fatalf("SET = %q", got)
	}
	val, found, err := cli.DoValue("GET greeting")
	if err != nil || !found || val != "hello world" {
		t.Fatalf("GET = %q found=%v err=%v", val, found, err)
	}
	if got, _ := cli.Do("DBSIZE"); got != ":1" {
		t.Fatalf("DBSIZE = %q", got)
	}
	if got, _ := cli.Do("DEL greeting"); got != ":1" {
		t.Fatalf("DEL = %q", got)
	}
	if _, found, _ := cli.DoValue("GET greeting"); found {
		t.Fatal("deleted key still GETs")
	}
	if got, _ := cli.Do("DEL greeting"); got != ":0" {
		t.Fatalf("DEL missing = %q", got)
	}
	if got, _ := cli.Do("BOGUS"); got[0] != '-' {
		t.Fatalf("unknown command = %q", got)
	}
	if got, _ := cli.Do("SET onlykey"); got[0] != '-' {
		t.Fatalf("bad arity = %q", got)
	}
}

func TestServerSurvivesCheckpointRestore(t *testing.T) {
	r := newRig(t)
	p, cli := serverFixture(t, r, nil)
	cli.Do("SET persistent-key persistent-value")

	g, _ := r.o.Persist("redis", p)
	r.o.Attach(g, core.NewStoreBackend(r.store, r.k.Mem, r.clock))
	if _, err := r.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	cli.Do("SET lost-key written-after-checkpoint")

	// Crash + restore.
	ng, _, err := r.o.Restore(g, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	st, err := Attach(np, np.HeapBase())
	if err != nil {
		t.Fatal(err)
	}
	v, err := st.Get([]byte("persistent-key"))
	if err != nil || string(v) != "persistent-value" {
		t.Fatalf("restored value = %q, %v", v, err)
	}
	if _, err := st.Get([]byte("lost-key")); err != ErrNotFound {
		t.Fatal("post-checkpoint write should be lost at this epoch")
	}
	// The restored server still serves: connect a fresh client. The
	// server's replies stay gated (external consistency) until the
	// next checkpoint covers them, so the step function keeps the
	// 100 Hz persistence loop running.
	cp2, _ := r.k.Spawn(0, "client2")
	cli2, err := Dial(r.k, cp2, "/redis.sock", func() {
		r.k.Run(4)
		r.o.Checkpoint(ng, core.CheckpointOpts{})
	})
	if err != nil {
		t.Fatal(err)
	}
	val, found, err := cli2.DoValue("GET persistent-key")
	if err != nil || !found || val != "persistent-value" {
		t.Fatalf("restored server GET = %q found=%v err=%v", val, found, err)
	}
}

func TestAOFPersistenceAndReplay(t *testing.T) {
	r := newRig(t)
	aof, err := NewAOF(r.fs, "/appendonly.aof", 2)
	if err != nil {
		t.Fatal(err)
	}
	_, cli := serverFixture(t, r, aof)
	cli.Do("SET a 1")
	cli.Do("SET b 2")
	cli.Do("SET a 3")
	cli.Do("DEL b")
	if aof.Syncs == 0 {
		t.Fatal("AOF never fsynced")
	}

	// Crash: rebuild a fresh table by replaying the log.
	st2 := newStore(t, r)
	applied, err := aof.Replay(st2)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("replayed %d commands", applied)
	}
	v, err := st2.Get([]byte("a"))
	if err != nil || string(v) != "3" {
		t.Fatalf("replayed a = %q", v)
	}
	if _, err := st2.Get([]byte("b")); err != ErrNotFound {
		t.Fatal("deleted key resurrected by replay")
	}
}

func TestForkSnapshotAndLoad(t *testing.T) {
	r := newRig(t)
	fork := &ForkSnapshot{FS: r.fs, Path: "/dump.rdb"}
	_, cli := serverFixture(t, r, fork)
	cli.Do("SET x 10")
	cli.Do("SET y 20")
	if got, _ := cli.Do("BGSAVE"); got[0] != '+' {
		t.Fatalf("BGSAVE = %q", got)
	}
	if fork.Snapshots != 1 || fork.DumpBytes == 0 {
		t.Fatalf("snapshot stats: %+v", fork)
	}
	// Writes after the dump are not in it.
	cli.Do("SET z 30")

	st2 := newStore(t, r)
	n, err := fork.LoadDump(st2)
	if err != nil || n != 2 {
		t.Fatalf("loaded %d, %v", n, err)
	}
	v, _ := st2.Get([]byte("y"))
	if string(v) != "20" {
		t.Fatalf("dump y = %q", v)
	}
	if _, err := st2.Get([]byte("z")); err != ErrNotFound {
		t.Fatal("post-dump key in dump")
	}
}

func TestAuroraEngineRecovery(t *testing.T) {
	r := newRig(t)
	eng := NewAurora(r.api, 1000) // no automatic checkpoint in this test
	p, _, err := Spawn(r.k, 0, "/redis.sock", 1024, 4<<20, eng)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := r.o.Persist("redis", p)
	r.o.Attach(g, core.NewStoreBackend(r.store, r.k.Mem, r.clock))

	cp, _ := r.k.Spawn(0, "client")
	cli, _ := Dial(r.k, cp, "/redis.sock", func() { r.k.Run(4) })

	cli.Do("SET k1 before-checkpoint")
	if got, _ := cli.Do("BGSAVE"); got[0] != '+' { // explicit sls_checkpoint
		t.Fatalf("checkpoint = %q", got)
	}
	cli.Do("SET k2 after-checkpoint")
	cli.Do("SET k1 updated-after-checkpoint")

	// Crash. Recovery = restore checkpoint + replay NT log.
	ng, replayed, err := eng.Recover(g)
	if err != nil {
		t.Fatal(err)
	}
	if replayed != 2 {
		t.Fatalf("replayed %d NT entries, want 2", replayed)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	st, _ := Attach(np, np.HeapBase())
	v, err := st.Get([]byte("k1"))
	if err != nil || string(v) != "updated-after-checkpoint" {
		t.Fatalf("recovered k1 = %q, %v", v, err)
	}
	v, err = st.Get([]byte("k2"))
	if err != nil || string(v) != "after-checkpoint" {
		t.Fatalf("recovered k2 = %q, %v", v, err)
	}
}

func TestAuroraEngineAutoCheckpoint(t *testing.T) {
	r := newRig(t)
	eng := NewAurora(r.api, 3) // checkpoint every 3 mutations
	p, _, err := Spawn(r.k, 0, "/redis.sock", 256, 1<<20, eng)
	if err != nil {
		t.Fatal(err)
	}
	g, _ := r.o.Persist("redis", p)
	r.o.Attach(g, core.NewStoreBackend(r.store, r.k.Mem, r.clock))
	cp, _ := r.k.Spawn(0, "client")
	cli, _ := Dial(r.k, cp, "/redis.sock", func() { r.k.Run(4) })
	for i := 0; i < 7; i++ {
		// Replies can be gated behind the next checkpoint; the Do
		// timeout is harmless here, the command still lands.
		cli.Do(fmt.Sprintf("SET key-%d value-%d", i, i))
	}
	r.k.Run(100) // drain any still-buffered commands
	if eng.Checkpoints != 2 {
		t.Fatalf("auto checkpoints = %d, want 2", eng.Checkpoints)
	}
	// The NT log holds only the tail since the last checkpoint.
	entries, _ := r.api.NTEntries(g)
	if len(entries) != 1 {
		t.Fatalf("NT log tail = %d entries, want 1", len(entries))
	}
}

func TestPopulateWorkingSet(t *testing.T) {
	r := newRig(t)
	p, _ := r.k.Spawn(0, "redis")
	arena := int64(8 << 20)
	p.Sbrk(ArenaSize(4096, arena) + vm.PageSize)
	st, _ := Init(p, p.HeapBase(), 4096, arena)
	if err := PopulateDirect(st, 4000, 1024); err != nil {
		t.Fatal(err)
	}
	n, _ := st.Count()
	if n != 4000 {
		t.Fatalf("count = %d", n)
	}
	used, _ := st.UsedBytes()
	if used < 4000*1024 {
		t.Fatalf("used = %d", used)
	}
}
