package kvlsm

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/slsfs"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func testFS(t *testing.T) *slsfs.FS {
	if t != nil {
		t.Helper()
	}
	clock := storage.NewClock()
	store := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	return slsfs.New(store, 1)
}

func TestPutGetDelete(t *testing.T) {
	db, err := Open(testFS(t), "/db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put([]byte("alpha"), []byte("one")); err != nil {
		t.Fatal(err)
	}
	v, err := db.Get([]byte("alpha"))
	if err != nil || string(v) != "one" {
		t.Fatalf("get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("missing")); err != ErrNotFound {
		t.Fatalf("missing err = %v", err)
	}
	db.Put([]byte("alpha"), []byte("two"))
	v, _ = db.Get([]byte("alpha"))
	if string(v) != "two" {
		t.Fatalf("update = %q", v)
	}
	if err := db.Delete([]byte("alpha")); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("alpha")); err != ErrNotFound {
		t.Fatal("deleted key still present")
	}
}

func TestFlushAndReadFromSSTable(t *testing.T) {
	db, _ := Open(testFS(t), "/db", Options{MemtableLimit: 1 << 20})
	for i := 0; i < 100; i++ {
		db.Put([]byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("value-%03d", i)))
	}
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if db.MemCount() != 0 || db.TableCount() != 1 {
		t.Fatalf("after flush: mem=%d tables=%d", db.MemCount(), db.TableCount())
	}
	// Reads now come from the table.
	v, err := db.Get([]byte("key-042"))
	if err != nil || string(v) != "value-042" {
		t.Fatalf("sstable get = %q, %v", v, err)
	}
	if _, err := db.Get([]byte("key-999")); err != ErrNotFound {
		t.Fatal("phantom key in sstable")
	}
}

func TestNewerTableWins(t *testing.T) {
	db, _ := Open(testFS(t), "/db", Options{})
	db.Put([]byte("k"), []byte("old"))
	db.Flush()
	db.Put([]byte("k"), []byte("new"))
	db.Flush()
	v, _ := db.Get([]byte("k"))
	if string(v) != "new" {
		t.Fatalf("get = %q, newest table must win", v)
	}
}

func TestTombstoneAcrossFlush(t *testing.T) {
	db, _ := Open(testFS(t), "/db", Options{})
	db.Put([]byte("gone"), []byte("x"))
	db.Flush()
	db.Delete([]byte("gone"))
	db.Flush()
	if _, err := db.Get([]byte("gone")); err != ErrNotFound {
		t.Fatal("tombstone ignored across tables")
	}
}

func TestAutoFlushOnMemtableLimit(t *testing.T) {
	db, _ := Open(testFS(t), "/db", Options{MemtableLimit: 512})
	for i := 0; i < 40; i++ {
		db.Put([]byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte("v"), 32))
	}
	if db.Flushes == 0 {
		t.Fatal("memtable limit never triggered a flush")
	}
	// Everything still readable.
	v, err := db.Get([]byte("k00"))
	if err != nil || !bytes.Equal(v, bytes.Repeat([]byte("v"), 32)) {
		t.Fatalf("get after auto flush: %q, %v", v, err)
	}
}

func TestCompaction(t *testing.T) {
	db, _ := Open(testFS(t), "/db", Options{CompactAt: 3})
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			db.Put([]byte(fmt.Sprintf("key-%02d", i)), []byte(fmt.Sprintf("round-%d", round)))
		}
		db.Flush()
	}
	if db.Compacts == 0 {
		t.Fatal("compaction never ran")
	}
	if db.TableCount() != 1 {
		t.Fatalf("tables after compaction = %d", db.TableCount())
	}
	v, _ := db.Get([]byte("key-05"))
	if string(v) != "round-2" {
		t.Fatalf("compacted value = %q", v)
	}
}

func TestCompactionDropsTombstones(t *testing.T) {
	db, _ := Open(testFS(t), "/db", Options{CompactAt: 100})
	db.Put([]byte("dead"), []byte("x"))
	db.Flush()
	db.Delete([]byte("dead"))
	db.Flush()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Get([]byte("dead")); err != ErrNotFound {
		t.Fatal("tombstoned key resurrected by compaction")
	}
}

func TestWALCrashRecovery(t *testing.T) {
	fs := testFS(t)
	db, _ := Open(fs, "/db", Options{FsyncEvery: 1})
	db.Put([]byte("a"), []byte("1"))
	db.Put([]byte("b"), []byte("2"))
	// Crash without Flush/Close: reopen replays the WAL.
	db2, err := Open(fs, "/db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get([]byte("b"))
	if err != nil || string(v) != "2" {
		t.Fatalf("recovered b = %q, %v", v, err)
	}
	if db2.MemCount() != 2 {
		t.Fatalf("recovered memtable = %d entries", db2.MemCount())
	}
}

func TestReopenSeesSSTables(t *testing.T) {
	fs := testFS(t)
	db, _ := Open(fs, "/db", Options{})
	db.Put([]byte("k"), []byte("v"))
	db.Close()

	db2, err := Open(fs, "/db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, err := db2.Get([]byte("k"))
	if err != nil || string(v) != "v" {
		t.Fatalf("reopened get = %q, %v", v, err)
	}
}

func TestAuroraModeRecovery(t *testing.T) {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	api := core.NewAPI(o)
	st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	fs := slsfs.New(st, 1000)
	o.AttachFS(fs)

	p, _ := k.Spawn(0, "lsm-db")
	p.SetProgram(&kernel.FuncProgram{Name: "lsm", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }})
	kernel.RegisterProgram("lsm", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "lsm", Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }}, nil
	})
	g, _ := o.Persist("lsm", p)
	o.Attach(g, core.NewStoreBackend(st, k.Mem, clock))

	hooks := &AuroraHooks{API: api, Proc: p, CheckpointEvery: 3}
	db, err := Open(fs, "/db", Options{Aurora: hooks})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		if err := db.Put([]byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if db.WALBytes != 0 || db.WALSyncs != 0 {
		t.Fatal("Aurora mode must not touch the WAL")
	}
	if hooks.Checkpoints != 2 {
		t.Fatalf("checkpoints = %d", hooks.Checkpoints)
	}

	// Crash recovery: reopen the SAME directory — the checkpoint's
	// file-system snapshot holds the flushed SSTables — then replay
	// the NT tail.
	fs2, err := slsfs.LoadLatest(st, fs.Group())
	if err != nil {
		t.Fatal(err)
	}
	db2, err := Open(fs2, "/db", Options{Aurora: &AuroraHooks{API: api, Proc: p}})
	if err != nil {
		t.Fatal(err)
	}
	entries, err := api.NTEntries(g)
	if err != nil {
		t.Fatal(err)
	}
	applied, err := db2.ReplayNT(entries)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 { // 7 ops, checkpoints at 3 and 6 truncate the rest
		t.Fatalf("replayed %d entries, want 1", applied)
	}
	// The NT tail entry.
	v, err := db2.Get([]byte("k6"))
	if err != nil || string(v) != "v6" {
		t.Fatalf("replayed k6 = %q, %v", v, err)
	}
	// Pre-checkpoint keys come back from the snapshotted SSTables.
	for i := 0; i < 6; i++ {
		key := fmt.Sprintf("k%d", i)
		v, err := db2.Get([]byte(key))
		if err != nil || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("recovered %s = %q, %v", key, v, err)
		}
	}
}

func TestQuickLSMAgainstMap(t *testing.T) {
	db, _ := Open(testFS(nil), "/db", Options{MemtableLimit: 2048, CompactAt: 4})
	model := map[string]string{}
	f := func(key uint8, val []byte, del, flush bool) bool {
		k := fmt.Sprintf("key-%d", key%48)
		if len(val) > 64 {
			val = val[:64]
		}
		if del {
			db.Delete([]byte(k))
			delete(model, k)
		} else {
			if err := db.Put([]byte(k), val); err != nil {
				return false
			}
			model[k] = string(val)
		}
		if flush {
			if err := db.Flush(); err != nil {
				return false
			}
		}
		// Spot-check one model key.
		for mk, mv := range model {
			got, err := db.Get([]byte(mk))
			if err != nil || string(got) != mv {
				return false
			}
			break
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	// Final full validation.
	for mk, mv := range model {
		got, err := db.Get([]byte(mk))
		if err != nil || string(got) != mv {
			t.Fatalf("final check %q = %q, %v (want %q)", mk, got, err, mv)
		}
	}
}

func TestWALvsAuroraCodeAndCost(t *testing.T) {
	// WAL mode: every write hits the log and fsyncs.
	fs := testFS(t)
	wal, _ := Open(fs, "/wal-db", Options{FsyncEvery: 1})
	for i := 0; i < 50; i++ {
		wal.Put([]byte(fmt.Sprintf("k%d", i)), bytes.Repeat([]byte("v"), 100))
	}
	if wal.WALSyncs != 50 {
		t.Fatalf("wal syncs = %d", wal.WALSyncs)
	}
	if wal.WALBytes < 50*100 {
		t.Fatalf("wal bytes = %d", wal.WALBytes)
	}
}
