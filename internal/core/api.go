package core

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/vm"
)

// This file implements the libsls developer API of Table 2:
//
//	sls_checkpoint()  -> API.Checkpoint
//	sls_restore()     -> API.Restore
//	sls_rollback()    -> API.Rollback
//	sls_ntflush()     -> API.NTFlush
//	sls_barrier()     -> API.Barrier
//	sls_mctl()        -> API.Mctl
//	sls_fdctl()       -> API.Fdctl
//
// Calls are made on behalf of a process, exactly as the real library
// issues ioctls against /dev/sls from inside the application.

// API errors.
var (
	ErrNoNTLog = errors.New("core: group has no store backend for the NT log")
)

// API is the developer-facing Aurora library surface.
type API struct {
	O *Orchestrator
}

// NewAPI wraps an orchestrator.
func NewAPI(o *Orchestrator) *API { return &API{O: o} }

// group resolves the caller's persistence group.
func (a *API) group(p *kernel.Process) (*Group, error) {
	g, ok := a.O.GroupOfProcess(p.PID)
	if !ok {
		return nil, ErrNotPersisted
	}
	return g, nil
}

// Checkpoint implements sls_checkpoint(): create an image of the
// caller's group. The checkpoint is incremental unless the group has
// never taken a full one.
func (a *API) Checkpoint(p *kernel.Process, name string) (CheckpointBreakdown, error) {
	g, err := a.group(p)
	if err != nil {
		return CheckpointBreakdown{}, err
	}
	return a.O.Checkpoint(g, CheckpointOpts{Name: name})
}

// CheckpointFull forces a full checkpoint.
func (a *API) CheckpointFull(p *kernel.Process, name string) (CheckpointBreakdown, error) {
	g, err := a.group(p)
	if err != nil {
		return CheckpointBreakdown{}, err
	}
	return a.O.Checkpoint(g, CheckpointOpts{Name: name, Full: true})
}

// Restore implements sls_restore(): recreate a group from its newest
// checkpoint (epoch 0) or a specific epoch.
func (a *API) Restore(g *Group, epoch uint64, opts RestoreOpts) (*Group, RestoreBreakdown, error) {
	return a.O.Restore(g, epoch, opts)
}

// Rollback implements sls_rollback(): discard the group's current
// execution and resume from its most recent checkpoint. The old
// processes are killed; the restored group takes over. The returned
// notice lets applications take a more conservative path after a
// rollback, as the paper's speculation use case requires.
func (a *API) Rollback(p *kernel.Process) (*Group, *RollbackNotice, error) {
	g, err := a.group(p)
	if err != nil {
		return nil, nil, err
	}
	// Settle in-flight flushes: rollback walks the image chain, which
	// must not be mutated under us by background retirement.
	a.O.Drain(g)
	img := g.LastImage()
	var readTime time.Duration
	if img == nil || img.Released() {
		// Fall back to a backend image.
		for _, b := range g.Backends() {
			if li, rt, err := b.Load(g.ID, 0); err == nil {
				img, readTime = li, rt
				break
			}
		}
	}
	if img == nil {
		return nil, nil, ErrNoImage
	}

	// Kill the current incarnation.
	for _, pid := range g.PIDs() {
		if proc, err := a.O.K.Process(pid); err == nil {
			a.O.K.Exit(proc, 128)
			a.O.K.Reap(proc)
		}
	}
	backends := g.Backends()
	a.O.Unpersist(g)

	ng, _, err := a.O.RestoreImage(img, readTime, RestoreOpts{Lazy: true, Name: g.Name})
	if err != nil {
		return nil, nil, err
	}
	for _, b := range backends {
		a.O.Attach(ng, b)
	}
	notice := &RollbackNotice{FromEpoch: g.Epoch(), ToEpoch: img.Epoch, Group: ng.ID}
	ng.mu.Lock()
	ng.epoch = img.Epoch
	ng.durable = img.Epoch
	ng.mu.Unlock()
	rollbacks.Add(1)
	return ng, notice, nil
}

// rollbacks counts rollbacks for diagnostics.
var rollbacks atomic.Int64

// RollbackCount reports the process-wide rollback counter.
func RollbackCount() int64 { return rollbacks.Load() }

// RollbackNotice informs the application that execution was rolled
// back, so it can retry along a more conservative path.
type RollbackNotice struct {
	FromEpoch uint64
	ToEpoch   uint64
	Group     uint64
}

// String formats the notice.
func (n *RollbackNotice) String() string {
	return fmt.Sprintf("rolled back from epoch %d to %d (group %d)", n.FromEpoch, n.ToEpoch, n.Group)
}

// Barrier implements sls_barrier(): block the caller until the group's
// current checkpoint epoch is durable on every backend. This drains
// the background flush pipeline (retrying failed epochs inline and
// surfacing their errors) and flushes any image checkpointed with
// SkipFlush.
func (a *API) Barrier(p *kernel.Process) error {
	g, err := a.group(p)
	if err != nil {
		return err
	}
	return a.O.Sync(g)
}

// NTFlush implements sls_ntflush(): a low-latency non-temporal append
// of application data to the group's persistent log, outside the
// checkpoint path. Databases use it as a write-ahead log replacement;
// after a crash, NTEntries returns the records appended since the
// last checkpoint so the application can repair its structures.
func (a *API) NTFlush(p *kernel.Process, data []byte) error {
	g, err := a.group(p)
	if err != nil {
		return err
	}
	store := a.storeOf(g)
	if store == nil {
		return ErrNoNTLog
	}
	g.mu.Lock()
	g.ntSeq++
	seq := g.ntSeq
	g.mu.Unlock()
	_, err = store.PutRecord(g.ID, ntLogOID(g.ID), seq, uint16(kernel.KindNTLog), false, data, nil, nil)
	return err
}

// NTEntries returns the NT-log records of a group appended after the
// given epoch's checkpoint (pass 0 for all), oldest first.
func (a *API) NTEntries(g *Group) ([][]byte, error) {
	store := a.storeOf(g)
	if store == nil {
		return nil, ErrNoNTLog
	}
	recs := store.RecordsOf(g.ID, ntLogOID(g.ID))
	out := make([][]byte, 0, len(recs))
	for _, r := range recs {
		out = append(out, r.Meta)
	}
	return out, nil
}

// NTTruncate discards NT-log records up to and including seq — called
// after a checkpoint subsumes them.
func (a *API) NTTruncate(g *Group, seq uint64) error {
	store := a.storeOf(g)
	if store == nil {
		return ErrNoNTLog
	}
	for _, r := range store.RecordsOf(g.ID, ntLogOID(g.ID)) {
		if r.Epoch <= seq {
			store.DeleteRecord(g.ID, ntLogOID(g.ID), r.Epoch)
		}
	}
	return nil
}

// NTSeq returns the group's NT-log sequence counter.
func (a *API) NTSeq(g *Group) uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ntSeq
}

func ntLogOID(group uint64) uint64 { return (uint64(1) << 61) | group }

// storeOf finds the group's first store backend.
func (a *API) storeOf(g *Group) *objstore.Store {
	for _, b := range g.Backends() {
		if sb, ok := b.(*StoreBackend); ok {
			return sb.Store()
		}
	}
	return nil
}

// Mctl implements sls_mctl(): include or exclude the memory mapping
// containing addr from checkpoints.
func (a *API) Mctl(p *kernel.Process, addr vm.Addr, include bool) error {
	g, err := a.group(p)
	if err != nil {
		return err
	}
	m := p.Space.Find(addr)
	if m == nil {
		return vm.ErrNoMapping
	}
	m.NoPersist = !include
	if !include {
		g.mu.Lock()
		g.excluded++
		g.mu.Unlock()
	}
	return nil
}

// MctlPolicy sets the mapping's lazy-restore hint (the second half of
// sls_mctl): eager for latency-critical regions, lazy for cold bulk
// data. The policy travels with the checkpoint and steers the restore.
func (a *API) MctlPolicy(p *kernel.Process, addr vm.Addr, policy vm.RestorePolicy) error {
	if _, err := a.group(p); err != nil {
		return err
	}
	m := p.Space.Find(addr)
	if m == nil {
		return vm.ErrNoMapping
	}
	m.Restore = policy
	return nil
}

// Fdctl implements sls_fdctl(): enable or disable external consistency
// on a descriptor.
func (a *API) Fdctl(p *kernel.Process, fd int, ext bool) error {
	if _, err := a.group(p); err != nil {
		return err
	}
	return a.O.K.FDCtl(p, fd, ext)
}
