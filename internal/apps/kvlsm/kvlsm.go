// Package kvlsm implements a RocksDB-style log-structured merge-tree
// key-value store over the Aurora file system: a sorted in-memory
// memtable, a write-ahead log for durability, immutable sorted
// string tables (SSTables) flushed from the memtable, and leveled
// compaction.
//
// Two durability engines mirror the paper's database discussion:
//
//   - WAL mode (baseline): every write appends to the log and
//     periodically fsyncs — the classic design whose fsync semantics
//     harbor the data-loss bugs cited in §2; and
//   - Aurora mode: the WAL is gone; writes call sls_ntflush and the
//     memtable is persisted by checkpoints, so recovery is restore +
//     log replay with no database-side recovery code.
package kvlsm

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"aurora/internal/codec"
	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/slsfs"
)

// Errors.
var (
	ErrNotFound = errors.New("kvlsm: key not found")
	ErrClosed   = errors.New("kvlsm: store closed")
)

// tombstone marks deletions inside the tree.
var tombstone = []byte{0xde, 0xad, 0xbe, 0xef, 0x00}

// Options configure a DB.
type Options struct {
	// MemtableLimit flushes the memtable to an SSTable at this byte
	// size.
	MemtableLimit int
	// CompactAt merges all SSTables once their count reaches this.
	CompactAt int
	// FsyncEvery batches WAL fsyncs (WAL mode only).
	FsyncEvery int
	// Aurora switches durability to NTFlush + checkpoints; WAL writes
	// are skipped entirely.
	Aurora *AuroraHooks
}

// AuroraHooks wires the DB to libsls.
type AuroraHooks struct {
	API             *core.API
	Proc            *kernel.Process
	CheckpointEvery int
	ops             int
	Checkpoints     int
}

// DB is one LSM store rooted at a directory of the Aurora FS.
type DB struct {
	fs   *slsfs.FS
	dir  string
	opts Options

	mu       sync.Mutex
	mem      map[string][]byte
	memBytes int
	tables   []string // SSTable paths, oldest first
	seq      int      // monotonic SSTable sequence number
	wal      *slsfs.File
	walOps   int
	closed   bool

	idxMu    sync.Mutex
	idxCache map[string]*tableIndex

	// Stats for the comparison benches.
	WALBytes  int64
	WALSyncs  int64
	Flushes   int64
	Compacts  int64
	NTAppends int64
}

// Open creates or reopens a DB at dir, replaying the WAL (WAL mode)
// to rebuild the memtable.
func Open(fs *slsfs.FS, dir string, opts Options) (*DB, error) {
	if opts.MemtableLimit <= 0 {
		opts.MemtableLimit = 1 << 20
	}
	if opts.CompactAt <= 0 {
		opts.CompactAt = 6
	}
	if opts.FsyncEvery <= 0 {
		opts.FsyncEvery = 1
	}
	if err := fs.Mkdir(dir); err != nil && err != slsfs.ErrExist {
		return nil, err
	}
	db := &DB{fs: fs, dir: dir, opts: opts, mem: make(map[string][]byte), idxCache: make(map[string]*tableIndex)}

	// Discover existing SSTables (sorted by sequence in the name).
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, n := range names {
		if len(n) > 4 && n[:4] == "sst-" {
			db.tables = append(db.tables, dir+"/"+n)
			var sn int
			if _, err := fmt.Sscanf(n, "sst-%d", &sn); err == nil && sn >= db.seq {
				db.seq = sn + 1
			}
		}
	}
	sort.Strings(db.tables)

	if opts.Aurora == nil {
		wal, err := fs.Open(dir + "/wal")
		if err == slsfs.ErrNotExist {
			wal, err = fs.Create(dir + "/wal")
		}
		if err != nil {
			return nil, err
		}
		db.wal = wal
		if err := db.replayWAL(); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// replayWAL rebuilds the memtable from the log after a crash.
func (db *DB) replayWAL() error {
	data := make([]byte, db.wal.Size())
	if _, err := db.wal.ReadAt(data, 0); err != nil {
		return err
	}
	d := codec.NewDecoder(data)
	for d.Remaining() > 0 {
		key := d.Str()
		val := d.Bytes2()
		if d.Err() != nil {
			break // torn tail write: ignore, like real WAL recovery
		}
		db.applyMem(key, val)
	}
	return nil
}

func (db *DB) applyMem(key string, val []byte) {
	if old, ok := db.mem[key]; ok {
		db.memBytes -= len(key) + len(old)
	}
	db.mem[key] = val
	db.memBytes += len(key) + len(val)
}

// Put inserts or updates a key.
func (db *DB) Put(key, val []byte) error { return db.write(key, val) }

// Delete removes a key (writing a tombstone).
func (db *DB) Delete(key []byte) error { return db.write(key, tombstone) }

func (db *DB) write(key, val []byte) error {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return ErrClosed
	}
	// Durability first, as a WAL must.
	e := codec.NewEncoder()
	e.Str(string(key))
	e.Bytes2(val)
	rec := e.Bytes()
	if db.opts.Aurora == nil {
		if _, err := db.wal.WriteAt(rec, db.wal.Size()); err != nil {
			db.mu.Unlock()
			return err
		}
		db.WALBytes += int64(len(rec))
		db.walOps++
		if db.walOps >= db.opts.FsyncEvery {
			db.walOps = 0
			db.WALSyncs++
			if _, err := db.fs.Snapshot(""); err != nil {
				db.mu.Unlock()
				return err
			}
		}
	}

	db.applyMem(string(key), append([]byte(nil), val...))
	needFlush := db.memBytes >= db.opts.MemtableLimit
	db.mu.Unlock()

	if db.opts.Aurora != nil {
		h := db.opts.Aurora
		if err := h.API.NTFlush(h.Proc, rec); err != nil {
			return err
		}
		db.mu.Lock()
		db.NTAppends++
		db.mu.Unlock()
		h.ops++
		if h.CheckpointEvery > 0 && h.ops >= h.CheckpointEvery {
			h.ops = 0
			if err := db.CheckpointNow(); err != nil {
				return err
			}
		}
	}
	if needFlush {
		return db.Flush()
	}
	return nil
}

// Get looks a key up: memtable first, then SSTables newest-first.
func (db *DB) Get(key []byte) ([]byte, error) {
	db.mu.Lock()
	if val, ok := db.mem[string(key)]; ok {
		db.mu.Unlock()
		if bytes.Equal(val, tombstone) {
			return nil, ErrNotFound
		}
		return append([]byte(nil), val...), nil
	}
	tables := make([]string, len(db.tables))
	copy(tables, db.tables)
	db.mu.Unlock()

	for i := len(tables) - 1; i >= 0; i-- {
		val, err := db.searchTable(tables[i], key)
		if err == ErrNotFound {
			continue
		}
		if err != nil {
			return nil, err
		}
		if bytes.Equal(val, tombstone) {
			return nil, ErrNotFound
		}
		return val, nil
	}
	return nil, ErrNotFound
}

// sstable format:
//
//	[count u64]
//	count * [keyLen u32][valOff u64]   -- sorted index
//	       (key bytes follow the index region, then values)
//
// For simplicity the index stores (key string, value offset+len)
// sequentially via the codec; binary search runs over a decoded
// index. Tables are immutable, so the decode is cached.
type tableIndex struct {
	keys []string
	offs []int64
	lens []int64
}

// searchTable binary-searches one SSTable.
func (db *DB) searchTable(path string, key []byte) ([]byte, error) {
	idx, err := db.loadIndex(path)
	if err != nil {
		return nil, err
	}
	i := sort.SearchStrings(idx.keys, string(key))
	if i >= len(idx.keys) || idx.keys[i] != string(key) {
		return nil, ErrNotFound
	}
	f, err := db.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.CloseFile()
	val := make([]byte, idx.lens[i])
	if _, err := f.ReadAt(val, idx.offs[i]); err != nil {
		return nil, err
	}
	return val, nil
}

func (db *DB) loadIndex(path string) (*tableIndex, error) {
	db.idxMu.Lock()
	if idx, ok := db.idxCache[path]; ok {
		db.idxMu.Unlock()
		return idx, nil
	}
	db.idxMu.Unlock()

	f, err := db.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.CloseFile()
	data := make([]byte, f.Size())
	if _, err := f.ReadAt(data, 0); err != nil {
		return nil, err
	}
	d := codec.NewDecoder(data)
	n := d.U64()
	idx := &tableIndex{}
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		idx.keys = append(idx.keys, d.Str())
		idx.offs = append(idx.offs, d.I64())
		idx.lens = append(idx.lens, d.I64())
	}
	if d.Err() != nil {
		return nil, fmt.Errorf("kvlsm: corrupt table %s", path)
	}
	db.idxMu.Lock()
	db.idxCache[path] = idx
	db.idxMu.Unlock()
	return idx, nil
}

// Flush writes the memtable as a new SSTable and clears it (and the
// WAL, whose entries the table now covers).
func (db *DB) Flush() error {
	db.mu.Lock()
	if len(db.mem) == 0 {
		db.mu.Unlock()
		return nil
	}
	mem := db.mem
	db.mem = make(map[string][]byte)
	db.memBytes = 0
	path := fmt.Sprintf("%s/sst-%06d", db.dir, db.seq)
	db.seq++
	db.tables = append(db.tables, path)
	db.Flushes++
	db.mu.Unlock()

	if err := db.writeTable(path, mem); err != nil {
		return err
	}
	db.mu.Lock()
	wal := db.wal
	tables := len(db.tables)
	db.mu.Unlock()
	if wal != nil {
		wal.Truncate(0)
		if _, err := db.fs.Snapshot(""); err != nil {
			return err
		}
	}
	if tables >= db.opts.CompactAt {
		return db.Compact()
	}
	return nil
}

// writeTable serializes a sorted table to path.
func (db *DB) writeTable(path string, mem map[string][]byte) error {
	keys := make([]string, 0, len(mem))
	for k := range mem {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	// First pass: index with value offsets relative to the data area.
	idx := codec.NewEncoder()
	idx.U64(uint64(len(keys)))
	// The index size depends on the offsets, which depend on the index
	// size; encode with placeholder offsets to learn the length, then
	// re-encode with real offsets (two-pass, stable because varint
	// lengths of offsets are bounded by the final values).
	var dataLen int64
	for _, k := range keys {
		idx.Str(k)
		idx.I64(int64(1) << 40) // worst-case width placeholder
		idx.I64(int64(len(mem[k])))
		dataLen += int64(len(mem[k]))
	}
	base := int64(idx.Len())
	final := codec.NewEncoder()
	final.U64(uint64(len(keys)))
	off := base
	for _, k := range keys {
		final.Str(k)
		final.I64(off)
		final.I64(int64(len(mem[k])))
		off += int64(len(mem[k]))
	}
	// Pad the final index to the placeholder size so offsets hold.
	pad := base - int64(final.Len())
	body := final.Bytes()
	if pad > 0 {
		body = append(body, make([]byte, pad)...)
	} else if pad < 0 {
		return fmt.Errorf("kvlsm: index estimate too small")
	}
	for _, k := range keys {
		body = append(body, mem[k]...)
	}

	f, err := db.fs.Create(path)
	if err != nil {
		return err
	}
	defer f.CloseFile()
	if _, err := f.WriteAt(body, 0); err != nil {
		return err
	}
	_, err = db.fs.Snapshot("")
	return err
}

// Compact merges every SSTable into one, dropping tombstones and
// superseded versions.
func (db *DB) Compact() error {
	db.mu.Lock()
	tables := make([]string, len(db.tables))
	copy(tables, db.tables)
	db.mu.Unlock()
	if len(tables) <= 1 {
		return nil
	}

	merged := make(map[string][]byte)
	for _, path := range tables { // oldest first: newer wins
		idx, err := db.loadIndex(path)
		if err != nil {
			return err
		}
		f, err := db.fs.Open(path)
		if err != nil {
			return err
		}
		for i, k := range idx.keys {
			val := make([]byte, idx.lens[i])
			if _, err := f.ReadAt(val, idx.offs[i]); err != nil {
				f.CloseFile()
				return err
			}
			merged[k] = val
		}
		f.CloseFile()
	}
	for k, v := range merged {
		if bytes.Equal(v, tombstone) {
			delete(merged, k)
		}
	}

	db.mu.Lock()
	out := fmt.Sprintf("%s/sst-%06d", db.dir, db.seq)
	db.seq++
	db.mu.Unlock()
	if err := db.writeTable(out, merged); err != nil {
		return err
	}
	db.mu.Lock()
	old := db.tables
	db.tables = []string{out}
	db.Compacts++
	db.mu.Unlock()
	for _, path := range old {
		if path != out {
			db.fs.Unlink(path)
			db.idxMu.Lock()
			delete(db.idxCache, path)
			db.idxMu.Unlock()
		}
	}
	_, err := db.fs.Snapshot("")
	return err
}

// CheckpointNow materializes the memtable as an SSTable (so the file
// system snapshot inside the checkpoint captures it), takes an SLS
// checkpoint, and truncates the NT log the checkpoint subsumes.
// Unlike the Redis port — whose table lives in checkpointed process
// memory — the LSM memtable is driver state, so it must reach the
// file system before the log can be dropped.
func (db *DB) CheckpointNow() error {
	h := db.opts.Aurora
	if h == nil {
		return ErrClosed
	}
	if err := db.Flush(); err != nil {
		return err
	}
	g, ok := h.API.O.GroupOfProcess(h.Proc.PID)
	if !ok {
		return core.ErrNotPersisted
	}
	seq := h.API.NTSeq(g)
	if _, err := h.API.Checkpoint(h.Proc, ""); err != nil {
		return err
	}
	h.Checkpoints++
	return h.API.NTTruncate(g, seq)
}

// ReplayNT applies recovered NT-log entries (Aurora-mode crash
// recovery, after the checkpoint restore brought back the memtable).
func (db *DB) ReplayNT(entries [][]byte) (int, error) {
	applied := 0
	for _, rec := range entries {
		d := codec.NewDecoder(rec)
		key := d.Str()
		val := d.Bytes2()
		if d.Err() != nil {
			return applied, d.Err()
		}
		db.mu.Lock()
		db.applyMem(key, val)
		db.mu.Unlock()
		applied++
	}
	return applied, nil
}

// MemCount reports live memtable entries.
func (db *DB) MemCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.mem)
}

// TableCount reports SSTables on disk.
func (db *DB) TableCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.tables)
}

// Close flushes and closes the store.
func (db *DB) Close() error {
	if err := db.Flush(); err != nil {
		return err
	}
	db.mu.Lock()
	db.closed = true
	wal := db.wal
	db.mu.Unlock()
	if wal != nil {
		return wal.CloseFile()
	}
	return nil
}
