package redis

import (
	"bytes"
	"fmt"
)

// PopulateDirect fills a table quickly for benchmarks and examples,
// bypassing the socket path.
func PopulateDirect(st *Store, keys int, valSize int) error {
	val := bytes.Repeat([]byte("v"), valSize)
	for i := 0; i < keys; i++ {
		if err := st.Set([]byte(fmt.Sprintf("bench-key-%08d", i)), val); err != nil {
			return err
		}
	}
	return nil
}
