package bench

import (
	"testing"

	"aurora/internal/core"
)

// TestSpaceAcceptance is the PR's end-to-end acceptance bar: on a
// device sized to ~10 steady-state epochs, a 500-checkpoint run must
// survive indefinitely under space pressure. KeepLast above the
// capacity makes retention and capacity fight, forcing the whole
// degradation ladder: watermark reclamation, ENOSPC-triggered
// emergency reclamation, and emergency checkpoint shedding. The run
// only passes if the durable epoch advanced monotonically, no
// ErrOutOfSpace surfaced to a caller, the reachability audit held
// after every reclamation, and every retained epoch restored
// bit-identical to the unbounded control run.
func TestSpaceAcceptance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		r, err := SpaceRun(SpaceConfig{
			Seed:           seed,
			Checkpoints:    500,
			CapacityEpochs: 10,
			KeepLast:       16,
			Marks:          core.Watermarks{Low: 0.50, High: 0.65, Emergency: 0.80},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if r.Durable != uint64(r.Admitted) {
			t.Errorf("seed %d: durable %d != admitted %d", seed, r.Durable, r.Admitted)
		}
		if r.Sheds < 1 {
			t.Errorf("seed %d: admission control never shed a barrier", seed)
		}
		if r.EmergencySheds < 1 {
			t.Errorf("seed %d: no shed taken at the emergency watermark", seed)
		}
		if r.EmergencyScans < 1 {
			t.Errorf("seed %d: ENOSPC emergency reclamation never ran", seed)
		}
		if r.EpochsReclaimed < 1 {
			t.Errorf("seed %d: nothing reclaimed on a %d-epoch device", seed, r.CapacityEpochs)
		}
		t.Logf("seed %d: admitted %d/%d, shed %d (%d emergency), reclaimed %d epochs / %d bytes, %d emergency scans, max usage %.0f%%",
			seed, r.Admitted, r.Checkpoints, r.Sheds, r.EmergencySheds,
			r.EpochsReclaimed, r.BytesReclaimed, r.EmergencyScans, r.MaxUsage*100)
	}
}

// TestSpaceFaultComposed layers injected write faults on top of space
// pressure: the degraded-retry path and the ENOSPC reclaim-retry path
// must compose without ever surfacing either failure to a caller.
func TestSpaceFaultComposed(t *testing.T) {
	// 14 epochs of headroom, not 10: sub-block metadata packing cut
	// net per-epoch growth to a few hundred bytes, so an epoch-sized
	// device shrank in absolute bytes and the minimum live set (one
	// merged epoch per lineage plus the in-flight delta the final sync
	// drains) now sits within a block or two of a 10-epoch allowance.
	// Which side of the line a run lands on depends on real flush
	// interleaving, so the race detector made this flaky; four more
	// epochs of slack covers the transient without relieving the
	// pressure that drives reclamation all run long.
	r, err := SpaceRun(SpaceConfig{
		Seed:           42,
		Checkpoints:    200,
		CapacityEpochs: 14,
		KeepLast:       16,
		WriteErr:       0.01,
		Marks:          core.Watermarks{Low: 0.50, High: 0.65, Emergency: 0.80},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Injected == 0 {
		t.Error("no device faults injected")
	}
	if r.EpochsReclaimed < 1 {
		t.Error("nothing reclaimed under composed faults")
	}
}

// TestSpaceChaosComposed runs the whole-system chaos script — crashes,
// a transient partition, a permanent partition with replica promotion,
// stale-primary fencing and demotion — on a primary store bounded to
// ~20 steady-state epochs, so the space scheduler joins the fault mix.
// The headroom must clear the script's unreclaimable pinned floor
// (epochs minted during the partition and divergence phases, held by
// catch-up floors): with sub-block metadata packing an "epoch" of
// headroom is a few KB of data, not data plus a block of metadata per
// record, so the floor costs ~20 packed epochs where it used to hide
// inside 16 bloated ones.
// The four standing chaos invariants (durable never regresses, restores
// bit-identical, released output never lost, exactly one primary claim
// at the maximum generation) must hold at every fault rate while the
// reclaimer is dropping epochs under the replica's catch-up floor.
func TestSpaceChaosComposed(t *testing.T) {
	for _, rate := range []float64{0, 0.01, 0.05} {
		r, err := ChaosRun(ChaosConfig{
			Seed: 42, Checkpoints: 24, StepsPerEpoch: 3,
			LinkDrop: rate, LinkDup: rate, LinkReorder: rate, LinkCorrupt: rate / 2,
			CrashEvery: 8, PartitionAt: 10, PartitionLen: 3,
			DivergentEpochs: 4, PostEpochs: 6,
			StoreCapacityEpochs: 20,
		})
		if err != nil {
			t.Fatalf("rate %g: %v", rate, err)
		}
		if r.StoreCapacity == 0 {
			t.Fatalf("rate %g: primary store was not bounded", rate)
		}
		if r.EpochsReclaimed < 1 {
			t.Errorf("rate %g: bounded chaos run reclaimed nothing", rate)
		}
		t.Logf("rate %g: capacity %d bytes, reclaimed %d epochs, %d emergency scans",
			rate, r.StoreCapacity, r.EpochsReclaimed, r.EmergencyScans)
	}
}
