package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// This file is the whole-system chaos harness: one seeded scheduler
// composing storage faults (FaultDevice under the primary store), link
// faults (FaultLink under the replication channel), process crashes
// with supervisor restarts, a transient partition with heal and
// catch-up, and a full primary failure with replica promotion followed
// by the stale primary's return. After every event it re-checks the
// system's core invariants:
//
//   - the durable epoch never regresses within a group lifetime;
//   - every restore and promotion is bit-identical to what was
//     checkpointed at that epoch;
//   - externally released output (epochs below the replication
//     frontier) is never lost by any restore or promotion;
//   - exactly one store holds the primary claim at the maximum
//     generation for the active lineage, and after demotion exactly
//     one claim remains at all.

// chaosPages is the patterned working set carried through every crash,
// restore, and promotion (beyond the counter page).
const chaosPages = 16

// chaosCounter is the chaos workload: a 64-bit little-endian counter
// incremented once per kernel step, so hundreds of checkpoints cannot
// wrap it and every epoch has a distinct, predictable value.
type chaosCounter struct{ addr vm.Addr }

func (c *chaosCounter) ProgName() string { return "bench-chaos-counter" }

func (c *chaosCounter) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	return e.Bytes()
}

func (c *chaosCounter) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	var b [8]byte
	if err := p.ReadMem(c.addr, b[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b[:], binary.LittleEndian.Uint64(b[:])+1)
	return p.WriteMem(c.addr, b[:])
}

func init() {
	kernel.RegisterProgram("bench-chaos-counter", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &chaosCounter{addr: vm.Addr(d.U64())}, nil
	})
}

// ChaosConfig parameterizes one chaos run. Zero values pick defaults.
type ChaosConfig struct {
	Seed int64

	// Checkpoints is the number of epochs in the steady-state phase
	// (before the permanent partition).
	Checkpoints int
	// StepsPerEpoch is the kernel steps run between checkpoints.
	StepsPerEpoch int

	// Per-frame link fault probabilities (see LinkFaultConfig).
	LinkDrop    float64
	LinkDup     float64
	LinkReorder float64
	LinkCorrupt float64

	// Per-op fault probabilities on the primary store device.
	StoreWriteErr float64
	StoreReadErr  float64

	// CrashEvery kills the group every Nth steady-state checkpoint and
	// lets the supervisor restore it (0 = never).
	CrashEvery int
	// PartitionAt/PartitionLen script a transient symmetric partition
	// during the steady state: it starts after checkpoint PartitionAt
	// and heals PartitionLen checkpoints later (PartitionAt 0 = none).
	PartitionAt  int
	PartitionLen int

	// DivergentEpochs is how many epochs the primary checkpoints into
	// the permanent partition — the divergent suffix the stale primary
	// accumulates before the replica is promoted over it.
	DivergentEpochs int
	// PostEpochs is how many epochs the promoted primary runs after
	// the failover.
	PostEpochs int

	// StoreCapacityEpochs bounds the primary store's device to roughly
	// this many steady-state epochs of room (0 = unbounded), measured by
	// a clean sizing probe, and composes the space scheduler — retention
	// reclaimer, ENOSPC emergency reclamation, checkpoint admission —
	// into the fault mix. The reachability audit runs after every
	// reclaimed epoch. Leave margin above KeepLast: epochs above the
	// replica's contiguous-ack floor are unreclaimable, so a partition
	// pins everything minted while it lasts.
	StoreCapacityEpochs int
	// KeepLast is the bounded store's retention floor (0 = default).
	KeepLast int
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.Checkpoints == 0 {
		c.Checkpoints = 24
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 3
	}
	if c.DivergentEpochs == 0 {
		c.DivergentEpochs = 4
	}
	if c.PostEpochs == 0 {
		c.PostEpochs = 6
	}
	if c.PartitionLen == 0 {
		c.PartitionLen = 3
	}
	return c
}

// ChaosReport is the outcome of one chaos run.
type ChaosReport struct {
	Seed        int64
	Checkpoints int // checkpoints attempted across all phases

	Crashes  int // processes killed
	Restores int // supervisor restores (each verified bit-identical)
	Heals    int // transient partitions healed and caught up

	Partitions    int64 // connection losses observed by the replica backend
	LinkDropped   int64 // frames lost on the link (injected + partition)
	LinkInjected  int64 // link faults injected by probability or script
	StoreInjected int64 // device faults injected on the primary store

	StaleRejected int // fencing rejections observed after the stale return
	Quarantined   int // divergent epochs quarantined at demotion

	PromoteGen uint64        // generation minted by the promotion
	Floor      uint64        // contiguous floor that became the durable line
	Backfilled int           // epochs copied into the new primary store
	PromoteTTR time.Duration // virtual time for the promotion
	CatchUp    time.Duration // virtual time to drain catch-up after the heal

	PerCheckpoint time.Duration // mean virtual time per steady-state checkpoint
	Released      uint64        // released watermark on the promoted line at exit

	StoreCapacity   int64 // primary device capacity in bytes (0 = unbounded)
	EpochsReclaimed int64 // epochs retention GC merged forward on the primary
	EmergencyScans  int64 // ENOSPC-triggered reclamations survived
}

// chaosRun carries the harness state across phases.
type chaosRun struct {
	cfg ChaosConfig
	rep *ChaosReport

	srcClock *storage.Clock
	srcK     *kernel.Kernel
	srcO     *core.Orchestrator
	sup      *core.Supervisor
	fd       *storage.FaultDevice
	srcStore *core.StoreBackend

	dstClock *storage.Clock
	dstK     *kernel.Kernel
	dstO     *core.Orchestrator
	recv     *netback.Receiver
	dstStore *core.StoreBackend

	link      *netback.FaultLink
	endA      io.ReadWriteCloser
	endB      io.ReadWriteCloser
	rb        *netback.ReplicaBackend
	serveDone chan error
	serving   bool

	g *core.Group // the group currently running on src

	counterAt   map[uint64]uint64 // counter value captured by each epoch
	durableAt   map[string]uint64 // per-group durable high-water (monotonicity)
	maxReleased uint64            // highest epoch whose output was ever released
}

func (c *chaosRun) startServe() {
	c.serving = true
	go func() {
		_, err := c.recv.ServeReplica(c.endB)
		c.serveDone <- err
	}()
}

// resetLink tears the replication connection all the way down and
// re-establishes it: poison any live serve loop (a partition drop makes
// it exit), reap it, discard every buffered frame so a stale hello-ack
// cannot satisfy the next handshake, heal, and re-run the hello
// handshake — retrying, since probabilistic faults can kill the
// handshake itself. Every failed Connect implies a drop or corruption
// that also poisons the serve loop, so reaping between attempts cannot
// block.
func (c *chaosRun) resetLink() error {
	c.link.PartitionBoth()
	if c.serving {
		<-c.serveDone
		c.serving = false
	}
	c.rb.Disconnect()
	c.link.DrainPending()
	c.link.Heal()
	var err error
	for attempt := 0; attempt < 64; attempt++ {
		if !c.serving {
			c.startServe()
		}
		if _, err = c.rb.Connect(c.endA, c.g.ID); err == nil {
			return nil
		}
		<-c.serveDone
		c.serving = false
	}
	return fmt.Errorf("bench: chaos seed %d: replica link did not recover: %w", c.cfg.Seed, err)
}

func (c *chaosRun) replicaHealth() (core.BackendHealthInfo, bool) {
	for _, hi := range c.g.Health() {
		if hi.Name == "replica" {
			return hi, true
		}
	}
	return core.BackendHealthInfo{}, false
}

// syncDurable advances the durable frontier to the group's barrier
// epoch, retrying store-side failures with fresh fault rolls.
// Orchestrator.Sync means "durable everywhere" and so also errors on a
// partitioned replica; this helper cares only that some durable
// backend holds every epoch — replica catch-up is handled (or
// deliberately deferred) by the caller.
func (c *chaosRun) syncDurable() error {
	var last error
	for round := 0; round < 12; round++ {
		last = c.srcO.Sync(c.g)
		if c.g.Durable() == c.g.Epoch() {
			return nil
		}
	}
	return fmt.Errorf("bench: chaos seed %d: durable frontier stuck at %d (barrier %d): %w",
		c.cfg.Seed, c.g.Durable(), c.g.Epoch(), last)
}

// heal drives every sick backend of the current group back to healthy:
// reconnect the link if the replica lost it, then force a resync and a
// sync, repeating — under probabilistic faults a round can fail and a
// later one succeed.
func (c *chaosRun) heal() error {
	var last error
	for round := 0; round < 12; round++ {
		sick := false
		for _, hi := range c.g.Health() {
			if hi.State != core.BackendHealthy || hi.Pending > 0 {
				sick = true
			}
		}
		if !sick {
			return nil
		}
		if hi, ok := c.replicaHealth(); ok && (hi.State != core.BackendHealthy || hi.Pending > 0) {
			if err := c.resetLink(); err != nil {
				return err
			}
		}
		_ = c.srcO.Resync(c.g)
		last = c.srcO.Sync(c.g)
	}
	return fmt.Errorf("bench: chaos seed %d: group %d did not heal: %w", c.cfg.Seed, c.g.ID, last)
}

// invariants re-checks the standing invariants on the source line.
func (c *chaosRun) invariants(where string) error {
	key := fmt.Sprintf("src/%d", c.g.ID)
	d := c.g.Durable()
	if prev := c.durableAt[key]; d < prev {
		return fmt.Errorf("bench: chaos %s: durable epoch regressed %d -> %d (group %d)", where, prev, d, c.g.ID)
	}
	c.durableAt[key] = d
	for c.srcO.Released(c.g.ID, c.maxReleased+1) {
		c.maxReleased++
	}
	if hi, ok := c.replicaHealth(); ok && hi.State == core.BackendDown {
		return fmt.Errorf("bench: chaos %s: partitioned replica marked down (must cap at degraded)", where)
	}
	return c.checkPrimaries(c.g.ID, where)
}

// checkPrimaries asserts the fencing invariant: among the stores that
// claim the primary role for the lineage, exactly one holds the claim
// at the maximum generation.
func (c *chaosRun) checkPrimaries(lineage uint64, where string) error {
	type claim struct {
		who string
		gen uint64
	}
	var claims []claim
	var maxGen uint64
	add := func(who string, sb *core.StoreBackend) {
		if sb == nil {
			return
		}
		if gen, primary := sb.Store().PrimaryGen(lineage); primary {
			claims = append(claims, claim{who, gen})
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	add("src", c.srcStore)
	add("dst", c.dstStore)
	if len(claims) == 0 {
		return fmt.Errorf("bench: chaos %s: no store claims the primary role for lineage %d", where, lineage)
	}
	n := 0
	for _, cl := range claims {
		if cl.gen == maxGen {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("bench: chaos %s: %d stores claim primary at generation %d for lineage %d (want exactly 1: %v)",
			where, n, maxGen, lineage, claims)
	}
	return nil
}

// verifyState checks a restored or promoted group bit-for-bit against
// what was checkpointed at the given epoch: the counter value captured
// then, and the full patterned working set.
func (c *chaosRun) verifyState(k *kernel.Kernel, g *core.Group, epoch uint64, where string) error {
	want, ok := c.counterAt[epoch]
	if !ok {
		return fmt.Errorf("bench: chaos %s: no recorded counter for epoch %d", where, epoch)
	}
	p, err := k.Process(g.PIDs()[0])
	if err != nil {
		return fmt.Errorf("bench: chaos %s: %w", where, err)
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return fmt.Errorf("bench: chaos %s: reading counter: %w", where, err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		return fmt.Errorf("bench: chaos %s: counter %d at epoch %d, want %d — restore not bit-identical", where, got, epoch, want)
	}
	buf := make([]byte, vm.PageSize)
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			return fmt.Errorf("bench: chaos %s: paging page %d: %w", where, pg, err)
		}
		ref := recoveryPattern(pg, c.cfg.Seed)
		for i := range buf {
			if buf[i] != ref[i] {
				return fmt.Errorf("bench: chaos %s: page %d byte %d differs — restore not bit-identical", where, pg, i)
			}
		}
	}
	return nil
}

// syncStore syncs a store with bounded retries: the fault device can
// inject a write error into the superblock persist itself, and a
// retried sync draws fresh rolls.
func syncStore(st *objstore.Store) error {
	var err error
	for try := 0; try < 8; try++ {
		if err = st.Sync(); err == nil {
			return nil
		}
	}
	return err
}

func (c *chaosRun) readCounter() (uint64, error) {
	p, err := c.srcK.Process(c.g.PIDs()[0])
	if err != nil {
		return 0, err
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// crash kills every member of the group with a nonzero exit and lets
// the supervisor restore it, then verifies the restored state
// bit-identical, re-claims the primary role for the fresh lineage, and
// re-handshakes the replica (whose chain for the new lineage starts
// with the automatic full checkpoint).
func (c *chaosRun) crash() error {
	for _, pid := range c.g.PIDs() {
		if p, err := c.srcK.Process(pid); err == nil {
			c.srcK.Exit(p, 1)
		}
	}
	c.rep.Crashes++
	oldLineage := c.g.ID
	// A restore attempt can itself hit an injected store read fault;
	// the crash persists, so another poll retries it (with backoff
	// charged to the virtual clock).
	var ev *core.SupervisorEvent
	var lastErr error
	for try := 0; try < 10 && ev == nil; try++ {
		evs := c.sup.Poll()
		for i := range evs {
			if evs[i].Group != oldLineage {
				continue
			}
			if evs[i].GaveUp {
				return fmt.Errorf("bench: chaos seed %d: supervisor gave up on group %d", c.cfg.Seed, oldLineage)
			}
			if evs[i].Err != nil {
				lastErr = evs[i].Err
			}
			if evs[i].NewGroup != 0 {
				ev = &evs[i]
			}
		}
	}
	if ev == nil {
		return fmt.Errorf("bench: chaos seed %d: supervisor did not restore group %d: %v", c.cfg.Seed, oldLineage, lastErr)
	}
	ng, err := c.srcO.Group(ev.NewGroup)
	if err != nil {
		return fmt.Errorf("bench: chaos seed %d: restored group: %w", c.cfg.Seed, err)
	}
	// Released output must survive the restore. Normally the restored
	// epoch sits at or above the release watermark; if a store read
	// fault made the self-healing restore quarantine an epoch and fall
	// back below it, the released suffix is still not lost — releases
	// gate on replication, so the replica must hold it contiguously.
	if ng.Epoch() < c.maxReleased+1 && c.recv.ContiguousEpoch(oldLineage) < c.maxReleased+1 {
		return fmt.Errorf("bench: chaos seed %d: restore at epoch %d loses released output (watermark %d, replica floor %d)",
			c.cfg.Seed, ng.Epoch(), c.maxReleased, c.recv.ContiguousEpoch(oldLineage))
	}
	if err := c.verifyState(c.srcK, ng, ng.Epoch(), "supervisor restore"); err != nil {
		return err
	}
	// The restarted primary re-claims its role for the new lineage.
	if err := c.srcStore.Store().SetPrimary(ng.ID, ng.Generation()); err != nil {
		return fmt.Errorf("bench: chaos seed %d: reclaiming primary: %w", c.cfg.Seed, err)
	}
	if err := syncStore(c.srcStore.Store()); err != nil {
		return fmt.Errorf("bench: chaos seed %d: persisting primary claim: %w", c.cfg.Seed, err)
	}
	c.g = ng
	c.rep.Restores++
	c.durableAt[fmt.Sprintf("src/%d", ng.ID)] = ng.Durable()
	return c.resetLink()
}

// epoch runs one workload slice and checkpoints it, recording the
// counter value the epoch captured. Under space pressure admission
// control may shed the barrier (no epoch minted, no state captured);
// the workload keeps running and the next barrier coalesces the slices,
// so the harness retries until one is admitted — shedding bounds
// checkpoint frequency, never progress.
func (c *chaosRun) epoch() (uint64, error) {
	for attempt := 0; attempt < 16; attempt++ {
		if _, err := c.srcK.Run(c.cfg.StepsPerEpoch); err != nil {
			return 0, err
		}
		counter, err := c.readCounter()
		if err != nil {
			return 0, err
		}
		bd, err := c.srcO.Checkpoint(c.g, core.CheckpointOpts{})
		if err != nil {
			return 0, err
		}
		if bd.Shed {
			continue
		}
		ep := c.g.Epoch()
		c.counterAt[ep] = counter
		return ep, nil
	}
	return 0, fmt.Errorf("bench: chaos seed %d: admission control starved the checkpoint barrier", c.cfg.Seed)
}

// ChaosRun executes one full chaos schedule: steady state with
// composed storage/link faults, crashes, and a transient partition;
// then a permanent partition with divergent epochs; a replica
// promotion on the standby machine; a run on the promoted primary; and
// finally the stale primary's return, fencing, and demotion.
func ChaosRun(cfg ChaosConfig) (*ChaosReport, error) {
	cfg = cfg.withDefaults()
	c := &chaosRun{
		cfg:       cfg,
		rep:       &ChaosReport{Seed: cfg.Seed},
		counterAt: make(map[uint64]uint64),
		durableAt: make(map[string]uint64),
		serveDone: make(chan error, 1),
	}

	// Source machine: faulty primary store + replica link.
	c.srcClock = storage.NewClock()
	c.srcK = kernel.NewWith(c.srcClock, vm.NewPhysMem(0))
	c.srcO = core.NewOrchestrator(c.srcK)
	c.srcO.FlushWorkers = 1 // deterministic fault-schedule ordering
	c.sup = core.NewSupervisor(c.srcO, core.SupervisorConfig{MaxRestarts: 64})
	params := storage.ParamsOptaneNVMe
	if cfg.StoreCapacityEpochs > 0 {
		first, perEpoch, err := chaosFootprint(cfg.Seed, cfg.StepsPerEpoch)
		if err != nil {
			return nil, fmt.Errorf("bench: chaos seed %d: sizing probe: %w", cfg.Seed, err)
		}
		params.Capacity = first + perEpoch*int64(cfg.StoreCapacityEpochs)
	}
	c.fd = storage.NewFaultDevice(storage.NewMemDevice(params, c.srcClock), c.srcClock,
		storage.FaultConfig{Seed: cfg.Seed, WriteErr: cfg.StoreWriteErr, ReadErr: cfg.StoreReadErr})
	c.srcStore = core.NewStoreBackend(objstore.Create(c.fd, c.srcClock), c.srcK.Mem, c.srcClock)
	if cfg.StoreCapacityEpochs > 0 {
		rec := core.NewReclaimer(c.srcO, c.srcStore, core.RetentionPolicy{KeepLast: cfg.KeepLast}, core.Watermarks{})
		rec.Audit = (*objstore.Store).AuditReachability
		c.srcStore.SetReclaimer(rec)
	}

	// Standby machine: the replica receiver, promoted later.
	c.dstClock = storage.NewClock()
	c.dstK = kernel.NewWith(c.dstClock, vm.NewPhysMem(0))
	c.dstO = core.NewOrchestrator(c.dstK)
	c.dstO.FlushWorkers = 1
	c.recv = netback.NewReceiver(c.dstK.Mem, c.dstClock)

	c.link = netback.NewFaultLink(netback.LinkFaultConfig{
		Seed:    cfg.Seed,
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	}, c.srcClock)
	c.endA, c.endB = c.link.A(), c.link.B()
	c.rb = netback.NewReplicaBackend(c.srcClock)

	// Workload: the u64 counter plus a patterned working set.
	p, err := c.srcK.Spawn(0, "chaos-app")
	if err != nil {
		return nil, err
	}
	p.SetProgram(&chaosCounter{addr: p.HeapBase()})
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, cfg.Seed)); err != nil {
			return nil, err
		}
	}
	g, err := c.srcO.Persist("chaos-app", p)
	if err != nil {
		return nil, err
	}
	c.g = g
	c.srcO.Attach(g, c.srcStore)
	c.srcO.Attach(g, c.rb)
	if err := c.srcStore.Store().SetPrimary(g.ID, g.Generation()); err != nil {
		return nil, err
	}
	if err := syncStore(c.srcStore.Store()); err != nil {
		return nil, err
	}
	c.sup.Watch(g)
	if err := c.resetLink(); err != nil {
		return nil, err
	}

	// Phase 1 — steady state under composed faults.
	partActive := false
	t0 := c.srcClock.Now()
	for i := 1; i <= cfg.Checkpoints; i++ {
		if cfg.PartitionAt > 0 && i == cfg.PartitionAt {
			c.link.PartitionBoth()
			partActive = true
		}
		if _, err := c.epoch(); err != nil {
			return nil, fmt.Errorf("bench: chaos seed %d: checkpoint %d: %w", cfg.Seed, i, err)
		}
		if err := c.syncDurable(); err != nil {
			return nil, err
		}
		if !partActive {
			// Keep the replica converging between events so the durable
			// and replication frontiers both advance through the run.
			if hi, ok := c.replicaHealth(); ok && (hi.State != core.BackendHealthy || hi.Pending > 0) {
				if err := c.heal(); err != nil {
					return nil, err
				}
			}
		}
		if err := c.invariants(fmt.Sprintf("steady checkpoint %d", i)); err != nil {
			return nil, err
		}
		if partActive && i == cfg.PartitionAt+cfg.PartitionLen {
			// Heal the transient partition and measure catch-up: the
			// missed epochs drain and the replica floor rejoins durable.
			h0 := c.srcClock.Now()
			partActive = false
			if err := c.heal(); err != nil {
				return nil, err
			}
			if got, want := c.recv.ContiguousEpoch(c.g.ID), c.g.Durable(); got != want {
				return nil, fmt.Errorf("bench: chaos seed %d: after heal replica floor %d != durable %d", cfg.Seed, got, want)
			}
			c.rep.CatchUp = c.srcClock.Now() - h0
			c.rep.Heals++
		}
		if !partActive && cfg.CrashEvery > 0 && i%cfg.CrashEvery == 0 {
			if err := c.crash(); err != nil {
				return nil, err
			}
		}
	}
	c.rep.Checkpoints = cfg.Checkpoints
	c.rep.PerCheckpoint = (c.srcClock.Now() - t0) / time.Duration(cfg.Checkpoints)

	// Quiesce before the disaster so the replica floor equals the
	// durable line — the promotion must lose exactly the divergent
	// suffix, nothing else. A crash on the final steady-state
	// checkpoint leaves a fresh lineage whose first checkpoint has not
	// happened yet (empty replica chain), so mint one stabilization
	// epoch on the current lineage first.
	if _, err := c.epoch(); err != nil {
		return nil, fmt.Errorf("bench: chaos seed %d: stabilization checkpoint: %w", cfg.Seed, err)
	}
	if err := c.syncDurable(); err != nil {
		return nil, err
	}
	c.rep.Checkpoints++
	if err := c.heal(); err != nil {
		return nil, err
	}
	lineage := c.g.ID
	preFloor := c.g.Durable()
	if got := c.recv.ContiguousEpoch(lineage); got != preFloor {
		return nil, fmt.Errorf("bench: chaos seed %d: pre-disaster floor %d != durable %d", cfg.Seed, got, preFloor)
	}

	// Phase 2 — the permanent partition: the primary keeps running,
	// minting epochs only its own store ever sees. Releases must stop
	// at the replication frontier.
	c.link.PartitionBoth()
	for j := 1; j <= cfg.DivergentEpochs; j++ {
		ep, err := c.epoch()
		if err != nil {
			return nil, fmt.Errorf("bench: chaos seed %d: divergent checkpoint %d: %w", cfg.Seed, j, err)
		}
		if err := c.syncDurable(); err != nil {
			return nil, err
		}
		if c.srcO.Released(c.g.ID, ep-1) {
			return nil, fmt.Errorf("bench: chaos seed %d: output of divergent epoch %d released past the partition", cfg.Seed, ep-1)
		}
		if err := c.invariants(fmt.Sprintf("divergent checkpoint %d", j)); err != nil {
			return nil, err
		}
		c.rep.Checkpoints++
	}

	// Phase 3 — the primary is declared permanently dead; the standby
	// promotes the replica over a fresh store.
	c.dstStore = core.NewStoreBackend(objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, c.dstClock), c.dstClock), c.dstK.Mem, c.dstClock)
	prep, err := c.dstO.Promote(c.recv, lineage, c.dstStore, core.RestoreOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: chaos seed %d: promotion: %w", cfg.Seed, err)
	}
	if prep.Floor != preFloor {
		return nil, fmt.Errorf("bench: chaos seed %d: promotion floor %d, want %d", cfg.Seed, prep.Floor, preFloor)
	}
	if prep.Floor < c.maxReleased+1 {
		return nil, fmt.Errorf("bench: chaos seed %d: promotion floor %d loses released output (watermark %d)",
			cfg.Seed, prep.Floor, c.maxReleased)
	}
	pg := prep.Group
	if err := c.verifyState(c.dstK, pg, prep.Floor, "promotion"); err != nil {
		return nil, err
	}
	// The promoted group continues as a fresh lineage on dst: claim the
	// primary role for it too.
	if err := c.dstStore.Store().SetPrimary(pg.ID, prep.Gen); err != nil {
		return nil, err
	}
	if err := c.dstStore.Store().Sync(); err != nil {
		return nil, err
	}
	if err := c.checkPrimaries(lineage, "after promotion"); err != nil {
		return nil, err
	}
	c.rep.PromoteGen = prep.Gen
	c.rep.Floor = prep.Floor
	c.rep.Backfilled = prep.Backfilled
	c.rep.PromoteTTR = prep.TTR

	// Phase 3b — life goes on, on the promoted primary.
	dstKey := fmt.Sprintf("dst/%d", pg.ID)
	for j := 1; j <= cfg.PostEpochs; j++ {
		if _, err := c.dstK.Run(cfg.StepsPerEpoch); err != nil {
			return nil, err
		}
		np, err := c.dstK.Process(pg.PIDs()[0])
		if err != nil {
			return nil, err
		}
		var b [8]byte
		if err := np.ReadMem(np.HeapBase(), b[:]); err != nil {
			return nil, err
		}
		counter := binary.LittleEndian.Uint64(b[:])
		if _, err := c.dstO.Checkpoint(pg, core.CheckpointOpts{}); err != nil {
			return nil, fmt.Errorf("bench: chaos seed %d: promoted checkpoint %d: %w", cfg.Seed, j, err)
		}
		if err := c.dstO.Sync(pg); err != nil {
			return nil, fmt.Errorf("bench: chaos seed %d: promoted sync %d: %w", cfg.Seed, j, err)
		}
		c.counterAt[pg.Epoch()] = counter
		d := pg.Durable()
		if prev := c.durableAt[dstKey]; d < prev {
			return nil, fmt.Errorf("bench: chaos seed %d: promoted durable regressed %d -> %d", cfg.Seed, prev, d)
		}
		c.durableAt[dstKey] = d
		for c.dstO.Released(pg.ID, c.maxReleased+1) {
			c.maxReleased++
		}
		if err := c.checkPrimaries(lineage, "promoted epoch"); err != nil {
			return nil, err
		}
		c.rep.Checkpoints++
	}

	// Phase 4 — the stale primary comes back. Its next flush over the
	// healed link is rejected by the replica's fence, which marks the
	// group fenced; the following checkpoint barrier refuses outright,
	// and demotion quarantines the divergent suffix durably.
	if err := c.resetLink(); err != nil {
		return nil, err
	}
	if _, err := c.epoch(); err != nil {
		return nil, fmt.Errorf("bench: chaos seed %d: stale-return checkpoint: %w", cfg.Seed, err)
	}
	c.rep.Checkpoints++
	// The sync's store half succeeds (the stale store still accepts its
	// own generation); the replica half runs into the fence. The link
	// is still faulty, so a drop or corruption can eat the fence reply
	// itself (a connection loss, not a rejection) — reconnect and sync
	// again until the fence actually lands.
	var syncErr error
	for try := 0; try < 12; try++ {
		syncErr = c.srcO.Sync(c.g)
		if _, _, fenced := c.g.Fenced(); fenced {
			break
		}
		if err := c.resetLink(); err != nil {
			return nil, err
		}
	}
	fencedGen, _, fenced := c.g.Fenced()
	if !fenced {
		return nil, fmt.Errorf("bench: chaos seed %d: stale primary was not fenced on return: %v", cfg.Seed, syncErr)
	}
	if syncErr != nil && !errors.Is(syncErr, core.ErrStaleGeneration) &&
		!errors.Is(syncErr, core.ErrBackendDown) && !errors.Is(syncErr, netback.ErrDisconnected) {
		return nil, fmt.Errorf("bench: chaos seed %d: stale-return sync: %w", cfg.Seed, syncErr)
	}
	if fencedGen != prep.Gen {
		return nil, fmt.Errorf("bench: chaos seed %d: fenced by generation %d, want %d", cfg.Seed, fencedGen, prep.Gen)
	}
	c.rep.StaleRejected++ // the catch-up flush the fence bounced
	if _, err := c.srcK.Run(cfg.StepsPerEpoch); err != nil {
		return nil, err
	}
	if _, err := c.srcO.Checkpoint(c.g, core.CheckpointOpts{}); !errors.Is(err, core.ErrStaleGeneration) {
		return nil, fmt.Errorf("bench: chaos seed %d: fenced checkpoint error = %v, want ErrStaleGeneration", cfg.Seed, err)
	}
	c.rep.StaleRejected++ // the refused barrier
	// Demotion persists the adopted fence; a retried round draws fresh
	// fault rolls if the persist itself was injected.
	quarantinedSet := make(map[uint64]bool)
	var demoteErr error
	for try := 0; try < 5; try++ {
		q, err := c.srcO.DemoteStale(c.g)
		for _, ep := range q {
			quarantinedSet[ep] = true
		}
		demoteErr = err
		if err == nil {
			break
		}
	}
	if demoteErr != nil {
		return nil, fmt.Errorf("bench: chaos seed %d: demoting stale primary: %w", cfg.Seed, demoteErr)
	}
	c.rep.Quarantined = len(quarantinedSet)
	if c.rep.Quarantined < cfg.DivergentEpochs {
		return nil, fmt.Errorf("bench: chaos seed %d: %d epochs quarantined, want >= %d divergent",
			cfg.Seed, c.rep.Quarantined, cfg.DivergentEpochs)
	}
	if got := c.srcStore.Store().FenceGen(lineage); got != prep.Gen {
		return nil, fmt.Errorf("bench: chaos seed %d: demoted store fence %d, want %d", cfg.Seed, got, prep.Gen)
	}
	if _, primary := c.srcStore.Store().PrimaryGen(lineage); primary {
		return nil, fmt.Errorf("bench: chaos seed %d: demoted store still claims primary for lineage %d", cfg.Seed, lineage)
	}
	if err := c.checkPrimaries(lineage, "after demotion"); err != nil {
		return nil, err
	}

	// Final bit-identity check on the promoted line.
	if err := c.verifyState(c.dstK, pg, pg.Epoch(), "final"); err != nil {
		return nil, err
	}

	c.rep.Partitions = c.rb.Partitions()
	c.rep.LinkDropped = c.link.DroppedCount()
	c.rep.LinkInjected = c.link.InjectedCount()
	c.rep.StoreInjected = c.fd.InjectedCount()
	c.rep.Released = c.maxReleased
	if rec := c.srcStore.Reclaimer(); rec != nil {
		_, c.rep.StoreCapacity, _ = rec.Usage()
		st := rec.Stats()
		c.rep.EpochsReclaimed = st.EpochsReclaimed
		c.rep.EmergencyScans = st.EmergencyScans
		if st.LastAuditErr != "" {
			return nil, fmt.Errorf("bench: chaos seed %d: reachability audit failed during reclamation: %s",
				cfg.Seed, st.LastAuditErr)
		}
	}
	return c.rep, nil
}

// chaosFootprint measures the chaos workload's storage footprint on an
// unbounded, fault-free machine: the residency after the first durable
// epoch (superblock + full image) and the steady-state growth per
// incremental epoch. ChaosRun uses it to size a bounded device in
// epochs instead of guessing bytes.
func chaosFootprint(seed int64, steps int) (first, perEpoch int64, err error) {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	o.FlushWorkers = 1
	sb := core.NewStoreBackend(objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock), k.Mem, clock)

	p, err := k.Spawn(0, "chaos-probe")
	if err != nil {
		return 0, 0, err
	}
	p.SetProgram(&chaosCounter{addr: p.HeapBase()})
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, seed)); err != nil {
			return 0, 0, err
		}
	}
	g, err := o.Persist("chaos-probe", p)
	if err != nil {
		return 0, 0, err
	}
	o.Attach(g, sb)

	const probeEpochs = 8
	for i := 1; i <= probeEpochs; i++ {
		if _, err := k.Run(steps); err != nil {
			return 0, 0, err
		}
		if _, err := o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			return 0, 0, err
		}
		if err := o.Sync(g); err != nil {
			return 0, 0, err
		}
		used, _, _ := sb.Store().Usage()
		if i == 1 {
			first = used
		} else if i == probeEpochs {
			perEpoch = (used - first) / int64(probeEpochs-1)
		}
	}
	if perEpoch <= 0 {
		perEpoch = 1
	}
	// Budget the control-plane reserve (superblock slots + two index
	// generations) on top of the measured data footprint: it is held
	// back from data allocations and, with sub-block metadata packing,
	// no longer disappears inside the per-epoch growth. The run's index
	// outgrows the probe's (longer history, catch-up pinning), so give
	// it double the probe's reserve.
	first += 2 * sb.Store().ControlOverhead()
	return first, perEpoch, nil
}
