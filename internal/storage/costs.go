package storage

import "time"

// CostModel collects the CPU-side cost constants that, together with
// the device models, produce Aurora's modeled timing breakdowns. The
// constants are calibrated against the paper's testbed (dual Xeon
// Silver 4116) so that the shapes of Tables 3 and 4 reproduce.
type CostModel struct {
	// PTEOp is the cost of one page-table entry manipulation: marking
	// a PTE read-only for COW tracking, or installing a mapping. The
	// paper notes most of the checkpoint stop time is spent applying
	// COW tracking through page-table manipulations.
	PTEOp time.Duration
	// PageCopy is the cost of copying one 4 KiB page through the CPU
	// cache hierarchy (COW fault service, eager restore copy).
	PageCopy time.Duration
	// PageFault is the fixed trap cost of taking a page fault, on top
	// of any copy the handler performs.
	PageFault time.Duration
	// ObjSerialize is the fixed cost of serializing one kernel
	// object's metadata (process, fd, socket, ...).
	ObjSerialize time.Duration
	// ObjSerializeByte is the marginal per-byte cost of metadata
	// serialization.
	ObjSerializeByte time.Duration
	// ObjRestore is the fixed cost of recreating one kernel object at
	// restore time.
	ObjRestore time.Duration
	// ObjRestoreByte is the marginal per-byte cost of object recreation.
	ObjRestoreByte time.Duration
	// MapEntry is the cost of recreating one VM map entry (address
	// space reconstruction dominates restore in Table 4).
	MapEntry time.Duration
	// Syscall is the fixed kernel entry/exit cost charged to simulated
	// system calls.
	Syscall time.Duration
	// Instr is the cost of one interpreted instruction (application
	// CPU time for interp programs).
	Instr time.Duration
	// CtxSwitch is the cost of a context switch (stop/resume of one
	// process at a serialization barrier).
	CtxSwitch time.Duration
	// HashPage is the cost of content-hashing one page for object
	// store deduplication.
	HashPage time.Duration

	// The remaining constants drive the checkpoint/restore breakdowns
	// (Tables 3-4). Bases are fixed per-operation costs; PerKPage
	// values are charged per 1024 pages touched, which keeps
	// sub-nanosecond per-page costs representable.

	// CkptMetaBase is the fixed cost of the metadata-copy phase of a
	// serialization barrier (walking and serializing the kernel
	// object graph).
	CkptMetaBase time.Duration
	// CkptMetaPerKPage is the marginal metadata cost per 1024 resident
	// pages (page-range descriptors in the VM metadata).
	CkptMetaPerKPage time.Duration
	// ProtectPerPage is the bulk COW write-protect cost per page
	// during the lazy-data-copy phase (range PTE updates amortize far
	// below the single-PTE PTEOp cost).
	ProtectPerPage time.Duration
	// ProtectBase is the fixed cost of the protect phase (TLB
	// shootdown and queue setup) per checkpoint.
	ProtectBase time.Duration
	// RestoreMetaBase is the fixed cost of recreating kernel objects
	// at restore.
	RestoreMetaBase time.Duration
	// RestoreMetaPerKPage is the marginal metadata-restore cost per
	// 1024 image pages.
	RestoreMetaPerKPage time.Duration
	// RestoreMemBase is the fixed cost of rebuilding the address
	// space (memory state) at restore.
	RestoreMemBase time.Duration
	// RestoreMemPerKPage is the marginal memory-state cost per 1024
	// image pages (COW sharing against the image; no copies).
	RestoreMemPerKPage time.Duration
	// ImplicitMetaCredit and ImplicitMemCredit model the paper's
	// observation that reading a checkpoint from the object store
	// implicitly restores some state, making the metadata and memory
	// phases of a disk restore slightly *cheaper* than a memory
	// restore.
	ImplicitMetaCredit time.Duration
	ImplicitMemCredit  time.Duration
}

// PerKPage scales a per-1024-pages cost to a page count.
func PerKPage(d time.Duration, pages int64) time.Duration {
	if pages <= 0 {
		return 0
	}
	return time.Duration(int64(d) * pages / 1024)
}

// DefaultCosts is the calibrated cost model used by the experiment
// harness. See DESIGN.md §5 for the calibration methodology.
var DefaultCosts = CostModel{
	PTEOp:            120 * time.Nanosecond,
	PageCopy:         650 * time.Nanosecond,
	PageFault:        900 * time.Nanosecond,
	ObjSerialize:     750 * time.Nanosecond,
	ObjSerializeByte: 1 * time.Nanosecond,
	ObjRestore:       1100 * time.Nanosecond,
	ObjRestoreByte:   1 * time.Nanosecond,
	MapEntry:         2600 * time.Nanosecond,
	Syscall:          250 * time.Nanosecond,
	Instr:            2 * time.Nanosecond,
	CtxSwitch:        1200 * time.Nanosecond,
	HashPage:         350 * time.Nanosecond,

	CkptMetaBase:        226 * time.Microsecond,
	CkptMetaPerKPage:    82 * time.Nanosecond,
	ProtectPerPage:      9 * time.Nanosecond,
	ProtectBase:         20 * time.Microsecond,
	RestoreMetaBase:     236 * time.Microsecond,
	RestoreMetaPerKPage: 49 * time.Nanosecond,
	RestoreMemBase:      141 * time.Microsecond,
	RestoreMemPerKPage:  686 * time.Nanosecond,
	ImplicitMetaCredit:  33 * time.Microsecond,
	ImplicitMemCredit:   22 * time.Microsecond,
}
