// Package rr implements the record/replay integration the paper
// sketches for debugging: Aurora's cheap periodic checkpoints bound
// the record log, so a production machine keeps only the
// nondeterministic inputs since the last checkpoint. On a failure the
// application rolls back to that checkpoint and replays the log,
// letting a developer witness the final seconds before a crash with
// small disk and CPU overhead.
package rr

import (
	"errors"
	"sync"

	"aurora/internal/codec"
	"aurora/internal/core"
	"aurora/internal/kernel"
)

// ErrReplayExhausted is returned when a replay consumes more inputs
// than were recorded.
var ErrReplayExhausted = errors.New("rr: replay log exhausted")

// EventKind classifies a nondeterministic input.
type EventKind uint8

// Event kinds.
const (
	EvSocketData EventKind = iota + 1 // bytes arriving from outside
	EvClock                           // a clock read
	EvRandom                          // random input
	EvSignal                          // asynchronous signal
)

// Event is one recorded nondeterministic input.
type Event struct {
	Seq     uint64
	Kind    EventKind
	Payload []byte
}

// Recorder captures nondeterministic inputs and cooperates with the
// SLS: each checkpoint truncates the log to events after it.
type Recorder struct {
	api   *core.API
	group *core.Group

	mu      sync.Mutex
	seq     uint64
	events  []Event
	ckptSeq uint64 // seq at the last checkpoint
}

// NewRecorder attaches a recorder to a persistence group.
func NewRecorder(api *core.API, group *core.Group) *Recorder {
	return &Recorder{api: api, group: group}
}

// Record logs one input.
func (r *Recorder) Record(kind EventKind, payload []byte) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	r.events = append(r.events, Event{Seq: r.seq, Kind: kind, Payload: append([]byte(nil), payload...)})
	return r.seq
}

// LogLen reports the number of retained events.
func (r *Recorder) LogLen() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.events)
}

// LogBytes reports the retained log size.
func (r *Recorder) LogBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, ev := range r.events {
		n += int64(len(ev.Payload)) + 10
	}
	return n
}

// Checkpoint takes an SLS checkpoint of the group and truncates the
// record log: everything before the checkpoint is subsumed by it.
func (r *Recorder) Checkpoint(p *kernel.Process) (core.CheckpointBreakdown, error) {
	bd, err := r.api.Checkpoint(p, "")
	if err != nil {
		return bd, err
	}
	r.mu.Lock()
	r.ckptSeq = r.seq
	r.events = r.events[:0]
	r.mu.Unlock()
	return bd, nil
}

// TailLog returns the inputs since the last checkpoint, the exact set
// a replay needs.
func (r *Recorder) TailLog() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, len(r.events))
	copy(out, r.events)
	return out
}

// Encode serializes the tail log for shipping to a developer machine.
func (r *Recorder) Encode() []byte {
	e := codec.NewEncoder()
	events := r.TailLog()
	e.U64(uint64(len(events)))
	for _, ev := range events {
		e.U64(ev.Seq)
		e.U8(uint8(ev.Kind))
		e.Bytes2(ev.Payload)
	}
	return e.Bytes()
}

// DecodeLog parses a serialized tail log.
func DecodeLog(payload []byte) ([]Event, error) {
	d := codec.NewDecoder(payload)
	n := d.U64()
	out := make([]Event, 0, n)
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		out = append(out, Event{Seq: d.U64(), Kind: EventKind(d.U8()), Payload: d.Bytes2()})
	}
	if err := d.Finish("rr log"); err != nil {
		return nil, err
	}
	return out, nil
}

// Replayer feeds recorded inputs back to an application restored from
// the bounding checkpoint. Applications built for record/replay read
// inputs through an InputSource; live they get a recording source,
// replaying they get this.
type Replayer struct {
	mu     sync.Mutex
	events []Event
	pos    int
}

// NewReplayer wraps a tail log.
func NewReplayer(events []Event) *Replayer { return &Replayer{events: events} }

// Next returns the next recorded input of the given kind.
func (rp *Replayer) Next(kind EventKind) ([]byte, error) {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	for rp.pos < len(rp.events) {
		ev := rp.events[rp.pos]
		rp.pos++
		if ev.Kind == kind {
			return ev.Payload, nil
		}
	}
	return nil, ErrReplayExhausted
}

// Remaining reports unconsumed events.
func (rp *Replayer) Remaining() int {
	rp.mu.Lock()
	defer rp.mu.Unlock()
	return len(rp.events) - rp.pos
}

// InputSource abstracts where an application's nondeterministic
// inputs come from, so the same application code runs live and under
// replay.
type InputSource interface {
	// Input returns the next input of the kind, recording or
	// replaying as appropriate.
	Input(kind EventKind, live func() []byte) ([]byte, error)
}

// LiveSource records fresh inputs as they happen.
type LiveSource struct{ R *Recorder }

// Input implements InputSource.
func (s *LiveSource) Input(kind EventKind, live func() []byte) ([]byte, error) {
	data := live()
	s.R.Record(kind, data)
	return data, nil
}

// ReplaySource substitutes recorded inputs; the live function is never
// called, which is what makes the re-execution deterministic.
type ReplaySource struct{ R *Replayer }

// Input implements InputSource.
func (s *ReplaySource) Input(kind EventKind, live func() []byte) ([]byte, error) {
	return s.R.Next(kind)
}
