package core

import (
	"encoding/binary"
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// This file tests the background flush pipeline: Checkpoint must
// return at barrier completion (resume) while durability — and with it
// external consistency — advances only when the flusher retires the
// epoch on every backend. All tests here are meant to run under
// `go test -race`.

// gateBackend is a non-ephemeral backend whose Flush blocks on
// per-epoch gates, letting tests hold a flush in flight deliberately.
type gateBackend struct {
	mu      sync.Mutex
	gates   map[uint64]chan struct{} // epoch -> release gate
	entered map[uint64]chan struct{} // epoch -> closed when Flush starts
	flushed map[uint64]bool
}

func newGateBackend() *gateBackend {
	return &gateBackend{
		gates:   make(map[uint64]chan struct{}),
		entered: make(map[uint64]chan struct{}),
		flushed: make(map[uint64]bool),
	}
}

// gate arranges for the given epoch's Flush to block until release.
// Must be called before the epoch is checkpointed.
func (b *gateBackend) gate(epoch uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.gates[epoch] = make(chan struct{})
	b.entered[epoch] = make(chan struct{})
}

func (b *gateBackend) release(epoch uint64) {
	b.mu.Lock()
	ch := b.gates[epoch]
	delete(b.gates, epoch)
	b.mu.Unlock()
	if ch != nil {
		close(ch)
	}
}

// awaitEntered blocks until the epoch's Flush has been picked up by a
// pipeline worker.
func (b *gateBackend) awaitEntered(t *testing.T, epoch uint64) {
	t.Helper()
	b.mu.Lock()
	ch := b.entered[epoch]
	b.mu.Unlock()
	if ch == nil {
		t.Fatalf("epoch %d was never gated", epoch)
	}
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("flush of epoch %d never started", epoch)
	}
}

func (b *gateBackend) hasFlushed(epoch uint64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.flushed[epoch]
}

func (b *gateBackend) Name() string    { return "gate" }
func (b *gateBackend) Ephemeral() bool { return false }

func (b *gateBackend) Flush(img *Image) (time.Duration, error) {
	b.mu.Lock()
	gate := b.gates[img.Epoch]
	entered := b.entered[img.Epoch]
	b.mu.Unlock()
	if entered != nil {
		close(entered)
	}
	if gate != nil {
		<-gate
	}
	b.mu.Lock()
	b.flushed[img.Epoch] = true
	b.mu.Unlock()
	return 42 * time.Microsecond, nil
}

func (b *gateBackend) Load(group, epoch uint64) (*Image, time.Duration, error) {
	return nil, 0, ErrNoImage
}

// flakyBackend is a non-ephemeral backend whose Flush fails while an
// injected error is set.
type flakyBackend struct {
	mu       sync.Mutex
	err      error
	attempts int
}

func (b *flakyBackend) setErr(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.err = err
}

func (b *flakyBackend) tries() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempts
}

func (b *flakyBackend) Name() string    { return "flaky" }
func (b *flakyBackend) Ephemeral() bool { return false }

func (b *flakyBackend) Flush(img *Image) (time.Duration, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.attempts++
	if b.err != nil {
		return 0, b.err
	}
	return time.Microsecond, nil
}

func (b *flakyBackend) Load(group, epoch uint64) (*Image, time.Duration, error) {
	return nil, 0, ErrNoImage
}

// TestCheckpointReturnsBeforeFlush is the acceptance criterion:
// Checkpoint returns as soon as the group resumes, while the epoch's
// flush is still in flight, and Released stays false until the
// non-ephemeral backend has durably flushed the covering epoch.
func TestCheckpointReturnsBeforeFlush(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	gb := newGateBackend()
	gb.gate(1)
	r.o.Attach(g, gb)

	r.k.Run(5)
	bd, err := r.o.Checkpoint(g, CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}
	// Checkpoint returned while the backend flush is still blocked.
	if gb.hasFlushed(1) {
		t.Fatal("flush completed before Checkpoint returned; pipeline is synchronous")
	}
	if bd.StopTime == 0 {
		t.Fatal("no stop time recorded")
	}
	if bd.FlushTime != 0 {
		t.Fatalf("breakdown carries flush time %v at barrier completion", bd.FlushTime)
	}
	if d := g.Durable(); d != 0 {
		t.Fatalf("durable = %d while flush in flight, want 0", d)
	}
	if depth := g.QueueDepth(); depth != 1 {
		t.Fatalf("queue depth = %d, want 1", depth)
	}
	if r.o.Released(g.ID, 0) {
		t.Fatal("epoch released before the backend flushed it")
	}
	// The application keeps running during the flush.
	r.k.Run(5)
	if got := counterValue(p); got != 10 {
		t.Fatalf("counter = %d, want 10 (group stalled during background flush)", got)
	}

	gb.release(1)
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if d := g.Durable(); d != 1 {
		t.Fatalf("durable = %d after sync, want 1", d)
	}
	if !r.o.Released(g.ID, 0) {
		t.Fatal("epoch not released after durable flush")
	}
	if depth := g.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth = %d after sync, want 0", depth)
	}
	// Retirement patched the modeled flush time into the record.
	if got := g.Breakdowns()[0].FlushTime; got != 42*time.Microsecond {
		t.Fatalf("patched flush time = %v, want 42µs", got)
	}
}

// TestOutOfOrderCompletionStallsDurable: a later epoch finishing first
// must not advance the durable frontier past an earlier in-flight one.
func TestOutOfOrderCompletionStallsDurable(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	gb := newGateBackend()
	gb.gate(1) // epoch 1 blocks; epoch 2 flushes immediately
	r.o.Attach(g, gb)

	r.k.Run(1)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	gb.awaitEntered(t, 1)
	r.k.Run(1)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	// Wait for epoch 2's flush to complete out of order.
	deadline := time.Now().Add(10 * time.Second)
	for !gb.hasFlushed(2) {
		if time.Now().After(deadline) {
			t.Fatal("epoch 2 never flushed")
		}
		runtime.Gosched()
	}
	if d := g.Durable(); d != 0 {
		t.Fatalf("durable = %d with epoch 1 still in flight, want 0 (hole in history)", d)
	}
	if depth := g.QueueDepth(); depth != 2 {
		t.Fatalf("queue depth = %d, want 2 (completed epoch must not retire early)", depth)
	}

	gb.release(1)
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if d := g.Durable(); d != 2 {
		t.Fatalf("durable = %d after sync, want 2", d)
	}
}

// TestFlushErrorStallsDurabilityAndGating is the failure-injection
// satellite: a failing backend leaves Durable unadvanced, keeps
// external-consistency buffering in place, and surfaces the error on
// the next Sync; clearing the fault and syncing again recovers.
func TestFlushErrorStallsDurabilityAndGating(t *testing.T) {
	r := newRig(t)
	srv := spawnCounter(t, r)
	ext, _ := r.k.Spawn(0, "client") // outside any group
	a, b, _ := r.k.NewSocketPair(srv)
	fdB, _ := srv.FDs.Get(b)
	extFD, _ := ext.FDs.Install(r.k, fdB.File, kernel.ORdWr)

	g, _ := r.o.Persist("srv", srv)
	fb := &flakyBackend{}
	r.o.Attach(g, r.mem)
	r.o.Attach(g, fb)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil { // epoch 1 durable
		t.Fatal(err)
	}

	// Output written during epoch 1 waits for epoch 2's durability.
	r.k.Write(srv, a, []byte("held"))
	buf := make([]byte, 8)
	if _, err := r.k.Read(ext, extFD, buf); err != kernel.ErrWouldBlock {
		t.Fatalf("pre-checkpoint read err = %v, want would-block", err)
	}

	injected := errors.New("device offline")
	fb.setErr(injected)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err) // the barrier itself succeeds; the flush fails later
	}
	r.o.Drain(g) // wait out the failing background attempt
	if d := g.Durable(); d != 1 {
		t.Fatalf("durable = %d after failed flush, want 1", d)
	}
	if _, err := r.k.Read(ext, extFD, buf); err != kernel.ErrWouldBlock {
		t.Fatalf("gated read err = %v after failed flush, want would-block", err)
	}

	// The failure surfaces on the next sync, naming the backend.
	err := r.o.Sync(g)
	if err == nil {
		t.Fatal("sync succeeded over a failed epoch")
	}
	if !errors.Is(err, injected) || !strings.Contains(err.Error(), "flaky") {
		t.Fatalf("sync err = %v, want wrapped %v naming the backend", err, injected)
	}
	if d := g.Durable(); d != 1 {
		t.Fatalf("durable = %d after failed sync, want 1", d)
	}

	// Clearing the fault: Sync retries the stalled epoch and recovers.
	fb.setErr(nil)
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if d := g.Durable(); d != 2 {
		t.Fatalf("durable = %d after recovery, want 2", d)
	}
	n, err := r.k.Read(ext, extFD, buf)
	if err != nil || string(buf[:n]) != "held" {
		t.Fatalf("post-recovery read = %q, %v", buf[:n], err)
	}
	if fb.tries() < 3 {
		t.Fatalf("flaky backend saw %d attempts, want >= 3 (ok, fail, retry)", fb.tries())
	}
}

// TestCheckpointBackpressure: the bounded queue makes a checkpoint
// storm block once the pipeline is full, instead of building an
// unbounded backlog of unflushed epochs.
func TestCheckpointBackpressure(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	r.o.FlushQueueDepth = 1
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	gb := newGateBackend()
	gb.gate(1)
	r.o.Attach(g, gb)

	r.k.Run(1)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	gb.awaitEntered(t, 1) // the lone worker is now stuck on epoch 1
	r.k.Run(1)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err) // fills the single queue slot
	}
	r.k.Run(1)
	done := make(chan error, 1)
	go func() {
		_, err := r.o.Checkpoint(g, CheckpointOpts{})
		done <- err
	}()
	select {
	case <-done:
		t.Fatal("checkpoint returned with the pipeline full; no backpressure")
	case <-time.After(50 * time.Millisecond):
	}
	// Depth counts every un-retired epoch, including the one blocked in
	// Enqueue (registered before the channel send so Sync covers it).
	if depth := g.QueueDepth(); depth != 3 {
		t.Fatalf("queue depth = %d, want 3", depth)
	}

	gb.release(1)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("checkpoint never unblocked after flush drained")
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if d := g.Durable(); d != 3 {
		t.Fatalf("durable = %d, want 3", d)
	}
}

// TestCheckpointStormUnderConcurrentWrites is the concurrency stress
// satellite: writers mutate distinct heap pages while checkpoints
// stream at high frequency. The durable epoch must only ever move
// forward, and no update may be lost — the final durable image must
// hold every writer's last value.
func TestCheckpointStormUnderConcurrentWrites(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.o.Attach(g, r.store)

	const writers = 4
	const rounds = 300
	const storms = 20

	// Observer: the durable frontier is monotone throughout the storm.
	stop := make(chan struct{})
	obsDone := make(chan struct{})
	go func() {
		defer close(obsDone)
		var prev uint64
		for {
			d := g.Durable()
			if d < prev {
				t.Errorf("durable epoch went backwards: %d -> %d", prev, d)
				return
			}
			prev = d
			select {
			case <-stop:
				return
			default:
				runtime.Gosched()
			}
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer owns one heap page past the counter's.
			addr := p.HeapBase() + vm.Addr((w+1)<<vm.PageShift)
			var buf [8]byte
			for i := 1; i <= rounds; i++ {
				binary.LittleEndian.PutUint64(buf[:], uint64(i))
				if err := p.WriteMem(addr, buf[:]); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	for i := 0; i < storms; i++ {
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	// One more barrier now that the writers are done: it captures their
	// final values.
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-obsDone

	if e, d := g.Epoch(), g.Durable(); e != d {
		t.Fatalf("after sync: epoch %d != durable %d", e, d)
	}

	// Restore the newest durable epoch and check for lost updates.
	ng, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	for w := 0; w < writers; w++ {
		var buf [8]byte
		if err := np.ReadMem(np.HeapBase()+vm.Addr((w+1)<<vm.PageShift), buf[:]); err != nil {
			t.Fatal(err)
		}
		if got := binary.LittleEndian.Uint64(buf[:]); got != rounds {
			t.Fatalf("writer %d: restored value %d, want %d (lost update)", w, got, rounds)
		}
	}
}

// TestSkipFlushEpochNeverQueued: rollback points stay in memory — the
// pipeline never sees them, and a later Sync makes them durable via
// the foreground path.
func TestSkipFlushEpochNeverQueued(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)

	r.k.Run(3)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{SkipFlush: true}); err != nil {
		t.Fatal(err)
	}
	if depth := g.QueueDepth(); depth != 0 {
		t.Fatalf("queue depth = %d for a SkipFlush epoch, want 0", depth)
	}
	if d := g.Durable(); d != 0 {
		t.Fatalf("durable = %d, want 0", d)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if d := g.Durable(); d != 1 {
		t.Fatalf("durable = %d after sync, want 1", d)
	}
	if _, _, err := r.mem.Load(g.ID, 0); err != nil {
		t.Fatalf("sync did not flush the SkipFlush image: %v", err)
	}
}
