package bench

import (
	"fmt"
	"time"

	"aurora/internal/apps/kvlsm"
	"aurora/internal/kernel"
)

func init() {
	kernel.RegisterProgram("bench-lsm-idle", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "bench-lsm-idle",
			Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }}, nil
	})
}

// PipelineResult measures what the background flush pipeline takes off
// the critical path for an LSM-store workload: the application pays
// only the serialization-barrier stop time per checkpoint, while the
// checkpoint+flush latency (what a synchronous flush would have
// charged) completes in the background.
type PipelineResult struct {
	Ops         int
	Checkpoints int
	// TotalStop is the summed application stop time — the pipeline-era
	// critical-path cost.
	TotalStop time.Duration
	// TotalFlush is the summed background flush time.
	TotalFlush time.Duration
	// MaxStop and MaxFull compare the worst single barrier against the
	// worst full checkpoint+flush latency.
	MaxStop time.Duration
	MaxFull time.Duration
	// PeakQueueDepth is the most un-retired epochs observed in flight.
	PeakQueueDepth int
}

// TotalFull is the critical-path cost a synchronous flush would have
// charged: every checkpoint's stop time plus its flush time.
func (r *PipelineResult) TotalFull() time.Duration {
	return r.TotalStop + r.TotalFlush
}

// PipelineKVLSM runs an Aurora-mode LSM store (NT log + checkpoints,
// no WAL) for the given number of Puts, checkpointing every ckptEvery
// operations, and reports the stop-time vs. checkpoint+flush split.
func PipelineKVLSM(ops, ckptEvery int) (*PipelineResult, error) {
	m := NewMachine()
	fs, err := newFS(m)
	if err != nil {
		return nil, err
	}
	p, err := m.K.Spawn(0, "lsm")
	if err != nil {
		return nil, err
	}
	p.SetProgram(&kernel.FuncProgram{Name: "bench-lsm-idle",
		Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }})
	g, err := m.O.Persist("lsm", p)
	if err != nil {
		return nil, err
	}
	m.O.Attach(g, m.Store)
	db, err := kvlsm.Open(fs, "/db", kvlsm.Options{
		Aurora: &kvlsm.AuroraHooks{API: m.API, Proc: p, CheckpointEvery: ckptEvery},
	})
	if err != nil {
		return nil, err
	}

	val := make([]byte, 512)
	for i := range val {
		val[i] = byte(i * 7)
	}
	r := &PipelineResult{Ops: ops}
	for i := 0; i < ops; i++ {
		if err := db.Put([]byte(fmt.Sprintf("row:%06d", i)), val); err != nil {
			return nil, err
		}
		if d := g.QueueDepth(); d > r.PeakQueueDepth {
			r.PeakQueueDepth = d
		}
	}
	// Settle the pipeline so every breakdown carries its flush time.
	if err := m.O.Sync(g); err != nil {
		return nil, err
	}
	for _, bd := range g.Breakdowns() {
		r.TotalStop += bd.StopTime
		r.TotalFlush += bd.FlushTime
		if bd.StopTime > r.MaxStop {
			r.MaxStop = bd.StopTime
		}
		if full := bd.StopTime + bd.FlushTime; full > r.MaxFull {
			r.MaxFull = full
		}
	}
	r.Checkpoints = len(g.Breakdowns())
	return r, nil
}
