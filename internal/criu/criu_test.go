package criu

import (
	"bytes"
	"testing"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func fixture(t *testing.T) (*kernel.Kernel, *Checkpointer, *storage.Clock) {
	t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)
	return k, New(k, dev), clock
}

func TestCheckpointRestoreRoundTrip(t *testing.T) {
	k, c, _ := fixture(t)
	p, _ := k.Spawn(0, "app")
	payload := make([]byte, 8*vm.PageSize)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	p.WriteMem(p.HeapBase(), payload)

	bd, err := c.Checkpoint(p)
	if err != nil {
		t.Fatal(err)
	}
	if bd.PagesCopied < 8 {
		t.Fatalf("copied %d pages", bd.PagesCopied)
	}
	if bd.StopTime <= bd.MemoryCopy {
		t.Fatal("stop time must include the synchronous write")
	}
	if p.State() != kernel.ProcRunning {
		t.Fatal("process not resumed after checkpoint")
	}

	np, err := c.Restore(p.PID, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	np.ReadMem(np.HeapBase(), got)
	if !bytes.Equal(got, payload) {
		t.Fatal("restored memory differs")
	}
}

func TestRestoreWithoutImage(t *testing.T) {
	_, c, _ := fixture(t)
	if _, err := c.Restore(42, 0); err == nil {
		t.Fatal("restore without image should fail")
	}
}

func TestSharedPagesDuplicated(t *testing.T) {
	k, c, _ := fixture(t)
	parent, _ := k.Spawn(0, "app")
	seg, _ := k.ShmGet(5, 16*vm.PageSize)
	a, _ := k.ShmAttach(parent, seg)
	parent.WriteMem(a, make([]byte, 16*vm.PageSize))
	child, _ := k.Fork(parent)
	if _, err := k.ShmAttach(child, seg); err != nil {
		t.Fatal(err)
	}

	bd, err := c.Checkpoint(parent)
	if err != nil {
		t.Fatal(err)
	}
	// CRIU-style per-process scraping copies the shared 16 pages once
	// per attachment: the checkpoint stores them (at least) twice.
	if bd.PagesCopied < 32 {
		t.Fatalf("shared pages copied %d times, expected duplication (>=32)", bd.PagesCopied)
	}
}

// TestCRIUOverheadVsAurora demonstrates the paper's §2 claim: the
// syscall-boundary approach has prohibitive overhead for transparent
// persistence compared to Aurora's in-kernel incremental COW.
func TestCRIUOverheadVsAurora(t *testing.T) {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)

	p, _ := k.Spawn(0, "app")
	ws := int64(4096) // 16 MiB working set
	p.Sbrk(ws * vm.PageSize)
	p.WriteMem(p.HeapBase(), make([]byte, ws*vm.PageSize))

	// Aurora: one full checkpoint to establish tracking, then an
	// incremental one after a small write burst.
	g, _ := o.Persist("app", p)
	o.Attach(g, core.NewStoreBackend(st, k.Mem, clock))
	if _, err := o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	p.WriteMem(p.HeapBase(), []byte{1}) // dirty one page
	aurora, err := o.Checkpoint(g, core.CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}

	// CRIU: same application, same write burst.
	criuDev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)
	c := New(k, criuDev)
	p.WriteMem(p.HeapBase(), []byte{2})
	criu, err := c.Checkpoint(p)
	if err != nil {
		t.Fatal(err)
	}

	if criu.StopTime < 10*aurora.StopTime {
		t.Fatalf("CRIU stop %v vs Aurora %v: expected >=10x gap",
			criu.StopTime, aurora.StopTime)
	}
}

func TestImageAccounting(t *testing.T) {
	k, c, _ := fixture(t)
	p, _ := k.Spawn(0, "app")
	p.WriteMem(p.HeapBase(), make([]byte, vm.PageSize))
	c.Checkpoint(p)
	c.Checkpoint(p)
	if c.ImageCount(p.PID) != 2 {
		t.Fatalf("image count = %d", c.ImageCount(p.PID))
	}
	if c.ImageBytes(p.PID) <= 0 {
		t.Fatal("image bytes not tracked")
	}
}
