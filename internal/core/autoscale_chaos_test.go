package core_test

// The scale-storm autoscaling chaos gate: a 2-store base fleet with a
// warm pool (one spare dead on arrival) rides an open-loop load ramp
// up to peak and back down, with a burst + store-kill landing mid
// scale-in. The autoscaler must grow the fleet, skip the dead spare,
// roll the interrupted drain back with zero fenced survivors, heal the
// evacuation storm, and converge back to the base size — with every
// surviving lineage bit-identical and both fencing invariants intact.
// The engine lives in internal/bench (AutoscaleChaosRun); this binds
// it to the seeds and fault rates `make scalecheck` pins. Scale is
// environment-gated: plain `go test` runs a smoke-sized ramp,
// scalecheck sets AURORA_SCALE_GROUPS=48 (which forces the fleet all
// the way to its 6-store ceiling: 2→6→2).

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"aurora/internal/bench"
)

// autoscaleGroupTotal returns each cell's peak arrival count.
func autoscaleGroupTotal() int {
	if s := os.Getenv("AURORA_SCALE_GROUPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 24
}

func runAutoscaleChaos(t *testing.T, seed int64) {
	rates := []float64{0, 0.01, 0.05}
	groups := autoscaleGroupTotal()
	if testing.Short() {
		rates = []float64{0.01}
		groups = 16
	}
	for _, rate := range rates {
		rate := rate
		t.Run(fmt.Sprintf("rate%g", rate*100), func(t *testing.T) {
			rep, err := bench.AutoscaleChaosRun(bench.AutoscaleChaosConfig{
				Seed:          seed,
				PeakGroups:    groups,
				LinkDrop:      rate,
				LinkDup:       rate / 2,
				LinkCorrupt:   rate / 2,
				StoreWriteErr: rate / 5,
				StoreReadErr:  rate / 5,
			})
			if err != nil {
				t.Fatalf("autoscale chaos seed %d rate %g: %v", seed, rate, err)
			}
			if rep.ScaledTo < rep.ExpectedPeak {
				t.Fatalf("ramp-up scaled to %d stores, load level demands >= %d", rep.ScaledTo, rep.ExpectedPeak)
			}
			if !rep.DeadSkipped {
				t.Fatalf("dead warm spare %s was never skipped", rep.DeadSpare)
			}
			if rep.Rollbacks == 0 {
				t.Fatalf("mid-scale-in storm never forced a rollback (drainee %s, victim %s)",
					rep.Drainee, rep.Victim)
			}
			if rep.ScaleIns == 0 {
				t.Fatalf("ramp-down completed no scale-in")
			}
			if rep.FinalActive != 2 {
				t.Fatalf("fleet settled at %d active stores, want 2", rep.FinalActive)
			}
			if rep.Evacuated == 0 {
				t.Fatalf("victim %s held no residents — the kill exercised nothing", rep.Victim)
			}
			// Each verified lineage counts twice (live + scratch restore):
			// the victim's residents post-storm and every survivor at the
			// end.
			if rep.RestoresVerified < 2*(rep.Evacuated+rep.FinalGroups) {
				t.Fatalf("restores verified = %d, want >= %d",
					rep.RestoresVerified, 2*(rep.Evacuated+rep.FinalGroups))
			}
			if rep.Violations != 0 {
				t.Fatalf("%d invariant violations", rep.Violations)
			}
			if rep.FinalDurable == 0 {
				t.Fatalf("fleet made no durable progress")
			}
			if rep.ConvergeOutTicks == 0 || rep.ConvergeInTicks == 0 {
				t.Fatalf("convergence not recorded (out %d, in %d)", rep.ConvergeOutTicks, rep.ConvergeInTicks)
			}
		})
	}
}

func TestAutoscaleChaosSeed1(t *testing.T)  { runAutoscaleChaos(t, 1) }
func TestAutoscaleChaosSeed7(t *testing.T)  { runAutoscaleChaos(t, 7) }
func TestAutoscaleChaosSeed42(t *testing.T) { runAutoscaleChaos(t, 42) }
