GO ?= go

.PHONY: check build vet test race bench

## check: full gate — build, vet, race-enabled tests
check:
	$(GO) build ./...
	$(GO) vet ./...
	$(GO) test -race ./...

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

## bench: run the paper-claim benchmarks (also refreshes BENCH_pipeline.json)
bench:
	$(GO) test -bench=. -benchmem -run '^$$' .
