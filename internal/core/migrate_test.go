package core_test

// End-to-end live-migration coverage against the real netback wire:
// planned migration with a running workload, abort paths for a target
// dying in every phase (the source must remain the sole
// max-generation primary and keep running), a flaky in-band handover
// that completes under retries, a double migration A→B→C on one
// explicit lineage, hot-standby promotion after an unplanned source
// crash, and the seeded chaos schedules `make migratecheck` pins.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"testing"
	"time"

	"aurora/internal/bench"
	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// migMach is one simulated machine.
type migMach struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	sb    *core.StoreBackend
}

func newMigMach(t *testing.T) *migMach {
	t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	o.FlushWorkers = 1
	sb := core.NewStoreBackend(
		objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock),
		k.Mem, clock)
	return &migMach{clock: clock, k: k, o: o, sb: sb}
}

// migTestCounter increments a u64 at a fixed heap address each step.
type migTestCounter struct{ addr vm.Addr }

func (c *migTestCounter) ProgName() string { return "migrate-test-counter" }
func (c *migTestCounter) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	return e.Bytes()
}
func (c *migTestCounter) Step(k *kernel.Kernel, p *kernel.Process, th *kernel.Thread) error {
	var b [8]byte
	if err := p.ReadMem(c.addr, b[:]); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(b[:], binary.LittleEndian.Uint64(b[:])+1)
	return p.WriteMem(c.addr, b[:])
}

func init() {
	kernel.RegisterProgram("migrate-test-counter", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &migTestCounter{addr: vm.Addr(d.U64())}, nil
	})
}

// startApp spawns the counter workload on m, persists it, and anchors
// the lineage in m's store.
func startApp(t *testing.T, m *migMach, name string) *core.Group {
	t.Helper()
	p, err := m.k.Spawn(0, name)
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&migTestCounter{addr: p.HeapBase()})
	g, err := m.o.Persist(name, p)
	if err != nil {
		t.Fatal(err)
	}
	m.o.Attach(g, m.sb)
	if err := m.sb.Store().SetPrimary(g.ID, g.Generation()); err != nil {
		t.Fatal(err)
	}
	if err := m.sb.Store().Sync(); err != nil {
		t.Fatal(err)
	}
	return g
}

func counterOn(t *testing.T, m *migMach, g *core.Group) uint64 {
	t.Helper()
	pids := g.PIDs()
	if len(pids) == 0 {
		t.Fatalf("group %d has no members", g.ID)
	}
	p, err := m.k.Process(pids[0])
	if err != nil {
		t.Fatal(err)
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		t.Fatal(err)
	}
	return binary.LittleEndian.Uint64(b[:])
}

// restoreCounter restores (group, epoch) from sb on a scratch machine
// and returns the counter: the bit-identical check.
func restoreCounter(t *testing.T, sb *core.StoreBackend, group, epoch uint64) uint64 {
	t.Helper()
	img, readTime, err := sb.Load(group, epoch)
	if err != nil {
		t.Fatalf("loading (%d, %d): %v", group, epoch, err)
	}
	scratch := newMigMach(t)
	ng, _, err := scratch.o.RestoreImage(img, readTime, core.RestoreOpts{})
	if err != nil {
		t.Fatalf("restoring (%d, %d): %v", group, epoch, err)
	}
	return counterOn(t, scratch, ng)
}

// migWire is the netback link between two machines (fault-free unless
// the test partitions it).
type migWire struct {
	link    *netback.FaultLink
	endA    io.ReadWriteCloser
	rb      *netback.ReplicaBackend
	recv    *netback.Receiver
	done    chan error
	serving bool
}

func newMigWire(t *testing.T, src, dst *migMach, group uint64) *migWire {
	t.Helper()
	w := &migWire{done: make(chan error, 1)}
	w.link = netback.NewFaultLink(netback.LinkFaultConfig{Seed: 1}, src.clock)
	w.endA = w.link.A()
	endB := w.link.B()
	w.recv = netback.NewReceiver(dst.k.Mem, dst.clock)
	w.rb = netback.NewReplicaBackend(src.clock)
	w.rb.SetName("migrate-wire")
	w.serving = true
	go func() {
		_, err := w.recv.ServeReplica(endB)
		w.done <- err
	}()
	if _, err := w.rb.Connect(w.endA, group); err != nil {
		t.Fatalf("connect: %v", err)
	}
	return w
}

// reset re-establishes the wire after a partition.
func (w *migWire) reset(group uint64) error {
	w.link.PartitionBoth()
	if w.serving {
		<-w.done
		w.serving = false
	}
	w.rb.Disconnect()
	w.link.DrainPending()
	w.link.Heal()
	var err error
	for i := 0; i < 64; i++ {
		if !w.serving {
			endB := w.link.B()
			w.serving = true
			go func() {
				_, serr := w.recv.ServeReplica(endB)
				w.done <- serr
			}()
		}
		if _, err = w.rb.Connect(w.endA, group); err == nil {
			return nil
		}
		<-w.done
		w.serving = false
	}
	return err
}

// assertSolePrimary checks exactly one of the stores claims the
// primary role at the max generation for lineage.
func assertSolePrimary(t *testing.T, lineage uint64, want *migMach, machs ...*migMach) {
	t.Helper()
	var maxGen uint64
	type cl struct {
		m   *migMach
		gen uint64
	}
	var claims []cl
	for _, m := range machs {
		if gen, primary := m.sb.Store().PrimaryGen(lineage); primary {
			claims = append(claims, cl{m, gen})
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	var top []*migMach
	for _, c := range claims {
		if c.gen == maxGen {
			top = append(top, c.m)
		}
	}
	if len(top) != 1 || top[0] != want {
		t.Fatalf("primary claims at max gen %d = %d (want exactly the expected machine)", maxGen, len(top))
	}
}

func TestMigratePlannedEndToEnd(t *testing.T) {
	a, b := newMigMach(t), newMigMach(t)
	g := startApp(t, a, "app")
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}
	w := newMigWire(t, a, b, g.ID)
	sup := core.NewSupervisor(a.o, core.SupervisorConfig{})
	sup.Watch(g)

	var last uint64
	workload := func() error {
		if _, err := a.k.Run(2); err != nil {
			return err
		}
		last = counterOn(t, a, g)
		return nil
	}
	mig := &core.Migrator{
		Src: a.o, Dst: b.o, G: g,
		Link: w.rb, Target: w.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Sup:       sup,
		Reconnect: func() error { return w.reset(g.ID) },
		Cfg:       core.MigratorConfig{Name: "migrated"},
	}
	rep, err := mig.Run(workload)
	if err != nil {
		t.Fatalf("migration failed: %v", err)
	}

	if rep.Group == nil || rep.Gen < 2 || rep.Floor == 0 {
		t.Fatalf("report = %+v, want restored group, gen >= 2, nonzero floor", rep)
	}
	if rep.Blackout <= 0 || rep.Blackout > 5*time.Millisecond {
		t.Fatalf("blackout = %v, want within single-barrier order (< 5ms virtual)", rep.Blackout)
	}
	if d := rep.Group.Durable(); d < rep.Floor {
		t.Fatalf("target durable %d below handover floor %d", d, rep.Floor)
	}
	// The migrated state is bit-identical, demand-paged through the
	// lazy tail.
	if got := counterOn(t, b, rep.Group); got != last {
		t.Fatalf("target counter = %d, want %d", got, last)
	}
	// And restores bit-identical from the target store alone.
	if got := restoreCounter(t, b.sb, g.ID, rep.Floor); got != last {
		t.Fatalf("restore from target store = %d, want %d", got, last)
	}
	// The fenced source refuses the barrier and lost its watch.
	if _, err := a.o.Checkpoint(g, core.CheckpointOpts{}); !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("fenced source checkpoint = %v, want ErrStaleGeneration", err)
	}
	if watched := sup.Watched(); len(watched) != 0 {
		t.Fatalf("source supervisor still watches %v after handover", watched)
	}
	assertSolePrimary(t, g.ID, b, a, b)
	// The target can keep running and checkpointing at the new
	// generation.
	if _, err := b.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := b.o.Checkpoint(rep.Group, core.CheckpointOpts{}); err != nil {
		t.Fatalf("post-migration checkpoint on target: %v", err)
	}
	if err := b.o.Sync(rep.Group); err != nil {
		t.Fatalf("post-migration sync on target: %v", err)
	}
}

func TestMigrateAbortTargetDeadPreCopy(t *testing.T) {
	a, b := newMigMach(t), newMigMach(t)
	g := startApp(t, a, "app")
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}
	w := newMigWire(t, a, b, g.ID)
	before := counterOn(t, a, g)

	// The target dies for good before the first ship: the link is
	// partitioned and reconnects never succeed.
	w.link.PartitionBoth()
	mig := &core.Migrator{
		Src: a.o, Dst: b.o, G: g,
		Link: w.rb, Target: w.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Reconnect: func() error {
			return fmt.Errorf("target unreachable: %w", netback.ErrDisconnected)
		},
		Cfg: core.MigratorConfig{Retries: 2},
	}
	_, err := mig.Run(nil)
	if err == nil {
		t.Fatal("migration to a dead target succeeded")
	}
	if !errors.Is(err, core.ErrMigrationAborted) {
		t.Fatalf("err = %v, want ErrMigrationAborted wrap", err)
	}
	// The real netback sentinel survives the phase-tagged wrap.
	if !errors.Is(err, netback.ErrDisconnected) {
		t.Fatalf("err = %v, want netback.ErrDisconnected preserved", err)
	}
	var me *core.MigrationError
	if !errors.As(err, &me) || me.Phase != core.PhasePreCopy || me.Group != g.ID {
		t.Fatalf("err = %v, want *MigrationError{Phase: pre-copy, Group: %d}", err, g.ID)
	}
	if me.Retries == 0 {
		t.Fatalf("MigrationError.Retries = 0, want retry attempts recorded")
	}

	// The source is untouched: unfenced, sole primary, still advancing
	// durable state once the dead link is abandoned.
	if _, _, fenced := g.Fenced(); fenced {
		t.Fatal("source fenced by an aborted pre-copy")
	}
	mig.Abandon()
	durable := g.Durable()
	if _, err := a.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatalf("source checkpoint after abort: %v", err)
	}
	if err := a.o.Sync(g); err != nil {
		t.Fatalf("source sync after abort: %v", err)
	}
	if d := g.Durable(); d <= durable {
		t.Fatalf("source durable stuck at %d after abort", d)
	}
	assertSolePrimary(t, g.ID, a, a, b)
	if got := counterOn(t, a, g); got != before+2 {
		t.Fatalf("source counter = %d, want %d", got, before+2)
	}
	if got := restoreCounter(t, a.sb, g.ID, g.Durable()); got != before+2 {
		t.Fatalf("restore from source store = %d, want %d", got, before+2)
	}
}

func TestMigrateAbortMidBlackoutThenRetry(t *testing.T) {
	a, b := newMigMach(t), newMigMach(t)
	g := startApp(t, a, "app")
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}
	w := newMigWire(t, a, b, g.ID)

	dead := true
	mig := &core.Migrator{
		Src: a.o, Dst: b.o, G: g,
		Link: w.rb, Target: w.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Reconnect: func() error {
			if dead {
				return fmt.Errorf("target unreachable: %w", netback.ErrDisconnected)
			}
			return w.reset(g.ID)
		},
		Cfg: core.MigratorConfig{Retries: 2},
	}
	// Pre-copy converges while the target is healthy…
	if residual, err := mig.PreCopyRound(nil); err != nil || residual != 0 {
		t.Fatalf("pre-copy: residual=%d err=%v", residual, err)
	}
	// …then the target dies right before the blackout.
	w.link.PartitionBoth()
	before := counterOn(t, a, g)
	_, err := mig.Cutover()
	var me *core.MigrationError
	if !errors.As(err, &me) || me.Phase != core.PhaseBlackout {
		t.Fatalf("cutover on dead target = %v, want *MigrationError{Phase: blackout}", err)
	}
	if _, _, fenced := g.Fenced(); fenced {
		t.Fatal("source fenced by an aborted blackout")
	}
	assertSolePrimary(t, g.ID, a, a, b)

	// The target comes back: the same migrator retries to completion.
	dead = false
	rep, err := mig.Run(nil)
	if err != nil {
		t.Fatalf("retried migration: %v", err)
	}
	if got := counterOn(t, b, rep.Group); got != before {
		t.Fatalf("target counter after retried migration = %d, want %d", got, before)
	}
	assertSolePrimary(t, g.ID, b, a, b)
}

// flakyHandoff eats handoff announcements until fails hits zero, then
// delegates to the real in-band announcer.
type flakyHandoff struct {
	core.Backend
	fails int
}

func (f *flakyHandoff) Handoff(group, gen, floor uint64) error {
	if f.fails > 0 {
		f.fails--
		return fmt.Errorf("handoff eaten: %w", netback.ErrDisconnected)
	}
	return f.Backend.(core.HandoffAnnouncer).Handoff(group, gen, floor)
}

func TestMigrateHandoverFlakyCompletes(t *testing.T) {
	a, b := newMigMach(t), newMigMach(t)
	g := startApp(t, a, "app")
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}
	w := newMigWire(t, a, b, g.ID)
	want := counterOn(t, a, g)
	mig := &core.Migrator{
		Src: a.o, Dst: b.o, G: g,
		Link:   &flakyHandoff{Backend: w.rb, fails: 2},
		Target: w.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Cfg: core.MigratorConfig{Retries: 4},
	}
	rep, err := mig.Run(nil)
	if err != nil {
		t.Fatalf("migration with flaky handover: %v", err)
	}
	if rep.Retries < 2 {
		t.Fatalf("retries = %d, want the two eaten announcements paid for", rep.Retries)
	}
	if got := counterOn(t, b, rep.Group); got != want {
		t.Fatalf("target counter = %d, want %d", got, want)
	}
	assertSolePrimary(t, g.ID, b, a, b)
}

func TestMigrateAbortAfterAnnounceRemintsSource(t *testing.T) {
	a, b := newMigMach(t), newMigMach(t)
	g := startApp(t, a, "app")
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}
	w := newMigWire(t, a, b, g.ID)
	sup := core.NewSupervisor(a.o, core.SupervisorConfig{})
	sup.Watch(g)
	mig := &core.Migrator{
		Src: a.o, Dst: b.o, G: g,
		Link:   &flakyHandoff{Backend: w.rb, fails: 1 << 20},
		Target: w.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Sup: sup,
		Cfg: core.MigratorConfig{Retries: 2},
	}
	_, err := mig.Run(nil)
	var me *core.MigrationError
	if !errors.As(err, &me) || me.Phase != core.PhaseHandover {
		t.Fatalf("err = %v, want *MigrationError{Phase: handover}", err)
	}

	// The announcement may have reached the target before the ack was
	// lost, so the source is re-minted strictly above the handover
	// generation: it remains the sole max-generation primary.
	announced := mig.Report().Gen
	remint := announced + 1
	if got := g.Generation(); got != remint {
		t.Fatalf("source generation = %d, want re-minted %d (above announced %d)", got, remint, announced)
	}
	if _, _, fenced := g.Fenced(); fenced {
		t.Fatal("source still fenced after re-mint")
	}
	if gen, primary := a.sb.Store().PrimaryGen(g.ID); !primary || gen != remint {
		t.Fatalf("source store primary = (%d, %v), want (%d, true)", gen, primary, remint)
	}
	assertSolePrimary(t, g.ID, a, a, b)
	if watched := sup.Watched(); len(watched) != 1 || watched[0] != g.ID {
		t.Fatalf("supervisor watches = %v, want the source still supervised", watched)
	}
	// The source keeps checkpointing at its re-minted generation.
	durable := g.Durable()
	if _, err := a.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := a.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatalf("source checkpoint after re-mint: %v", err)
	}
	if err := a.o.Sync(g); err != nil {
		t.Fatalf("source sync after re-mint: %v", err)
	}
	if d := g.Durable(); d <= durable {
		t.Fatalf("source durable stuck at %d after re-mint", d)
	}
}

func TestMigrateDoubleHopOneLineage(t *testing.T) {
	a, b, c := newMigMach(t), newMigMach(t), newMigMach(t)
	gA := startApp(t, a, "app")
	lineage := gA.ID
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}

	wAB := newMigWire(t, a, b, gA.ID)
	mig1 := &core.Migrator{
		Src: a.o, Dst: b.o, G: gA,
		Link: wAB.rb, Target: wAB.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Reconnect: func() error { return wAB.reset(gA.ID) },
		Cfg:       core.MigratorConfig{Lineage: lineage, Name: "hop1"},
	}
	rep1, err := mig1.Run(nil)
	if err != nil {
		t.Fatalf("hop A→B: %v", err)
	}
	gB := rep1.Group

	// The workload advances on B before the second hop.
	if _, err := b.k.Run(3); err != nil {
		t.Fatal(err)
	}
	want := counterOn(t, b, gB)
	if _, err := b.o.Checkpoint(gB, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := b.o.Sync(gB); err != nil {
		t.Fatal(err)
	}

	wBC := newMigWire(t, b, c, gB.ID)
	mig2 := &core.Migrator{
		Src: b.o, Dst: c.o, G: gB,
		Link: wBC.rb, Target: wBC.recv,
		SrcStore: b.sb, DstStore: c.sb,
		Reconnect: func() error { return wBC.reset(gB.ID) },
		Cfg:       core.MigratorConfig{Lineage: lineage, Name: "hop2"},
	}
	rep2, err := mig2.Run(nil)
	if err != nil {
		t.Fatalf("hop B→C: %v", err)
	}

	if rep2.Gen <= rep1.Gen {
		t.Fatalf("generations not strictly increasing across hops: %d then %d", rep1.Gen, rep2.Gen)
	}
	if got := counterOn(t, c, rep2.Group); got != want {
		t.Fatalf("counter at C = %d, want %d", got, want)
	}
	// Exactly one primary on the shared lineage key: C.
	assertSolePrimary(t, lineage, c, a, b, c)
	// Both predecessors are fenced and refuse the barrier.
	if _, err := a.o.Checkpoint(gA, core.CheckpointOpts{}); !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("fenced A checkpoint = %v, want ErrStaleGeneration", err)
	}
	if _, err := b.o.Checkpoint(gB, core.CheckpointOpts{}); !errors.Is(err, core.ErrStaleGeneration) {
		t.Fatalf("fenced B checkpoint = %v, want ErrStaleGeneration", err)
	}
}

func TestStandbyPromoteAfterSourceCrash(t *testing.T) {
	a, b := newMigMach(t), newMigMach(t)
	g := startApp(t, a, "app")
	if _, err := a.k.Run(4); err != nil {
		t.Fatal(err)
	}
	w := newMigWire(t, a, b, g.ID)
	sup := core.NewSupervisor(a.o, core.SupervisorConfig{})
	sup.Watch(g)

	var last uint64
	mig := &core.Migrator{
		Src: a.o, Dst: b.o, G: g,
		Link: w.rb, Target: w.recv,
		SrcStore: a.sb, DstStore: b.sb,
		Sup:       sup,
		Reconnect: func() error { return w.reset(g.ID) },
		Cfg:       core.MigratorConfig{Name: "standby"},
	}
	for i := 0; i < 3; i++ {
		if err := mig.StandbyRound(func() error {
			if _, err := a.k.Run(2); err != nil {
				return err
			}
			last = counterOn(t, a, g)
			return nil
		}); err != nil {
			t.Fatalf("standby round %d: %v", i, err)
		}
	}

	// Unplanned death: every member crashes.
	for _, pid := range g.PIDs() {
		p, err := a.k.Process(pid)
		if err != nil {
			t.Fatal(err)
		}
		a.k.Exit(p, 2)
	}

	rep, err := mig.PromoteStandby()
	if err != nil {
		t.Fatalf("standby promotion: %v", err)
	}
	if rep.TTR <= 0 || rep.TTR >= time.Second {
		t.Fatalf("TTR = %v, want sub-second virtual recovery", rep.TTR)
	}
	if got := counterOn(t, b, rep.Group); got != last {
		t.Fatalf("promoted counter = %d, want %d", got, last)
	}
	assertSolePrimary(t, g.ID, b, a, b)
	// The source supervisor must not resurrect the fenced corpse.
	for _, ev := range sup.Poll() {
		if ev.NewGroup != 0 {
			t.Fatalf("supervisor restored fenced zombie group %d as %d", ev.Group, ev.NewGroup)
		}
	}
	if watched := sup.Watched(); len(watched) != 0 {
		t.Fatalf("supervisor watches = %v after promotion", watched)
	}
}

func runMigrateChaos(t *testing.T, seed int64) {
	t.Helper()
	rep, err := bench.MigrateChaosRun(bench.MigrateChaosConfig{
		Seed:          seed,
		LinkDrop:      0.02,
		LinkDup:       0.01,
		LinkCorrupt:   0.01,
		StoreWriteErr: 0.01,
		StoreReadErr:  0.005,
		Retries:       8,
		PartitionMid:  true,
		Standby:       true,
	})
	if err != nil {
		t.Fatalf("migrate chaos seed %d: %v", seed, err)
	}
	if rep.TTR <= 0 || rep.TTR >= time.Second {
		t.Fatalf("seed %d: TTR = %v, want sub-second", seed, rep.TTR)
	}
	if rep.BlackoutMax <= 0 {
		t.Fatalf("seed %d: no blackout recorded", seed)
	}
	if rep.FencedRejects < rep.Hops+1 {
		t.Fatalf("seed %d: fenced rejects = %d, want one per handover", seed, rep.FencedRejects)
	}
	if rep.RestoresVerified < 2*(rep.Hops+1) {
		t.Fatalf("seed %d: restores verified = %d, want lazy-tail + store check per handover", seed, rep.RestoresVerified)
	}
	if rep.SupervisorSkips < 1 {
		t.Fatalf("seed %d: supervisor never refused the fenced zombie", seed)
	}
	if rep.Retries < 1 {
		t.Fatalf("seed %d: the scripted partition cost no retries", seed)
	}
	if rep.Durable == 0 || rep.FinalCounter == 0 {
		t.Fatalf("seed %d: durable=%d counter=%d, want nonzero", seed, rep.Durable, rep.FinalCounter)
	}
}

func TestMigrateChaosSeed1(t *testing.T)  { runMigrateChaos(t, 1) }
func TestMigrateChaosSeed7(t *testing.T)  { runMigrateChaos(t, 7) }
func TestMigrateChaosSeed42(t *testing.T) { runMigrateChaos(t, 42) }
