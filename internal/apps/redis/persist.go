package redis

import (
	"bytes"
	"fmt"
	"sync"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/slsfs"
	"aurora/internal/vm"
)

// Persistence abstracts the server's durability engine, making the
// paper's comparison concrete: the baselines need code on every
// mutation plus snapshot machinery; the Aurora engine needs almost
// nothing.
type Persistence interface {
	// Name identifies the engine in driver snapshots.
	Name() string
	// OnMutation runs after every state-changing command.
	OnMutation(k *kernel.Kernel, p *kernel.Process, cmd []byte) error
	// Snapshot produces a full dump (BGSAVE).
	Snapshot(k *kernel.Kernel, p *kernel.Process) error
}

// engine registry: restored drivers resolve their engine by name.
var (
	engMu   sync.Mutex
	engines = map[string]Persistence{}
)

// RegisterEngine names a live engine instance for restore resolution.
func RegisterEngine(e Persistence) {
	engMu.Lock()
	defer engMu.Unlock()
	engines[e.Name()] = e
}

func lookupEngine(name string) Persistence {
	engMu.Lock()
	defer engMu.Unlock()
	if e, ok := engines[name]; ok {
		return e
	}
	return NoPersistence{}
}

// NoPersistence is the volatile mode.
type NoPersistence struct{}

// Name implements Persistence.
func (NoPersistence) Name() string { return "none" }

// OnMutation implements Persistence.
func (NoPersistence) OnMutation(*kernel.Kernel, *kernel.Process, []byte) error { return nil }

// Snapshot implements Persistence.
func (NoPersistence) Snapshot(*kernel.Kernel, *kernel.Process) error { return nil }

// AOF is the classic append-only-file engine: every mutation is
// appended to a log file; every FsyncEvery mutations the file system
// is synced (fsync "everysec"-style batching). This is the baseline
// whose fsync semantics the paper's §2 catalog of data-loss bugs is
// about.
type AOF struct {
	FS         *slsfs.FS
	Path       string
	FsyncEvery int

	mu      sync.Mutex
	file    *slsfs.File
	pending int
	Syncs   int64
	Bytes   int64
}

// NewAOF opens (or creates) the log file.
func NewAOF(fs *slsfs.FS, path string, fsyncEvery int) (*AOF, error) {
	f, err := fs.Open(path)
	if err == slsfs.ErrNotExist {
		f, err = fs.Create(path)
	}
	if err != nil {
		return nil, err
	}
	if fsyncEvery < 1 {
		fsyncEvery = 1
	}
	return &AOF{FS: fs, Path: path, FsyncEvery: fsyncEvery, file: f}, nil
}

// Name implements Persistence.
func (a *AOF) Name() string { return "aof" }

// OnMutation implements Persistence: append and maybe fsync.
func (a *AOF) OnMutation(k *kernel.Kernel, p *kernel.Process, cmd []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	line := append(append([]byte(nil), cmd...), '\n')
	if _, err := a.file.WriteAt(line, a.file.Size()); err != nil {
		return err
	}
	a.Bytes += int64(len(line))
	a.pending++
	if a.pending >= a.FsyncEvery {
		a.pending = 0
		a.Syncs++
		if _, err := a.FS.Snapshot(""); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot implements Persistence: an AOF rewrite — dump the whole
// table compactly and truncate the log.
func (a *AOF) Snapshot(k *kernel.Kernel, p *kernel.Process) error {
	srv, ok := p.Program().(*Server)
	if !ok {
		return fmt.Errorf("redis: AOF rewrite needs the server driver")
	}
	st := &Store{P: p, Base: srv.Base}
	var buf bytes.Buffer
	err := st.ForEach(func(key, val []byte) error {
		buf.WriteString("SET ")
		buf.Write(key)
		buf.WriteByte(' ')
		buf.Write(val)
		buf.WriteByte('\n')
		return nil
	})
	if err != nil {
		return err
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.file.Truncate(0)
	if _, err := a.file.WriteAt(buf.Bytes(), 0); err != nil {
		return err
	}
	_, err = a.FS.Snapshot("")
	return err
}

// Replay feeds a recovered log into a fresh table — crash recovery.
func (a *AOF) Replay(st *Store) (int, error) {
	data := make([]byte, a.file.Size())
	if _, err := a.file.ReadAt(data, 0); err != nil {
		return 0, err
	}
	applied := 0
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 {
			continue
		}
		fields := bytes.SplitN(line, []byte(" "), 3)
		switch string(bytes.ToUpper(fields[0])) {
		case "SET":
			if len(fields) == 3 {
				if err := st.Set(fields[1], fields[2]); err != nil {
					return applied, err
				}
				applied++
			}
		case "DEL":
			if len(fields) == 2 {
				st.Del(fields[1]) // missing key is fine during replay
				applied++
			}
		}
	}
	return applied, nil
}

// ForkSnapshot is the BGSAVE engine: fork the server and have the
// child walk the (COW-frozen) table, writing a dump file. The paper's
// Redis uses exactly this fork trick; Aurora subsumes it in-kernel.
type ForkSnapshot struct {
	FS   *slsfs.FS
	Path string

	Snapshots int64
	DumpBytes int64
}

// Name implements Persistence.
func (f *ForkSnapshot) Name() string { return "fork" }

// OnMutation implements Persistence: nothing per-op (durability only
// as of the last BGSAVE — the weakness AOF exists to patch).
func (f *ForkSnapshot) OnMutation(*kernel.Kernel, *kernel.Process, []byte) error { return nil }

// Snapshot implements Persistence.
func (f *ForkSnapshot) Snapshot(k *kernel.Kernel, p *kernel.Process) error {
	child, err := k.Fork(p)
	if err != nil {
		return err
	}
	// The child sees the fork-frozen table; the parent keeps serving.
	srv, ok := p.Program().(*Server)
	if !ok {
		return fmt.Errorf("redis: fork snapshot needs the server driver")
	}
	st := &Store{P: child, Base: srv.Base}
	var buf bytes.Buffer
	err = st.ForEach(func(key, val []byte) error {
		var hdr [8]byte
		putU32(hdr[0:], uint32(len(key)))
		putU32(hdr[4:], uint32(len(val)))
		buf.Write(hdr[:])
		buf.Write(key)
		buf.Write(val)
		return nil
	})
	if err != nil {
		return err
	}
	file, ferr := f.FS.Open(f.Path)
	if ferr == slsfs.ErrNotExist {
		file, ferr = f.FS.Create(f.Path)
	}
	if ferr != nil {
		return ferr
	}
	file.Truncate(0)
	if _, err := file.WriteAt(buf.Bytes(), 0); err != nil {
		return err
	}
	if _, err := f.FS.Snapshot(""); err != nil {
		return err
	}
	f.Snapshots++
	f.DumpBytes = int64(buf.Len())
	// The child exits after dumping, like a BGSAVE worker.
	k.Exit(child, 0)
	k.Reap(child)
	return nil
}

// LoadDump rebuilds a table from the newest dump file.
func (f *ForkSnapshot) LoadDump(st *Store) (int, error) {
	file, err := f.FS.Open(f.Path)
	if err != nil {
		return 0, err
	}
	data := make([]byte, file.Size())
	if _, err := file.ReadAt(data, 0); err != nil {
		return 0, err
	}
	n := 0
	for off := 0; off+8 <= len(data); {
		klen := int(getU32(data[off:]))
		vlen := int(getU32(data[off+4:]))
		off += 8
		if off+klen+vlen > len(data) {
			break
		}
		if err := st.Set(data[off:off+klen], data[off+klen:off+klen+vlen]); err != nil {
			return n, err
		}
		off += klen + vlen
		n++
	}
	return n, nil
}

func putU32(b []byte, v uint32) {
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
}

func getU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// Aurora is the paper's port: sls_ntflush logs each mutation with low
// latency; sls_checkpoint (every CheckpointEvery mutations) captures
// the whole application, after which the log truncates. Recovery is
// restore-plus-replay, and the data structures needed no changes at
// all — "already faster with less code".
type Aurora struct {
	API             *core.API
	CheckpointEvery int

	mu          sync.Mutex
	sinceCkpt   int
	Checkpoints int64
	LogAppends  int64
}

// NewAurora builds the engine over the libsls API.
func NewAurora(api *core.API, checkpointEvery int) *Aurora {
	if checkpointEvery < 1 {
		checkpointEvery = 1000
	}
	return &Aurora{API: api, CheckpointEvery: checkpointEvery}
}

// Name implements Persistence.
func (a *Aurora) Name() string { return "aurora" }

// OnMutation implements Persistence.
func (a *Aurora) OnMutation(k *kernel.Kernel, p *kernel.Process, cmd []byte) error {
	if err := a.API.NTFlush(p, cmd); err != nil {
		return err
	}
	a.mu.Lock()
	a.LogAppends++
	a.sinceCkpt++
	due := a.sinceCkpt >= a.CheckpointEvery
	if due {
		a.sinceCkpt = 0
	}
	a.mu.Unlock()
	if due {
		return a.checkpoint(p)
	}
	return nil
}

// Snapshot implements Persistence: an explicit checkpoint.
func (a *Aurora) Snapshot(k *kernel.Kernel, p *kernel.Process) error {
	return a.checkpoint(p)
}

func (a *Aurora) checkpoint(p *kernel.Process) error {
	g, ok := a.API.O.GroupOfProcess(p.PID)
	if !ok {
		return core.ErrNotPersisted
	}
	seq := a.API.NTSeq(g)
	if _, err := a.API.Checkpoint(p, ""); err != nil {
		return err
	}
	// A database acks a snapshot only once it is durable: wait out the
	// background flush before truncating the log it subsumes.
	if err := a.API.Barrier(p); err != nil {
		return err
	}
	a.mu.Lock()
	a.Checkpoints++
	a.mu.Unlock()
	// The checkpoint subsumes the log prefix.
	return a.API.NTTruncate(g, seq)
}

// Recover restores the newest checkpoint of the group and replays the
// NT log tail into the revived table. It returns the restored group
// and the number of replayed commands.
func (a *Aurora) Recover(g *core.Group) (*core.Group, int, error) {
	ng, _, err := a.API.Restore(g, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		return nil, 0, err
	}
	entries, err := a.API.NTEntries(g)
	if err != nil {
		return nil, 0, err
	}
	np, err := a.API.O.K.Process(ng.PIDs()[0])
	if err != nil {
		return nil, 0, err
	}
	srv, ok := np.Program().(*Server)
	if !ok {
		return nil, 0, fmt.Errorf("redis: restored process has no server driver")
	}
	st := &Store{P: np, Base: srv.Base}
	applied := 0
	for _, cmd := range entries {
		fields := bytes.SplitN(cmd, []byte(" "), 3)
		switch string(bytes.ToUpper(fields[0])) {
		case "SET":
			if len(fields) == 3 {
				if err := st.Set(fields[1], fields[2]); err != nil {
					return ng, applied, err
				}
				applied++
			}
		case "DEL":
			if len(fields) == 2 {
				st.Del(fields[1])
				applied++
			}
		}
	}
	return ng, applied, nil
}

// Spawn boots a complete mini-Redis: process, table, listener, driver.
// It returns the process and the store handle. bucketCount and arena
// size the table; path names the unix socket.
func Spawn(k *kernel.Kernel, container int, path string, bucketCount int, arena int64, persist Persistence) (*kernel.Process, *Store, error) {
	p, err := k.Spawn(container, "redis-server")
	if err != nil {
		return nil, nil, err
	}
	need := ArenaSize(bucketCount, arena)
	if _, err := p.Sbrk(need + vm.PageSize); err != nil {
		return nil, nil, err
	}
	st, err := Init(p, p.HeapBase(), bucketCount, arena)
	if err != nil {
		return nil, nil, err
	}
	lfd, err := k.Listen(p, path)
	if err != nil {
		return nil, nil, err
	}
	srv := NewServer(p.HeapBase(), lfd, persist)
	p.SetProgram(srv)
	if persist != nil {
		RegisterEngine(persist)
	}
	return p, st, nil
}
