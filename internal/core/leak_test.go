package core

import (
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// This file is the goroutine-leak harness for the fleet runtime's
// shutdown paths: flusher close (Unpersist), orchestrator Close, and
// the poll-driven reclaimer/supervisor (which must own no goroutines
// at all). The regression it guards: before the fleet refactor, an
// Enqueue blocked on a full flush queue could be stranded forever by a
// concurrent Close — Unpersist of a group mid-checkpoint-storm leaked
// the checkpointing goroutine and its pinned image.

// goroutineSnapshot captures the current goroutine count and stacks.
type goroutineSnapshot struct {
	n      int
	stacks string
}

func snapshotGoroutines() goroutineSnapshot {
	// Settle briefly so goroutines in teardown (closed channels, done
	// wg.Waits) finish parking before we count.
	runtime.Gosched()
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	return goroutineSnapshot{n: runtime.NumGoroutine(), stacks: string(buf[:n])}
}

// assertNoLeaks fails the test if the goroutine count has not returned
// to the baseline within a deadline, printing only the stacks that were
// not present in the baseline snapshot.
func assertNoLeaks(t *testing.T, before goroutineSnapshot) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var after goroutineSnapshot
	for {
		after = snapshotGoroutines()
		if after.n <= before.n {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	baseline := make(map[string]bool)
	for _, s := range strings.Split(before.stacks, "\n\n") {
		baseline[goroutineSite(s)] = true
	}
	var leaked []string
	for _, s := range strings.Split(after.stacks, "\n\n") {
		if !baseline[goroutineSite(s)] {
			leaked = append(leaked, s)
		}
	}
	t.Fatalf("goroutine leak: %d before, %d after; new stacks:\n%s",
		before.n, after.n, strings.Join(leaked, "\n\n"))
}

// goroutineSite reduces one goroutine's stack dump to its creation
// site, the stable key for diffing (goroutine IDs churn, sites don't).
func goroutineSite(stack string) string {
	if i := strings.Index(stack, "created by "); i >= 0 {
		return strings.SplitN(stack[i:], "\n", 2)[0]
	}
	return stack
}

// TestUnpersistWithQueuedEpochsDoesNotLeak reproduces the stranded-
// Enqueue leak: fill a group's flush pipeline past its admission
// window so a checkpoint blocks in Enqueue, then Unpersist the group.
// The blocked checkpoint must be woken (its epoch failed, not flushed)
// and every goroutine must exit once the gated flushes release.
func TestUnpersistWithQueuedEpochsDoesNotLeak(t *testing.T) {
	before := snapshotGoroutines()

	r := newRig(t)
	r.o.FlushWorkers = 1
	r.o.FlushQueueDepth = 1
	p := spawnCounter(t, r)
	g, err := r.o.Persist("leak", p)
	if err != nil {
		t.Fatal(err)
	}
	gb := newGateBackend()
	r.o.Attach(g, gb)

	// Epoch 1 occupies the single worker credit, epoch 2 fills the
	// queue, epoch 3 blocks in Enqueue — the admission window (1+1) is
	// full.
	for e := uint64(1); e <= 3; e++ {
		gb.gate(e)
	}
	for e := 1; e <= 2; e++ {
		if _, err := r.k.Run(1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	gb.awaitEntered(t, 1)

	var ckWg sync.WaitGroup
	ckWg.Add(1)
	go func() {
		defer ckWg.Done()
		// Blocks in Enqueue until Unpersist fails the job.
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Errorf("blocked checkpoint: %v", err)
		}
	}()
	waitFor(t, "checkpoint 3 to block in the window", func() bool {
		return g.QueueDepth() == 3
	})

	var unWg sync.WaitGroup
	unWg.Add(1)
	go func() {
		defer unWg.Done()
		r.o.Unpersist(g)
	}()
	// The blocked Enqueue must be woken by Close with every gate still
	// held — that wake IS the leak fix. Only then do the gates release,
	// letting Unpersist finish draining the in-flight epochs.
	ckWg.Wait()
	for e := uint64(1); e <= 3; e++ {
		gb.release(e)
	}
	unWg.Wait()
	if gb.hasFlushed(3) {
		t.Error("epoch 3 flushed after Unpersist; it should have been failed in Enqueue")
	}

	r.o.Close()
	assertNoLeaks(t, before)
}

// TestCloseReapsFleetWorkers proves orchestrator teardown: after real
// checkpoint traffic across several groups, Close drains every
// pipeline, stops the shard workers, and leaves zero goroutines.
// Reclaimer and supervisor are poll-driven and must hold none either.
func TestCloseReapsFleetWorkers(t *testing.T) {
	before := snapshotGoroutines()

	r := newRig(t)
	sup := NewSupervisor(r.o, SupervisorConfig{})
	rec := NewReclaimer(r.o, r.store, RetentionPolicy{KeepLast: 2}, Watermarks{})

	for i := 0; i < 4; i++ {
		p := spawnCounter(t, r)
		g, err := r.o.Persist("fleet-close", p)
		if err != nil {
			t.Fatal(err)
		}
		r.o.Attach(g, r.store)
		sup.Watch(g)
		for e := 0; e < 3; e++ {
			if _, err := r.k.Run(1); err != nil {
				t.Fatal(err)
			}
			if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
				t.Fatal(err)
			}
		}
		if err := r.o.Sync(g); err != nil {
			t.Fatal(err)
		}
	}
	sup.Poll()
	rec.Scan()
	if st := r.o.FleetStats(); st.Dispatches == 0 {
		t.Fatal("no flushes went through the fleet runtime")
	}

	r.o.Close()
	assertNoLeaks(t, before)
}

// waitFor polls cond with a deadline; the fleet runtime is
// event-driven, so tests await observable state instead of sleeping.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}
