package vm

import (
	"bytes"
	"testing"

	"aurora/internal/storage"
)

// Edge cases and less-traveled paths of the VM layer.

func TestUnmapPartialOverlapRejected(t *testing.T) {
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(8*PageSize, ProtRead|ProtWrite, false, "x")
	if err := as.Unmap(m.Start+PageSize, PageSize); err != ErrBadRange {
		t.Fatalf("partial unmap err = %v", err)
	}
	// The mapping survives a rejected unmap intact.
	if err := as.Write(m.Start, []byte{1}); err != nil {
		t.Fatal(err)
	}
}

func TestUnmapEmptyRangeIsNoop(t *testing.T) {
	as, _, _ := testSpace(t)
	if err := as.Unmap(0x9000_0000, PageSize); err != nil {
		t.Fatalf("unmap of nothing: %v", err)
	}
}

func TestProtectUnknownMapping(t *testing.T) {
	as, _, _ := testSpace(t)
	if err := as.Protect(0xdead000, ProtRead); err != ErrNoMapping {
		t.Fatalf("err = %v", err)
	}
}

func TestMapExplicitOffsetWindow(t *testing.T) {
	// Two mappings exposing different windows of one object.
	as, _, _ := testSpace(t)
	obj := NewObject("file", 4*PageSize)
	w0, err := as.Map(0x1000_0000, 2*PageSize, ProtRead|ProtWrite, obj, 0, true, "w0")
	if err != nil {
		t.Fatal(err)
	}
	w2, err := as.Map(0x2000_0000, 2*PageSize, ProtRead|ProtWrite, obj, 2*PageSize, true, "w2")
	if err != nil {
		t.Fatal(err)
	}
	as.Write(w0.Start+5, []byte("lo"))
	as.Write(w2.Start+5, []byte("hi"))
	// The windows are disjoint pages of the same object.
	got := make([]byte, 2)
	as.Read(w0.Start+5, got)
	if string(got) != "lo" {
		t.Fatalf("w0 = %q", got)
	}
	as.Read(w2.Start+5, got)
	if string(got) != "hi" {
		t.Fatalf("w2 = %q", got)
	}
	if f0, _ := obj.Lookup(0); f0 == nil {
		t.Fatal("page 0 missing")
	}
	if f2, _ := obj.Lookup(2); f2 == nil {
		t.Fatal("page 2 missing")
	}
}

func TestObjectRefcountReleaseAll(t *testing.T) {
	pm := NewPhysMem(0)
	meter := NewMeter(storage.NewClock())
	as1 := NewAddressSpace(pm, meter)
	as2 := NewAddressSpace(pm, meter)
	obj := NewObject("shared", 4*PageSize)
	m1, _ := as1.Map(0x1000_0000, 4*PageSize, ProtRead|ProtWrite, obj, 0, true, "a")
	as2.Map(0x1000_0000, 4*PageSize, ProtRead|ProtWrite, obj, 0, true, "b")
	obj.Deref() // drop the construction reference
	as1.Write(m1.Start, make([]byte, 4*PageSize))
	if pm.Resident() != 4 {
		t.Fatalf("resident = %d", pm.Resident())
	}
	// First unmap keeps the object alive; second frees the pages.
	if err := as1.Unmap(0x1000_0000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if pm.Resident() != 4 {
		t.Fatal("pages freed while still mapped elsewhere")
	}
	if err := as2.Unmap(0x1000_0000, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if pm.Resident() != 0 {
		t.Fatalf("leaked %d frames", pm.Resident())
	}
}

func TestForkChainDepth(t *testing.T) {
	// fork of fork of fork: shadow chains resolve through all levels.
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead|ProtWrite, false, "x")
	as.Write(m.Start, []byte("gen0"))
	c1 := as.Fork()
	c1.Write(m.Start, []byte("gen1"))
	c2 := c1.Fork()
	c3 := c2.Fork()
	got := make([]byte, 4)
	c3.Read(m.Start, got)
	if string(got) != "gen1" {
		t.Fatalf("grandchild reads %q through the chain", got)
	}
	// Writes at any level stay private to that level.
	c2.Write(m.Start, []byte("gen2"))
	c3.Read(m.Start, got)
	if string(got) != "gen1" {
		t.Fatalf("c3 sees c2's write: %q", got)
	}
	c1.Read(m.Start, got)
	if string(got) != "gen1" {
		t.Fatalf("c1 disturbed: %q", got)
	}
}

func TestSwapFaultErrorMessage(t *testing.T) {
	sf := &SwapFault{Obj: NewObject("x", PageSize), Page: 3, Slot: 7}
	if sf.Error() == "" {
		t.Fatal("empty error")
	}
}

func TestPagerResolveNonSwapError(t *testing.T) {
	pm := NewPhysMem(0)
	pg := NewPager(pm, NewSwap(storage.NewMemDevice(storage.ParamsDRAM, storage.NewClock())), nil)
	retry, err := pg.Resolve(ErrNoMapping)
	if retry || err != ErrNoMapping {
		t.Fatalf("Resolve passed through wrong: %v %v", retry, err)
	}
}

func TestPagerReclaimWithoutSwap(t *testing.T) {
	pg := NewPager(NewPhysMem(0), nil, nil)
	if _, err := pg.Reclaim(1); err == nil {
		t.Fatal("reclaim without swap should fail")
	}
}

func TestPagerUnregister(t *testing.T) {
	_, m, pg, _ := pagerFixture(t)
	pg.Unregister(m.Obj)
	n, err := pg.Reclaim(10)
	if err != nil || n != 0 {
		t.Fatalf("reclaim after unregister = %d, %v", n, err)
	}
}

func TestSwapSlotReuse(t *testing.T) {
	s := NewSwap(storage.NewMemDevice(storage.ParamsDRAM, storage.NewClock()))
	pm := NewPhysMem(0)
	f, _ := pm.Alloc()
	copy(f.Data, []byte("one"))
	slot1, err := s.WritePage(f)
	if err != nil {
		t.Fatal(err)
	}
	s.FreeSlot(slot1)
	slot2, _ := s.WritePage(f)
	if slot2 != slot1 {
		t.Fatalf("freed slot not reused: %d vs %d", slot2, slot1)
	}
}

func TestCheckpointSetReleaseIdempotent(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead|ProtWrite, false, "x")
	as.Write(m.Start, []byte{1})
	cs := m.Obj.BeginCheckpoint(1, true)
	cs.Release(pm)
	cs.Release(pm) // second release must not double-free
	if pm.Resident() != 1 {
		t.Fatalf("resident = %d, want 1 (the object's page)", pm.Resident())
	}
}

func TestUnprotectAbortsCheckpointTracking(t *testing.T) {
	as, pm, meter := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead|ProtWrite, false, "x")
	as.Write(m.Start, []byte{1})
	cs := m.Obj.BeginCheckpoint(1, true)
	as.ProtectObject(m.Obj, cs.Pages)
	m.Obj.Unprotect(0)
	before := meter.CowFaults.Load()
	as.Write(m.Start, []byte{2}) // no COW: protection was dropped
	if meter.CowFaults.Load() != before {
		t.Fatal("write after Unprotect still COW-faulted")
	}
	cs.Release(pm)
}

func TestInstallSharedPageReplacesResident(t *testing.T) {
	pm := NewPhysMem(0)
	obj := NewObject("x", PageSize)
	old, _, _ := obj.EnsurePage(pm, 0, nil)
	copy(old.Data, []byte("old"))
	img, _ := pm.Alloc()
	copy(img.Data, []byte("img"))
	obj.InstallSharedPage(pm, 0, img)
	f, _ := obj.Lookup(0)
	if !bytes.HasPrefix(f.Data, []byte("img")) {
		t.Fatal("shared page not installed")
	}
	if !obj.IsProtected(0) {
		t.Fatal("shared page must be COW-protected")
	}
	// The image keeps its reference even after the object lets go.
	obj.ReleaseAll(pm)
	if img.Refs() != 1 {
		t.Fatalf("image frame refs = %d, want 1", img.Refs())
	}
}

func TestMeterNilSafety(t *testing.T) {
	var m *Meter
	m.ChargePTE(5)
	m.ChargeFault()
	m.ChargeCopy(3)
	m.ChargeInstr(10)
	m.ChargeProtect(2) // all no-ops, no panic
}

func TestGrowNeverShrinks(t *testing.T) {
	o := NewObject("x", 4*PageSize)
	o.Grow(2 * PageSize)
	if o.Size() != 4*PageSize {
		t.Fatalf("Grow shrank the object to %d", o.Size())
	}
	o.Grow(8 * PageSize)
	if o.Size() != 8*PageSize {
		t.Fatalf("Grow failed: %d", o.Size())
	}
}
