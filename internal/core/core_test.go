package core

import (
	"bytes"
	"testing"
	"testing/quick"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// rig is a complete simulated machine for tests.
type rig struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *Orchestrator
	api   *API
	mem   *MemoryBackend
	store *StoreBackend
}

func newRig(t *testing.T) *rig {
	if t != nil {
		t.Helper()
	}
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	return &rig{
		clock: clock,
		k:     k,
		o:     o,
		api:   NewAPI(o),
		mem:   NewMemoryBackend(k.Mem, 16),
		store: NewStoreBackend(st, k.Mem, clock),
	}
}

// counter is a test program that increments a heap counter each step.
type counter struct{ addr vm.Addr }

func (c *counter) ProgName() string { return "counter" }
func (c *counter) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	return e.Bytes()
}
func (c *counter) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	var b [8]byte
	if err := p.ReadMem(c.addr, b[:]); err != nil {
		return err
	}
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
	v++
	b[0], b[1], b[2], b[3] = byte(v), byte(v>>8), byte(v>>16), byte(v>>24)
	return p.WriteMem(c.addr, b[:])
}

func init() {
	kernel.RegisterProgram("counter", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &counter{addr: vm.Addr(d.U64())}, nil
	})
}

func spawnCounter(t *testing.T, r *rig) *kernel.Process {
	if t != nil {
		t.Helper()
	}
	p, err := r.k.Spawn(0, "counter")
	if err != nil && t != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	return p
}

func counterValue(p *kernel.Process) uint64 {
	var b [8]byte
	p.ReadMem(p.HeapBase(), b[:])
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24
}

func TestPersistAndGroups(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.PIDs(); len(got) != 1 || got[0] != p.PID {
		t.Fatalf("pids = %v", got)
	}
	if _, err := r.o.Group(g.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.GroupByName("app"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.GroupByName("nope"); err != ErrNoGroup {
		t.Fatalf("missing group err = %v", err)
	}
	if r.o.GroupOf(p.PID) != g.ID {
		t.Fatal("resolver does not know the pid")
	}
}

func TestCheckpointRestoreMemoryBackend(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)

	r.k.Run(100) // counter = 100
	if counterValue(p) != 100 {
		t.Fatalf("counter = %d", counterValue(p))
	}
	bd, err := r.o.Checkpoint(g, CheckpointOpts{Name: "at-100"})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.Full {
		t.Fatal("first checkpoint must be full")
	}
	if bd.StopTime <= 0 || bd.MetadataCopy <= 0 || bd.LazyDataCopy <= 0 {
		t.Fatalf("empty breakdown: %+v", bd)
	}

	r.k.Run(50) // counter = 150, diverged from checkpoint

	ng, rbd, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if rbd.Total <= 0 || rbd.MetadataState <= 0 || rbd.MemoryState <= 0 {
		t.Fatalf("restore breakdown: %+v", rbd)
	}
	np, err := r.k.Process(ng.PIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	if got := counterValue(np); got != 100 {
		t.Fatalf("restored counter = %d, want 100", got)
	}
	// The restored process resumes execution from the checkpoint.
	r.k.Run(1000)
	if got := counterValue(np); got <= 100 {
		t.Fatalf("restored process did not run: %d", got)
	}
}

func TestCheckpointRestoreStoreBackend(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)

	r.k.Run(42)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	ng, bd, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.ObjectStoreRead <= 0 {
		t.Fatal("store restore must account an object store read")
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != 42 {
		t.Fatalf("restored counter = %d, want 42", got)
	}
}

func TestIncrementalCheckpointChain(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	// Touch a large region once so the full checkpoint is big.
	big := make([]byte, 128*vm.PageSize)
	for i := range big {
		big[i] = byte(i)
	}
	p.Sbrk(int64(len(big)) + vm.PageSize)
	p.WriteMem(p.HeapBase()+vm.PageSize, big)

	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)

	full, err := r.o.Checkpoint(g, CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}
	r.k.Run(10) // dirties only the counter page
	incr, err := r.o.Checkpoint(g, CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if incr.Full {
		t.Fatal("second checkpoint should be incremental")
	}
	if incr.PagesCaptured >= full.PagesCaptured/10 {
		t.Fatalf("incremental captured %d pages vs full %d", incr.PagesCaptured, full.PagesCaptured)
	}
	if incr.LazyDataCopy >= full.LazyDataCopy {
		t.Fatalf("incremental data copy %v not faster than full %v", incr.LazyDataCopy, full.LazyDataCopy)
	}
	if incr.StopTime >= full.StopTime {
		t.Fatalf("incremental stop %v not below full stop %v", incr.StopTime, full.StopTime)
	}

	// Restoring the incremental chain yields the complete state.
	r.k.Run(5)
	ng, _, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != 10 {
		t.Fatalf("restored counter = %d, want 10", got)
	}
	gotBig := make([]byte, len(big))
	np.ReadMem(np.HeapBase()+vm.PageSize, gotBig)
	if !bytes.Equal(gotBig, big) {
		t.Fatal("bulk data lost through incremental chain")
	}
}

func TestRestoreSpecificEpoch(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)

	r.k.Run(10)
	r.o.Checkpoint(g, CheckpointOpts{Name: "ten"})
	r.k.Run(10)
	r.o.Checkpoint(g, CheckpointOpts{Name: "twenty"})

	// Restore the older epoch: time travel.
	ng, _, err := r.o.Restore(g, 1, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != 10 {
		t.Fatalf("epoch-1 counter = %d, want 10", got)
	}
}

func TestLazyRestoreFaultsOnDemand(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	payload := make([]byte, 64*vm.PageSize)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	p.Sbrk(int64(len(payload)) + vm.PageSize)
	p.WriteMem(p.HeapBase()+vm.PageSize, payload)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store) // disk-backed image: the lazy-fault path
	r.o.Checkpoint(g, CheckpointOpts{})

	resident := r.k.Mem.Resident()
	ng, bd, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.Lazy {
		t.Fatal("breakdown should record lazy mode")
	}
	// Lazy restore allocates almost nothing up front.
	if grew := r.k.Mem.Resident() - resident; grew > 4 {
		t.Fatalf("lazy restore allocated %d frames up front", grew)
	}
	// Faulting reads return the checkpointed data.
	np, _ := r.k.Process(ng.PIDs()[0])
	got := make([]byte, len(payload))
	if err := np.ReadMem(np.HeapBase()+vm.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("lazily restored data corrupt")
	}
	if r.k.Meter.PageIns.Load() == 0 {
		t.Fatal("no lazy page-ins recorded")
	}
}

func TestMemoryRestoreSharesFramesCOW(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	payload := make([]byte, 32*vm.PageSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p.Sbrk(int64(len(payload)) + vm.PageSize)
	p.WriteMem(p.HeapBase()+vm.PageSize, payload)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.o.Checkpoint(g, CheckpointOpts{})

	resident := r.k.Mem.Resident()
	ng, bd, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	// No memory is copied: frames are shared with the image.
	if bd.Shared == 0 {
		t.Fatal("no pages were COW-shared with the image")
	}
	if grew := r.k.Mem.Resident() - resident; grew != 0 {
		t.Fatalf("memory restore copied %d frames", grew)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	got := make([]byte, len(payload))
	np.ReadMem(np.HeapBase()+vm.PageSize, got)
	if !bytes.Equal(got, payload) {
		t.Fatal("shared-frame restore corrupt")
	}
	// Writing after restore must not alter the image (COW).
	np.WriteMem(np.HeapBase()+vm.PageSize, []byte{0xFF})
	img := g.LastImage()
	pages := img.ResolveObject(imgObjIDOfHeap(img))
	for _, data := range pages {
		_ = data
	}
	// Restore the image again: it still holds the original byte.
	ng2, _, err := r.o.RestoreImage(img, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np2, _ := r.k.Process(ng2.PIDs()[0])
	var b [1]byte
	np2.ReadMem(np2.HeapBase()+vm.PageSize, b[:])
	if b[0] != payload[0] {
		t.Fatalf("image corrupted by post-restore write: %#x", b[0])
	}
}

// imgObjIDOfHeap finds the heap object's ID inside an image.
func imgObjIDOfHeap(img *Image) uint64 {
	for id, mi := range img.Memory {
		if mi.Name == "heap" {
			return id
		}
	}
	return 0
}

func TestLazyRestorePrefetchHottest(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	// The counter page is by far the hottest (touched every step).
	r.k.Run(200)
	r.o.Checkpoint(g, CheckpointOpts{})

	_, bd, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true, Prefetch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bd.Prefetched == 0 {
		t.Fatal("prefetch restored no pages")
	}
}

func TestEagerRestoreCopiesEverything(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	p.WriteMem(p.HeapBase()+vm.PageSize, make([]byte, 8*vm.PageSize))
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.o.Checkpoint(g, CheckpointOpts{})

	_, bd, err := r.o.Restore(g, 0, RestoreOpts{Lazy: false})
	if err != nil {
		t.Fatal(err)
	}
	if bd.PagesRestored < 8 {
		t.Fatalf("eager restore touched %d pages", bd.PagesRestored)
	}
}

func TestCheckpointPreservesPipesAndSockets(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	rfd, wfd, _ := r.k.NewPipe(p)
	sa, sb, _ := r.k.NewSocketPair(p)
	r.k.Write(p, wfd, []byte("pipe payload"))
	r.k.Write(p, sa, []byte("sock payload"))

	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}

	ng, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	// Descriptor numbers are preserved; buffered data survived.
	buf := make([]byte, 32)
	n, err := r.k.Read(np, rfd, buf)
	if err != nil || string(buf[:n]) != "pipe payload" {
		t.Fatalf("pipe after restore = %q, %v", buf[:n], err)
	}
	n, err = r.k.Read(np, sb, buf)
	if err != nil || string(buf[:n]) != "sock payload" {
		t.Fatalf("socket after restore = %q, %v", buf[:n], err)
	}
	_ = sa
}

func TestCheckpointPreservesSharedMemoryAcrossProcesses(t *testing.T) {
	r := newRig(t)
	p1 := spawnCounter(t, r)
	p2, _ := r.k.Fork(p1)
	seg, _ := r.k.ShmGet(99, 4*vm.PageSize)
	a1, _ := r.k.ShmAttach(p1, seg)
	a2, _ := r.k.ShmAttach(p2, seg)
	p1.WriteMem(a1, []byte("shared before ckpt"))

	g, _ := r.o.Persist("app", p1)
	r.o.Attach(g, r.store)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	ng, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}

	pids := ng.PIDs()
	if len(pids) != 2 {
		t.Fatalf("restored %d processes, want 2", len(pids))
	}
	np1, _ := r.k.Process(pids[0])
	np2, _ := r.k.Process(pids[1])

	// Shared memory is still *shared* after restore: a write by one
	// is seen by the other (the memory hierarchy was reproduced, not
	// duplicated).
	if err := np1.WriteMem(a1, []byte("shared after restore")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 20)
	if err := np2.ReadMem(a2, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "shared after restore" {
		t.Fatalf("np2 sees %q — sharing broken by restore", got)
	}
}

func TestProcessTreeRestoredWithHierarchy(t *testing.T) {
	r := newRig(t)
	parent := spawnCounter(t, r)
	child, _ := r.k.Fork(parent)
	child.SetProgram(&counter{addr: child.HeapBase()})

	g, _ := r.o.Persist("tree", parent)
	r.o.Attach(g, r.mem)
	r.k.Run(20)
	r.o.Checkpoint(g, CheckpointOpts{})

	ng, _, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(ng.PIDs()) != 2 {
		t.Fatalf("restored pids = %v", ng.PIDs())
	}
	// Parent/child linkage is preserved in the metadata.
	var np, nc *kernel.Process
	for _, pid := range ng.PIDs() {
		q, _ := r.k.Process(pid)
		if q.PPID == 0 {
			np = q
		} else {
			nc = q
		}
	}
	if np == nil || nc == nil || nc.PPID != np.PID {
		t.Fatalf("process hierarchy lost: parent=%v child=%v", np, nc)
	}
}

func TestExternalConsistencyEndToEnd(t *testing.T) {
	r := newRig(t)
	srv := spawnCounter(t, r)
	ext, _ := r.k.Spawn(0, "client") // outside any group
	a, b, _ := r.k.NewSocketPair(srv)
	fdB, _ := srv.FDs.Get(b)
	extFD, _ := ext.FDs.Install(r.k, fdB.File, kernel.ORdWr)

	g, _ := r.o.Persist("srv", srv)
	r.o.Attach(g, r.mem)
	r.o.Checkpoint(g, CheckpointOpts{})
	if err := r.o.Sync(g); err != nil { // epoch 1 durable
		t.Fatal(err)
	}

	// Output written during epoch 1 is held until epoch 2 is durable.
	r.k.Write(srv, a, []byte("result"))
	buf := make([]byte, 16)
	if _, err := r.k.Read(ext, extFD, buf); err != kernel.ErrWouldBlock {
		t.Fatalf("pre-checkpoint read err = %v, want would-block", err)
	}
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	// The barrier alone does not release the output: epoch 2 must be
	// durable on the backend first.
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	n, err := r.k.Read(ext, extFD, buf)
	if err != nil || string(buf[:n]) != "result" {
		t.Fatalf("post-checkpoint read = %q, %v", buf[:n], err)
	}
}

func TestMctlExcludesRegion(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	scratch, err := p.Space.MapAnon(16*vm.PageSize, vm.ProtRead|vm.ProtWrite, false, "scratch")
	if err != nil {
		t.Fatal(err)
	}
	p.WriteMem(scratch.Start, make([]byte, 16*vm.PageSize))
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)

	// Exclude the scratch region via sls_mctl.
	if err := r.api.Mctl(p, scratch.Start, false); err != nil {
		t.Fatal(err)
	}
	bd, err := r.o.Checkpoint(g, CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.PagesCaptured >= 16 {
		t.Fatalf("excluded pages were captured: %d", bd.PagesCaptured)
	}
}

func TestRollback(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.k.Run(30)
	r.o.Checkpoint(g, CheckpointOpts{})
	r.k.Run(70) // counter = 100, beyond the checkpoint

	ng, notice, err := r.api.Rollback(p)
	if err != nil {
		t.Fatal(err)
	}
	if notice == nil || notice.ToEpoch != 1 {
		t.Fatalf("notice = %v", notice)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != 30 {
		t.Fatalf("rolled-back counter = %d, want 30", got)
	}
	// The old process is gone.
	if _, err := r.k.Process(p.PID); err == nil && p.State() != kernel.ProcZombie {
		t.Fatal("pre-rollback process still alive")
	}
}

func TestBarrierFlushesPending(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	r.k.Run(5)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{SkipFlush: true}); err != nil {
		t.Fatal(err)
	}
	if g.Durable() == g.Epoch() {
		t.Fatal("SkipFlush checkpoint should leave the epoch pending")
	}
	if err := r.api.Barrier(p); err != nil {
		t.Fatal(err)
	}
	if g.Durable() != g.Epoch() {
		t.Fatal("barrier did not flush")
	}
}

func TestNTFlushAndReplay(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("db", p)
	r.o.Attach(g, r.store)

	if err := r.api.NTFlush(p, []byte("put k1 v1")); err != nil {
		t.Fatal(err)
	}
	if err := r.api.NTFlush(p, []byte("put k2 v2")); err != nil {
		t.Fatal(err)
	}
	entries, err := r.api.NTEntries(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || string(entries[0]) != "put k1 v1" {
		t.Fatalf("entries = %q", entries)
	}
	// A checkpoint subsumes the log; truncate drops it.
	seq := r.api.NTSeq(g)
	r.o.Checkpoint(g, CheckpointOpts{})
	if err := r.api.NTTruncate(g, seq); err != nil {
		t.Fatal(err)
	}
	entries, _ = r.api.NTEntries(g)
	if len(entries) != 0 {
		t.Fatalf("entries after truncate = %d", len(entries))
	}
}

func TestNTFlushRequiresStoreBackend(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("db", p)
	r.o.Attach(g, r.mem)
	if err := r.api.NTFlush(p, []byte("x")); err != ErrNoNTLog {
		t.Fatalf("err = %v, want ErrNoNTLog", err)
	}
}

// TestAPI exercises every Table 2 entry point through the API type.
func TestAPI(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	r.o.Attach(g, r.mem)

	// sls_checkpoint
	if _, err := r.api.Checkpoint(p, "api-ckpt"); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	// sls_barrier
	if err := r.api.Barrier(p); err != nil {
		t.Fatalf("Barrier: %v", err)
	}
	// sls_ntflush
	if err := r.api.NTFlush(p, []byte("log")); err != nil {
		t.Fatalf("NTFlush: %v", err)
	}
	// sls_mctl
	if err := r.api.Mctl(p, p.HeapBase(), true); err != nil {
		t.Fatalf("Mctl: %v", err)
	}
	// sls_fdctl
	rfd, _, _ := r.k.NewPipe(p)
	if err := r.api.Fdctl(p, rfd, false); err != nil {
		t.Fatalf("Fdctl: %v", err)
	}
	// sls_restore
	ng, _, err := r.api.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	// sls_rollback (on the restored group)
	np, _ := r.k.Process(ng.PIDs()[0])
	if _, _, err := r.api.Rollback(np); err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	// Unpersisted process gets ErrNotPersisted.
	outsider, _ := r.k.Spawn(0, "x")
	if _, err := r.api.Checkpoint(outsider, ""); err != ErrNotPersisted {
		t.Fatalf("outsider err = %v", err)
	}
}

func TestImageEncodeDecodeRoundTrip(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.k.Run(17)
	r.o.Checkpoint(g, CheckpointOpts{Name: "xfer"})

	img := g.LastImage()
	payload := img.Encode()
	img2, err := DecodeImage(payload, r.k.Mem)
	if err != nil {
		t.Fatal(err)
	}
	// Restoring the decoded image works: this is the `sls send/recv`
	// data path.
	ng, _, err := r.o.RestoreImage(img2, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != 17 {
		t.Fatalf("decoded-image counter = %d, want 17", got)
	}
}

func TestMemoryBackendHistoryConsolidation(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	mb := NewMemoryBackend(r.k.Mem, 3)
	r.o.Attach(g, mb)

	for i := 0; i < 6; i++ {
		r.k.Run(5)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	hist := mb.History(g.ID)
	if len(hist) != 3 {
		t.Fatalf("history = %v, want 3 entries", hist)
	}
	// The oldest retained image must still restore completely.
	img, _, err := mb.Load(g.ID, hist[0])
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := r.o.RestoreImage(img, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != uint64(hist[0])*5 {
		t.Fatalf("consolidated restore counter = %d, want %d", got, hist[0]*5)
	}
}

func TestTable3ShapeIncrementalVsFull(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	ws := int64(8192) // pages (32 MiB working set)
	p.Sbrk(ws*vm.PageSize + vm.PageSize)
	p.WriteMem(p.HeapBase()+vm.PageSize, make([]byte, ws*vm.PageSize))
	g, _ := r.o.Persist("redis", p)
	r.o.Attach(g, r.store)

	full, _ := r.o.Checkpoint(g, CheckpointOpts{Full: true})
	// Dirty ~12% of the working set.
	for i := int64(0); i < ws/8; i++ {
		p.WriteMem(p.HeapBase()+vm.PageSize+vm.Addr(i*8*vm.PageSize), []byte{1})
	}
	incr, _ := r.o.Checkpoint(g, CheckpointOpts{})

	// Metadata copy roughly equal between modes.
	ratio := float64(full.MetadataCopy) / float64(incr.MetadataCopy)
	if ratio < 0.8 || ratio > 1.5 {
		t.Fatalf("metadata ratio = %.2f, want ~1", ratio)
	}
	// Lazy data copy several times faster incrementally.
	if full.LazyDataCopy < 3*incr.LazyDataCopy {
		t.Fatalf("data copy full=%v incr=%v, want >=3x gap", full.LazyDataCopy, incr.LazyDataCopy)
	}
	// Total stop time dominated by the data phase in full mode.
	if full.StopTime < incr.StopTime {
		t.Fatal("full stop time below incremental")
	}
}

func TestTable4ShapeRestoreBreakdown(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	p.Sbrk(256*vm.PageSize + vm.PageSize)
	p.WriteMem(p.HeapBase()+vm.PageSize, make([]byte, 256*vm.PageSize))
	g, _ := r.o.Persist("redis", p)
	r.o.Attach(g, r.mem)
	r.o.Attach(g, r.store)
	r.o.Checkpoint(g, CheckpointOpts{})
	if err := r.o.Sync(g); err != nil { // loading backends directly below
		t.Fatal(err)
	}

	// Memory restore: no object-store read.
	img, _, err := r.mem.Load(g.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, memBD, err := r.o.RestoreImage(img, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if memBD.ObjectStoreRead != 0 {
		t.Fatal("memory restore should have no store read")
	}

	// Disk restore: store read appears; metadata and memory phases are
	// slightly cheaper (implicit restoration).
	simg, readTime, err := r.store.Load(g.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, diskBD, err := r.o.RestoreImage(simg, readTime, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if diskBD.ObjectStoreRead <= 0 {
		t.Fatal("disk restore must include the store read")
	}
	if diskBD.MetadataState >= memBD.MetadataState {
		t.Fatalf("disk metadata %v should undercut memory %v", diskBD.MetadataState, memBD.MetadataState)
	}
	if diskBD.MemoryState >= memBD.MemoryState {
		t.Fatalf("disk memory %v should undercut memory-backend %v", diskBD.MemoryState, memBD.MemoryState)
	}
}

func TestCheckpointFrequency100Hz(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)

	// 100 checkpoints; each stop must be well under the 10 ms period.
	for i := 0; i < 100; i++ {
		r.k.Run(3)
		bd, err := r.o.Checkpoint(g, CheckpointOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if bd.StopTime > 5_000_000 { // 5 ms in ns
			t.Fatalf("checkpoint %d stop time %v exceeds budget", i, bd.StopTime)
		}
	}
	if got := len(g.Breakdowns()); got != 100 {
		t.Fatalf("breakdowns = %d", got)
	}
}

func TestUnixSocketListenerRestored(t *testing.T) {
	r := newRig(t)
	srv := spawnCounter(t, r)
	if _, err := r.k.Listen(srv, "/srv.sock"); err != nil {
		t.Fatal(err)
	}
	// A client connection waits in the backlog at checkpoint time.
	cli, _ := r.k.Spawn(0, "client")
	if _, err := r.k.Connect(cli, "/srv.sock"); err != nil {
		t.Fatal(err)
	}

	g, _ := r.o.Persist("srv", srv)
	r.o.Attach(g, r.store)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil { // loading the store directly below
		t.Fatal(err)
	}

	// Restore into a fresh kernel (crash simulation): the listener and
	// its backlog come back.
	r2 := newRig(t)
	img, readTime, err := r.store.Load(g.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := DecodeImage(img.Encode(), r2.k.Mem)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := r2.o.RestoreImage(img2, readTime, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r2.k.Process(ng.PIDs()[0])
	// The restored listener accepts the checkpointed connection.
	lfd := -1
	for _, n := range np.FDs.Numbers() {
		fd, _ := np.FDs.Get(n)
		if _, ok := fd.File.(*kernel.UnixSocket); ok {
			lfd = n
		}
	}
	if lfd == -1 {
		t.Fatal("listener descriptor not restored")
	}
	if _, err := r2.k.Accept(np, lfd); err != nil {
		t.Fatalf("accept after restore: %v", err)
	}
}

// TestQuickEveryEpochRestoresExactly drives a random write workload
// with checkpoints interleaved, recording the application state at
// every barrier; then every epoch in the history must restore to
// exactly its recorded state. This is the global correctness property
// of incremental checkpointing: no epoch ever bleeds into another.
func TestQuickEveryEpochRestoresExactly(t *testing.T) {
	f := func(writes []uint16) bool {
		r := newRig(nil)
		p, err := r.k.Spawn(0, "app")
		if err != nil {
			return false
		}
		p.SetProgram(&counter{addr: p.HeapBase()})
		const pages = 16
		p.Sbrk(pages*vm.PageSize + vm.PageSize)
		g, _ := r.o.Persist("app", p)
		r.o.Attach(g, r.store)

		model := make([]byte, pages*vm.PageSize)
		epochStates := make(map[uint64][]byte)

		for i, w := range writes {
			pg := int64(w % pages)
			fill := byte(w >> 8)
			chunk := bytes.Repeat([]byte{fill}, 64)
			off := pg * vm.PageSize
			if err := p.WriteMem(p.HeapBase()+vm.PageSize+vm.Addr(off), chunk); err != nil {
				return false
			}
			copy(model[off:], chunk)
			if i%3 == 2 {
				bd, err := r.o.Checkpoint(g, CheckpointOpts{})
				if err != nil {
					return false
				}
				epochStates[bd.Epoch] = append([]byte(nil), model...)
			}
		}
		// Restore every epoch and compare byte for byte.
		for epoch, want := range epochStates {
			ng, _, err := r.o.Restore(g, epoch, RestoreOpts{Lazy: true})
			if err != nil {
				return false
			}
			np, err := r.k.Process(ng.PIDs()[0])
			if err != nil {
				return false
			}
			got := make([]byte, len(want))
			if err := np.ReadMem(np.HeapBase()+vm.PageSize, got); err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				return false
			}
			r.k.Exit(np, 0)
			r.k.Reap(np)
			r.o.Unpersist(ng)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
