package core

import (
	"testing"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// spaceRig is a rig whose store sits on a bounded fault device with a
// reclaimer attached: the minimal machine for space-pressure tests.
type spaceRig struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *Orchestrator
	fd    *storage.FaultDevice
	store *StoreBackend
	rec   *Reclaimer
}

func newSpaceRig(t *testing.T, capacity int64, policy RetentionPolicy, marks Watermarks) *spaceRig {
	t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	params := storage.ParamsOptaneNVMe
	params.Capacity = capacity
	fd := storage.NewFaultDevice(storage.NewMemDevice(params, clock), clock, storage.FaultConfig{Seed: 1})
	sb := NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)
	rec := NewReclaimer(o, sb, policy, marks)
	rec.Audit = (*objstore.Store).AuditReachability
	sb.SetReclaimer(rec)
	return &spaceRig{clock: clock, k: k, o: o, fd: fd, store: sb, rec: rec}
}

func (r *spaceRig) spawnGroup(t *testing.T) *Group {
	t.Helper()
	p, err := r.k.Spawn(0, "counter")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	g, err := r.o.Persist("counter", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	return g
}

// ckpt runs a slice of work and takes one synced checkpoint.
func (r *spaceRig) ckpt(t *testing.T, g *Group, opts CheckpointOpts) CheckpointBreakdown {
	t.Helper()
	if _, err := r.k.Run(2); err != nil {
		t.Fatal(err)
	}
	bd, err := r.o.Checkpoint(g, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	return bd
}

// floorBackend is a minimal partition-aware stand-in: a backend whose
// only job is to report a contiguous catch-up floor to the reclaimer.
type floorBackend struct{ floor uint64 }

func (f *floorBackend) Name() string                                     { return "floor" }
func (f *floorBackend) Flush(img *Image) (time.Duration, error)          { return 0, nil }
func (f *floorBackend) Load(g, e uint64) (*Image, time.Duration, error)  { return nil, 0, ErrNoImage }
func (f *floorBackend) Ephemeral() bool                                  { return true }
func (f *floorBackend) CatchUpFloor(group uint64) uint64                 { return f.floor }

// TestReclaimerProtectionFloors drives an aggressive scan (KeepLast 1,
// watermarks at zero so any usage is emergency-level) against a
// lineage with a named snapshot and a replica floor, and checks every
// safety floor held: the named epoch, everything at or above the
// replica's contiguous catch-up floor, and the newest manifest survive
// while the unprotected middle is merged away.
func TestReclaimerProtectionFloors(t *testing.T) {
	r := newSpaceRig(t, 512<<20, RetentionPolicy{KeepLast: 1},
		Watermarks{Low: 1e-9, High: 2e-9, Emergency: 3e-9})
	r.o.ShedAdmitEvery = 1 // admit every barrier: this test isolates reclamation
	g := r.spawnGroup(t)

	fb := &floorBackend{floor: 6}
	r.o.Attach(g, fb)

	for i := 1; i <= 8; i++ {
		opts := CheckpointOpts{}
		if i == 3 {
			opts.Name = "keepsake"
		}
		r.ckpt(t, g, opts)
	}

	r.rec.Scan()
	if err := r.store.Store().AuditReachability(); err != nil {
		t.Fatalf("audit after scan: %v", err)
	}

	left := map[uint64]bool{}
	for _, m := range r.store.Store().Manifests(g.ID) {
		left[m.Epoch] = true
	}
	for _, want := range []uint64{3, 6, 7, 8} {
		if !left[want] {
			t.Errorf("protected epoch %d was reclaimed (left: %v)", want, left)
		}
	}
	for _, gone := range []uint64{1, 2, 4, 5} {
		if left[gone] {
			t.Errorf("unprotected epoch %d survived an emergency-level scan (left: %v)", gone, left)
		}
	}
	if _, err := r.store.Store().NamedManifest("keepsake"); err != nil {
		t.Errorf("named snapshot lost: %v", err)
	}

	// The floor is not forever: once the replica catches up, the same
	// scan reclaims what it previously protected.
	fb.floor = 9
	r.rec.Scan()
	left = map[uint64]bool{}
	for _, m := range r.store.Store().Manifests(g.ID) {
		left[m.Epoch] = true
	}
	for _, gone := range []uint64{6, 7} {
		if left[gone] {
			t.Errorf("epoch %d still held after the floor advanced (left: %v)", gone, left)
		}
	}
	if !left[3] || !left[8] {
		t.Errorf("named/newest epochs lost after floor advance (left: %v)", left)
	}
}

// TestReclaimerDropNamedPolicy checks that DropNamed is an explicit
// opt-in: with it set, a named snapshot is reclaimable like any epoch.
func TestReclaimerDropNamedPolicy(t *testing.T) {
	r := newSpaceRig(t, 512<<20, RetentionPolicy{KeepLast: 1, DropNamed: true},
		Watermarks{Low: 1e-9, High: 2e-9, Emergency: 3e-9})
	r.o.ShedAdmitEvery = 1
	g := r.spawnGroup(t)
	for i := 1; i <= 4; i++ {
		opts := CheckpointOpts{}
		if i == 2 {
			opts.Name = "expendable"
		}
		r.ckpt(t, g, opts)
		if i == 2 {
			if _, err := r.store.Store().NamedManifest("expendable"); err != nil {
				t.Fatalf("named checkpoint not recorded: %v", err)
			}
		}
	}
	r.rec.Scan()
	if _, err := r.store.Store().NamedManifest("expendable"); err == nil {
		t.Error("DropNamed policy did not release the named snapshot")
	}
}

// TestAdmissionShedStreak pins the admission-control contract under
// sustained emergency pressure: barriers shed (no epoch minted, Shed
// breakdowns, counters advancing) but every ShedAdmitEvery-th barrier
// is admitted, so the durable frontier keeps moving and never
// regresses.
func TestAdmissionShedStreak(t *testing.T) {
	// Watermarks near zero: any resident byte reads as emergency, and
	// KeepLast 4 on four retained epochs means scans cannot fix it.
	r := newSpaceRig(t, 512<<20, RetentionPolicy{KeepLast: 8},
		Watermarks{Low: 1e-9, High: 2e-9, Emergency: 3e-9})
	g := r.spawnGroup(t)

	r.ckpt(t, g, CheckpointOpts{}) // epoch 1: below pressure only before data lands

	admitted, shed := 0, 0
	prevDurable := g.Durable()
	for i := 0; i < 12; i++ {
		bd := r.ckpt(t, g, CheckpointOpts{})
		if bd.Shed {
			shed++
			if bd.Epoch != g.Epoch() {
				t.Fatalf("shed breakdown carries epoch %d, group at %d", bd.Epoch, g.Epoch())
			}
		} else {
			admitted++
		}
		if d := g.Durable(); d < prevDurable {
			t.Fatalf("durable regressed %d -> %d", prevDurable, d)
		} else {
			prevDurable = d
		}
	}
	// Streak cap 4 (default): of every 4 pressured barriers, 3 shed and
	// the 4th goes through.
	if admitted != 3 || shed != 9 {
		t.Fatalf("admitted %d, shed %d; want 3 admitted / 9 shed under the default streak cap", admitted, shed)
	}
	total, emergency := g.Sheds()
	if total != 9 || emergency != 9 {
		t.Fatalf("Sheds() = (%d, %d), want (9, 9)", total, emergency)
	}
	if g.Durable() != g.Epoch() {
		t.Fatalf("durable %d below epoch %d after synced barriers", g.Durable(), g.Epoch())
	}
}

// TestAdmissionZeroConfigNeutral checks the no-pressure contract: with
// no reclaimer attached and ShedQueueDepth unset, admission control
// never sheds and the checkpoint cadence is exactly the legacy one.
func TestAdmissionZeroConfigNeutral(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("counter", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	for i := 0; i < 5; i++ {
		if _, err := r.k.Run(2); err != nil {
			t.Fatal(err)
		}
		bd, err := r.o.Checkpoint(g, CheckpointOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if bd.Shed {
			t.Fatal("barrier shed without any pressure source configured")
		}
	}
	if total, _ := g.Sheds(); total != 0 {
		t.Fatalf("Sheds() = %d on an unpressured group", total)
	}
	if g.Epoch() != 5 {
		t.Fatalf("epoch %d, want 5", g.Epoch())
	}
}

// TestFlushENOSPCDegradedNotDown drives the flusher into an injected
// full device: the backend must degrade (not go down), trigger
// emergency reclamation, surface no error to the checkpoint caller,
// and recover to healthy — durable catching all the way up — once
// space returns.
func TestFlushENOSPCDegradedNotDown(t *testing.T) {
	r := newSpaceRig(t, 0, RetentionPolicy{}, Watermarks{})
	g := r.spawnGroup(t)
	r.ckpt(t, g, CheckpointOpts{})

	r.fd.SetFull(true)
	for i := 0; i < 8; i++ {
		if _, err := r.k.Run(2); err != nil {
			t.Fatal(err)
		}
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatalf("checkpoint surfaced an error on a full device: %v", err)
		}
		r.o.Drain(g)
	}
	found := false
	for _, h := range g.Health() {
		if h.Name != r.store.Name() {
			continue
		}
		found = true
		if h.State != BackendDegraded {
			t.Fatalf("backend %s on a full device, want degraded: %v", h.State, h)
		}
		if h.Pending == 0 {
			t.Fatal("no epochs queued for catch-up while the device was full")
		}
	}
	if !found {
		t.Fatal("store backend missing from health report")
	}
	if st := r.rec.Stats(); st.EmergencyScans == 0 {
		t.Fatal("ENOSPC never triggered an emergency reclamation")
	}
	if g.Durable() >= g.Epoch() {
		t.Fatal("durable frontier advanced through a full device")
	}

	r.fd.SetFull(false)
	var err error
	for i := 0; i < 12 && g.Durable() != g.Epoch(); i++ {
		err = r.o.Sync(g)
	}
	if err != nil {
		t.Fatalf("sync after space returned: %v", err)
	}
	if g.Durable() != g.Epoch() {
		t.Fatalf("durable %d stuck below epoch %d after space returned", g.Durable(), g.Epoch())
	}
	for _, h := range g.Health() {
		if h.Name == r.store.Name() && h.State != BackendHealthy {
			t.Fatalf("backend %s after recovery, want healthy", h.State)
		}
	}
}

// TestFlushENOSPCNeverPoisonsStore checks the failure-atomicity claim
// behind the reclaim-and-retry loop: a flush refused for space leaves
// no partial record, no dedup entry pointing at unwritten bytes, and a
// clean audit — so the eventual retry is a clean re-delivery.
func TestFlushENOSPCNeverPoisonsStore(t *testing.T) {
	r := newSpaceRig(t, 0, RetentionPolicy{}, Watermarks{})
	g := r.spawnGroup(t)
	r.ckpt(t, g, CheckpointOpts{})

	r.fd.SetFull(true)
	if _, err := r.k.Run(2); err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	r.o.Drain(g)
	if err := r.store.Store().AuditReachability(); err != nil {
		t.Fatalf("full-device flush poisoned the store: %v", err)
	}
	if got := len(r.store.Store().Manifests(g.ID)); got != 1 {
		t.Fatalf("%d manifests after a refused flush, want 1", got)
	}
	r.fd.SetFull(false)
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	if err := r.store.Store().AuditReachability(); err != nil {
		t.Fatalf("audit after recovery: %v", err)
	}
	if _, _, err := r.store.Load(g.ID, 0); err != nil {
		t.Fatalf("restore after ENOSPC recovery: %v", err)
	}
}

// TestSyncWithReclaimRetries checks the control-plane path: a
// superblock Sync that hits device full retries after emergency
// reclamation instead of failing the fence write.
func TestSyncWithReclaimRetries(t *testing.T) {
	r := newSpaceRig(t, 512<<20, RetentionPolicy{KeepLast: 1},
		Watermarks{Low: 1e-9, High: 2e-9, Emergency: 3e-9})
	g := r.spawnGroup(t)
	for i := 0; i < 4; i++ {
		r.ckpt(t, g, CheckpointOpts{})
	}
	// A plain failing sync (no space to reclaim, device errors) must
	// still surface: syncWithReclaim only swallows what reclamation can
	// actually fix.
	r.fd.Down()
	if err := r.o.syncWithReclaim(r.store); err == nil {
		t.Fatal("sync on a dead device reported success")
	}
	r.fd.Up()
	if err := r.o.syncWithReclaim(r.store); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
}
