package storage

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Fault-injection errors. Both are returned wrapped with operation
// context, so callers use errors.Is.
var (
	// ErrInjected marks a seeded transient fault from a FaultDevice.
	ErrInjected = errors.New("storage: injected fault")
	// ErrDeviceDown marks an operation against a device in the
	// permanently-failed state (see FaultDevice.Down).
	ErrDeviceDown = errors.New("storage: device down")
)

// FaultKind selects which operation class a fault script targets.
type FaultKind int

const (
	FaultAny FaultKind = iota
	FaultRead
	FaultWrite
	FaultSync
)

func (k FaultKind) String() string {
	switch k {
	case FaultRead:
		return "read"
	case FaultWrite:
		return "write"
	case FaultSync:
		return "sync"
	default:
		return "any"
	}
}

// FaultConfig holds the per-operation fault probabilities. All
// probabilities are in [0, 1] and are drawn from a single seeded RNG,
// so a given seed reproduces the exact same fault schedule as long as
// the device sees the same operation sequence.
type FaultConfig struct {
	Seed int64

	// Transient error probabilities per operation class. A faulted
	// operation returns an error wrapping ErrInjected and performs no
	// (complete) device I/O.
	ReadErr  float64
	WriteErr float64
	SyncErr  float64

	// TornWrite is the conditional probability that an injected write
	// fault lands a partial prefix of the buffer before erroring,
	// modeling a power cut mid-write.
	TornWrite float64

	// BitRot is the probability that a read silently returns flipped
	// bits: the operation "succeeds" but one byte of the result is
	// corrupted. Models silent media rot; only end-to-end checksums
	// catch it.
	BitRot float64

	// SpikeProb/SpikeCost inject latency spikes: the operation
	// succeeds but costs SpikeCost extra virtual time.
	SpikeProb float64
	SpikeCost time.Duration
}

// FaultOp is one entry of the device operation log (see SetLogging).
type FaultOp struct {
	N    int64 // 1-based operation number
	Kind string
	Off  int64
	Len  int
	Err  bool // true if the op returned an error (injected or inner)

	// Data holds a copy of the bytes a write landed on media (the full
	// buffer, or the torn prefix). Captured only when SetDataLogging is
	// on; it is what lets a crash harness replay the log's first N ops
	// onto a fresh device and reboot from the exact media state a crash
	// at op N+1 would have left behind.
	Data []byte
}

// faultScript is one "fail ops N..M" directive.
type faultScript struct {
	kind     FaultKind
	from, to int64 // inclusive operation numbers
	torn     bool
}

// faultCore is the state shared by every Redirect view of a
// FaultDevice, mirroring the memCore pattern: fault schedule, op
// counter, and log live here so lane views observe one timeline.
type faultCore struct {
	mu       sync.Mutex
	cfg      FaultConfig
	rng      *rand.Rand
	ops      int64
	injected int64
	down     bool
	full     bool
	scripts  []faultScript
	logging  bool
	logData  bool
	log      []FaultOp
}

// decision is the pre-drawn fate of a single operation.
type decision struct {
	n      int64
	down   bool
	full   bool
	inject bool
	torn   bool
	rot    bool
	spike  bool
	frac   float64 // uniform draw for torn cut / rot byte position
}

// decide rolls the dice for one operation. Every operation consumes a
// fixed number of RNG draws regardless of outcome, so the schedule is
// a pure function of (seed, op number) and stays reproducible even as
// probabilities change between runs.
func (c *faultCore) decide(kind FaultKind, prob float64) decision {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ops++
	d := decision{n: c.ops}
	if c.down {
		d.down = true
		return d
	}
	errRoll := c.rng.Float64()
	tornRoll := c.rng.Float64()
	rotRoll := c.rng.Float64()
	spikeRoll := c.rng.Float64()
	d.frac = c.rng.Float64()
	if errRoll < prob {
		d.inject = true
		d.torn = kind == FaultWrite && tornRoll < c.cfg.TornWrite
	}
	for _, s := range c.scripts {
		if (s.kind == FaultAny || s.kind == kind) && c.ops >= s.from && c.ops <= s.to {
			d.inject = true
			if s.torn && kind == FaultWrite {
				d.torn = true
			}
		}
	}
	if kind == FaultRead && !d.inject && rotRoll < c.cfg.BitRot {
		d.rot = true
	}
	if spikeRoll < c.cfg.SpikeProb {
		d.spike = true
	}
	// The out-of-space mode is a flag check, not a probability draw, so
	// toggling it never perturbs the (seed, op-number) fault schedule.
	if c.full && kind == FaultWrite && !d.inject {
		d.full = true
	}
	if d.inject || d.rot || d.full {
		c.injected++
	}
	return d
}

func (c *faultCore) record(n int64, kind string, off int64, length int, failed bool, landed []byte) {
	c.mu.Lock()
	if c.logging {
		op := FaultOp{N: n, Kind: kind, Off: off, Len: length, Err: failed}
		if c.logData && landed != nil {
			op.Data = append([]byte(nil), landed...)
		}
		c.log = append(c.log, op)
	}
	c.mu.Unlock()
}

// FaultDevice wraps any Device and injects seeded, reproducible
// faults: transient errors, torn writes, silent bit-rot, latency
// spikes, and a permanent-failure mode. It implements Redirector so
// detached flush lanes share one fault timeline.
type FaultDevice struct {
	*faultCore
	inner Device
	clock *Clock
}

// NewFaultDevice wraps inner. The clock (may be nil) is charged for
// latency spikes; it should be the same clock the inner device uses.
func NewFaultDevice(inner Device, clock *Clock, cfg FaultConfig) *FaultDevice {
	return &FaultDevice{
		faultCore: &faultCore{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))},
		inner:     inner,
		clock:     clock,
	}
}

// Redirect returns a view of the same faulty device charging the given
// clock; fault state (RNG, op counter, scripts, log) is shared.
func (d *FaultDevice) Redirect(clock *Clock) Device {
	return &FaultDevice{
		faultCore: d.faultCore,
		inner:     Redirect(d.inner, clock),
		clock:     clock,
	}
}

// Inner returns the wrapped device (tests reach past the fault layer
// to corrupt or inspect raw contents).
func (d *FaultDevice) Inner() Device { return d.inner }

// Down switches the device into permanent failure: every operation
// fails with ErrDeviceDown until Up is called.
func (d *FaultDevice) Down() {
	d.mu.Lock()
	d.down = true
	d.mu.Unlock()
}

// Up clears the permanent-failure state.
func (d *FaultDevice) Up() {
	d.mu.Lock()
	d.down = false
	d.mu.Unlock()
}

// SetFull toggles the injectable out-of-space mode: while on, every
// write fails with an error wrapping ErrOutOfSpace (reads and syncs
// still succeed, as on a real full disk). Unlike Down, a full device is
// degraded, not dead — callers are expected to reclaim and retry.
func (d *FaultDevice) SetFull(on bool) {
	d.mu.Lock()
	d.full = on
	d.mu.Unlock()
}

// FailOps scripts deterministic faults: operations numbered from..to
// (inclusive, 1-based, counted across all views) of the given kind
// fail with ErrInjected.
func (d *FaultDevice) FailOps(kind FaultKind, from, to int64) {
	d.mu.Lock()
	d.scripts = append(d.scripts, faultScript{kind: kind, from: from, to: to})
	d.mu.Unlock()
}

// TearOps scripts torn writes for operations from..to: a prefix of the
// buffer reaches the device, then the op fails with ErrInjected.
func (d *FaultDevice) TearOps(from, to int64) {
	d.mu.Lock()
	d.scripts = append(d.scripts, faultScript{kind: FaultWrite, from: from, to: to, torn: true})
	d.mu.Unlock()
}

// ClearScripts removes all scripted faults.
func (d *FaultDevice) ClearScripts() {
	d.mu.Lock()
	d.scripts = nil
	d.mu.Unlock()
}

// OpCount returns the number of operations seen so far.
func (d *FaultDevice) OpCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ops
}

// InjectedCount returns how many faults (errors, torn writes, rotted
// reads) have been injected so far.
func (d *FaultDevice) InjectedCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.injected
}

// SetLogging enables or disables the operation log.
func (d *FaultDevice) SetLogging(on bool) {
	d.mu.Lock()
	d.logging = on
	if !on {
		d.log = nil
	}
	d.mu.Unlock()
}

// SetDataLogging additionally captures the bytes each write landed on
// media (see FaultOp.Data). Implies nothing on its own: logging must
// also be on. Memory-hungry; meant for crash-replay harnesses.
func (d *FaultDevice) SetDataLogging(on bool) {
	d.mu.Lock()
	d.logData = on
	d.mu.Unlock()
}

// Log returns a copy of the operation log collected since SetLogging.
func (d *FaultDevice) Log() []FaultOp {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]FaultOp(nil), d.log...)
}

func (d *FaultDevice) spikeCost(dec decision) time.Duration {
	if !dec.spike || d.cfg.SpikeCost <= 0 {
		return 0
	}
	if d.clock != nil {
		d.clock.Advance(d.cfg.SpikeCost)
	}
	return d.cfg.SpikeCost
}

func (d *FaultDevice) ReadAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	prob := d.cfg.ReadErr
	d.mu.Unlock()
	dec := d.decide(FaultRead, prob)
	if dec.down {
		d.record(dec.n, "read", off, len(p), true, nil)
		return 0, fmt.Errorf("%w: read %d bytes at %d", ErrDeviceDown, len(p), off)
	}
	cost := d.spikeCost(dec)
	if dec.inject {
		d.record(dec.n, "read", off, len(p), true, nil)
		return cost, fmt.Errorf("%w: read %d bytes at %d (op %d)", ErrInjected, len(p), off, dec.n)
	}
	dur, err := d.inner.ReadAt(p, off)
	if err == nil && dec.rot && len(p) > 0 {
		// Silent corruption: flip one byte, report success.
		p[int(dec.frac*float64(len(p)))%len(p)] ^= 0xa5
	}
	d.record(dec.n, "read", off, len(p), err != nil, nil)
	return cost + dur, err
}

func (d *FaultDevice) WriteAt(p []byte, off int64) (time.Duration, error) {
	d.mu.Lock()
	prob := d.cfg.WriteErr
	d.mu.Unlock()
	dec := d.decide(FaultWrite, prob)
	if dec.down {
		d.record(dec.n, "write", off, len(p), true, nil)
		return 0, fmt.Errorf("%w: write %d bytes at %d", ErrDeviceDown, len(p), off)
	}
	cost := d.spikeCost(dec)
	if dec.full {
		d.record(dec.n, "write", off, len(p), true, nil)
		return cost, fmt.Errorf("%w: injected full device, write %d bytes at %d (op %d)",
			ErrOutOfSpace, len(p), off, dec.n)
	}
	if dec.inject {
		if dec.torn && len(p) > 1 {
			// Torn write: a prefix lands on media, then power dies.
			cut := 1 + int(dec.frac*float64(len(p)-1))
			if cut >= len(p) {
				cut = len(p) - 1
			}
			dur, _ := d.inner.WriteAt(p[:cut], off)
			d.record(dec.n, "write", off, len(p), true, p[:cut])
			return cost + dur, fmt.Errorf("%w: torn write at %d (%d of %d bytes, op %d)",
				ErrInjected, off, cut, len(p), dec.n)
		}
		d.record(dec.n, "write", off, len(p), true, nil)
		return cost, fmt.Errorf("%w: write %d bytes at %d (op %d)", ErrInjected, len(p), off, dec.n)
	}
	dur, err := d.inner.WriteAt(p, off)
	d.record(dec.n, "write", off, len(p), err != nil, p)
	return cost + dur, err
}

func (d *FaultDevice) ReadBatch(bufs [][]byte, offs []int64) (time.Duration, error) {
	d.mu.Lock()
	prob := d.cfg.ReadErr
	d.mu.Unlock()
	dec := d.decide(FaultRead, prob)
	total := 0
	for _, b := range bufs {
		total += len(b)
	}
	if dec.down {
		d.record(dec.n, "readbatch", 0, total, true, nil)
		return 0, fmt.Errorf("%w: batch of %d reads", ErrDeviceDown, len(bufs))
	}
	cost := d.spikeCost(dec)
	if dec.inject {
		d.record(dec.n, "readbatch", 0, total, true, nil)
		return cost, fmt.Errorf("%w: batch of %d reads (op %d)", ErrInjected, len(bufs), dec.n)
	}
	dur, err := d.inner.ReadBatch(bufs, offs)
	if err == nil && dec.rot && len(bufs) > 0 {
		victim := bufs[int(dec.frac*float64(len(bufs)))%len(bufs)]
		if len(victim) > 0 {
			victim[0] ^= 0xa5
		}
	}
	d.record(dec.n, "readbatch", 0, total, err != nil, nil)
	return cost + dur, err
}

func (d *FaultDevice) Sync() (time.Duration, error) {
	d.mu.Lock()
	prob := d.cfg.SyncErr
	d.mu.Unlock()
	dec := d.decide(FaultSync, prob)
	if dec.down {
		d.record(dec.n, "sync", 0, 0, true, nil)
		return 0, fmt.Errorf("%w: sync", ErrDeviceDown)
	}
	cost := d.spikeCost(dec)
	if dec.inject {
		d.record(dec.n, "sync", 0, 0, true, nil)
		return cost, fmt.Errorf("%w: sync (op %d)", ErrInjected, dec.n)
	}
	dur, err := d.inner.Sync()
	d.record(dec.n, "sync", 0, 0, err != nil, nil)
	return cost + dur, err
}

func (d *FaultDevice) Params() DeviceParams { return d.inner.Params() }

func (d *FaultDevice) Stats() DeviceStats { return d.inner.Stats() }

// Resident forwards the residency capability of the inner device so
// space-pressure watermarks see through the fault layer. Returns -1 when
// the inner device cannot report it.
func (d *FaultDevice) Resident() int64 { return ResidentBytes(d.inner) }

// Discard forwards TRIM to the inner device when supported. Discards do
// not consume fault-schedule draws: reclamation toggling on or off must
// not shift the seeded fault timeline of the data path.
func (d *FaultDevice) Discard(off, length int64) { DiscardRange(d.inner, off, length) }
