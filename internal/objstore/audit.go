package objstore

import "fmt"

// AuditReachability cross-checks the block index against every retained
// record: each block referenced by any record must exist with a
// refcount equal to the number of references, no block may exist with
// zero references (unreachable blocks must have been freed), and no
// free-list entry may alias a live block or appear twice. The chaos and
// space harnesses run this after every reclamation — a refcount drift
// here is how merge-forward GC bugs first become visible, long before
// they corrupt a restore.
func (s *Store) AuditReachability() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	want := make(map[Hash]int32, len(s.blocks))
	for key, rec := range s.records {
		for idx, ref := range rec.Pages {
			be, ok := s.blocks[ref.Hash]
			if !ok {
				return fmt.Errorf("objstore: audit: record %d@%d page %d references freed block %x",
					key.OID, key.Epoch, idx, ref.Hash[:4])
			}
			if be.ref.Off != ref.Off {
				return fmt.Errorf("objstore: audit: record %d@%d page %d holds offset %d for block %x, index says %d",
					key.OID, key.Epoch, idx, ref.Off, ref.Hash[:4], be.ref.Off)
			}
			want[ref.Hash]++
		}
	}
	for h, be := range s.blocks {
		if w := want[h]; be.refs != w {
			return fmt.Errorf("objstore: audit: block %x at %d has refcount %d, %d references reachable",
				h[:4], be.ref.Off, be.refs, w)
		}
		if be.refs <= 0 {
			return fmt.Errorf("objstore: audit: unreachable block %x at %d not freed", h[:4], be.ref.Off)
		}
	}

	// Metadata extents: every packed extent must land in a block the
	// pack accounting knows, with no more registered extents than the
	// block's live count (in-flight unregistered writes may hold the
	// rest), and no metadata block — packed or whole — may sit on the
	// free list. Compaction moves extents between pack blocks; this is
	// where a move that leaked or double-freed its source would show.
	metaBlocks := make(map[int64]RecordKey)
	packed := make(map[int64]int)
	for key, rec := range s.records {
		if rec.metaOff < dataStart {
			continue
		}
		base := rec.metaOff &^ (BlockSize - 1)
		if rec.metaLen+1 < BlockSize {
			if _, ok := s.packLive[base]; !ok {
				return fmt.Errorf("objstore: audit: record %d@%d metadata packed at %d outside any pack block",
					key.OID, key.Epoch, rec.metaOff)
			}
			packed[base]++
		}
		end := rec.metaOff + int64(rec.metaLen)
		for off := base; off <= end; off += BlockSize {
			metaBlocks[off] = key
		}
	}
	for base, n := range packed {
		if liveN := s.packLive[base]; n > liveN {
			return fmt.Errorf("objstore: audit: pack block %d holds %d registered extents but live count %d",
				base, n, liveN)
		}
	}

	live := make(map[int64]Hash, len(s.blocks))
	for h, be := range s.blocks {
		live[be.ref.Off] = h
	}
	seen := make(map[int64]bool, len(s.freeList))
	for _, off := range s.freeList {
		if h, ok := live[off]; ok {
			return fmt.Errorf("objstore: audit: free-list offset %d aliases live block %x", off, h[:4])
		}
		if key, ok := metaBlocks[off]; ok {
			return fmt.Errorf("objstore: audit: free-list offset %d aliases metadata of record %d@%d",
				off, key.OID, key.Epoch)
		}
		if seen[off] {
			return fmt.Errorf("objstore: audit: offset %d double-freed", off)
		}
		seen[off] = true
	}

	// Every retained manifest's own-epoch entries must resolve to live
	// records (merge-forward re-keys idle objects to the heir epoch, so
	// entries for other epochs may legitimately be stale).
	for g, ms := range s.manifests {
		for _, m := range ms {
			for _, rk := range m.Records {
				if rk.Epoch != m.Epoch {
					continue
				}
				if _, ok := s.records[rk]; !ok {
					return fmt.Errorf("objstore: audit: manifest %d@%d lists missing record %d@%d",
						g, m.Epoch, rk.OID, rk.Epoch)
				}
			}
		}
	}
	return nil
}
