package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// This file is the quorum-replication harness: one primary machine
// fanning every epoch out to a local store plus N acknowledged replica
// links under a core.QuorumPolicy, with a seeded minority-kill /
// partition-heal schedule. It asserts the quorum availability story:
// durable and released frontiers keep advancing while any minority is
// dead, the killed replica catches back up to the contiguous floor,
// quorum promotion elects the best member and read-repairs the rest,
// and a restore from ANY member is bit-identical afterwards. It also
// measures the latency story — the W-th-fastest-ack durable latency
// against the all-backends baseline.

// QuorumChaosConfig parameterizes one quorum chaos run. Zero values
// pick defaults; the kill/partition windows are seeded so different
// seeds hit different phases of the run.
type QuorumChaosConfig struct {
	Seed int64

	// Replicas is the replica-set size N (default 3).
	Replicas int
	// W is the write quorum over the group's non-ephemeral backends —
	// the local store plus the N links (default: majority of the
	// replicas, e.g. 2 for N=3).
	W int

	// Checkpoints and StepsPerEpoch shape the workload (defaults 60/2).
	Checkpoints   int
	StepsPerEpoch int

	// Per-frame link fault probabilities, applied to every link.
	LinkDrop    float64
	LinkDup     float64
	LinkReorder float64
	LinkCorrupt float64

	// KillAt/KillLen script the minority kill: after checkpoint KillAt
	// replica 1 is killed (receiver state lost) and restarted KillLen
	// checkpoints later. -1 disables; 0 picks a seeded default.
	KillAt  int
	KillLen int
	// PartitionAt/PartitionLen script a transient partition of the last
	// replica. -1 disables; 0 picks a seeded default.
	PartitionAt  int
	PartitionLen int

	// SlowLinkLatency is extra one-way latency on the last replica's
	// link (default 500µs): the heterogeneous member whose slowness
	// quorum durability exists to hide.
	SlowLinkLatency time.Duration

	// SkipBaseline skips the paired all-backends fault-free run used
	// for the latency comparison (sweep mode).
	SkipBaseline bool
}

func (c QuorumChaosConfig) withDefaults() QuorumChaosConfig {
	if c.Replicas == 0 {
		c.Replicas = 3
	}
	if c.W == 0 {
		c.W = c.Replicas/2 + 1
	}
	if c.Checkpoints == 0 {
		c.Checkpoints = 60
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 2
	}
	if c.SlowLinkLatency == 0 {
		c.SlowLinkLatency = 500 * time.Microsecond
	}
	rnd := c.Seed
	if rnd < 0 {
		rnd = -rnd
	}
	if c.KillAt == 0 && c.Replicas >= 3 {
		// Kill somewhere in the first half, long enough to open a real
		// gap; leave room to restart before the partition starts.
		c.KillAt = 2 + int(rnd*7919%int64(c.Checkpoints/4))
		if c.KillLen == 0 {
			c.KillLen = c.Checkpoints / 8
		}
	}
	if c.PartitionAt == 0 && c.Replicas >= 3 {
		c.PartitionAt = c.Checkpoints/2 + int(rnd*104729%int64(c.Checkpoints/8))
		if c.PartitionLen == 0 {
			c.PartitionLen = c.Checkpoints / 10
		}
	}
	if c.KillAt < 0 {
		c.KillAt = 0
	}
	if c.PartitionAt < 0 {
		c.PartitionAt = 0
	}
	return c
}

// QuorumChaosReport is the outcome of one quorum chaos run.
type QuorumChaosReport struct {
	Seed        int64
	Replicas, W int
	Checkpoints int

	Durable  uint64 // final durable epoch on the source line
	Released uint64 // released watermark at exit

	// MedianDurable is the median modeled flush (durable-ack) latency;
	// BaselineMedian is the same for the paired all-backends fault-free
	// run (0 when SkipBaseline).
	MedianDurable  time.Duration
	BaselineMedian time.Duration

	Kills, Heals  int
	Partitions    int64 // connection losses summed over all links
	LinkDropped   int64
	LinkInjected  int64
	CatchUpEpochs int64 // epochs replayed to the restarted replica

	PagesSent     int64 // literal pages shipped (all links)
	PagesSkipped  int64 // pages elided as content-hash refs
	NeedResends   int64 // full resends forced by receiver need replies
	ReceiverNeeds int64 // need replies issued by receivers

	PromoteGen       uint64 // generation minted by the quorum promotion
	Floor            uint64 // promotion floor (== Durable)
	Elected          int    // elected member index
	Repaired         int    // epochs read-repaired onto lagging members
	RestoresVerified int    // bit-identical restores checked (mid-run + final)
}

// quorumLink is one replica link of the harness (the shared topology
// Wire built as a standalone Endpoint: its fault link, the backend on
// the primary side, and the receiver standing in for the replica
// machine).
type quorumLink = Wire

// quorumRun carries the harness state.
type quorumRun struct {
	cfg      QuorumChaosConfig
	rep      *QuorumChaosReport
	baseline bool

	srcClock *storage.Clock
	srcK     *kernel.Kernel
	srcO     *core.Orchestrator
	srcStore *core.StoreBackend

	rs    *netback.ReplicaSet
	links []*quorumLink

	g           *core.Group
	counterAt   map[uint64]uint64
	lastDurable uint64
	maxReleased uint64
	forceFull   bool
}

func (q *quorumRun) startServe(l *quorumLink) { l.startServe() }

// resetLink re-establishes one replica link (the shared topology
// Wire's dance: poison the serve loop, reap, drain, heal,
// re-handshake).
func (q *quorumRun) resetLink(l *quorumLink) error {
	if err := l.reset(q.g.ID); err != nil {
		return fmt.Errorf("bench: quorum seed %d: %w", q.cfg.Seed, err)
	}
	return nil
}

func (q *quorumRun) linkHealth(name string) (core.BackendHealthInfo, bool) {
	for _, hi := range q.g.Health() {
		if hi.Name == name {
			return hi, true
		}
	}
	return core.BackendHealthInfo{}, false
}

// healLink drives one link back to healthy with its catch-up queue
// drained; other links in scripted outages keep failing, which is
// fine — Resync probes them and moves on.
func (q *quorumRun) healLink(l *quorumLink) error {
	var last error
	for round := 0; round < 12; round++ {
		hi, ok := q.linkHealth(l.name)
		if ok && hi.State == core.BackendHealthy && hi.Pending == 0 {
			return nil
		}
		if err := q.resetLink(l); err != nil {
			return err
		}
		_ = q.srcO.Resync(q.g)
		last = q.srcO.Sync(q.g)
	}
	return fmt.Errorf("bench: quorum seed %d: link %s did not heal: %w", q.cfg.Seed, l.name, last)
}

// syncDurable advances the durable frontier to the barrier epoch,
// ignoring the expected failures of links in scripted outages.
func (q *quorumRun) syncDurable() error {
	var last error
	for round := 0; round < 12; round++ {
		last = q.srcO.Sync(q.g)
		if q.g.Durable() == q.g.Epoch() {
			return nil
		}
	}
	return fmt.Errorf("bench: quorum seed %d: durable stuck at %d (barrier %d): %w",
		q.cfg.Seed, q.g.Durable(), q.g.Epoch(), last)
}

func (q *quorumRun) readCounter() (uint64, error) {
	p, err := q.srcK.Process(q.g.PIDs()[0])
	if err != nil {
		return 0, err
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// epoch runs one workload slice and checkpoints it.
func (q *quorumRun) epoch() (uint64, error) {
	if _, err := q.srcK.Run(q.cfg.StepsPerEpoch); err != nil {
		return 0, err
	}
	counter, err := q.readCounter()
	if err != nil {
		return 0, err
	}
	opts := core.CheckpointOpts{Full: q.forceFull}
	q.forceFull = false
	bd, err := q.srcO.Checkpoint(q.g, opts)
	if err != nil {
		return 0, err
	}
	if bd.Shed {
		return 0, fmt.Errorf("bench: quorum seed %d: barrier shed with no admission control configured", q.cfg.Seed)
	}
	ep := q.g.Epoch()
	q.counterAt[ep] = counter
	return ep, nil
}

// invariants checks durable monotonicity, the released watermark, the
// degraded-not-down cap on partitioned links, and the
// exactly-one-primary fencing invariant.
func (q *quorumRun) invariants(where string, dstStore *core.StoreBackend) error {
	d := q.g.Durable()
	if d < q.lastDurable {
		return fmt.Errorf("bench: quorum %s: durable regressed %d -> %d", where, q.lastDurable, d)
	}
	q.lastDurable = d
	for q.srcO.Released(q.g.ID, q.maxReleased+1) {
		q.maxReleased++
	}
	for _, l := range q.links {
		if hi, ok := q.linkHealth(l.name); ok && hi.State == core.BackendDown {
			return fmt.Errorf("bench: quorum %s: link %s marked down (must cap at degraded)", where, l.name)
		}
	}
	type claim struct {
		who string
		gen uint64
	}
	var claims []claim
	var maxGen uint64
	add := func(who string, sb *core.StoreBackend) {
		if sb == nil {
			return
		}
		if gen, primary := sb.Store().PrimaryGen(q.g.ID); primary {
			claims = append(claims, claim{who, gen})
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	add("src", q.srcStore)
	add("dst", dstStore)
	n := 0
	for _, cl := range claims {
		if cl.gen == maxGen {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("bench: quorum %s: %d stores claim primary at max generation %d (want exactly 1: %v)",
			where, n, maxGen, claims)
	}
	return nil
}

// verifyCounterState checks a group restored on k bit-for-bit against
// the counter and pattern captured at epoch.
func (q *quorumRun) verifyCounterState(k *kernel.Kernel, g *core.Group, epoch uint64, where string) error {
	want, ok := q.counterAt[epoch]
	if !ok {
		return fmt.Errorf("bench: quorum %s: no recorded counter for epoch %d", where, epoch)
	}
	p, err := k.Process(g.PIDs()[0])
	if err != nil {
		return fmt.Errorf("bench: quorum %s: %w", where, err)
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return fmt.Errorf("bench: quorum %s: reading counter: %w", where, err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		return fmt.Errorf("bench: quorum %s: counter %d at epoch %d, want %d — restore not bit-identical", where, got, epoch, want)
	}
	buf := make([]byte, vm.PageSize)
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			return fmt.Errorf("bench: quorum %s: paging page %d: %w", where, pg, err)
		}
		ref := recoveryPattern(pg, q.cfg.Seed)
		for i := range buf {
			if buf[i] != ref[i] {
				return fmt.Errorf("bench: quorum %s: page %d byte %d differs — restore not bit-identical", where, pg, i)
			}
		}
	}
	return nil
}

// restoreFromMember restores the member's image at epoch on a scratch
// machine and verifies it bit-identical.
func (q *quorumRun) restoreFromMember(l *quorumLink, epoch uint64, where string) error {
	img, err := l.recv.ImageAt(q.g.ID, epoch)
	if err != nil {
		return fmt.Errorf("bench: quorum %s: member %s epoch %d: %w", where, l.name, epoch, err)
	}
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	ng, _, err := o.RestoreImage(img, 0, core.RestoreOpts{})
	if err != nil {
		return fmt.Errorf("bench: quorum %s: restoring from %s: %w", where, l.name, err)
	}
	if err := q.verifyCounterState(k, ng, epoch, where+" from "+l.name); err != nil {
		return err
	}
	q.rep.RestoresVerified++
	return nil
}

// medianFlush is the median background flush latency over the group's
// non-shed checkpoints.
func medianFlush(g *core.Group) time.Duration {
	var durs []time.Duration
	for _, bd := range g.Breakdowns() {
		if !bd.Shed && bd.FlushTime > 0 {
			durs = append(durs, bd.FlushTime)
		}
	}
	if len(durs) == 0 {
		return 0
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	return durs[len(durs)/2]
}

// QuorumChaosRun executes one quorum chaos schedule and, unless
// SkipBaseline, a paired fault-free all-backends baseline for the
// latency comparison.
func QuorumChaosRun(cfg QuorumChaosConfig) (*QuorumChaosReport, error) {
	cfg = cfg.withDefaults()
	rep, err := runQuorum(cfg, false)
	if err != nil {
		return nil, err
	}
	if !cfg.SkipBaseline {
		base := cfg
		base.LinkDrop, base.LinkDup, base.LinkReorder, base.LinkCorrupt = 0, 0, 0, 0
		base.KillAt, base.PartitionAt = -1, -1
		baseRep, err := runQuorum(base.withDefaults(), true)
		if err != nil {
			return nil, fmt.Errorf("bench: quorum baseline: %w", err)
		}
		rep.BaselineMedian = baseRep.MedianDurable
	}
	return rep, nil
}

// runQuorum is the engine behind QuorumChaosRun: baseline mode keeps
// the identical machine shape (same store, links, slow member) but
// leaves the group on legacy all-backends durability.
func runQuorum(cfg QuorumChaosConfig, baseline bool) (*QuorumChaosReport, error) {
	q := &quorumRun{
		cfg:       cfg,
		rep:       &QuorumChaosReport{Seed: cfg.Seed, Replicas: cfg.Replicas, W: cfg.W},
		baseline:  baseline,
		counterAt: make(map[uint64]uint64),
	}

	// Primary machine: fault-free local store + N replica links, all
	// composed through the shared topology builder.
	tp := NewTopology(netback.LinkFaultConfig{
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	})
	src := tp.Node("quorum-src", cfg.Seed, 0, 0)
	q.srcClock, q.srcK, q.srcO, q.srcStore = src.clock, src.k, src.o, src.sb

	q.rs = netback.NewReplicaSet(cfg.W)
	for i := 0; i < cfg.Replicas; i++ {
		l := tp.Endpoint(fmt.Sprintf("replica%d", i), cfg.Seed*1000003+int64(i)*7919, src)
		if i == cfg.Replicas-1 {
			l.rb.SetLinkLatency(cfg.SlowLinkLatency)
		}
		q.rs.Add(l.name, l.rb, l.recv)
		q.links = append(q.links, l)
	}

	// Workload: the chaos counter plus the patterned working set.
	p, err := q.srcK.Spawn(0, "quorum-app")
	if err != nil {
		return nil, err
	}
	p.SetProgram(&chaosCounter{addr: p.HeapBase()})
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, cfg.Seed)); err != nil {
			return nil, err
		}
	}
	g, err := q.srcO.Persist("quorum-app", p)
	if err != nil {
		return nil, err
	}
	q.g = g
	q.srcO.Attach(g, q.srcStore)
	if baseline {
		for _, sl := range q.rs.Links() {
			q.srcO.Attach(g, sl.RB)
		}
	} else {
		q.rs.AttachAll(q.srcO, g)
	}
	if err := q.srcStore.Store().SetPrimary(g.ID, g.Generation()); err != nil {
		return nil, err
	}
	if err := q.srcStore.Store().Sync(); err != nil {
		return nil, err
	}
	for _, l := range q.links {
		if err := q.resetLink(l); err != nil {
			return nil, err
		}
	}

	killIdx, partIdx := 1, cfg.Replicas-1
	var killed, partitioned *quorumLink
	if cfg.KillAt > 0 && killIdx < len(q.links) {
		killed = q.links[killIdx]
	}
	if cfg.PartitionAt > 0 && partIdx > 0 && partIdx < len(q.links) {
		partitioned = q.links[partIdx]
	}

	for i := 1; i <= cfg.Checkpoints; i++ {
		if killed != nil && i == cfg.KillAt {
			// Kill the replica: sever its link and lose its state (the
			// receiver is replaced by an empty one on restart).
			killed.link.PartitionBoth()
			killed.down = true
			q.rep.Kills++
		}
		if killed != nil && i == cfg.KillAt+cfg.KillLen {
			// Mid-outage: restores from the surviving quorum members
			// must be bit-identical.
			for _, l := range q.links {
				if l == killed || l.down {
					continue
				}
				if floor := l.recv.ContiguousEpoch(q.g.ID); floor == q.g.Durable() {
					if err := q.restoreFromMember(l, floor, fmt.Sprintf("mid-kill checkpoint %d", i)); err != nil {
						return nil, err
					}
				}
			}
			if !baseline && cfg.KillLen > 4 {
				// The dead member must be reported lagging the quorum.
				if err := q.rs.Lagging(q.g.ID, 4); !errors.Is(err, netback.ErrReplicaLagging) {
					return nil, fmt.Errorf("bench: quorum seed %d: Lagging = %v, want ErrReplicaLagging", cfg.Seed, err)
				}
			}
			// Restart: a fresh receiver (empty chains — the kill lost
			// everything), reconnect, and drain the catch-up queue.
			if killed.serving {
				<-killed.serveDone
				killed.serving = false
			}
			killed.pm = vm.NewPhysMem(0)
			killed.recv = netback.NewReceiver(killed.pm, killed.clock)
			q.rs.Links()[killIdx].Recv = killed.recv
			killed.down = false
			if err := q.healLink(killed); err != nil {
				return nil, err
			}
			if got, want := killed.recv.ContiguousEpoch(q.g.ID), q.g.Durable(); got != want {
				return nil, fmt.Errorf("bench: quorum seed %d: restarted replica floor %d != durable %d", cfg.Seed, got, want)
			}
			q.rep.CatchUpEpochs = int64(len(killed.recv.ReplicaEpochs(q.g.ID)))
			q.rep.Heals++
			// The restarted replica bootstraps restorability from the
			// next full checkpoint (the demotion doctrine).
			q.forceFull = true
		}
		if partitioned != nil && i == cfg.PartitionAt {
			partitioned.link.PartitionBoth()
			partitioned.down = true
		}
		if partitioned != nil && i == cfg.PartitionAt+cfg.PartitionLen {
			partitioned.down = false
			if err := q.healLink(partitioned); err != nil {
				return nil, err
			}
			if got, want := partitioned.recv.ContiguousEpoch(q.g.ID), q.g.Durable(); got != want {
				return nil, fmt.Errorf("bench: quorum seed %d: healed replica floor %d != durable %d", cfg.Seed, got, want)
			}
			q.rep.Heals++
		}

		if _, err := q.epoch(); err != nil {
			return nil, fmt.Errorf("bench: quorum seed %d: checkpoint %d: %w", cfg.Seed, i, err)
		}
		if err := q.syncDurable(); err != nil {
			return nil, err
		}
		// Under probabilistic link faults a healthy-scheduled link can
		// drop its connection; keep those converging. Links inside a
		// scripted outage stay down.
		for _, l := range q.links {
			if l.down {
				continue
			}
			if hi, ok := q.linkHealth(l.name); ok && (hi.State != core.BackendHealthy || hi.Pending > 0) {
				if err := q.healLink(l); err != nil {
					return nil, err
				}
			}
		}
		if err := q.invariants(fmt.Sprintf("checkpoint %d", i), nil); err != nil {
			return nil, err
		}
		if !baseline {
			// The quorum availability claim: a dead or partitioned
			// minority never holds back the released watermark.
			if d := q.g.Durable(); d > 0 && q.maxReleased < d-1 {
				return nil, fmt.Errorf("bench: quorum seed %d: checkpoint %d: released watermark %d lags durable %d under a minority outage",
					cfg.Seed, i, q.maxReleased, d)
			}
		}
	}
	q.rep.Checkpoints = cfg.Checkpoints
	q.rep.Durable = q.g.Durable()
	q.rep.Released = q.maxReleased
	q.rep.MedianDurable = medianFlush(q.g)
	for _, l := range q.links {
		q.rep.Partitions += l.rb.Partitions()
		q.rep.LinkDropped += l.link.DroppedCount()
		q.rep.LinkInjected += l.link.InjectedCount()
		sent, skipped, resends := l.rb.DeltaStats()
		q.rep.PagesSent += sent
		q.rep.PagesSkipped += skipped
		q.rep.NeedResends += resends
		q.rep.ReceiverNeeds += l.recv.NeedsSent()
	}
	if baseline {
		return q.rep, nil
	}

	// Disaster: the primary machine is declared permanently dead. A
	// quorum promotion on a standby elects the member with the highest
	// contiguous acked floor, fences every member, read-repairs the
	// laggards, and resumes execution — after which a restore from ANY
	// member must be bit-identical.
	lineage := q.g.ID
	preFloor := q.g.Durable()
	dstClock := storage.NewClock()
	dstK := kernel.NewWith(dstClock, vm.NewPhysMem(0))
	dstO := core.NewOrchestrator(dstK)
	dstO.FlushWorkers = 1
	dstStore := core.NewStoreBackend(objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, dstClock), dstClock), dstK.Mem, dstClock)
	prep, err := dstO.PromoteQuorum(q.rs.Sources(), lineage, dstStore, core.RestoreOpts{})
	if err != nil {
		return nil, fmt.Errorf("bench: quorum seed %d: promotion: %w", cfg.Seed, err)
	}
	if prep.Floor != preFloor {
		return nil, fmt.Errorf("bench: quorum seed %d: promotion floor %d, want durable %d", cfg.Seed, prep.Floor, preFloor)
	}
	if prep.Floor < q.maxReleased {
		return nil, fmt.Errorf("bench: quorum seed %d: promotion floor %d loses released output (watermark %d)",
			cfg.Seed, prep.Floor, q.maxReleased)
	}
	if err := q.verifyCounterState(dstK, prep.Group, prep.Floor, "promotion"); err != nil {
		return nil, err
	}
	q.rep.PromoteGen = prep.Gen
	q.rep.Floor = prep.Floor
	q.rep.Elected = prep.Elected
	q.rep.Repaired = prep.Repaired
	if err := q.invariants("after promotion", dstStore); err != nil {
		return nil, err
	}
	// Every member — including the killed-and-repaired one — restores
	// the promoted floor bit-identically.
	for _, l := range q.links {
		if err := q.restoreFromMember(l, prep.Floor, "post-promotion"); err != nil {
			return nil, err
		}
	}
	// And every member's fence now rejects the stale generation.
	for _, l := range q.links {
		if fg := l.recv.FenceGen(lineage); fg != prep.Gen {
			return nil, fmt.Errorf("bench: quorum seed %d: member %s fence %d, want %d", cfg.Seed, l.name, fg, prep.Gen)
		}
	}
	return q.rep, nil
}

// QuorumPoint is one cell of the quorum sweep matrix.
type QuorumPoint struct {
	Replicas      int
	W             int
	Rate          float64
	Checkpoints   int
	Durable       uint64
	MedianDurable time.Duration
	CatchUpEpochs int64
	PagesSent     int64
	PagesSkipped  int64
	LinkInjected  int64
}

// QuorumSweep runs the quorum matrix: replica count × link-fault rate,
// recording durable latency and catch-up volume. Faulty cells heal
// their links as they go; scripted kill/partition windows are only run
// on sets large enough to have a minority (N >= 3).
func QuorumSweep(ckpts int, replicaCounts []int, rates []float64, seed int64) ([]QuorumPoint, error) {
	var out []QuorumPoint
	for _, n := range replicaCounts {
		for _, rate := range rates {
			cfg := QuorumChaosConfig{
				Seed:          seed,
				Replicas:      n,
				W:             n/2 + 1,
				Checkpoints:   ckpts,
				LinkDrop:      rate,
				LinkDup:       rate,
				LinkReorder:   rate,
				LinkCorrupt:   rate / 2,
				SkipBaseline:  true,
				StepsPerEpoch: 2,
			}
			if n < 3 {
				cfg.KillAt, cfg.PartitionAt = -1, -1
			}
			rep, err := QuorumChaosRun(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: quorum sweep n=%d rate=%g: %w", n, rate, err)
			}
			out = append(out, QuorumPoint{
				Replicas:      n,
				W:             cfg.W,
				Rate:          rate,
				Checkpoints:   rep.Checkpoints,
				Durable:       rep.Durable,
				MedianDurable: rep.MedianDurable,
				CatchUpEpochs: rep.CatchUpEpochs,
				PagesSent:     rep.PagesSent,
				PagesSkipped:  rep.PagesSkipped,
				LinkInjected:  rep.LinkInjected,
			})
		}
	}
	return out, nil
}
