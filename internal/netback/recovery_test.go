package netback

import (
	"bytes"
	"io"
	"testing"

	"aurora/internal/core"
	"aurora/internal/objstore"
	"aurora/internal/storage"
)

// TestRecoveryReceiverServesAsRestorePeer: a netback replica registered
// as a restore peer serves demand-paged blocks by content hash when the
// local store dies mid-lazy-restore. This is the cross-machine half of
// the self-healing restore: any backend holding bit-identical blocks
// can stand in for a failed primary.
func TestRecoveryReceiverServesAsRestorePeer(t *testing.T) {
	src := newMachine()
	p, g := spawn(t, src)

	// Primary: an object store on a fault-injectable device.
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, src.clock), src.clock,
		storage.FaultConfig{Seed: 1})
	sb := core.NewStoreBackend(objstore.Create(fd, src.clock), src.k.Mem, src.clock)
	src.o.Attach(g, sb)

	// Replica: continuous replication to a receiver over a pipe.
	pr, pw := io.Pipe()
	sender := NewSender(pw, src.clock)
	src.o.Attach(g, NewBackend(sender))
	recv := NewReceiver(src.k.Mem, src.clock)
	serveDone := make(chan error, 1)
	go func() {
		_, err := recv.Serve(pr)
		serveDone <- err
	}()

	p.WriteMem(p.HeapBase()+8, []byte("replica saves the day"))
	for i := 0; i < 10; i++ {
		src.k.Run(3)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	sender.Close()
	pw.Close()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}

	// The receiver becomes a failover peer for this group's restores.
	src.o.AddRestorePeer(g, recv)

	src.k.Exit(p, 0) // only the restored incarnation runs on
	ng, bd, err := src.o.Restore(g, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if !bd.Lazy {
		t.Fatal("restore was not lazy")
	}

	// The local store dies before the first demand fault: every page
	// must come off the replica.
	fd.Down()
	np, err := src.k.Process(ng.PIDs()[0])
	if err != nil {
		t.Fatal(err)
	}
	var c [1]byte
	if err := np.ReadMem(np.HeapBase(), c[:]); err != nil {
		t.Fatalf("demand paging through the replica: %v", err)
	}
	if c[0] != 30 {
		t.Fatalf("restored counter = %d, want 30", c[0])
	}
	buf := make([]byte, 21)
	if err := np.ReadMem(np.HeapBase()+8, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte("replica saves the day")) {
		t.Fatalf("restored data = %q", buf)
	}
	if stats := ng.RecoveryStats(); stats.Failovers == 0 {
		t.Fatal("no page was served by the replica")
	}
	// The application keeps running against replica-served state.
	src.k.Run(3)
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 33 {
		t.Fatalf("counter after failover run = %d, want 33", c[0])
	}
}
