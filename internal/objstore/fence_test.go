package objstore

import (
	"encoding/binary"
	"errors"
	"testing"

	"aurora/internal/storage"
)

// TestFenceCheckGen pins the three CheckGen outcomes: equal passes,
// newer adopts (demoting a primary claim), older is rejected.
func TestFenceCheckGen(t *testing.T) {
	s := testStore(t)
	// Unfenced lineage: generation 0 (legacy) and any positive
	// generation pass.
	if err := s.CheckGen(1, 0); err != nil {
		t.Fatalf("unfenced gen 0: %v", err)
	}
	if err := s.SetPrimary(1, 2); err != nil {
		t.Fatalf("SetPrimary: %v", err)
	}
	if gen, primary := s.PrimaryGen(1); gen != 2 || !primary {
		t.Fatalf("PrimaryGen = (%d, %v), want (2, true)", gen, primary)
	}
	// Equal generation passes and keeps the primary claim.
	if err := s.CheckGen(1, 2); err != nil {
		t.Fatalf("equal gen: %v", err)
	}
	if _, primary := s.PrimaryGen(1); !primary {
		t.Fatal("equal-generation flush demoted the primary")
	}
	// Stale generation is rejected with the typed error.
	if err := s.CheckGen(1, 1); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale gen error = %v, want ErrStaleGeneration", err)
	}
	// A newer generation is adopted and demotes the primary claim:
	// someone else was promoted.
	if err := s.CheckGen(1, 3); err != nil {
		t.Fatalf("newer gen: %v", err)
	}
	if gen, primary := s.PrimaryGen(1); gen != 3 || primary {
		t.Fatalf("after adopt PrimaryGen = (%d, %v), want (3, false)", gen, primary)
	}
	// SetPrimary cannot move the fence backwards either.
	if err := s.SetPrimary(1, 2); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("stale SetPrimary error = %v, want ErrStaleGeneration", err)
	}
	if got := s.PrimaryLineages(); len(got) != 0 {
		t.Fatalf("PrimaryLineages = %v, want none", got)
	}
}

// TestFencePersistence: the fencing table survives Sync/Open and the
// superblock header carries the fence high-water mark.
func TestFencePersistence(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)
	s := Create(dev, clock)
	if err := s.SetPrimary(7, 3); err != nil {
		t.Fatal(err)
	}
	s.AdoptFence(9, 5)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}

	// The published superblock slot carries the high-water mark.
	var buf [sbSize]byte
	if _, err := dev.ReadAt(buf[:], slotOffset(s.Generation())); err != nil {
		t.Fatal(err)
	}
	if hw := binary.LittleEndian.Uint64(buf[36:]); hw != 5 {
		t.Fatalf("superblock fence high-water = %d, want 5", hw)
	}

	re, err := Open(dev, storage.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if gen, primary := re.PrimaryGen(7); gen != 3 || !primary {
		t.Fatalf("reopened PrimaryGen(7) = (%d, %v), want (3, true)", gen, primary)
	}
	if gen, primary := re.PrimaryGen(9); gen != 5 || primary {
		t.Fatalf("reopened PrimaryGen(9) = (%d, %v), want (5, false)", gen, primary)
	}
	if err := re.CheckGen(7, 2); !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("reopened store forgot the fence: %v", err)
	}
	if hw := re.FenceHighWater(); hw != 5 {
		t.Fatalf("FenceHighWater = %d, want 5", hw)
	}
}
