package core

import (
	"fmt"
	"time"

	"aurora/internal/storage"
)

// CheckpointBreakdown is the stop-time decomposition the paper reports
// in Table 3. All durations are virtual (cost-model) time.
type CheckpointBreakdown struct {
	Epoch uint64
	Full  bool
	// MetadataCopy is the time spent serializing kernel object
	// metadata inside the barrier.
	MetadataCopy time.Duration
	// LazyDataCopy is the time spent applying COW tracking (bulk PTE
	// write-protection) inside the barrier — no data is copied.
	LazyDataCopy time.Duration
	// StopTime is the total time the application was paused:
	// metadata + lazy data copy + scheduler overhead.
	StopTime time.Duration
	// FlushTime is the background flush duration (the application is
	// already running again; external output is held until it ends).
	FlushTime time.Duration

	PagesCaptured int
	SwapPages     int
	Objects       int
	MetaBytes     int
	PTEOps        int64

	// Shed reports that admission control skipped this barrier under
	// space pressure: no epoch was minted and nothing was captured or
	// queued. Epoch holds the group's (unchanged) current epoch.
	Shed bool
}

// String formats the breakdown like the paper's table rows.
func (b CheckpointBreakdown) String() string {
	mode := "full"
	if !b.Full {
		mode = "incremental"
	}
	if b.Shed {
		mode = "shed"
	}
	return fmt.Sprintf("ckpt[%s] metadata=%s data=%s stop=%s flush=%s pages=%d",
		mode, storage.Micros(b.MetadataCopy), storage.Micros(b.LazyDataCopy),
		storage.Micros(b.StopTime), storage.Micros(b.FlushTime), b.PagesCaptured)
}

// RestoreBreakdown is the restore-latency decomposition of Table 4.
type RestoreBreakdown struct {
	// ObjectStoreRead is the time to bring the checkpoint in from the
	// object store (zero for in-memory images).
	ObjectStoreRead time.Duration
	// MemoryState is the time to rebuild the memory hierarchy
	// (COW-sharing against the image; no page copies on the lazy
	// path).
	MemoryState time.Duration
	// MetadataState is the time to recreate every kernel object.
	MetadataState time.Duration
	// Total is the end-to-end restore latency.
	Total time.Duration

	Lazy          bool
	Prefetched    int
	PagesRestored int
	// Shared counts pages COW-shared with the image (no copy).
	Shared  int
	Objects int

	// FallbackFrom is the epoch the restore originally targeted when it
	// had to fall back to an older one (0 when no fallback happened).
	FallbackFrom uint64
	// Quarantined counts epochs skipped or newly poisoned on the way to
	// the epoch that finally restored.
	Quarantined int
	// Validated reports that the full integrity pre-pass ran.
	Validated bool
}

// String formats the breakdown like the paper's table rows.
func (b RestoreBreakdown) String() string {
	return fmt.Sprintf("restore read=%s mem=%s meta=%s total=%s lazy=%v",
		storage.Micros(b.ObjectStoreRead), storage.Micros(b.MemoryState),
		storage.Micros(b.MetadataState), storage.Micros(b.Total), b.Lazy)
}
