package core

import (
	"errors"
	"sort"
)

// This file implements quorum durability: the AWS-Aurora idea of
// "quorum for fault-tolerance without too much waiting" applied to the
// flush pipeline. A group with a QuorumPolicy retires an epoch — and
// advances g.durable, and with it external consistency — as soon as W
// of its non-ephemeral backends have durably acknowledged it, instead
// of waiting for all of them. The stragglers keep catching up in
// parallel through the per-backend health machinery (catch-up queues,
// probes, the replica resume handshake); a degraded minority never
// blocks admission or retirement.
//
// With no policy set (the zero value) every legacy semantic is
// preserved exactly: durability means every backend acked.

// QuorumPolicy configures quorum durability for one group.
type QuorumPolicy struct {
	// W is the write quorum: the number of non-ephemeral backends that
	// must acknowledge an epoch before it retires. 0 disables quorum
	// (all-backends durability, the legacy rule). W larger than the
	// number of attached non-ephemeral backends is clamped down, so a
	// 2-of-3 group that loses a backend degenerates to 2-of-2, never to
	// an unsatisfiable quorum.
	W int
}

// ErrQuorumLost is wrapped into a flush error when fewer than W
// non-ephemeral backends acknowledged an epoch: the epoch must not
// retire, because a minority of acks cannot guarantee any future
// election sees it. Callers select on it with errors.Is; the causal
// per-backend failure (ErrBackendDown, netback disconnects, fencing
// rejections) stays on the chain.
var ErrQuorumLost = errors.New("core: quorum lost")

// SetQuorum installs (or, with the zero policy, removes) the group's
// quorum policy. Safe to call while checkpoints are in flight: epochs
// already handed to the pipeline are judged under the policy in force
// when their fan-out completes.
func (g *Group) SetQuorum(p QuorumPolicy) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if p.W < 0 {
		p.W = 0
	}
	g.quorum = p
}

// Quorum returns the group's quorum policy and whether one is set.
func (g *Group) Quorum() (QuorumPolicy, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quorum, g.quorum.W > 0
}

// quorumW returns the configured write quorum (0 = legacy
// all-backends durability).
func (g *Group) quorumW() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.quorum.W
}

// quorumNeed clamps the write quorum to the attached non-ephemeral
// backend count: a replica set that shrank below W still makes
// progress on what remains rather than wedging on an unsatisfiable
// quorum.
func quorumNeed(w, nonEph int) int {
	if w > nonEph {
		return nonEph
	}
	return w
}

// QuorumStatus reports the group's quorum configuration and live ack
// state (the `sls ps` QUORUM column): the write quorum W (0 when no
// policy is set), how many non-ephemeral backends are fully caught up
// at the durable frontier (no catch-up queue), and the non-ephemeral
// backend count N.
func (g *Group) QuorumStatus() (w, acked, n int) {
	g.mu.Lock()
	w = g.quorum.W
	backends := make([]Backend, len(g.backends))
	copy(backends, g.backends)
	g.mu.Unlock()
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	for _, b := range backends {
		if b.Ephemeral() {
			continue
		}
		n++
		if h := g.health[b]; h == nil || len(h.pending) == 0 {
			acked++
		}
	}
	return w, acked, n
}

// quorumFloor returns the highest epoch floor guaranteed to be held by
// at least `need` of the given per-backend floors: the need-th highest
// value. Used by Replicated() (output release gates on the quorum
// frontier) and by the reclaimer (a lagging minority must not pin
// retention below what any surviving quorum already holds).
func quorumFloor(floors []uint64, need int) uint64 {
	if len(floors) == 0 {
		return 0
	}
	if need < 1 {
		need = 1
	}
	if need > len(floors) {
		need = len(floors)
	}
	sorted := append([]uint64(nil), floors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	return sorted[need-1]
}
