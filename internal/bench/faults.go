package bench

import (
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func init() {
	kernel.RegisterProgram("bench-fault-touch", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "bench-fault-touch",
			Fn: func(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error { return nil }}, nil
	})
}

// FaultPoint is one datapoint of the fault-rate sweep: the checkpoint
// pipeline driven with a given per-write fault probability on the
// primary device.
type FaultPoint struct {
	Rate        float64       // per-op injection probability on the primary
	Checkpoints int           // epochs checkpointed
	Durable     uint64        // last externally-consistent epoch at the end
	Injected    int64         // faults the device actually injected
	Retries     int64         // extra flush attempts across all backends
	Resyncs     int64         // epochs replayed from catch-up queues
	VirtualTime time.Duration // total modeled time for the run
	// CkptPerVSec is checkpoint throughput against the virtual clock —
	// the number the fault matrix tracks as rates rise.
	CkptPerVSec float64
}

// FaultSweep runs the same checkpoint workload against a two-backend
// group (a fault-injected primary plus a clean secondary) at each fault
// rate, and reports how throughput and recovery effort respond. Every
// run must end fully recovered: durable through the last epoch with
// all catch-up queues drained, or the sweep errors.
func FaultSweep(ckpts int, rates []float64, seed int64) ([]FaultPoint, error) {
	points := make([]FaultPoint, 0, len(rates))
	for _, rate := range rates {
		clock := storage.NewClock()
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := core.NewOrchestrator(k)

		fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
			storage.FaultConfig{Seed: seed, WriteErr: rate, SyncErr: rate})
		primary := core.NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)
		secondary := core.NewStoreBackend(objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock), k.Mem, clock)

		p, err := k.Spawn(0, "fault-touch")
		if err != nil {
			return nil, err
		}
		p.SetProgram(&kernel.FuncProgram{Name: "bench-fault-touch",
			Fn: func(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
				var b [8]byte
				if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
					return err
				}
				b[0]++
				return p.WriteMem(p.HeapBase(), b[:])
			}})
		g, err := o.Persist("fault-touch", p)
		if err != nil {
			return nil, err
		}
		o.Attach(g, primary)
		o.Attach(g, secondary)

		start := clock.Now()
		for i := 0; i < ckpts; i++ {
			if _, err := k.Run(2); err != nil {
				return nil, err
			}
			if _, err := o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
				return nil, err
			}
		}
		if err := o.Sync(g); err != nil {
			return nil, fmt.Errorf("bench: fault sweep at rate %g did not recover: %w", rate, err)
		}

		pt := FaultPoint{
			Rate:        rate,
			Checkpoints: ckpts,
			Durable:     g.Durable(),
			Injected:    fd.InjectedCount(),
			VirtualTime: clock.Now() - start,
		}
		for _, info := range g.Health() {
			if info.State != core.BackendHealthy || info.Pending != 0 {
				return nil, fmt.Errorf("bench: fault sweep at rate %g left %s %s with %d pending",
					rate, info.Name, info.State, info.Pending)
			}
			pt.Retries += info.Retries
			pt.Resyncs += info.Resyncs
		}
		if pt.Durable != uint64(ckpts) {
			return nil, fmt.Errorf("bench: fault sweep at rate %g durable %d, want %d",
				rate, pt.Durable, ckpts)
		}
		if pt.VirtualTime > 0 {
			pt.CkptPerVSec = float64(ckpts) / pt.VirtualTime.Seconds()
		}
		points = append(points, pt)
	}
	return points, nil
}
