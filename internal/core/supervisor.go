package core

import (
	"sync"
	"time"

	"aurora/internal/kernel"
)

// Supervisor is the SLS's crash-recovery daemon: it watches
// persistence groups for processes that died with an error and
// restores them from the newest good durable epoch. This closes the
// paper's loop — applications persist continuously, so a crash costs
// at most one epoch of work and no application-level recovery code:
// the supervisor simply restores the last checkpoint and resumes.
//
// Restarts are budgeted: each recovery backs off exponentially
// (charged to the virtual clock) and a group that keeps crashing
// faster than its budget window refills is declared a crash loop and
// given up on, rather than burning the machine re-restoring a
// checkpoint whose state deterministically re-crashes.
//
// The supervisor is polling-based: the simulation is cooperative, so
// Poll is called from the driving loop (or a CLI command) rather than
// from a background thread racing the virtual clock.

// SupervisorConfig tunes restart policy. Zero values select defaults.
type SupervisorConfig struct {
	// MaxRestarts is the restart budget per window (default 5).
	MaxRestarts int
	// BackoffBase is the first restart's backoff; doubles per restart
	// within a window (default 100µs virtual).
	BackoffBase time.Duration
	// Window is the virtual-time span after which a quiet group's
	// restart budget refills (default 1s virtual).
	Window time.Duration
	// Opts is applied to every recovery restore. Validate is forced on:
	// a supervisor restoring a crashed group must not resurrect it from
	// a corrupt image.
	Opts RestoreOpts
}

func (c SupervisorConfig) maxRestarts() int {
	if c.MaxRestarts > 0 {
		return c.MaxRestarts
	}
	return 5
}

func (c SupervisorConfig) backoffBase() time.Duration {
	if c.BackoffBase > 0 {
		return c.BackoffBase
	}
	return 100 * time.Microsecond
}

func (c SupervisorConfig) window() time.Duration {
	if c.Window > 0 {
		return c.Window
	}
	return time.Second
}

// SupervisorEvent records one recovery attempt.
type SupervisorEvent struct {
	Group    uint64 // the crashed group
	NewGroup uint64 // the restored group (0 when the attempt failed)
	Restarts int    // restarts consumed in the current window, inclusive
	GaveUp   bool   // crash loop: budget exhausted, watch dropped
	Fenced   bool   // fenced elsewhere (migrated away): watch dropped, no restore
	Exempt   bool   // evacuation-initiated: restored without charging the budget
	Err      error  // non-nil when the restore itself failed
}

type watchState struct {
	g           *Group
	restarts    int
	windowStart time.Duration
	backoff     time.Duration
	gaveUp      bool
}

// Supervisor watches groups and auto-restores crashed ones.
type Supervisor struct {
	o   *Orchestrator
	cfg SupervisorConfig

	mu      sync.Mutex
	watches map[uint64]*watchState // keyed by the watched group's ID
	events  []SupervisorEvent
	exempt  func(*Group) bool // evacuation predicate; see ExemptEvacuations
}

// NewSupervisor creates a supervisor over the orchestrator's groups.
func NewSupervisor(o *Orchestrator, cfg SupervisorConfig) *Supervisor {
	cfg.Opts.Validate = true
	return &Supervisor{o: o, cfg: cfg, watches: make(map[uint64]*watchState)}
}

// Watch adds a group to the supervised set. The watch follows the
// group across recoveries: when a crash is restored, the new group is
// watched in the old one's place.
func (s *Supervisor) Watch(g *Group) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.watches[g.ID]; ok {
		return
	}
	s.watches[g.ID] = &watchState{
		g:           g,
		windowStart: s.o.K.Clock.Now(),
		backoff:     s.cfg.backoffBase(),
	}
}

// ExemptEvacuations installs a predicate identifying groups whose
// crash cause is a dying or draining *store* rather than the
// application itself. Recoveries of exempt groups restore without
// charging the crash-loop restart budget: the budget exists to stop a
// deterministically re-crashing workload from burning the machine, and
// an evacuation-initiated crash says nothing about the workload — a
// mass evacuation that exhausted per-lineage budgets would strand
// perfectly healthy groups in crash-loop give-up. The placement
// control plane installs this when it adopts the store.
func (s *Supervisor) ExemptEvacuations(pred func(*Group) bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.exempt = pred
}

// Unwatch drops a group from the supervised set.
func (s *Supervisor) Unwatch(g *Group) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.watches, g.ID)
}

// Release atomically removes a group from the supervised set as part
// of a migration handover, reporting whether it was watched. Unlike
// Unwatch it exists to be called by the migrator at the fencing
// point: a group whose lineage now lives on another machine must
// never be auto-restored here, even if its corpse later reports a
// crash. (Poll independently refuses fenced groups, so the release
// and a racing crash-restart cannot resurrect a zombie either way.)
func (s *Supervisor) Release(g *Group) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.watches[g.ID]
	delete(s.watches, g.ID)
	return ok
}

// Watched lists the IDs of currently supervised groups (crash-looped
// groups that were given up on are excluded).
func (s *Supervisor) Watched() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]uint64, 0, len(s.watches))
	for id, ws := range s.watches {
		if !ws.gaveUp {
			out = append(out, id)
		}
	}
	return out
}

// Events returns every recovery event recorded so far.
func (s *Supervisor) Events() []SupervisorEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]SupervisorEvent(nil), s.events...)
}

// crashed reports whether every member process of the group has
// exited and at least one exited with an error. A group whose members
// all exited cleanly is done, not crashed.
func (s *Supervisor) crashed(g *Group) bool {
	pids := g.PIDs()
	if len(pids) == 0 {
		return false
	}
	sawError := false
	for _, pid := range pids {
		p, err := s.o.K.Process(pid)
		if err != nil {
			// Reaped: gone from the process table. Treat like a clean
			// exit unless another member says otherwise.
			continue
		}
		if p.State() != kernel.ProcZombie {
			return false
		}
		if p.ExitCode != 0 {
			sawError = true
		}
	}
	return sawError
}

// Poll scans the supervised groups once, restoring any that crashed.
// It returns the events generated by this scan.
func (s *Supervisor) Poll() []SupervisorEvent {
	s.mu.Lock()
	pending := make([]*watchState, 0, len(s.watches))
	for _, ws := range s.watches {
		if !ws.gaveUp {
			pending = append(pending, ws)
		}
	}
	s.mu.Unlock()

	var out []SupervisorEvent
	for _, ws := range pending {
		if _, _, fenced := ws.g.Fenced(); fenced {
			// The lineage was handed to another machine (migration or
			// promotion) after this group was watched: restoring it here
			// would resurrect a zombie copy that every store and replica
			// will fence anyway. Drop the watch instead.
			s.mu.Lock()
			delete(s.watches, ws.g.ID)
			s.mu.Unlock()
			out = append(out, SupervisorEvent{Group: ws.g.ID, Fenced: true})
			continue
		}
		if !s.crashed(ws.g) {
			continue
		}
		ev := s.recover(ws)
		out = append(out, ev)
	}
	if len(out) > 0 {
		s.mu.Lock()
		s.events = append(s.events, out...)
		s.mu.Unlock()
	}
	return out
}

// recover runs one recovery attempt for a crashed group.
func (s *Supervisor) recover(ws *watchState) SupervisorEvent {
	clock := s.o.K.Clock
	now := clock.Now()
	if now-ws.windowStart > s.cfg.window() {
		// The group ran quietly past a full window: refill the budget.
		ws.restarts = 0
		ws.windowStart = now
		ws.backoff = s.cfg.backoffBase()
	}
	s.mu.Lock()
	pred := s.exempt
	s.mu.Unlock()
	exempt := pred != nil && pred(ws.g)
	if !exempt {
		if ws.restarts >= s.cfg.maxRestarts() {
			ws.gaveUp = true
			s.mu.Lock()
			delete(s.watches, ws.g.ID)
			s.mu.Unlock()
			return SupervisorEvent{Group: ws.g.ID, Restarts: ws.restarts, GaveUp: true}
		}

		// Crash-loop backoff, charged to virtual time: a hot-looping
		// group pays increasing delay before each resurrection.
		clock.Advance(ws.backoff)
		ws.backoff *= 2
		ws.restarts++
	}

	// Re-check the fence after the backoff: a migration handover racing
	// this recovery may have fenced the group between the Poll scan and
	// here, and restoring past that point would split the brain.
	if _, _, fenced := ws.g.Fenced(); fenced {
		s.mu.Lock()
		delete(s.watches, ws.g.ID)
		s.mu.Unlock()
		return SupervisorEvent{Group: ws.g.ID, Restarts: ws.restarts, Fenced: true}
	}

	old := ws.g
	ng, _, err := s.o.Restore(old, 0, s.cfg.Opts)
	if err != nil {
		return SupervisorEvent{Group: old.ID, Restarts: ws.restarts, Exempt: exempt, Err: err}
	}
	// Reap the corpse processes and follow the watch to the new group.
	for _, pid := range old.PIDs() {
		if p, perr := s.o.K.Process(pid); perr == nil && p.State() == kernel.ProcZombie {
			_ = s.o.K.Reap(p)
		}
	}
	s.mu.Lock()
	delete(s.watches, old.ID)
	ws.g = ng
	s.watches[ng.ID] = ws
	s.mu.Unlock()
	return SupervisorEvent{Group: old.ID, NewGroup: ng.ID, Restarts: ws.restarts, Exempt: exempt}
}
