// Database: Aurora as a drop-in persistence engine (§4).
//
// The same mini-Redis runs under three durability engines — the
// classic append-only file, the BGSAVE fork snapshot, and the Aurora
// port (sls_ntflush + sls_checkpoint) — and the LSM store trades its
// write-ahead log for the NT log. Aurora's engines need no changes to
// the data structures and beat the baselines' costs.
//
//	go run ./examples/database
package main

import (
	"fmt"
	"log"

	"aurora/internal/apps/kvlsm"
	"aurora/internal/apps/redis"
	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/slsfs"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

type machine struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	api   *core.API
	objs  *objstore.Store
	fs    *slsfs.FS
}

func newMachine() *machine {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	objs := objstore.Create(storage.NewOptaneArray(4, clock), clock)
	fs := slsfs.New(objs, 1000)
	o.AttachFS(fs)
	return &machine{clock: clock, k: k, o: o, api: core.NewAPI(o), objs: objs, fs: fs}
}

func main() {
	const ops = 300
	val := make([]byte, 256)

	// --- mini-Redis under AOF (baseline) ---
	m1 := newMachine()
	aof, err := redis.NewAOF(m1.fs, "/appendonly.aof", 1)
	if err != nil {
		log.Fatal(err)
	}
	p1, st1, err := redis.Spawn(m1.k, 0, "/redis.sock", 1024, 4<<20, aof)
	if err != nil {
		log.Fatal(err)
	}
	from := m1.clock.Now()
	for i := 0; i < ops; i++ {
		key := []byte(fmt.Sprintf("user:%04d", i))
		st1.Set(key, val)
		aof.OnMutation(m1.k, p1, append([]byte("SET "), key...))
	}
	aofPerOp := (m1.clock.Now() - from) / ops
	fmt.Printf("redis + AOF:     %s/op durable (%d fsyncs, %d log bytes)\n",
		storage.Micros(aofPerOp), aof.Syncs, aof.Bytes)

	// --- mini-Redis under the Aurora port ---
	m2 := newMachine()
	eng := redis.NewAurora(m2.api, 100)
	p2, st2, err := redis.Spawn(m2.k, 0, "/redis.sock", 1024, 4<<20, eng)
	if err != nil {
		log.Fatal(err)
	}
	g2, _ := m2.o.Persist("redis", p2)
	m2.o.Attach(g2, core.NewStoreBackend(m2.objs, m2.k.Mem, m2.clock))
	if _, err := m2.o.Checkpoint(g2, core.CheckpointOpts{}); err != nil {
		log.Fatal(err)
	}
	from = m2.clock.Now()
	for i := 0; i < ops; i++ {
		key := []byte(fmt.Sprintf("user:%04d", i))
		st2.Set(key, val)
		if err := eng.OnMutation(m2.k, p2, append([]byte("SET "), key...)); err != nil {
			log.Fatal(err)
		}
	}
	auroraPerOp := (m2.clock.Now() - from) / ops
	fmt.Printf("redis + Aurora:  %s/op durable (%d checkpoints, %d NT appends) — %.1fx faster, zero persistence code in the store\n",
		storage.Micros(auroraPerOp), eng.Checkpoints, eng.LogAppends,
		float64(aofPerOp)/float64(auroraPerOp))

	// Crash the Aurora instance and recover: restore + NT replay.
	st2.Set([]byte("after-last-ckpt"), []byte("tail-write"))
	eng.OnMutation(m2.k, p2, []byte("SET after-last-ckpt tail-write"))
	m2.k.Exit(p2, 137)
	m2.k.Reap(p2)
	ng, replayed, err := eng.Recover(g2)
	if err != nil {
		log.Fatal(err)
	}
	np, _ := m2.k.Process(ng.PIDs()[0])
	rst, _ := redis.Attach(np, np.HeapBase())
	v, err := rst.Get([]byte("after-last-ckpt"))
	if err != nil {
		log.Fatal("post-checkpoint write lost: ", err)
	}
	fmt.Printf("redis crash recovery: restored + %d NT entries replayed; tail write = %q\n\n", replayed, v)

	// --- LSM store: WAL vs Aurora NT log ---
	m3 := newMachine()
	wdb, err := kvlsm.Open(m3.fs, "/waldb", kvlsm.Options{FsyncEvery: 1})
	if err != nil {
		log.Fatal(err)
	}
	from = m3.clock.Now()
	for i := 0; i < ops; i++ {
		wdb.Put([]byte(fmt.Sprintf("row:%04d", i)), val)
	}
	walPerOp := (m3.clock.Now() - from) / ops
	fmt.Printf("lsm + WAL:       %s/op durable (%d fsyncs)\n", storage.Micros(walPerOp), wdb.WALSyncs)

	m4 := newMachine()
	p4, err := m4.k.Spawn(0, "lsm")
	if err != nil {
		log.Fatal(err)
	}
	p4.SetProgram(&kernel.FuncProgram{Name: "lsm-idle",
		Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }})
	kernel.RegisterProgram("lsm-idle", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "lsm-idle",
			Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }}, nil
	})
	g4, _ := m4.o.Persist("lsm", p4)
	m4.o.Attach(g4, core.NewStoreBackend(m4.objs, m4.k.Mem, m4.clock))
	adb, err := kvlsm.Open(m4.fs, "/auroradb", kvlsm.Options{
		Aurora: &kvlsm.AuroraHooks{API: m4.api, Proc: p4, CheckpointEvery: 100},
	})
	if err != nil {
		log.Fatal(err)
	}
	from = m4.clock.Now()
	for i := 0; i < ops; i++ {
		if err := adb.Put([]byte(fmt.Sprintf("row:%04d", i)), val); err != nil {
			log.Fatal(err)
		}
	}
	auroraLSMPerOp := (m4.clock.Now() - from) / ops
	fmt.Printf("lsm + Aurora:    %s/op durable (NT log instead of WAL) — %.1fx faster\n",
		storage.Micros(auroraLSMPerOp), float64(walPerOp)/float64(auroraLSMPerOp))

	fmt.Println("\ndatabase OK")
}
