package storage

import (
	"errors"
	"testing"
)

// TestCapacityGrowthOnly pins the capacity check to residency growth:
// a device at 100% must keep accepting in-place rewrites of resident
// blocks, or reclamation could never publish its own results
// (superblock slots, reused free-list blocks) on the full device it
// exists to rescue.
func TestCapacityGrowthOnly(t *testing.T) {
	clock := NewClock()
	params := ParamsOptaneNVMe
	params.Capacity = 4 * int64(params.BlockSize)
	d := NewMemDevice(params, clock)
	buf := make([]byte, params.BlockSize)

	for i := int64(0); i < 4; i++ {
		if _, err := d.WriteAt(buf, i*int64(params.BlockSize)); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if got := ResidentBytes(d); got != params.Capacity {
		t.Fatalf("resident %d, want full %d", got, params.Capacity)
	}
	// Full: growth refused, in-place rewrite accepted.
	if _, err := d.WriteAt(buf, 4*int64(params.BlockSize)); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("growth on a full device: %v, want ErrOutOfSpace", err)
	}
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatalf("in-place rewrite on a full device: %v", err)
	}
	// TRIM makes room; growth works again.
	d.Discard(0, int64(params.BlockSize))
	if _, err := d.WriteAt(buf, 4*int64(params.BlockSize)); err != nil {
		t.Fatalf("growth after TRIM: %v", err)
	}
}

// TestSetFullScheduleStability checks that the injectable out-of-space
// mode is a flag, not a probability draw: toggling it on and off must
// not shift the seeded fault timeline, so a space scenario composes
// with a fault scenario without changing which ops fail.
func TestSetFullScheduleStability(t *testing.T) {
	cfg := FaultConfig{Seed: 42, ReadErr: 0.2, WriteErr: 0.2, SyncErr: 0.2}
	plain, _ := newFaulty(cfg)
	toggled, _ := newFaulty(cfg)

	base := runSchedule(plain, 150)

	buf := make([]byte, 4096)
	got := make([]bool, 0, 150)
	for i := 0; i < 150; i++ {
		// Flip the full mode constantly; writes under it fail with
		// ErrOutOfSpace but consume no RNG draws.
		toggled.SetFull(i%10 >= 5)
		var err error
		switch i % 3 {
		case 0:
			_, err = toggled.WriteAt(buf, int64(i)*4096)
			if i%10 >= 5 && err == nil {
				t.Fatalf("op %d: write on a full device succeeded", i)
			}
			if err != nil && i%10 >= 5 && !errors.Is(err, ErrOutOfSpace) && !errors.Is(err, ErrInjected) {
				t.Fatalf("op %d: unexpected error %v", i, err)
			}
		case 1:
			_, err = toggled.ReadAt(buf, int64(i-1)*4096)
		case 2:
			_, err = toggled.Sync()
		}
		got = append(got, err != nil)
	}
	toggled.SetFull(false)

	// Reads and syncs — untouched by full mode — must fail at exactly
	// the same schedule positions as the undisturbed twin.
	for i := range base {
		if i%3 == 0 {
			continue
		}
		if base[i] != got[i] {
			t.Fatalf("op %d: fault schedule shifted (base %v, toggled %v)", i, base[i], got[i])
		}
	}
}

// TestSetFullReadsSurvive pins the degraded-not-dead contract: a full
// device keeps serving reads, unlike a Down device.
func TestSetFullReadsSurvive(t *testing.T) {
	d, _ := newFaulty(FaultConfig{Seed: 1})
	buf := []byte("space pressure")
	if _, err := d.WriteAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	d.SetFull(true)
	if _, err := d.WriteAt(buf, 8192); !errors.Is(err, ErrOutOfSpace) {
		t.Fatalf("write on full device: %v, want ErrOutOfSpace", err)
	}
	got := make([]byte, len(buf))
	if _, err := d.ReadAt(got, 0); err != nil {
		t.Fatalf("read on full device: %v", err)
	}
	if _, err := d.Sync(); err != nil {
		t.Fatalf("sync on full device: %v", err)
	}
	d.SetFull(false)
	if _, err := d.WriteAt(buf, 8192); err != nil {
		t.Fatalf("write after clearing full: %v", err)
	}
}
