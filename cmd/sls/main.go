// Command sls is the Aurora command-line interface of the paper's
// Table 1, operating a simulated Aurora machine. The machine boots
// with the sls session; demo applications are spawned with `boot`,
// and checkpoints can be exported to real files with `send` and
// imported with `recv` — moving applications between sls sessions the
// way `sls send | ssh ... sls recv` moves them between hosts.
//
// Usage:
//
//	sls                      # interactive REPL
//	sls -c "boot counter; persist 1 app; attach app nvme; checkpoint app"
//	echo "script" | sls
//
// Commands (Table 1 plus session helpers):
//
//	persist <pid> <name>      add a process tree to a persistence group
//	attach <group> <backend>  attach a backend: memory|nvme|ssd|hdd
//	detach <group> <backend>  detach a backend
//	checkpoint <group> [name] checkpoint an application (flush is async)
//	sync <group>              wait for the flush pipeline to drain
//	restore <group> [epoch]   restore an application from an image
//	promote <group> <backend> move the primary role to another backend
//	ps                        list applications in Aurora
//	epochs <group> [backend]  list store epochs with quarantine status
//	gc <backend>              run a retention scan, reclaiming old epochs
//	df                        show per-backend space usage and pressure
//	fleet                     show the shard runtime and dedup stats
//	scrub <backend> [source]  verify block hashes, repair rot from a peer
//	send <group> <file>       export an application to a file
//	recv <file>               import an application and restore it
//	place <name>              place a demo app on the multi-store fleet
//	stores                    list fleet stores (domain, state, usage)
//	drain <store>             empty a fleet store, then fence it
//	balance                   move lineages off stores past the watermark
//	autoscale [sub]           elasticity loop: status|tick [n]|out|in [store]
//	signals                   dump the autoscaler's utilization sample window
//	boot <counter|redis>      spawn a demo application
//	run <n>                   run the scheduler for n quanta
//	stat <pid>                show one process
//	help, exit
//
// Exit codes report restore and failover health for scripted use
// (`sls -c ...`): 0 clean, 3 restore fell back past a quarantined
// epoch, 4 restore failed on a corrupt (quarantined) image, 5 restore
// failed because the backing store was down, 6 promotion refused
// because the current primary is still healthy, 7 promotion refused
// because the group was fenced by a newer generation, 8 `df` found a
// backend at or above its emergency space watermark, 10 the operation
// hit a draining store, 11 no feasible placement (anti-affinity,
// liveness, or capacity has no satisfying store), 12 a manual
// `autoscale out`/`autoscale in` refused because another scale action
// is already in flight.
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"

	"aurora/internal/apps/redis"
	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// session is one simulated Aurora machine under CLI control.
type session struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
	api   *core.API
	objs  *objstore.Store
	mem   *core.MemoryBackend

	backends map[string]core.Backend
	rsets    map[uint64]*netback.ReplicaSet // per-group loopback replica sets
	migs     map[uint64]*core.Migrator      // warm standby migrators per group
	out      *bufio.Writer
	code     int // process exit code; restore outcomes set 3/4/5

	// The placement fleet: an in-process multi-store control plane
	// (place/stores/drain/balance), built lazily on first use so the
	// single-machine verbs stay untouched.
	placer *core.Placer
	placed map[string]*core.Placement // by application name
	as     *core.Autoscaler           // elasticity loop over the fleet
}

func newSession(out *bufio.Writer) *session {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	objs := objstore.Create(storage.NewOptaneArray(4, clock), clock)
	s := &session{
		clock:    clock,
		k:        k,
		o:        o,
		api:      core.NewAPI(o),
		objs:     objs,
		mem:      core.NewMemoryBackend(k.Mem, 8),
		backends: make(map[string]core.Backend),
		rsets:    make(map[uint64]*netback.ReplicaSet),
		migs:     make(map[uint64]*core.Migrator),
		out:      out,
	}
	s.backends["memory"] = s.mem
	s.addStore("nvme", objs)
	s.addStore("ssd", objstore.Create(storage.NewMemDevice(storage.ParamsSATASSD, clock), clock))
	s.addStore("hdd", objstore.Create(storage.NewMemDevice(storage.ParamsHDD, clock), clock))
	return s
}

// addStore registers a store backend under name with a default
// retention reclaimer attached, so `gc`/`df` and watermark-driven
// reclamation work out of the box (a no-op on unbounded devices).
func (s *session) addStore(name string, st *objstore.Store) *core.StoreBackend {
	sb := core.NewStoreBackend(st, s.k.Mem, s.clock)
	sb.SetReclaimer(core.NewReclaimer(s.o, sb, core.RetentionPolicy{}, core.Watermarks{}))
	s.backends[name] = sb
	return sb
}

func (s *session) printf(format string, args ...any) {
	fmt.Fprintf(s.out, format, args...)
}

// fleetPrimaryTarget is the resident-primary count each fleet store
// is sized for: the denominator of the UTIL column and the load axis
// of the autoscaler's composite utilization signal.
const fleetPrimaryTarget = 4

// fleet lazily boots the placement fleet: four independent store
// machines across two failure domains, wired through a clean store
// directory, under one placer.
func (s *session) fleet() *core.Placer {
	if s.placer != nil {
		return s.placer
	}
	s.placer = core.NewPlacer(netback.NewDirectory(netback.LinkFaultConfig{}), core.PlacerConfig{
		PrimaryTarget: fleetPrimaryTarget,
	})
	for i := 0; i < 4; i++ {
		if err := s.placer.AddStore(s.buildFleetStore(i)); err != nil {
			panic(err) // static fleet: names and domains are well-formed
		}
	}
	s.placed = make(map[string]*core.Placement)
	return s.placer
}

// buildFleetStore constructs one independent store machine for the
// fleet, alternating failure domains by index.
func (s *session) buildFleetStore(i int) *core.StoreNode {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	return &core.StoreNode{
		Name:   fmt.Sprintf("store%d", i),
		Domain: fmt.Sprintf("rack%d", i%2),
		O:      o,
		SB:     core.NewStoreBackend(st, k.Mem, clock),
		Sup:    core.NewSupervisor(o, core.SupervisorConfig{}),
	}
}

// scaler lazily boots the elasticity loop over the fleet with a warm
// pool of two provisioned spares (store4/store5, one per rack), so
// `autoscale out` has somewhere to grow and `autoscale in` somewhere
// to shrink back from.
func (s *session) scaler() *core.Autoscaler {
	if s.as != nil {
		return s.as
	}
	p := s.fleet()
	s.as = core.NewAutoscaler(p, core.AutoscalerConfig{
		MinStores: 2,
		MaxStores: 6,
	})
	for i := 4; i <= 5; i++ {
		if err := s.as.AddWarmStore(s.buildFleetStore(i)); err != nil {
			panic(err) // static pool: names and domains are well-formed
		}
	}
	return s.as
}

// scaleExitCode maps a failed scale verb to the documented exit
// codes: 12 = another scale action is already in flight, otherwise
// the placement mapping (10/11/1) applies.
func scaleExitCode(err error) int {
	if errors.Is(err, core.ErrScalingInProgress) {
		return 12
	}
	return placeExitCode(err)
}

// placeExitCode maps a failed placement operation to the documented
// exit codes: 10 = store is draining, 11 = no feasible placement
// (anti-affinity, liveness, or capacity has no satisfying store),
// 1 = anything else.
func placeExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, core.ErrDraining):
		return 10
	case errors.Is(err, core.ErrNoFeasiblePlacement):
		return 11
	default:
		return 1
	}
}

// placementRow formats one fleet placement's replica homes.
func placementRow(pl *core.Placement) string {
	var reps []string
	for _, r := range pl.Replicas() {
		reps = append(reps, fmt.Sprintf("%s(%s)", r.Name, r.Domain))
	}
	if len(reps) == 0 {
		return "degraded: no replicas"
	}
	return strings.Join(reps, " ")
}

// counterProg is the demo workload: it increments a heap counter.
type counterProg struct{ addr vm.Addr }

func (c *counterProg) ProgName() string { return "sls-counter" }
func (c *counterProg) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	return e.Bytes()
}
func (c *counterProg) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	var b [8]byte
	if err := p.ReadMem(c.addr, b[:]); err != nil {
		return err
	}
	v := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16
	v++
	b[0], b[1], b[2] = byte(v), byte(v>>8), byte(v>>16)
	return p.WriteMem(c.addr, b[:])
}

func init() {
	kernel.RegisterProgram("sls-counter", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &counterProg{addr: vm.Addr(d.U64())}, nil
	})
}

// storeArg resolves a backend name to its store-backed implementation.
func (s *session) storeArg(name string) (*core.StoreBackend, error) {
	b, ok := s.backends[name]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q", name)
	}
	sb, ok := b.(*core.StoreBackend)
	if !ok {
		return nil, fmt.Errorf("backend %q is not store-backed", name)
	}
	return sb, nil
}

// restoreExitCode maps a failed restore to the documented exit codes,
// so scripts can tell a corrupt image from an unreachable store
// without parsing stderr: 4 = every candidate epoch quarantined,
// 5 = backing store down, 1 = anything else.
func restoreExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, core.ErrEpochQuarantined):
		return 4
	case errors.Is(err, core.ErrBackendDown), errors.Is(err, storage.ErrDeviceDown):
		return 5
	default:
		return 1
	}
}

// promoteExitCode maps a failed promotion to the documented exit
// codes, so failover scripts can tell "refused: primary still up"
// from "refused: somebody already promoted over us": 6 = current
// primary healthy, 7 = fenced by a newer generation, 1 = anything else.
func promoteExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, core.ErrPrimaryHealthy):
		return 6
	case errors.Is(err, core.ErrStaleGeneration):
		return 7
	default:
		return 1
	}
}

// migrateExitCode maps a failed migration to the documented exit
// codes: 7 = fenced by a newer generation (someone else took the
// lineage), 9 = migration aborted (target unreachable or dead — the
// source rolled back and remains primary), 1 = anything else.
func migrateExitCode(err error) int {
	switch {
	case err == nil:
		return 0
	case errors.Is(err, core.ErrStaleGeneration):
		return 7
	case errors.Is(err, core.ErrMigrationAborted):
		return 9
	default:
		return 1
	}
}

// migratorFor builds (or returns the group's cached) live migrator:
// the named loopback replica link carries the stream, the named store
// backend anchors the target side, and the first store attached to the
// group anchors the source.
func (s *session) migratorFor(g *core.Group, replica, store string) (*core.Migrator, error) {
	if m, ok := s.migs[g.ID]; ok {
		return m, nil
	}
	var link *netback.SetLink
	for _, l := range s.replicaSet(g).Links() {
		if l.Name == replica {
			link = l
			break
		}
	}
	if link == nil {
		return nil, fmt.Errorf("group %d has no replica link %q (use: replica %d %s)", g.ID, replica, g.ID, replica)
	}
	if link.Recv == nil {
		return nil, fmt.Errorf("replica %q lives off-machine: cannot anchor a migration target", replica)
	}
	dst, err := s.storeArg(store)
	if err != nil {
		return nil, err
	}
	var src *core.StoreBackend
	for _, b := range g.Backends() {
		if sb, ok := b.(*core.StoreBackend); ok {
			src = sb
			break
		}
	}
	m := &core.Migrator{
		Src: s.o, Dst: s.o, G: g,
		Link:     link.RB,
		Target:   link.Recv,
		SrcStore: src,
		DstStore: dst,
		Cfg:      core.MigratorConfig{Name: g.Name + "-migrated"},
	}
	s.migs[g.ID] = m
	return m, nil
}

// quarColumn renders the group's quarantined epochs for ps: "-" when
// none failed restore validation, else the poisoned epoch numbers.
func quarColumn(g *core.Group) string {
	eps := g.QuarantinedEpochs()
	if len(eps) == 0 {
		return "-"
	}
	parts := make([]string, len(eps))
	for i, ep := range eps {
		parts[i] = strconv.FormatUint(ep, 10)
	}
	return strings.Join(parts, ",")
}

// healthColumn renders a group's per-backend health for ps: one entry
// per backend ("ok", "degraded:N", "down:N" with N missed epochs
// queued for catch-up), or "-" with no backends attached.
func healthColumn(g *core.Group) string {
	infos := g.Health()
	if len(infos) == 0 {
		return "-"
	}
	parts := make([]string, 0, len(infos))
	for _, info := range infos {
		switch info.State {
		case core.BackendHealthy:
			parts = append(parts, "ok")
		default:
			parts = append(parts, fmt.Sprintf("%s:%d", info.State, info.Pending))
		}
	}
	return strings.Join(parts, ",")
}

// quorumColumn renders a group's write-quorum status for ps: "-"
// without a policy, else "a/W:N" — a of the N non-ephemeral backends
// currently ack-complete against a write quorum of W.
func quorumColumn(g *core.Group) string {
	w, acked, n := g.QuorumStatus()
	if w == 0 {
		return "-"
	}
	return fmt.Sprintf("%d/%d:%d", acked, w, n)
}

// replicaSet returns (creating on demand) the group's loopback
// replica set.
func (s *session) replicaSet(g *core.Group) *netback.ReplicaSet {
	rs, ok := s.rsets[g.ID]
	if !ok {
		rs = netback.NewReplicaSet(0)
		s.rsets[g.ID] = rs
	}
	return rs
}

// addReplica wires a named loopback replica link to the group: a
// standby receiver on its own memory, served over an in-process pipe,
// with the acknowledged replica backend attached to the group. History
// already durable on an attached store is backfilled so the new member
// joins current (and its acked floor is contiguous from epoch 1).
func (s *session) addReplica(g *core.Group, name string) (int, error) {
	recv := netback.NewReceiver(vm.NewPhysMem(0), storage.NewClock())
	rb := netback.NewReplicaBackend(s.clock)
	local, remote := net.Pipe()
	go recv.ServeReplica(remote)
	if _, err := rb.Connect(local, g.ID); err != nil {
		return 0, err
	}
	backfilled := 0
	for _, b := range g.Backends() {
		sb, ok := b.(*core.StoreBackend)
		if !ok {
			continue
		}
		for _, ep := range sb.Epochs(g.ID) {
			img, _, err := sb.Load(g.ID, ep)
			if err != nil {
				continue
			}
			if _, err := rb.Flush(img); err != nil {
				return backfilled, err
			}
			backfilled++
		}
		break
	}
	s.replicaSet(g).Add(name, rb, recv)
	s.o.Attach(g, rb)
	return backfilled, nil
}

// useColumn renders a group's worst store-backend space usage for ps:
// the highest used fraction across attached bounded store backends, or
// "-" when every attached store is unbounded (capacity unknown).
func useColumn(g *core.Group) string {
	worst := -1.0
	for _, b := range g.Backends() {
		sb, ok := b.(*core.StoreBackend)
		if !ok || sb.Reclaimer() == nil {
			continue
		}
		_, capacity, frac := sb.Reclaimer().Usage()
		if capacity > 0 && frac > worst {
			worst = frac
		}
	}
	if worst < 0 {
		return "-"
	}
	return fmt.Sprintf("%d%%", int(worst*100))
}

func (s *session) groupArg(name string) (*core.Group, error) {
	if id, err := strconv.ParseUint(name, 10, 64); err == nil {
		if g, err := s.o.Group(id); err == nil {
			return g, nil
		}
	}
	return s.o.GroupByName(name)
}

// exec runs one command line; returns false to exit.
func (s *session) exec(line string) bool {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return true
	}
	cmd, args := fields[0], fields[1:]
	fail := func(err error) bool {
		s.printf("error: %v\n", err)
		return true
	}

	switch cmd {
	case "help":
		s.printf("%s\n", helpText)

	case "boot":
		kind := "counter"
		if len(args) > 0 {
			kind = args[0]
		}
		switch kind {
		case "counter":
			p, err := s.k.Spawn(0, "counter")
			if err != nil {
				return fail(err)
			}
			p.SetProgram(&counterProg{addr: p.HeapBase()})
			s.printf("booted counter, pid %d\n", p.PID)
		case "redis":
			p, _, err := redis.Spawn(s.k, 0, fmt.Sprintf("/redis-%d.sock", s.clock.Now()), 1024, 8<<20, nil)
			if err != nil {
				return fail(err)
			}
			s.printf("booted mini-redis, pid %d\n", p.PID)
		default:
			s.printf("unknown app %q (counter|redis)\n", kind)
		}

	case "persist":
		if len(args) < 2 {
			s.printf("usage: persist <pid> <name>\n")
			return true
		}
		pid, err := strconv.Atoi(args[0])
		if err != nil {
			return fail(err)
		}
		p, err := s.k.Process(pid)
		if err != nil {
			return fail(err)
		}
		g, err := s.o.Persist(args[1], p)
		if err != nil {
			return fail(err)
		}
		s.printf("persistence group %d (%s): pids %v\n", g.ID, g.Name, g.PIDs())

	case "attach":
		if len(args) < 2 {
			s.printf("usage: attach <group> <memory|nvme|ssd|hdd>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		b, ok := s.backends[args[1]]
		if !ok {
			s.printf("unknown backend %q\n", args[1])
			return true
		}
		s.o.Attach(g, b)
		s.printf("attached %s to group %d\n", b.Name(), g.ID)

	case "detach":
		if len(args) < 2 {
			s.printf("usage: detach <group> <backend-name>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		b, ok := s.backends[args[1]]
		name := args[1]
		if ok {
			name = b.Name()
		}
		if err := s.o.Detach(g, name); err != nil {
			return fail(err)
		}
		s.printf("detached %s\n", name)

	case "replica":
		if len(args) < 2 {
			s.printf("usage: replica <group> <name>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		backfilled, err := s.addReplica(g, args[1])
		if err != nil {
			return fail(err)
		}
		s.printf("replica %s linked to group %d (%d in set, %d epochs backfilled)\n",
			args[1], g.ID, len(s.replicaSet(g).Links()), backfilled)

	case "quorum":
		if len(args) < 2 {
			s.printf("usage: quorum <group> <W>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		w, err := strconv.Atoi(args[1])
		if err != nil {
			return fail(err)
		}
		s.replicaSet(g).SetW(w)
		g.SetQuorum(core.QuorumPolicy{W: w})
		if w <= 0 {
			s.printf("group %d back on all-backends durability\n", g.ID)
		} else {
			_, _, n := g.QuorumStatus()
			s.printf("group %d write quorum %d of %d non-ephemeral backends\n", g.ID, w, n)
		}

	case "replicas":
		if len(args) < 1 {
			s.printf("usage: replicas <group>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		rs := s.replicaSet(g)
		links := rs.Links()
		if len(links) == 0 {
			s.printf("group %d has no replica links\n", g.ID)
			return true
		}
		health := map[string]core.BackendHealthInfo{}
		for _, info := range g.Health() {
			health[info.Name] = info
		}
		s.printf("%-14s %-10s %-8s %-8s %-11s %s\n", "REPLICA", "STATE", "ACKED", "PENDING", "PARTITIONS", "CONTIG")
		for _, l := range links {
			state, pending := "?", 0
			if info, ok := health[l.Name]; ok {
				state = info.State.String()
				pending = info.Pending
			}
			contig := "-"
			if l.Recv != nil {
				contig = strconv.FormatUint(l.Recv.ContiguousEpoch(g.ID), 10)
			}
			s.printf("%-14s %-10s %-8d %-8d %-11d %s\n", l.Name, state, l.RB.AckedFloor(g.ID), pending, l.RB.Partitions(), contig)
		}
		s.printf("quorum floor %d (W=%d of %d links)\n", rs.QuorumFloor(g.ID), rs.W(), len(links))

	case "checkpoint":
		if len(args) < 1 {
			s.printf("usage: checkpoint <group> [name]\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		name := ""
		if len(args) > 1 {
			name = args[1]
		}
		bd, err := s.o.Checkpoint(g, core.CheckpointOpts{Name: name})
		if err != nil {
			return fail(err)
		}
		s.printf("%s\n", bd)

	case "restore":
		if len(args) < 1 {
			s.printf("usage: restore <group> [epoch]\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		var epoch uint64
		if len(args) > 1 {
			epoch, _ = strconv.ParseUint(args[1], 10, 64)
		}
		// Validate runs the hash pre-pass so a corrupt epoch is caught
		// (and quarantined) here, not later at demand-paging time.
		ng, bd, err := s.o.Restore(g, epoch, core.RestoreOpts{Lazy: true, Validate: true})
		if err != nil {
			s.code = restoreExitCode(err)
			return fail(err)
		}
		if bd.FallbackFrom != 0 {
			s.code = 3
			s.printf("warning: epoch %d quarantined, fell back to epoch %d\n", bd.FallbackFrom, ng.Epoch())
		}
		s.printf("restored as group %d, pids %v\n%s\n", ng.ID, ng.PIDs(), bd)

	case "promote":
		if len(args) < 2 {
			s.printf("usage: promote <group> <backend>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		b, ok := s.backends[args[1]]
		name := args[1]
		if ok {
			name = b.Name()
		}
		rep, err := s.o.PromoteBackend(g, name)
		if err != nil {
			s.code = promoteExitCode(err)
			return fail(err)
		}
		s.printf("promoted %s to primary of group %d: generation %d, floor epoch %d (ttr %s)\n",
			name, g.ID, rep.Gen, rep.Floor, rep.TTR)

	case "migrate":
		if len(args) < 3 {
			s.printf("usage: migrate <group> <replica> <store-backend>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		m, err := s.migratorFor(g, args[1], args[2])
		if err != nil {
			return fail(err)
		}
		rep, err := m.Run(nil)
		if err != nil {
			s.code = migrateExitCode(err)
			return fail(err)
		}
		delete(s.migs, g.ID)
		s.printf("migrated group %d -> group %d over %s: generation %d, floor epoch %d, "+
			"%d pre-copy rounds, %d epochs backfilled, blackout %s (source stop %s)\n",
			g.ID, rep.Group.ID, args[1], rep.Gen, rep.Floor, rep.Rounds, rep.Backfilled,
			rep.Blackout, rep.SrcStop)

	case "standby":
		if len(args) < 3 {
			s.printf("usage: standby <group> <replica> <store-backend>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		m, err := s.migratorFor(g, args[1], args[2])
		if err != nil {
			return fail(err)
		}
		if err := m.StandbyRound(nil); err != nil {
			s.code = migrateExitCode(err)
			return fail(err)
		}
		rep := m.Report()
		s.printf("standby for group %d warm: %d rounds shipped, %d epochs drained, source epoch %d\n",
			g.ID, rep.Rounds, rep.Backfilled, g.Epoch())

	case "takeover":
		if len(args) < 1 {
			s.printf("usage: takeover <group>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		m, ok := s.migs[g.ID]
		if !ok {
			return fail(fmt.Errorf("group %d has no warm standby (use: standby %d <replica> <store>)", g.ID, g.ID))
		}
		rep, err := m.PromoteStandby()
		if err != nil {
			s.code = migrateExitCode(err)
			return fail(err)
		}
		delete(s.migs, g.ID)
		s.printf("standby promoted: group %d -> group %d, generation %d, floor epoch %d (ttr %s)\n",
			g.ID, rep.Group.ID, rep.Gen, rep.Floor, rep.TTR)

	case "sync":
		if len(args) < 1 {
			s.printf("usage: sync <group>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		if err := s.o.Sync(g); err != nil {
			return fail(err)
		}
		s.printf("group %d durable through epoch %d\n", g.ID, g.Durable())

	case "ps":
		s.printf("%-6s %-6s %-4s %-14s %-8s %-8s %-6s %-5s %-8s %-8s %-6s %-5s %-18s %-10s %s\n", "GROUP", "EPOCH", "GEN", "NAME", "STORE", "DOMAIN", "TARGET", "UTIL", "DURABLE", "QUORUM", "QUEUE", "USE%", "HEALTH", "QUAR", "PIDS")
		for _, g := range s.o.Groups() {
			s.printf("%-6d %-6d %-4d %-14s %-8s %-8s %-6s %-5s %-8d %-8s %-6d %-5s %-18s %-10s %v\n", g.ID, g.Epoch(), g.Generation(), g.Name, "-", "-", "-", "-", g.Durable(), quorumColumn(g), g.QueueDepth(), useColumn(g), healthColumn(g), quarColumn(g), g.PIDs())
		}
		if s.placer != nil {
			prim := make(map[*core.StoreNode]int)
			for _, pl := range s.placer.Placements() {
				prim[pl.Primary()]++
			}
			for _, pl := range s.placer.Placements() {
				g, n := pl.Group(), pl.Primary()
				target := fmt.Sprintf("%d/%d", prim[n], fleetPrimaryTarget)
				util := fmt.Sprintf("%.0f%%", s.placer.Utilization(n)*100)
				s.printf("%-6d %-6d %-4d %-14s %-8s %-8s %-6s %-5s %-8d %-8s %-6d %-5s %-18s %-10s %v\n", g.ID, g.Epoch(), g.Generation(), g.Name, n.Name, n.Domain, target, util, g.Durable(), quorumColumn(g), g.QueueDepth(), useColumn(g), healthColumn(g), quarColumn(g), g.PIDs())
			}
		}
		s.printf("%-6s %-6s %-14s %s\n", "PID", "STATE", "NAME", "FDS")
		for _, p := range s.k.Processes() {
			s.printf("%-6d %-6s %-14s %v\n", p.PID, p.State(), p.Name, p.FDs.Numbers())
		}

	case "epochs":
		if len(args) < 1 {
			s.printf("usage: epochs <group> [backend]\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		var stores []*core.StoreBackend
		if len(args) > 1 {
			sb, err := s.storeArg(args[1])
			if err != nil {
				return fail(err)
			}
			stores = append(stores, sb)
		} else {
			for _, b := range g.Backends() {
				if sb, ok := b.(*core.StoreBackend); ok {
					stores = append(stores, sb)
				}
			}
		}
		if len(stores) == 0 {
			s.printf("group %d has no store backends\n", g.ID)
			return true
		}
		// A restored group's images live under the lineage it came from.
		gids := []uint64{g.ID}
		if org := g.Origin(); org != 0 && org != g.ID {
			gids = append(gids, org)
		}
		s.printf("%-6s %-22s %-8s %s\n", "EPOCH", "BACKEND", "DURABLE", "STATUS")
		for _, sb := range stores {
			for _, gid := range gids {
				quar := sb.Store().QuarantinedEpochs(gid)
				for _, ep := range sb.Epochs(gid) {
					status := "ok"
					if why, bad := quar[ep]; bad {
						status = "quarantined: " + why
					}
					durable := "-"
					if ep <= g.Durable() {
						durable = "yes"
					}
					s.printf("%-6d %-22s %-8s %s\n", ep, sb.Name(), durable, status)
				}
			}
		}
		// Link history per backend: partitions (connection losses) and
		// epochs replayed after heals. Zero for in-machine backends;
		// nonzero only for partition-aware ones (network replicas).
		for _, info := range g.Health() {
			s.printf("link %-22s partitions=%d catchup=%d\n", info.Name, info.Partitions, info.CatchUp)
		}

	case "gc":
		if len(args) < 1 {
			s.printf("usage: gc <backend>\n")
			return true
		}
		sb, err := s.storeArg(args[0])
		if err != nil {
			return fail(err)
		}
		rec := sb.Reclaimer()
		if rec == nil {
			s.printf("backend %q has no reclaimer\n", args[0])
			return true
		}
		freed := rec.Scan()
		st := rec.Stats()
		_, _, frac := rec.Usage()
		s.printf("gc %s: freed %d bytes (%d epochs reclaimed total), usage %d%%, pressure %s\n",
			args[0], freed, st.EpochsReclaimed, int(frac*100), rec.Level())

	case "df":
		names := make([]string, 0, len(s.backends))
		for name := range s.backends {
			names = append(names, name)
		}
		sort.Strings(names)
		s.printf("%-10s %-12s %-12s %-5s %s\n", "BACKEND", "USED", "CAPACITY", "USE%", "PRESSURE")
		for _, name := range names {
			sb, ok := s.backends[name].(*core.StoreBackend)
			if !ok || sb.Reclaimer() == nil {
				continue
			}
			rec := sb.Reclaimer()
			used, capacity, frac := rec.Usage()
			capStr, useStr := "-", "-"
			if capacity > 0 {
				capStr = strconv.FormatInt(capacity, 10)
				useStr = fmt.Sprintf("%d%%", int(frac*100))
			}
			level := rec.Level()
			if level == core.PressureEmergency {
				s.code = 8
			}
			s.printf("%-10s %-12d %-12s %-5s %s\n", name, used, capStr, useStr, level)
		}

	case "fleet":
		st := s.o.FleetStats()
		if st.Shards == 0 {
			s.printf("fleet runtime idle (no group has checkpointed yet)\n")
			return true
		}
		s.printf("shards=%d workers/shard=%d dispatches=%d\n", st.Shards, st.WorkersPerShard, st.Dispatches)
		for i, n := range st.Placements {
			s.printf("  shard %d: %d groups placed\n", i, n)
		}
		budget := "unbounded"
		if st.MemBudget > 0 {
			budget = strconv.FormatInt(st.MemBudget, 10)
		}
		s.printf("mem budget=%s in-use=%d peak=%d stalls=%d\n", budget, st.MemInUse, st.MemPeak, st.BudgetStalls)
		names := make([]string, 0, len(s.backends))
		for name := range s.backends {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sb, ok := s.backends[name].(*core.StoreBackend)
			if !ok {
				continue
			}
			os := sb.Store().Stats()
			s.printf("%s: dedup-hits=%d pack-blocks=%d blocks=%d live=%dB\n",
				name, os.DedupHits, os.PackBlocks, os.Blocks, os.LiveBytes)
		}

	case "place":
		if len(args) < 1 {
			s.printf("usage: place <name>\n")
			return true
		}
		p := s.fleet()
		name := args[0]
		if _, ok := s.placed[name]; ok {
			return fail(fmt.Errorf("application %q is already placed", name))
		}
		pl, err := p.Place(name, func(n *core.StoreNode) (*core.Group, error) {
			proc, err := n.O.K.Spawn(0, name)
			if err != nil {
				return nil, err
			}
			proc.SetProgram(&counterProg{addr: proc.HeapBase()})
			return n.O.Persist(name, proc)
		})
		if err != nil {
			s.code = placeExitCode(err)
			return fail(err)
		}
		s.placed[name] = pl
		s.printf("placed %s: lineage %d on %s (%s), replicas %s\n",
			name, pl.Lineage, pl.Primary().Name, pl.Primary().Domain, placementRow(pl))

	case "stores":
		p := s.fleet()
		prim := make(map[*core.StoreNode]int)
		for _, pl := range p.Placements() {
			prim[pl.Primary()]++
		}
		s.printf("%-8s %-8s %-9s %-5s %s\n", "NAME", "DOMAIN", "STATE", "USE%", "GROUPS")
		for _, n := range p.Stores() {
			_, _, frac := n.SB.Store().Usage()
			s.printf("%-8s %-8s %-9s %-5s %d\n", n.Name, n.Domain, n.State(), fmt.Sprintf("%.0f", frac*100), prim[n])
		}
		if evac, repair := p.QueueDepths(); evac > 0 || repair > 0 {
			s.printf("healing: %d evacuations, %d replica repairs queued\n", evac, repair)
		}
		if v := p.AntiAffinityViolations(); len(v) > 0 {
			for _, msg := range v {
				s.printf("VIOLATION: %s\n", msg)
			}
		}

	case "drain":
		if len(args) < 1 {
			s.printf("usage: drain <store>\n")
			return true
		}
		p := s.fleet()
		n, err := p.Node(args[0])
		if err != nil {
			return fail(err)
		}
		evs, err := p.Drain(n)
		for _, ev := range evs {
			if ev.Kind == "migrated" && ev.Err == nil {
				s.printf("  lineage %d: %s -> %s (blackout %s)\n", ev.Lineage, ev.From, ev.To, ev.TTR)
			}
		}
		if err != nil {
			s.code = placeExitCode(err)
			return fail(err)
		}
		s.printf("store %s drained and fenced\n", n.Name)

	case "balance":
		p := s.fleet()
		evs, err := p.Rebalance()
		moved := 0
		for _, ev := range evs {
			switch ev.Kind {
			case "rebalanced":
				moved++
				s.printf("  lineage %d: %s -> %s (blackout %s)\n", ev.Lineage, ev.From, ev.To, ev.TTR)
			case "rebalance-skipped":
				s.printf("  lineage %d: pressure on %s, no feasible target (deferred)\n", ev.Lineage, ev.From)
			}
		}
		if err != nil {
			s.code = placeExitCode(err)
			return fail(err)
		}
		if moved == 0 {
			s.printf("fleet balanced: no store above the high watermark\n")
		} else {
			s.printf("rebalanced %d lineage(s)\n", moved)
		}

	case "autoscale":
		a := s.scaler()
		sub := "status"
		if len(args) > 0 {
			sub = args[0]
		}
		switch sub {
		case "status":
			st := a.Status()
			s.printf("phase=%s tick=%d active=%d target=%d pool=%d util=%.2f cooldown=%d\n",
				st.Phase, st.Tick, st.Active, st.Target, st.Pool, st.Util, st.CooldownLeft)
			if st.Seeding != "" {
				s.printf("seeding %s via paced rebalance\n", st.Seeding)
			}
			if st.Draining != "" {
				s.printf("draining %s via live migration\n", st.Draining)
			}
			if v := a.InvariantViolations(); len(v) > 0 {
				for _, msg := range v {
					s.printf("VIOLATION: %s\n", msg)
				}
			}
		case "tick":
			n := 1
			if len(args) > 1 {
				v, err := strconv.Atoi(args[1])
				if err != nil || v < 1 {
					s.printf("usage: autoscale tick [n]\n")
					return true
				}
				n = v
			}
			for i := 0; i < n; i++ {
				dec, _ := a.Tick()
				line := fmt.Sprintf("tick %d: %s", dec.Tick, dec.Action)
				if dec.Store != "" {
					line += " " + dec.Store
				}
				if dec.Reason != "" {
					line += " (" + dec.Reason + ")"
				}
				s.printf("%s util=%.2f backlog=%d moves=%d\n", line, dec.Util, dec.Backlog, dec.Moves)
			}
		case "out":
			dec, err := a.ScaleOut()
			if err != nil {
				s.code = scaleExitCode(err)
				return fail(err)
			}
			s.printf("scale-out: admitted %s from the warm pool; seeding via paced rebalance\n", dec.Store)
		case "in":
			name := ""
			if len(args) > 1 {
				name = args[1]
			}
			dec, err := a.ScaleIn(name)
			if err != nil {
				s.code = scaleExitCode(err)
				return fail(err)
			}
			s.printf("scale-in: draining %s; drive it with `autoscale tick`\n", dec.Store)
		default:
			s.printf("usage: autoscale [status|tick [n]|out|in [store]]\n")
		}

	case "signals":
		a := s.scaler()
		win := a.Signals()
		if len(win) == 0 {
			s.printf("no samples yet: drive the loop with `autoscale tick`\n")
			return true
		}
		s.printf("%-5s %-7s %-6s %-7s %-6s %s\n", "TICK", "ACTIVE", "UTIL", "MINUTIL", "SHEDS", "BACKLOG")
		for _, sig := range win {
			s.printf("%-5d %-7d %-6.2f %-7.2f %-6d %d\n", sig.Tick, sig.Active, sig.Util, sig.MinUtil, sig.Sheds, sig.Backlog)
		}
		last := win[len(win)-1]
		s.printf("%-8s %-8s %-9s %-6s %-7s %s\n", "STORE", "DOMAIN", "STATE", "UTIL", "SPACE%", "PRIMARIES")
		for _, ss := range last.PerStore {
			s.printf("%-8s %-8s %-9s %-6.2f %-7.0f %d\n", ss.Store, ss.Domain, ss.State, ss.Util, ss.SpaceFrac*100, ss.Primaries)
		}

	case "send":
		if len(args) < 2 {
			s.printf("usage: send <group> <file>\n")
			return true
		}
		g, err := s.groupArg(args[0])
		if err != nil {
			return fail(err)
		}
		// Drain the flush pipeline first: what leaves the machine must
		// be the durable state, not an epoch still in flight.
		if err := s.o.Sync(g); err != nil {
			return fail(err)
		}
		img := g.LastImage()
		if img == nil || img.Released() {
			for _, b := range g.Backends() {
				if li, _, err := b.Load(g.ID, 0); err == nil {
					img = li
					break
				}
			}
		}
		if img == nil {
			return fail(core.ErrNoImage)
		}
		payload := img.Encode()
		if err := os.WriteFile(args[1], payload, 0o644); err != nil {
			return fail(err)
		}
		s.printf("sent group %d epoch %d: %d bytes -> %s\n", g.ID, img.Epoch, len(payload), args[1])

	case "recv":
		if len(args) < 1 {
			s.printf("usage: recv <file>\n")
			return true
		}
		payload, err := os.ReadFile(args[0])
		if err != nil {
			return fail(err)
		}
		img, err := core.DecodeImage(payload, s.k.Mem)
		if err != nil {
			return fail(err)
		}
		ng, bd, err := s.o.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
		if err != nil {
			return fail(err)
		}
		s.printf("received as group %d, pids %v\n%s\n", ng.ID, ng.PIDs(), bd)

	case "scrub":
		if len(args) < 1 {
			s.printf("usage: scrub <backend> [source-backend]\n")
			return true
		}
		sb, err := s.storeArg(args[0])
		if err != nil {
			return fail(err)
		}
		var src objstore.BlockSource
		if len(args) > 1 {
			peer, err := s.storeArg(args[1])
			if err != nil {
				return fail(err)
			}
			src = peer.Store()
		}
		rep, err := sb.Store().Scrub(src)
		if err != nil {
			return fail(err)
		}
		s.printf("scrub %s: %s\n", args[0], rep)
		for _, key := range rep.LostRecords {
			s.printf("  lost: oid %d epoch %d\n", key.OID, key.Epoch)
		}

	case "run":
		n := 100
		if len(args) > 0 {
			n, _ = strconv.Atoi(args[0])
		}
		ran, err := s.k.Run(n)
		if err != nil {
			s.printf("ran %d quanta, error: %v\n", ran, err)
		} else {
			s.printf("ran %d quanta (virtual time %s)\n", ran, s.clock.Now())
		}

	case "stat":
		if len(args) < 1 {
			s.printf("usage: stat <pid>\n")
			return true
		}
		pid, _ := strconv.Atoi(args[0])
		p, err := s.k.Process(pid)
		if err != nil {
			return fail(err)
		}
		s.printf("pid %d (%s) state=%s container=%d threads=%d\n",
			p.PID, p.Name, p.State(), p.Container, len(p.Threads))
		for _, m := range p.Space.Mappings() {
			s.printf("  %-10s %#x-%#x resident=%d pages\n", m.Name, m.Start, m.End, m.Obj.ResidentCount())
		}

	case "exit", "quit":
		return false

	default:
		s.printf("unknown command %q (try help)\n", cmd)
	}
	return true
}

const helpText = `Aurora single level store (Table 1):
  persist <pid> <name>       add an application to a persistence group
  attach <group> <backend>   attach a group to a backend (memory|nvme|ssd|hdd)
  detach <group> <backend>   detach a persistence group from a backend
  checkpoint <group> [name]  checkpoint an application (flush is async)
  sync <group>               wait for queued flushes; surface flush errors
  restore <group> [epoch]    restore an application from an image; images are
                             hash-validated, poisoned epochs are quarantined
                             and skipped. exit codes: 0 ok, 3 fell back past
                             a quarantined epoch, 4 corrupt image, 5 backing
                             store down
  promote <group> <backend>  move the primary role to another attached store
                             backend; refused while the current primary is
                             healthy. exit codes: 0 promoted, 6 primary still
                             healthy, 7 fenced by a newer generation
  replica <group> <name>     link a named loopback replica (acknowledged
                             epoch shipping to an in-process standby)
  migrate <group> <replica> <store>
                             live-migrate the group: pre-copy over the
                             replica link, blackout cutover, generation-
                             fenced handover onto the store, lazy tail.
                             exit codes: 0 migrated, 7 fenced by a newer
                             generation, 9 aborted (source rolled back,
                             still primary)
  standby <group> <replica> <store>
                             keep a hot standby warm: ship one pre-copy
                             round over the replica link onto the store
                             (repeat on the checkpoint cadence)
  takeover <group>           promote the warm standby after source death:
                             unplanned generation-fenced handover, prints
                             time-to-recovery
  quorum <group> <W>         set the group's write quorum: epochs retire
                             once W non-ephemeral backends ack (0 restores
                             all-backends durability)
  replicas <group>           show each replica link's acked floor, pending
                             catch-up, partitions, and the quorum floor
  ps                         list applications in Aurora (GEN = store
                             generation / fencing token, QUORUM = backends
                             ack-complete / write quorum : total, QUEUE =
                             epochs in flight, HEALTH = per-backend flush
                             health, QUAR = epochs that failed restore
                             validation)
  epochs <group> [backend]   list a group's store epochs with durability and
                             quarantine status, plus per-backend link history
                             (partitions seen, epochs caught up after heals)
  gc <backend>               run a retention scan on a store backend,
                             reclaiming unprotected old epochs when the
                             device is past its space watermarks
  df                         show used/capacity/pressure per store backend
                             (ps USE% is the worst attached backend);
                             exit code 8 when any backend is at or above
                             the emergency watermark
  fleet                      show the shard runtime (worker pool, group
                             placements, flush memory budget) and each
                             store backend's dedup and metadata packing
  place <name>               place a demo app on the multi-store fleet:
                             the placer picks the least-loaded store and
                             replicates to a different failure domain
                             (hard anti-affinity). exit codes: 0 placed,
                             11 no feasible placement
  stores                     list the placement fleet: per-store failure
                             domain, lifecycle state (active|draining|
                             down|fenced), space usage, resident groups,
                             plus any queued healing work
  drain <store>              decommission a fleet store: live-migrate
                             every resident lineage off, re-home replica
                             roles, then fence it. exit codes: 0 drained,
                             10 already draining, 11 nowhere to move a
                             resident
  balance                    one pressure-driven rebalance pass: every
                             store past the high watermark moves its
                             heaviest lineage to the emptiest compatible
                             store
  autoscale [status]         show the elasticity loop: phase, active vs
                             target store count, warm-pool depth, fleet
                             utilization, cooldown
  autoscale tick [n]         drive the control loop n rounds (sample,
                             decide, seed/drain one budgeted step,
                             background rebalance)
  autoscale out              admit a warm spare now and seed it via
                             paced rebalance. exit codes: 0 admitted,
                             11 pool empty or fleet at max, 12 another
                             scale action is in flight
  autoscale in [store]       drain a store (the autoscaler's pick when
                             omitted) through live migration; later
                             ticks advance it. exit codes: 0 draining,
                             11 fleet at min stores, 12 another scale
                             action is in flight
  signals                    dump the autoscaler's sample window (fleet
                             high/low-watermark utilization, admission
                             sheds, healing backlog) and the latest
                             per-store signal row (ps shows the same
                             load as TARGET prim/target and UTIL)
  send <group> <file>        send an application to a file (or remote)
  recv <file>                receive an application and restore it
  scrub <backend> [source]   verify every block hash on a store backend,
                             repairing rot from a peer store if given
session helpers:
  boot <counter|redis>       spawn a demo application
  run <n>                    run the scheduler for n quanta
  stat <pid>                 inspect a process
  help | exit`

func main() {
	script := flag.String("c", "", "semicolon-separated commands to run non-interactively")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	s := newSession(out)
	run(s, *script)
	// Flush explicitly: os.Exit skips deferred calls, and the exit code
	// (restore health, see package doc) must reach the caller.
	out.Flush()
	os.Exit(s.code)
}

func run(s *session, script string) {
	if script != "" {
		for _, line := range strings.Split(script, ";") {
			if !s.exec(strings.TrimSpace(line)) {
				return
			}
		}
		return
	}

	sc := bufio.NewScanner(os.Stdin)
	interactive := isTerminal()
	if interactive {
		s.printf("aurora sls — type 'help'\n")
	}
	for {
		if interactive {
			s.printf("sls> ")
			s.out.Flush()
		}
		if !sc.Scan() {
			return
		}
		stop := false
		for _, line := range strings.Split(sc.Text(), ";") {
			if !s.exec(strings.TrimSpace(line)) {
				stop = true
				break
			}
		}
		s.out.Flush()
		if stop {
			return
		}
	}
}

func isTerminal() bool {
	fi, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return fi.Mode()&os.ModeCharDevice != 0
}
