package bench

import (
	"fmt"
	"time"

	"aurora/internal/core"
	"aurora/internal/netback"
	"aurora/internal/vm"
)

// This file is the elastic-autoscaling chaos harness (the scale-storm
// gate behind `make scalecheck`): a small base fleet plus a warm pool
// of provisioned-but-unadmitted spares is driven by core.Autoscaler
// while open-loop load ramps up, bursts, and ramps back down over
// fault-injecting links and store devices. The schedule deliberately
// hits both scale directions mid-flight:
//
//   - Ramp-up: arrivals land until the fleet-wide high-watermark holds
//     above target; the autoscaler must admit spares one at a time and
//     seed each via paced rebalance until pressure relieves. The first
//     spare in the pool is dead on arrival (its device is down before
//     admission) — the autoscaler must skip it with a recorded
//     decision and keep going, never wedging the ramp.
//   - Mid-scale-in chaos: load retires until a scale-in begins, one
//     drain step lands, and then the storm hits — a burst of arrivals
//     re-pressurizes the fleet AND the busiest surviving store's
//     device dies. The in-flight drain must roll back (the drainee
//     re-admitted with wires re-handshaken, zero fenced survivors)
//     while the death drives a normal evacuation storm around it.
//   - Ramp-down: load retires to a floor and the autoscaler must
//     converge the fleet back to MinStores through repeated drains.
//
// After the dust settles every surviving lineage must be bit-identical
// (live counter + patterned pages + scratch-machine restore), durable
// must never have regressed, exactly one store may claim each
// lineage's primary role at the max generation, and anti-affinity must
// hold — all asserted both by the engine and by the autoscaler's own
// per-tick audit (InvariantViolations must stay empty).

// AutoscaleChaosConfig parameterizes one scale-storm run. Zero values
// pick defaults.
type AutoscaleChaosConfig struct {
	Seed int64

	// BaseStores is the admitted fleet at t=0 (default 2; also the
	// autoscaler's MinStores floor).
	BaseStores int
	// MaxStores bounds the active fleet (default 6). The warm pool is
	// sized MaxStores-BaseStores healthy spares plus one dead spare.
	MaxStores int
	// PeakGroups is the arrival target of the ramp-up (default 24; the
	// acceptance gate runs 48 via AURORA_SCALE_GROUPS, which forces the
	// fleet all the way to MaxStores).
	PeakGroups int
	// FloorGroups is where the final ramp-down stops (default 4).
	FloorGroups int
	// PrimaryTarget is the per-store resident-primary budget feeding
	// composite utilization (default 8).
	PrimaryTarget int
	// ArrivalsPerTick / RetireesPerTick pace the open-loop ramps
	// (defaults 3 / 3).
	ArrivalsPerTick int
	RetireesPerTick int
	// StepsPerEpoch is scheduler quanta per resident group per workload
	// round (default 2); CheckpointEvery checkpoints+syncs every Nth
	// round (default 2 — the tick loop is long, and checkpointing every
	// lineage every tick would swamp the schedule without sharpening
	// any assertion).
	StepsPerEpoch   int
	CheckpointEvery int
	// Replicas / EvacConcurrency mirror the placement harness
	// (defaults 2 / 8).
	Replicas        int
	EvacConcurrency int

	// Per-frame link fault probabilities on every replication wire.
	LinkDrop    float64
	LinkDup     float64
	LinkReorder float64
	LinkCorrupt float64
	// Store fault probabilities (every store's device).
	StoreWriteErr float64
	StoreReadErr  float64
}

func (c AutoscaleChaosConfig) withDefaults() AutoscaleChaosConfig {
	if c.BaseStores == 0 {
		c.BaseStores = 2
	}
	if c.MaxStores == 0 {
		c.MaxStores = 6
	}
	if c.PeakGroups == 0 {
		c.PeakGroups = 24
	}
	if c.FloorGroups == 0 {
		c.FloorGroups = 4
	}
	if c.PrimaryTarget == 0 {
		c.PrimaryTarget = 8
	}
	if c.ArrivalsPerTick == 0 {
		c.ArrivalsPerTick = 3
	}
	if c.RetireesPerTick == 0 {
		c.RetireesPerTick = 3
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 2
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 2
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.EvacConcurrency == 0 {
		c.EvacConcurrency = 8
	}
	return c
}

// AutoscaleChaosReport is the outcome of one scale-storm run.
type AutoscaleChaosReport struct {
	Seed       int64
	PeakGroups int

	Placed  int // lineages placed (arrivals + burst)
	Retired int // lineages retired by the ramps

	ScaledTo     int    // active stores at ramp-up convergence
	ExpectedPeak int    // minimum the load level must force
	DeadSpare    string // the dead-on-arrival warm spare
	DeadSkipped  bool   // autoscaler recorded its skip
	ScaleOuts    int    // admissions
	ScaleIns     int    // completed drains (stores fenced)
	Rollbacks    int    // drains rolled back
	Drainee      string // the chaos leg's rolled-back drainee
	Victim       string // the store killed mid-scale-in
	BurstGroups  int    // arrivals injected mid-scale-in
	Evacuated    int    // lineages re-homed off the dead victim

	// Convergence: control-loop ticks (and lane virtual time) from the
	// start of each ramp until the fleet settles at the target size.
	ConvergeOutTicks int
	ConvergeOutTime  time.Duration
	ConvergeInTicks  int
	ConvergeInTime   time.Duration

	RestoresVerified int // bit-identical verifications (live + scratch)
	Violations       int // engine + autoscaler invariant failures (must be 0)
	FinalActive      int
	FinalGroups      int
	FinalDurable     uint64
}

// scaleRun carries the harness state.
type scaleRun struct {
	cfg AutoscaleChaosConfig
	rep *AutoscaleChaosReport

	tp     *Topology
	dir    *netback.Directory
	placer *core.Placer
	as     *core.Autoscaler
	nodes  []*core.StoreNode // every store ever built, admitted or not
	bench  map[*core.StoreNode]*Node

	round   int // workload rounds driven (checkpoint cadence)
	nextApp int // next arrival index
	retired map[uint64]bool

	counterAt   map[uint64]map[uint64]uint64
	patternSeed map[uint64]int64
	lastDurable map[uint64]uint64
}

// AutoscaleChaosRun executes one scale-storm schedule.
func AutoscaleChaosRun(cfg AutoscaleChaosConfig) (*AutoscaleChaosReport, error) {
	cfg = cfg.withDefaults()
	r := &scaleRun{
		cfg:         cfg,
		rep:         &AutoscaleChaosReport{Seed: cfg.Seed, PeakGroups: cfg.PeakGroups},
		bench:       make(map[*core.StoreNode]*Node),
		retired:     make(map[uint64]bool),
		counterAt:   make(map[uint64]map[uint64]uint64),
		patternSeed: make(map[uint64]int64),
		lastDurable: make(map[uint64]uint64),
	}

	r.tp = NewTopology(netback.LinkFaultConfig{
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	})
	r.dir = netback.NewDirectory(netback.LinkFaultConfig{
		Seed:    cfg.Seed,
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	})
	r.placer = core.NewPlacer(r.dir, core.PlacerConfig{
		Replicas:        cfg.Replicas,
		EvacConcurrency: cfg.EvacConcurrency,
		DownAfter:       5,
		Retries:         8,
		PrimaryTarget:   cfg.PrimaryTarget,
	})

	// Base fleet admitted, spares warm. The pool's first spare is dead
	// on arrival: its device goes down before the autoscaler ever sees
	// it, so the first scale-out must skip it.
	build := func(i int) *core.StoreNode {
		bn := r.tp.Node(fmt.Sprintf("store%d", i), cfg.Seed*1000003+int64(i)*7919,
			cfg.StoreWriteErr, cfg.StoreReadErr)
		sn := &core.StoreNode{
			Name:   bn.name,
			Domain: fmt.Sprintf("rack%d", i%2),
			O:      bn.o,
			SB:     bn.sb,
			Sup:    core.NewSupervisor(bn.o, core.SupervisorConfig{}),
		}
		r.nodes = append(r.nodes, sn)
		r.bench[sn] = bn
		return sn
	}
	for i := 0; i < cfg.BaseStores; i++ {
		if err := r.placer.AddStore(build(i)); err != nil {
			return nil, err
		}
	}
	r.as = core.NewAutoscaler(r.placer, core.AutoscalerConfig{
		MinStores:       cfg.BaseStores,
		MaxStores:       cfg.MaxStores,
		RebalanceBudget: 2,
		DrainBudget:     1,
	})
	dead := build(cfg.BaseStores)
	r.bench[dead].fd.Down()
	r.rep.DeadSpare = dead.Name
	if err := r.as.AddWarmStore(dead); err != nil {
		return nil, err
	}
	for i := cfg.BaseStores + 1; i <= cfg.MaxStores; i++ {
		if err := r.as.AddWarmStore(build(i)); err != nil {
			return nil, err
		}
	}

	// The load level the ramp reaches forces at least this many active
	// stores: a store below the high watermark holds at most
	// ceil(HighUtil*PrimaryTarget)-1 primaries, and the paced rebalance
	// spreads toward even, so any smaller fleet pigeonholes some store
	// above the watermark for every window.
	perStore := int(0.85*float64(cfg.PrimaryTarget)+0.999999) - 1
	r.rep.ExpectedPeak = (cfg.PeakGroups + perStore - 1) / perStore
	if r.rep.ExpectedPeak > cfg.MaxStores {
		r.rep.ExpectedPeak = cfg.MaxStores
	}
	if r.rep.ExpectedPeak < cfg.BaseStores {
		r.rep.ExpectedPeak = cfg.BaseStores
	}

	if err := r.rampUp(); err != nil {
		return nil, err
	}
	if err := r.scaleInStorm(); err != nil {
		return nil, err
	}
	if err := r.rampDown(); err != nil {
		return nil, err
	}
	// The ramp-down may settle on an off-cadence round, leaving live
	// counters ahead of the last recorded durable epoch; land one
	// forced checkpoint+sync so the sweep compares like with like.
	if err := r.workload(true); err != nil {
		return nil, err
	}

	// Final verification sweep: every surviving lineage bit-identical,
	// live and from a scratch restore; fleet invariants hold; the
	// autoscaler's own per-tick audit saw nothing.
	for _, pl := range r.placer.Placements() {
		if r.retired[pl.Lineage] {
			continue
		}
		pl, ok := r.live(pl.Lineage)
		if !ok {
			return nil, fmt.Errorf("bench: autoscale seed %d: lineage lost at end of run", r.cfg.Seed)
		}
		if err := r.verifyLineage(pl, "final"); err != nil {
			return nil, err
		}
		r.rep.FinalGroups++
		if d := pl.Group().Durable(); d > r.rep.FinalDurable {
			r.rep.FinalDurable = d
		}
	}
	if err := r.checkInvariants("final"); err != nil {
		return nil, err
	}
	if v := r.as.InvariantViolations(); len(v) != 0 {
		r.rep.Violations += len(v)
		return nil, fmt.Errorf("bench: autoscale seed %d: autoscaler audit: %v", r.cfg.Seed, v)
	}
	r.rep.FinalActive = r.active()
	return r.rep, nil
}

func (r *scaleRun) active() int {
	n := 0
	for _, sn := range r.placer.Stores() {
		if sn.State() == core.StoreActive {
			n++
		}
	}
	return n
}

func (r *scaleRun) liveGroups() int {
	n := 0
	for _, pl := range r.placer.Placements() {
		if r.retired[pl.Lineage] {
			continue
		}
		if _, ok := r.live(pl.Lineage); ok {
			n++
		}
	}
	return n
}

// placeOne lands the next arrival. A transient placement failure (the
// storm can eat a seed checkpoint) is returned for the caller to retry
// next tick.
func (r *scaleRun) placeOne() error {
	name := fmt.Sprintf("app%04d", r.nextApp)
	pseed := r.cfg.Seed + int64(r.nextApp)
	pl, err := r.placer.Place(name, func(n *core.StoreNode) (*core.Group, error) {
		p, err := n.O.K.Spawn(0, name)
		if err != nil {
			return nil, err
		}
		p.SetProgram(&chaosCounter{addr: p.HeapBase()})
		for pg := 1; pg <= placePages; pg++ {
			if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, pseed)); err != nil {
				return nil, err
			}
		}
		return n.O.Persist(name, p)
	})
	if err != nil {
		return err
	}
	r.nextApp++
	r.patternSeed[pl.Lineage] = pseed
	r.counterAt[pl.Lineage] = make(map[uint64]uint64)
	r.lastDurable[pl.Lineage] = 0
	r.rep.Placed++
	return nil
}

// retireSome unplaces up to n lineages, always from the store holding
// the most primaries (newest resident first), so the ramp-down decays
// toward even rather than stranding one hot store above the low
// watermark forever. Lineages mid-evacuation are skipped.
func (r *scaleRun) retireSome(n int) {
	for ; n > 0; n-- {
		byStore := make(map[*core.StoreNode][]uint64)
		for _, pl := range r.placer.Placements() {
			if r.retired[pl.Lineage] {
				continue
			}
			if pl, ok := r.live(pl.Lineage); ok {
				byStore[pl.Primary()] = append(byStore[pl.Primary()], pl.Lineage)
			}
		}
		var busiest *core.StoreNode
		for sn, lins := range byStore {
			if busiest == nil || len(lins) > len(byStore[busiest]) ||
				(len(lins) == len(byStore[busiest]) && sn.Name < busiest.Name) {
				busiest = sn
			}
		}
		if busiest == nil {
			return
		}
		var pick uint64
		for _, lin := range byStore[busiest] {
			if lin > pick {
				pick = lin
			}
		}
		if err := r.placer.Unplace(pick); err != nil {
			return // mid-evacuation churn; retry next tick
		}
		r.retired[pick] = true
		r.rep.Retired++
	}
}

// workload drives one open-loop round: resident groups run on every
// live store, and on the checkpoint cadence (or when forced) every
// routable lineage checkpoints and syncs durable (with the same
// shed-retry and durable-monotone discipline as the placement
// harness).
func (r *scaleRun) workload(force bool) error {
	r.round++
	placements := r.placer.Placements()
	resident := make(map[*core.StoreNode]int)
	for _, pl := range placements {
		if r.retired[pl.Lineage] {
			continue
		}
		if pl, ok := r.live(pl.Lineage); ok {
			resident[pl.Primary()]++
		}
	}
	for sn, count := range resident {
		if st := sn.State(); st != core.StoreActive && st != core.StoreDraining {
			continue
		}
		if _, err := r.bench[sn].k.Run(count * r.cfg.StepsPerEpoch); err != nil {
			return fmt.Errorf("bench: autoscale seed %d: workload on %s: %w", r.cfg.Seed, sn.Name, err)
		}
	}
	if r.round%r.cfg.CheckpointEvery != 0 && !force {
		return nil
	}
	for _, pl := range placements {
		if r.retired[pl.Lineage] {
			continue
		}
		pl, ok := r.live(pl.Lineage)
		if !ok {
			continue
		}
		c, err := r.readCounter(pl)
		if err != nil {
			return err
		}
		shed := true
		for attempt := 0; attempt < 16 && shed; attempt++ {
			bd, err := pl.Primary().O.Checkpoint(pl.Group(), core.CheckpointOpts{})
			if err != nil {
				return fmt.Errorf("bench: autoscale seed %d: checkpointing lineage %d: %w", r.cfg.Seed, pl.Lineage, err)
			}
			shed = bd.Shed
		}
		if shed {
			return fmt.Errorf("bench: autoscale seed %d: admission control starved lineage %d", r.cfg.Seed, pl.Lineage)
		}
		r.counterAt[pl.Lineage][pl.Group().Epoch()] = c
		if err := r.placer.SyncDurable(pl.Lineage); err != nil {
			return fmt.Errorf("bench: autoscale seed %d round %d: %w", r.cfg.Seed, r.round, err)
		}
		if d := pl.Group().Durable(); d < r.lastDurable[pl.Lineage] {
			return fmt.Errorf("bench: autoscale seed %d: lineage %d durable regressed %d -> %d",
				r.cfg.Seed, pl.Lineage, r.lastDurable[pl.Lineage], d)
		} else {
			r.lastDurable[pl.Lineage] = d
		}
	}
	return nil
}

// tick advances the autoscaler one control round and tallies its
// decision.
func (r *scaleRun) tick() core.ScaleDecision {
	dec, _ := r.as.Tick()
	switch dec.Action {
	case "scale-out":
		r.rep.ScaleOuts++
	case "scale-in-done":
		r.rep.ScaleIns++
	case "scale-in-rollback":
		r.rep.Rollbacks++
	}
	for _, d := range r.as.Decisions() {
		if d.Action == "scale-out-skipped" && d.Store == r.rep.DeadSpare {
			r.rep.DeadSkipped = true
		}
	}
	return dec
}

// rampUp lands arrivals until the peak and drives the loop until the
// fleet converges at the forced size with the autoscaler idle.
func (r *scaleRun) rampUp() error {
	start := r.as.Status()
	maxTicks := 40*(r.rep.ExpectedPeak-r.cfg.BaseStores) + 8*r.cfg.PeakGroups + 100
	for t := 1; ; t++ {
		if t > maxTicks {
			return fmt.Errorf("bench: autoscale seed %d: ramp-up did not converge (%d active, want >= %d, after %d ticks)",
				r.cfg.Seed, r.active(), r.rep.ExpectedPeak, maxTicks)
		}
		for i := 0; i < r.cfg.ArrivalsPerTick && r.nextApp < r.cfg.PeakGroups; i++ {
			if err := r.placeOne(); err != nil {
				break // transient fault; retry next tick
			}
		}
		if err := r.workload(false); err != nil {
			return err
		}
		r.tick()
		st := r.as.Status()
		if r.nextApp == r.cfg.PeakGroups && st.Phase == "idle" && r.active() >= r.rep.ExpectedPeak {
			r.rep.ScaledTo = r.active()
			r.rep.ConvergeOutTicks = t
			r.rep.ConvergeOutTime = st.At - start.At
			break
		}
	}
	if !r.rep.DeadSkipped {
		return fmt.Errorf("bench: autoscale seed %d: dead warm spare %s was never skipped", r.cfg.Seed, r.rep.DeadSpare)
	}
	for _, sn := range r.placer.Stores() {
		if sn.Name == r.rep.DeadSpare {
			return fmt.Errorf("bench: autoscale seed %d: dead spare %s was admitted (state %s)",
				r.cfg.Seed, sn.Name, sn.State())
		}
	}
	return r.checkInvariants("post-ramp-up")
}

// scaleInStorm retires load until a scale-in begins, lets one drain
// step land, then hits the fleet with a burst of arrivals AND kills
// the busiest surviving store. The in-flight drain must roll back and
// the death must evacuate cleanly around it.
func (r *scaleRun) scaleInStorm() error {
	// Retire toward the low watermark until the autoscaler commits.
	var drainee *core.StoreNode
	maxTicks := 8*r.cfg.PeakGroups + 100
	for t := 1; ; t++ {
		if t > maxTicks {
			return fmt.Errorf("bench: autoscale seed %d: scale-in never began (%d groups live, %d active, after %d ticks)",
				r.cfg.Seed, r.liveGroups(), r.active(), maxTicks)
		}
		if r.liveGroups() > r.cfg.FloorGroups {
			r.retireSome(r.cfg.RetireesPerTick)
		}
		if err := r.workload(false); err != nil {
			return err
		}
		dec := r.tick()
		if dec.Action == "scale-in-begin" {
			n, err := r.placer.Node(dec.Store)
			if err != nil {
				return err
			}
			drainee = n
			r.rep.Drainee = n.Name
			break
		}
		// A drain that empties before the storm lands is a clean
		// scale-in; the chaos leg needs one in flight, so keep going.
	}

	// One drain step lands (the tick after begin advances the drain),
	// so the rollback is genuinely mid-drain.
	if err := r.workload(false); err != nil {
		return err
	}
	r.tick()
	if drainee.State() == core.StoreFenced {
		return fmt.Errorf("bench: autoscale seed %d: drain of %s completed before the storm could land",
			r.cfg.Seed, drainee.Name)
	}

	// The storm: burst arrivals sized to pigeonhole some store above
	// the high watermark even when spread perfectly even across the
	// surviving non-draining stores, then the busiest of those dies.
	counted := 0
	resident := make(map[*core.StoreNode]int)
	for _, pl := range r.placer.Placements() {
		if pl, ok := r.live(pl.Lineage); ok && !r.retired[pl.Lineage] {
			resident[pl.Primary()]++
		}
	}
	var victim *core.StoreNode
	for _, sn := range r.placer.Stores() {
		if sn.State() != core.StoreActive || sn == drainee {
			continue
		}
		counted++
		if victim == nil || resident[sn] > resident[victim] ||
			(resident[sn] == resident[victim] && sn.Name < victim.Name) {
			victim = sn
		}
	}
	// The victim still counts toward the high-watermark until the probe
	// ladder declares it (and soaks up arrivals until then), so the
	// pigeonhole is over every counted store, victim included: enough
	// load that even a perfectly even spread pins some store at or
	// above the high watermark.
	need := int(0.85*float64(r.cfg.PrimaryTarget) + 0.999999)
	burst := need*counted + 2 - r.liveGroups()
	if burst < 4 {
		burst = 4
	}
	r.rep.BurstGroups = burst
	target := r.nextApp + burst
	for r.nextApp < target {
		if err := r.placeOne(); err != nil {
			return fmt.Errorf("bench: autoscale seed %d: burst arrival: %w", r.cfg.Seed, err)
		}
	}
	// One forced checkpoint round before the kill: a just-placed burst
	// lineage has wired but unseeded replicas (floor 0), and a primary
	// that dies before its first checkpoint leaves a standby with
	// nothing to promote.
	if err := r.workload(true); err != nil {
		return err
	}
	victimResidents := make([]uint64, 0, resident[victim])
	for _, pl := range r.placer.Placements() {
		if pl, ok := r.live(pl.Lineage); ok && !r.retired[pl.Lineage] && pl.Primary() == victim {
			victimResidents = append(victimResidents, pl.Lineage)
		}
	}
	r.rep.Victim = victim.Name
	r.bench[victim].fd.Down()

	// No workload rounds until the death is declared and the storm
	// drains: checkpoints against the dead primary would fail before
	// evacuation re-homes them (same discipline as the placement
	// harness's kill leg). The rollback must surface first.
	sawRollback := false
	maxPolls := 16 + (len(victimResidents)/r.cfg.EvacConcurrency+1)*8 + 40
	for poll := 0; ; poll++ {
		if poll > maxPolls {
			evac, repair := r.placer.QueueDepths()
			return fmt.Errorf("bench: autoscale seed %d: storm did not settle after %d polls (rollback %v, victim %s, evac %d, repair %d, phase %s, active %d)",
				r.cfg.Seed, maxPolls, sawRollback, victim.State(), evac, repair, r.as.Status().Phase, r.active())
		}
		dec := r.tick()
		switch dec.Action {
		case "scale-in-rollback":
			sawRollback = true
			if drainee.State() != core.StoreActive {
				return fmt.Errorf("bench: autoscale seed %d: rollback left %s in state %s, want active",
					r.cfg.Seed, drainee.Name, drainee.State())
			}
			for _, sn := range r.placer.Stores() {
				if sn.State() == core.StoreFenced {
					return fmt.Errorf("bench: autoscale seed %d: fenced survivor %s after rollback",
						r.cfg.Seed, sn.Name)
				}
			}
		case "scale-in-done":
			if !sawRollback {
				return fmt.Errorf("bench: autoscale seed %d: chaos drain of %s completed instead of rolling back",
					r.cfg.Seed, drainee.Name)
			}
		}
		evac, repair := r.placer.QueueDepths()
		if sawRollback && victim.State() == core.StoreDown && evac == 0 && repair == 0 {
			break
		}
	}

	// Every victim resident re-homed and bit-identical; the rolled-back
	// drainee is a first-class citizen again (promotions may well have
	// landed on it through its re-handshaken wires).
	for _, lin := range victimResidents {
		pl, ok := r.live(lin)
		if !ok {
			return fmt.Errorf("bench: autoscale seed %d: lineage %d not routable after victim evacuation", r.cfg.Seed, lin)
		}
		if pl.Primary() == victim {
			return fmt.Errorf("bench: autoscale seed %d: lineage %d still resident on dead %s", r.cfg.Seed, lin, victim.Name)
		}
		if err := r.verifyLineage(pl, "post-storm"); err != nil {
			return err
		}
		r.rep.Evacuated++
	}
	return r.checkInvariants("post-storm")
}

// rampDown retires load to the floor and drives the loop until the
// fleet converges back to MinStores with the autoscaler idle.
func (r *scaleRun) rampDown() error {
	start := r.as.Status()
	maxTicks := 60*r.cfg.MaxStores + 8*r.cfg.PeakGroups + 200
	for t := 1; ; t++ {
		if t > maxTicks {
			return fmt.Errorf("bench: autoscale seed %d: ramp-down did not converge (%d active, want %d, after %d ticks)",
				r.cfg.Seed, r.active(), r.cfg.BaseStores, maxTicks)
		}
		if r.liveGroups() > r.cfg.FloorGroups {
			r.retireSome(r.cfg.RetireesPerTick)
		}
		if err := r.workload(false); err != nil {
			return err
		}
		r.tick()
		st := r.as.Status()
		if r.liveGroups() <= r.cfg.FloorGroups && st.Phase == "idle" && r.active() <= r.cfg.BaseStores {
			r.rep.ConvergeInTicks = t
			r.rep.ConvergeInTime = st.At - start.At
			break
		}
	}
	if got := r.active(); got != r.cfg.BaseStores {
		return fmt.Errorf("bench: autoscale seed %d: ramp-down settled at %d active stores, want %d",
			r.cfg.Seed, got, r.cfg.BaseStores)
	}
	// Every fenced store must be truly empty: a drain that fences a
	// store still holding a resident would strand it.
	for _, sn := range r.placer.Stores() {
		if sn.State() != core.StoreFenced {
			continue
		}
		for _, pl := range r.placer.Placements() {
			if pl, ok := r.live(pl.Lineage); ok && !r.retired[pl.Lineage] && pl.Primary() == sn {
				return fmt.Errorf("bench: autoscale seed %d: lineage %d stranded on fenced %s",
					r.cfg.Seed, pl.Lineage, sn.Name)
			}
		}
	}
	return r.checkInvariants("post-ramp-down")
}

// live, readCounter, verifyLineage, checkInvariants mirror the
// placement harness (the assertions are deliberately identical — the
// autoscaler must not weaken any of them).

func (r *scaleRun) live(lineage uint64) (*core.Placement, bool) {
	pl, err := r.placer.Lookup(lineage)
	if err != nil {
		return nil, false
	}
	return pl, true
}

func (r *scaleRun) readCounter(pl *core.Placement) (uint64, error) {
	rr := placeRun{cfg: PlacementChaosConfig{Seed: r.cfg.Seed}}
	return rr.readCounter(pl)
}

func (r *scaleRun) verifyLineage(pl *core.Placement, where string) error {
	rr := placeRun{
		cfg:         PlacementChaosConfig{Seed: r.cfg.Seed},
		rep:         &PlacementChaosReport{},
		counterAt:   r.counterAt,
		patternSeed: r.patternSeed,
	}
	if err := rr.verifyLineage(pl, where); err != nil {
		return fmt.Errorf("autoscale %w", err)
	}
	r.rep.RestoresVerified += rr.rep.RestoresVerified
	return nil
}

func (r *scaleRun) checkInvariants(where string) error {
	if v := r.placer.AntiAffinityViolations(); len(v) != 0 {
		r.rep.Violations += len(v)
		return fmt.Errorf("bench: autoscale seed %d %s: anti-affinity violated: %v", r.cfg.Seed, where, v)
	}
	rr := placeRun{
		cfg:   PlacementChaosConfig{Seed: r.cfg.Seed},
		rep:   &PlacementChaosReport{},
		nodes: r.nodes,
	}
	rr.placer = r.placer
	if err := rr.checkInvariants(where); err != nil {
		return fmt.Errorf("autoscale %w", err)
	}
	return nil
}

// --- Sweep -----------------------------------------------------------

// AutoscalePoint is one cell of the autoscale matrix. The convergence
// tick counts feed the 2x regression gate against the committed
// baseline.
type AutoscalePoint struct {
	LinkFaultPct     float64 `json:"link_fault_pct"`
	PeakGroups       int     `json:"peak_groups"`
	ScaledTo         int     `json:"scaled_to"`
	ScaleOuts        int     `json:"scale_outs"`
	ScaleIns         int     `json:"scale_ins"`
	Rollbacks        int     `json:"rollbacks"`
	Evacuated        int     `json:"evacuated"`
	ConvergeOutTicks int     `json:"converge_out_ticks"`
	ConvergeInTicks  int     `json:"converge_in_ticks"`
	ConvergeOutUs    float64 `json:"converge_out_us"`
	ConvergeInUs     float64 `json:"converge_in_us"`
	Verified         int     `json:"restores_verified"`
	FinalActive      int     `json:"final_active"`
}

// AutoscaleSweep runs the scale-storm matrix over link fault rates
// (store fault rates ride along at rate/5, like the placement sweep);
// every cell ramps 2→peak→2 with the dead-spare and mid-scale-in
// chaos legs enabled.
func AutoscaleSweep(peakGroups int, rates []float64, seed int64) ([]AutoscalePoint, error) {
	var out []AutoscalePoint
	for _, rate := range rates {
		cfg := AutoscaleChaosConfig{
			Seed:          seed,
			PeakGroups:    peakGroups,
			LinkDrop:      rate,
			LinkDup:       rate / 2,
			LinkCorrupt:   rate / 2,
			StoreWriteErr: rate / 5,
			StoreReadErr:  rate / 5,
		}
		rep, err := AutoscaleChaosRun(cfg)
		if err != nil {
			return nil, fmt.Errorf("bench: autoscale sweep rate=%g: %w", rate, err)
		}
		out = append(out, AutoscalePoint{
			LinkFaultPct:     rate * 100,
			PeakGroups:       rep.PeakGroups,
			ScaledTo:         rep.ScaledTo,
			ScaleOuts:        rep.ScaleOuts,
			ScaleIns:         rep.ScaleIns,
			Rollbacks:        rep.Rollbacks,
			Evacuated:        rep.Evacuated,
			ConvergeOutTicks: rep.ConvergeOutTicks,
			ConvergeInTicks:  rep.ConvergeInTicks,
			ConvergeOutUs:    float64(rep.ConvergeOutTime.Microseconds()),
			ConvergeInUs:     float64(rep.ConvergeInTime.Microseconds()),
			Verified:         rep.RestoresVerified,
			FinalActive:      rep.FinalActive,
		})
	}
	return out, nil
}
