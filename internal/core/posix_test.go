package core

import (
	"bytes"
	"testing"

	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// These tests cover the paper's claim that Aurora handles "nearly all
// POSIX primitives" as first-class objects end to end: checkpoint a
// process using each primitive, restore, and exercise the primitive on
// the restored incarnation.

func TestMsgQueueSurvivesCheckpointRestore(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	q := r.k.MsgGet(42)
	q.Send(1, []byte("queued before checkpoint"))
	q.Send(2, []byte("second message"))

	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil { // loading the store directly below
		t.Fatal(err)
	}
	// Drain the live queue to prove the restore is not aliasing it.
	q.Recv(0)
	q.Recv(0)

	// Restore into a fresh kernel (true crash semantics).
	r2 := newRig(t)
	img, readTime, err := r.store.Load(g.ID, 0)
	if err != nil {
		t.Fatal(err)
	}
	img2, err := DecodeImage(img.Encode(), r2.k.Mem)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r2.o.RestoreImage(img2, readTime, RestoreOpts{}); err != nil {
		t.Fatal(err)
	}
	q2 := r2.k.MsgGet(42)
	if q2.Len() != 2 {
		t.Fatalf("restored queue has %d messages, want 2", q2.Len())
	}
	m, err := q2.Recv(2)
	if err != nil || string(m.Data) != "second message" {
		t.Fatalf("restored msg = %q, %v", m.Data, err)
	}
}

func TestShmContentsSurviveFreshKernelRestore(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	seg, _ := r.k.ShmGet(7, 8*vm.PageSize)
	addr, _ := r.k.ShmAttach(p, seg)
	payload := make([]byte, 8*vm.PageSize)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	p.WriteMem(addr, payload)

	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil { // loading the store directly below
		t.Fatal(err)
	}

	r2 := newRig(t)
	img, readTime, _ := r.store.Load(g.ID, 0)
	img2, err := DecodeImage(img.Encode(), r2.k.Mem)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := r2.o.RestoreImage(img2, readTime, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r2.k.Process(ng.PIDs()[0])
	got := make([]byte, len(payload))
	if err := np.ReadMem(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("shm contents lost across kernels")
	}
	// The restored segment is re-registered under its key: a new
	// attach shares the same memory.
	seg2, err := r2.k.ShmGet(7, 8*vm.PageSize)
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := r2.k.Spawn(0, "other")
	addr2, err := r2.k.ShmAttach(p2, seg2)
	if err != nil {
		t.Fatal(err)
	}
	np.WriteMem(addr, []byte("cross"))
	got2 := make([]byte, 5)
	p2.ReadMem(addr2, got2)
	if string(got2) != "cross" {
		t.Fatalf("restored shm not shared: %q", got2)
	}
}

func TestCheckpointUnderMemoryPressureUsesSwap(t *testing.T) {
	// A bounded-memory machine: pages evicted between checkpoints are
	// incorporated into the next checkpoint from the swap area.
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	k.AttachSwap(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock))
	o := NewOrchestrator(k)
	mem := NewMemoryBackend(k.Mem, 4)

	p, _ := k.Spawn(0, "bigapp")
	p.SetProgram(&counter{addr: p.HeapBase()})
	payload := make([]byte, 64*vm.PageSize)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	p.Sbrk(int64(len(payload)) + vm.PageSize)
	p.WriteMem(p.HeapBase()+vm.PageSize, payload)

	g, _ := o.Persist("bigapp", p)
	o.Attach(g, mem)
	// First checkpoint establishes tracking; dirty the region again,
	// then evict much of it before the next checkpoint.
	if _, err := o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	p.WriteMem(p.HeapBase()+vm.PageSize, payload) // re-dirty all 64
	if _, err := k.Pager.Reclaim(32); err != nil {
		t.Fatal(err)
	}
	bd, err := o.Checkpoint(g, CheckpointOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if bd.SwapPages == 0 {
		t.Fatal("no pages incorporated from swap")
	}

	// The restore sees the full, correct data regardless of where
	// each page came from.
	ng, _, err := o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := k.Process(ng.PIDs()[0])
	got := make([]byte, len(payload))
	if err := np.ReadMem(np.HeapBase()+vm.PageSize, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("swap-incorporated checkpoint corrupted data")
	}
}

func TestPipelineOfProcessesSurvivesRestore(t *testing.T) {
	// A classic shell-style pipeline: parent | child over a pipe, with
	// in-flight data at checkpoint time.
	r := newRig(t)
	parent := spawnCounter(t, r)
	rfd, wfd, _ := r.k.NewPipe(parent)
	child, _ := r.k.Fork(parent)
	child.SetProgram(&counter{addr: child.HeapBase()})

	// Parent writes; nobody has read yet: the bytes are in flight.
	if _, err := r.k.Write(parent, wfd, []byte("in-flight-data")); err != nil {
		t.Fatal(err)
	}

	g, _ := r.o.Persist("pipeline", parent)
	r.o.Attach(g, r.store)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}

	ng, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	pids := ng.PIDs()
	if len(pids) != 2 {
		t.Fatalf("restored %d processes", len(pids))
	}
	// The restored child reads what the pre-checkpoint parent wrote,
	// through the restored shared descriptor table.
	var nchild *kernel.Process
	for _, pid := range pids {
		q, _ := r.k.Process(pid)
		if q.PPID != 0 {
			nchild = q
		}
	}
	buf := make([]byte, 32)
	n, err := r.k.Read(nchild, rfd, buf)
	if err != nil || string(buf[:n]) != "in-flight-data" {
		t.Fatalf("restored pipe read = %q, %v", buf[:n], err)
	}
}

func TestDupDescriptorsRestoredAsShared(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	_, wfd, _ := r.k.NewPipe(p)
	w2, _ := p.FDs.Dup(wfd)

	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)
	r.o.Checkpoint(g, CheckpointOpts{})

	ng, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	fd1, err := np.FDs.Get(wfd)
	if err != nil {
		t.Fatal(err)
	}
	fd2, err := np.FDs.Get(w2)
	if err != nil {
		t.Fatal(err)
	}
	if fd1 != fd2 {
		t.Fatal("dup'd descriptors restored as separate descriptions")
	}
}

func TestMctlRestorePolicyHints(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	api := r.api
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.store)

	// Two extra regions: one hinted eager, one hinted lazy.
	hot, err := p.Space.MapAnon(8*vm.PageSize, vm.ProtRead|vm.ProtWrite, false, "hot-index")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := p.Space.MapAnon(8*vm.PageSize, vm.ProtRead|vm.ProtWrite, false, "cold-bulk")
	if err != nil {
		t.Fatal(err)
	}
	p.WriteMem(hot.Start, make([]byte, 8*vm.PageSize))
	p.WriteMem(cold.Start, make([]byte, 8*vm.PageSize))
	if err := api.MctlPolicy(p, hot.Start, vm.RestoreEager); err != nil {
		t.Fatal(err)
	}
	if err := api.MctlPolicy(p, cold.Start, vm.RestoreLazy); err != nil {
		t.Fatal(err)
	}
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}

	// Restore with the orchestrator default set to lazy: the eager
	// hint must override for the hot region only.
	ng, _, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	var hotObj, coldObj *vm.Object
	for _, m := range np.Space.Mappings() {
		switch m.Name {
		case "hot-index":
			hotObj = m.Obj
		case "cold-bulk":
			coldObj = m.Obj
		}
	}
	if hotObj == nil || coldObj == nil {
		t.Fatal("hinted mappings not restored")
	}
	if hotObj.ResidentCount() != 8 {
		t.Fatalf("eager-hinted region resident=%d, want 8", hotObj.ResidentCount())
	}
	if coldObj.ResidentCount() != 0 {
		t.Fatalf("lazy-hinted region resident=%d, want 0 (faults on demand)", coldObj.ResidentCount())
	}
	// The lazy region's data still reads correctly through the source.
	buf := make([]byte, vm.PageSize)
	if err := np.ReadMem(np.HeapBase(), buf[:8]); err != nil {
		t.Fatal(err)
	}
}
