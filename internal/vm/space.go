package vm

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

var spaceIDs atomic.Uint64

// Mapping is one entry of an address space: a virtual address range
// backed by a window into a VM object.
type Mapping struct {
	Start  Addr
	End    Addr // exclusive
	Obj    *Object
	Off    int64 // byte offset of Start within Obj
	Prot   Prot
	Shared bool // shared mapping: writes go to the object for all mappers
	Name   string
	// NoPersist excludes the mapping from checkpoints (sls_mctl):
	// scratch regions the application can rebuild are skipped to
	// shrink images and stop time.
	NoPersist bool
	// Restore is the sls_mctl lazy-restore policy hint for this
	// mapping's pages.
	Restore RestorePolicy
}

// RestorePolicy is an application hint (sls_mctl) for how a mapping's
// pages should come back at restore time.
type RestorePolicy uint8

// Restore policies.
const (
	// RestoreDefault follows the orchestrator-wide choice.
	RestoreDefault RestorePolicy = iota
	// RestoreEager pages everything in up front (latency-critical
	// regions: index structures, hot code).
	RestoreEager
	// RestoreLazy always faults pages in on demand (cold bulk data).
	RestoreLazy
)

// Len returns the mapping's length in bytes.
func (m *Mapping) Len() int64 { return int64(m.End - m.Start) }

// pageIndex translates a virtual address inside the mapping to a page
// index within the backing object.
func (m *Mapping) pageIndex(a Addr) int64 {
	return (int64(a.PageBase()-m.Start) + m.Off) >> PageShift
}

// pte is a simulated page-table entry. The data path always reads
// through the VM object (so shared pages can be replaced atomically for
// all mappers, as a kernel pmap would); the pte tracks per-address-
// space permission and the referenced bit used by the clock algorithm.
type pte struct {
	present  bool
	writable bool
	accessed bool
}

// AddressSpace is a simulated process address space: an ordered set of
// mappings plus a page table.
type AddressSpace struct {
	ID uint64

	mu   sync.Mutex
	maps []*Mapping // sorted by Start, non-overlapping
	pt   map[Addr]*pte

	pm    *PhysMem
	meter *Meter
}

// NewAddressSpace creates an empty address space.
func NewAddressSpace(pm *PhysMem, meter *Meter) *AddressSpace {
	return &AddressSpace{
		ID:    spaceIDs.Add(1),
		pt:    make(map[Addr]*pte),
		pm:    pm,
		meter: meter,
	}
}

// Meter returns the cost meter shared by this space.
func (as *AddressSpace) Meter() *Meter { return as.meter }

// PhysMem returns the frame allocator backing this space.
func (as *AddressSpace) PhysMem() *PhysMem { return as.pm }

// Map installs a mapping of length bytes of obj at start (both
// page-aligned; length is rounded up). If start is zero, a free range
// above 0x4000_0000 is chosen. Returns the mapped range.
func (as *AddressSpace) Map(start Addr, length int64, prot Prot, obj *Object, off int64, shared bool, name string) (*Mapping, error) {
	if length <= 0 || off < 0 || off&PageMask != 0 || start&Addr(PageMask) != 0 {
		return nil, ErrBadRange
	}
	length = RoundUpPage(length)

	as.mu.Lock()
	defer as.mu.Unlock()
	if start == 0 {
		start = as.findFreeLocked(length)
	}
	end := start + Addr(length)
	if end <= start {
		return nil, ErrBadRange
	}
	for _, m := range as.maps {
		if start < m.End && m.Start < end {
			return nil, ErrMapOverlap
		}
	}
	obj.Ref()
	obj.Grow(off + length)
	m := &Mapping{Start: start, End: end, Obj: obj, Off: off, Prot: prot, Shared: shared, Name: name}
	as.maps = append(as.maps, m)
	sort.Slice(as.maps, func(i, j int) bool { return as.maps[i].Start < as.maps[j].Start })
	return m, nil
}

// MapAnon creates and maps a fresh anonymous object.
func (as *AddressSpace) MapAnon(length int64, prot Prot, shared bool, name string) (*Mapping, error) {
	obj := NewObject(name, RoundUpPage(length))
	m, err := as.Map(0, length, prot, obj, 0, shared, name)
	// Map took its own reference; drop the construction reference.
	obj.Deref()
	if err != nil {
		return nil, err
	}
	return m, nil
}

// findFreeLocked picks the lowest free range of the given length at or
// above the mmap base.
func (as *AddressSpace) findFreeLocked(length int64) Addr {
	const mmapBase = Addr(0x4000_0000)
	candidate := mmapBase
	for _, m := range as.maps {
		if m.End <= candidate {
			continue
		}
		if m.Start >= candidate+Addr(length) {
			break
		}
		candidate = m.End
	}
	return candidate
}

// Unmap removes all mappings fully contained in [start, start+length).
// Partial unmaps of a mapping are not supported (as in early mmap
// implementations); attempting one returns ErrBadRange.
func (as *AddressSpace) Unmap(start Addr, length int64) error {
	end := start + Addr(RoundUpPage(length))
	as.mu.Lock()
	defer as.mu.Unlock()
	kept := as.maps[:0]
	var removed []*Mapping
	for _, m := range as.maps {
		switch {
		case m.Start >= start && m.End <= end:
			removed = append(removed, m)
		case m.Start < end && start < m.End:
			as.maps = append(kept, as.maps[len(kept):]...)
			return ErrBadRange
		default:
			kept = append(kept, m)
		}
	}
	as.maps = kept
	for _, m := range removed {
		for a := m.Start; a < m.End; a += PageSize {
			delete(as.pt, a)
		}
		if m.Obj.Deref() {
			m.Obj.ReleaseAll(as.pm)
		}
	}
	return nil
}

// Find returns the mapping containing addr, or nil.
func (as *AddressSpace) Find(addr Addr) *Mapping {
	as.mu.Lock()
	defer as.mu.Unlock()
	return as.findLocked(addr)
}

func (as *AddressSpace) findLocked(addr Addr) *Mapping {
	i := sort.Search(len(as.maps), func(i int) bool { return as.maps[i].End > addr })
	if i < len(as.maps) && as.maps[i].Start <= addr {
		return as.maps[i]
	}
	return nil
}

// Mappings returns a snapshot of the mapping list.
func (as *AddressSpace) Mappings() []*Mapping {
	as.mu.Lock()
	defer as.mu.Unlock()
	out := make([]*Mapping, len(as.maps))
	copy(out, as.maps)
	return out
}

// Protect changes the protection of the mapping starting at start.
func (as *AddressSpace) Protect(start Addr, prot Prot) error {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, m := range as.maps {
		if m.Start == start {
			m.Prot = prot
			// Downgrade any cached writable PTEs.
			if prot&ProtWrite == 0 {
				for a := m.Start; a < m.End; a += PageSize {
					if p, ok := as.pt[a]; ok && p.writable {
						p.writable = false
						as.meter.ChargePTE(1)
					}
				}
			}
			return nil
		}
	}
	return ErrNoMapping
}

// Read copies len(p) bytes from the address space starting at addr.
func (as *AddressSpace) Read(addr Addr, p []byte) error {
	return as.access(addr, p, false)
}

// Write copies p into the address space starting at addr.
func (as *AddressSpace) Write(addr Addr, p []byte) error {
	return as.access(addr, p, true)
}

// access is the unified data path: it walks pages, faulting as needed.
// For writes, the fault returns with the object's write bracket held
// (Object.BeginWrite) so the permission check and the data copy are
// atomic with respect to a serialization barrier, as they would be at
// a real MMU; the bracket is released once the copy has landed.
func (as *AddressSpace) access(addr Addr, p []byte, write bool) error {
	for n := 0; n < len(p); {
		pageBase := (addr + Addr(n)).PageBase()
		po := (addr + Addr(n)).PageOffset()
		span := int(PageSize - po)
		if span > len(p)-n {
			span = len(p) - n
		}
		frame, obj, err := as.fault(pageBase, write)
		if err != nil {
			return err
		}
		if write {
			copy(frame.Data[po:po+int64(span)], p[n:n+span])
			obj.EndWrite()
		} else if frame != nil {
			copy(p[n:n+span], frame.Data[po:po+int64(span)])
		} else {
			zero(p[n : n+span]) // unresident anon page reads as zero
		}
		n += span
	}
	return nil
}

func zero(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// fault resolves one page access, servicing faults. For reads of
// unresident anonymous pages it returns (nil, nil, nil): the page
// reads as zero without allocating a frame. For successful writes the
// object is returned with its write bracket held (Object.BeginWrite);
// the caller must EndWrite after copying the data.
func (as *AddressSpace) fault(pageBase Addr, write bool) (*Frame, *Object, error) {
	as.mu.Lock()
	m := as.findLocked(pageBase)
	if m == nil {
		as.mu.Unlock()
		return nil, nil, ErrNoMapping
	}
	if write && m.Prot&ProtWrite == 0 {
		as.mu.Unlock()
		return nil, nil, ErrProtection
	}
	if !write && m.Prot&ProtRead == 0 {
		as.mu.Unlock()
		return nil, nil, ErrProtection
	}
	obj := m.Obj
	idx := m.pageIndex(pageBase)
	entry, havePTE := as.pt[pageBase]
	as.mu.Unlock()

	if !write {
		// Read path: soft fault to install the PTE, then read through
		// the object (possibly its shadow chain).
		f, owner := obj.Lookup(idx)
		if f == nil {
			if slot, swapped := obj.SwapSlot(idx); swapped {
				return nil, nil, &SwapFault{Obj: obj, Page: idx, Slot: slot}
			}
			// Lazy restore: pull the page from the checkpoint image.
			lf, err := obj.fetchFromSource(as.pm, idx, as.meter)
			if err != nil {
				return nil, nil, err
			}
			if lf != nil {
				as.meter.ChargeFault()
				as.installPTE(pageBase, false)
				obj.Touch(idx)
				return lf, nil, nil
			}
			return nil, nil, nil // zero-fill read, no allocation
		}
		if !havePTE {
			as.installPTE(pageBase, false)
			as.meter.ChargeFault()
		} else {
			entry.accessed = true
		}
		_ = owner
		obj.Touch(idx)
		return f, nil, nil
	}

	// Write path: from here to the caller's data copy a serialization
	// barrier must not intervene, or the copy could mutate a frame the
	// barrier already captured.
	obj.BeginWrite()
	if _, swapped := obj.SwapSlot(idx); swapped {
		if _, resident := obj.Lookup(idx); resident == nil {
			if slot, ok := obj.SwapSlot(idx); ok {
				obj.EndWrite()
				return nil, nil, &SwapFault{Obj: obj, Page: idx, Slot: slot, Write: true}
			}
		}
	}
	if havePTE && entry.writable {
		// Fast path: but the page may have been COW-protected by a
		// barrier after this PTE was cached; ProtectObject clears the
		// writable bit, so reaching here means the page is writable.
		f, owner := obj.Lookup(idx)
		if f != nil && owner == obj && !obj.IsProtected(idx) {
			entry.accessed = true
			obj.MarkDirty(idx)
			obj.Touch(idx)
			return f, obj, nil
		}
	}

	as.meter.ChargeFault()

	// COW-protected page: Aurora's shared-COW rule.
	if obj.IsProtected(idx) {
		f, err := obj.CowFault(as.pm, idx, as.meter)
		if err != nil {
			obj.EndWrite()
			return nil, nil, err
		}
		as.installPTE(pageBase, true)
		obj.Touch(idx)
		return f, obj, nil
	}

	// Resident in this object, or shadow-chain / zero-fill allocation.
	f, _, err := obj.EnsurePage(as.pm, idx, as.meter)
	if err != nil {
		obj.EndWrite()
		return nil, nil, err
	}
	obj.MarkDirty(idx)
	obj.Touch(idx)
	as.installPTE(pageBase, true)
	return f, obj, nil
}

func (as *AddressSpace) installPTE(pageBase Addr, writable bool) {
	as.mu.Lock()
	e, ok := as.pt[pageBase]
	if !ok {
		e = &pte{}
		as.pt[pageBase] = e
	}
	e.present = true
	e.writable = writable
	e.accessed = true
	as.mu.Unlock()
	as.meter.ChargePTE(1)
}

// ProtectObject clears the writable bit of every cached PTE that maps
// one of the given object pages, charging one PTE operation per entry
// changed. This is the address-space half of the serialization
// barrier; it returns the number of PTEs manipulated.
func (as *AddressSpace) ProtectObject(obj *Object, pages map[int64]*Frame) int64 {
	as.mu.Lock()
	defer as.mu.Unlock()
	var ops int64
	for _, m := range as.maps {
		if m.Obj != obj {
			continue
		}
		for a := m.Start; a < m.End; a += PageSize {
			idx := m.pageIndex(a)
			if _, ok := pages[idx]; !ok {
				continue
			}
			if e, ok := as.pt[a]; ok && e.writable {
				e.writable = false
				ops++
			}
		}
	}
	as.meter.ChargeProtect(ops)
	return ops
}

// InvalidateObjectPage drops any PTE mapping the given object page;
// used by the pageout daemon when evicting to swap.
func (as *AddressSpace) InvalidateObjectPage(obj *Object, idx int64) {
	as.mu.Lock()
	defer as.mu.Unlock()
	for _, m := range as.maps {
		if m.Obj != obj {
			continue
		}
		base := m.Start + Addr((idx<<PageShift)-m.Off)
		if base >= m.Start && base < m.End {
			if _, ok := as.pt[base]; ok {
				delete(as.pt, base)
				as.meter.ChargePTE(1)
			}
		}
	}
}

// Objects returns the distinct objects mapped by this space.
func (as *AddressSpace) Objects() []*Object {
	as.mu.Lock()
	defer as.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []*Object
	for _, m := range as.maps {
		if !seen[m.Obj.ID] {
			seen[m.Obj.ID] = true
			out = append(out, m.Obj)
		}
	}
	return out
}

// Fork clones the address space with fork semantics: shared mappings
// alias the same object; private mappings get a shadow object so that
// writes in either copy COW privately (the standard mechanism whose
// shared-memory breakage Aurora's checkpoint COW avoids).
func (as *AddressSpace) Fork() *AddressSpace {
	as.mu.Lock()
	defer as.mu.Unlock()
	child := NewAddressSpace(as.pm, as.meter)
	for _, m := range as.maps {
		var obj *Object
		if m.Shared {
			obj = m.Obj
			obj.Ref()
		} else {
			obj = m.Obj.NewShadow()
			// The parent must also COW against the snapshot: replace
			// the parent's object with its own fresh shadow so both
			// sides see the pre-fork data and copy up on write.
			parentShadow := m.Obj.NewShadow()
			if m.Obj.Deref() {
				// unreachable: the two shadows hold references
				m.Obj.ReleaseAll(as.pm)
			}
			m.Obj = parentShadow
			// Invalidate parent's writable PTEs for this mapping: the
			// next write must COW up into the new shadow.
			for a := m.Start; a < m.End; a += PageSize {
				if e, ok := as.pt[a]; ok && e.writable {
					e.writable = false
					as.meter.ChargePTE(1)
				}
			}
		}
		cm := &Mapping{Start: m.Start, End: m.End, Obj: obj, Off: m.Off, Prot: m.Prot, Shared: m.Shared, Name: m.Name}
		child.maps = append(child.maps, cm)
	}
	sort.Slice(child.maps, func(i, j int) bool { return child.maps[i].Start < child.maps[j].Start })
	return child
}

// ReleaseAll frees every resident page of the object. Called when an
// object's last reference is dropped.
func (o *Object) ReleaseAll(pm *PhysMem) {
	o.mu.Lock()
	pages := o.pages
	o.pages = make(map[int64]*Frame)
	shadow := o.shadow
	o.shadow = nil
	o.mu.Unlock()
	for _, f := range pages {
		pm.Free(f)
	}
	if shadow != nil && shadow.Deref() {
		shadow.ReleaseAll(pm)
	}
}

// String identifies the address space for debugging.
func (as *AddressSpace) String() string {
	return fmt.Sprintf("as%d(%d mappings)", as.ID, len(as.Mappings()))
}

// SwapFault is returned by the data path when an access touches a
// paged-out page; the kernel's pager services it and retries.
type SwapFault struct {
	Obj   *Object
	Page  int64
	Slot  int64
	Write bool
}

// Error implements error.
func (sf *SwapFault) Error() string {
	return fmt.Sprintf("vm: page %d of %s is on swap (slot %d)", sf.Page, sf.Obj, sf.Slot)
}
