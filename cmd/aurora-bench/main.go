// Command aurora-bench regenerates the paper's evaluation: Table 3
// (checkpoint stop-time breakdown), Table 4 (restore-time breakdown),
// and the quantitative claims of §2-§4, plus the design ablations.
//
// Usage:
//
//	aurora-bench                 # everything at the scaled working set
//	aurora-bench -table 3        # just Table 3
//	aurora-bench -table 4 -ws 2147483648   # Table 4 at the paper's 2 GiB
//	aurora-bench -claim freq     # one claim: freq|density|redis|criu|warm
//	aurora-bench -ablation cow   # one ablation: cow|dedup
//
// Times are virtual (cost-model) microseconds; see DESIGN.md §5.
package main

import (
	"flag"
	"fmt"
	"os"

	"aurora/internal/bench"
)

func main() {
	table := flag.Int("table", 0, "reproduce one paper table (3 or 4); 0 = all")
	claim := flag.String("claim", "", "reproduce one claim: freq|density|redis|criu|warm")
	ablation := flag.String("ablation", "", "run one ablation: cow|dedup")
	ws := flag.Int64("ws", 64<<20, "Redis working-set bytes (paper: 2 GiB = 2147483648)")
	dirty := flag.Float64("dirty", 0.125, "fraction of the working set dirtied between checkpoints")
	funcs := flag.Int("funcs", 16, "functions deployed for the density claim")
	ops := flag.Int("ops", 500, "operations for the Redis persistence claim")
	flag.Parse()

	all := *table == 0 && *claim == "" && *ablation == ""
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "aurora-bench:", err)
		os.Exit(1)
	}

	if all || *table == 3 {
		r, err := bench.Table3(*ws, *dirty)
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *table == 4 {
		r, err := bench.Table4(*ws)
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *claim == "freq" {
		r, err := bench.Freq(100, 100, *ws/4)
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *claim == "density" {
		r, err := bench.Density(*funcs)
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *claim == "redis" {
		r, err := bench.RedisPersistence(*ops, 16<<20)
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *claim == "criu" {
		r, err := bench.CRIUCompare(*ws / 2)
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *claim == "warm" {
		r, err := bench.WarmStart()
		if err != nil {
			fail(err)
		}
		r.Print()
	}
	if all || *ablation == "cow" {
		r, err := bench.AblationSharedCOW()
		if err != nil {
			fail(err)
		}
		fmt.Printf("Ablation: shared-COW checkpointing\n")
		fmt.Printf("  post-checkpoint shared write: %d COW fault(s), sharing preserved\n", r.SharedFaults)
		fmt.Printf("  fork-style COW would have privatized the page (see vm fork tests)\n\n")
	}
	if all || *ablation == "dedup" {
		r, err := bench.AblationDedup(5, *ws/4)
		if err != nil {
			fail(err)
		}
		fmt.Printf("Ablation: object-store dedup, %d identical full checkpoints\n", r.Checkpoints)
		fmt.Printf("  %d logical pages -> %d physical blocks (%.0f%% saved)\n\n",
			r.LogicalPages, r.BlocksStored, r.SavedFrac*100)
	}
}
