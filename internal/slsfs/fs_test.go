package slsfs

import (
	"bytes"
	"testing"
	"testing/quick"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func testFS(t *testing.T) *FS {
	if t != nil {
		t.Helper()
	}
	clock := storage.NewClock()
	store := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	return New(store, 1)
}

func TestCreateWriteRead(t *testing.T) {
	fs := testFS(t)
	f, err := fs.Create("/data.log")
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("write-ahead entry")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read %q", got)
	}
	if f.Size() != int64(len(msg)) {
		t.Fatalf("size = %d", f.Size())
	}
}

func TestDirectoryOperations(t *testing.T) {
	fs := testFS(t)
	if err := fs.Mkdir("/var"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/var/db"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Mkdir("/var"); err != ErrExist {
		t.Fatalf("duplicate mkdir err = %v", err)
	}
	if _, err := fs.Create("/var/db/data"); err != nil {
		t.Fatal(err)
	}
	names, err := fs.ReadDir("/var/db")
	if err != nil || len(names) != 1 || names[0] != "data" {
		t.Fatalf("readdir = %v, %v", names, err)
	}
	if _, err := fs.ReadDir("/var/db/data"); err != ErrNotDir {
		t.Fatalf("readdir on file err = %v", err)
	}
	if err := fs.Rmdir("/var"); err != ErrNotEmpty {
		t.Fatalf("rmdir non-empty err = %v", err)
	}
	if err := fs.Unlink("/var/db/data"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Rmdir("/var/db"); err != nil {
		t.Fatal(err)
	}
}

func TestPathValidation(t *testing.T) {
	fs := testFS(t)
	if _, err := fs.Open("relative/path"); err != ErrBadPath {
		t.Fatalf("relative path err = %v", err)
	}
	if _, err := fs.Open("/a/../b"); err != ErrBadPath {
		t.Fatalf("dotdot err = %v", err)
	}
	if _, err := fs.Open("/missing"); err != ErrNotExist {
		t.Fatalf("missing err = %v", err)
	}
}

func TestRename(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/old")
	f.WriteAt([]byte("contents"), 0)
	if err := fs.Rename("/old", "/new"); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Open("/old"); err != ErrNotExist {
		t.Fatal("old name still resolves")
	}
	g, err := fs.Open("/new")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8)
	g.ReadAt(got, 0)
	if string(got) != "contents" {
		t.Fatalf("renamed contents = %q", got)
	}
}

func TestUnlinkedOpenFileSurvives(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/tmpfile")
	f.WriteAt([]byte("anonymous data"), 0)
	if err := fs.Unlink("/tmpfile"); err != nil {
		t.Fatal(err)
	}
	// Name is gone but the open file still works.
	if _, err := fs.Open("/tmpfile"); err != ErrNotExist {
		t.Fatal("unlinked name still resolves")
	}
	got := make([]byte, 14)
	if _, err := f.ReadAt(got, 0); err != nil || string(got) != "anonymous data" {
		t.Fatalf("read after unlink = %q, %v", got, err)
	}
	// Inode persists in snapshots while the open ref exists.
	epoch, err := fs.Snapshot("with-orphan")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Load(fs.Store(), fs.Group(), epoch)
	if err != nil {
		t.Fatal(err)
	}
	orphan, err := fs2.OpenOrphan(f.Ino())
	if err != nil {
		t.Fatal(err)
	}
	got2 := make([]byte, 14)
	if _, err := orphan.ReadAt(got2, 0); err != nil || string(got2) != "anonymous data" {
		t.Fatalf("orphan read after restore = %q, %v", got2, err)
	}
	// Closing the last reference drops the inode for good.
	if err := f.CloseFile(); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.OpenOrphan(f.Ino()); err != ErrNotExist {
		t.Fatal("inode survived last close with no links")
	}
}

func TestSnapshotLoadRoundTrip(t *testing.T) {
	fs := testFS(t)
	fs.Mkdir("/etc")
	f, _ := fs.Create("/etc/config")
	payload := make([]byte, 3*vm.PageSize+100)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	f.WriteAt(payload, 0)

	epoch, err := fs.Snapshot("v1")
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := Load(fs.Store(), fs.Group(), epoch)
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/etc/config")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := g.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("snapshot contents diverge")
	}
	if size, mode, _ := fs2.Stat("/etc/config"); size != int64(len(payload)) || mode != ModeFile {
		t.Fatalf("stat = %d, %v", size, mode)
	}
}

func TestIncrementalSnapshotWritesOnlyDirty(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/big")
	f.WriteAt(make([]byte, 64*vm.PageSize), 0)
	if _, err := fs.Snapshot(""); err != nil {
		t.Fatal(err)
	}
	st1 := fs.Store().Stats()

	// Dirty exactly one page.
	f.WriteAt([]byte{0xff}, 10*vm.PageSize)
	if _, err := fs.Snapshot(""); err != nil {
		t.Fatal(err)
	}
	st2 := fs.Store().Stats()
	if delta := st2.Blocks - st1.Blocks; delta != 1 {
		t.Fatalf("second snapshot wrote %d new blocks, want 1", delta)
	}
}

func TestSnapshotNamedLookup(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/a")
	f.WriteAt([]byte("v1"), 0)
	fs.Snapshot("release-1")
	f.WriteAt([]byte("v2"), 0)
	fs.Snapshot("release-2")

	old, err := LoadNamed(fs.Store(), "release-1")
	if err != nil {
		t.Fatal(err)
	}
	g, _ := old.Open("/a")
	got := make([]byte, 2)
	g.ReadAt(got, 0)
	if string(got) != "v1" {
		t.Fatalf("release-1 view = %q — snapshots are not immutable", got)
	}
	cur, err := LoadLatest(fs.Store(), fs.Group())
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := cur.Open("/a")
	g2.ReadAt(got, 0)
	if string(got) != "v2" {
		t.Fatalf("latest view = %q", got)
	}
}

func TestCloneIsZeroCopyAndIsolated(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/shared")
	base := make([]byte, 16*vm.PageSize)
	for i := range base {
		base[i] = byte(i)
	}
	f.WriteAt(base, 0)
	epoch, _ := fs.Snapshot("golden")
	written := fs.Store().Stats().BlocksFreed // 0; just anchor
	_ = written
	blocksBefore := fs.Store().Stats().Blocks

	clone, err := Clone(fs.Store(), fs.Group(), epoch, 77)
	if err != nil {
		t.Fatal(err)
	}
	// Clone reads the same data without copying blocks.
	g, _ := clone.Open("/shared")
	got := make([]byte, len(base))
	g.ReadAt(got, 0)
	if !bytes.Equal(got, base) {
		t.Fatal("clone contents differ")
	}
	if fs.Store().Stats().Blocks != blocksBefore {
		t.Fatal("clone copied data blocks")
	}

	// Clone writes are isolated from the source.
	g.WriteAt([]byte("clone-write"), 0)
	src, _ := fs.Open("/shared")
	srcGot := make([]byte, 11)
	src.ReadAt(srcGot, 0)
	if string(srcGot) == "clone-write" {
		t.Fatal("clone write leaked into source")
	}

	// Clone snapshot into its own group shares all clean blocks.
	if _, err := clone.Snapshot("clone-v1"); err != nil {
		t.Fatal(err)
	}
	after := fs.Store().Stats()
	// Only the one dirtied page should be new.
	if after.Blocks > blocksBefore+1 {
		t.Fatalf("clone snapshot created %d new blocks, want <= 1", after.Blocks-blocksBefore)
	}
}

func TestFSFileThroughKernelDescriptors(t *testing.T) {
	fs := testFS(t)
	k := kernel.New()
	p, _ := k.Spawn(0, "app")
	f, _ := fs.Create("/applog")

	fd, desc := p.FDs.Install(k, f, kernel.ORdWr)
	_ = desc
	if _, err := k.Write(p, fd, []byte("line1\n")); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Write(p, fd, []byte("line2\n")); err != nil {
		t.Fatal(err)
	}
	// Offset advanced; rewind by reopening at a second descriptor.
	fd2, _ := p.FDs.Install(k, f, kernel.ORdOnly)
	buf := make([]byte, 12)
	n, err := k.Read(p, fd2, buf)
	if err != nil || string(buf[:n]) != "line1\nline2\n" {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	// EOF behaves as would-block for pollers.
	if _, err := k.Read(p, fd2, buf); err != kernel.ErrWouldBlock {
		t.Fatalf("eof err = %v", err)
	}
}

func TestAppendFlag(t *testing.T) {
	fs := testFS(t)
	k := kernel.New()
	p, _ := k.Spawn(0, "app")
	f, _ := fs.Create("/wal")
	fd, _ := p.FDs.Install(k, f, kernel.OWrOnly|kernel.OAppend)
	k.Write(p, fd, []byte("aaa"))
	k.Write(p, fd, []byte("bbb"))
	got := make([]byte, 6)
	f.ReadAt(got, 0)
	if string(got) != "aaabbb" {
		t.Fatalf("append result = %q", got)
	}
}

func TestTruncate(t *testing.T) {
	fs := testFS(t)
	f, _ := fs.Create("/t")
	f.WriteAt(make([]byte, 2*vm.PageSize), 0)
	f.Truncate(100)
	if f.Size() != 100 {
		t.Fatalf("size = %d", f.Size())
	}
	// Extended reads see zeros after truncate+regrow.
	f.Truncate(vm.PageSize * 3)
	got := make([]byte, 10)
	f.ReadAt(got, 2*vm.PageSize)
	for _, b := range got {
		if b != 0 {
			t.Fatal("regrown region not zero")
		}
	}
}

func TestSnapshotPersistsAcrossStoreReopen(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)
	store := objstore.Create(dev, clock)
	fs := New(store, 1)
	f, _ := fs.Create("/durable")
	f.WriteAt([]byte("survives restart"), 0)
	fs.Snapshot("final")
	if err := store.Sync(); err != nil {
		t.Fatal(err)
	}

	store2, err := objstore.Open(dev, clock)
	if err != nil {
		t.Fatal(err)
	}
	fs2, err := LoadNamed(store2, "final")
	if err != nil {
		t.Fatal(err)
	}
	g, err := fs2.Open("/durable")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	g.ReadAt(got, 0)
	if string(got) != "survives restart" {
		t.Fatalf("after restart = %q", got)
	}
}

// Property: a snapshot is a faithful point-in-time image under any
// sequence of writes before and after it.
func TestQuickSnapshotFidelity(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(before, after []op) bool {
		fs := testFS(nil)
		file, _ := fs.Create("/f")
		model := make([]byte, 1<<16)
		var hi int64
		for _, o := range before {
			if len(o.Data) == 0 {
				continue
			}
			if len(o.Data) > 4096 {
				o.Data = o.Data[:4096]
			}
			file.WriteAt(o.Data, int64(o.Off))
			copy(model[o.Off:], o.Data)
			if end := int64(o.Off) + int64(len(o.Data)); end > hi {
				hi = end
			}
		}
		epoch, err := fs.Snapshot("")
		if err != nil {
			return false
		}
		snapshotImage := append([]byte(nil), model[:hi]...)

		for _, o := range after {
			if len(o.Data) == 0 {
				continue
			}
			if len(o.Data) > 4096 {
				o.Data = o.Data[:4096]
			}
			file.WriteAt(o.Data, int64(o.Off))
		}
		view, err := Load(fs.Store(), fs.Group(), epoch)
		if err != nil {
			return false
		}
		vf, err := view.Open("/f")
		if err != nil {
			return false
		}
		got := make([]byte, len(snapshotImage))
		vf.ReadAt(got, 0)
		return bytes.Equal(got, snapshotImage)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
