package bench

import (
	"fmt"
	"sort"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func init() {
	kernel.RegisterProgram("bench-fleet-touch", func(*kernel.Kernel, *kernel.Process, []byte) (kernel.Program, error) {
		return &kernel.FuncProgram{Name: "bench-fleet-touch",
			Fn: func(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error { return nil }}, nil
	})
}

// fleetTouchPages is each group's dirtied working set per epoch beyond
// the counter page — FaaS-sized, so group count (not image size) is
// the scaling axis.
const fleetTouchPages = 2

// FleetPoint is one datapoint of the fleet-density sweep: an open-loop
// checkpoint storm across Groups persistence groups multiplexed onto
// the fixed shard-worker pool.
type FleetPoint struct {
	Groups      int           // concurrently live persistence groups
	Checkpoints int           // total checkpoints across the fleet
	StopP50     time.Duration // median application stop time
	StopP99     time.Duration // 99th-percentile stop time — the density claim
	StopMax     time.Duration // worst stop observed
	CkptPerVSec float64       // aggregate fleet checkpoint throughput (virtual)
	Dispatches  int64         // flush jobs run on shard workers
	Shards      int           // shard count the fleet ran on
	MemPeak     int64         // high-water frame bytes pinned by flush backlogs
	BudgetStall int64         // Enqueue waits caused by the global memory budget
	DedupHits   int64         // block writes absorbed by the content-hash index
}

// FleetStorm measures how per-group checkpoint latency and aggregate
// throughput respond as the number of groups multiplexed onto one
// sharded orchestrator grows. Every group checkpoints `rounds` times
// in an open-loop storm (no group waits for another's flush), all
// flushing into one shared store so cross-group dedup and the global
// memory budget are both on the path.
func FleetStorm(groupCounts []int, rounds int, seed int64) ([]FleetPoint, error) {
	points := make([]FleetPoint, 0, len(groupCounts))
	for _, n := range groupCounts {
		clock := storage.NewClock()
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := core.NewOrchestrator(k)
		o.FleetMemBudget = 1 << 20
		st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
		store := core.NewStoreBackend(st, k.Mem, clock)

		groups := make([]*core.Group, n)
		buf := make([]byte, vm.PageSize)
		for i := range groups {
			p, err := k.Spawn(0, "fleet-touch")
			if err != nil {
				return nil, err
			}
			pages := fleetTouchPages
			p.SetProgram(&kernel.FuncProgram{Name: "bench-fleet-touch",
				Fn: func(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
					var b [8]byte
					if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
						return err
					}
					b[0]++
					for pg := 0; pg <= pages; pg++ {
						if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), b[:]); err != nil {
							return err
						}
					}
					return nil
				}})
			// Unique initial content per group so the dedup numbers come
			// from real overlap (zero pages, common patterns), not from a
			// degenerate all-identical fleet.
			for pg := 1; pg <= pages; pg++ {
				for j := range buf {
					buf[j] = byte(int64(i)*17 + int64(pg)*5 + seed)
				}
				if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
					return nil, err
				}
			}
			g, err := o.Persist(fmt.Sprintf("fleet-%d", i), p)
			if err != nil {
				return nil, err
			}
			o.Attach(g, store)
			groups[i] = g
		}

		stops := make([]time.Duration, 0, n*rounds)
		start := clock.Now()
		for r := 0; r < rounds; r++ {
			if _, err := k.Run(n); err != nil {
				return nil, err
			}
			for _, g := range groups {
				bd, err := o.Checkpoint(g, core.CheckpointOpts{})
				if err != nil {
					return nil, fmt.Errorf("%d groups, round %d: %w", n, r, err)
				}
				stops = append(stops, bd.StopTime)
			}
		}
		for _, g := range groups {
			if err := o.Sync(g); err != nil {
				return nil, fmt.Errorf("%d groups: final sync: %w", n, err)
			}
		}
		elapsed := clock.Now() - start

		fstats := o.FleetStats()
		o.Close()
		sort.Slice(stops, func(i, j int) bool { return stops[i] < stops[j] })
		pt := FleetPoint{
			Groups:      n,
			Checkpoints: len(stops),
			StopP50:     stops[len(stops)/2],
			StopP99:     stops[len(stops)*99/100],
			StopMax:     stops[len(stops)-1],
			Dispatches:  fstats.Dispatches,
			Shards:      fstats.Shards,
			MemPeak:     fstats.MemPeak,
			BudgetStall: fstats.BudgetStalls,
			DedupHits:   st.Stats().DedupHits,
		}
		if sec := elapsed.Seconds(); sec > 0 {
			pt.CkptPerVSec = float64(pt.Checkpoints) / sec
		}
		points = append(points, pt)
	}
	return points, nil
}
