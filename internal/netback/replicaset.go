package netback

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"aurora/internal/core"
)

// This file implements the replica set: N acknowledged replication
// links with a write quorum W. Each link is an ordinary core.Backend
// attached to the group individually — the flusher fans one epoch out
// to all of them concurrently, and each link keeps its own health
// state and catch-up queue, so a degraded minority never blocks
// admission. The set itself is bookkeeping: it names the links,
// installs the group's QuorumPolicy, computes quorum floors over the
// per-link acked frontiers, and hands the receivers to quorum
// promotion.

// ErrReplicaLagging reports replica-set members trailing the quorum
// frontier by more than the caller's tolerance; callers select on it
// with errors.Is.
var ErrReplicaLagging = errors.New("netback: replica lagging behind quorum frontier")

// SetLink is one member of a replica set.
type SetLink struct {
	Name string
	RB   *ReplicaBackend
	Recv *Receiver // the far-side receiver (nil when it lives off-machine)
}

// ReplicaSet groups N replica links under one write quorum.
type ReplicaSet struct {
	mu    sync.Mutex
	w     int
	links []*SetLink
}

// NewReplicaSet creates an empty replica set with write quorum w.
func NewReplicaSet(w int) *ReplicaSet {
	return &ReplicaSet{w: w}
}

// Add registers a named link. The backend is renamed to match so
// per-link health rows are distinguishable.
func (rs *ReplicaSet) Add(name string, rb *ReplicaBackend, recv *Receiver) *SetLink {
	rb.SetName(name)
	l := &SetLink{Name: name, RB: rb, Recv: recv}
	rs.mu.Lock()
	rs.links = append(rs.links, l)
	rs.mu.Unlock()
	return l
}

// SetW changes the write quorum. The caller re-installs the group
// policy (AttachAll or Group.SetQuorum) for it to take effect there.
func (rs *ReplicaSet) SetW(w int) {
	rs.mu.Lock()
	rs.w = w
	rs.mu.Unlock()
}

// W returns the write quorum.
func (rs *ReplicaSet) W() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return rs.w
}

// Links returns the members in registration order.
func (rs *ReplicaSet) Links() []*SetLink {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return append([]*SetLink(nil), rs.links...)
}

// AttachAll attaches every link's backend to the group and installs
// the set's write quorum as the group's QuorumPolicy.
func (rs *ReplicaSet) AttachAll(o *core.Orchestrator, g *core.Group) {
	for _, l := range rs.Links() {
		o.Attach(g, l.RB)
	}
	g.SetQuorum(core.QuorumPolicy{W: rs.W()})
}

// AckedFloors returns each link's contiguous acked frontier for the
// group, in registration order.
func (rs *ReplicaSet) AckedFloors(group uint64) []uint64 {
	links := rs.Links()
	floors := make([]uint64, len(links))
	for i, l := range links {
		floors[i] = l.RB.AckedFloor(group)
	}
	return floors
}

// QuorumFloor returns the newest epoch acked by at least W links: the
// epoch durability actually stands on.
func (rs *ReplicaSet) QuorumFloor(group uint64) uint64 {
	floors := rs.AckedFloors(group)
	if len(floors) == 0 {
		return 0
	}
	sorted := append([]uint64(nil), floors...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	need := rs.W()
	if need < 1 {
		need = 1
	}
	if need > len(sorted) {
		need = len(sorted)
	}
	return sorted[need-1]
}

// Lagging reports the members trailing the quorum floor by more than
// maxLag epochs. It returns nil when every member is within tolerance,
// else an error wrapping ErrReplicaLagging that names the stragglers.
func (rs *ReplicaSet) Lagging(group uint64, maxLag uint64) error {
	qf := rs.QuorumFloor(group)
	var behind []string
	for _, l := range rs.Links() {
		f := l.RB.AckedFloor(group)
		if f+maxLag < qf {
			behind = append(behind, fmt.Sprintf("%s@%d", l.Name, f))
		}
	}
	if len(behind) == 0 {
		return nil
	}
	return fmt.Errorf("%w: quorum floor %d, behind: %s", ErrReplicaLagging, qf, strings.Join(behind, ", "))
}

// Sources returns the members' receivers as promotion sources, in
// registration order (members without an in-machine receiver are
// skipped). Feed this to core.PromoteQuorum.
func (rs *ReplicaSet) Sources() []core.ReplicaSource {
	var out []core.ReplicaSource
	for _, l := range rs.Links() {
		if l.Recv != nil {
			out = append(out, l.Recv)
		}
	}
	return out
}
