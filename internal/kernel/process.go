package kernel

import (
	"errors"
	"fmt"
	"sync"

	"aurora/internal/vm"
)

// ProcState is the scheduling state of a process.
type ProcState uint8

// Process states.
const (
	ProcRunning  ProcState = iota
	ProcStopped            // paused by a serialization barrier
	ProcSleeping           // blocked in a simulated syscall
	ProcZombie             // exited, not yet reaped
)

// String names the state the way ps does.
func (s ProcState) String() string {
	switch s {
	case ProcRunning:
		return "R"
	case ProcStopped:
		return "T"
	case ProcSleeping:
		return "S"
	case ProcZombie:
		return "Z"
	default:
		return "?"
	}
}

// Process is a simulated POSIX process: a first-class kernel object
// owning an address space, a descriptor table, and one or more
// threads.
type Process struct {
	oid uint64

	mu        sync.Mutex
	PID       int
	PPID      int
	PGID      int
	SID       int
	Container int
	Name      string
	Args      []string
	Env       []string
	CWD       string
	ExitCode  int
	state     ProcState

	Space   *vm.AddressSpace
	FDs     *FDTable
	Threads []*Thread

	children []*Process
	program  Program
	brk      vm.Addr // end of the heap mapping, for Sbrk
	heap     *vm.Mapping
	kernel   *Kernel
}

// OID implements Object.
func (p *Process) OID() uint64 { return p.oid }

// Kind implements Object.
func (p *Process) Kind() Kind { return KindProcess }

// State returns the scheduling state.
func (p *Process) State() ProcState {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// setState transitions the scheduling state.
func (p *Process) setState(s ProcState) {
	p.mu.Lock()
	p.state = s
	p.mu.Unlock()
}

// Program returns the driver program attached to the process.
func (p *Process) Program() Program {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.program
}

// SetProgram attaches a driver program.
func (p *Process) SetProgram(prog Program) {
	p.mu.Lock()
	p.program = prog
	p.mu.Unlock()
}

// Kernel returns the kernel this process runs on.
func (p *Process) Kernel() *Kernel { return p.kernel }

// Children returns a snapshot of the process's children.
func (p *Process) Children() []*Process {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Process, len(p.children))
	copy(out, p.children)
	return out
}

// Spawn creates a new process running the named program in the given
// container. A fresh address space with a standard layout (stack +
// heap) is built and a main thread is created.
func (k *Kernel) Spawn(container int, name string, args ...string) (*Process, error) {
	if _, ok := k.Container(container); !ok {
		return nil, fmt.Errorf("kernel: no container %d", container)
	}
	k.mu.Lock()
	k.pids++
	pid := k.pids
	k.mu.Unlock()

	space := vm.NewAddressSpace(k.Mem, k.Meter)
	p := &Process{
		oid:       k.NextOID(),
		PID:       pid,
		PGID:      pid,
		SID:       pid,
		Container: container,
		Name:      name,
		Args:      args,
		CWD:       "/",
		Space:     space,
		kernel:    k,
		state:     ProcRunning,
	}
	p.FDs = NewFDTable(k.NextOID())

	// Standard layout: 1 MiB stack high, heap above the mmap base.
	if _, err := space.Map(0x7fff_f000_0000, 1<<20, vm.ProtRead|vm.ProtWrite, vm.NewObject("stack", 1<<20), 0, false, "stack"); err != nil {
		return nil, err
	}
	heap, err := space.Map(0x1000_0000, 1<<20, vm.ProtRead|vm.ProtWrite, vm.NewObject("heap", 1<<20), 0, false, "heap")
	if err != nil {
		return nil, err
	}
	p.heap = heap
	p.brk = heap.Start

	t := &Thread{
		oid:  k.NextOID(),
		TID:  pid, // main thread shares the pid number
		Proc: p,
		Regs: Regs{SP: 0x7fff_f010_0000 - 16},
	}
	p.Threads = []*Thread{t}

	k.mu.Lock()
	k.procs[pid] = p
	k.objects[p.oid] = p
	k.objects[t.oid] = t
	k.objects[p.FDs.oid] = p.FDs
	k.runQueue = append(k.runQueue, t)
	k.mu.Unlock()

	if k.Pager != nil {
		k.Pager.RegisterSpace(space)
		k.Pager.Register(heap.Obj)
	}
	k.Clock.Advance(k.Costs.Syscall)
	return p, nil
}

// Fork clones the calling process with fork semantics: COW address
// space, duplicated descriptor table sharing open file objects, a new
// single thread. It returns the child.
func (k *Kernel) Fork(parent *Process) (*Process, error) {
	if parent.State() == ProcZombie {
		return nil, ErrNotRunning
	}
	k.mu.Lock()
	k.pids++
	pid := k.pids
	k.mu.Unlock()

	child := &Process{
		oid:       k.NextOID(),
		PID:       pid,
		PPID:      parent.PID,
		PGID:      parent.PGID,
		SID:       parent.SID,
		Container: parent.Container,
		Name:      parent.Name,
		Args:      append([]string(nil), parent.Args...),
		Env:       append([]string(nil), parent.Env...),
		CWD:       parent.CWD,
		Space:     parent.Space.Fork(),
		kernel:    k,
		state:     ProcRunning,
	}
	child.FDs = parent.FDs.Clone(k.NextOID())
	// Locate the child's heap mapping (same addresses as the parent's).
	for _, m := range child.Space.Mappings() {
		if m.Name == "heap" {
			child.heap = m
			child.brk = parent.brk
		}
	}

	t := &Thread{oid: k.NextOID(), TID: pid, Proc: child}
	if len(parent.Threads) > 0 {
		t.Regs = parent.Threads[0].Regs
		t.Regs.GPR[0] = 0 // fork returns 0 in the child
	}
	child.Threads = []*Thread{t}

	parent.mu.Lock()
	parent.children = append(parent.children, child)
	parent.mu.Unlock()

	k.mu.Lock()
	k.procs[pid] = child
	k.objects[child.oid] = child
	k.objects[t.oid] = t
	k.objects[child.FDs.oid] = child.FDs
	k.runQueue = append(k.runQueue, t)
	k.mu.Unlock()

	if k.Pager != nil {
		k.Pager.RegisterSpace(child.Space)
	}
	k.Clock.Advance(k.Costs.Syscall + k.Costs.CtxSwitch)
	return child, nil
}

// Exit terminates a process, closing its descriptors and zombifying it.
func (k *Kernel) Exit(p *Process, code int) {
	p.mu.Lock()
	if p.state == ProcZombie {
		p.mu.Unlock()
		return
	}
	p.state = ProcZombie
	p.ExitCode = code
	fds := p.FDs
	p.mu.Unlock()

	fds.CloseAll()
	k.Clock.Advance(k.Costs.Syscall)
}

// Reap removes a zombie from the process table.
func (k *Kernel) Reap(p *Process) error {
	if p.State() != ProcZombie {
		return ErrNotRunning
	}
	k.mu.Lock()
	if k.procs[p.PID] != p {
		k.mu.Unlock()
		return ErrNotRunning
	}
	delete(k.procs, p.PID)
	delete(k.objects, p.oid)
	for _, t := range p.Threads {
		delete(k.objects, t.oid)
	}
	delete(k.objects, p.FDs.oid)
	k.mu.Unlock()
	return nil
}

// ProcessTree returns p and all its descendants (the granularity at
// which Aurora persists applications).
func (k *Kernel) ProcessTree(p *Process) []*Process {
	var out []*Process
	var walk func(*Process)
	walk = func(q *Process) {
		out = append(out, q)
		for _, c := range q.Children() {
			walk(c)
		}
	}
	walk(p)
	return out
}

// ContainerProcesses returns every live process in a container.
func (k *Kernel) ContainerProcesses(id int) []*Process {
	k.mu.Lock()
	defer k.mu.Unlock()
	var out []*Process
	for _, p := range k.procs {
		if p.Container == id {
			out = append(out, p)
		}
	}
	return out
}

// Sbrk grows (or shrinks, with negative delta) the heap and returns
// the previous break address, like the classic syscall.
func (p *Process) Sbrk(delta int64) (vm.Addr, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	old := p.brk
	nb := vm.Addr(int64(p.brk) + delta)
	if nb < p.heap.Start {
		return 0, vm.ErrBadRange
	}
	if nb > p.heap.End {
		// Grow the backing object; the mapping's object window widens.
		need := int64(nb - p.heap.Start)
		p.heap.Obj.Grow(p.heap.Off + vm.RoundUpPage(need))
		p.heap.End = p.heap.Start + vm.Addr(vm.RoundUpPage(need))
	}
	p.brk = nb
	return old, nil
}

// HeapBase returns the start of the heap mapping.
func (p *Process) HeapBase() vm.Addr { return p.heap.Start }

// HeapMapping returns the heap mapping itself.
func (p *Process) HeapMapping() *vm.Mapping { return p.heap }

// faultRetryBudget bounds how many times one memory access may re-fault
// on the SAME page without progress before the kernel gives up. A fault
// on a different page resets the budget: a large access paging its way
// through a tight memory may legitimately fault once per page (and
// again when its own swap-ins evict earlier pages). Only a page that
// keeps faulting — resolved, yet immediately faulting again — exhausts
// it, in which case a typed error (wrapping vm.ErrBackendDown) reaches
// the faulting thread instead of the access spinning on
// fault→resolve→fault forever.
const faultRetryBudget = 64

// accessMem runs one memory access, transparently servicing swap
// faults, with a same-page livelock bound.
func (p *Process) accessMem(what string, addr vm.Addr, access func() error) error {
	samePage := 0
	var lastObj *vm.Object
	var lastPage int64 = -1
	var err error
	for {
		err = access()
		if err == nil {
			return nil
		}
		if p.kernel.Pager == nil {
			return err
		}
		var sf *vm.SwapFault
		if errors.As(err, &sf) {
			if sf.Obj == lastObj && sf.Page == lastPage {
				samePage++
				if samePage >= faultRetryBudget {
					return fmt.Errorf("%w: %s at %#x kept faulting on page %d after %d retries: %v",
						vm.ErrBackendDown, what, addr, sf.Page, faultRetryBudget, err)
				}
			} else {
				lastObj, lastPage, samePage = sf.Obj, sf.Page, 0
			}
		}
		retry, rerr := p.kernel.Pager.Resolve(err)
		if !retry {
			return rerr
		}
	}
}

// ReadMem reads process memory, transparently servicing swap faults.
func (p *Process) ReadMem(addr vm.Addr, buf []byte) error {
	return p.accessMem("read", addr, func() error { return p.Space.Read(addr, buf) })
}

// WriteMem writes process memory, transparently servicing swap faults.
func (p *Process) WriteMem(addr vm.Addr, buf []byte) error {
	return p.accessMem("write", addr, func() error { return p.Space.Write(addr, buf) })
}

// EncodeTo implements Object. Thread and fd-table OIDs are references;
// those objects serialize themselves.
func (p *Process) EncodeTo(e *Encoder) {
	p.mu.Lock()
	defer p.mu.Unlock()
	e.U64(p.oid)
	e.I64(int64(p.PID))
	e.I64(int64(p.PPID))
	e.I64(int64(p.PGID))
	e.I64(int64(p.SID))
	e.I64(int64(p.Container))
	e.Str(p.Name)
	e.StrSlice(p.Args)
	e.StrSlice(p.Env)
	e.Str(p.CWD)
	e.I64(int64(p.ExitCode))
	e.U8(uint8(p.state))
	e.U64(uint64(p.brk))
	// Thread references.
	tids := make([]uint64, len(p.Threads))
	for i, t := range p.Threads {
		tids[i] = t.oid
	}
	e.U64Slice(tids)
	e.U64(p.FDs.oid)
	// Program identity: name + driver snapshot for reattachment.
	if p.program != nil {
		e.Str(p.program.ProgName())
		e.Bytes2(p.program.Snapshot())
	} else {
		e.Str("")
		e.Bytes2(nil)
	}
	// Address-space layout: mappings with object references.
	maps := p.Space.Mappings()
	e.U64(uint64(len(maps)))
	for _, m := range maps {
		e.U64(uint64(m.Start))
		e.U64(uint64(m.End))
		e.U64(m.Obj.ID)
		e.I64(m.Off)
		e.U8(uint8(m.Prot))
		e.Bool(m.Shared)
		e.Str(m.Name)
		e.U8(uint8(m.Restore))
	}
}

// procImage is the decoded form of a process record, used by restore.
type procImage struct {
	OID       uint64
	PID       int
	PPID      int
	PGID      int
	SID       int
	Container int
	Name      string
	Args      []string
	Env       []string
	CWD       string
	ExitCode  int
	State     ProcState
	Brk       uint64
	ThreadOID []uint64
	FDTabOID  uint64
	ProgName  string
	ProgState []byte
	Mappings  []mapImage
}

type mapImage struct {
	Start, End uint64
	ObjID      uint64
	Off        int64
	Prot       uint8
	Shared     bool
	Name       string
	Restore    uint8
}

// decodeProcImage parses a serialized process.
func decodeProcImage(d *Decoder) (*procImage, error) {
	pi := &procImage{
		OID:       d.U64(),
		PID:       int(d.I64()),
		PPID:      int(d.I64()),
		PGID:      int(d.I64()),
		SID:       int(d.I64()),
		Container: int(d.I64()),
		Name:      d.Str(),
		Args:      d.StrSlice(),
		Env:       d.StrSlice(),
		CWD:       d.Str(),
		ExitCode:  int(d.I64()),
		State:     ProcState(d.U8()),
		Brk:       d.U64(),
		ThreadOID: d.U64Slice(),
		FDTabOID:  d.U64(),
		ProgName:  d.Str(),
		ProgState: d.Bytes2(),
	}
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		pi.Mappings = append(pi.Mappings, mapImage{
			Start: d.U64(), End: d.U64(), ObjID: d.U64(),
			Off: d.I64(), Prot: d.U8(), Shared: d.Bool(), Name: d.Str(),
			Restore: d.U8(),
		})
	}
	if err := d.Finish("process"); err != nil {
		return nil, err
	}
	return pi, nil
}

// String formats the process like a ps line.
func (p *Process) String() string {
	return fmt.Sprintf("pid=%d %s %s", p.PID, p.State(), p.Name)
}

// Setpgid moves the process into the given process group (0 = its own
// pid), like setpgid(2). Group identity is checkpointed with the
// process record.
func (p *Process) Setpgid(pgid int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pgid == 0 {
		pgid = p.PID
	}
	p.PGID = pgid
}

// Setsid makes the process a session (and process-group) leader, like
// setsid(2).
func (p *Process) Setsid() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.SID = p.PID
	p.PGID = p.PID
	return p.SID
}
