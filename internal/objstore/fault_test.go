package objstore

import (
	"bytes"
	"errors"
	"testing"

	"aurora/internal/storage"
)

// faultStore builds a store on a fault-injecting device.
func faultStore(cfg storage.FaultConfig) (*Store, *storage.FaultDevice) {
	clock := storage.NewClock()
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock, cfg)
	return Create(fd, clock), fd
}

func onePage(b byte) []byte {
	return bytes.Repeat([]byte{b}, BlockSize)
}

// TestSyncBarrierOrdering audits the durability barrier protocol via
// the device op log: the index extent must be written AND synced
// before the superblock slot is published, and the slot synced before
// Sync returns.
func TestSyncBarrierOrdering(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 1})
	if _, err := s.PutRecord(1, 1, 1, 0, true, []byte("meta"), map[int64][]byte{0: onePage(0xaa)}, nil); err != nil {
		t.Fatal(err)
	}
	fd.SetLogging(true)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	log := fd.Log()
	if len(log) != 4 {
		t.Fatalf("Sync issued %d device ops, want 4 (write idx, sync, write sb, sync): %+v", len(log), log)
	}
	if log[0].Kind != "write" || log[0].Off < dataStart {
		t.Fatalf("op 1 must write the index extent past dataStart: %+v", log[0])
	}
	if log[1].Kind != "sync" {
		t.Fatalf("op 2 must sync the index before publishing: %+v", log[1])
	}
	if log[2].Kind != "write" || log[2].Len != sbSize ||
		(log[2].Off != sbSlot0 && log[2].Off != sbSlot1) {
		t.Fatalf("op 3 must write one superblock slot: %+v", log[2])
	}
	if log[3].Kind != "sync" {
		t.Fatalf("op 4 must sync the superblock: %+v", log[3])
	}
}

// TestSyncAlternatesSlots checks consecutive generations land in
// different slots.
func TestSyncAlternatesSlots(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 1})
	fd.SetLogging(true)
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	var slots []int64
	for _, op := range fd.Log() {
		if op.Kind == "write" && op.Len == sbSize && op.Off < dataStart {
			slots = append(slots, op.Off)
		}
	}
	if len(slots) != 2 || slots[0] == slots[1] {
		t.Fatalf("superblock slots must alternate, got %v", slots)
	}
	if s.Generation() != 2 {
		t.Fatalf("generation = %d, want 2", s.Generation())
	}
}

// TestTornSuperblockRecovery injects a torn write on the superblock
// publish and checks the reopened store serves the previous
// acknowledged generation in full.
func TestTornSuperblockRecovery(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 2})
	if _, err := s.PutRecord(1, 1, 1, 0, true, []byte("epoch1"), map[int64][]byte{0: onePage(0x11)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // generation 1: acknowledged
		t.Fatal(err)
	}
	if _, err := s.PutRecord(1, 1, 2, 0, false, []byte("epoch2"), map[int64][]byte{0: onePage(0x22)}, nil); err != nil {
		t.Fatal(err)
	}
	// Generation 2's Sync: op +1 writes the index, +2 syncs it, +3
	// writes the superblock slot — tear that one.
	fd.TearOps(fd.OpCount()+3, fd.OpCount()+3)
	if err := s.Sync(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("torn superblock publish must surface, got %v", err)
	}
	fd.ClearScripts()

	re, err := Open(fd, storage.NewClock())
	if err != nil {
		t.Fatalf("reopen after torn publish: %v", err)
	}
	if re.Generation() != 1 {
		t.Fatalf("reopened generation = %d, want rollback to 1", re.Generation())
	}
	// Everything acknowledged by generation 1 is intact.
	rec, err := re.GetRecord(1, 1, 1)
	if err != nil {
		t.Fatalf("acknowledged record lost: %v", err)
	}
	data, err := re.ReadBlock(rec.Pages[0])
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, onePage(0x11)) {
		t.Fatal("acknowledged page diverged after rollback")
	}
	// The unacknowledged epoch-2 record is simply absent.
	if _, err := re.GetRecord(1, 1, 2); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("unacknowledged record should be rolled back, got %v", err)
	}
}

// TestTornIndexRecovery tears the index write itself: the superblock
// was never touched, so rollback is immediate.
func TestTornIndexRecovery(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 3})
	if _, err := s.PutRecord(1, 1, 1, 0, true, nil, map[int64][]byte{0: onePage(0x33)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	fd.TearOps(fd.OpCount()+1, fd.OpCount()+1) // the very next write: the index extent
	if err := s.Sync(); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("torn index write must surface, got %v", err)
	}
	fd.ClearScripts()
	re, err := Open(fd, storage.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if re.Generation() != 1 {
		t.Fatalf("generation = %d, want 1", re.Generation())
	}
}

// TestCrashTornSlotFallsBack models a power cut that corrupts the
// freshly published slot without the writer noticing: Open must fall
// back to the older generation by checksum.
func TestCrashTornSlotFallsBack(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 4})
	if err := s.Sync(); err != nil { // gen 1 -> slot1
		t.Fatal(err)
	}
	if _, err := s.PutRecord(1, 9, 9, 0, true, nil, map[int64][]byte{0: onePage(0x99)}, nil); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil { // gen 2 -> slot0
		t.Fatal(err)
	}
	// Tear gen 2's slot after the fact: garbage over its tail.
	if _, err := fd.WriteAt([]byte{0xde, 0xad, 0xbe, 0xef}, sbSlot0+sbSize-4); err != nil {
		t.Fatal(err)
	}
	re, err := Open(fd, storage.NewClock())
	if err != nil {
		t.Fatal(err)
	}
	if re.Generation() != 1 {
		t.Fatalf("generation = %d, want fallback to 1", re.Generation())
	}
	if _, err := re.GetRecord(1, 9, 9); !errors.Is(err, ErrNoRecord) {
		t.Fatalf("gen-2 record should be gone after fallback, got %v", err)
	}
}

// TestReadVerifiesBlockHash checks both read paths catch silent
// corruption of a block's device contents.
func TestReadVerifiesBlockHash(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 5})
	rec, err := s.PutRecord(1, 1, 1, 0, true, nil, map[int64][]byte{0: onePage(0x44)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref := rec.Pages[0]
	if _, err := s.ReadBlock(ref); err != nil {
		t.Fatalf("pristine block must verify: %v", err)
	}
	// Rot the block directly on the device, behind the store's back.
	if _, err := fd.WriteAt([]byte("rotten"), ref.Off+100); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBlock(ref); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("ReadBlock must catch rot, got %v", err)
	}
	if _, err := s.ReadBlocks([]BlockRef{ref}); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("ReadBlocks must catch rot, got %v", err)
	}
}

// TestReadCatchesInjectedBitRot wires the FaultDevice's silent bit-rot
// into the verified read path.
func TestReadCatchesInjectedBitRot(t *testing.T) {
	s, _ := faultStore(storage.FaultConfig{Seed: 6, BitRot: 1.0})
	rec, err := s.PutRecord(1, 1, 1, 0, true, nil, map[int64][]byte{0: onePage(0x55)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadBlock(rec.Pages[0]); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("verified read must catch injected bit rot, got %v", err)
	}
}

// TestScrubDetectsAndRepairs corrupts one block and heals it from a
// peer store holding the same content-addressed data.
func TestScrubDetectsAndRepairs(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 7})
	peer, _ := faultStore(storage.FaultConfig{Seed: 8})
	pages := map[int64][]byte{0: onePage(0x66), 1: onePage(0x77)}
	rec, err := s.PutRecord(1, 1, 1, 0, true, nil, pages, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := peer.PutRecord(1, 1, 1, 0, true, nil, pages, nil); err != nil {
		t.Fatal(err)
	}
	// Clean pass first.
	rep, err := s.Scrub(peer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Blocks != 2 || rep.Corrupt != 0 {
		t.Fatalf("clean scrub: %+v", rep)
	}
	// Rot page 0 on the device.
	if _, err := fd.WriteAt([]byte("bitrot!"), rec.Pages[0].Off+7); err != nil {
		t.Fatal(err)
	}
	rep, err = s.Scrub(peer)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Repaired != 1 || rep.Lost != 0 {
		t.Fatalf("repairing scrub: %+v", rep)
	}
	// The block reads verified again.
	data, err := s.ReadBlock(rec.Pages[0])
	if err != nil {
		t.Fatalf("block must verify after repair: %v", err)
	}
	if !bytes.Equal(data, onePage(0x66)) {
		t.Fatal("repaired block has wrong contents")
	}
}

// TestScrubReportsLoss corrupts a block with no good copy anywhere and
// checks the affected record is named.
func TestScrubReportsLoss(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 9})
	rec, err := s.PutRecord(1, 4, 2, 0, true, nil, map[int64][]byte{0: onePage(0x88)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fd.WriteAt([]byte("gone"), rec.Pages[0].Off); err != nil {
		t.Fatal(err)
	}
	rep, err := s.Scrub(nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Corrupt != 1 || rep.Lost != 1 || rep.Repaired != 0 {
		t.Fatalf("lossy scrub: %+v", rep)
	}
	if len(rep.LostRecords) != 1 || rep.LostRecords[0] != (RecordKey{Group: 1, OID: 4, Epoch: 2}) {
		t.Fatalf("lost records: %+v", rep.LostRecords)
	}
}

// TestPutBlockFailedWriteNotDeduped: a block put whose device write
// fails must leave no dedup-index entry behind. Before the fix, the
// entry was published before the write, so a retried put of the same
// content dedup-hit a block that never landed — durably poisoning
// every epoch that referenced the page.
func TestPutBlockFailedWriteNotDeduped(t *testing.T) {
	s, fd := faultStore(storage.FaultConfig{Seed: 3})
	data := onePage(0x42)
	fd.FailOps(storage.FaultWrite, fd.OpCount()+1, fd.OpCount()+1)
	if _, err := s.putBlock(data); !errors.Is(err, storage.ErrInjected) {
		t.Fatalf("faulted put = %v, want ErrInjected", err)
	}
	fd.ClearScripts()
	// The retry must write fresh bytes, not reference the ghost block.
	ref, err := s.putBlock(data)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.ReadBlock(ref)
	if err != nil {
		t.Fatalf("block written by the retry must verify: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retried block has wrong contents")
	}
	if hits := s.Stats().DedupHits; hits != 0 {
		t.Fatalf("dedup hits = %d, want 0: the failed put must not seed the index", hits)
	}
}
