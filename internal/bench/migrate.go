package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// This file is the live-migration chaos harness: a running counter
// workload is migrated across a chain of machines (A→B→C…) over a
// fault-injecting link while its source and target stores inject
// storage faults, with a scripted partition opening mid-pre-copy and
// healing only after the migrator has burned retry attempts on it.
// After the planned hops it optionally runs the hot-standby leg: a
// perpetual pre-copy target promoted after an unplanned source crash,
// measuring TTR. Invariants checked at every observation point:
// durable never regresses across handovers, exactly one store claims
// the primary role at the max generation, the migrated state is
// bit-identical (counter + patterned pages, demand-paged through the
// lazy tail), a scratch-machine restore from the target store is
// bit-identical, and the fenced source verifiably refuses further
// checkpoints.

// MigrateChaosConfig parameterizes one migration chaos run. Zero
// values pick defaults.
type MigrateChaosConfig struct {
	Seed int64

	// PreEpochs checkpoints run on the source before migration starts
	// (default 8); PostEpochs run on each target after its handover
	// (default 6).
	PreEpochs  int
	PostEpochs int
	// Rounds is the pre-copy workload rounds per hop (default 4).
	Rounds int
	// Hops is the number of chained planned migrations (default 2).
	Hops int
	// StepsPerEpoch is scheduler quanta per workload round (default 2).
	StepsPerEpoch int

	// Per-frame link fault probabilities on every migration link.
	LinkDrop    float64
	LinkDup     float64
	LinkReorder float64
	LinkCorrupt float64

	// Store fault probabilities (every machine's store device).
	StoreWriteErr float64
	StoreReadErr  float64

	// Retries overrides the migrator's per-phase retry budget (0 keeps
	// the migrator default). Faulted cells need headroom: a flush
	// touches dozens of blocks, so per-write fault rates compound.
	Retries int

	// PartitionMid opens a symmetric partition on the migration link
	// mid-pre-copy and keeps it closed to the first reconnect attempts,
	// so the migrator's retry/backoff path is exercised (default on via
	// withDefaults; set PartitionMid=false after calling it to disable).
	PartitionMid bool

	// Standby appends the hot-standby leg: unplanned source crash,
	// standby promotion, TTR measured (default on).
	Standby bool
}

func (c MigrateChaosConfig) withDefaults() MigrateChaosConfig {
	if c.PreEpochs == 0 {
		c.PreEpochs = 8
	}
	if c.PostEpochs == 0 {
		c.PostEpochs = 6
	}
	if c.Rounds == 0 {
		c.Rounds = 4
	}
	if c.Hops == 0 {
		c.Hops = 2
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 2
	}
	return c
}

// MigrateChaosReport is the outcome of one migration chaos run.
type MigrateChaosReport struct {
	Seed int64
	Hops int

	// Blackouts are the per-hop planned blackout times (source stop +
	// target handover, virtual).
	Blackouts                             []time.Duration
	BlackoutP50, BlackoutP99, BlackoutMax time.Duration
	// SrcStops are the source-side stop segments of each blackout —
	// comparable to the single-barrier stop time of BENCH_pipeline.
	SrcStops []time.Duration
	// TTR is the unplanned standby promotion's time-to-recovery
	// (0 when Standby is off).
	TTR time.Duration

	Durable          uint64 // final durable epoch on the last machine
	Gen              uint64 // final primary generation
	Rounds           int    // pre-copy rounds summed over hops
	Backfilled       int    // epochs drained into target stores
	Retries          int    // migrator retry attempts across all phases
	FencedRejects    int    // checkpoints refused on fenced sources
	SupervisorSkips  int    // fenced zombies the supervisor refused to restore
	RestoresVerified int    // bit-identical verifications performed
	LinkDropped      int64  // frames dropped by the fault links
	LinkInjected     int64  // frames duplicated/corrupted by the fault links
	FinalCounter     uint64 // workload counter at exit
}

// migMachine is one simulated machine (the shared topology Node:
// its own virtual clock, kernel, orchestrator, fault-injecting store).
type migMachine = Node

func newMigMachine(name string, seed int64, writeErr, readErr float64) *migMachine {
	return NewNode(name, seed, writeErr, readErr)
}

// migLink is the migration wire between two machines (the shared
// topology Wire: a fault link carrying the acked replication stream
// plus the handoff frames).
type migLink = Wire

func newMigLink(seed int64, cfg MigrateChaosConfig, src, dst *migMachine) *migLink {
	tp := NewTopology(netback.LinkFaultConfig{
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	})
	ml := tp.Wire(seed, src, dst)
	ml.rb.SetName("migrate-link")
	return ml
}

// migRun carries the harness state across hops.
type migRun struct {
	cfg MigrateChaosConfig
	rep *MigrateChaosReport

	cur     *migMachine // the machine currently running the workload
	g       *core.Group
	sup     *core.Supervisor
	lineage uint64

	machines    []*migMachine
	lastCounter uint64
	lastDurable uint64
}

func (r *migRun) readCounter() (uint64, error) {
	pids := r.g.PIDs()
	if len(pids) == 0 {
		return 0, fmt.Errorf("bench: migrate seed %d: group %d has no members", r.cfg.Seed, r.g.ID)
	}
	p, err := r.cur.k.Process(pids[0])
	if err != nil {
		return 0, err
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// step runs one workload slice on the current machine and records the
// counter it will checkpoint at.
func (r *migRun) step() error {
	if _, err := r.cur.k.Run(r.cfg.StepsPerEpoch); err != nil {
		return err
	}
	c, err := r.readCounter()
	if err != nil {
		return err
	}
	r.lastCounter = c
	return nil
}

// syncDurable drives the durable frontier to the barrier epoch.
func (r *migRun) syncDurable() error {
	var last error
	for round := 0; round < 12; round++ {
		last = r.cur.o.Sync(r.g)
		if r.g.Durable() == r.g.Epoch() {
			return nil
		}
	}
	return fmt.Errorf("bench: migrate seed %d: durable stuck at %d (barrier %d): %w",
		r.cfg.Seed, r.g.Durable(), r.g.Epoch(), last)
}

// epoch is one workload slice + checkpoint + durable sync outside any
// migration.
func (r *migRun) epoch() error {
	if err := r.step(); err != nil {
		return err
	}
	if _, err := r.cur.o.Checkpoint(r.g, core.CheckpointOpts{}); err != nil {
		return err
	}
	return r.syncDurable()
}

// invariants asserts durable monotonicity and the exactly-one-primary
// fencing invariant across every store minted so far.
func (r *migRun) invariants(where string) error {
	if d := r.g.Durable(); d < r.lastDurable {
		return fmt.Errorf("bench: migrate seed %d %s: durable regressed %d -> %d",
			r.cfg.Seed, where, r.lastDurable, d)
	} else {
		r.lastDurable = d
	}
	type claim struct {
		who string
		gen uint64
	}
	var claims []claim
	var maxGen uint64
	for _, m := range r.machines {
		if gen, primary := m.sb.Store().PrimaryGen(r.lineage); primary {
			claims = append(claims, claim{m.name, gen})
			if gen > maxGen {
				maxGen = gen
			}
		}
	}
	n := 0
	for _, cl := range claims {
		if cl.gen == maxGen {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("bench: migrate seed %d %s: %d stores claim primary at max generation %d (want exactly 1: %v)",
			r.cfg.Seed, where, n, maxGen, claims)
	}
	return nil
}

// verifyState reads the workload state back from the group's live
// memory on machine m — demand-paging any cold tail — and checks it
// bit-identical to the last checkpointed state.
func (r *migRun) verifyState(m *migMachine, g *core.Group, where string) error {
	pids := g.PIDs()
	if len(pids) == 0 {
		return fmt.Errorf("bench: migrate seed %d %s: no members", r.cfg.Seed, where)
	}
	p, err := m.k.Process(pids[0])
	if err != nil {
		return fmt.Errorf("bench: migrate seed %d %s: %w", r.cfg.Seed, where, err)
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return fmt.Errorf("bench: migrate seed %d %s: reading counter: %w", r.cfg.Seed, where, err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != r.lastCounter {
		return fmt.Errorf("bench: migrate seed %d %s: counter %d, want %d — state not bit-identical",
			r.cfg.Seed, where, got, r.lastCounter)
	}
	buf := make([]byte, vm.PageSize)
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			return fmt.Errorf("bench: migrate seed %d %s: paging page %d: %w", r.cfg.Seed, where, pg, err)
		}
		ref := recoveryPattern(pg, r.cfg.Seed)
		for i := range buf {
			if buf[i] != ref[i] {
				return fmt.Errorf("bench: migrate seed %d %s: page %d byte %d differs — state not bit-identical",
					r.cfg.Seed, where, pg, i)
			}
		}
	}
	r.rep.RestoresVerified++
	return nil
}

// verifyFromStore restores (group, epoch) from sb onto a scratch
// machine and checks it bit-identical: the "restores from the target
// store" acceptance check.
func (r *migRun) verifyFromStore(sb *core.StoreBackend, group, epoch uint64, where string) error {
	var img *core.Image
	var readTime time.Duration
	var err error
	for attempt := 0; attempt < 8; attempt++ { // ride out injected read faults
		if img, readTime, err = sb.Load(group, epoch); err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("bench: migrate seed %d %s: loading epoch %d: %w", r.cfg.Seed, where, epoch, err)
	}
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	ng, _, err := o.RestoreImage(img, readTime, core.RestoreOpts{})
	if err != nil {
		return fmt.Errorf("bench: migrate seed %d %s: restoring epoch %d: %w", r.cfg.Seed, where, epoch, err)
	}
	pids := ng.PIDs()
	p, err := k.Process(pids[0])
	if err != nil {
		return fmt.Errorf("bench: migrate seed %d %s: %w", r.cfg.Seed, where, err)
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return fmt.Errorf("bench: migrate seed %d %s: reading counter: %w", r.cfg.Seed, where, err)
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != r.lastCounter {
		return fmt.Errorf("bench: migrate seed %d %s: scratch restore counter %d, want %d",
			r.cfg.Seed, where, got, r.lastCounter)
	}
	r.rep.RestoresVerified++
	return nil
}

// expectFenced verifies the fenced source is rejected at both levels:
// the in-core group refuses the barrier with ErrStaleGeneration, and
// the source store — its fence raised through the handover — refuses a
// zombie's attempt to reclaim the primary role at its old generation.
// Together they pin the guarantee that a zombie source can never
// re-advance the migrated lineage's durable state.
func (r *migRun) expectFenced(m *migMachine, g *core.Group, oldGen uint64, where string) error {
	if _, err := m.o.Checkpoint(g, core.CheckpointOpts{}); !errors.Is(err, core.ErrStaleGeneration) {
		return fmt.Errorf("bench: migrate seed %d %s: fenced source checkpoint = %v, want ErrStaleGeneration",
			r.cfg.Seed, where, err)
	}
	if err := m.sb.Store().SetPrimary(r.lineage, oldGen); !errors.Is(err, core.ErrStaleGeneration) {
		return fmt.Errorf("bench: migrate seed %d %s: zombie primary re-claim at gen %d = %v, want ErrStaleGeneration",
			r.cfg.Seed, where, oldGen, err)
	}
	r.rep.FencedRejects++
	return nil
}

// hop performs one planned live migration to a fresh machine and
// moves the workload there.
func (r *migRun) hop(idx int) error {
	cfg := r.cfg
	dst := newMigMachine(fmt.Sprintf("m%d", idx+1), cfg.Seed*31+int64(idx+1)*977, cfg.StoreWriteErr, cfg.StoreReadErr)
	r.machines = append(r.machines, dst)
	ml := newMigLink(cfg.Seed*1000003+int64(idx)*7919, cfg, r.cur, dst)
	if err := ml.connect(r.g.ID); err != nil {
		return fmt.Errorf("bench: migrate seed %d hop %d: connect: %w", cfg.Seed, idx, err)
	}

	src := r.cur
	srcG := r.g
	mig := &core.Migrator{
		Src:      src.o,
		Dst:      dst.o,
		G:        srcG,
		Link:     ml.rb,
		Target:   ml.recv,
		SrcStore: src.sb,
		DstStore: dst.sb,
		Sup:      r.sup,
		Reconnect: func() error {
			return ml.reset(srcG.ID)
		},
		Cfg: core.MigratorConfig{
			MaxRounds: cfg.Rounds,
			Retries:   cfg.Retries,
			Lineage:   r.lineage,
			Name:      fmt.Sprintf("migrated-%d", idx+1),
		},
	}

	round := 0
	workload := func() error {
		round++
		if cfg.PartitionMid && round == 1 {
			// Mid-pre-copy partition: stays closed through the first
			// reconnect attempt, so the migrator pays real retries.
			ml.partition(1)
		}
		return r.step()
	}
	rep, err := mig.Run(workload)
	if err != nil {
		return fmt.Errorf("bench: migrate seed %d hop %d: %w", cfg.Seed, idx, err)
	}

	r.rep.Blackouts = append(r.rep.Blackouts, rep.Blackout)
	r.rep.SrcStops = append(r.rep.SrcStops, rep.SrcStop)
	r.rep.Rounds += rep.Rounds
	r.rep.Backfilled += rep.Backfilled
	r.rep.Retries += rep.Retries
	r.rep.Gen = rep.Gen

	// The workload now lives on the target.
	r.cur = dst
	r.g = rep.Group
	r.sup = core.NewSupervisor(dst.o, core.SupervisorConfig{})
	r.sup.Watch(r.g)
	r.lastDurable = 0 // per-machine frontier; monotone within a machine

	where := fmt.Sprintf("hop %d", idx)
	if err := r.invariants(where); err != nil {
		return err
	}
	if r.g.Durable() < rep.Floor {
		return fmt.Errorf("bench: migrate seed %d %s: target durable %d below handover floor %d",
			cfg.Seed, where, r.g.Durable(), rep.Floor)
	}
	// The migrated state must be bit-identical, demand-paged through
	// the lazy tail (target store first, then source store/receiver
	// peers with read-repair).
	if err := r.verifyState(dst, r.g, where+" lazy tail"); err != nil {
		return err
	}
	// A scratch restore from the target store alone must agree.
	if err := r.verifyFromStore(dst.sb, srcG.ID, rep.Floor, where+" target store"); err != nil {
		return err
	}
	// The fenced source must refuse to re-advance, even restarted.
	if err := r.expectFenced(src, srcG, srcG.Generation(), where+" fenced source"); err != nil {
		return err
	}
	ml.stop()
	r.rep.LinkDropped += ml.link.DroppedCount()
	r.rep.LinkInjected += ml.link.InjectedCount()

	// Run the workload forward on the target.
	for i := 0; i < cfg.PostEpochs; i++ {
		if err := r.epoch(); err != nil {
			return fmt.Errorf("bench: migrate seed %d %s post-epoch %d: %w", cfg.Seed, where, i, err)
		}
	}
	return r.invariants(where + " post")
}

// standbyLeg runs the hot-standby story: perpetual pre-copy to a
// standby machine, an unplanned source crash, a supervisor poll that
// must refuse the fenced zombie, and the promotion with TTR.
func (r *migRun) standbyLeg() error {
	cfg := r.cfg
	idx := cfg.Hops + 1
	dst := newMigMachine(fmt.Sprintf("standby-m%d", idx), cfg.Seed*37+int64(idx)*1009, cfg.StoreWriteErr, cfg.StoreReadErr)
	r.machines = append(r.machines, dst)
	ml := newMigLink(cfg.Seed*999983+int64(idx)*104729, cfg, r.cur, dst)
	if err := ml.connect(r.g.ID); err != nil {
		return fmt.Errorf("bench: migrate seed %d standby: connect: %w", cfg.Seed, err)
	}

	src := r.cur
	srcG := r.g
	mig := &core.Migrator{
		Src:      src.o,
		Dst:      dst.o,
		G:        srcG,
		Link:     ml.rb,
		Target:   ml.recv,
		SrcStore: src.sb,
		DstStore: dst.sb,
		Sup:      r.sup,
		Reconnect: func() error {
			return ml.reset(srcG.ID)
		},
		Cfg: core.MigratorConfig{
			MaxRounds: cfg.Rounds,
			Retries:   cfg.Retries,
			Lineage:   r.lineage,
			Name:      "standby",
		},
	}

	// Keep the standby warm: perpetual pre-copy on the checkpoint
	// cadence.
	for i := 0; i < cfg.Rounds; i++ {
		if err := mig.StandbyRound(r.step); err != nil {
			return fmt.Errorf("bench: migrate seed %d standby round %d: %w", cfg.Seed, i, err)
		}
	}

	// Unplanned death: every member crashes with an error. The source
	// supervisor would normally restore this — the promotion must beat
	// it by fencing, and a later poll must refuse the fenced zombie.
	for _, pid := range srcG.PIDs() {
		if p, err := src.k.Process(pid); err == nil {
			src.k.Exit(p, 2)
		}
	}

	rep, err := mig.PromoteStandby()
	if err != nil {
		return fmt.Errorf("bench: migrate seed %d standby promotion: %w", cfg.Seed, err)
	}
	r.rep.TTR = rep.TTR
	r.rep.Retries += rep.Retries
	r.rep.Backfilled += rep.Backfilled
	r.rep.Gen = rep.Gen

	// The promotion released the group from the source supervisor, so
	// a poll restores nothing. A restarted supervisor that re-watches
	// the fenced zombie (it cannot know better) must refuse to restore
	// it and report it fenced instead.
	r.sup.Watch(srcG)
	for _, ev := range r.sup.Poll() {
		if ev.NewGroup != 0 {
			return fmt.Errorf("bench: migrate seed %d standby: supervisor restored fenced zombie group %d as %d",
				cfg.Seed, ev.Group, ev.NewGroup)
		}
		if ev.Fenced {
			r.rep.SupervisorSkips++
		}
	}

	r.cur = dst
	r.g = rep.Group
	r.lastDurable = 0
	if err := r.invariants("standby"); err != nil {
		return err
	}
	if err := r.verifyState(dst, r.g, "standby lazy tail"); err != nil {
		return err
	}
	if err := r.verifyFromStore(dst.sb, srcG.ID, rep.Floor, "standby target store"); err != nil {
		return err
	}
	if err := r.expectFenced(src, srcG, srcG.Generation(), "standby fenced source"); err != nil {
		return err
	}
	ml.stop()
	r.rep.LinkDropped += ml.link.DroppedCount()
	r.rep.LinkInjected += ml.link.InjectedCount()

	for i := 0; i < cfg.PostEpochs; i++ {
		if err := r.epoch(); err != nil {
			return fmt.Errorf("bench: migrate seed %d standby post-epoch %d: %w", cfg.Seed, i, err)
		}
	}
	return r.invariants("standby post")
}

// MigrateChaosRun executes one migration chaos schedule.
func MigrateChaosRun(cfg MigrateChaosConfig) (*MigrateChaosReport, error) {
	cfg = cfg.withDefaults()
	r := &migRun{cfg: cfg, rep: &MigrateChaosReport{Seed: cfg.Seed, Hops: cfg.Hops}}

	m0 := newMigMachine("m0", cfg.Seed, cfg.StoreWriteErr, cfg.StoreReadErr)
	r.machines = []*migMachine{m0}
	r.cur = m0

	p, err := m0.k.Spawn(0, "migrate-app")
	if err != nil {
		return nil, err
	}
	p.SetProgram(&chaosCounter{addr: p.HeapBase()})
	for pg := 1; pg <= chaosPages; pg++ {
		if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, cfg.Seed)); err != nil {
			return nil, err
		}
	}
	g, err := m0.o.Persist("migrate-app", p)
	if err != nil {
		return nil, err
	}
	r.g = g
	r.lineage = g.ID
	m0.o.Attach(g, m0.sb)
	if err := m0.sb.Store().SetPrimary(r.lineage, g.Generation()); err != nil {
		return nil, err
	}
	if err := m0.sb.Store().Sync(); err != nil {
		return nil, err
	}
	r.sup = core.NewSupervisor(m0.o, core.SupervisorConfig{})
	r.sup.Watch(g)

	for i := 0; i < cfg.PreEpochs; i++ {
		if err := r.epoch(); err != nil {
			return nil, fmt.Errorf("bench: migrate seed %d pre-epoch %d: %w", cfg.Seed, i, err)
		}
	}
	if err := r.invariants("pre"); err != nil {
		return nil, err
	}

	for hop := 0; hop < cfg.Hops; hop++ {
		if err := r.hop(hop); err != nil {
			return nil, err
		}
	}
	if cfg.Standby {
		if err := r.standbyLeg(); err != nil {
			return nil, err
		}
	}

	r.rep.Durable = r.g.Durable()
	r.rep.FinalCounter = r.lastCounter
	sorted := append([]time.Duration(nil), r.rep.Blackouts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if n := len(sorted); n > 0 {
		r.rep.BlackoutP50 = sorted[n/2]
		r.rep.BlackoutP99 = sorted[(n*99)/100]
		r.rep.BlackoutMax = sorted[n-1]
	}
	return r.rep, nil
}

// MigratePoint is one row of BENCH_migrate.json.
type MigratePoint struct {
	Seed          int64   `json:"seed"`
	LinkFaultPct  float64 `json:"link_fault_pct"`
	StoreFaultPct float64 `json:"store_fault_pct"`
	Hops          int     `json:"hops"`
	BlackoutP50us float64 `json:"blackout_p50_us"`
	BlackoutP99us float64 `json:"blackout_p99_us"`
	BlackoutMaxus float64 `json:"blackout_max_us"`
	SrcStopMaxus  float64 `json:"src_stop_max_us"`
	TTRus         float64 `json:"ttr_us"`
	Retries       int     `json:"retries"`
	Backfilled    int     `json:"backfilled"`
	Durable       uint64  `json:"durable"`
}

// MigrateSweep runs the migration matrix: seeds × link/store fault
// rates, planned hops plus the unplanned standby promotion per cell.
func MigrateSweep(seeds []int64, rates []float64) ([]MigratePoint, error) {
	var points []MigratePoint
	for _, seed := range seeds {
		for _, rate := range rates {
			cfg := MigrateChaosConfig{
				Seed:          seed,
				LinkDrop:      rate,
				LinkDup:       rate / 2,
				LinkCorrupt:   rate / 2,
				StoreWriteErr: rate / 5,
				StoreReadErr:  rate / 5,
				PartitionMid:  true,
				Standby:       true,
			}
			if rate > 0 {
				cfg.Retries = 8
			}
			rep, err := MigrateChaosRun(cfg)
			if err != nil {
				return nil, err
			}
			var srcMax time.Duration
			for _, d := range rep.SrcStops {
				if d > srcMax {
					srcMax = d
				}
			}
			points = append(points, MigratePoint{
				Seed:          seed,
				LinkFaultPct:  rate * 100,
				StoreFaultPct: rate / 5 * 100,
				Hops:          rep.Hops,
				BlackoutP50us: float64(rep.BlackoutP50) / 1e3,
				BlackoutP99us: float64(rep.BlackoutP99) / 1e3,
				BlackoutMaxus: float64(rep.BlackoutMax) / 1e3,
				SrcStopMaxus:  float64(srcMax) / 1e3,
				TTRus:         float64(rep.TTR) / 1e3,
				Retries:       rep.Retries,
				Backfilled:    rep.Backfilled,
				Durable:       rep.Durable,
			})
		}
	}
	return points, nil
}
