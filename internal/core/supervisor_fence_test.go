package core

// Regression coverage for the supervisor/migration race: a group whose
// lineage was handed to another machine (fenced) must never be
// auto-restored by the source supervisor, no matter where in the
// poll/recover window the fencing lands — and Release must atomically
// drop the watch at the handover point.

import (
	"testing"
)

// supFenceSetup persists a counter workload with one durable
// checkpoint and crashes it.
func supFenceSetup(t *testing.T) (*rig, *Supervisor, *Group) {
	t.Helper()
	r := newRig(t)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	r.k.Run(3)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	sup := NewSupervisor(r.o, SupervisorConfig{})
	sup.Watch(g)
	r.k.Exit(p, 2) // crash
	return r, sup, g
}

func TestSupervisorRefusesFencedCrashedGroup(t *testing.T) {
	_, sup, g := supFenceSetup(t)
	// The migration handover fences the group before the next poll.
	g.markFenced(7, 1)

	evs := sup.Poll()
	if len(evs) != 1 {
		t.Fatalf("poll events = %d, want 1", len(evs))
	}
	if !evs[0].Fenced || evs[0].NewGroup != 0 {
		t.Fatalf("event = %+v, want Fenced with no restore", evs[0])
	}
	if watched := sup.Watched(); len(watched) != 0 {
		t.Fatalf("fenced group still watched: %v", watched)
	}
	// The dropped watch stays dropped: nothing on the next poll either.
	if evs := sup.Poll(); len(evs) != 0 {
		t.Fatalf("second poll events = %+v, want none", evs)
	}
}

func TestSupervisorFenceRaceMidRecover(t *testing.T) {
	// The handover can land between Poll's fence scan and the restore
	// inside recover (the backoff window). The post-backoff re-check
	// must still refuse to restore.
	_, sup, g := supFenceSetup(t)
	sup.mu.Lock()
	ws := sup.watches[g.ID]
	sup.mu.Unlock()
	if ws == nil {
		t.Fatal("group not watched")
	}
	if !sup.crashed(g) {
		t.Fatal("group not seen as crashed")
	}
	// Poll's scan has passed the fence check; the migration fences the
	// group now, racing the recovery.
	g.markFenced(9, 1)

	ev := sup.recover(ws)
	if !ev.Fenced || ev.NewGroup != 0 {
		t.Fatalf("recover = %+v, want Fenced with no restore", ev)
	}
	if watched := sup.Watched(); len(watched) != 0 {
		t.Fatalf("fenced group still watched after mid-recover race: %v", watched)
	}
}

func TestSupervisorReleaseAtomicHandover(t *testing.T) {
	_, sup, g := supFenceSetup(t)
	if !sup.Release(g) {
		t.Fatal("Release = false for a watched group")
	}
	if sup.Release(g) {
		t.Fatal("Release = true for an already released group")
	}
	// The crash that raced the handover restores nothing.
	if evs := sup.Poll(); len(evs) != 0 {
		t.Fatalf("poll after release = %+v, want no events", evs)
	}
	if watched := sup.Watched(); len(watched) != 0 {
		t.Fatalf("released group still watched: %v", watched)
	}
}

func TestSupervisorRestoresUnfencedCrash(t *testing.T) {
	// Control: the same crash without a fence IS restored — the fence
	// refusal above is about fencing, not a broken recovery path.
	_, sup, _ := supFenceSetup(t)
	evs := sup.Poll()
	if len(evs) != 1 || evs[0].NewGroup == 0 || evs[0].Fenced {
		t.Fatalf("events = %+v, want one successful restore", evs)
	}
}
