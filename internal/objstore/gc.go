package objstore

import "fmt"

// This file implements the store's in-place garbage collector. The
// paper's requirement: reclaiming old checkpoints must not rewrite the
// incremental checkpoints built on top of them. The collector
// therefore *merges forward*: when epoch E is dropped, any page of E
// not superseded by the next retained epoch is moved — by reference,
// never by copying data — into that epoch's record, after which E's
// records and superseded blocks are released in place.

// DropEpoch removes one checkpoint from a group's history, merging its
// still-live pages forward. Dropping the newest epoch of a group is
// only allowed when it is also the oldest (a one-checkpoint history).
func (s *Store) DropEpoch(group, epoch uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	ms := s.manifests[group]
	pos := -1
	for i, m := range ms {
		if m.Epoch == epoch {
			pos = i
			break
		}
	}
	if pos == -1 {
		return fmt.Errorf("%w: group %d epoch %d", ErrNoManifest, group, epoch)
	}
	victim := ms[pos]
	var next *Manifest
	if pos+1 < len(ms) {
		next = ms[pos+1]
	}

	for _, key := range victim.Records {
		rec := s.records[key]
		if rec == nil || rec.Epoch != epoch {
			// Already merged away, or re-keyed to a later epoch by an
			// earlier drop (the manifest entry is stale).
			continue
		}
		adopted := false
		if next != nil {
			adopted = s.mergeForwardLocked(rec, next)
		} else {
			// Last remaining checkpoint: release everything.
			for _, ref := range rec.Pages {
				s.releaseBlockLocked(ref)
			}
		}
		delete(s.records, key)
		if !adopted {
			// The record is gone for good: release its metadata extent.
			// (An adopted record lives on under the heir epoch and keeps
			// its metadata.)
			s.stats.MetaBytes -= int64(rec.metaLen)
			s.freeExtentLocked(rec.metaOff, rec.metaLen+1)
		}
	}

	// Relink the next manifest's history pointer and drop the victim.
	if next != nil && next.Prev == epoch {
		next.Prev = victim.Prev
	}
	s.manifests[group] = append(ms[:pos], ms[pos+1:]...)
	if victim.Name != "" {
		delete(s.named, victim.Name)
	}
	// A dropped epoch cannot poison anything anymore.
	delete(s.quarantined, manifestID{group, epoch})
	s.stats.EpochsDropped++
	return nil
}

// mergeForwardLocked folds a dropped record into the next epoch. It
// reports whether the record itself was adopted as the next epoch's
// record (in which case its metadata stays live).
func (s *Store) mergeForwardLocked(rec *Record, next *Manifest) bool {
	key := RecordKey{next.Group, rec.OID, next.Epoch}
	heir, ok := s.records[key]
	if !ok {
		// The object has no record at the next epoch (it was idle):
		// the dropped record *becomes* the next epoch's record.
		rec.Epoch = next.Epoch
		s.records[key] = rec
		next.Records = append(next.Records, key)
		return true
	}
	for idx, ref := range rec.Pages {
		if _, shadowed := heir.Pages[idx]; shadowed {
			// The heir rewrote this page; the old block dies.
			s.releaseBlockLocked(ref)
		} else {
			// Still live: move the reference forward, in place.
			heir.Pages[idx] = ref
		}
	}
	// The heir now carries the object's complete page set as of its
	// epoch if the dropped record did.
	if rec.Full {
		heir.Full = true
	}
	return false
}

func (s *Store) releaseBlockLocked(ref BlockRef) {
	be, ok := s.blocks[ref.Hash]
	if !ok {
		return
	}
	be.refs--
	if be.refs <= 0 {
		delete(s.blocks, ref.Hash)
		s.freeList = append(s.freeList, be.ref.Off)
		s.stats.BlocksFreed++
	}
}

// TrimHistory keeps at most keep checkpoints per group, dropping the
// oldest — the paper's "short execution history" maintained in free
// disk space.
func (s *Store) TrimHistory(group uint64, keep int) error {
	if keep < 1 {
		keep = 1
	}
	for {
		s.mu.Lock()
		ms := s.manifests[group]
		if len(ms) <= keep {
			s.mu.Unlock()
			return nil
		}
		oldest := ms[0].Epoch
		s.mu.Unlock()
		if err := s.DropEpoch(group, oldest); err != nil {
			return err
		}
	}
}
