package redis

import (
	"bytes"
	"fmt"
	"strconv"

	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// ProgramName registers the server driver for restore.
const ProgramName = "mini-redis"

// Server is the mini-Redis driver program: it polls the listener for
// new connections and the connections for commands, executing them
// against the in-memory table. All durable state lives in simulated
// memory; the driver snapshot carries only descriptor numbers and the
// table base, which is why the Aurora port needs no persistence code.
type Server struct {
	Base     vm.Addr
	ListenFD int
	conns    []int
	partial  map[int][]byte
	persist  Persistence

	ops     int64 // mutations executed
	replies int64
}

// NewServer builds the driver. Call Serve-style stepping through the
// kernel scheduler.
func NewServer(base vm.Addr, listenFD int, persist Persistence) *Server {
	if persist == nil {
		persist = NoPersistence{}
	}
	return &Server{Base: base, ListenFD: listenFD, partial: make(map[int][]byte), persist: persist}
}

// ProgName implements kernel.Program.
func (s *Server) ProgName() string { return ProgramName }

// Snapshot implements kernel.Program: descriptor numbers, table base
// and buffered partial input — the driver-local control state.
func (s *Server) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(s.Base))
	e.I64(int64(s.ListenFD))
	e.U64(uint64(len(s.conns)))
	for _, fd := range s.conns {
		e.I64(int64(fd))
		e.Bytes2(s.partial[fd])
	}
	e.Str(s.persist.Name())
	return e.Bytes()
}

// restoreServer reconstructs the driver from its snapshot. The
// persistence engine is resolved by name through the engine registry.
func restoreServer(k *kernel.Kernel, p *kernel.Process, state []byte) (*Server, error) {
	d := kernel.NewDecoder(state)
	s := &Server{partial: make(map[int][]byte)}
	s.Base = vm.Addr(d.U64())
	s.ListenFD = int(d.I64())
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		fd := int(d.I64())
		s.conns = append(s.conns, fd)
		if buf := d.Bytes2(); len(buf) > 0 {
			s.partial[fd] = buf
		}
	}
	name := d.Str()
	if err := d.Finish("mini-redis"); err != nil {
		return nil, err
	}
	s.persist = lookupEngine(name)
	return s, nil
}

func init() {
	kernel.RegisterProgram(ProgramName, func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		return restoreServer(k, p, state)
	})
}

// Ops reports executed mutations.
func (s *Server) Ops() int64 { return s.ops }

// Step implements kernel.Program: accept new connections, then drain
// one round of commands from each connection.
func (s *Server) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	for {
		fd, err := k.Accept(p, s.ListenFD)
		if err == kernel.ErrWouldBlock {
			break
		}
		if err != nil {
			return err
		}
		s.conns = append(s.conns, fd)
	}
	buf := make([]byte, 4096)
	for _, fd := range s.conns {
		n, err := k.Read(p, fd, buf)
		if err == kernel.ErrWouldBlock || kernel.IsEOF(err) {
			continue
		}
		if err != nil {
			continue // connection error: drop silently like redis
		}
		data := append(s.partial[fd], buf[:n]...)
		for {
			nl := bytes.IndexByte(data, '\n')
			if nl < 0 {
				break
			}
			line := data[:nl]
			data = data[nl+1:]
			if len(bytes.TrimSpace(line)) == 0 {
				continue
			}
			reply, err := s.execute(k, p, line)
			if err != nil {
				return err
			}
			if _, err := k.Write(p, fd, reply); err != nil && err != kernel.ErrWouldBlock {
				continue
			}
			s.replies++
		}
		if len(data) > 0 {
			s.partial[fd] = append([]byte(nil), data...)
		} else {
			delete(s.partial, fd)
		}
	}
	return nil
}

// execute runs one command line against the table.
func (s *Server) execute(k *kernel.Kernel, p *kernel.Process, line []byte) ([]byte, error) {
	st := &Store{P: p, Base: s.Base}
	fields := bytes.SplitN(line, []byte(" "), 3)
	cmd := string(bytes.ToUpper(fields[0]))
	switch cmd {
	case "PING":
		return []byte("+PONG\n"), nil
	case "SET":
		if len(fields) != 3 {
			return []byte("-ERR wrong number of arguments\n"), nil
		}
		if err := st.Set(fields[1], fields[2]); err != nil {
			return []byte("-ERR " + err.Error() + "\n"), nil
		}
		s.ops++
		if err := s.persist.OnMutation(k, p, line); err != nil {
			return nil, err
		}
		return []byte("+OK\n"), nil
	case "GET":
		if len(fields) != 2 {
			return []byte("-ERR wrong number of arguments\n"), nil
		}
		val, err := st.Get(fields[1])
		if err == ErrNotFound {
			return []byte("$-1\n"), nil
		}
		if err != nil {
			return []byte("-ERR " + err.Error() + "\n"), nil
		}
		return append([]byte("$"+strconv.Itoa(len(val))+"\n"), append(val, '\n')...), nil
	case "DEL":
		if len(fields) != 2 {
			return []byte("-ERR wrong number of arguments\n"), nil
		}
		err := st.Del(fields[1])
		s.ops++
		if perr := s.persist.OnMutation(k, p, line); perr != nil {
			return nil, perr
		}
		if err == ErrNotFound {
			return []byte(":0\n"), nil
		}
		return []byte(":1\n"), nil
	case "DBSIZE":
		n, err := st.Count()
		if err != nil {
			return nil, err
		}
		return []byte(fmt.Sprintf(":%d\n", n)), nil
	case "BGSAVE":
		if err := s.persist.Snapshot(k, p); err != nil {
			return []byte("-ERR " + err.Error() + "\n"), nil
		}
		return []byte("+Background saving started\n"), nil
	default:
		return []byte("-ERR unknown command '" + string(fields[0]) + "'\n"), nil
	}
}

// Client is a test/bench helper speaking the wire protocol from
// another simulated process.
type Client struct {
	K  *kernel.Kernel
	P  *kernel.Process
	FD int
	// ServerStep drives the server between request and response; in a
	// scheduler-driven setup it can just run the kernel.
	ServerStep func()
	buf        []byte
}

// Dial connects a client process to the server's socket path.
func Dial(k *kernel.Kernel, p *kernel.Process, path string, serverStep func()) (*Client, error) {
	fd, err := k.Connect(p, path)
	if err != nil {
		return nil, err
	}
	return &Client{K: k, P: p, FD: fd, ServerStep: serverStep}, nil
}

// Do sends one command line and returns one reply line.
func (c *Client) Do(line string) (string, error) {
	if _, err := c.K.Write(c.P, c.FD, []byte(line+"\n")); err != nil {
		return "", err
	}
	return c.readLine()
}

// readLine pulls one newline-terminated reply, stepping the server as
// needed.
func (c *Client) readLine() (string, error) {
	buf := make([]byte, 4096)
	for tries := 0; tries < 1000; tries++ {
		if nl := bytes.IndexByte(c.buf, '\n'); nl >= 0 {
			line := string(c.buf[:nl])
			c.buf = c.buf[nl+1:]
			return line, nil
		}
		n, err := c.K.Read(c.P, c.FD, buf)
		if err == kernel.ErrWouldBlock {
			c.ServerStep()
			continue
		}
		if err != nil {
			return "", err
		}
		c.buf = append(c.buf, buf[:n]...)
	}
	return "", kernel.ErrWouldBlock
}

// DoValue issues GET-style commands that return a $<len> header plus
// a payload line. It reports (value, found).
func (c *Client) DoValue(line string) (string, bool, error) {
	hdr, err := c.Do(line)
	if err != nil {
		return "", false, err
	}
	if hdr == "$-1" {
		return "", false, nil
	}
	if len(hdr) < 2 || hdr[0] != '$' {
		return "", false, fmt.Errorf("redis: bad value header %q", hdr)
	}
	val, err := c.readLine()
	if err != nil {
		return "", false, err
	}
	return val, true, nil
}
