package core

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// This file is the fleet-scale acceptance harness for the sharded
// orchestrator runtime: a seeded simulation that drives thousands of
// persistence groups through their whole lifecycle — spawn,
// checkpoint storms, crashes with supervised recovery, time-travel
// restores, and unpersist-while-queued — on one orchestrator whose
// flush work all runs on the fixed shard-worker pool under a global
// memory budget, with a fault-injecting primary device underneath.
//
// Scale is environment-gated: plain `go test` runs a smoke-sized
// fleet so tier-1 stays fast; `make fleetcheck` sets
// AURORA_FLEET_GROUPS=10000 and replays seeds 1/7/42 under the race
// detector.

// fleetGroupTotal returns the number of groups each seed drives.
func fleetGroupTotal() int {
	if s := os.Getenv("AURORA_FLEET_GROUPS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 256
}

// fleetSeedPages is the patterned working set written to every group
// beyond the counter page, so images span several blocks.
const fleetSeedPages = 4

// fleetMaxLive bounds how many groups are alive at once: the fleet is
// a churn of short-lived FaaS-style instances, not 10k concurrent
// processes.
const fleetMaxLive = 64

// fleetSim is one group's live state in the simulation.
type fleetSim struct {
	g           *Group
	p           *kernel.Process
	ckpts       int
	lastDurable uint64
	samples     []fleetSample
}

// fleetSample pins one checkpointed state for a later bit-identical
// restore check.
type fleetSample struct {
	epoch uint64
	value uint64
	sum   uint64 // fnv64 over the counter page and the seeded pages
}

// fleetPrint is the deterministic fingerprint of one simulation run:
// two runs with the same seed and scale must produce identical
// fingerprints. Quantities that depend on real goroutine scheduling
// are deliberately excluded: budget stalls, and the virtual clock —
// cross-group dedup means whichever flush lane writes a shared block
// first pays the device-write cost, so lane-merged virtual time
// shifts by a few hundred nanoseconds with real flush interleaving
// even when every logical outcome is identical.
type fleetPrint struct {
	Ckpts     int
	Crashes   int
	Recovered int
	GaveUps   int
	Restores  int
	Retired   int
	CkptSum   uint64
}

func heapSum(t *testing.T, p *kernel.Process) uint64 {
	t.Helper()
	h := fnv.New64a()
	buf := make([]byte, vm.PageSize)
	for pg := 0; pg <= fleetSeedPages; pg++ {
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			t.Fatalf("read heap page %d: %v", pg, err)
		}
		h.Write(buf)
	}
	return h.Sum64()
}

// runFleetSim drives `total` groups through the full lifecycle on one
// orchestrator and returns the run's fingerprint.
func runFleetSim(t *testing.T, seed int64, total int) fleetPrint {
	t.Helper()
	before := snapshotGoroutines()

	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	o.FleetMemBudget = 96 << 10 // a handful of images; forces budget waits under storms
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: seed, WriteErr: 0.002})
	store := NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)
	sup := NewSupervisor(o, SupervisorConfig{})

	rng := rand.New(rand.NewSource(seed))
	var fp fleetPrint
	var live []*fleetSim
	spawned := 0

	spawnOne := func() *fleetSim {
		p, err := k.Spawn(0, "counter")
		if err != nil {
			t.Fatal(err)
		}
		p.SetProgram(&counter{addr: p.HeapBase()})
		// Seed a patterned working set so the image is more than one
		// page; content is group-unique so dedup cannot flatter this run.
		buf := make([]byte, vm.PageSize)
		for pg := 1; pg <= fleetSeedPages; pg++ {
			for i := range buf {
				buf[i] = byte(int64(spawned)*131 + int64(pg)*31 + int64(i)*7 + seed)
			}
			if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
				t.Fatal(err)
			}
		}
		g, err := o.Persist(fmt.Sprintf("fleet-%d-%d", seed, spawned), p)
		if err != nil {
			t.Fatal(err)
		}
		o.Attach(g, store)
		sup.Watch(g)
		spawned++
		return &fleetSim{g: g, p: p}
	}

	retire := func(sg *fleetSim) {
		// Unpersist first — often with epochs still queued on the shard
		// workers, which is exactly the stranded-Enqueue regression path.
		// The fingerprint takes the barrier count, not Durable(): how
		// far the background flush got by the instant of retirement
		// depends on real scheduling, and the replay must not.
		fp.CkptSum += uint64(sg.ckpts)
		sup.Unwatch(sg.g)
		o.Unpersist(sg.g)
		if sg.p.State() == kernel.ProcRunning {
			k.Exit(sg.p, 0)
		}
		_ = k.Reap(sg.p)
		fp.Retired++
	}

	checkMonotone := func(sg *fleetSim) {
		if d := sg.g.Durable(); d < sg.lastDurable {
			t.Fatalf("group %d durable frontier regressed: %d -> %d", sg.g.ID, sg.lastDurable, d)
		} else {
			sg.lastDurable = d
		}
	}

	for spawned < total || len(live) > 0 {
		for len(live) < fleetMaxLive && spawned < total {
			live = append(live, spawnOne())
		}
		if _, err := k.Run(len(live)); err != nil {
			t.Fatal(err)
		}
		ops := 1 + rng.Intn(4)
		for i := 0; i < ops && len(live) > 0; i++ {
			idx := rng.Intn(len(live))
			sg := live[idx]
			switch rng.Intn(10) {
			case 0, 1, 2, 3: // checkpoint, sometimes sampling the state
				if _, err := o.Checkpoint(sg.g, CheckpointOpts{}); err != nil {
					t.Fatalf("checkpoint group %d: %v", sg.g.ID, err)
				}
				sg.ckpts++
				fp.Ckpts++
				if rng.Intn(4) == 0 {
					sg.samples = append(sg.samples, fleetSample{
						epoch: sg.g.Epoch(),
						value: counterValue(sg.p),
						sum:   heapSum(t, sg.p),
					})
				}
			case 4: // crash; the supervisor restores from the durable frontier
				// Gate on the deterministic barrier count and pin the
				// durable frontier to the barrier before crashing, so the
				// epoch the supervisor restores from — and therefore the
				// whole downstream trajectory — does not depend on how far
				// the background flush happened to get. Crash-with-queued
				// epochs stays covered by the retire path.
				if sg.ckpts < 1 {
					continue
				}
				if err := o.Sync(sg.g); err != nil {
					t.Fatalf("pre-crash sync group %d: %v", sg.g.ID, err)
				}
				k.Exit(sg.p, 1)
				fp.Crashes++
				evs := sup.Poll()
				var ev *SupervisorEvent
				for j := range evs {
					if evs[j].Group == sg.g.ID {
						ev = &evs[j]
					}
				}
				if ev == nil || ev.Err != nil {
					t.Fatalf("crash of group %d not recovered: %+v", sg.g.ID, evs)
				}
				if ev.GaveUp {
					// Restart budget exhausted: the supervisor declared a
					// crash loop. The corpse still retires cleanly.
					fp.GaveUps++
					fp.CkptSum += uint64(sg.ckpts)
					o.Unpersist(sg.g)
					_ = k.Reap(sg.p)
					fp.Retired++
					live[idx] = live[len(live)-1]
					live = live[:len(live)-1]
					continue
				}
				ng, err := o.Group(ev.NewGroup)
				if err != nil {
					t.Fatal(err)
				}
				np, err := k.Process(ng.PIDs()[0])
				if err != nil {
					t.Fatal(err)
				}
				// Drop the corpse group — its queued epochs fail closed.
				old := sg.g
				sg.g, sg.p, sg.samples, sg.lastDurable = ng, np, nil, 0
				o.Unpersist(old)
				fp.Recovered++
			case 5: // time-travel restore of a sampled durable epoch
				if len(sg.samples) == 0 {
					continue
				}
				s := sg.samples[rng.Intn(len(sg.samples))]
				// Sync first: every recorded sample sits at or below the
				// barrier, so after the sync it is durable by construction.
				// Filtering on a racy Durable() read here would let real
				// flush timing steer the simulation.
				if err := o.Sync(sg.g); err != nil {
					t.Fatalf("pre-restore sync group %d: %v", sg.g.ID, err)
				}
				ng, _, err := o.Restore(sg.g, s.epoch, RestoreOpts{})
				if err != nil {
					t.Fatalf("restore group %d epoch %d: %v", sg.g.ID, s.epoch, err)
				}
				np, err := k.Process(ng.PIDs()[0])
				if err != nil {
					t.Fatal(err)
				}
				if got := counterValue(np); got != s.value {
					t.Fatalf("group %d epoch %d restored counter = %d, want %d",
						sg.g.ID, s.epoch, got, s.value)
				}
				if got := heapSum(t, np); got != s.sum {
					t.Fatalf("group %d epoch %d restored pages differ from checkpointed state",
						sg.g.ID, s.epoch)
				}
				fp.Restores++
				o.Unpersist(ng)
				k.Exit(np, 0)
				_ = k.Reap(np)
			case 6: // sync: the durable frontier must catch the barrier
				if err := o.Sync(sg.g); err != nil {
					t.Fatalf("sync group %d: %v", sg.g.ID, err)
				}
				if d, e := sg.g.Durable(), sg.g.Epoch(); d != e {
					t.Fatalf("group %d synced but durable %d != epoch %d", sg.g.ID, d, e)
				}
			default: // retire once it has a little history
				if sg.ckpts < 2 {
					continue
				}
				checkMonotone(sg)
				retire(sg)
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
				continue
			}
			checkMonotone(sg)
		}
	}

	st := o.FleetStats()
	if st.Dispatches == 0 {
		t.Fatal("no flush ever ran on the shard workers")
	}
	if st.Shards < 2 {
		t.Fatalf("fleet ran on %d shards", st.Shards)
	}
	placed := 0
	for _, n := range st.Placements {
		if n == 0 {
			t.Fatalf("a shard received no groups across %d placements: %v", spawned, st.Placements)
		}
		placed += n
	}
	if placed < spawned {
		t.Fatalf("placements %d < groups %d", placed, spawned)
	}
	if st.MemPeak == 0 || st.MemPeak > st.MemBudget {
		t.Fatalf("budget violated: peak %d, budget %d", st.MemPeak, st.MemBudget)
	}
	if st.MemInUse != 0 {
		t.Fatalf("%d frame bytes still charged after the fleet drained", st.MemInUse)
	}
	o.Close()
	assertNoLeaks(t, before)

	t.Logf("seed %d: %d groups, %d ckpts, %d crashes (%d recovered), %d restores, vclock=%d dispatches=%d placements=%v stalls=%d",
		seed, spawned, fp.Ckpts, fp.Crashes, fp.Recovered, fp.Restores, clock.Now(), st.Dispatches, st.Placements, st.BudgetStalls)
	return fp
}

// TestFleetSimulation is the tentpole acceptance test: each seed
// drives the configured fleet (10k groups under `make fleetcheck`)
// through spawn/checkpoint/crash/restore/unpersist on one sharded
// orchestrator, asserting per-group durable monotonicity, bit-identical
// sampled restores, bounded flush memory, and zero goroutines left.
func TestFleetSimulation(t *testing.T) {
	total := fleetGroupTotal()
	for _, seed := range []int64{1, 7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fp := runFleetSim(t, seed, total)
			if fp.Retired != total {
				t.Fatalf("retired %d of %d groups", fp.Retired, total)
			}
			if fp.Ckpts == 0 || fp.Crashes == 0 || fp.Recovered+fp.GaveUps != fp.Crashes || fp.Restores == 0 {
				t.Fatalf("lifecycle coverage too thin: %+v", fp)
			}
		})
	}
}

// TestFleetSimulationDeterministic replays one smoke-scale seed twice:
// every lifecycle count must match exactly, proving the shard workers'
// real-time scheduling never leaks into simulated state.
func TestFleetSimulationDeterministic(t *testing.T) {
	total := fleetGroupTotal()
	if total > 128 {
		total = 128
	}
	a := runFleetSim(t, 1, total)
	b := runFleetSim(t, 1, total)
	if a != b {
		t.Fatalf("same seed diverged:\n  run 1: %+v\n  run 2: %+v", a, b)
	}
}

// TestFleetCloneDedup is the FaaS-density half of the tentpole: N
// clones of one image, checkpointed into a shared store through the
// fleet runtime, must cost about one image of device bytes — the
// content-hash block dedup plus sub-block metadata packing absorb the
// rest.
func TestFleetCloneDedup(t *testing.T) {
	const clones = 96
	const imagePages = 64

	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	st := objstore.Create(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock)
	store := NewStoreBackend(st, k.Mem, clock)

	// Build identical clones: same program, same patterned pages.
	procs := make([]*kernel.Process, clones)
	buf := make([]byte, vm.PageSize)
	for c := range procs {
		p, err := k.Spawn(0, "counter")
		if err != nil {
			t.Fatal(err)
		}
		p.SetProgram(&counter{addr: p.HeapBase()})
		for pg := 1; pg < imagePages; pg++ {
			for i := range buf {
				buf[i] = byte(pg*13 + i*3)
			}
			if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
				t.Fatal(err)
			}
		}
		procs[c] = p
	}

	groups := make([]*Group, clones)
	for c, p := range procs {
		g, err := o.Persist(fmt.Sprintf("clone-%d", c), p)
		if err != nil {
			t.Fatal(err)
		}
		o.Attach(g, store)
		groups[c] = g
	}

	used := func() int64 { return storage.ResidentBytes(st.Device()) }
	base := used()

	ckpt := func(g *Group) {
		if _, err := o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
		o.Drain(g)
	}
	ckpt(groups[0])
	one := used() - base
	if one <= 0 {
		t.Fatalf("first clone wrote nothing (delta %d)", one)
	}
	for _, g := range groups[1:] {
		ckpt(g)
	}
	all := used() - base

	if limit := one + one/10; all > limit {
		t.Fatalf("%d clones cost %d bytes, limit 1.1x one image = %d (one=%d)", clones, all, limit, one)
	}
	stats := st.Stats()
	if stats.DedupHits == 0 {
		t.Fatal("no block writes were deduplicated")
	}
	if stats.PackBlocks == 0 {
		t.Fatal("clone metadata was not sub-block packed")
	}
	t.Logf("%d clones x %d pages: one image %d B, fleet total %d B (%.3fx), dedup hits %d, pack blocks %d",
		clones, imagePages, one, all, float64(all)/float64(one), stats.DedupHits, stats.PackBlocks)
	o.Close()
}
