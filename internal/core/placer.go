package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// This file implements the multi-store placement control plane: the
// composition of PRs 2/5/6/8 into a fleet that heals itself. A Placer
// spreads persistence groups across N stores — each an independent
// machine with its own orchestrator, objstore, and replica links — by
// failure domain, load, and free space, with hard anti-affinity: a
// lineage's copies never share a failure domain, so no single rack or
// host death can take both.
//
// The placer is also the actor when the world changes:
//
//   - Store death (a probe ladder mirroring the PR 2 per-backend
//     health machine: transient failures degrade, DownAfter
//     consecutive failures declare the store down) triggers automatic
//     evacuation. Resident lineages are queued hot-first — a lineage
//     whose replica is fully caught up to the durable frontier promotes
//     in constant time — and drained through a bounded-concurrency
//     throttle (EvacConcurrency per Poll round, each landing on its
//     target machine's own detached clock). Lineages still queued
//     surface the typed ErrEvacuating.
//   - Space pressure (the PR 5 watermarks) triggers rebalance: the
//     heaviest resident lineage live-migrates (core.Migrator) toward
//     the emptiest compatible store before ENOSPC shedding begins.
//   - Planned decommission is first-class: Drain empties a store —
//     live-migrating primaries off, re-homing replica roles — then
//     fences it.
//
// Throughout, the PR 8 invariants hold: durable never regresses along
// a lineage, and exactly one store claims the primary role at the max
// generation (promotion mints above every witnessed fence; the old
// store's claim survives only at a strictly lower generation).

// Typed placement errors.
var (
	// ErrEvacuating marks a lineage queued for (or mid-) evacuation
	// after its primary store died: its placement is in flux.
	ErrEvacuating = errors.New("core: lineage is evacuating")
	// ErrDraining refuses an operation against a draining store
	// (CLI exit code 10).
	ErrDraining = errors.New("core: store is draining")
	// ErrNoFeasiblePlacement means no store satisfies the placement
	// constraints — anti-affinity, liveness, capacity (CLI exit 11).
	ErrNoFeasiblePlacement = errors.New("core: no feasible placement")
	// ErrUnknownLineage rejects a lookup of a lineage the placer never
	// placed (or has lost every copy of).
	ErrUnknownLineage = errors.New("core: unknown lineage")
)

// StoreState is one fleet store's lifecycle state.
type StoreState int

const (
	// StoreActive accepts placements and serves residents.
	StoreActive StoreState = iota
	// StoreDraining is being decommissioned: it serves residents but
	// refuses new placements while Drain moves its residents off.
	StoreDraining
	// StoreDown failed its probe ladder: residents are evacuated.
	StoreDown
	// StoreFenced is a drained store: empty, refusing everything.
	StoreFenced
)

func (s StoreState) String() string {
	switch s {
	case StoreActive:
		return "active"
	case StoreDraining:
		return "draining"
	case StoreDown:
		return "down"
	case StoreFenced:
		return "fenced"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// StoreNode is one store of the fleet: an independent machine with its
// own orchestrator (clock, kernel, flush pipeline), its own object
// store, and optionally its own supervisor and space reclaimer.
type StoreNode struct {
	Name   string
	Domain string // failure domain (rack/host/AZ) for anti-affinity
	O      *Orchestrator
	SB     *StoreBackend
	Sup    *Supervisor // optional: crash recovery on this machine
	Rec    *Reclaimer  // optional: space pressure on this machine

	mu         sync.Mutex
	state      StoreState
	probeFails int
}

// State returns the node's lifecycle state.
func (n *StoreNode) State() StoreState {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

func (n *StoreNode) setState(st StoreState) {
	n.mu.Lock()
	n.state = st
	n.mu.Unlock()
}

// usageFrac is the store's device occupancy fraction (0 when the
// device is unbounded).
func (n *StoreNode) usageFrac() float64 {
	_, _, frac := n.SB.Store().Usage()
	return frac
}

// PlacerLinks is the placer's view of the fleet's replication wiring —
// the store directory. netback.Directory implements it. The placer
// never touches wire details: it asks for a link from a primary node
// to a replica node for one stream and gets back the sender-side
// backend to attach and the receiver-side source promotions read.
type PlacerLinks interface {
	// Link establishes (or returns) the replication wire src→dst for
	// one stream, connected and serving.
	Link(src, dst *StoreNode, stream uint64) (Backend, ReplicaSource, error)
	// Reconnect re-establishes a dropped link connection (the
	// migrator's retry hook).
	Reconnect(src, dst *StoreNode, stream uint64) error
	// Drop tears the wire down for good.
	Drop(src, dst *StoreNode, stream uint64)
}

// PlacerConfig tunes the control plane. Zero values select defaults.
type PlacerConfig struct {
	// Replicas is the total copy count per lineage, primary included
	// (default 2: primary + one replica).
	Replicas int
	// EvacConcurrency bounds evacuations and replica repairs processed
	// per Poll round (default 4): the throttle that keeps a dead
	// store's hundreds of residents from re-homing in one indivisible
	// storm.
	EvacConcurrency int
	// DownAfter is the probe ladder: consecutive probe failures before
	// a store is declared down (default 3). Mirrors the PR 2 backend
	// health machine — one failure degrades, the ladder declares down.
	DownAfter int
	// HighWater is the occupancy fraction that triggers rebalance
	// (default 0.80, the PR 5 high watermark).
	HighWater float64
	// MigrateRounds bounds pre-copy rounds for drain/rebalance
	// migrations (default 2).
	MigrateRounds int
	// Retries is the migrator's per-phase retry budget for every
	// placement-driven move (0 keeps the migrator default). Chaos
	// runs with injected faults need the headroom.
	Retries int
	// PrimaryTarget is the resident-primary count a store is sized for.
	// When set, utilization is the max of device occupancy and
	// primaries/PrimaryTarget, so load pressure (not just space
	// pressure) drives pick ordering, rebalance, and the autoscaler's
	// signals. Zero keeps the pre-elasticity space-only behaviour.
	PrimaryTarget int
	// MoveCooldownTicks is the paced-rebalance ping-pong guard: a
	// lineage moved by RebalanceTick is ineligible to move again for
	// this many ticks (default 4).
	MoveCooldownTicks int
	// Opts is applied to every promotion/migration restore.
	Opts RestoreOpts
}

func (c PlacerConfig) replicas() int {
	if c.Replicas > 0 {
		return c.Replicas
	}
	return 2
}

func (c PlacerConfig) evacConcurrency() int {
	if c.EvacConcurrency > 0 {
		return c.EvacConcurrency
	}
	return 4
}

func (c PlacerConfig) downAfter() int {
	if c.DownAfter > 0 {
		return c.DownAfter
	}
	return 3
}

func (c PlacerConfig) highWater() float64 {
	if c.HighWater > 0 {
		return c.HighWater
	}
	return 0.80
}

func (c PlacerConfig) migrateRounds() int {
	if c.MigrateRounds > 0 {
		return c.MigrateRounds
	}
	return 2
}

func (c PlacerConfig) moveCooldownTicks() uint64 {
	if c.MoveCooldownTicks > 0 {
		return uint64(c.MoveCooldownTicks)
	}
	return 4
}

// Placement is one lineage's current home: the primary node running
// the group plus the replica nodes holding acked copies.
type Placement struct {
	Lineage uint64
	Name    string

	// All mutable state below is guarded by the owning placer's mu.
	primary    *StoreNode
	replicas   []*StoreNode
	sources    map[*StoreNode]ReplicaSource // receiver views, per replica
	wires      map[*StoreNode]Backend       // sender backends, per replica
	g          *Group
	evacuating bool
	lost       bool
}

// Group returns the live group (on the primary node's orchestrator).
func (pl *Placement) Group() *Group { return pl.g }

// Primary returns the node running the lineage.
func (pl *Placement) Primary() *StoreNode { return pl.primary }

// Replicas returns the replica nodes (primary excluded).
func (pl *Placement) Replicas() []*StoreNode {
	return append([]*StoreNode(nil), pl.replicas...)
}

// PlacerEvent records one control-plane action.
type PlacerEvent struct {
	Kind    string // "store-down", "evacuated", "repaired", "rebalanced", "drained", "undrained", "unplaced", "evac-failed", ...
	Store   string // the store acted on (down/drained)
	Lineage uint64
	From    string // previous home
	To      string // new home
	Gen     uint64 // generation minted by the move
	Floor   uint64 // the epoch the move resumed from
	TTR     time.Duration
	Err     error
}

// Placer is the fleet placement control plane.
type Placer struct {
	links PlacerLinks
	cfg   PlacerConfig

	mu         sync.Mutex
	nodes      []*StoreNode
	placements map[uint64]*Placement
	evacq      []uint64 // lineages whose primary died, awaiting promotion
	repairq    []uint64 // lineages that lost a replica, awaiting re-replication
	events     []PlacerEvent

	rebalTick uint64            // paced-rebalance tick counter
	lastMoved map[uint64]uint64 // lineage → tick of its last rebalance move
}

// NewPlacer creates a placer wiring replication through links.
func NewPlacer(links PlacerLinks, cfg PlacerConfig) *Placer {
	return &Placer{
		links:      links,
		cfg:        cfg,
		placements: make(map[uint64]*Placement),
		lastMoved:  make(map[uint64]uint64),
	}
}

// AddStore admits a store into the fleet and stamps its placement
// labels onto the objstore, so the store itself knows its identity.
func (p *Placer) AddStore(n *StoreNode) error {
	if n.Name == "" || n.Domain == "" {
		return fmt.Errorf("core: store needs a name and a failure domain")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, ex := range p.nodes {
		if ex.Name == n.Name {
			return fmt.Errorf("core: store %q already admitted", n.Name)
		}
	}
	n.SB.Store().SetLabels(n.Name, n.Domain)
	// Group IDs are minted per orchestrator but compared fleet-wide
	// (lineage keys, PrimaryGen fencing) — give each store a disjoint
	// range so two stores never mint the same lineage.
	n.O.SetIDBase(uint64(len(p.nodes)+1) << 32)
	if n.Sup != nil {
		n.Sup.ExemptEvacuations(p.evacuationOf)
	}
	p.nodes = append(p.nodes, n)
	return nil
}

// Stores lists the fleet's nodes in admission order.
func (p *Placer) Stores() []*StoreNode {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]*StoreNode(nil), p.nodes...)
}

// Node resolves a store by name.
func (p *Placer) Node(name string) (*StoreNode, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range p.nodes {
		if n.Name == name {
			return n, nil
		}
	}
	return nil, fmt.Errorf("core: no store named %q", name)
}

// Events returns every control-plane event recorded so far.
func (p *Placer) Events() []PlacerEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]PlacerEvent(nil), p.events...)
}

// Placements lists every placement, sorted by lineage.
func (p *Placer) Placements() []*Placement {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]*Placement, 0, len(p.placements))
	for _, pl := range p.placements {
		out = append(out, pl)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Lineage < out[j].Lineage })
	return out
}

// Lookup resolves a lineage's placement. A lineage mid-evacuation
// returns its (stale) placement together with ErrEvacuating; callers
// must not route work to it until a later Lookup succeeds.
func (p *Placer) Lookup(lineage uint64) (*Placement, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pl, ok := p.placements[lineage]
	if !ok {
		return nil, fmt.Errorf("core: lineage %d: %w", lineage, ErrUnknownLineage)
	}
	if pl.lost {
		return nil, fmt.Errorf("core: lineage %d lost every copy: %w", lineage, ErrUnknownLineage)
	}
	if pl.evacuating {
		return pl, fmt.Errorf("core: lineage %d: %w", lineage, ErrEvacuating)
	}
	return pl, nil
}

// evacuationOf is the supervisor exemption hook: a crash on a group
// whose lineage is mid-evacuation (or whose primary store is down or
// draining) is the store's fault, not the application's, so its
// recovery must not be charged against the crash-loop restart budget.
func (p *Placer) evacuationOf(g *Group) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pl := range p.placements {
		if pl.g != g {
			continue
		}
		if pl.evacuating {
			return true
		}
		if st := pl.primary.State(); st == StoreDown || st == StoreDraining {
			return true
		}
		return false
	}
	return false
}

// primaries counts placements whose primary is n. Caller holds p.mu.
func (p *Placer) primariesLocked(n *StoreNode) int {
	c := 0
	for _, pl := range p.placements {
		if pl.primary == n && !pl.lost {
			c++
		}
	}
	return c
}

// utilLocked scores one store's composite utilization: device
// occupancy, raised to primary load against PrimaryTarget when that
// is configured. This is the signal the autoscaler samples and the
// ordering key the picker minimizes. Caller holds p.mu.
func (p *Placer) utilLocked(n *StoreNode) float64 {
	u := n.usageFrac()
	if t := p.cfg.PrimaryTarget; t > 0 {
		if load := float64(p.primariesLocked(n)) / float64(t); load > u {
			u = load
		}
	}
	return u
}

// Utilization reports n's composite utilization (the max of device
// occupancy and resident-primary load against PrimaryTarget).
func (p *Placer) Utilization(n *StoreNode) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.utilLocked(n)
}

// pick chooses the best eligible node: active, not in `exclude`, and
// in a failure domain not in `domains`. Lower utilization wins, then
// fewer resident primaries, then name (deterministic). Caller holds
// p.mu.
func (p *Placer) pickLocked(exclude map[*StoreNode]bool, domains map[string]bool) *StoreNode {
	var best *StoreNode
	var bestFrac float64
	var bestPrim int
	for _, n := range p.nodes {
		if n.State() != StoreActive || exclude[n] || domains[n.Domain] {
			continue
		}
		frac := p.utilLocked(n)
		prim := p.primariesLocked(n)
		if best == nil ||
			frac < bestFrac ||
			(frac == bestFrac && prim < bestPrim) ||
			(frac == bestFrac && prim == bestPrim && n.Name < best.Name) {
			best, bestFrac, bestPrim = n, frac, prim
		}
	}
	return best
}

// Place schedules a new lineage onto the fleet: start is invoked on
// the chosen primary node to spawn and persist the workload there
// (the placer cannot know how to build the application). The placer
// then anchors the lineage on the primary's store, wires Replicas-1
// acked replica links to stores in distinct failure domains, and
// registers the supervisor watch. It fails with ErrNoFeasiblePlacement
// before starting anything if the fleet cannot satisfy anti-affinity.
func (p *Placer) Place(name string, start func(*StoreNode) (*Group, error)) (*Placement, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.placeLocked(name, start)
}

func (p *Placer) placeLocked(name string, start func(*StoreNode) (*Group, error)) (*Placement, error) {
	need := p.cfg.replicas()
	// Feasibility first: enough distinct live failure domains.
	domains := make(map[string]bool)
	for _, n := range p.nodes {
		if n.State() == StoreActive {
			domains[n.Domain] = true
		}
	}
	if len(domains) < need {
		return nil, fmt.Errorf("core: placing %q needs %d distinct failure domains, fleet has %d live: %w",
			name, need, len(domains), ErrNoFeasiblePlacement)
	}

	primary := p.pickLocked(nil, nil)
	if primary == nil {
		return nil, fmt.Errorf("core: placing %q: no live store: %w", name, ErrNoFeasiblePlacement)
	}
	g, err := start(primary)
	if err != nil {
		return nil, fmt.Errorf("core: placing %q on %s: %w", name, primary.Name, err)
	}

	primary.O.Attach(g, primary.SB)
	if err := primary.SB.Store().SetPrimary(g.ID, g.Generation()); err != nil {
		return nil, fmt.Errorf("core: placing %q: claiming primary on %s: %w", name, primary.Name, err)
	}
	// Persisting the claim exercises the store's write path; a flaky
	// (fault-injected) device fails individual publishes without being
	// dead, so retry a few rolls before giving up on the placement.
	var syncErr error
	for attempt := 0; attempt < 8; attempt++ {
		if syncErr = primary.O.syncWithReclaim(primary.SB); syncErr == nil {
			break
		}
	}
	if syncErr != nil {
		return nil, fmt.Errorf("core: placing %q: persisting claim on %s: %w", name, primary.Name, syncErr)
	}

	pl := &Placement{
		Lineage: g.ID,
		Name:    name,
		primary: primary,
		g:       g,
		sources: make(map[*StoreNode]ReplicaSource),
		wires:   make(map[*StoreNode]Backend),
	}
	exclude := map[*StoreNode]bool{primary: true}
	used := map[string]bool{primary.Domain: true}
	for i := 1; i < need; i++ {
		r := p.pickLocked(exclude, used)
		if r == nil {
			return nil, fmt.Errorf("core: placing %q: replica %d has no anti-affine store: %w",
				name, i, ErrNoFeasiblePlacement)
		}
		b, view, err := p.links.Link(primary, r, g.ID)
		if err != nil {
			return nil, fmt.Errorf("core: placing %q: linking %s→%s: %w", name, primary.Name, r.Name, err)
		}
		primary.O.Attach(g, b)
		pl.replicas = append(pl.replicas, r)
		pl.sources[r] = view
		pl.wires[r] = b
		exclude[r] = true
		used[r.Domain] = true
	}
	if primary.Sup != nil {
		primary.Sup.Watch(g)
	}
	p.placements[g.ID] = pl
	return pl, nil
}

// probe checks one store's health: publishing the index exercises the
// device's write path end to end. Transient injected faults fail a
// probe without failing the store — the DownAfter ladder separates a
// flaky device from a dead one, exactly like the PR 2 backend ladder.
func (p *Placer) probe(n *StoreNode) error {
	return n.SB.Store().Sync()
}

// Poll runs one control-plane round: probe every store, declare deaths,
// and process the evacuation/repair queues under the concurrency
// throttle. It returns the events of this round.
func (p *Placer) Poll() []PlacerEvent {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []PlacerEvent

	for _, n := range p.nodes {
		st := n.State()
		if st != StoreActive && st != StoreDraining {
			continue
		}
		if err := p.probe(n); err != nil {
			n.mu.Lock()
			n.probeFails++
			fails := n.probeFails
			n.mu.Unlock()
			if fails >= p.cfg.downAfter() {
				out = append(out, p.markDownLocked(n, err)...)
			}
		} else {
			n.mu.Lock()
			n.probeFails = 0
			n.mu.Unlock()
		}
	}

	out = append(out, p.processQueuesLocked()...)
	p.events = append(p.events, out...)
	return out
}

// markDownLocked declares a store dead and queues its residents:
// primaries for evacuation (hot-first), replica roles for repair.
func (p *Placer) markDownLocked(n *StoreNode, cause error) []PlacerEvent {
	n.setState(StoreDown)
	events := []PlacerEvent{{Kind: "store-down", Store: n.Name, Err: cause}}

	var evac []uint64
	for lin, pl := range p.placements {
		if pl.lost {
			continue
		}
		if pl.primary == n {
			pl.evacuating = true
			evac = append(evac, lin)
			// The dead machine's supervisor must not fight the
			// evacuation by resurrecting the group locally.
			if n.Sup != nil {
				n.Sup.Release(pl.g)
			}
			continue
		}
		for _, r := range pl.replicas {
			if r == n {
				p.repairq = append(p.repairq, lin)
				break
			}
		}
	}
	// Hot lineages first: a replica caught up to the durable frontier
	// promotes with no catch-up to replay, so the hottest state is back
	// under a primary soonest. Ties break by lineage for determinism.
	sort.Slice(evac, func(i, j int) bool {
		a, b := p.placements[evac[i]], p.placements[evac[j]]
		ha, hb := p.hotLocked(a), p.hotLocked(b)
		if ha != hb {
			return ha
		}
		return evac[i] < evac[j]
	})
	p.evacq = append(p.evacq, evac...)
	sort.Slice(p.repairq, func(i, j int) bool { return p.repairq[i] < p.repairq[j] })
	return events
}

// hotLocked reports whether some surviving replica of pl is caught up
// to the group's durable frontier.
func (p *Placer) hotLocked(pl *Placement) bool {
	d := pl.g.Durable()
	for _, r := range pl.replicas {
		if st := r.State(); st != StoreActive && st != StoreDraining {
			continue
		}
		if src := pl.sources[r]; src != nil && src.ContiguousEpoch(pl.g.ID) >= d {
			return true
		}
	}
	return false
}

// processQueuesLocked drains up to EvacConcurrency entries from each
// queue. Each evacuation lands on its target machine's own clock — the
// detached-lane model of running the storm's members concurrently —
// while the queue bound keeps the fleet from re-homing every resident
// of a dead store in one indivisible burst.
func (p *Placer) processQueuesLocked() []PlacerEvent {
	var out []PlacerEvent
	budget := p.cfg.evacConcurrency()
	for len(p.evacq) > 0 && budget > 0 {
		lin := p.evacq[0]
		p.evacq = p.evacq[1:]
		budget--
		out = append(out, p.evacuateLocked(p.placements[lin]))
	}
	budget = p.cfg.evacConcurrency()
	for len(p.repairq) > 0 && budget > 0 {
		lin := p.repairq[0]
		p.repairq = p.repairq[1:]
		budget--
		if ev, acted := p.repairLocked(p.placements[lin]); acted {
			out = append(out, ev)
		}
	}
	return out
}

// evacuateLocked re-homes one lineage whose primary store died:
// standby promotion on the best surviving replica (highest contiguous
// floor; ties to the better-scored node), then re-replication back to
// full strength under anti-affinity.
func (p *Placer) evacuateLocked(pl *Placement) PlacerEvent {
	from := pl.primary
	stream := pl.g.ID
	ev := PlacerEvent{Kind: "evacuated", Lineage: pl.Lineage, From: from.Name}

	// Elect the surviving replica with the highest contiguous floor. A
	// draining store is a legal standby source — it is alive and may
	// hold the last good copy; the drain's own migrate-off pass moves
	// the promoted primary along afterwards.
	var target *StoreNode
	var targetFloor uint64
	for _, r := range pl.replicas {
		if st := r.State(); st != StoreActive && st != StoreDraining {
			continue
		}
		src := pl.sources[r]
		if src == nil {
			continue
		}
		floor := src.ContiguousEpoch(stream)
		if target == nil || floor > targetFloor ||
			(floor == targetFloor && r.Name < target.Name) {
			target, targetFloor = r, floor
		}
	}
	if target == nil {
		pl.lost = true
		ev.Kind = "evac-failed"
		ev.Err = fmt.Errorf("core: lineage %d has no surviving replica: %w", pl.Lineage, ErrNoFeasiblePlacement)
		return ev
	}

	// Standby promotion via the migrator's unplanned-handover path: it
	// reads images under the stream ID but fences and claims the
	// primary role under the stable lineage key, so the
	// exactly-one-primary-at-max-gen invariant holds across chained
	// re-homes. TTR lands on the target machine's own clock lane.
	mig := &Migrator{
		Src:      from.O,
		Dst:      target.O,
		G:        pl.g,
		Target:   pl.sources[target],
		SrcStore: from.SB,
		DstStore: target.SB,
		Sup:      from.Sup,
		Cfg: MigratorConfig{
			Lineage: pl.Lineage,
			Name:    pl.Name,
			Retries: p.cfg.Retries,
		},
	}
	rep, err := mig.PromoteStandby()
	if err != nil {
		// Leave the lineage marked evacuating; a later Poll may have
		// better luck (the target could have been mid-fault).
		p.evacq = append(p.evacq, pl.Lineage)
		ev.Kind = "evac-failed"
		ev.Err = err
		return ev
	}

	// Tear down the dead primary's wiring.
	for _, r := range pl.replicas {
		p.links.Drop(from, r, stream)
	}
	survivors := make([]*StoreNode, 0, len(pl.replicas))
	for _, r := range pl.replicas {
		if r != target && r.State() == StoreActive {
			survivors = append(survivors, r)
		}
	}
	pl.primary = target
	pl.g = rep.Group
	pl.replicas = nil
	pl.sources = make(map[*StoreNode]ReplicaSource)
	pl.wires = make(map[*StoreNode]Backend)
	pl.evacuating = false

	// Re-replicate to full strength: surviving members first (their
	// domains are anti-affine by construction), fresh nodes for the
	// rest. The new stream starts empty everywhere, so the first
	// checkpoint below is full — that is what makes the new replicas
	// restorable on their own.
	if err := p.rewireLocked(pl, survivors); err != nil {
		ev.Err = err
	}
	if target.Sup != nil {
		target.Sup.Watch(pl.g)
	}
	ev.To = target.Name
	ev.Gen = rep.Gen
	ev.Floor = rep.Floor
	ev.TTR = rep.TTR
	return ev
}

// repairLocked restores a placement's replication factor after a
// replica store died (the primary survived). Reported acted=false when
// the placement was already handled (evacuated or lost).
func (p *Placer) repairLocked(pl *Placement) (PlacerEvent, bool) {
	if pl == nil || pl.lost || pl.evacuating {
		return PlacerEvent{}, false
	}
	survivors := make([]*StoreNode, 0, len(pl.replicas))
	dropped := false
	for _, r := range pl.replicas {
		if r.State() == StoreActive {
			survivors = append(survivors, r)
			continue
		}
		// The group outlives this replica: detach the dead wire's
		// backend or every later sync would stall on its pending
		// epochs (a zombie no reconnect can heal).
		if w := pl.wires[r]; w != nil {
			_ = pl.primary.O.Detach(pl.g, w.Name())
			delete(pl.wires, r)
		}
		p.links.Drop(pl.primary, r, pl.g.ID)
		dropped = true
	}
	if !dropped && len(survivors) == p.cfg.replicas()-1 {
		return PlacerEvent{}, false
	}
	ev := PlacerEvent{Kind: "repaired", Lineage: pl.Lineage, From: pl.primary.Name, To: pl.primary.Name}
	pl.replicas = nil
	for n := range pl.sources {
		keep := false
		for _, s := range survivors {
			if s == n {
				keep = true
			}
		}
		if !keep {
			delete(pl.sources, n)
			if w := pl.wires[n]; w != nil {
				_ = pl.primary.O.Detach(pl.g, w.Name())
				delete(pl.wires, n)
			}
		}
	}
	if err := p.rewireLocked(pl, survivors); err != nil {
		ev.Err = err
	}
	return ev, true
}

// rewireLocked wires pl's replica set back to Replicas-1 members:
// keep (already-linked survivors or not) are re-linked first, then
// anti-affine fresh nodes fill the gap, and one full checkpoint seeds
// every link so each replica is restorable on its own.
func (p *Placer) rewireLocked(pl *Placement, keep []*StoreNode) error {
	primary := pl.primary
	stream := pl.g.ID
	exclude := map[*StoreNode]bool{primary: true}
	used := map[string]bool{primary.Domain: true}

	attach := func(r *StoreNode) error {
		b, view, err := p.links.Link(primary, r, stream)
		if err != nil {
			return fmt.Errorf("core: lineage %d: linking %s→%s: %w", pl.Lineage, primary.Name, r.Name, err)
		}
		if pl.wires[r] != b {
			// A surviving replica's wire is already attached to this
			// group; attaching twice would double-count its acks.
			primary.O.Attach(pl.g, b)
			pl.wires[r] = b
		}
		pl.replicas = append(pl.replicas, r)
		pl.sources[r] = view
		exclude[r] = true
		used[r.Domain] = true
		return nil
	}

	for _, r := range keep {
		if len(pl.replicas) >= p.cfg.replicas()-1 {
			break
		}
		if r.State() != StoreActive || used[r.Domain] {
			continue
		}
		if err := attach(r); err != nil {
			return err
		}
	}
	for len(pl.replicas) < p.cfg.replicas()-1 {
		r := p.pickLocked(exclude, used)
		if r == nil {
			// Anti-affinity is hard; replication factor is not. A fleet
			// that has lost too many domains runs the lineage degraded
			// (fewer copies) rather than dead — the next heal that
			// brings a domain back restores full strength.
			break
		}
		if err := attach(r); err != nil {
			return err
		}
	}
	return p.seedLocked(pl)
}

// seedLocked pushes one full checkpoint through the placement's links
// and drives the durable frontier to it, so every replica holds a
// restorable image of the lineage's current state.
func (p *Placer) seedLocked(pl *Placement) error {
	// The checkpoint runs even when the rewire came up empty (degraded
	// fleet, no anti-affine replica target): it is also what makes a
	// freshly promoted primary restorable from its own store — the new
	// stream holds nothing until the first checkpoint lands.
	// A shed checkpoint leaves a fresh replica empty — and an empty
	// standby is unpromotable. Retry until admission control lets the
	// seed through.
	for attempt := 0; ; attempt++ {
		bd, err := pl.primary.O.Checkpoint(pl.g, CheckpointOpts{Full: true})
		if err != nil {
			return fmt.Errorf("core: lineage %d: seeding replicas: %w", pl.Lineage, err)
		}
		if !bd.Shed {
			break
		}
		if attempt >= 16 {
			return fmt.Errorf("core: lineage %d: seeding replicas: admission control shed %d attempts", pl.Lineage, attempt)
		}
	}
	return p.syncLocked(pl)
}

// syncLocked drives pl's durable frontier to its barrier epoch,
// re-establishing faulted replica wires along the way (a dropped or
// corrupted frame kills the replica session; the directory's reset
// dance plus a Resync replays the pending epochs).
func (p *Placer) syncLocked(pl *Placement) error {
	var last error
	for round := 0; round < 24; round++ {
		last = pl.primary.O.Sync(pl.g)
		// Sync's epilogue resyncs degraded backends; its error is the
		// replica catch-up debt. Durable alone is NOT enough — the
		// durable frontier advances past a degraded replica (PR 2
		// health-ladder semantics), so a placement is in sync only when
		// the frontier is current AND no backend owes epochs. Otherwise
		// a standby could sit empty behind a healthy-looking frontier.
		if last == nil && pl.g.Durable() == pl.g.Epoch() {
			return nil
		}
		if round >= 2 {
			for _, r := range pl.replicas {
				_ = p.links.Reconnect(pl.primary, r, pl.g.ID)
			}
			_ = pl.primary.O.Resync(pl.g)
		}
	}
	return fmt.Errorf("core: lineage %d: durable stuck at %d (barrier %d): %w",
		pl.Lineage, pl.g.Durable(), pl.g.Epoch(), last)
}

// SyncDurable drives a lineage's durable frontier to its barrier
// epoch, healing faulted replica wires along the way. Workload drivers
// call this after checkpointing instead of hand-rolling the
// reconnect/resync dance.
func (p *Placer) SyncDurable(lineage uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pl, ok := p.placements[lineage]
	if !ok || pl.lost {
		return fmt.Errorf("core: lineage %d: %w", lineage, ErrUnknownLineage)
	}
	if pl.evacuating {
		return fmt.Errorf("core: lineage %d: %w", lineage, ErrEvacuating)
	}
	return p.syncLocked(pl)
}

// BeginDrain marks a store as decommissioning: new placements are
// refused at once, but nothing moves yet. DrainStep advances the
// decommission in bounded increments; Undrain aborts it. Drain wraps
// all three for the synchronous one-call path.
func (p *Placer) BeginDrain(n *StoreNode) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.beginDrainLocked(n)
}

func (p *Placer) beginDrainLocked(n *StoreNode) error {
	switch n.State() {
	case StoreDraining:
		return fmt.Errorf("core: store %s already draining: %w", n.Name, ErrDraining)
	case StoreDown, StoreFenced:
		return fmt.Errorf("core: store %s is %s, not drainable: %w", n.Name, n.State(), ErrNoFeasiblePlacement)
	}
	n.setState(StoreDraining)
	return nil
}

// DrainStep advances a decommission by a bounded amount: it settles
// queued evacuation/repair work first (the drainee may hold the last
// good copy of a lineage whose primary just died — election accepts
// draining stores as standby sources for exactly this interleaving),
// then live-migrates up to budget resident primaries off, then
// re-homes replica roles, and fences the store once it holds nothing.
// done reports whether the store is now fenced. On error the store
// stays draining — the caller retries the step or rolls the drain
// back with Undrain.
func (p *Placer) DrainStep(n *StoreNode, budget int) ([]PlacerEvent, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	evs, done, err := p.drainStepLocked(n, budget)
	p.events = append(p.events, evs...)
	return evs, done, err
}

func (p *Placer) drainStepLocked(n *StoreNode, budget int) ([]PlacerEvent, bool, error) {
	if n.State() != StoreDraining {
		return nil, false, fmt.Errorf("core: store %s is %s, not draining: %w", n.Name, n.State(), ErrNoFeasiblePlacement)
	}
	if budget <= 0 {
		budget = 1
	}
	var out []PlacerEvent
	if len(p.evacq)+len(p.repairq) > 0 {
		out = append(out, p.processQueuesLocked()...)
		if len(p.evacq)+len(p.repairq) > 0 {
			// Still storming: the step made progress but the store is
			// not yet safe to empty.
			return out, false, nil
		}
	}

	moved := 0
	var lins []uint64
	for lin, pl := range p.placements {
		if pl.primary == n && !pl.lost && !pl.evacuating {
			lins = append(lins, lin)
		}
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	for _, lin := range lins {
		if moved >= budget {
			return out, false, nil
		}
		ev, err := p.migrateOffLocked(p.placements[lin], n)
		out = append(out, ev)
		moved++
		if err != nil {
			return out, false, err
		}
	}
	// Re-home replica roles parked on the draining store.
	lins = lins[:0]
	for lin, pl := range p.placements {
		for _, r := range pl.replicas {
			if r == n {
				lins = append(lins, lin)
				break
			}
		}
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	for _, lin := range lins {
		if moved >= budget {
			return out, false, nil
		}
		if ev, acted := p.repairLocked(p.placements[lin]); acted {
			out = append(out, ev)
			moved++
			if ev.Err != nil {
				return out, false, ev.Err
			}
		}
	}
	n.setState(StoreFenced)
	out = append(out, PlacerEvent{Kind: "drained", Store: n.Name})
	return out, true, nil
}

// Undrain aborts a decommission and re-admits the store: Draining
// flips back to Active with the store's labels, residents, and probe
// ladder intact, and every directory wire the store participates in is
// re-handshaken — a drain abandoned mid-migration can leave replica
// sessions poisoned, and a re-admitted store must replicate again
// immediately. Only a draining store can be undrained; fenced and down
// stores re-enter the fleet through their own paths.
func (p *Placer) Undrain(n *StoreNode) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n.State() != StoreDraining {
		return fmt.Errorf("core: store %s is %s, not draining: %w", n.Name, n.State(), ErrNoFeasiblePlacement)
	}
	n.setState(StoreActive)
	n.mu.Lock()
	n.probeFails = 0
	n.mu.Unlock()

	var firstErr error
	var lins []uint64
	for lin := range p.placements {
		lins = append(lins, lin)
	}
	sort.Slice(lins, func(i, j int) bool { return lins[i] < lins[j] })
	for _, lin := range lins {
		pl := p.placements[lin]
		if pl.lost || pl.evacuating {
			continue
		}
		if pl.primary == n {
			for _, r := range pl.replicas {
				if st := r.State(); st != StoreActive && st != StoreDraining {
					continue
				}
				if err := p.links.Reconnect(n, r, pl.g.ID); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			continue
		}
		for _, r := range pl.replicas {
			if r != n {
				continue
			}
			if st := pl.primary.State(); st == StoreActive || st == StoreDraining {
				if err := p.links.Reconnect(pl.primary, n, pl.g.ID); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			break
		}
	}
	p.events = append(p.events, PlacerEvent{Kind: "undrained", Store: n.Name, Err: firstErr})
	return firstErr
}

// Drain decommissions a store synchronously: new placements are
// refused at once, every resident primary live-migrates off (the
// lineage keeps running — this is the PR 8 migrator, not a promotion),
// every replica role is re-homed, and the emptied store is fenced. A
// partially drained store stays draining on error so the operator can
// retry (or roll back with Undrain).
func (p *Placer) Drain(n *StoreNode) ([]PlacerEvent, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err := p.beginDrainLocked(n); err != nil {
		return nil, err
	}
	var out []PlacerEvent
	limit := 64 + len(p.evacq) + len(p.repairq) + len(p.placements)
	for iter := 0; iter < limit; iter++ {
		evs, done, err := p.drainStepLocked(n, len(p.placements)+1)
		out = append(out, evs...)
		if err != nil || done {
			p.events = append(p.events, out...)
			return out, err
		}
	}
	p.events = append(p.events, out...)
	evac, repair := len(p.evacq), len(p.repairq)
	return out, fmt.Errorf("core: draining %s: evacuation storm did not settle (evac %d, repair %d): %w",
		n.Name, evac, repair, ErrEvacuating)
}

// Unplace retires a lineage from the fleet: replica wires are dropped,
// the group stops persisting on its primary, and the placement is
// forgotten. Stored epochs stay behind for retention GC — retirement
// is a routing decision, not an erase. This is the load-decay half of
// elasticity: scale-in needs lineages to leave as well as arrive.
func (p *Placer) Unplace(lineage uint64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	pl, ok := p.placements[lineage]
	if !ok {
		return fmt.Errorf("core: lineage %d: %w", lineage, ErrUnknownLineage)
	}
	if pl.evacuating {
		return fmt.Errorf("core: lineage %d: %w", lineage, ErrEvacuating)
	}
	if !pl.lost {
		for _, r := range pl.replicas {
			if w := pl.wires[r]; w != nil {
				_ = pl.primary.O.Detach(pl.g, w.Name())
			}
			p.links.Drop(pl.primary, r, pl.g.ID)
		}
		if pl.primary.Sup != nil {
			pl.primary.Sup.Unwatch(pl.g)
		}
		pl.primary.O.Unpersist(pl.g)
	}
	delete(p.placements, lineage)
	delete(p.lastMoved, lineage)
	p.events = append(p.events, PlacerEvent{Kind: "unplaced", Lineage: lineage, From: pl.primary.Name})
	return nil
}

// migrateOffLocked live-migrates one resident lineage off node n to
// the best compatible node (never a current member; anti-affine to the
// surviving replica set), then rewires replication under the migrated
// stream. Used by Drain and Rebalance — the planned moves, where the
// source still runs.
func (p *Placer) migrateOffLocked(pl *Placement, n *StoreNode) (PlacerEvent, error) {
	ev := PlacerEvent{Kind: "migrated", Lineage: pl.Lineage, From: n.Name}
	exclude := map[*StoreNode]bool{n: true}
	used := map[string]bool{}
	for _, r := range pl.replicas {
		exclude[r] = true
		if r.State() == StoreActive {
			used[r.Domain] = true
		}
	}
	dst := p.pickLocked(exclude, used)
	if dst == nil {
		ev.Err = fmt.Errorf("core: lineage %d: no anti-affine target off %s: %w",
			pl.Lineage, n.Name, ErrNoFeasiblePlacement)
		return ev, ev.Err
	}

	stream := pl.g.ID
	b, view, err := p.links.Link(n, dst, stream)
	if err != nil {
		ev.Err = err
		return ev, err
	}
	mig := &Migrator{
		Src:      n.O,
		Dst:      dst.O,
		G:        pl.g,
		Link:     b,
		Target:   view,
		SrcStore: n.SB,
		DstStore: dst.SB,
		Sup:      n.Sup,
		Reconnect: func() error {
			// A pre-copy round syncs through every attached backend, so
			// a transiently faulted replica wire stalls the migration as
			// surely as the migration wire itself — heal them all.
			for _, r := range pl.replicas {
				if r.State() == StoreActive || r.State() == StoreDraining {
					_ = p.links.Reconnect(n, r, stream)
				}
			}
			return p.links.Reconnect(n, dst, stream)
		},
		Cfg: MigratorConfig{
			MaxRounds: p.cfg.migrateRounds(),
			Lineage:   pl.Lineage,
			Name:      pl.Name,
			Retries:   p.cfg.Retries,
		},
	}
	rep, err := mig.Run(func() error { return nil })
	if err != nil {
		// The source keeps running this lineage: detach the migration
		// backend Start attached, or every later sync stalls on a wire
		// whose directory entry is about to disappear.
		mig.Abandon()
		p.links.Drop(n, dst, stream)
		ev.Err = err
		return ev, err
	}
	p.links.Drop(n, dst, stream)
	survivors := make([]*StoreNode, 0, len(pl.replicas))
	for _, r := range pl.replicas {
		p.links.Drop(n, r, stream)
		if r != dst && r.State() == StoreActive {
			survivors = append(survivors, r)
		}
	}
	pl.primary = dst
	pl.g = rep.Group
	pl.replicas = nil
	pl.sources = make(map[*StoreNode]ReplicaSource)
	pl.wires = make(map[*StoreNode]Backend)
	if err := p.rewireLocked(pl, survivors); err != nil {
		ev.Err = err
		return ev, err
	}
	if dst.Sup != nil {
		dst.Sup.Watch(pl.g)
	}
	ev.To = dst.Name
	ev.Gen = rep.Gen
	ev.Floor = rep.Floor
	ev.TTR = rep.Blackout
	return ev, nil
}

// RebalanceOpts tunes one paced rebalance tick.
type RebalanceOpts struct {
	// Budget caps migrations performed this tick (default 1) — the
	// rate limit that keeps background churn from starving foreground
	// checkpoint traffic.
	Budget int
	// HighWater overrides the pressure threshold for this tick (0
	// keeps the placer default). The autoscaler seeds a fresh store by
	// ticking with its own scale-out threshold.
	HighWater float64
}

// RebalanceTick runs one paced rebalance round: the pressured set is
// re-snapshotted NOW — a lineage placed since the previous tick is an
// eligible mover, closing the stale-snapshot blind spot of the old
// one-pass Rebalance — and the most pressured stores shed their
// heaviest eligible lineage toward the emptiest compatible store,
// bounded by Budget. A lineage moved within the last MoveCooldownTicks
// ticks is ineligible (ping-pong protection across ticks).
func (p *Placer) RebalanceTick(opts RebalanceOpts) ([]PlacerEvent, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	evs, err := p.rebalanceTickLocked(opts)
	p.events = append(p.events, evs...)
	return evs, err
}

func (p *Placer) rebalanceTickLocked(opts RebalanceOpts) ([]PlacerEvent, error) {
	p.rebalTick++
	budget := opts.Budget
	if budget <= 0 {
		budget = 1
	}
	high := opts.HighWater
	if high <= 0 {
		high = p.cfg.highWater()
	}
	cool := p.cfg.moveCooldownTicks()

	// Fresh pressure snapshot, most pressured first (ties by name).
	type pressure struct {
		n    *StoreNode
		util float64
	}
	var pressured []pressure
	for _, n := range p.nodes {
		if n.State() != StoreActive {
			continue
		}
		if u := p.utilLocked(n); u >= high {
			pressured = append(pressured, pressure{n, u})
		}
	}
	sort.Slice(pressured, func(i, j int) bool {
		if pressured[i].util != pressured[j].util {
			return pressured[i].util > pressured[j].util
		}
		return pressured[i].n.Name < pressured[j].n.Name
	})

	var out []PlacerEvent
	var firstErr error
	for _, pr := range pressured {
		if budget <= 0 {
			break
		}
		n := pr.n
		// Heaviest eligible resident lineage by referenced bytes.
		var victim *Placement
		var victimBytes int64
		for _, pl := range p.placements {
			if pl.primary != n || pl.lost || pl.evacuating {
				continue
			}
			if moved, ok := p.lastMoved[pl.Lineage]; ok && p.rebalTick < moved+cool {
				continue
			}
			sz := n.SB.Store().LineageBytes(pl.g.ID)
			if victim == nil || sz > victimBytes ||
				(sz == victimBytes && pl.Lineage < victim.Lineage) {
				victim, victimBytes = pl, sz
			}
		}
		if victim == nil {
			continue
		}
		ev, err := p.migrateOffLocked(victim, n)
		ev.Kind = "rebalanced"
		if errors.Is(err, ErrNoFeasiblePlacement) {
			// No anti-affine target exists right now (degraded fleet);
			// pressure relief waits for capacity, it doesn't fail.
			ev.Kind = "rebalance-skipped"
			out = append(out, ev)
			continue
		}
		if err == nil {
			p.lastMoved[victim.Lineage] = p.rebalTick
		}
		budget--
		out = append(out, ev)
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return out, firstErr
}

// Rebalance runs paced ticks until a tick moves nothing (or errors):
// the synchronous relief-valve call for operators and tests. The
// background pacer path is RebalanceTick, driven by the autoscaler
// with a per-tick budget.
func (p *Placer) Rebalance() ([]PlacerEvent, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []PlacerEvent
	var firstErr error
	skipped := make(map[uint64]bool)
	for iter := 0; iter < 64; iter++ {
		evs, err := p.rebalanceTickLocked(RebalanceOpts{Budget: len(p.nodes) + 1})
		moved := 0
		for _, ev := range evs {
			if ev.Kind == "rebalance-skipped" {
				// Report each stuck lineage once per call, not per tick.
				if skipped[ev.Lineage] {
					continue
				}
				skipped[ev.Lineage] = true
			} else if ev.Err == nil {
				moved++
			}
			out = append(out, ev)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		if moved == 0 || firstErr != nil {
			break
		}
	}
	p.events = append(p.events, out...)
	return out, firstErr
}

// AntiAffinityViolations audits every live placement against the hard
// constraint: no two members (primary or replica) share a failure
// domain. The heal-time acceptance gate asserts this returns nothing.
func (p *Placer) AntiAffinityViolations() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for _, pl := range p.placements {
		if pl.lost || pl.evacuating {
			continue
		}
		seen := map[string]string{pl.primary.Domain: pl.primary.Name}
		for _, r := range pl.replicas {
			if other, dup := seen[r.Domain]; dup {
				out = append(out, fmt.Sprintf("lineage %d: %s and %s share domain %s",
					pl.Lineage, other, r.Name, r.Domain))
			} else {
				seen[r.Domain] = r.Name
			}
		}
	}
	sort.Strings(out)
	return out
}

// QueueDepths reports the pending evacuation and repair backlogs (the
// throttle's visible state).
func (p *Placer) QueueDepths() (evac, repair int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.evacq), len(p.repairq)
}
