package core

import (
	"errors"
	"fmt"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// RestoreOpts selects the restore strategy.
type RestoreOpts struct {
	// Lazy restores memory by COW-sharing against the image: nothing
	// is copied; faults pull pages in on demand. Eager restores copy
	// every page up front.
	Lazy bool
	// Prefetch eagerly pages in the N hottest pages per object
	// (clock-derived warm-up). Only meaningful with Lazy.
	Prefetch int
	// Name labels the restored group.
	Name string
	// Validate runs a full integrity pre-pass before materializing:
	// every block the restore would touch is read and checked against
	// its manifest content hash. An epoch failing the check is
	// quarantined and Restore falls back to the newest good epoch.
	// Eager restores are hash-verified block by block even without
	// this flag; Validate additionally covers lazy restores (whose
	// pages would otherwise only be verified at first touch) and turns
	// corruption into an up-front fallback instead of a fault-time
	// failover.
	Validate bool
}

// RestoreImage recreates a persistence group from an image: the
// restored processes resume exactly where the barrier stopped them.
// It returns the new group and the Table 4 latency breakdown.
func (o *Orchestrator) RestoreImage(img *Image, readTime time.Duration, opts RestoreOpts) (*Group, RestoreBreakdown, error) {
	clock := o.K.Clock
	costs := o.K.Costs
	bd := RestoreBreakdown{Lazy: opts.Lazy, ObjectStoreRead: readTime}
	fromStore := bd.ObjectStoreRead > 0
	total := clock.Watch()

	// --- Metadata state: recreate every kernel object ---
	metaSW := clock.Watch()
	meta := img.AllMeta()

	// VM object shells first: mappings and shm reference them.
	objMap := make(map[uint64]*vm.Object) // old vm ID -> new object
	imagePages := int64(0)
	for _, oldID := range img.ObjectIDs() {
		var name string
		var size int64
		for cur := img; cur != nil; cur = cur.Prev {
			if mi, ok := cur.Memory[oldID]; ok {
				name, size = mi.Name, mi.Size
				break
			}
		}
		obj := vm.NewObject(name, size)
		obj.SetTracked(true)
		objMap[oldID] = obj
	}
	lookupObj := func(id uint64) *vm.Object { return objMap[id] }

	// Pass 1: standalone IPC objects.
	type pendingUnix struct {
		sock *kernel.UnixSocket
		refs []uint64
	}
	var pendingUnixes []pendingUnix
	for _, m := range meta {
		var err error
		switch m.Kind {
		case kernel.KindContainer:
			_, err = o.K.RestoreContainer(m.Data)
		case kernel.KindPipe:
			_, err = o.K.RestorePipe(m.Data)
		case kernel.KindSocketPair:
			_, err = o.K.RestoreSocketPair(m.Data)
		case kernel.KindSysVShm:
			_, err = o.K.RestoreShm(m.Data, lookupObj)
		case kernel.KindSysVMsgQueue:
			_, err = o.K.RestoreMsgQueue(m.Data)
		}
		if err != nil {
			return nil, bd, fmt.Errorf("core: restoring %s %d: %w", m.Kind, m.OID, err)
		}
		clock.Advance(costs.ObjRestore)
	}
	// Unix sockets reference socket pairs, so they come second.
	// (Endpoint records, KindSockEnd, are rebuilt by their pairs and
	// need no action here.)
	for _, m := range meta {
		if m.Kind != kernel.KindUnixSocket {
			continue
		}
		sock, refs, err := o.K.RestoreUnixSocket(m.Data)
		if err != nil {
			return nil, bd, fmt.Errorf("core: restoring unix socket %d: %w", m.OID, err)
		}
		pendingUnixes = append(pendingUnixes, pendingUnix{sock, refs})
		clock.Advance(costs.ObjRestore)
	}
	for _, pu := range pendingUnixes {
		if err := o.K.PatchUnixBacklog(pu.sock, pu.refs); err != nil {
			return nil, bd, err
		}
	}

	// Pass 2: processes, threads, descriptor tables.
	type restoredProc struct {
		proc      *kernel.Process
		image     *kernel.ProcImage
		fdTabOID  uint64
		threadOID []uint64
	}
	var procs []restoredProc
	threadByOID := make(map[uint64]*kernel.Thread)
	fdTabByOID := make(map[uint64]*kernel.FDTableImage)
	fdImgByOID := make(map[uint64]*kernel.FDImage)
	for _, m := range meta {
		switch m.Kind {
		case kernel.KindThread:
			t, err := kernel.DecodeThreadImage(m.Data)
			if err != nil {
				return nil, bd, err
			}
			threadByOID[m.OID] = t
		case kernel.KindFDTable:
			ti, err := kernel.DecodeFDTable(m.Data)
			if err != nil {
				return nil, bd, err
			}
			fdTabByOID[m.OID] = ti
		case kernel.KindFileDesc:
			fi, err := kernel.DecodeFileDesc(m.Data)
			if err != nil {
				return nil, bd, err
			}
			fdImgByOID[m.OID] = fi
		}
	}
	for _, m := range meta {
		if m.Kind != kernel.KindProcess {
			continue
		}
		pi, err := kernel.DecodeProcess(m.Data)
		if err != nil {
			return nil, bd, err
		}
		p, err := o.K.RestoreProcess(pi, lookupObj)
		if err != nil {
			return nil, bd, err
		}
		procs = append(procs, restoredProc{proc: p, image: pi, fdTabOID: pi.FDTabOID, threadOID: pi.ThreadOID})
		clock.Advance(costs.ObjRestore)
	}
	// Threads and descriptor tables attach to their processes; shared
	// descriptions restore once and are shared across tables.
	builtDescs := make(map[uint64]*kernel.FileDesc)
	for _, rp := range procs {
		for _, toid := range rp.threadOID {
			if t, ok := threadByOID[toid]; ok {
				o.K.AttachThread(rp.proc, t)
			}
		}
		ti := fdTabByOID[rp.fdTabOID]
		if ti == nil {
			continue
		}
		entries := make(map[int]*kernel.FileDesc)
		for num, descOID := range ti.Entries {
			if fd, ok := builtDescs[descOID]; ok {
				entries[num] = kernel.ShareFileDesc(fd)
				continue
			}
			fi := fdImgByOID[descOID]
			if fi == nil {
				return nil, bd, fmt.Errorf("core: descriptor %d missing from image", descOID)
			}
			fd, err := o.buildFileDesc(fi)
			if err != nil {
				return nil, bd, err
			}
			builtDescs[descOID] = fd
			entries[num] = fd
		}
		o.K.PatchFDTable(rp.proc, entries)
	}
	for _, mi := range img.Memory {
		imagePages += int64(mi.PageCount())
	}
	metaCost := costs.RestoreMetaBase + storage.PerKPage(costs.RestoreMetaPerKPage, imagePages)
	if fromStore {
		// Reading the store image implicitly restored some state.
		metaCost -= costs.ImplicitMetaCredit
	}
	clock.Advance(metaCost)
	bd.MetadataState = metaSW.Elapsed()
	bd.Objects = len(meta)

	// --- Memory state: rebuild the memory hierarchy ---
	memSW := clock.Watch()
	// Collect per-object sls_mctl restore-policy hints from the
	// restored mappings (RestoreEager wins over RestoreLazy when
	// mappings disagree: someone needs the pages resident).
	policies := make(map[*vm.Object]vm.RestorePolicy)
	for _, rp := range procs {
		for _, m := range rp.proc.Space.Mappings() {
			if m.Restore == vm.RestoreDefault {
				continue
			}
			if cur, ok := policies[m.Obj]; !ok || m.Restore == vm.RestoreEager && cur != vm.RestoreEager {
				policies[m.Obj] = m.Restore
			}
		}
	}
	resolvedPages := 0
	shareable := !img.Released()
	for oldID, obj := range objMap {
		effOpts := opts
		switch policies[obj] {
		case vm.RestoreEager:
			effOpts.Lazy = false
		case vm.RestoreLazy:
			effOpts.Lazy = true
		}
		resolvedPages += o.restoreObjectMemory(img, oldID, obj, effOpts, shareable, &bd)
	}
	memCost := costs.RestoreMemBase + storage.PerKPage(costs.RestoreMemPerKPage, int64(resolvedPages))
	if fromStore {
		memCost -= costs.ImplicitMemCredit
	}
	clock.Advance(memCost)
	bd.MemoryState = memSW.Elapsed()
	bd.PagesRestored = resolvedPages

	// --- Resume ---
	name := opts.Name
	if name == "" {
		name = img.Name
	}
	// PID collisions during restore give processes fresh PIDs; patch
	// the parent links so the restored tree keeps its hierarchy.
	pidMap := make(map[int]int, len(procs))
	for _, rp := range procs {
		pidMap[rp.image.PID] = rp.proc.PID
	}
	for _, rp := range procs {
		if np, ok := pidMap[rp.proc.PPID]; ok {
			rp.proc.PPID = np
		}
		if np, ok := pidMap[rp.proc.PGID]; ok {
			rp.proc.PGID = np
		}
		if np, ok := pidMap[rp.proc.SID]; ok {
			rp.proc.SID = np
		}
	}

	o.mu.Lock()
	o.nextID++
	g := &Group{ID: o.nextID, Name: name, pids: make(map[int]bool)}
	// The lineage the image was persisted under: restores of this group
	// before it checkpoints on its own fall back to that chain. The
	// anchor epoch is the crash-loop fallback target; space reclamation
	// keeps it while this group lives.
	g.origin = img.Group
	g.originEpoch = img.Epoch
	// Anchor the group on the image it came from: rollback can reuse
	// it, and the next checkpoint (a fresh full one) starts a new
	// chain from this epoch.
	g.last = img
	g.epoch = img.Epoch
	g.durable = img.Epoch
	// Inherit the image's store generation (fencing token); images from
	// before generations existed restore at the base generation.
	g.generation = img.Gen
	if g.generation == 0 {
		g.generation = 1
	}
	o.groups[g.ID] = g
	for _, rp := range procs {
		g.pids[rp.proc.PID] = true
		o.pidGroup[rp.proc.PID] = g.ID
	}
	o.mu.Unlock()

	// Bind any fault-tolerant demand-paging sources the memory rebuild
	// created: their read faults now drive this group's health ladder.
	g.adoptSources(img.takeSources())

	for _, rp := range procs {
		if err := o.K.ResumeRestored(rp.proc, rp.image.ProgName, rp.image.ProgState); err != nil {
			return nil, bd, err
		}
	}
	bd.Total = total.Elapsed() + bd.ObjectStoreRead
	return g, bd, nil
}

// restoreObjectMemory rebuilds one VM object's pages. Four paths:
//
//   - in-memory image frames are COW-shared with the application (no
//     copies at all: the paper's memory restore);
//   - lazy restores of byte-backed images (loaded from the store or
//     the network) attach a page source, with clock-driven prefetch
//     of the hottest pages;
//   - images carrying block references (StoreBackend.LoadLazy) attach
//     a fault-tolerant demand-paging source that reads, verifies, and
//     — on primary failure — fails over each page to a peer; and
//   - eager restores copy everything up front.
func (o *Orchestrator) restoreObjectMemory(img *Image, oldID uint64, obj *vm.Object, opts RestoreOpts, shareable bool, bd *RestoreBreakdown) int {
	// Collect frame-backed pages along the chain (newest wins).
	frames := make(map[int64]*vm.Frame)
	bytesPages := make(map[int64][]byte)
	refPages := make(map[int64]objstore.BlockRef)
	havePage := func(idx int64) bool {
		if _, ok := frames[idx]; ok {
			return true
		}
		if _, ok := bytesPages[idx]; ok {
			return true
		}
		_, ok := refPages[idx]
		return ok
	}
	for cur := img; cur != nil; cur = cur.Prev {
		if mi, ok := cur.Memory[oldID]; ok {
			for idx, f := range mi.Pages {
				if !havePage(idx) {
					frames[idx] = f
				}
			}
			for idx, d := range mi.SwapData {
				if !havePage(idx) {
					bytesPages[idx] = d
				}
			}
			for idx, ref := range mi.Refs {
				if !havePage(idx) {
					refPages[idx] = ref
				}
			}
		}
		if cur.Full {
			break
		}
	}
	total := len(frames) + len(bytesPages) + len(refPages)

	if shareable && len(frames) > 0 {
		// Zero-copy memory state: share the image's frames under COW.
		for idx, f := range frames {
			obj.InstallSharedPage(o.K.Mem, idx, f)
		}
		bd.Shared += len(frames)
	} else {
		for idx, f := range frames {
			bytesPages[idx] = f.Data
		}
	}

	if len(refPages) > 0 && img.source != nil {
		// Store-resident pages: demand-page through the fault-tolerant
		// source (bounded retry, peer failover, read-repair).
		src := newLazyPageSource(o, img.source, refPages, bytesPages, img.peers)
		src.pinGroup, src.pinEpoch = img.Group, img.Epoch
		img.mu.Lock()
		img.sources = append(img.sources, src)
		img.mu.Unlock()
		if opts.Lazy {
			obj.SetSource(src)
			o.prefetchHottest(img, oldID, obj, src.FetchPage, opts.Prefetch, bd)
		} else {
			// An eager mapping policy over a lazy image: materialize
			// everything now, through the failover path, so a sick
			// primary cannot abort the restore.
			for idx := range refPages {
				data, err := src.FetchPage(idx)
				if err != nil || data == nil {
					continue
				}
				f, err := o.K.Mem.Alloc()
				if err != nil {
					return total
				}
				copy(f.Data, data)
				obj.InsertPage(o.K.Mem, idx, f)
				o.K.Meter.ChargeCopy(1)
			}
		}
		return total
	}

	if len(bytesPages) == 0 {
		return total
	}
	if opts.Lazy {
		src := &imagePageSource{pages: bytesPages}
		obj.SetSource(src)
		o.prefetchHottest(img, oldID, obj, src.FetchPage, opts.Prefetch, bd)
	} else {
		for idx, data := range bytesPages {
			f, err := o.K.Mem.Alloc()
			if err != nil {
				return total
			}
			copy(f.Data, data)
			obj.InsertPage(o.K.Mem, idx, f)
			o.K.Meter.ChargeCopy(1)
		}
	}
	return total
}

// prefetchHottest eagerly pages in the N hottest pages of one object
// through fetch (clock-derived warm-up for lazy restores).
func (o *Orchestrator) prefetchHottest(img *Image, oldID uint64, obj *vm.Object, fetch func(int64) ([]byte, error), n int, bd *RestoreBreakdown) {
	if n <= 0 {
		return
	}
	heat := img.ResolveHeat(oldID)
	hot := vm.HottestPages(heat)
	if len(hot) > n {
		hot = hot[:n]
	}
	for _, idx := range hot {
		data, err := fetch(idx)
		if err != nil || data == nil {
			continue
		}
		f, err := o.K.Mem.Alloc()
		if err != nil {
			return
		}
		copy(f.Data, data)
		obj.InsertPage(o.K.Mem, idx, f)
		bd.Prefetched++
	}
}

// buildFileDesc resolves one descriptor image, handling Aurora file
// system files (whose inodes live in the file system, not the kernel
// object table).
func (o *Orchestrator) buildFileDesc(fi *kernel.FDImage) (*kernel.FileDesc, error) {
	if fi.FileOID&fsInoBit != 0 && o.FS != nil {
		f, err := o.FS.OpenOrphan(fi.FileOID)
		if err != nil {
			return nil, fmt.Errorf("core: reattaching file inode %d: %w", fi.FileOID, err)
		}
		return o.K.BuildFileDescWith(fi, f), nil
	}
	return o.K.BuildFileDesc(fi)
}

// fsInoBit mirrors slsfs's inode tag bit.
const fsInoBit = uint64(1) << 62

// Restore loads the newest (or a specific) checkpoint from the first
// backend that can serve it and restores the group. In-memory images
// are preferred when present: they restore by COW-sharing frames with
// zero copies, the fastest path.
//
// "Newest" (epoch 0) means the newest *durable* epoch: the pipeline is
// drained first and epochs whose background flush failed are skipped,
// so a restore never lands on a checkpoint with a hole in its history
// (rollback-to-last-durable).
//
// Store-backed restores additionally validate and self-heal: an epoch
// whose blocks fail their manifest hashes (detected up front with
// opts.Validate, or mid-load on the eager path) is quarantined —
// durably, in the store — and Restore falls back to the newest
// non-quarantined epoch below it, walking down the chain until one
// restores cleanly. The breakdown reports the fallback
// (FallbackFrom/Quarantined) so callers can surface the rollback.
func (o *Orchestrator) Restore(g *Group, epoch uint64, opts RestoreOpts) (*Group, RestoreBreakdown, error) {
	o.Drain(g)
	want := epoch
	if want == 0 {
		if d := g.Durable(); d > 0 {
			want = d
		}
	}
	all := g.Backends()
	backends := make([]Backend, 0, len(all))
	for _, b := range all {
		if b.Ephemeral() {
			backends = append(backends, b)
		}
	}
	for _, b := range all {
		if !b.Ephemeral() {
			backends = append(backends, b)
		}
	}
	// Out-of-band failover peers (e.g. netback replicas) registered on
	// the source group carry over to the restore's demand paging.
	g.mu.Lock()
	extraPeers := append([]BlockProvider(nil), g.restorePeers...)
	g.mu.Unlock()

	finish := func(b Backend, img *Image, readTime time.Duration, bdExtra func(*RestoreBreakdown)) (*Group, RestoreBreakdown, error) {
		// Snapshot the source group's quarantine ledger now — epochs
		// poisoned during this very restore must carry over too.
		ledger := g.Quarantined()
		// Peer wiring: every other backend (and registered out-of-band
		// peer) that can serve blocks by hash backs this image's
		// demand paging.
		for _, other := range backends {
			if other == b {
				continue
			}
			if bp, ok := other.(BlockProvider); ok {
				img.AddBlockPeer(bp)
			}
		}
		for _, p := range extraPeers {
			img.AddBlockPeer(p)
		}
		ng, bd, err := o.RestoreImage(img, readTime, opts)
		if err != nil {
			return nil, bd, err
		}
		// The restored group inherits the source group's backends,
		// failover peers, and quarantine ledger.
		for _, back := range backends {
			o.Attach(ng, back)
		}
		if len(extraPeers) > 0 {
			ng.mu.Lock()
			ng.restorePeers = append(ng.restorePeers, extraPeers...)
			ng.mu.Unlock()
		}
		if len(ledger) > 0 {
			ng.healthMu.Lock()
			if ng.quarantined == nil {
				ng.quarantined = make(map[uint64]string, len(ledger))
			}
			for ep, why := range ledger {
				ng.quarantined[ep] = why
			}
			ng.healthMu.Unlock()
		}
		if bdExtra != nil {
			bdExtra(&bd)
		}
		return ng, bd, nil
	}

	// Candidate lineage IDs: the group's own chain first; for a restored
	// group that never checkpointed on its own, the chain it came from.
	gids := []uint64{g.ID}
	if org := g.Origin(); org != 0 && org != g.ID {
		gids = append(gids, org)
	}

	var lastErr error = ErrNoBackend
	for _, b := range backends {
		sb, isStore := b.(*StoreBackend)
		if !isStore {
			var img *Image
			var readTime time.Duration
			var err error
			for _, gid := range gids {
				img, readTime, err = b.Load(gid, want)
				if err == nil {
					break
				}
			}
			if err != nil {
				lastErr = err
				continue
			}
			return finish(b, img, readTime, nil)
		}

		// Store backend: validation, quarantine, and epoch fallback,
		// searched per lineage chain.
		var fbFrom uint64
		quarCount := 0
		for _, gid := range gids {
			below := uint64(0) // exclusive upper bound for the fallback search
			tryExplicit := want != 0
			for {
				var ep uint64
				if tryExplicit {
					tryExplicit = false
					ep = want
					if _, err := sb.epochUsable(gid, ep); err != nil {
						lastErr = err
						if errors.Is(err, ErrEpochQuarantined) {
							fbFrom, quarCount, below = ep, quarCount+1, ep
							continue
						}
						if epoch == 0 && errors.Is(err, ErrNoImage) {
							// The caller asked for "the durable frontier",
							// not this exact epoch. Durability is a group
							// property — an epoch is durable once ANY
							// non-ephemeral backend holds it — so this
							// store's flush of it may still have been
							// deferred when the group died. Fall back to
							// the newest epoch this store does hold; the
							// suffix lives on whichever backend made it
							// durable (a replica serves it at promotion).
							if fbFrom == 0 {
								fbFrom = ep
							}
							below = ep
							continue
						}
						break // next chain / backend
					}
				} else {
					var err error
					ep, err = sb.latestGoodEpoch(gid, below)
					if err != nil {
						// Keep the quarantine error when that is why the
						// chain ran dry: "every epoch is poisoned" is the
						// actionable failure, not "no image".
						if quarCount == 0 {
							lastErr = err
						}
						break // chain exhausted: next chain / backend
					}
				}
				if opts.Validate {
					if verr := sb.Validate(gid, ep); verr != nil {
						o.quarantineEpoch(g, sb, gid, ep, verr)
						if fbFrom == 0 {
							fbFrom = ep
						}
						quarCount++
						lastErr = fmt.Errorf("%w: epoch %d of group %d: %w", ErrEpochQuarantined, ep, gid, verr)
						below = ep
						continue
					}
				}
				var img *Image
				var readTime time.Duration
				var err error
				if opts.Lazy {
					img, readTime, err = sb.LoadLazy(gid, ep)
				} else {
					img, readTime, err = sb.Load(gid, ep)
				}
				if err != nil {
					lastErr = err
					if errors.Is(err, objstore.ErrCorruptBlock) {
						// The eager read path hash-verifies every block:
						// corruption mid-load poisons the epoch and falls
						// back, exactly like a failed validation pre-pass.
						o.quarantineEpoch(g, sb, gid, ep, err)
						if fbFrom == 0 {
							fbFrom = ep
						}
						quarCount++
						lastErr = fmt.Errorf("%w: epoch %d of group %d: %w", ErrEpochQuarantined, ep, gid, err)
						below = ep
						continue
					}
					break // next chain / backend
				}
				if ep != want && fbFrom == 0 {
					fbFrom = want
				}
				return finish(b, img, readTime, func(bd *RestoreBreakdown) {
					bd.FallbackFrom = fbFrom
					bd.Quarantined = quarCount
					bd.Validated = opts.Validate
				})
			}
		}
	}
	return nil, RestoreBreakdown{}, lastErr
}

// imagePageSource adapts a resolved image to vm.PageSource for lazy
// restores.
type imagePageSource struct {
	pages map[int64][]byte
}

// FetchPage implements vm.PageSource.
func (s *imagePageSource) FetchPage(idx int64) ([]byte, error) { return s.pages[idx], nil }

// HasPage implements vm.PageSource.
func (s *imagePageSource) HasPage(idx int64) bool {
	_, ok := s.pages[idx]
	return ok
}

// Pages implements vm.PageSource.
func (s *imagePageSource) Pages() []int64 {
	out := make([]int64, 0, len(s.pages))
	for idx := range s.pages {
		out = append(out, idx)
	}
	return out
}
