package objstore

// Store placement labels. A fleet spreads group images across many
// stores; the placer needs two facts about each one that the store
// itself is the natural home for: a stable human-readable name and the
// failure domain the backing device lives in (rack, host, AZ — the
// granularity is the deployment's choice). Labels live on storeCore so
// every clock-redirected view of a store reports the same identity.

// SetLabels sets the store's placement identity: a stable name and the
// failure domain of the backing device. Anti-affinity scheduling keeps
// a lineage's quorum replicas on stores with distinct domains.
func (s *Store) SetLabels(name, domain string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.label.name = name
	s.label.domain = domain
}

// Name returns the store's placement name ("" if unlabeled).
func (s *Store) Name() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.label.name
}

// Domain returns the store's failure domain ("" if unlabeled).
func (s *Store) Domain() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.label.domain
}

// LineageBytes estimates the store footprint of one lineage (group):
// the bytes its retained records reference, pre-dedup. Cross-group
// dedup means the physical cost of moving the lineage elsewhere can be
// lower (shared blocks stay pinned by other residents) — but as a
// rebalance heuristic for "which resident is heaviest" the referenced
// size is the right order statistic, and it is O(records) to compute.
func (s *Store) LineageBytes(group uint64) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var n int64
	for _, m := range s.manifests[group] {
		for _, k := range m.Records {
			if rec, ok := s.records[k]; ok {
				n += int64(len(rec.Pages))*BlockSize + int64(rec.metaLen)
			}
		}
	}
	return n
}
