package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"aurora/internal/storage"
)

// ErrBackendDown marks a paging operation that exhausted its retry
// budget against a backing store that stayed failed (permanently down
// or persistently erroring). It is always returned wrapped with the
// failing page's context; select with errors.Is. The faulting thread
// sees this instead of spinning forever against a dead device.
var ErrBackendDown = errors.New("vm: paging backend down")

// DefaultSwapInRetries bounds how many times a swap-in retries a
// transient read fault before surfacing ErrBackendDown. A permanently
// down device (storage.ErrDeviceDown) short-circuits after the first
// attempt — retrying a dead device buys nothing.
const DefaultSwapInRetries = 3

// Swap is the swap area: page-granularity slots on a simulated device.
type Swap struct {
	dev  storage.Device
	mu   sync.Mutex
	next int64
	free []int64
}

// NewSwap creates a swap area on dev.
func NewSwap(dev storage.Device) *Swap { return &Swap{dev: dev} }

// Device returns the backing device.
func (s *Swap) Device() storage.Device { return s.dev }

// WritePage stores a frame and returns its slot.
func (s *Swap) WritePage(f *Frame) (int64, error) {
	s.mu.Lock()
	var slot int64
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		slot = s.next
		s.next++
	}
	s.mu.Unlock()
	if _, err := s.dev.WriteAt(f.Data, slot*PageSize); err != nil {
		s.FreeSlot(slot)
		return 0, err
	}
	return slot, nil
}

// ReadPage loads a slot into p (which must be PageSize bytes).
func (s *Swap) ReadPage(slot int64, p []byte) error {
	_, err := s.dev.ReadAt(p, slot*PageSize)
	return err
}

// FreeSlot returns a slot to the free list.
func (s *Swap) FreeSlot(slot int64) {
	s.mu.Lock()
	s.free = append(s.free, slot)
	s.mu.Unlock()
}

// AccessedAndClear tests and clears the referenced bit of any PTE in
// this space that maps the given object page (the clock algorithm's
// probe). It reports whether the page had been referenced.
func (as *AddressSpace) AccessedAndClear(obj *Object, idx int64) bool {
	as.mu.Lock()
	defer as.mu.Unlock()
	ref := false
	for _, m := range as.maps {
		if m.Obj != obj {
			continue
		}
		base := m.Start + Addr((idx<<PageShift)-m.Off)
		if base >= m.Start && base < m.End {
			if e, ok := as.pt[base]; ok && e.accessed {
				e.accessed = false
				ref = true
			}
		}
	}
	return ref
}

// Pager implements the clock (second-chance) page-replacement
// algorithm over registered objects, evicting cold pages to swap under
// memory pressure, and the swap-in path that services SwapFaults. The
// paper integrates swap with Aurora so that pages evicted between
// checkpoints are incorporated into the next checkpoint directly from
// the swap area.
type Pager struct {
	pm    *PhysMem
	swap  *Swap
	meter *Meter

	// SwapInRetries overrides DefaultSwapInRetries when > 0.
	SwapInRetries int

	mu      sync.Mutex
	objects []*Object
	spaces  []*AddressSpace
	handObj int // clock hand: object index
	handPg  int // clock hand: position within the object's page list
}

// NewPager creates a pager.
func NewPager(pm *PhysMem, swap *Swap, meter *Meter) *Pager {
	return &Pager{pm: pm, swap: swap, meter: meter}
}

// Register adds an object to the clock's sweep.
func (p *Pager) Register(obj *Object) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, o := range p.objects {
		if o == obj {
			return
		}
	}
	p.objects = append(p.objects, obj)
}

// RegisterSpace adds an address space whose referenced bits the clock
// consults.
func (p *Pager) RegisterSpace(as *AddressSpace) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, s := range p.spaces {
		if s == as {
			return
		}
	}
	p.spaces = append(p.spaces, as)
}

// Unregister removes an object (e.g. when its process exits).
func (p *Pager) Unregister(obj *Object) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, o := range p.objects {
		if o == obj {
			p.objects = append(p.objects[:i], p.objects[i+1:]...)
			return
		}
	}
}

// Reclaim runs the clock algorithm until it has evicted up to target
// pages to swap, giving referenced pages a second chance. It returns
// the number of pages evicted. Checkpoint-protected pages are skipped:
// their frames are owned by an in-flight checkpoint and will be
// released when the flush completes.
func (p *Pager) Reclaim(target int) (int, error) {
	if p.swap == nil {
		return 0, errors.New("vm: no swap configured")
	}
	p.mu.Lock()
	objects := make([]*Object, len(p.objects))
	copy(objects, p.objects)
	spaces := make([]*AddressSpace, len(p.spaces))
	copy(spaces, p.spaces)
	p.mu.Unlock()
	if len(objects) == 0 {
		return 0, nil
	}

	evicted := 0
	// Two full sweeps bound the scan: the first clears referenced
	// bits, the second can evict everything if needed.
	for sweep := 0; sweep < 2 && evicted < target; sweep++ {
		for oi := 0; oi < len(objects) && evicted < target; oi++ {
			obj := objects[(p.handObj+oi)%len(objects)]
			pages := obj.ResidentPages()
			sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
			for _, idx := range pages {
				if evicted >= target {
					break
				}
				if obj.IsProtected(idx) {
					continue
				}
				referenced := false
				for _, s := range spaces {
					if s.AccessedAndClear(obj, idx) {
						referenced = true
					}
				}
				if referenced {
					continue // second chance
				}
				if err := p.evict(obj, idx, spaces); err != nil {
					return evicted, err
				}
				evicted++
			}
		}
	}
	p.mu.Lock()
	p.handObj = (p.handObj + 1) % maxInt(len(objects), 1)
	p.mu.Unlock()
	return evicted, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// evict writes one page to swap and drops it from memory.
func (p *Pager) evict(obj *Object, idx int64, spaces []*AddressSpace) error {
	f, owner := obj.Lookup(idx)
	if f == nil || owner != obj {
		return nil
	}
	slot, err := p.swap.WritePage(f)
	if err != nil {
		return err
	}
	evicted := obj.SwapOut(idx, slot)
	if evicted == nil {
		// Raced with a fault; give the slot back.
		p.swap.FreeSlot(slot)
		return nil
	}
	for _, s := range spaces {
		s.InvalidateObjectPage(obj, idx)
	}
	p.pm.Free(evicted)
	if p.meter != nil {
		p.meter.PageOuts.Add(1)
	}
	// A page evicted after being dirtied must still reach the next
	// checkpoint; it stays in the object's dirty set and the barrier
	// picks it up from its swap slot.
	return nil
}

// SwapIn brings a paged-out page back into memory. Transient device
// errors are retried up to the pager's budget; a backend that stays
// failed (or is permanently down) surfaces a typed error wrapping
// ErrBackendDown so the faulting thread unblocks instead of spinning.
func (p *Pager) SwapIn(obj *Object, idx int64) error {
	slot, ok := obj.SwapSlot(idx)
	if !ok {
		return nil // raced with another swap-in
	}
	f, err := p.pm.Alloc()
	if err != nil {
		return err
	}
	retries := p.SwapInRetries
	if retries <= 0 {
		retries = DefaultSwapInRetries
	}
	var rerr error
	for attempt := 0; attempt <= retries; attempt++ {
		rerr = p.swap.ReadPage(slot, f.Data)
		if rerr == nil {
			break
		}
		if errors.Is(rerr, storage.ErrDeviceDown) {
			// Permanent failure: one attempt is proof enough.
			break
		}
	}
	if rerr != nil {
		p.pm.Free(f)
		return fmt.Errorf("%w: swap-in of page %d (slot %d) after %d attempts: %v",
			ErrBackendDown, idx, slot, retries+1, rerr)
	}
	obj.InsertPage(p.pm, idx, f)
	p.swap.FreeSlot(slot)
	if p.meter != nil {
		p.meter.PageIns.Add(1)
	}
	return nil
}

// Resolve services a SwapFault if err is one, returning true when the
// faulting access should be retried.
func (p *Pager) Resolve(err error) (bool, error) {
	var sf *SwapFault
	if !errors.As(err, &sf) {
		return false, err
	}
	if err := p.SwapIn(sf.Obj, sf.Page); err != nil {
		return false, err
	}
	return true, nil
}

// HottestPages orders the given heat snapshot hottest-first, used by
// lazy restore to eagerly page in the working set (the paper's
// clock-derived warm-up).
func HottestPages(heat map[int64]uint32) []int64 {
	out := make([]int64, 0, len(heat))
	for idx := range heat {
		out = append(out, idx)
	}
	sort.Slice(out, func(i, j int) bool {
		if heat[out[i]] != heat[out[j]] {
			return heat[out[i]] > heat[out[j]]
		}
		return out[i] < out[j]
	})
	return out
}

// SwapRead reads a frozen swap slot (checkpoint incorporation of
// paged-out pages).
func (p *Pager) SwapRead(slot int64, buf []byte) error {
	if p.swap == nil {
		return errors.New("vm: no swap configured")
	}
	return p.swap.ReadPage(slot, buf)
}
