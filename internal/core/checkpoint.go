package core

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// CheckpointOpts selects the checkpoint mode.
type CheckpointOpts struct {
	// Name labels the checkpoint for later `sls restore`.
	Name string
	// Full captures every resident page; otherwise only pages dirtied
	// since the previous barrier are captured (incremental). The first
	// checkpoint of a group is always full.
	Full bool
	// SkipFlush leaves the image in memory only (used by rollback
	// points and speculation; the image is still retained in g.last).
	SkipFlush bool
}

// Checkpoint runs a serialization barrier over the group: stop every
// member, copy metadata, apply COW tracking (the "lazy data copy"),
// resume, and hand the immutable image to the group's background
// flusher. It returns the stop-time breakdown of Table 3 as soon as
// the group is running again — before the flush completes. Durability
// (g.Durable, and with it Released()/external consistency) advances
// only when the flusher retires the epoch on every backend; callers
// needing the old synchronous behavior follow up with Orchestrator.Sync.
// The breakdown's FlushTime is zero here and is patched into
// g.Breakdowns() when the epoch retires.
func (o *Orchestrator) Checkpoint(g *Group, opts CheckpointOpts) (CheckpointBreakdown, error) {
	g.ckptMu.Lock()
	defer g.ckptMu.Unlock()

	clock := o.K.Clock
	costs := o.K.Costs

	g.mu.Lock()
	epoch := g.epoch + 1
	full := opts.Full || !g.everFull
	prev := g.last
	gen := g.generation
	fencedBy := g.fencedBy
	g.mu.Unlock()

	// A fenced group is a stale primary: a store or replica rejected
	// its generation because a promotion or migration handover
	// superseded it. Refusing the barrier up front — before even
	// looking at the member set, so a reaped zombie gets the same
	// verdict — keeps it from minting epochs no backend will ever
	// accept; the operator demotes it to catch-up resync instead.
	if fencedBy != 0 {
		return CheckpointBreakdown{}, fmt.Errorf(
			"core: group %d generation %d fenced by generation %d: %w",
			g.ID, gen, fencedBy, ErrStaleGeneration)
	}

	members := o.members(g)
	if len(members) == 0 {
		return CheckpointBreakdown{}, fmt.Errorf("core: group %d has no live processes", g.ID)
	}

	// Admission control: under space pressure (or a saturated flush
	// pipeline) shedding this barrier beats blocking resume or minting
	// an epoch no device can hold. The caller sees Shed=true and no
	// error; the process group keeps running on its current epoch.
	if shed, sbd := o.admitCheckpoint(g); shed {
		return sbd, nil
	}

	bd := CheckpointBreakdown{Epoch: epoch, Full: full}
	total := clock.Watch()

	// --- Stop phase: serialization barrier across the whole group ---
	for _, p := range members {
		o.K.StopProcess(p)
	}

	// --- Metadata copy ---
	metaSW := clock.Watch()
	meta, roots, err := o.serializeMetadata(members)
	if err != nil {
		o.resumeAll(members)
		return bd, err
	}
	// Charge the modeled metadata walk: fixed barrier cost plus the
	// per-page VM layout descriptors.
	resident := int64(0)
	objs := o.trackedObjects(members)
	for _, to := range objs {
		resident += int64(to.obj.ResidentCount())
	}
	clock.Advance(costs.CkptMetaBase + storage.PerKPage(costs.CkptMetaPerKPage, resident))
	bd.MetadataCopy = metaSW.Elapsed()
	bd.Objects = len(meta)
	bd.MetaBytes = metaBytes(meta)

	// --- Lazy data copy: COW-protect, no data movement ---
	dataSW := clock.Watch()
	pteBefore := o.K.Meter.PTEOps.Load()
	memory := make(map[uint64]*MemImage, len(objs))
	for _, to := range objs {
		cs := to.obj.BeginCheckpoint(epoch, full)
		for _, space := range to.spaces {
			space.ProtectObject(to.obj, cs.Pages)
		}
		mi := &MemImage{
			ObjID: to.obj.ID,
			Name:  to.obj.Name,
			Size:  to.obj.Size(),
			Pages: cs.Pages,
			Heat:  cs.Heat,
		}
		// Pages evicted to swap since the last checkpoint are
		// incorporated directly from the swap area.
		if len(cs.SwapPages) > 0 && o.K.Pager != nil {
			mi.SwapData = make(map[int64][]byte, len(cs.SwapPages))
			// Swap reads happen during the background flush in the
			// real system; the data is immutable (the slots are
			// frozen), so reading here preserves semantics.
			for idx, slot := range cs.SwapPages {
				buf := make([]byte, vm.PageSize)
				if err := o.K.Pager.SwapRead(slot, buf); err != nil {
					o.resumeAll(members)
					return bd, err
				}
				mi.SwapData[idx] = buf
			}
		}
		// Pages never faulted in since a lazy restore come straight
		// from the restore source.
		if len(cs.SourcePages) > 0 {
			if mi.SwapData == nil {
				mi.SwapData = make(map[int64][]byte, len(cs.SourcePages))
			}
			for idx, data := range cs.SourcePages {
				mi.SwapData[idx] = data
			}
			bd.SwapPages += len(cs.SourcePages)
		}
		memory[to.obj.ID] = mi
		bd.PagesCaptured += len(cs.Pages)
		bd.SwapPages += len(cs.SwapPages)
	}
	clock.Advance(costs.ProtectBase)
	bd.PTEOps = o.K.Meter.PTEOps.Load() - pteBefore
	bd.LazyDataCopy = dataSW.Elapsed()

	// --- Resume: the application runs again ---
	o.resumeAll(members)
	bd.StopTime = total.Elapsed()

	img := &Image{
		Group:  g.ID,
		Epoch:  epoch,
		Gen:    gen,
		Name:   opts.Name,
		Full:   full,
		Meta:   meta,
		Memory: memory,
		Roots:  roots,
	}
	if !full {
		img.Prev = prev
	}

	// --- Asynchronous flush: hand off to the pipeline and return ---
	g.mu.Lock()
	g.epoch = epoch
	g.everFull = g.everFull || full
	g.last = img
	bdIdx := len(g.ckpts)
	g.ckpts = append(g.ckpts, bd)
	if !opts.SkipFlush {
		g.lastQueued = epoch
	}
	g.mu.Unlock()

	if !opts.SkipFlush {
		// Blocks only when the bounded queue is full: backpressure
		// against checkpointing faster than the backends can flush.
		o.flusherOf(g).Enqueue(img, bdIdx)
	}
	return bd, nil
}

// admitCheckpoint decides whether a barrier may proceed. It sheds the
// barrier — no stop, no epoch, no capture — when a reclaimer-equipped
// store backend sits above the high watermark even after a reclaim
// scan, or when the flush pipeline's backlog exceeds ShedQueueDepth.
// Shedding lowers checkpoint *frequency*, not durability: a shed
// streak is capped (ShedAdmitEvery) so the durable frontier keeps
// advancing, and shedding never touches g.durable. With no reclaimer
// attached and ShedQueueDepth unset this is a no-op, preserving the
// exact legacy checkpoint cadence.
func (o *Orchestrator) admitCheckpoint(g *Group) (bool, CheckpointBreakdown) {
	var recs []*Reclaimer
	for _, b := range g.Backends() {
		if sb, ok := b.(*StoreBackend); ok && sb.rec != nil {
			recs = append(recs, sb.rec)
		}
	}
	shedDepth := o.ShedQueueDepth
	if len(recs) == 0 && shedDepth <= 0 {
		return false, CheckpointBreakdown{}
	}

	pressured, emergency := false, false
	for _, r := range recs {
		if r.Level() < PressureHigh {
			continue
		}
		// Reclaim before shedding: dropping history is strictly better
		// than dropping a checkpoint.
		r.Scan()
		if lvl := r.Level(); lvl >= PressureHigh {
			pressured = true
			if lvl == PressureEmergency {
				emergency = true
			}
		}
	}
	if !pressured && shedDepth > 0 && g.QueueDepth() >= shedDepth {
		pressured = true
	}

	g.mu.Lock()
	defer g.mu.Unlock()
	if !pressured {
		g.shedStreak = 0
		return false, CheckpointBreakdown{}
	}
	admitEvery := o.ShedAdmitEvery
	if admitEvery <= 0 {
		admitEvery = defaultShedAdmitEvery
	}
	g.shedStreak++
	if g.shedStreak >= admitEvery {
		// Coalesce, don't starve: every Nth barrier goes through even
		// under sustained pressure so durability still advances.
		g.shedStreak = 0
		return false, CheckpointBreakdown{}
	}
	g.sheds++
	if emergency {
		g.emergencySheds++
	}
	bd := CheckpointBreakdown{Epoch: g.epoch, Shed: true}
	g.ckpts = append(g.ckpts, bd)
	return true, bd
}

// flushImage delivers one image to every backend concurrently, under
// the per-backend health state machine (health.go): a healthy backend
// that fails retries with backoff and then degrades, queuing the epoch
// for catch-up. The epoch succeeds — and may retire — as long as at
// least one healthy non-ephemeral backend accepted it (degraded
// durability mode); with only ephemeral backends attached, any
// successful flush suffices, and a group with no backends trivially
// succeeds as before.
//
// The modeled time is the slowest backend plus the file-system
// snapshot that pins file state to the same generation. Each
// lane-capable backend charges its I/O to a detached clock lane, so a
// background flush overlaps the group's execution instead of stalling
// the foreground virtual timeline; a foreground (synchronous) caller
// merges the flush time back into the kernel clock. When no ephemeral
// backend retains the image and no catch-up queue still owes it, its
// frames are released (the object store now owns the data).
func (o *Orchestrator) flushImage(g *Group, img *Image, background bool) (time.Duration, error) {
	return o.flushImageOn(g, img, background, nil)
}

// flushImageOn is flushImage running against an explicit base clock:
// background flushes dispatched by the fleet pass their shard worker's
// flush lane, so consecutive flushes on a busy worker model device
// queueing instead of all starting at the foreground time. A nil base
// means the kernel clock (foreground callers and legacy paths).
func (o *Orchestrator) flushImageOn(g *Group, img *Image, background bool, base *storage.Clock) (time.Duration, error) {
	backends := g.Backends()
	clock := o.K.Clock
	if base == nil {
		base = clock
	}
	start := clock.Now()

	type outcome struct {
		dur      time.Duration
		deferred bool
		err      error
	}
	outs := make([]outcome, len(backends))
	var wg sync.WaitGroup
	for i, b := range backends {
		wg.Add(1)
		go func(i int, b Backend) {
			defer wg.Done()
			d, deferred, err := o.flushBackendOn(g, b, img, !background, base)
			outs[i] = outcome{dur: d, deferred: deferred, err: err}
		}(i, b)
	}
	wg.Wait()

	var worst time.Duration
	var firstErr error
	keepFrames := false
	haveNonEph, okNonEph, okAny := false, false, false
	nonEph, deferred := 0, 0
	var okDurs []time.Duration // non-ephemeral success latencies
	var ephWorst time.Duration // slowest ephemeral/cache flush
	for i, b := range backends {
		out := outs[i]
		if out.dur > worst {
			worst = out.dur
		}
		if b.Ephemeral() {
			keepFrames = true
			if out.err == nil && out.dur > ephWorst {
				ephWorst = out.dur
			}
		} else {
			haveNonEph = true
			nonEph++
		}
		if out.deferred {
			deferred++
		} else if out.err == nil {
			okAny = true
			if !b.Ephemeral() {
				okNonEph = true
				okDurs = append(okDurs, out.dur)
			}
		}
		if out.err != nil && firstErr == nil {
			firstErr = fmt.Errorf("core: flushing to %s: %w", b.Name(), out.err)
		}
	}
	if w := g.quorumW(); w > 0 && haveNonEph {
		// Quorum durability: the epoch retires once W non-ephemeral
		// backends acked it; stragglers catch up through their pending
		// queues. The modeled latency is the W-th fastest ack — a slow
		// minority no longer sets the pace — floored by any ephemeral
		// cache flush (those always complete before the barrier lifts).
		need := quorumNeed(w, nonEph)
		if len(okDurs) < need {
			err := fmt.Errorf("core: epoch %d of group %d: %d of %d non-ephemeral acks (need %d): %w",
				img.Epoch, g.ID, len(okDurs), nonEph, need, ErrQuorumLost)
			if firstErr != nil {
				err = fmt.Errorf("%w: %w", err, firstErr)
			}
			return 0, err
		}
		sort.Slice(okDurs, func(i, j int) bool { return okDurs[i] < okDurs[j] })
		worst = okDurs[need-1]
		if ephWorst > worst {
			worst = ephWorst
		}
	} else if len(backends) > 0 && !okNonEph && !(okAny && !haveNonEph) {
		// No durable backend holds the epoch: it must not retire.
		if firstErr == nil {
			firstErr = fmt.Errorf("core: epoch %d of group %d: %w", img.Epoch, g.ID, ErrBackendDown)
		}
		return 0, firstErr
	}
	// Keep file state in the same store generation as process state.
	if o.FS != nil {
		lane := base.Lane()
		sw := lane.Watch()
		if _, err := o.FS.SnapshotOn(o.FS.Store().WithClock(lane), ""); err != nil {
			return worst, fmt.Errorf("core: file system snapshot: %w", err)
		}
		worst += sw.Elapsed()
	}
	if !keepFrames && deferred == 0 && len(backends) > 0 {
		img.Release(o.K.Mem)
	}
	if !background {
		clock.AdvanceTo(start + worst)
	}
	return worst, nil
}

func (o *Orchestrator) resumeAll(members []*kernel.Process) {
	for _, p := range members {
		o.K.ResumeProcess(p)
	}
}

// trackedObject pairs a VM object with the member spaces mapping it.
type trackedObject struct {
	obj    *vm.Object
	spaces []*vm.AddressSpace
}

// trackedObjects collects the distinct persistable VM objects across
// the group, honoring sls_mctl exclusions.
func (o *Orchestrator) trackedObjects(members []*kernel.Process) []*trackedObject {
	index := make(map[uint64]*trackedObject)
	var order []uint64
	for _, p := range members {
		for _, m := range p.Space.Mappings() {
			if m.NoPersist {
				continue
			}
			to, ok := index[m.Obj.ID]
			if !ok {
				to = &trackedObject{obj: m.Obj}
				index[m.Obj.ID] = to
				order = append(order, m.Obj.ID)
			}
			already := false
			for _, s := range to.spaces {
				if s == p.Space {
					already = true
					break
				}
			}
			if !already {
				to.spaces = append(to.spaces, p.Space)
			}
		}
	}
	out := make([]*trackedObject, 0, len(order))
	for _, id := range order {
		out = append(out, index[id])
	}
	return out
}

// serializeMetadata walks the group's kernel object graph, invoking
// each object's own serialization code.
func (o *Orchestrator) serializeMetadata(members []*kernel.Process) ([]MetaRec, []uint64, error) {
	var meta []MetaRec
	var roots []uint64
	seen := make(map[uint64]bool)
	costs := o.K.Costs
	clock := o.K.Clock

	add := func(obj kernel.Object) {
		if obj == nil || seen[obj.OID()] {
			return
		}
		seen[obj.OID()] = true
		e := kernel.NewEncoder()
		obj.EncodeTo(e)
		meta = append(meta, MetaRec{OID: obj.OID(), Kind: obj.Kind(), Data: e.Bytes()})
		clock.Advance(costs.ObjSerialize + time.Duration(e.Len())*costs.ObjSerializeByte)
	}

	containers := make(map[int]bool)
	for _, p := range members {
		add(p)
		roots = append(roots, p.OID())
		for _, t := range p.Threads {
			add(t)
		}
		add(p.FDs)
		for _, fd := range p.FDs.Descs() {
			add(fd)
			switch f := fd.File.(type) {
			case *kernel.SockEnd:
				// Endpoints serialize through their parent; record
				// both so descriptor references resolve.
				add(f)
				if parent, ok := o.K.Lookup(f.ParentOID()); ok {
					add(parent)
				}
			case *kernel.UnixSocket:
				// Listeners carry their backlog: queued, unaccepted
				// connections are application state too.
				add(f)
				for _, sp := range f.Backlog() {
					add(sp)
				}
			case kernel.Object:
				add(f)
			}
		}
		containers[p.Container] = true
	}
	for id := range containers {
		if c, ok := o.K.Container(id); ok {
			add(c)
		}
	}
	// System V objects visible to the group: shared memory segments
	// mapped by a member, and message queues (global by key).
	memberSpaces := make(map[*vm.AddressSpace]bool)
	for _, p := range members {
		memberSpaces[p.Space] = true
	}
	for _, seg := range o.K.ShmSegments() {
		for _, p := range members {
			mapped := false
			for _, m := range p.Space.Mappings() {
				if m.Obj == seg.Obj {
					mapped = true
					break
				}
			}
			if mapped {
				add(seg)
				break
			}
		}
	}
	for _, q := range o.K.MsgQueues() {
		add(q)
	}
	return meta, roots, nil
}

func metaBytes(meta []MetaRec) int {
	n := 0
	for _, m := range meta {
		n += len(m.Data)
	}
	return n
}
