package vm

import (
	"bytes"
	"testing"
	"testing/quick"

	"aurora/internal/storage"
)

func testSpace(t *testing.T) (*AddressSpace, *PhysMem, *Meter) {
	t.Helper()
	pm := NewPhysMem(0)
	meter := NewMeter(storage.NewClock())
	return NewAddressSpace(pm, meter), pm, meter
}

func TestAddrHelpers(t *testing.T) {
	a := Addr(0x4000_1234)
	if a.PageIndex() != 0x40001 {
		t.Fatalf("PageIndex = %#x", a.PageIndex())
	}
	if a.PageOffset() != 0x234 {
		t.Fatalf("PageOffset = %#x", a.PageOffset())
	}
	if a.PageBase() != 0x4000_1000 {
		t.Fatalf("PageBase = %#x", a.PageBase())
	}
	if RoundUpPage(1) != PageSize || RoundUpPage(PageSize) != PageSize {
		t.Fatal("RoundUpPage wrong")
	}
}

func TestMapAnonReadWrite(t *testing.T) {
	as, _, _ := testSpace(t)
	m, err := as.MapAnon(64<<10, ProtRead|ProtWrite, false, "heap")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox jumps over the lazy dog")
	if err := as.Write(m.Start+100, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(m.Start+100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read %q want %q", got, data)
	}
}

func TestCrossPageAccess(t *testing.T) {
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(64<<10, ProtRead|ProtWrite, false, "heap")
	data := make([]byte, 3*PageSize+17)
	for i := range data {
		data[i] = byte(i)
	}
	addr := m.Start + PageSize - 9 // straddles page boundaries
	if err := as.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if err := as.Read(addr, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("cross-page round trip mismatch")
	}
}

func TestZeroFillReadNoAlloc(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(1<<20, ProtRead|ProtWrite, false, "heap")
	got := make([]byte, 4096)
	for i := range got {
		got[i] = 0xff
	}
	if err := as.Read(m.Start, got); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("unwritten anon memory must read zero")
		}
	}
	if pm.Resident() != 0 {
		t.Fatalf("zero-fill read allocated %d frames", pm.Resident())
	}
}

func TestUnmappedAccess(t *testing.T) {
	as, _, _ := testSpace(t)
	if err := as.Read(0xdead0000, make([]byte, 8)); err != ErrNoMapping {
		t.Fatalf("err = %v, want ErrNoMapping", err)
	}
	if err := as.Write(0xdead0000, []byte{1}); err != ErrNoMapping {
		t.Fatalf("err = %v, want ErrNoMapping", err)
	}
}

func TestProtection(t *testing.T) {
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead, false, "rodata")
	if err := as.Write(m.Start, []byte{1}); err != ErrProtection {
		t.Fatalf("write to read-only err = %v", err)
	}
	wm, _ := as.MapAnon(PageSize, ProtWrite, false, "wo")
	if err := as.Read(wm.Start, make([]byte, 1)); err != ErrProtection {
		t.Fatalf("read of write-only err = %v", err)
	}
	// mprotect flips permissions.
	if err := as.Protect(m.Start, ProtRead|ProtWrite); err != nil {
		t.Fatal(err)
	}
	if err := as.Write(m.Start, []byte{1}); err != nil {
		t.Fatalf("write after mprotect: %v", err)
	}
}

func TestMapOverlapRejected(t *testing.T) {
	as, _, _ := testSpace(t)
	obj := NewObject("o", 1<<20)
	if _, err := as.Map(0x1000_0000, 1<<20, ProtRead, obj, 0, false, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := as.Map(0x1008_0000, 1<<20, ProtRead, obj, 0, false, "b"); err != ErrMapOverlap {
		t.Fatalf("overlap err = %v", err)
	}
}

func TestMapBadArgs(t *testing.T) {
	as, _, _ := testSpace(t)
	obj := NewObject("o", PageSize)
	if _, err := as.Map(0x1001, PageSize, ProtRead, obj, 0, false, "x"); err != ErrBadRange {
		t.Fatalf("unaligned start err = %v", err)
	}
	if _, err := as.Map(0x1000, 0, ProtRead, obj, 0, false, "x"); err != ErrBadRange {
		t.Fatalf("zero length err = %v", err)
	}
	if _, err := as.Map(0x1000, PageSize, ProtRead, obj, 3, false, "x"); err != ErrBadRange {
		t.Fatalf("unaligned offset err = %v", err)
	}
}

func TestUnmapReleasesFrames(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(16*PageSize, ProtRead|ProtWrite, false, "heap")
	as.Write(m.Start, make([]byte, 16*PageSize))
	if pm.Resident() != 16 {
		t.Fatalf("resident = %d", pm.Resident())
	}
	if err := as.Unmap(m.Start, 16*PageSize); err != nil {
		t.Fatal(err)
	}
	if pm.Resident() != 0 {
		t.Fatalf("resident after unmap = %d", pm.Resident())
	}
	if err := as.Read(m.Start, make([]byte, 1)); err != ErrNoMapping {
		t.Fatalf("read after unmap err = %v", err)
	}
}

func TestFindFreePlacesDisjoint(t *testing.T) {
	as, _, _ := testSpace(t)
	m1, _ := as.MapAnon(1<<20, ProtRead|ProtWrite, false, "a")
	m2, _ := as.MapAnon(1<<20, ProtRead|ProtWrite, false, "b")
	if m1.Start == m2.Start || (m2.Start >= m1.Start && m2.Start < m1.End) {
		t.Fatalf("mappings overlap: %#x %#x", m1.Start, m2.Start)
	}
}

// --- Aurora COW semantics ---

func TestAuroraCowPreservesSharing(t *testing.T) {
	pm := NewPhysMem(0)
	meter := NewMeter(storage.NewClock())
	as1 := NewAddressSpace(pm, meter)
	as2 := NewAddressSpace(pm, meter)

	obj := NewObject("shm", 4*PageSize)
	m1, err := as1.Map(0x1000_0000, 4*PageSize, ProtRead|ProtWrite, obj, 0, true, "shm")
	if err != nil {
		t.Fatal(err)
	}
	m2, err := as2.Map(0x2000_0000, 4*PageSize, ProtRead|ProtWrite, obj, 0, true, "shm")
	if err != nil {
		t.Fatal(err)
	}

	if err := as1.Write(m1.Start, []byte("before checkpoint")); err != nil {
		t.Fatal(err)
	}

	// Serialization barrier: capture and protect.
	cs := obj.BeginCheckpoint(1, true)
	as1.ProtectObject(obj, cs.Pages)
	as2.ProtectObject(obj, cs.Pages)
	if cs.PageCount() != 1 {
		t.Fatalf("checkpoint captured %d pages, want 1", cs.PageCount())
	}

	// Process 1 writes through the protected page: Aurora installs a
	// NEW page shared by both processes.
	if err := as1.Write(m1.Start, []byte("after  checkpoint")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 17)
	if err := as2.Read(m2.Start, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "after  checkpoint" {
		t.Fatalf("process 2 sees %q — shared memory semantics broken", got)
	}

	// The checkpoint still owns the pre-write contents.
	var frozen *Frame
	for _, f := range cs.Pages {
		frozen = f
	}
	if !bytes.HasPrefix(frozen.Data, []byte("before checkpoint")) {
		t.Fatalf("checkpoint frame corrupted: %q", frozen.Data[:17])
	}
	if meter.CowFaults.Load() != 1 {
		t.Fatalf("cow faults = %d, want 1", meter.CowFaults.Load())
	}
	cs.Release(pm)
}

func TestForkCowBreaksSharingWithinPrivateMappings(t *testing.T) {
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead|ProtWrite, false, "data")
	as.Write(m.Start, []byte("original"))

	child := as.Fork()
	// Child writes privately.
	if err := child.Write(m.Start, []byte("childdata")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 9)
	as.Read(m.Start, got)
	if string(got[:8]) != "original" {
		t.Fatalf("parent sees child write: %q", got)
	}
	// Parent writes privately too.
	as.Write(m.Start, []byte("parentdat"))
	child.Read(m.Start, got)
	if string(got) != "childdata" {
		t.Fatalf("child sees parent write: %q", got)
	}
}

func TestForkSharedMappingStaysShared(t *testing.T) {
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead|ProtWrite, true, "shm")
	as.Write(m.Start, []byte("aaaa"))
	child := as.Fork()
	child.Write(m.Start, []byte("bbbb"))
	got := make([]byte, 4)
	as.Read(m.Start, got)
	if string(got) != "bbbb" {
		t.Fatalf("shared mapping diverged after fork: %q", got)
	}
}

func TestIncrementalNeverFlushesTwice(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(64*PageSize, ProtRead|ProtWrite, false, "heap")
	as.Write(m.Start, make([]byte, 64*PageSize)) // dirty all 64

	obj := m.Obj
	cs1 := obj.BeginCheckpoint(1, false)
	as.ProtectObject(obj, cs1.Pages)
	if cs1.PageCount() != 64 {
		t.Fatalf("first incremental captured %d, want 64", cs1.PageCount())
	}
	cs1.Release(pm)

	// Touch only 3 pages before the next checkpoint.
	for i := 0; i < 3; i++ {
		as.Write(m.Start+Addr(i*5*PageSize), []byte{0xab})
	}
	cs2 := obj.BeginCheckpoint(2, false)
	as.ProtectObject(obj, cs2.Pages)
	if cs2.PageCount() != 3 {
		t.Fatalf("second incremental captured %d, want 3", cs2.PageCount())
	}
	cs2.Release(pm)

	// Nothing dirtied: third checkpoint captures nothing.
	cs3 := obj.BeginCheckpoint(3, false)
	if cs3.PageCount() != 0 {
		t.Fatalf("idle incremental captured %d, want 0", cs3.PageCount())
	}
}

func TestFullCheckpointCapturesAllResident(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(16*PageSize, ProtRead|ProtWrite, false, "heap")
	as.Write(m.Start, make([]byte, 16*PageSize))
	obj := m.Obj
	// Drain the dirty set with an incremental first.
	obj.BeginCheckpoint(1, false).Release(pm)
	// Full mode still captures all 16 resident pages.
	cs := obj.BeginCheckpoint(2, true)
	if cs.PageCount() != 16 {
		t.Fatalf("full checkpoint captured %d, want 16", cs.PageCount())
	}
	cs.Release(pm)
}

func TestCowFaultFrameRefcounting(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(PageSize, ProtRead|ProtWrite, false, "x")
	as.Write(m.Start, []byte{1})
	obj := m.Obj

	cs := obj.BeginCheckpoint(1, true)
	as.ProtectObject(obj, cs.Pages)
	before := pm.Resident()
	as.Write(m.Start, []byte{2}) // COW fault: +1 frame
	if pm.Resident() != before+1 {
		t.Fatalf("resident after COW = %d, want %d", pm.Resident(), before+1)
	}
	cs.Release(pm) // checkpoint drops the original frame
	if pm.Resident() != before {
		t.Fatalf("resident after release = %d, want %d", pm.Resident(), before)
	}
}

func TestBarrierPTECost(t *testing.T) {
	as, _, meter := testSpace(t)
	m, _ := as.MapAnon(32*PageSize, ProtRead|ProtWrite, false, "heap")
	as.Write(m.Start, make([]byte, 32*PageSize))
	obj := m.Obj

	meter.PTEOps.Store(0)
	cs := obj.BeginCheckpoint(1, true)
	ops := as.ProtectObject(obj, cs.Pages)
	if ops != 32 {
		t.Fatalf("protect ops = %d, want 32 (one per writable PTE)", ops)
	}
}

// --- shadow chains ---

func TestShadowChainLookup(t *testing.T) {
	pm := NewPhysMem(0)
	base := NewObject("base", 2*PageSize)
	f, _, err := base.EnsurePage(pm, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	copy(f.Data, []byte("base page"))

	top := base.NewShadow()
	got, owner := top.Lookup(0)
	if got == nil || owner != base {
		t.Fatal("shadow lookup should fall through to base")
	}
	// Writing through the shadow copies up.
	wf, copied, err := top.EnsurePage(pm, 0, nil)
	if err != nil || !copied {
		t.Fatalf("EnsurePage copied=%v err=%v", copied, err)
	}
	if !bytes.HasPrefix(wf.Data, []byte("base page")) {
		t.Fatal("copy-up lost base contents")
	}
	copy(wf.Data, []byte("top  page"))
	if !bytes.HasPrefix(f.Data, []byte("base page")) {
		t.Fatal("write through shadow modified base")
	}
}

// --- pager / clock algorithm ---

func pagerFixture(t *testing.T) (*AddressSpace, *Mapping, *Pager, *PhysMem) {
	t.Helper()
	pm := NewPhysMem(0)
	clock := storage.NewClock()
	meter := NewMeter(clock)
	as := NewAddressSpace(pm, meter)
	m, err := as.MapAnon(32*PageSize, ProtRead|ProtWrite, false, "heap")
	if err != nil {
		t.Fatal(err)
	}
	swap := NewSwap(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock))
	pg := NewPager(pm, swap, meter)
	pg.Register(m.Obj)
	pg.RegisterSpace(as)
	return as, m, pg, pm
}

func TestPagerReclaimAndSwapIn(t *testing.T) {
	as, m, pg, pm := pagerFixture(t)
	payload := make([]byte, 32*PageSize)
	for i := range payload {
		payload[i] = byte(i / PageSize)
	}
	as.Write(m.Start, payload)
	resident := pm.Resident()

	// First Reclaim pass clears referenced bits then evicts.
	n, err := pg.Reclaim(10)
	if err != nil {
		t.Fatal(err)
	}
	if n != 10 {
		t.Fatalf("reclaimed %d, want 10", n)
	}
	if pm.Resident() != resident-10 {
		t.Fatalf("resident = %d, want %d", pm.Resident(), resident-10)
	}

	// Reading the whole range must swap pages back in with correct data.
	got := make([]byte, len(payload))
	for {
		err := as.Read(m.Start, got)
		if err == nil {
			break
		}
		retry, rerr := pg.Resolve(err)
		if !retry {
			t.Fatal(rerr)
		}
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted across swap-out/swap-in")
	}
}

func TestClockSecondChance(t *testing.T) {
	as, m, pg, _ := pagerFixture(t)
	as.Write(m.Start, make([]byte, 32*PageSize))

	// Re-touch pages 0 and 1 so their referenced bits are fresh.
	as.Read(m.Start, make([]byte, 2*PageSize))

	// Evicting a single page: the clock should pass over everything
	// once (clearing bits) and then evict; the first eviction target
	// after bit clearing is a cold page, and pages 0/1 get their
	// second chance only during the first sweep.
	if _, err := pg.Reclaim(30); err != nil {
		t.Fatal(err)
	}
	// Pages 0 and 1 were referenced equally with the rest after the
	// bulk write, so just assert the swap bookkeeping is consistent.
	swapped := m.Obj.SwappedPages()
	if len(swapped) != 30 {
		t.Fatalf("swapped %d pages, want 30", len(swapped))
	}
	for idx := range swapped {
		if f, _ := m.Obj.Lookup(idx); f != nil {
			t.Fatalf("page %d both resident and swapped", idx)
		}
	}
}

func TestCheckpointCapturesSwappedDirtyPages(t *testing.T) {
	as, m, pg, _ := pagerFixture(t)
	as.Write(m.Start, make([]byte, 4*PageSize)) // dirty 4 pages
	// Evict everything (two sweeps: first clears bits, second evicts).
	if _, err := pg.Reclaim(4); err != nil {
		t.Fatal(err)
	}
	cs := m.Obj.BeginCheckpoint(1, false)
	if len(cs.SwapPages)+cs.PageCount() != 4 {
		t.Fatalf("checkpoint saw %d mem + %d swap pages, want 4 total",
			cs.PageCount(), len(cs.SwapPages))
	}
	if len(cs.SwapPages) == 0 {
		t.Fatal("expected some pages captured from swap")
	}
}

func TestProtectedPagesNotEvicted(t *testing.T) {
	as, m, pg, pm := pagerFixture(t)
	as.Write(m.Start, make([]byte, 8*PageSize))
	cs := m.Obj.BeginCheckpoint(1, true)
	as.ProtectObject(m.Obj, cs.Pages)
	n, err := pg.Reclaim(8)
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("evicted %d checkpoint-protected pages", n)
	}
	cs.Release(pm)
}

func TestHottestPages(t *testing.T) {
	heat := map[int64]uint32{3: 10, 1: 30, 7: 20, 4: 10}
	got := HottestPages(heat)
	want := []int64{1, 7, 3, 4} // ties broken by index
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HottestPages = %v, want %v", got, want)
		}
	}
}

func TestPhysMemBound(t *testing.T) {
	pm := NewPhysMem(2)
	a, err := pm.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(); err != nil {
		t.Fatal(err)
	}
	if _, err := pm.Alloc(); err != ErrOutOfMemory {
		t.Fatalf("third alloc err = %v", err)
	}
	pm.Free(a)
	if _, err := pm.Alloc(); err != nil {
		t.Fatalf("alloc after free err = %v", err)
	}
}

// Property: arbitrary interleavings of writes at arbitrary offsets are
// read back exactly (memory is a faithful store through all fault
// paths).
func TestQuickMemoryFidelity(t *testing.T) {
	as, _, _ := testSpace(t)
	m, _ := as.MapAnon(1<<20, ProtRead|ProtWrite, false, "heap")
	shadow := make([]byte, 1<<20) // reference model

	f := func(off uint32, data []byte) bool {
		off %= 1 << 19
		if len(data) > 1<<18 {
			data = data[:1<<18]
		}
		if len(data) == 0 {
			return true
		}
		if err := as.Write(m.Start+Addr(off), data); err != nil {
			return false
		}
		copy(shadow[off:], data)
		got := make([]byte, len(data))
		if err := as.Read(m.Start+Addr(off), got); err != nil {
			return false
		}
		return bytes.Equal(got, shadow[off:int(off)+len(data)])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
	// Full-range verification against the reference model.
	got := make([]byte, 1<<20)
	if err := as.Read(m.Start, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, shadow) {
		t.Fatal("final memory image diverges from reference model")
	}
}

// Property: checkpoints are consistent — the frames captured at a
// barrier never change afterwards, no matter what the application
// writes.
func TestQuickCheckpointImmutability(t *testing.T) {
	as, pm, _ := testSpace(t)
	m, _ := as.MapAnon(64*PageSize, ProtRead|ProtWrite, false, "heap")
	initial := make([]byte, 64*PageSize)
	for i := range initial {
		initial[i] = byte(i * 13)
	}
	as.Write(m.Start, initial)

	cs := m.Obj.BeginCheckpoint(1, true)
	as.ProtectObject(m.Obj, cs.Pages)
	snapshot := make(map[int64][]byte)
	for idx, f := range cs.Pages {
		snapshot[idx] = append([]byte(nil), f.Data...)
	}

	f := func(page uint8, val byte) bool {
		idx := int64(page) % 64
		if err := as.Write(m.Start+Addr(idx*PageSize), []byte{val}); err != nil {
			return false
		}
		return bytes.Equal(cs.Pages[idx].Data, snapshot[idx])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
	cs.Release(pm)
}
