// Package vm implements Aurora's virtual memory substrate: physical
// frames, Mach-style VM objects with shadow chains, simulated page
// tables, and the two copy-on-write disciplines the paper contrasts:
//
//   - fork-style COW, where a write fault gives the faulting process a
//     private copy (breaking shared-memory semantics), and
//   - Aurora's checkpoint COW, where a write fault installs a new page
//     shared by *all* processes mapping the object while the original
//     frame is handed to the in-flight checkpoint for flushing.
//
// The package also provides per-checkpoint-epoch dirty tracking (so a
// page is never flushed twice across incremental checkpoints), a clock
// page-replacement algorithm with heat tracking used to drive eager
// paging on lazy restores, and swap integration.
//
// All memory contents are real bytes; costs (page-table manipulation,
// fault service, page copies) are charged to a Meter so the SLS
// orchestrator can report modeled stop-time breakdowns.
package vm

import (
	"errors"
	"sync/atomic"
	"time"

	"aurora/internal/storage"
)

// Page geometry. Aurora uses 4 KiB pages like its FreeBSD host.
const (
	PageShift = 12
	PageSize  = 1 << PageShift
	PageMask  = PageSize - 1
)

// Addr is a simulated virtual address.
type Addr uint64

// PageIndex returns the page number containing a.
func (a Addr) PageIndex() int64 { return int64(a >> PageShift) }

// PageOffset returns the offset of a within its page.
func (a Addr) PageOffset() int64 { return int64(a & PageMask) }

// PageBase returns the page-aligned base of a.
func (a Addr) PageBase() Addr { return a &^ Addr(PageMask) }

// RoundUpPage rounds n up to a page multiple.
func RoundUpPage(n int64) int64 { return (n + PageMask) &^ int64(PageMask) }

// Errors returned by the VM layer.
var (
	ErrNoMapping   = errors.New("vm: address not mapped")
	ErrProtection  = errors.New("vm: protection violation")
	ErrMapOverlap  = errors.New("vm: mapping overlaps existing region")
	ErrBadRange    = errors.New("vm: bad address range")
	ErrOutOfMemory = errors.New("vm: out of physical memory")
)

// Prot is a page protection mask.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

// Frame is a physical page frame holding real data.
type Frame struct {
	Data []byte // always PageSize bytes
	refs int32  // references from objects and checkpoint flush sets
}

// Ref adds a reference to the frame.
func (f *Frame) Ref() { atomic.AddInt32(&f.refs, 1) }

// Refs returns the current reference count.
func (f *Frame) Refs() int32 { return atomic.LoadInt32(&f.refs) }

// PhysMem is the physical frame allocator. It tracks residency so the
// pageout daemon and the experiment harness can observe memory
// pressure.
type PhysMem struct {
	maxFrames int64 // 0 = unbounded
	allocated atomic.Int64
	allocs    atomic.Int64
	frees     atomic.Int64
}

// NewPhysMem creates an allocator bounded to maxFrames frames
// (0 = unbounded).
func NewPhysMem(maxFrames int64) *PhysMem {
	return &PhysMem{maxFrames: maxFrames}
}

// Alloc allocates a zeroed frame.
func (pm *PhysMem) Alloc() (*Frame, error) {
	if pm.maxFrames > 0 && pm.allocated.Load() >= pm.maxFrames {
		return nil, ErrOutOfMemory
	}
	pm.allocated.Add(1)
	pm.allocs.Add(1)
	return &Frame{Data: make([]byte, PageSize), refs: 1}, nil
}

// AllocCopy allocates a frame initialized with the contents of src.
func (pm *PhysMem) AllocCopy(src *Frame) (*Frame, error) {
	f, err := pm.Alloc()
	if err != nil {
		return nil, err
	}
	copy(f.Data, src.Data)
	return f, nil
}

// Free drops a reference to the frame, releasing it when the count
// reaches zero.
func (pm *PhysMem) Free(f *Frame) {
	if f == nil {
		return
	}
	if atomic.AddInt32(&f.refs, -1) == 0 {
		pm.allocated.Add(-1)
		pm.frees.Add(1)
	}
}

// Resident returns the number of allocated frames.
func (pm *PhysMem) Resident() int64 { return pm.allocated.Load() }

// MaxFrames returns the allocator bound (0 = unbounded).
func (pm *PhysMem) MaxFrames() int64 { return pm.maxFrames }

// Meter charges VM costs to the virtual clock and counts operations.
// All fields are manipulated atomically; a nil Meter is valid and
// charges nothing, which keeps unit tests lightweight.
type Meter struct {
	Clock *storage.Clock
	Costs storage.CostModel

	Instrs     atomic.Int64
	PTEOps     atomic.Int64
	Faults     atomic.Int64
	CowFaults  atomic.Int64
	PageCopies atomic.Int64
	PageIns    atomic.Int64
	PageOuts   atomic.Int64
	ZeroFills  atomic.Int64
}

// NewMeter builds a meter around a clock using the default cost model.
func NewMeter(clock *storage.Clock) *Meter {
	return &Meter{Clock: clock, Costs: storage.DefaultCosts}
}

// ChargeInstr records n interpreted instructions of CPU time.
func (m *Meter) ChargeInstr(n int64) {
	if m == nil {
		return
	}
	m.Instrs.Add(n)
	if m.Clock != nil && n > 0 {
		m.Clock.Advance(time.Duration(n) * m.Costs.Instr)
	}
}

// ChargePTE records n page-table entry manipulations.
func (m *Meter) ChargePTE(n int64) {
	if m == nil {
		return
	}
	m.PTEOps.Add(n)
	if m.Clock != nil && n > 0 {
		m.Clock.Advance(time.Duration(n) * m.Costs.PTEOp)
	}
}

// ChargeProtect records n bulk COW write-protect operations (range
// PTE updates during a serialization barrier, far cheaper per entry
// than a single PTEOp).
func (m *Meter) ChargeProtect(n int64) {
	if m == nil {
		return
	}
	m.PTEOps.Add(n)
	if m.Clock != nil && n > 0 {
		m.Clock.Advance(time.Duration(n) * m.Costs.ProtectPerPage)
	}
}

// ChargeFault records a page fault trap.
func (m *Meter) ChargeFault() {
	if m == nil {
		return
	}
	m.Faults.Add(1)
	if m.Clock != nil {
		m.Clock.Advance(m.Costs.PageFault)
	}
}

// ChargeCopy records n page copies.
func (m *Meter) ChargeCopy(n int64) {
	if m == nil {
		return
	}
	m.PageCopies.Add(n)
	if m.Clock != nil && n > 0 {
		m.Clock.Advance(time.Duration(n) * m.Costs.PageCopy)
	}
}
