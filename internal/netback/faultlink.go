package netback

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync"
	"time"

	"aurora/internal/storage"
)

// FaultLink is the network twin of storage.FaultDevice: a seeded,
// deterministic in-memory link between two endpoints that injects
// per-frame faults — drops, duplicates, reorders, payload corruption,
// latency spikes — plus scripted drops and full or asymmetric
// partitions with heal. It is frame-aware: writes are reassembled into
// wire frames ([type][len][crc32c][payload]) and each frame's fate is
// drawn from a per-direction RNG with a fixed number of draws, so the
// schedule is a pure function of (seed, frame number) in that
// direction.
//
// The replication protocol is synchronous (one frame in flight per
// direction, the sender blocks on the ack), so a dropped frame would
// deadlock both sides. A drop therefore models a timeout: it raises a
// one-shot ErrLinkDropped on BOTH directions, waking any blocked
// reader; each side treats that as a connection loss and re-runs the
// hello/hello-ack resume handshake. A side that writes has, by
// definition, moved past any earlier loss, so a write clears the
// writer's stale read-side error — the handshake itself scrubs
// leftover flags.

// ErrLinkDropped reports a frame lost on a FaultLink (injected drop or
// partition). The replication layer treats it as a connection loss.
var ErrLinkDropped = errors.New("netback: link dropped frame")

// LinkDir names one direction of a FaultLink.
type LinkDir int

const (
	AtoB LinkDir = iota
	BtoA
)

func (d LinkDir) String() string {
	if d == AtoB {
		return "a->b"
	}
	return "b->a"
}

// LinkFaultConfig holds the per-frame fault probabilities, all in
// [0, 1] and drawn from a seeded RNG per direction.
type LinkFaultConfig struct {
	Seed int64

	// Drop is the probability a frame vanishes in flight (both sides
	// see ErrLinkDropped, modeling the protocol timeout).
	Drop float64
	// Dup delivers the frame twice.
	Dup float64
	// Reorder delivers the frame ahead of an already-queued one (the
	// synchronous protocol rarely queues two frames in one direction,
	// so this mostly composes with Dup).
	Reorder float64
	// Corrupt flips one payload byte in flight; the frame CRC catches
	// it on the receiving side (ErrCorruptFrame).
	Corrupt float64
	// LatencyProb/LatencyCost inject latency spikes charged to the
	// link's virtual clock.
	LatencyProb float64
	LatencyCost time.Duration
}

// linkScript is one scripted "drop frames N..M" directive.
type linkScript struct {
	from, to int64 // inclusive frame numbers, 1-based
}

// linkDir is one direction's state.
type linkDir struct {
	rng         *rand.Rand
	wpend       []byte   // partial frame bytes accumulating from writes
	queue       [][]byte // complete frames awaiting the reader
	rbuf        []byte   // frame bytes currently being read
	frames      int64    // frames written into this direction, 1-based
	partitioned bool
	pendingErr  bool // one-shot ErrLinkDropped for this direction's reader
	scripts     []linkScript
	partitionAt int64 // partition when this frame number crosses (0: unset)
}

// FaultLink owns both endpoints of a faulty in-memory connection.
type FaultLink struct {
	mu       sync.Mutex
	cond     *sync.Cond
	cfg      LinkFaultConfig
	clock    *storage.Clock
	dirs     [2]*linkDir
	closed   bool
	dropped  int64
	injected int64
	ops      []string
}

// NewFaultLink creates a link charging latency spikes to clock (which
// may be nil).
func NewFaultLink(cfg LinkFaultConfig, clock *storage.Clock) *FaultLink {
	l := &FaultLink{cfg: cfg, clock: clock}
	l.cond = sync.NewCond(&l.mu)
	// Distinct per-direction RNGs: each direction's schedule depends
	// only on its own frame sequence, which the writer totally orders.
	l.dirs[AtoB] = &linkDir{rng: rand.New(rand.NewSource(cfg.Seed))}
	l.dirs[BtoA] = &linkDir{rng: rand.New(rand.NewSource(cfg.Seed ^ 0x5deece66d))}
	return l
}

// linkEnd is one endpoint; writes feed writeDir, reads drain readDir.
type linkEnd struct {
	l        *FaultLink
	writeDir LinkDir
	readDir  LinkDir
}

// A returns the endpoint whose writes travel a->b (the sender side in
// the tests' convention).
func (l *FaultLink) A() io.ReadWriteCloser { return &linkEnd{l: l, writeDir: AtoB, readDir: BtoA} }

// B returns the endpoint whose writes travel b->a (the receiver side).
func (l *FaultLink) B() io.ReadWriteCloser { return &linkEnd{l: l, writeDir: BtoA, readDir: AtoB} }

func (e *linkEnd) Write(p []byte) (int, error) {
	l := e.l
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, io.ErrClosedPipe
	}
	// Note: writing must NOT scrub a pending loss error on the
	// direction this side reads. It is tempting ("this side is alive
	// and making progress, any loss it was due to observe is stale"),
	// but a writer can be answering a *duplicated* frame while the
	// pending error signals a *later* loss — scrubbing then leaves
	// this side blocked forever on a read its peer already abandoned.
	// Stale errors are cheap (one spurious reconnect) and Heal clears
	// them on the re-handshake path; a lost wake-up deadlocks.
	d := l.dirs[e.writeDir]
	d.wpend = append(d.wpend, p...)
	// Reassemble and process every complete frame.
	for len(d.wpend) >= frameHdrSize {
		n := binary.LittleEndian.Uint64(d.wpend[1:9])
		if n > 1<<32 {
			break
		}
		total := frameHdrSize + int(n)
		if len(d.wpend) < total {
			break
		}
		frame := append([]byte(nil), d.wpend[:total]...)
		d.wpend = d.wpend[total:]
		l.processFrame(e.writeDir, frame)
	}
	l.cond.Broadcast()
	return len(p), nil
}

// processFrame rolls the dice for one frame and delivers, mutates, or
// drops it. Every frame consumes a fixed number of RNG draws so the
// schedule stays a pure function of (seed, frame number). Callers
// hold l.mu.
func (l *FaultLink) processFrame(dir LinkDir, frame []byte) {
	d := l.dirs[dir]
	d.frames++
	n := d.frames
	dropRoll := d.rng.Float64()
	dupRoll := d.rng.Float64()
	reorderRoll := d.rng.Float64()
	corruptRoll := d.rng.Float64()
	latRoll := d.rng.Float64()
	frac := d.rng.Float64()

	if d.partitionAt != 0 && n >= d.partitionAt {
		d.partitioned = true
		d.partitionAt = 0
		l.logf("partition %s at frame %d", dir, n)
	}
	scripted := false
	for _, s := range d.scripts {
		if n >= s.from && n <= s.to {
			scripted = true
		}
	}
	if d.partitioned || scripted || dropRoll < l.cfg.Drop {
		l.dropped++
		if scripted || dropRoll < l.cfg.Drop {
			l.injected++
		}
		l.logf("drop %s #%d type=%d", dir, n, frame[0])
		l.signalDropLocked()
		return
	}
	if corruptRoll < l.cfg.Corrupt {
		c := append([]byte(nil), frame...)
		if len(c) > frameHdrSize {
			c[frameHdrSize+int(frac*float64(len(c)-frameHdrSize))%(len(c)-frameHdrSize)] ^= 0x80
		} else {
			// Headers-only frame: damage the CRC field itself.
			c[9+int(frac*4)%4] ^= 0x80
		}
		frame = c
		l.injected++
		l.logf("corrupt %s #%d type=%d", dir, n, frame[0])
		// The receiver of a corrupt frame fails its CRC and hangs up,
		// so whatever reply this side is waiting for will never come:
		// raise the timeout on the opposite direction now.
		l.dirs[1-dir].pendingErr = true
	}
	if latRoll < l.cfg.LatencyProb && l.cfg.LatencyCost > 0 {
		if l.clock != nil {
			l.clock.Advance(l.cfg.LatencyCost)
		}
		l.logf("latency %s #%d +%v", dir, n, l.cfg.LatencyCost)
	}
	if reorderRoll < l.cfg.Reorder && len(d.queue) > 0 {
		// Deliver ahead of the most recently queued frame. Reordering
		// never holds a frame back (the synchronous protocol would
		// deadlock waiting for it), it only jumps the queue.
		d.queue = append(d.queue, nil)
		copy(d.queue[len(d.queue)-1:], d.queue[len(d.queue)-2:])
		d.queue[len(d.queue)-2] = frame
		l.injected++
		l.logf("reorder %s #%d type=%d", dir, n, frame[0])
	} else {
		d.queue = append(d.queue, frame)
	}
	if dupRoll < l.cfg.Dup {
		d.queue = append(d.queue, append([]byte(nil), frame...))
		l.injected++
		l.logf("dup %s #%d type=%d", dir, n, frame[0])
	}
}

// signalDropLocked raises the one-shot loss error on both directions:
// with a synchronous protocol both sides end up blocked after a loss
// (the receiver waiting for the frame, the sender for its reply), so
// both must observe the timeout. Callers hold l.mu.
func (l *FaultLink) signalDropLocked() {
	l.dirs[AtoB].pendingErr = true
	l.dirs[BtoA].pendingErr = true
	l.cond.Broadcast()
}

func (e *linkEnd) Read(p []byte) (int, error) {
	l := e.l
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.dirs[e.readDir]
	for {
		if len(d.rbuf) > 0 {
			n := copy(p, d.rbuf)
			d.rbuf = d.rbuf[n:]
			return n, nil
		}
		if len(d.queue) > 0 {
			d.rbuf = d.queue[0]
			d.queue = d.queue[1:]
			continue
		}
		if d.pendingErr {
			d.pendingErr = false
			return 0, fmt.Errorf("%w: direction %s", ErrLinkDropped, e.readDir)
		}
		if l.closed {
			return 0, io.EOF
		}
		if d.partitioned {
			return 0, fmt.Errorf("%w: direction %s partitioned", ErrLinkDropped, e.readDir)
		}
		l.cond.Wait()
	}
}

// Close tears down the whole link: blocked readers drain what is
// buffered and then see EOF.
func (e *linkEnd) Close() error {
	e.l.mu.Lock()
	e.l.closed = true
	e.l.cond.Broadcast()
	e.l.mu.Unlock()
	return nil
}

// Partition cuts one direction: frames written into it are dropped
// and reads against it fail fast, until Heal.
func (l *FaultLink) Partition(dir LinkDir) {
	l.mu.Lock()
	l.dirs[dir].partitioned = true
	l.logf("partition %s", dir)
	l.signalDropLocked()
	l.mu.Unlock()
}

// PartitionBoth cuts the link symmetrically.
func (l *FaultLink) PartitionBoth() {
	l.mu.Lock()
	l.dirs[AtoB].partitioned = true
	l.dirs[BtoA].partitioned = true
	l.logf("partition both")
	l.signalDropLocked()
	l.mu.Unlock()
}

// Heal reopens both directions and clears any unobserved loss errors;
// the endpoints re-handshake from here.
func (l *FaultLink) Heal() {
	l.mu.Lock()
	for _, d := range l.dirs {
		d.partitioned = false
		d.pendingErr = false
		d.partitionAt = 0
	}
	l.logf("heal")
	l.cond.Broadcast()
	l.mu.Unlock()
}

// DrainPending discards everything buffered in both directions —
// queued frames, half-read frame bytes, and half-written partial
// frames. A harness calls it between tearing a connection down and
// re-handshaking, so a stale hello-ack left over from a failed attempt
// cannot satisfy the next handshake while the serving side is dead.
func (l *FaultLink) DrainPending() {
	l.mu.Lock()
	for _, d := range l.dirs {
		d.queue = nil
		d.rbuf = nil
		d.wpend = nil
	}
	l.logf("drain")
	l.mu.Unlock()
}

// Partitioned reports whether either direction is currently cut.
func (l *FaultLink) Partitioned() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirs[AtoB].partitioned || l.dirs[BtoA].partitioned
}

// DropFrames scripts deterministic drops: frames numbered from..to
// (inclusive, 1-based, per direction) vanish in flight.
func (l *FaultLink) DropFrames(dir LinkDir, from, to int64) {
	l.mu.Lock()
	l.dirs[dir].scripts = append(l.dirs[dir].scripts, linkScript{from: from, to: to})
	l.mu.Unlock()
}

// PartitionAt scripts a partition that begins when frame number n
// (1-based) crosses the given direction; that frame is the first one
// lost.
func (l *FaultLink) PartitionAt(dir LinkDir, n int64) {
	l.mu.Lock()
	l.dirs[dir].partitionAt = n
	l.mu.Unlock()
}

// ClearScripts removes all scripted drops.
func (l *FaultLink) ClearScripts() {
	l.mu.Lock()
	l.dirs[AtoB].scripts = nil
	l.dirs[BtoA].scripts = nil
	l.mu.Unlock()
}

// FrameCount reports frames written into a direction so far.
func (l *FaultLink) FrameCount(dir LinkDir) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dirs[dir].frames
}

// DroppedCount reports frames lost (injected, scripted, or
// partitioned).
func (l *FaultLink) DroppedCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// InjectedCount reports faults injected by probability or script
// (drops, dups, reorders, corruptions), excluding partition losses.
func (l *FaultLink) InjectedCount() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.injected
}

// Ops returns a copy of the fault op log.
func (l *FaultLink) Ops() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.ops...)
}

func (l *FaultLink) logf(format string, args ...any) {
	l.ops = append(l.ops, fmt.Sprintf(format, args...))
}