package objstore

import "fmt"

// AuditReachability cross-checks the block index against every retained
// record: each block referenced by any record must exist with a
// refcount equal to the number of references, no block may exist with
// zero references (unreachable blocks must have been freed), and no
// free-list entry may alias a live block or appear twice. The chaos and
// space harnesses run this after every reclamation — a refcount drift
// here is how merge-forward GC bugs first become visible, long before
// they corrupt a restore.
func (s *Store) AuditReachability() error {
	s.mu.Lock()
	defer s.mu.Unlock()

	want := make(map[Hash]int32, len(s.blocks))
	for key, rec := range s.records {
		for idx, ref := range rec.Pages {
			be, ok := s.blocks[ref.Hash]
			if !ok {
				return fmt.Errorf("objstore: audit: record %d@%d page %d references freed block %x",
					key.OID, key.Epoch, idx, ref.Hash[:4])
			}
			if be.ref.Off != ref.Off {
				return fmt.Errorf("objstore: audit: record %d@%d page %d holds offset %d for block %x, index says %d",
					key.OID, key.Epoch, idx, ref.Off, ref.Hash[:4], be.ref.Off)
			}
			want[ref.Hash]++
		}
	}
	for h, be := range s.blocks {
		if w := want[h]; be.refs != w {
			return fmt.Errorf("objstore: audit: block %x at %d has refcount %d, %d references reachable",
				h[:4], be.ref.Off, be.refs, w)
		}
		if be.refs <= 0 {
			return fmt.Errorf("objstore: audit: unreachable block %x at %d not freed", h[:4], be.ref.Off)
		}
	}

	live := make(map[int64]Hash, len(s.blocks))
	for h, be := range s.blocks {
		live[be.ref.Off] = h
	}
	seen := make(map[int64]bool, len(s.freeList))
	for _, off := range s.freeList {
		if h, ok := live[off]; ok {
			return fmt.Errorf("objstore: audit: free-list offset %d aliases live block %x", off, h[:4])
		}
		if seen[off] {
			return fmt.Errorf("objstore: audit: offset %d double-freed", off)
		}
		seen[off] = true
	}

	// Every retained manifest's own-epoch entries must resolve to live
	// records (merge-forward re-keys idle objects to the heir epoch, so
	// entries for other epochs may legitimately be stale).
	for g, ms := range s.manifests {
		for _, m := range ms {
			for _, rk := range m.Records {
				if rk.Epoch != m.Epoch {
					continue
				}
				if _, ok := s.records[rk]; !ok {
					return fmt.Errorf("objstore: audit: manifest %d@%d lists missing record %d@%d",
						g, m.Epoch, rk.OID, rk.Epoch)
				}
			}
		}
	}
	return nil
}
