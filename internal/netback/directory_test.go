package netback

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"aurora/internal/core"
)

// Scale-churn coverage for the directory's per-(src,dst,stream) wire
// pool: an autoscaler admitting one store while another drains drives
// Link, Reconnect, and Drop against the same wires from concurrent
// control paths. The per-wire mutex must keep every handshake dance
// whole — run under -race, this is the regression net for the
// previously placer-serialized pool.

func dirNode(name string) *core.StoreNode {
	m := newMachine()
	return &core.StoreNode{Name: name, Domain: "rack-" + name, O: m.o}
}

// TestDirectoryConcurrentChurn hammers a small fleet's wire pool from
// many goroutines: per-key linkers and reconnecters race a dropper,
// mimicking AddStore/RemoveStore churn. Every Link must return a
// usable wire or a clean error, no handshake may interleave with a
// teardown, and the pool must end functional for every key.
func TestDirectoryConcurrentChurn(t *testing.T) {
	d := NewDirectory(LinkFaultConfig{})
	nodes := []*core.StoreNode{dirNode("s0"), dirNode("s1"), dirNode("s2"), dirNode("s3")}

	type key struct {
		src, dst *core.StoreNode
		stream   uint64
	}
	var keys []key
	for i, src := range nodes {
		for j, dst := range nodes {
			if i == j {
				continue
			}
			keys = append(keys, key{src, dst, uint64(100 + i*10 + j)})
		}
	}

	errc := make(chan error, 1024)
	var wg sync.WaitGroup
	const rounds = 20
	for _, k := range keys {
		k := k
		// Two linkers, one reconnecter, one dropper per wire: the
		// worst interleaving scale churn produces.
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < rounds; i++ {
					if _, _, err := d.Link(k.src, k.dst, k.stream); err != nil {
						errc <- fmt.Errorf("link %s->%s/%d: %w", k.src.Name, k.dst.Name, k.stream, err)
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				err := d.Reconnect(k.src, k.dst, k.stream)
				// A reconnect racing a drop legitimately finds no wire;
				// any other failure is a broken handshake.
				if err != nil && !errors.Is(err, ErrDisconnected) {
					errc <- fmt.Errorf("reconnect %s->%s/%d: %w", k.src.Name, k.dst.Name, k.stream, err)
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds/4; i++ {
				d.Drop(k.src, k.dst, k.stream)
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// The pool must end functional: every key links and serves.
	for _, k := range keys {
		if _, _, err := d.Link(k.src, k.dst, k.stream); err != nil {
			t.Fatalf("post-churn link %s->%s/%d: %v", k.src.Name, k.dst.Name, k.stream, err)
		}
	}
	if got := d.Wires(); got != len(keys) {
		t.Fatalf("pool holds %d wires after churn, want %d", got, len(keys))
	}
	for _, k := range keys {
		d.Drop(k.src, k.dst, k.stream)
	}
	if got := d.Wires(); got != 0 {
		t.Fatalf("pool holds %d wires after teardown, want 0", got)
	}
}
