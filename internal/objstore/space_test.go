package objstore

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"aurora/internal/storage"
)

// TestGCInterleavingProperty drives random interleavings of the three
// operations that move blocks between live, shared, and free —
// PutRecord (new epochs), DropEpoch (merge-forward reclamation), and
// Scrub — and audits full reachability after every single step:
// recomputed refcounts must match stored ones, no block may sit at
// zero references, and the free list must stay alias-free. Any
// ordering that corrupts accounting fails here with the op trace.
func TestGCInterleavingProperty(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			s := testStore(t)
			const group = 1
			var trace []string
			step := func(op string) {
				trace = append(trace, op)
				if err := s.AuditReachability(); err != nil {
					t.Fatalf("audit failed after %v: %v", trace, err)
				}
			}

			epoch := uint64(0)
			mint := func() {
				epoch++
				var keys []RecordKey
				full := epoch == 1 || rng.Intn(8) == 0
				for oid := uint64(1); oid <= 4; oid++ {
					if !full && rng.Intn(3) == 0 {
						continue // object idle this epoch
					}
					pages := map[int64][]byte{}
					for pg := 0; pg < 1+rng.Intn(3); pg++ {
						// Low-entropy fill exercises dedup: distinct
						// epochs often share block content.
						pages[int64(pg)] = page(byte(rng.Intn(6)))
					}
					if _, err := s.PutRecord(group, oid, epoch, 1, full, []byte{byte(oid)}, pages, nil); err != nil {
						t.Fatalf("put oid %d epoch %d: %v", oid, epoch, err)
					}
					keys = append(keys, RecordKey{group, oid, epoch})
				}
				prev := epoch - 1
				if len(s.Manifests(group)) == 0 {
					prev = 0
				}
				s.PutManifest(&Manifest{Group: group, Epoch: epoch, Prev: prev, Records: keys})
				step(fmt.Sprintf("mint(%d)", epoch))
			}

			drop := func() {
				ms := s.Manifests(group)
				if len(ms) < 2 {
					return
				}
				victim := ms[rng.Intn(len(ms)-1)].Epoch // never the newest
				if err := s.DropEpoch(group, victim); err != nil {
					t.Fatalf("drop epoch %d: %v", victim, err)
				}
				step(fmt.Sprintf("drop(%d)", victim))
			}

			scrub := func() {
				if _, err := s.Scrub(nil); err != nil {
					t.Fatalf("scrub: %v", err)
				}
				step("scrub")
			}

			mint() // seed the lineage with a full epoch
			for i := 0; i < 300; i++ {
				switch rng.Intn(10) {
				case 0, 1, 2, 3:
					mint()
				case 4, 5, 6:
					drop()
				default:
					scrub()
				}
			}

			// Whatever epochs survived must still resolve: every object
			// present in the newest manifest's history chain reads back.
			ms := s.Manifests(group)
			if len(ms) == 0 {
				t.Fatal("no manifests survived")
			}
			newest := ms[len(ms)-1].Epoch
			for oid := uint64(1); oid <= 4; oid++ {
				pages, _, err := s.ResolvePages(group, oid, newest)
				if err != nil {
					t.Fatalf("resolving oid %d at epoch %d after %v: %v", oid, newest, trace[len(trace)-5:], err)
				}
				if len(pages) == 0 {
					t.Fatalf("oid %d resolved to no pages at epoch %d", oid, newest)
				}
			}
		})
	}
}

// TestStatsLiveAndReclaimable checks the two Stats fields the pressure
// ladder decides by: LiveBytes tracks referenced blocks plus metadata,
// and ReclaimableBytes counts freed-but-resident blocks until
// ReleaseSpace TRIMs them back to the device.
func TestStatsLiveAndReclaimable(t *testing.T) {
	s := testStore(t)
	s.PutRecord(1, 1, 1, 1, true, []byte("meta"), map[int64][]byte{0: page(1), 1: page(2)}, nil)
	s.PutManifest(&Manifest{Group: 1, Epoch: 1, Records: []RecordKey{{1, 1, 1}}})
	s.PutRecord(1, 1, 2, 1, false, []byte("meta"), map[int64][]byte{1: page(3)}, nil)
	s.PutManifest(&Manifest{Group: 1, Epoch: 2, Prev: 1, Records: []RecordKey{{1, 1, 2}}})

	st := s.Stats()
	if st.LiveBytes != st.BlockBytes+st.MetaBytes {
		t.Fatalf("LiveBytes %d != BlockBytes %d + MetaBytes %d", st.LiveBytes, st.BlockBytes, st.MetaBytes)
	}
	if st.BlockBytes != 3*BlockSize {
		t.Fatalf("BlockBytes %d, want %d", st.BlockBytes, 3*BlockSize)
	}
	if st.ReclaimableBytes != 0 {
		t.Fatalf("ReclaimableBytes %d before any drop", st.ReclaimableBytes)
	}

	if err := s.DropEpoch(1, 1); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	// Epoch 1's page 1 block was shadowed by epoch 2 and is now free
	// (its metadata extent too); page 0 merged forward and stays live.
	if st.ReclaimableBytes == 0 {
		t.Fatal("nothing reclaimable after dropping a shadowed epoch")
	}
	freed := s.ReleaseSpace()
	if freed != st.ReclaimableBytes {
		t.Fatalf("ReleaseSpace freed %d, want %d", freed, st.ReclaimableBytes)
	}
	if got := s.Stats().ReclaimableBytes; got != 0 {
		t.Fatalf("ReclaimableBytes %d after TRIM, want 0", got)
	}
}

// TestControlPlaneReserve fills a bounded device with checkpoint data
// until the store refuses with ErrStoreFull, then verifies the refusal
// is typed, the dedup index was not poisoned, and — the point of the
// reserve — Sync can still publish the index and superblock.
func TestControlPlaneReserve(t *testing.T) {
	clock := storage.NewClock()
	params := storage.ParamsOptaneNVMe
	params.Capacity = 64 * BlockSize
	s := Create(storage.NewMemDevice(params, clock), clock)

	var putErr error
	epoch := uint64(0)
	for epoch < 256 {
		epoch++
		_, putErr = s.PutRecord(1, 1, epoch, 1, epoch == 1, nil,
			map[int64][]byte{0: page(byte(epoch)), 1: page(byte(epoch + 100))}, nil)
		if putErr != nil {
			break
		}
		prev := epoch - 1
		s.PutManifest(&Manifest{Group: 1, Epoch: epoch, Prev: prev, Records: []RecordKey{{1, 1, epoch}}})
	}
	if putErr == nil {
		t.Fatal("device never filled")
	}
	if !errors.Is(putErr, ErrStoreFull) || !errors.Is(putErr, storage.ErrOutOfSpace) {
		t.Fatalf("refusal not typed: %v", putErr)
	}
	if err := s.AuditReachability(); err != nil {
		t.Fatalf("failed put poisoned accounting: %v", err)
	}
	// The control plane must still get through on the held-back tail.
	if err := s.Sync(); err != nil {
		t.Fatalf("sync on a full device: %v", err)
	}
	// And after reclamation the data plane comes back.
	ms := s.Manifests(1)
	for _, m := range ms[:len(ms)-1] {
		if err := s.DropEpoch(1, m.Epoch); err != nil {
			t.Fatal(err)
		}
	}
	s.ReleaseSpace()
	if _, err := s.PutRecord(1, 1, epoch, 1, true, nil, map[int64][]byte{0: page(200)}, nil); err != nil {
		t.Fatalf("put after reclamation: %v", err)
	}
}
