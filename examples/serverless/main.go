// Serverless: warm starts, scale-out, and function density (§4).
//
// A function runtime container is cold-booted once and checkpointed.
// Every deployed function is a small delta over that image; invoking a
// function restores its checkpoint — a sub-millisecond warm start —
// and the object store's dedup lets one machine hold the images of
// many functions at a tiny marginal cost.
//
//	go run ./examples/serverless
package main

import (
	"fmt"
	"log"

	"aurora/internal/apps/faas"
	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

func main() {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	orch := core.NewOrchestrator(k)
	objs := objstore.Create(storage.NewOptaneArray(4, clock), clock)
	store := core.NewStoreBackend(objs, k.Mem, clock)
	mem := core.NewMemoryBackend(k.Mem, 8)

	rt := faas.NewRuntime(orch, store, mem)

	// Cold-boot the runtime once; this is the slow path that warm
	// starts avoid.
	coldFrom := clock.Now()
	if _, err := rt.BuildBase(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("runtime image built (cold boot cost %s)\n", storage.Micros(clock.Now()-coldFrom))

	// Deploy several functions: each is a delta over the base image.
	before := objs.Stats()
	for i := 0; i < 8; i++ {
		name := fmt.Sprintf("fn-%d", i)
		if _, err := rt.Deploy(name, []byte("config for "+name)); err != nil {
			log.Fatal(err)
		}
	}
	after := objs.Stats()
	fmt.Printf("deployed 8 functions: store grew %d blocks (runtime image alone is %d blocks)\n",
		after.Blocks-before.Blocks, before.Blocks)
	fmt.Printf("dedup hits so far: %d\n\n", after.DedupHits)

	// Warm starts: restore-from-image invocation.
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("fn-%d", i)
		result, bd, err := rt.Invoke(name, uint64(10+i), core.RestoreOpts{Lazy: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("warm invoke %s(arg=%d) = %d   restore %s (memory state %s, metadata %s)\n",
			name, 10+i, result, storage.Micros(bd.Total),
			storage.Micros(bd.MemoryState), storage.Micros(bd.MetadataState))
	}

	// Scale-out: the same function restored repeatedly.
	fmt.Println()
	for i := 0; i < 3; i++ {
		result, bd, err := rt.Invoke("fn-0", uint64(100+i), core.RestoreOpts{Lazy: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("scale-out instance %d: fn-0(%d) = %d in %s\n",
			i, 100+i, result, storage.Micros(bd.Total))
	}

	// Compare with a cold start.
	fmt.Println()
	coldFrom = clock.Now()
	result, err := rt.ColdStart(42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold start: f(42) = %d in %s — the path warm starts eliminate\n",
		result, storage.Micros(clock.Now()-coldFrom))
	fmt.Println("\nserverless OK")
}
