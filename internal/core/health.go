package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"aurora/internal/storage"
)

// This file implements per-backend health tracking for the flush
// pipeline. A healthy backend that fails a flush is retried with
// exponential backoff (charged to the virtual clock); if it keeps
// failing it degrades, and the group enters degraded durability mode:
// as long as at least one healthy non-ephemeral backend accepts each
// epoch, g.durable keeps advancing while the sick backend accumulates
// a catch-up queue of missed images. Probes drain that queue in epoch
// order once the backend recovers (automatic resync); Orchestrator.
// Resync forces the drain. See DESIGN.md §"Failure model & recovery".

// HealthState is one backend's position in the
// healthy → degraded → down ladder.
type HealthState int

const (
	// BackendHealthy: flushes succeed; failures retry inline.
	BackendHealthy HealthState = iota
	// BackendDegraded: recent flushes failed; new epochs queue for
	// catch-up and every flush attempt doubles as a recovery probe.
	BackendDegraded
	// BackendDown: repeated consecutive failures; most epochs queue
	// without touching the backend, with only periodic probes.
	BackendDown
)

func (s HealthState) String() string {
	switch s {
	case BackendHealthy:
		return "healthy"
	case BackendDegraded:
		return "degraded"
	case BackendDown:
		return "down"
	default:
		return fmt.Sprintf("HealthState(%d)", int(s))
	}
}

// ErrBackendDown is wrapped into flush errors when an epoch was queued
// against a down backend without an attempt (or the attempt itself hit
// the down device). Callers select on it with errors.Is.
var ErrBackendDown = errors.New("core: backend down")

// PartitionAware is implemented by backends whose failures mean "the
// network between us is broken", not "the backend is broken" — the
// replica on the far side is presumed alive and holding everything it
// acked. Such a backend is capped at degraded, never marked down: a
// partition heals, and every epoch queues for catch-up with the
// backend probed on each epoch so the hello/hello-ack resume
// handshake reconnects as soon as the link returns.
type PartitionAware interface {
	// Partitions counts connection-loss events observed so far.
	Partitions() int64
}

// downState returns the deepest health state a failing backend may
// sink to: down in general, degraded for partition-aware backends and
// for out-of-space failures. ENOSPC means the device is full, not
// broken — reclamation (or operator GC) brings it back, and a down
// mark would stop the very probes that notice the space returning.
func downState(b Backend, err error) HealthState {
	if _, ok := b.(PartitionAware); ok {
		return BackendDegraded
	}
	if errors.Is(err, storage.ErrOutOfSpace) {
		return BackendDegraded
	}
	return BackendDown
}

// Health policy defaults, overridable per Orchestrator.
const (
	defaultFlushRetries = 3                      // extra attempts per flush
	defaultBackoffBase  = 100 * time.Microsecond // first retry delay, doubles
	defaultDownAfter    = 5                      // consecutive failed epochs → down
	downProbeEvery      = 4                      // probe a down backend every Nth epoch
	resyncRounds        = 8                      // Resync retry rounds per backend
)

func (o *Orchestrator) flushRetries() int {
	if o.FlushRetries > 0 {
		return o.FlushRetries
	}
	return defaultFlushRetries
}

func (o *Orchestrator) downAfter() int {
	if o.DownAfter > 0 {
		return o.DownAfter
	}
	return defaultDownAfter
}

// backendHealth is one backend's health record within one group. All
// fields are guarded by the group's healthMu, which is never held
// across backend I/O.
type backendHealth struct {
	state       HealthState
	consecFails int      // consecutive epochs that failed all attempts
	probing     bool     // a worker is currently probing/draining this backend
	skips       int      // epochs queued while down, for probe pacing
	pending     []*Image // catch-up queue of missed epochs, oldest first
	// resynced records epochs a probe replayed from the catch-up queue
	// whose pipeline jobs are still stalled: their foreground retry
	// must not re-deliver. Entries are consumed by the retry or pruned
	// once retired.
	resynced map[uint64]bool
	lastErr  error
	retries  int64 // flush attempts beyond the first, cumulative
	resyncs  int64 // epochs replayed from the catch-up queue
}

// queueLocked adds an image to the catch-up queue, keeping it sorted
// by epoch and replacing rather than duplicating a re-delivery.
func (h *backendHealth) queueLocked(img *Image) {
	for i, have := range h.pending {
		if have.Epoch == img.Epoch {
			h.pending[i] = img
			return
		}
	}
	h.pending = append(h.pending, img)
	sort.Slice(h.pending, func(i, j int) bool { return h.pending[i].Epoch < h.pending[j].Epoch })
}

// BackendHealthInfo is the externally visible health snapshot of one
// backend (orchestrator stats, `sls ps` HEALTH column).
type BackendHealthInfo struct {
	Name    string
	State   HealthState
	Pending int   // catch-up queue depth (missed epochs)
	Retries int64 // extra flush attempts so far
	Resyncs int64 // epochs replayed after recovery
	// Partitions and CatchUp surface a partition-aware backend's link
	// history: connection losses, and epochs replayed to it after
	// heals (zero for ordinary backends).
	Partitions int64
	CatchUp    int64
	LastErr    string
	// Space pressure, for store backends with a reclaimer attached:
	// the device-usage fraction, epochs reclaimed by retention GC, and
	// checkpoints the group shed under admission control.
	Usage    float64
	Reclaims int64
	Sheds    int64
}

// healthOf returns (creating on demand) the health record for b.
func (g *Group) healthOf(b Backend) *backendHealth {
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	if g.health == nil {
		g.health = make(map[Backend]*backendHealth)
	}
	h := g.health[b]
	if h == nil {
		h = &backendHealth{}
		g.health[b] = h
	}
	return h
}

// Health reports every attached backend's health, in attach order.
func (g *Group) Health() []BackendHealthInfo {
	backends := g.Backends()
	out := make([]BackendHealthInfo, 0, len(backends))
	for _, b := range backends {
		h := g.healthOf(b)
		g.healthMu.Lock()
		info := BackendHealthInfo{
			Name:    b.Name(),
			State:   h.state,
			Pending: len(h.pending),
			Retries: h.retries,
			Resyncs: h.resyncs,
		}
		if h.lastErr != nil {
			info.LastErr = h.lastErr.Error()
		}
		if pa, ok := b.(PartitionAware); ok {
			info.Partitions = pa.Partitions()
			info.CatchUp = h.resyncs
		}
		g.healthMu.Unlock()
		if sb, ok := b.(*StoreBackend); ok && sb.rec != nil {
			_, _, info.Usage = sb.rec.Usage()
			info.Reclaims = sb.rec.Stats().EpochsReclaimed
			sheds, _ := g.Sheds()
			info.Sheds = sheds
		}
		out = append(out, info)
	}
	return out
}

// attemptFlush delivers img to b with inline retries and exponential
// backoff. The backoff is charged to a detached clock lane — the sick
// backend burns its own time, not the group's foreground timeline —
// and folded into the returned duration so synchronous callers merge
// it back.
func (o *Orchestrator) attemptFlush(b Backend, img *Image, retries int) (time.Duration, int, error) {
	return o.attemptFlushOn(b, img, retries, nil)
}

// attemptFlushOn is attemptFlush with the retry lane seeded from an
// explicit base clock — the shard worker's flush lane for fleet
// dispatch, the kernel clock when base is nil.
func (o *Orchestrator) attemptFlushOn(b Backend, img *Image, retries int, base *storage.Clock) (time.Duration, int, error) {
	lane := o.laneFor(base)
	target := b
	if lb, ok := b.(LaneBackend); ok {
		target = lb.WithLane(lane)
	}
	var total time.Duration
	backoff := defaultBackoffBase
	attempts := 0
	for {
		attempts++
		d, err := target.Flush(img)
		total += d
		if err == nil {
			return total, attempts, nil
		}
		if attempts > retries {
			return total, attempts, err
		}
		lane.Advance(backoff)
		total += backoff
		backoff *= 2
	}
}

// flushBackend delivers one image to one backend under the health
// state machine. It returns (modeled duration, deferred, error):
// deferred means the epoch went to the backend's catch-up queue
// instead of (or in addition to) the device — the epoch may still
// retire if a healthy peer holds it. force (foreground Sync) probes a
// down backend unconditionally; background flushes pace their probes.
func (o *Orchestrator) flushBackend(g *Group, b Backend, img *Image, force bool) (time.Duration, bool, error) {
	return o.flushBackendOn(g, b, img, force, nil)
}

// flushBackendOn is flushBackend charging device time to lanes seeded
// from base (nil = the kernel clock).
func (o *Orchestrator) flushBackendOn(g *Group, b Backend, img *Image, force bool, base *storage.Clock) (time.Duration, bool, error) {
	h := g.healthOf(b)

	g.healthMu.Lock()
	if h.resynced[img.Epoch] {
		// A probe already replayed exactly this epoch from the
		// catch-up queue (a stalled pipeline entry being retried after
		// recovery): nothing left to do.
		delete(h.resynced, img.Epoch)
		g.healthMu.Unlock()
		return 0, false, nil
	}
	if h.state != BackendHealthy || len(h.pending) > 0 {
		probe := !h.probing
		if probe && h.state == BackendDown && !force {
			// A down backend is mostly left alone: queue and skip,
			// probing only every few epochs.
			h.skips++
			probe = h.skips%downProbeEvery == 0
		}
		if !probe {
			h.queueLocked(img)
			err := fmt.Errorf("%w: epoch %d queued for catch-up", ErrBackendDown, img.Epoch)
			g.healthMu.Unlock()
			return 0, true, err
		}
		h.probing = true
		g.healthMu.Unlock()
		return o.probeAndResync(g, h, b, img, base)
	}
	g.healthMu.Unlock()

	dur, attempts, err := o.attemptFlushOn(b, img, o.flushRetries(), base)
	if err != nil && errors.Is(err, storage.ErrOutOfSpace) {
		// The store ran out of space mid-flush. Space pressure is a
		// condition, not a fault: trigger emergency reclamation and — if
		// it freed anything — deliver the epoch again. The failed write
		// left no partial state behind (the store registers records and
		// publishes superblocks only after their bytes land), so the
		// retry is a clean re-delivery.
		if o.emergencyReclaim(b) {
			var dur2 time.Duration
			var attempts2 int
			dur2, attempts2, err = o.attemptFlushOn(b, img, o.flushRetries(), base)
			dur += dur2
			attempts += attempts2
		}
	}
	fenced := err != nil && noteFence(g, err)
	g.healthMu.Lock()
	defer g.healthMu.Unlock()
	h.retries += int64(attempts - 1)
	if err == nil {
		h.consecFails = 0
		h.lastErr = nil
		return dur, false, nil
	}
	if fenced {
		// The backend rejected our store generation: the group is a
		// stale primary, not the backend sick. Queuing the epoch would
		// retry a flush that can never succeed.
		h.lastErr = err
		return dur, false, err
	}
	// All attempts failed: degrade and queue the epoch for catch-up.
	h.consecFails++
	h.lastErr = err
	h.state = BackendDegraded
	if h.consecFails >= o.downAfter() {
		h.state = downState(b, err)
	}
	h.queueLocked(img)
	return dur, true, err
}

// probeAndResync drains a sick backend's catch-up queue in epoch
// order, then delivers img (nil during an explicit Resync). Success
// all the way through marks the backend healthy again. The caller must
// have set h.probing; it is cleared on return.
func (o *Orchestrator) probeAndResync(g *Group, h *backendHealth, b Backend, img *Image, base *storage.Clock) (time.Duration, bool, error) {
	defer func() {
		g.healthMu.Lock()
		h.probing = false
		g.healthMu.Unlock()
	}()

	var total time.Duration
	delivered := img == nil

	fail := func(next *Image, err error) {
		if noteFence(g, err) {
			// Fenced: drop the rejected epoch (it is divergent and can
			// never be delivered) instead of requeueing it forever.
			g.healthMu.Lock()
			h.lastErr = err
			g.healthMu.Unlock()
			return
		}
		g.healthMu.Lock()
		if next != nil {
			h.queueLocked(next)
		}
		if img != nil {
			h.queueLocked(img)
		}
		h.consecFails++
		h.lastErr = err
		if h.state == BackendHealthy {
			h.state = BackendDegraded
		}
		if h.consecFails >= o.downAfter() {
			h.state = downState(b, err)
		}
		g.healthMu.Unlock()
	}

	// deliver retries one catch-up image, running emergency reclamation
	// between attempts when the store reports out of space.
	deliver := func(target *Image) (time.Duration, int, error) {
		dur, attempts, err := o.attemptFlushOn(b, target, o.flushRetries(), base)
		if err != nil && errors.Is(err, storage.ErrOutOfSpace) && o.emergencyReclaim(b) {
			dur2, attempts2, err2 := o.attemptFlushOn(b, target, o.flushRetries(), base)
			dur += dur2
			attempts += attempts2
			err = err2
		}
		return dur, attempts, err
	}

	// Replay missed epochs oldest-first. The queue may grow while we
	// drain (other workers defer onto a probing backend), so re-check
	// each round.
	for {
		g.healthMu.Lock()
		var next *Image
		if len(h.pending) > 0 {
			next = h.pending[0]
			h.pending = h.pending[1:]
		}
		g.healthMu.Unlock()
		if next == nil {
			break
		}
		dur, attempts, err := deliver(next)
		total += dur
		g.healthMu.Lock()
		h.retries += int64(attempts - 1)
		g.healthMu.Unlock()
		if err != nil {
			fail(next, err)
			return total, true, err
		}
		g.healthMu.Lock()
		h.resyncs++
		if img == nil || next.Epoch != img.Epoch {
			if h.resynced == nil {
				h.resynced = make(map[uint64]bool)
			}
			h.resynced[next.Epoch] = true
		}
		g.healthMu.Unlock()
		if img != nil && next.Epoch == img.Epoch {
			delivered = true
		} else {
			o.releaseIfQuiescent(g, next)
		}
	}

	if !delivered {
		dur, attempts, err := deliver(img)
		total += dur
		g.healthMu.Lock()
		h.retries += int64(attempts - 1)
		g.healthMu.Unlock()
		if err != nil {
			fail(nil, err)
			return total, true, err
		}
	}

	g.healthMu.Lock()
	if len(h.pending) == 0 { // nothing slipped in while finishing
		h.state = BackendHealthy
		h.consecFails = 0
		h.skips = 0
		h.lastErr = nil
	}
	g.healthMu.Unlock()
	return total, false, nil
}

// releaseIfQuiescent frees a drained catch-up image's frames once
// nothing can still read them: its epoch retired, no ephemeral backend
// retains images, and no other backend's catch-up queue holds it.
func (o *Orchestrator) releaseIfQuiescent(g *Group, img *Image) {
	if img.Released() {
		return
	}
	for _, b := range g.Backends() {
		if b.Ephemeral() {
			return
		}
	}
	if img.Epoch > g.Durable() {
		// Not retired: a stalled flush may still re-deliver this image.
		return
	}
	g.healthMu.Lock()
	for _, h := range g.health {
		for _, p := range h.pending {
			if p == img {
				g.healthMu.Unlock()
				return
			}
		}
	}
	g.healthMu.Unlock()
	img.Release(o.K.Mem)
}

// Resync forces every sick backend of g to replay its catch-up queue
// now, retrying each backend up to resyncRounds times. It returns the
// first backend's terminal error, after attempting all of them.
func (o *Orchestrator) Resync(g *Group) error {
	var firstErr error
	for _, b := range g.Backends() {
		h := g.healthOf(b)
		var lastErr error
		for round := 0; round < resyncRounds; round++ {
			g.healthMu.Lock()
			if h.state == BackendHealthy && len(h.pending) == 0 {
				g.healthMu.Unlock()
				lastErr = nil
				break
			}
			if h.probing {
				// A worker is already draining this backend; let it.
				g.healthMu.Unlock()
				lastErr = nil
				break
			}
			h.probing = true
			g.healthMu.Unlock()
			// Foreground resync: the caller waits for the replay, so the
			// modeled catch-up time (charged to a detached lane inside
			// attemptFlush) merges back into the group's timeline.
			dur, _, err := o.probeAndResync(g, h, b, nil, nil)
			if dur > 0 {
				o.K.Clock.Advance(dur)
			}
			if err != nil {
				lastErr = fmt.Errorf("core: resyncing %s: %w", b.Name(), err)
				continue
			}
			lastErr = nil
			break
		}
		if lastErr != nil && firstErr == nil {
			firstErr = lastErr
		}
	}
	return firstErr
}
