package core

import (
	"strings"
	"testing"

	"aurora/internal/interp"
	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// --- failure injection ---

func TestRestoreCorruptImageFails(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.o.Checkpoint(g, CheckpointOpts{})

	img := g.LastImage()
	// Corrupt one metadata record.
	bad := &Image{
		Group: img.Group, Epoch: img.Epoch, Full: true,
		Memory: img.Memory, Roots: img.Roots,
	}
	for _, m := range img.Meta {
		mm := m
		if m.Kind == kernel.KindProcess {
			mm.Data = []byte{0xff} // truncated garbage
		}
		bad.Meta = append(bad.Meta, mm)
	}
	if _, _, err := r.o.RestoreImage(bad, 0, RestoreOpts{}); err == nil {
		t.Fatal("corrupt process record restored successfully")
	}
}

func TestRestoreMissingVMObjectFails(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.o.Checkpoint(g, CheckpointOpts{})

	img := g.LastImage()
	bad := &Image{
		Group: img.Group, Epoch: img.Epoch, Full: true,
		Meta:   img.Meta,
		Memory: map[uint64]*MemImage{}, // all VM objects missing
		Roots:  img.Roots,
	}
	_, _, err := r.o.RestoreImage(bad, 0, RestoreOpts{})
	if err == nil || !strings.Contains(err.Error(), "missing") {
		t.Fatalf("err = %v, want missing-object failure", err)
	}
}

func TestRestoreUnknownProgramFails(t *testing.T) {
	r := newRig(t)
	p, _ := r.k.Spawn(0, "mystery")
	p.SetProgram(&kernel.FuncProgram{Name: "never-registered",
		Fn: func(*kernel.Kernel, *kernel.Process, *kernel.Thread) error { return nil }})
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	_, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err == nil || !strings.Contains(err.Error(), "no program factory") {
		t.Fatalf("err = %v, want factory failure", err)
	}
}

func TestDecodeImageGarbage(t *testing.T) {
	if _, err := DecodeImage([]byte("not an image"), vm.NewPhysMem(0)); err == nil {
		t.Fatal("garbage image decoded")
	}
	if _, err := DecodeDelta([]byte{0xff, 0xff}, vm.NewPhysMem(0)); err == nil {
		t.Fatal("garbage delta decoded")
	}
}

func TestDecodeImageReleasesFramesOnError(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.k.Run(5)
	r.o.Checkpoint(g, CheckpointOpts{})
	payload := g.LastImage().Encode()

	before := r.k.Mem.Resident()
	// Truncate mid-pages: the decoder must free what it allocated.
	if _, err := DecodeImage(payload[:len(payload)-10], r.k.Mem); err == nil {
		t.Fatal("truncated image decoded")
	}
	if r.k.Mem.Resident() != before {
		t.Fatalf("decoder leaked %d frames", r.k.Mem.Resident()-before)
	}
}

func TestCheckpointEmptyGroupFails(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.k.Exit(p, 0)
	r.k.Reap(p)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err == nil {
		t.Fatal("checkpointing a dead group should fail")
	}
}

func TestRestoreWithoutBackendFails(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	if _, _, err := r.o.Restore(g, 0, RestoreOpts{}); err != ErrNoBackend {
		t.Fatalf("err = %v, want ErrNoBackend", err)
	}
}

func TestGroupDissolutionReleasesGatedOutput(t *testing.T) {
	r := newRig(t)
	srv := spawnCounter(t, r)
	ext, _ := r.k.Spawn(0, "client")
	a, b, _ := r.k.NewSocketPair(srv)
	fdB, _ := srv.FDs.Get(b)
	extFD, _ := ext.FDs.Install(r.k, fdB.File, kernel.ORdWr)

	g, _ := r.o.Persist("srv", srv)
	r.o.Attach(g, r.mem)
	r.o.Checkpoint(g, CheckpointOpts{})
	r.k.Write(srv, a, []byte("held"))
	buf := make([]byte, 8)
	if _, err := r.k.Read(ext, extFD, buf); err != kernel.ErrWouldBlock {
		t.Fatalf("pre-dissolution read err = %v", err)
	}
	// Unpersisting the group ends the consistency obligation: there
	// is no longer a checkpoint that could roll the sender back.
	r.o.Unpersist(g)
	n, err := r.k.Read(ext, extFD, buf)
	if err != nil || string(buf[:n]) != "held" {
		t.Fatalf("post-dissolution read = %q, %v", buf[:n], err)
	}
}

func TestMultiBackendFlushesBoth(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.o.Attach(g, r.mem)
	r.o.Attach(g, r.store)
	r.k.Run(3)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	// Both backends can serve the restore independently.
	if _, _, err := r.mem.Load(g.ID, 0); err != nil {
		t.Fatalf("memory backend: %v", err)
	}
	if _, _, err := r.store.Load(g.ID, 0); err != nil {
		t.Fatalf("store backend: %v", err)
	}
}

func TestStoreBackendHistoryLimit(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, _ := r.o.Persist("app", p)
	r.store.HistoryLimit = 3
	r.o.Attach(g, r.store)
	for i := 0; i < 6; i++ {
		r.k.Run(2)
		if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	ms := r.store.Store().Manifests(g.ID)
	if len(ms) != 3 {
		t.Fatalf("history length = %d, want 3", len(ms))
	}
	// The surviving history still restores (GC merged forward).
	ng, _, err := r.o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	if got := counterValue(np); got != 12 {
		t.Fatalf("restored counter = %d, want 12", got)
	}
}

// --- CPU-state fidelity through the full stack ---

func TestInterpMidLoopCheckpointRestore(t *testing.T) {
	r := newRig(t)
	p, _ := r.k.Spawn(0, "summer")
	// sum 1..N with N big enough that we checkpoint mid-loop.
	var a interp.Asm
	a.Emit(interp.OpLi, 4, 0, 0)         // sum = 0
	a.Emit(interp.OpLi, 5, 0, 1)         // i = 1
	a.Emit(interp.OpLi, 6, 0, 1_000_001) // bound
	loop := a.Len()
	a.Emit(interp.OpAdd, 4, 4, 5)
	a.Emit(interp.OpAddi, 5, 5, 1)
	bne := a.Emit(interp.OpBne, 5, 6, 0)
	a.Patch(bne, uint32(0x0040_0000+loop))
	a.Emit(interp.OpLi, 7, 0, uint32(p.HeapBase()))
	a.Emit(interp.OpSt, 4, 7, 0)
	a.Emit(interp.OpHalt, 0, 0, 0)
	if _, err := interp.Load(r.k, p, a.Code()); err != nil {
		t.Fatal(err)
	}

	g, _ := r.o.Persist("summer", p)
	r.o.Attach(g, r.store)
	r.k.Run(500) // mid-loop
	iBefore := p.Threads[0].Regs.GPR[5]
	if iBefore <= 1 || iBefore >= 1_000_001 {
		t.Fatalf("not mid-loop: i = %d", iBefore)
	}
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	r.k.Run(200) // diverge past the checkpoint

	ng, _, err := r.o.Restore(g, 0, RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := r.k.Process(ng.PIDs()[0])
	nt := np.Threads[0]
	if nt.Regs.GPR[5] != iBefore {
		t.Fatalf("restored i = %d, want %d (exact register state)", nt.Regs.GPR[5], iBefore)
	}
	if nt.Regs.GPR[4] != (iBefore-1)*iBefore/2 {
		t.Fatalf("restored sum inconsistent: %d", nt.Regs.GPR[4])
	}
	// Kill the original so only the restored instance runs to the end.
	r.k.Exit(p, 0)
	r.k.Reap(p)
	for i := 0; i < 40000 && np.State() == kernel.ProcRunning; i++ {
		r.k.Run(1000)
	}
	if np.State() != kernel.ProcZombie {
		t.Fatal("restored program did not finish")
	}
	var b [8]byte
	np.ReadMem(np.HeapBase(), b[:])
	got := uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40
	const want = uint64(1_000_000) * 1_000_001 / 2
	if got != want {
		t.Fatalf("final sum = %d, want %d — execution diverged after restore", got, want)
	}
}
