package kernel

import (
	"sort"
	"sync"
	"sync/atomic"
)

// FD open flags (a subset of the POSIX set).
const (
	ORdOnly = 1 << iota
	OWrOnly
	ORdWr
	ONonBlock
	OCloExec
	OAppend
)

// IOCtx carries the identity of the process performing an I/O and
// whether external consistency is enforced on the descriptor. Objects
// whose writes can cross a persistence-group boundary (pipes, sockets)
// use it to tag buffered data with the writer's checkpoint epoch.
type IOCtx struct {
	Proc *Process
	Ext  bool // external consistency enforced on this descriptor
	// Desc is the open-file description performing the I/O; positional
	// files (the Aurora file system) keep their offset there, exactly
	// where POSIX puts it.
	Desc *FileDesc
}

// OpenFile is the interface of every object a file descriptor can
// reference: pipes, socket endpoints, Aurora file-system files. All of
// them are first-class kernel objects.
type OpenFile interface {
	Object
	ReadFile(ctx IOCtx, p []byte) (int, error)
	WriteFile(ctx IOCtx, p []byte) (int, error)
	CloseFile() error
}

// FileDesc is a shared open-file description: descriptor table entries
// created by dup or inherited across fork point at the same FileDesc
// and therefore share the offset and flags, exactly as POSIX requires.
type FileDesc struct {
	oid   uint64
	Flags int
	File  OpenFile
	// Ext is the per-descriptor external-consistency switch that
	// sls_fdctl() toggles. It defaults to true: output that crosses a
	// persistence-group boundary is buffered until the covering
	// checkpoint is durable.
	Ext    bool
	Offset int64 // used by positional files (slsfs)
	refs   int32
	k      *Kernel
}

// OID implements Object.
func (fd *FileDesc) OID() uint64 { return fd.oid }

// Kind implements Object.
func (fd *FileDesc) Kind() Kind { return KindFileDesc }

// EncodeTo implements Object; the open file travels as a reference.
func (fd *FileDesc) EncodeTo(e *Encoder) {
	e.U64(fd.oid)
	e.I64(int64(fd.Flags))
	e.Bool(fd.Ext)
	e.I64(fd.Offset)
	if fd.File != nil {
		e.U64(fd.File.OID())
	} else {
		e.U64(0)
	}
}

// fdImage is a decoded FileDesc awaiting reference patching.
type fdImage struct {
	OID     uint64
	Flags   int
	Ext     bool
	Offset  int64
	FileOID uint64
}

func decodeFDImage(d *Decoder) (*fdImage, error) {
	fi := &fdImage{
		OID:    d.U64(),
		Flags:  int(d.I64()),
		Ext:    d.Bool(),
		Offset: d.I64(),
	}
	fi.FileOID = d.U64()
	if err := d.Finish("filedesc"); err != nil {
		return nil, err
	}
	return fi, nil
}

// FDTable maps descriptor numbers to open-file descriptions.
type FDTable struct {
	oid uint64
	mu  sync.Mutex
	fds map[int]*FileDesc
}

// NewFDTable creates an empty descriptor table.
func NewFDTable(oid uint64) *FDTable {
	return &FDTable{oid: oid, fds: make(map[int]*FileDesc)}
}

// OID implements Object.
func (t *FDTable) OID() uint64 { return t.oid }

// Kind implements Object.
func (t *FDTable) Kind() Kind { return KindFDTable }

// EncodeTo implements Object: descriptor numbers plus FileDesc OIDs.
// The FileDescs themselves serialize separately so dup'd descriptors
// restore as genuinely shared descriptions.
func (t *FDTable) EncodeTo(e *Encoder) {
	t.mu.Lock()
	defer t.mu.Unlock()
	e.U64(t.oid)
	nums := make([]int, 0, len(t.fds))
	for n := range t.fds {
		nums = append(nums, n)
	}
	sort.Ints(nums)
	e.U64(uint64(len(nums)))
	for _, n := range nums {
		e.I64(int64(n))
		e.U64(t.fds[n].oid)
	}
}

// fdTableImage is a decoded descriptor table awaiting patching.
type fdTableImage struct {
	OID     uint64
	Entries map[int]uint64 // fd number -> FileDesc OID
}

func decodeFDTableImage(d *Decoder) (*fdTableImage, error) {
	ti := &fdTableImage{OID: d.U64(), Entries: make(map[int]uint64)}
	n := d.U64()
	for i := uint64(0); i < n && d.Err() == nil; i++ {
		num := int(d.I64())
		ti.Entries[num] = d.U64()
	}
	if err := d.Finish("fdtable"); err != nil {
		return nil, err
	}
	return ti, nil
}

// Install places an open file at the lowest free descriptor number
// and returns it.
func (t *FDTable) Install(k *Kernel, f OpenFile, flags int) (int, *FileDesc) {
	desc := &FileDesc{oid: k.NextOID(), Flags: flags, File: f, Ext: true, refs: 1, k: k}
	k.register(desc)
	k.refFile(f)
	t.mu.Lock()
	defer t.mu.Unlock()
	n := 0
	for {
		if _, used := t.fds[n]; !used {
			break
		}
		n++
	}
	t.fds[n] = desc
	return n, desc
}

// Get returns the description behind descriptor n.
func (t *FDTable) Get(n int) (*FileDesc, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, ok := t.fds[n]
	if !ok {
		return nil, ErrBadFD
	}
	return fd, nil
}

// Dup duplicates descriptor n onto the lowest free number, sharing the
// description.
func (t *FDTable) Dup(n int) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fd, ok := t.fds[n]
	if !ok {
		return 0, ErrBadFD
	}
	atomic.AddInt32(&fd.refs, 1)
	m := 0
	for {
		if _, used := t.fds[m]; !used {
			break
		}
		m++
	}
	t.fds[m] = fd
	return m, nil
}

// Close removes descriptor n, closing the file when the last
// description reference drops.
func (t *FDTable) Close(n int) error {
	t.mu.Lock()
	fd, ok := t.fds[n]
	if !ok {
		t.mu.Unlock()
		return ErrBadFD
	}
	delete(t.fds, n)
	t.mu.Unlock()
	if atomic.AddInt32(&fd.refs, -1) == 0 && fd.k != nil {
		return fd.k.releaseFile(fd.File)
	}
	return nil
}

// CloseAll closes every descriptor (process exit).
func (t *FDTable) CloseAll() {
	t.mu.Lock()
	fds := t.fds
	t.fds = make(map[int]*FileDesc)
	t.mu.Unlock()
	for _, fd := range fds {
		if atomic.AddInt32(&fd.refs, -1) == 0 && fd.k != nil {
			fd.k.releaseFile(fd.File)
		}
	}
}

// Clone duplicates the table for fork: the child shares every open
// description with the parent.
func (t *FDTable) Clone(oid uint64) *FDTable {
	t.mu.Lock()
	defer t.mu.Unlock()
	nt := NewFDTable(oid)
	for n, fd := range t.fds {
		atomic.AddInt32(&fd.refs, 1)
		nt.fds[n] = fd
	}
	return nt
}

// Numbers lists the open descriptor numbers in order.
func (t *FDTable) Numbers() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]int, 0, len(t.fds))
	for n := range t.fds {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Descs returns the distinct FileDescs referenced by the table.
func (t *FDTable) Descs() []*FileDesc {
	t.mu.Lock()
	defer t.mu.Unlock()
	seen := make(map[uint64]bool)
	var out []*FileDesc
	for _, fd := range t.fds {
		if !seen[fd.oid] {
			seen[fd.oid] = true
			out = append(out, fd)
		}
	}
	return out
}

// restoreInstall places a restored description at an exact number.
func (t *FDTable) restoreInstall(n int, fd *FileDesc) {
	t.mu.Lock()
	t.fds[n] = fd
	t.mu.Unlock()
}

// Read reads from descriptor n on behalf of p.
func (k *Kernel) Read(p *Process, n int, buf []byte) (int, error) {
	fd, err := p.FDs.Get(n)
	if err != nil {
		return 0, err
	}
	if fd.Flags&OWrOnly != 0 {
		return 0, ErrBadFD
	}
	k.Clock.Advance(k.Costs.Syscall)
	return fd.File.ReadFile(IOCtx{Proc: p, Ext: fd.Ext, Desc: fd}, buf)
}

// Write writes to descriptor n on behalf of p.
func (k *Kernel) Write(p *Process, n int, buf []byte) (int, error) {
	fd, err := p.FDs.Get(n)
	if err != nil {
		return 0, err
	}
	if fd.Flags&ORdOnly != 0 {
		return 0, ErrBadFD
	}
	k.Clock.Advance(k.Costs.Syscall)
	return fd.File.WriteFile(IOCtx{Proc: p, Ext: fd.Ext, Desc: fd}, buf)
}

// FDCtl implements the descriptor half of sls_fdctl(): enabling or
// disabling external consistency on one descriptor.
func (k *Kernel) FDCtl(p *Process, n int, ext bool) error {
	fd, err := p.FDs.Get(n)
	if err != nil {
		return err
	}
	fd.Ext = ext
	return nil
}
