package netback

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"net"
	"testing"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// machine is one simulated host.
type machine struct {
	clock *storage.Clock
	k     *kernel.Kernel
	o     *core.Orchestrator
}

func newMachine() *machine {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	return &machine{clock: clock, k: k, o: core.NewOrchestrator(k)}
}

// counter mirrors the core test program.
type counter struct{ addr vm.Addr }

func (c *counter) ProgName() string { return "nb-counter" }
func (c *counter) Snapshot() []byte {
	e := kernel.NewEncoder()
	e.U64(uint64(c.addr))
	return e.Bytes()
}
func (c *counter) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	var b [8]byte
	if err := p.ReadMem(c.addr, b[:]); err != nil {
		return err
	}
	b[0]++
	return p.WriteMem(c.addr, b[:])
}

func init() {
	kernel.RegisterProgram("nb-counter", func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		d := kernel.NewDecoder(state)
		return &counter{addr: vm.Addr(d.U64())}, nil
	})
}

func spawn(t *testing.T, m *machine) (*kernel.Process, *core.Group) {
	t.Helper()
	p, err := m.k.Spawn(0, "app")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	g, err := m.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	return p, g
}

func TestSendRecvSingleImage(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	p, g := spawn(t, src)
	src.o.Attach(g, core.NewMemoryBackend(src.k.Mem, 4))
	p.WriteMem(p.HeapBase()+8, []byte("travels the wire"))
	src.k.Run(7)
	if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}

	pr, pw := io.Pipe()
	sender := NewSender(pw, src.clock)
	recv := NewReceiver(dst.k.Mem, dst.clock)
	done := make(chan error, 1)
	go func() {
		if _, err := sender.SendImage(g.LastImage()); err != nil {
			done <- err
			return
		}
		done <- sender.Close()
		pw.Close()
	}()
	if _, err := recv.Serve(pr); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if sender.SentBytes() == 0 || recv.ReceivedBytes() != sender.SentBytes() {
		t.Fatalf("wire accounting: sent=%d recvd=%d", sender.SentBytes(), recv.ReceivedBytes())
	}

	img, err := recv.Latest(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dst.o.RestoreImage(img, 0, core.RestoreOpts{})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := dst.k.Process(ng.PIDs()[0])
	buf := make([]byte, 16)
	np.ReadMem(np.HeapBase()+8, buf)
	if string(buf) != "travels the wire" {
		t.Fatalf("remote state = %q", buf)
	}
	var c [1]byte
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 7 {
		t.Fatalf("remote counter = %d, want 7", c[0])
	}
}

func TestContinuousReplicationDeltas(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	p, g := spawn(t, src)

	_ = p
	pr, pw := io.Pipe()
	sender := NewSender(pw, src.clock)
	src.o.Attach(g, NewBackend(sender))
	recv := NewReceiver(dst.k.Mem, dst.clock)

	serveDone := make(chan error, 1)
	go func() {
		_, err := recv.Serve(pr)
		serveDone <- err
	}()

	// Each checkpoint streams a delta to the standby.
	for i := 0; i < 5; i++ {
		src.k.Run(3)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the background flushes before hanging up on the standby.
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	sender.Close()
	pw.Close()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}

	// The source machine "fails"; the standby restores the replica.
	img, err := recv.Latest(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dst.o.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := dst.k.Process(ng.PIDs()[0])
	var c [1]byte
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 15 {
		t.Fatalf("standby counter = %d, want 15", c[0])
	}
	// The standby continues where the primary died.
	dst.k.Run(5)
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 20 {
		t.Fatalf("standby did not resume: %d", c[0])
	}
}

func TestLiveMigration(t *testing.T) {
	src := newMachine()
	dst := newMachine()
	p, g := spawn(t, src)
	src.k.Run(9)

	ng, xfer, err := Migrate(src.o, g, dst.o, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	if xfer <= 0 {
		t.Fatal("migration transfer time not modeled")
	}
	// Source is gone.
	if p.State() != kernel.ProcZombie {
		if _, err := src.k.Process(p.PID); err == nil {
			t.Fatal("source process survived migration")
		}
	}
	// Destination continues.
	np, _ := dst.k.Process(ng.PIDs()[0])
	var c [1]byte
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 9 {
		t.Fatalf("migrated counter = %d", c[0])
	}
	dst.k.Run(3)
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 12 {
		t.Fatal("migrated process did not resume")
	}
}

// rawFrame hand-builds a wire frame, optionally with a bogus CRC.
func rawFrame(typ byte, payload []byte, badCRC bool) []byte {
	f := make([]byte, frameHdrSize+len(payload))
	f[0] = typ
	binary.LittleEndian.PutUint64(f[1:9], uint64(len(payload)))
	crc := crc32.Checksum(payload, frameCRC)
	if badCRC {
		crc ^= 0xdeadbeef
	}
	binary.LittleEndian.PutUint32(f[9:13], crc)
	copy(f[frameHdrSize:], payload)
	return f
}

func TestFrameCorruption(t *testing.T) {
	recv := NewReceiver(vm.NewPhysMem(0), storage.NewClock())
	oversized := rawFrame(frameDelta, nil, false)
	binary.LittleEndian.PutUint64(oversized[1:9], 1<<40)
	if _, err := recv.Serve(bytes.NewReader(oversized)); err == nil {
		t.Fatal("oversized frame accepted")
	}
	if _, err := recv.Serve(bytes.NewReader(rawFrame(99, []byte{0}, false))); err == nil {
		t.Fatal("unknown frame type accepted")
	}
	_, err := recv.Serve(bytes.NewReader(rawFrame(frameDelta, []byte{1, 2, 3}, true)))
	if !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("bad CRC err = %v, want ErrCorruptFrame", err)
	}
}

func TestReceiverGroups(t *testing.T) {
	recv := NewReceiver(vm.NewPhysMem(0), storage.NewClock())
	if len(recv.Groups()) != 0 {
		t.Fatal("fresh receiver has groups")
	}
	if _, err := recv.Latest(1); err != core.ErrNoImage {
		t.Fatalf("err = %v", err)
	}
}

func TestBackendInterface(t *testing.T) {
	var buf bytes.Buffer
	b := NewBackend(NewSender(&buf, storage.NewClock()))
	if b.Name() != "remote" || b.Ephemeral() {
		t.Fatal("backend identity wrong")
	}
	if _, _, err := b.Load(1, 0); err != core.ErrNoImage {
		t.Fatalf("Load err = %v", err)
	}
}

func TestReplicationOverRealTCP(t *testing.T) {
	// The same replication path over a real TCP socket: the transport
	// abstraction is an io.ReadWriter, so production deployments use
	// net.Conn exactly like the in-memory pipe used elsewhere.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no loopback networking: %v", err)
	}
	defer ln.Close()

	src := newMachine()
	dst := newMachine()
	_, g := spawn(t, src)

	recv := NewReceiver(dst.k.Mem, dst.clock)
	serveDone := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			serveDone <- err
			return
		}
		defer conn.Close()
		_, err = recv.Serve(conn)
		serveDone <- err
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sender := NewSender(conn, src.clock)
	src.o.Attach(g, NewBackend(sender))

	for i := 0; i < 3; i++ {
		src.k.Run(4)
		if _, err := src.o.Checkpoint(g, core.CheckpointOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the background flushes before hanging up on the standby.
	if err := src.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	sender.Close()
	conn.Close()
	if err := <-serveDone; err != nil {
		t.Fatal(err)
	}

	img, err := recv.Latest(g.ID)
	if err != nil {
		t.Fatal(err)
	}
	ng, _, err := dst.o.RestoreImage(img, 0, core.RestoreOpts{Lazy: true})
	if err != nil {
		t.Fatal(err)
	}
	np, _ := dst.k.Process(ng.PIDs()[0])
	var c [1]byte
	np.ReadMem(np.HeapBase(), c[:])
	if c[0] != 12 {
		t.Fatalf("TCP-replicated counter = %d, want 12", c[0])
	}
}
