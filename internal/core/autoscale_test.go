package core_test

// Unit coverage for core.Autoscaler: window-qualified scale-out with a
// dead warm spare skipped mid-scale-out, hysteresis (no flapping once
// converged), paced rebalance budgets with the per-tick pressure
// re-snapshot and per-lineage cooldown, scale-in completion, both
// rollback paths (ErrNoFeasiblePlacement and mid-drain
// re-pressurization), the drain-abort-then-evacuate regression, and
// ErrScalingInProgress on concurrent manual verbs.

import (
	"errors"
	"testing"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// warmNode builds a StoreNode the way newPlaceRig does, but does not
// admit it — it goes into the autoscaler's warm pool. The node's fault
// device and kernel are registered on the rig so tests can kill it or
// run its workloads after admission.
func (r *placeRig) warmNode(name, domain string, seed int64) *core.StoreNode {
	r.t.Helper()
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	o.FlushWorkers = 1
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock,
		storage.FaultConfig{Seed: seed})
	sn := &core.StoreNode{
		Name:   name,
		Domain: domain,
		O:      o,
		SB:     core.NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock),
		Sup:    core.NewSupervisor(o, core.SupervisorConfig{}),
	}
	r.nodes = append(r.nodes, sn)
	r.fds[name] = fd
	r.kerns[name] = k
	return sn
}

// tickUntil drives the autoscaler until an action (or the budget runs
// out), returning the matching decision.
func tickUntil(t *testing.T, as *core.Autoscaler, budget int, action string) core.ScaleDecision {
	t.Helper()
	for i := 0; i < budget; i++ {
		dec, _ := as.Tick()
		if dec.Action == action {
			return dec
		}
	}
	t.Fatalf("no %q decision within %d ticks; decisions: %+v", action, budget, as.Decisions())
	return core.ScaleDecision{}
}

// TestAutoscalerScaleOut: sustained primary-load pressure admits a
// warm spare; the dead spare ahead of it in the pool is skipped with a
// recorded decision; once the pool is empty further pressure holds.
func TestAutoscalerScaleOut(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{
		stores: 2, domains: 2, seed: 1,
		placer: core.PlacerConfig{PrimaryTarget: 2},
	})
	dead := r.warmNode("warm0", "rack1", 101)
	r.fds["warm0"].Down()
	live := r.warmNode("warm1", "rack0", 102)

	as := core.NewAutoscaler(r.placer, core.AutoscalerConfig{
		Window: 3, Cooldown: 2, MinStores: 2, MaxStores: 6,
	})
	if err := as.AddWarmStore(dead); err != nil {
		t.Fatal(err)
	}
	if err := as.AddWarmStore(live); err != nil {
		t.Fatal(err)
	}

	var pls []*core.Placement
	counters := make(map[uint64]uint64)
	for i := 0; i < 4; i++ {
		pl := r.place()
		pls = append(pls, pl)
		r.load(pl, 5)
	}
	r.freeze(pls, counters)

	out := tickUntil(t, as, 8, "scale-out")
	if out.Store != "warm1" {
		t.Fatalf("scaled out %q, want warm1 (dead spare skipped)", out.Store)
	}
	skipped := false
	for _, dec := range as.Decisions() {
		if dec.Action == "scale-out-skipped" && dec.Store == "warm0" {
			skipped = true
		}
	}
	if !skipped {
		t.Fatal("dead warm spare was not skipped with a recorded decision")
	}
	if live.State() != core.StoreActive {
		t.Fatalf("admitted spare state %s, want active", live.State())
	}

	done := tickUntil(t, as, 24, "scale-out-done")
	if p := r.placer.Utilization(live); p <= 0 {
		t.Fatalf("seeding finished (%s) but the new store carries nothing", done.Reason)
	}
	// Pressure persists (4 primaries cannot sit below 0.85×2 on 3
	// stores) but the pool is empty: the loop must hold, not crash.
	held := false
	for i := 0; i < 8; i++ {
		dec, _ := as.Tick()
		if dec.Action == "hold" && dec.Reason == "warm pool empty" {
			held = true
		}
		if dec.Action == "scale-in-begin" {
			t.Fatalf("flapped into scale-in at tick %d: %+v", dec.Tick, dec)
		}
	}
	if !held {
		t.Fatal("empty warm pool did not surface a hold decision")
	}

	for _, pl := range pls {
		cur, err := r.placer.Lookup(pl.Lineage)
		if err != nil {
			t.Fatalf("lineage %d: %v", pl.Lineage, err)
		}
		if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
			t.Fatalf("lineage %d: counter %d after scale-out, want %d", pl.Lineage, got, counters[pl.Lineage])
		}
	}
	r.assertInvariants()
	if v := as.InvariantViolations(); len(v) != 0 {
		t.Fatalf("autoscaler invariant audit: %v", v)
	}
}

// TestAutoscalerScaleInCompletes: a fleet holding below the low target
// for a full window drains its emptiest store through the paced path
// and fences it, and the cooldown + window reset keep the next
// scale-in from firing immediately.
func TestAutoscalerScaleInCompletes(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{
		stores: 4, domains: 2, seed: 7,
		placer: core.PlacerConfig{PrimaryTarget: 8},
	})
	as := core.NewAutoscaler(r.placer, core.AutoscalerConfig{
		Window: 3, Cooldown: 4, MinStores: 2, DrainBudget: 2,
	})
	var pls []*core.Placement
	counters := make(map[uint64]uint64)
	for i := 0; i < 4; i++ {
		pl := r.place()
		pls = append(pls, pl)
		r.load(pl, 5)
	}
	r.freeze(pls, counters)

	begin := tickUntil(t, as, 8, "scale-in-begin")
	done := tickUntil(t, as, 24, "scale-in-done")
	if begin.Store != done.Store {
		t.Fatalf("began draining %s but finished %s", begin.Store, done.Store)
	}
	n, err := r.placer.Node(done.Store)
	if err != nil {
		t.Fatal(err)
	}
	if n.State() != core.StoreFenced {
		t.Fatalf("drained store state %s, want fenced", n.State())
	}
	// Cooldown + window reset: the very next tick must not begin
	// another drain.
	dec, _ := as.Tick()
	if dec.Action != "hold" {
		t.Fatalf("tick after scale-in-done acted (%s), want hold", dec.Action)
	}
	for _, pl := range pls {
		cur, err := r.placer.Lookup(pl.Lineage)
		if err != nil {
			t.Fatalf("lineage %d: %v", pl.Lineage, err)
		}
		if cur.Primary() == n {
			t.Fatalf("lineage %d still resident on fenced %s", pl.Lineage, n.Name)
		}
		if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
			t.Fatalf("lineage %d: counter %d after scale-in, want %d", pl.Lineage, got, counters[pl.Lineage])
		}
	}
	r.assertInvariants()
	if v := as.InvariantViolations(); len(v) != 0 {
		t.Fatalf("autoscaler invariant audit: %v", v)
	}
}

// TestAutoscalerScaleInRollbackInfeasible: draining the only store of
// its failure domain hits ErrNoFeasiblePlacement on its residents (no
// anti-affine target exists) and the autoscaler rolls the drain back —
// the store is re-admitted active with zero fenced survivors, and a
// subsequent evacuation can still promote onto it (the
// drain-abort-then-evacuate regression).
func TestAutoscalerScaleInRollbackInfeasible(t *testing.T) {
	// 3 stores over 2 domains: store0/store2 in rack0, store1 alone in
	// rack1. Every lineage's replica set spans both racks, so store1's
	// residents have nowhere anti-affine to go.
	r := newPlaceRig(t, placeRigConfig{
		stores: 3, domains: 2, seed: 42,
		placer: core.PlacerConfig{PrimaryTarget: 8},
	})
	as := core.NewAutoscaler(r.placer, core.AutoscalerConfig{
		Window: 3, Cooldown: 2, MinStores: 2,
	})
	var pls []*core.Placement
	counters := make(map[uint64]uint64)
	for i := 0; i < 6; i++ {
		pl := r.place()
		pls = append(pls, pl)
		r.load(pl, 5)
	}
	store1, err := r.placer.Node("store1")
	if err != nil {
		t.Fatal(err)
	}
	if p := r.placer.Utilization(store1); p <= 0 {
		t.Fatal("store1 holds no primaries; the scenario needs residents to strand")
	}
	r.freeze(pls, counters)

	// The automatic picker refuses store1 (sole rack1 store), so the
	// operator forces it — and the loop must save them from it.
	if _, err := as.ScaleIn("store1"); err != nil {
		t.Fatalf("manual scale-in: %v", err)
	}
	// Concurrent manual verbs refuse with the typed error mid-flight.
	if _, err := as.ScaleOut(); !errors.Is(err, core.ErrScalingInProgress) {
		t.Fatalf("ScaleOut mid-drain: err = %v, want ErrScalingInProgress", err)
	}
	if _, err := as.ScaleIn(""); !errors.Is(err, core.ErrScalingInProgress) {
		t.Fatalf("ScaleIn mid-drain: err = %v, want ErrScalingInProgress", err)
	}

	rb := tickUntil(t, as, 8, "scale-in-rollback")
	if rb.Store != "store1" || !errors.Is(rb.Err, core.ErrNoFeasiblePlacement) {
		t.Fatalf("rollback decision %+v, want store1 with ErrNoFeasiblePlacement", rb)
	}
	if store1.State() != core.StoreActive {
		t.Fatalf("rolled-back store state %s, want active", store1.State())
	}
	for _, sn := range r.nodes {
		if sn.State() == core.StoreFenced {
			t.Fatalf("fenced survivor %s after rollback", sn.Name)
		}
	}

	// Drain-abort-then-evacuate: kill the busiest rack0 store; its
	// residents promote onto surviving replicas — which for rack0
	// primaries means the re-admitted store1. The rollback must have
	// left store1's wires handshaken or the promotions stall.
	victim := busiest(pls)
	if victim == store1 {
		t.Fatalf("busiest store is store1; scenario needs a rack0 victim")
	}
	var residents []uint64
	for _, pl := range pls {
		if pl.Primary() == victim {
			residents = append(residents, pl.Lineage)
		}
	}
	r.killAndHeal(victim.Name, residents, false)
	for _, pl := range pls {
		cur, err := r.placer.Lookup(pl.Lineage)
		if err != nil {
			t.Fatalf("lineage %d after evacuation: %v", pl.Lineage, err)
		}
		if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
			t.Fatalf("lineage %d: counter %d after drain-abort-then-evacuate, want %d",
				pl.Lineage, got, counters[pl.Lineage])
		}
	}
	r.assertInvariants()
	if v := as.InvariantViolations(); len(v) != 0 {
		t.Fatalf("autoscaler invariant audit: %v", v)
	}
}

// TestAutoscalerScaleInRollbackRepressurize: load bursting back while
// a drain is mid-flight aborts the scale-in — the half-drained store
// returns to active with its migrated-off residents staying where they
// landed and everything routable.
func TestAutoscalerScaleInRollbackRepressurize(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{
		stores: 4, domains: 2, seed: 1,
		placer: core.PlacerConfig{PrimaryTarget: 4},
	})
	as := core.NewAutoscaler(r.placer, core.AutoscalerConfig{
		Window: 2, Cooldown: 2, MinStores: 2, DrainBudget: 1,
	})
	var pls []*core.Placement
	counters := make(map[uint64]uint64)
	for i := 0; i < 4; i++ {
		pl := r.place()
		pls = append(pls, pl)
		r.load(pl, 5)
	}
	r.freeze(pls, counters)

	begin := tickUntil(t, as, 8, "scale-in-begin")
	drainee, err := r.placer.Node(begin.Store)
	if err != nil {
		t.Fatal(err)
	}
	// Burst: the arrival storm lands while the drain is mid-flight.
	for i := 0; i < 8; i++ {
		pls = append(pls, r.place())
	}
	rb := tickUntil(t, as, 8, "scale-in-rollback")
	if rb.Store != begin.Store {
		t.Fatalf("rolled back %s, want %s", rb.Store, begin.Store)
	}
	if rb.Reason != "fleet re-pressurized mid-drain" {
		t.Fatalf("rollback reason %q", rb.Reason)
	}
	if drainee.State() != core.StoreActive {
		t.Fatalf("rolled-back store state %s, want active", drainee.State())
	}
	for _, sn := range r.nodes {
		if sn.State() == core.StoreFenced {
			t.Fatalf("fenced survivor %s after rollback", sn.Name)
		}
	}
	// The re-admitted store takes new placements again.
	r.freeze(pls, counters)
	for _, pl := range pls {
		cur, err := r.placer.Lookup(pl.Lineage)
		if err != nil {
			t.Fatalf("lineage %d: %v", pl.Lineage, err)
		}
		if got := counterOnNode(t, cur.Primary(), cur.Group()); got != counters[pl.Lineage] {
			t.Fatalf("lineage %d: counter %d after rollback, want %d", pl.Lineage, got, counters[pl.Lineage])
		}
	}
	r.assertInvariants()
	if v := as.InvariantViolations(); len(v) != 0 {
		t.Fatalf("autoscaler invariant audit: %v", v)
	}
}

// TestRebalanceTickPacing: the paced rebalance respects its per-tick
// budget, re-snapshots pressure each tick (a lineage fattened after
// the pacer started is an eligible mover), and the per-lineage
// cooldown keeps a just-moved lineage parked.
func TestRebalanceTickPacing(t *testing.T) {
	r := newPlaceRig(t, placeRigConfig{
		stores: 4, seed: 42, capBlks: 256,
		placer: core.PlacerConfig{HighWater: 0.04, MoveCooldownTicks: 8},
	})
	var pls []*core.Placement
	for i := 0; i < 4; i++ {
		pls = append(pls, r.place())
	}
	fatten := func(pl *core.Placement) {
		t.Helper()
		p, err := pl.Primary().O.K.Process(pl.Group().PIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, vm.PageSize)
		for pg := 1; pg <= 8; pg++ {
			for i := range buf {
				buf[i] = byte(pg*13 + i)
			}
			if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
				t.Fatal(err)
			}
		}
		r.load(pl, 5)
	}
	fatten(pls[0])
	from := pls[0].Primary()

	evs, err := r.placer.RebalanceTick(core.RebalanceOpts{Budget: 1})
	if err != nil {
		t.Fatalf("tick 1: %v", err)
	}
	moves := 0
	for _, ev := range evs {
		if ev.Kind == "rebalanced" {
			moves++
			if ev.Lineage != pls[0].Lineage {
				t.Fatalf("tick 1 moved lineage %d, want the heavy %d", ev.Lineage, pls[0].Lineage)
			}
		}
	}
	if moves != 1 {
		t.Fatalf("tick 1 made %d moves, budget was 1", moves)
	}
	cur, err := r.placer.Lookup(pls[0].Lineage)
	if err != nil {
		t.Fatal(err)
	}
	if cur.Primary() == from {
		t.Fatal("heavy lineage did not move off the pressured store")
	}

	// Fatten a second lineage AFTER the pacer has started: the fresh
	// per-tick snapshot must see it (the stale-snapshot blind spot).
	second := pls[1]
	if cur2, err := r.placer.Lookup(second.Lineage); err != nil {
		t.Fatal(err)
	} else {
		second = cur2
	}
	fatten(second)
	landed := false
	for tick := 0; tick < 8 && !landed; tick++ {
		evs, err := r.placer.RebalanceTick(core.RebalanceOpts{Budget: 1})
		if err != nil {
			t.Fatalf("tick %d: %v", tick+2, err)
		}
		for _, ev := range evs {
			if ev.Kind != "rebalanced" {
				continue
			}
			if ev.Lineage == pls[0].Lineage {
				t.Fatalf("cooldown violated: lineage %d moved again at tick %d", ev.Lineage, tick+2)
			}
			if ev.Lineage == second.Lineage {
				landed = true
			}
		}
	}
	if !landed {
		t.Fatal("lineage fattened mid-pacer never became an eligible mover")
	}
	r.assertInvariants()
}
