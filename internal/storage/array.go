package storage

import (
	"fmt"
	"time"
)

// Array stripes I/O across several member devices, modeling the
// paper's testbed of four Optane NVMe drives. Bandwidth aggregates
// across members while latency stays that of a single device; large
// transfers are split into per-member chunks at stripe granularity.
type Array struct {
	members []Device
	stripe  int64
	params  DeviceParams
}

// NewArray builds a striped array. All members should share a block
// size; the stripe unit defaults to 64 KiB when stripe <= 0.
func NewArray(members []Device, stripe int64) (*Array, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("storage: array needs at least one member")
	}
	if stripe <= 0 {
		stripe = 64 << 10
	}
	p := members[0].Params()
	agg := p
	agg.Name = fmt.Sprintf("array[%dx%s]", len(members), p.Name)
	agg.ReadBW = p.ReadBW * int64(len(members))
	agg.WriteBW = p.WriteBW * int64(len(members))
	agg.QueueDepth = p.QueueDepth * len(members)
	if p.Capacity > 0 {
		agg.Capacity = p.Capacity * int64(len(members))
	}
	return &Array{members: members, stripe: stripe, params: agg}, nil
}

// Params returns the aggregate performance envelope.
func (a *Array) Params() DeviceParams { return a.params }

// WithClock returns a view of the array whose members charge modeled
// costs to c. Members that cannot redirect are shared as-is.
func (a *Array) WithClock(c *Clock) *Array {
	members := make([]Device, len(a.members))
	for i, m := range a.members {
		members[i] = Redirect(m, c)
	}
	return &Array{members: members, stripe: a.stripe, params: a.params}
}

// Redirect implements Redirector.
func (a *Array) Redirect(c *Clock) Device { return a.WithClock(c) }

// Stats sums the members' counters.
func (a *Array) Stats() DeviceStats {
	var s DeviceStats
	for _, m := range a.members {
		ms := m.Stats()
		s.Reads += ms.Reads
		s.Writes += ms.Writes
		s.Syncs += ms.Syncs
		s.BytesRead += ms.BytesRead
		s.BytesWritten += ms.BytesWritten
		if ms.Busy > s.Busy {
			s.Busy = ms.Busy // members operate in parallel
		}
	}
	return s
}

// locate maps a logical offset to (member, member offset).
func (a *Array) locate(off int64) (int, int64) {
	stripeIdx := off / a.stripe
	member := int(stripeIdx % int64(len(a.members)))
	memberStripe := stripeIdx / int64(len(a.members))
	return member, memberStripe*a.stripe + off%a.stripe
}

// ReadAt implements Device, charging the max of the per-member costs
// since members operate in parallel.
func (a *Array) ReadAt(p []byte, off int64) (time.Duration, error) {
	return a.forEachChunk(p, off, func(m Device, chunk []byte, moff int64) (time.Duration, error) {
		return m.ReadAt(chunk, moff)
	})
}

// WriteAt implements Device.
func (a *Array) WriteAt(p []byte, off int64) (time.Duration, error) {
	return a.forEachChunk(p, off, func(m Device, chunk []byte, moff int64) (time.Duration, error) {
		return m.WriteAt(chunk, moff)
	})
}

func (a *Array) forEachChunk(p []byte, off int64, op func(Device, []byte, int64) (time.Duration, error)) (time.Duration, error) {
	if off < 0 {
		return 0, ErrBadOffset
	}
	var worst time.Duration
	for n := 0; n < len(p); {
		member, moff := a.locate(off + int64(n))
		span := int(a.stripe - (off+int64(n))%a.stripe)
		if span > len(p)-n {
			span = len(p) - n
		}
		cost, err := op(a.members[member], p[n:n+span], moff)
		if err != nil {
			return worst, err
		}
		if cost > worst {
			worst = cost
		}
		n += span
	}
	return worst, nil
}

// ReadBatch implements Device: extents scatter across members by the
// striping function and each member overlaps its share at its own
// queue depth; the cost is the slowest member.
func (a *Array) ReadBatch(bufs [][]byte, offs []int64) (time.Duration, error) {
	if len(bufs) != len(offs) {
		return 0, ErrBadOffset
	}
	memberBufs := make([][][]byte, len(a.members))
	memberOffs := make([][]int64, len(a.members))
	for i, p := range bufs {
		// Split each extent at stripe boundaries.
		off := offs[i]
		for n := 0; n < len(p); {
			member, moff := a.locate(off + int64(n))
			span := int(a.stripe - (off+int64(n))%a.stripe)
			if span > len(p)-n {
				span = len(p) - n
			}
			memberBufs[member] = append(memberBufs[member], p[n:n+span])
			memberOffs[member] = append(memberOffs[member], moff)
			n += span
		}
	}
	var worst time.Duration
	for m := range a.members {
		if len(memberBufs[m]) == 0 {
			continue
		}
		c, err := a.members[m].ReadBatch(memberBufs[m], memberOffs[m])
		if err != nil {
			return worst, err
		}
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}

// Sync flushes every member; the modeled cost is the slowest member.
func (a *Array) Sync() (time.Duration, error) {
	var worst time.Duration
	for _, m := range a.members {
		c, err := m.Sync()
		if err != nil {
			return worst, err
		}
		if c > worst {
			worst = c
		}
	}
	return worst, nil
}

// NewOptaneArray builds the paper's testbed storage: n Optane 900P
// class NVMe devices striped together on a shared clock.
func NewOptaneArray(n int, clock *Clock) *Array {
	members := make([]Device, n)
	for i := range members {
		p := ParamsOptaneNVMe
		p.Name = fmt.Sprintf("nvme%d", i)
		members[i] = NewMemDevice(p, clock)
	}
	a, err := NewArray(members, 64<<10)
	if err != nil {
		panic(err) // unreachable: n >= 1 enforced by callers
	}
	return a
}
