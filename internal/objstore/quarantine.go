package objstore

import (
	"fmt"
	"sort"
)

// This file is the restore-side integrity gate. PR 2 made writes
// self-healing; reads were still trusted at materialization time. Here
// the store can (a) verify that every block an epoch's restore would
// touch still matches its content hash (VerifyEpoch), (b) remember
// that an epoch failed that check (Quarantine — persisted with the
// index so a poisoned epoch stays poisoned across remounts), and
// (c) overwrite a rotted block in place with known-good bytes fetched
// from a peer (RepairBlock), the page-granularity twin of Scrub's
// repair path.

// Quarantine marks (group, epoch) as failing restore validation. The
// mark survives Sync/Open. Reason is for operators; the latest call
// wins.
func (s *Store) Quarantine(group, epoch uint64, reason string) {
	s.mu.Lock()
	if s.quarantined == nil {
		s.quarantined = make(map[manifestID]string)
	}
	s.quarantined[manifestID{group, epoch}] = reason
	s.mu.Unlock()
}

// Unquarantine clears a quarantine mark (e.g. after a successful
// scrub repair re-validated the epoch).
func (s *Store) Unquarantine(group, epoch uint64) {
	s.mu.Lock()
	delete(s.quarantined, manifestID{group, epoch})
	s.mu.Unlock()
}

// IsQuarantined reports whether (group, epoch) is quarantined.
func (s *Store) IsQuarantined(group, epoch uint64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.quarantined[manifestID{group, epoch}]
	return ok
}

// QuarantinedEpochs returns the quarantined epochs of a group with
// their reasons.
func (s *Store) QuarantinedEpochs(group uint64) map[uint64]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint64]string)
	for id, why := range s.quarantined {
		if id.Group == group {
			out[id.Epoch] = why
		}
	}
	return out
}

// LatestGoodManifest returns the newest manifest of a group that is
// not quarantined, optionally bounded to epochs strictly below
// `below` (0 = unbounded). This is the fallback target after a failed
// restore validation.
func (s *Store) LatestGoodManifest(group, below uint64) (*Manifest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ms := s.manifests[group]
	for i := len(ms) - 1; i >= 0; i-- {
		m := ms[i]
		if below != 0 && m.Epoch >= below {
			continue
		}
		if _, bad := s.quarantined[manifestID{group, m.Epoch}]; bad {
			continue
		}
		return m, nil
	}
	return nil, ErrNoManifest
}

// VerifyEpoch checks that every data block a restore of (group, epoch)
// would materialize still matches its content hash — the record chains
// of every object in the manifest, resolved exactly the way restore
// resolves them. Metadata lives inside the CRC-protected index and
// needs no separate check; the data blocks are the unprotected bytes.
// The first mismatch aborts with an error wrapping ErrCorruptBlock.
func (s *Store) VerifyEpoch(group, epoch uint64) error {
	s.mu.Lock()
	m := s.findManifestLocked(group, epoch)
	if m == nil {
		s.mu.Unlock()
		return ErrNoManifest
	}
	// Collect the full resolved page set per object, deduping shared
	// blocks so each physical block is read once.
	type toCheck struct {
		oid uint64
		idx int64
		ref BlockRef
	}
	seen := make(map[Hash]bool)
	var refs []toCheck
	for _, rk := range m.Records {
		pages, _, err := s.resolvePagesLocked(group, rk.OID, epoch)
		if err != nil {
			s.mu.Unlock()
			return fmt.Errorf("objstore: verify epoch %d of group %d: object %d: %w",
				epoch, group, rk.OID, err)
		}
		for idx, ref := range pages {
			if seen[ref.Hash] {
				continue
			}
			seen[ref.Hash] = true
			refs = append(refs, toCheck{rk.OID, idx, ref})
		}
	}
	s.mu.Unlock()
	sort.Slice(refs, func(i, j int) bool { return refs[i].ref.Off < refs[j].ref.Off })

	buf := make([]byte, BlockSize)
	for _, c := range refs {
		if _, err := s.dev.ReadAt(buf, c.ref.Off); err != nil {
			return fmt.Errorf("objstore: verify epoch %d of group %d: block at %d: %w",
				epoch, group, c.ref.Off, err)
		}
		if s.HashPage(buf) != c.ref.Hash {
			return fmt.Errorf("%w: epoch %d of group %d, object %d page %d (block at %d)",
				ErrCorruptBlock, epoch, group, c.oid, c.idx, c.ref.Off)
		}
	}
	return nil
}

// RepairBlock overwrites the block at ref.Off with data, after
// checking that data actually is the content ref names. This is the
// read-repair write-back: a page served by a healthy peer during
// demand-paging failover heals the primary's copy in place.
func (s *Store) RepairBlock(ref BlockRef, data []byte) error {
	if len(data) != BlockSize {
		return fmt.Errorf("objstore: repair block at %d: %d bytes, want %d",
			ref.Off, len(data), BlockSize)
	}
	if s.HashPage(data) != ref.Hash {
		return fmt.Errorf("%w: repair data for block at %d does not match its hash",
			ErrCorruptBlock, ref.Off)
	}
	if _, err := s.dev.WriteAt(data, ref.Off); err != nil {
		return fmt.Errorf("objstore: repair block at %d: %w", ref.Off, err)
	}
	return nil
}
