package codec

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestScalarRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U64(math.MaxUint64)
	e.I64(math.MinInt64)
	e.I64(math.MaxInt64)
	e.U32(math.MaxUint32)
	e.U16(math.MaxUint16)
	e.U8(255)
	e.Bool(true)
	e.Bool(false)

	d := NewDecoder(e.Bytes())
	if d.U64() != math.MaxUint64 {
		t.Fatal("u64 max")
	}
	if d.I64() != math.MinInt64 || d.I64() != math.MaxInt64 {
		t.Fatal("i64 extremes")
	}
	if d.U32() != math.MaxUint32 || d.U16() != math.MaxUint16 || d.U8() != 255 {
		t.Fatal("small ints")
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("bools")
	}
	if d.Err() != nil || d.Remaining() != 0 {
		t.Fatalf("err=%v remaining=%d", d.Err(), d.Remaining())
	}
}

func TestEmptyCollections(t *testing.T) {
	e := NewEncoder()
	e.Bytes2(nil)
	e.Str("")
	e.StrSlice(nil)
	e.U64Slice(nil)
	d := NewDecoder(e.Bytes())
	if len(d.Bytes2()) != 0 || d.Str() != "" || len(d.StrSlice()) != 0 || len(d.U64Slice()) != 0 {
		t.Fatal("empty round trip")
	}
	if d.Err() != nil {
		t.Fatal(d.Err())
	}
}

func TestTruncationDetected(t *testing.T) {
	e := NewEncoder()
	e.Str("hello world")
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		d := NewDecoder(full[:cut])
		d.Str()
		if cut < len(full) && d.Err() == nil && cut != 0 {
			// A cut inside the payload must fail; cut==0 gives an
			// empty buffer which also fails.
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
}

func TestErrorSticky(t *testing.T) {
	d := NewDecoder(nil)
	d.U64() // fails
	if d.Err() == nil {
		t.Fatal("expected error")
	}
	// All subsequent reads return zero values without panicking.
	if d.U64() != 0 || d.I64() != 0 || d.U8() != 0 || d.Bool() || d.Str() != "" {
		t.Fatal("reads after error should be zero-valued")
	}
	if d.Bytes2() != nil || d.StrSlice() != nil {
		t.Fatal("collections after error should be nil")
	}
	if err := d.Finish("thing"); err == nil {
		t.Fatal("Finish must surface the error")
	}
}

func TestOversizedLengthRejected(t *testing.T) {
	e := NewEncoder()
	e.U64(1 << 50) // absurd length prefix
	d := NewDecoder(e.Bytes())
	if d.Bytes2() != nil || d.Err() == nil {
		t.Fatal("oversized length accepted")
	}
}

func TestLenTracksBuffer(t *testing.T) {
	e := NewEncoder()
	if e.Len() != 0 {
		t.Fatal("fresh encoder not empty")
	}
	e.U8(1)
	e.U8(2)
	if e.Len() != 2 {
		t.Fatalf("len = %d", e.Len())
	}
}

// Property: any sequence of heterogeneous fields round-trips exactly.
func TestQuickMixedRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, s string, p []byte, flag bool, ss []string, us []uint64) bool {
		e := NewEncoder()
		e.U64(a)
		e.Bool(flag)
		e.I64(b)
		e.Str(s)
		e.Bytes2(p)
		e.StrSlice(ss)
		e.U64Slice(us)

		d := NewDecoder(e.Bytes())
		if d.U64() != a || d.Bool() != flag || d.I64() != b || d.Str() != s {
			return false
		}
		if !bytes.Equal(d.Bytes2(), p) {
			return false
		}
		gs := d.StrSlice()
		if len(gs) != len(ss) {
			return false
		}
		for i := range ss {
			if gs[i] != ss[i] {
				return false
			}
		}
		gu := d.U64Slice()
		if len(gu) != len(us) {
			return false
		}
		for i := range us {
			if gu[i] != us[i] {
				return false
			}
		}
		return d.Err() == nil && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding random garbage never panics and either errors or
// consumes bounded input.
func TestQuickGarbageSafety(t *testing.T) {
	f := func(garbage []byte) bool {
		d := NewDecoder(garbage)
		d.U64()
		d.Str()
		d.Bytes2()
		d.StrSlice()
		d.U64Slice()
		d.I64()
		d.Bool()
		return true // not panicking is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
