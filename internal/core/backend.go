package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// Backend errors.
var (
	ErrNoImage = errors.New("core: no checkpoint available")
)

// Backend receives checkpoint images. A persistence group may attach
// several backends at once (e.g. a local NVMe store plus a remote
// replica); an epoch is released for external consistency only when
// every backend has it.
//
// Flush is called concurrently by the background flush pipeline — for
// distinct images at once when the pipeline runs several epochs in
// parallel — and must be safe for that.
type Backend interface {
	// Name identifies the backend in the CLI.
	Name() string
	// Flush persists one image and returns the modeled flush time.
	Flush(img *Image) (time.Duration, error)
	// Load returns the image chain for (group, epoch); epoch 0 means
	// latest. Backends that cannot serve restores return ErrNoImage.
	Load(group, epoch uint64) (*Image, time.Duration, error)
	// Ephemeral backends (local memory) do not make data durable;
	// they do not satisfy external consistency on their own.
	Ephemeral() bool
}

// LaneBackend is implemented by backends that can charge their flush
// I/O to a detached clock lane, letting a background flush overlap the
// foreground virtual timeline instead of stalling it.
type LaneBackend interface {
	// WithLane returns a view of the backend that shares all state but
	// charges modeled costs to lane.
	WithLane(lane *storage.Clock) Backend
}

// MemoryBackend keeps images in RAM: the paper's local memory backend
// for debugging and speculative execution. It retains a bounded
// history per group.
type MemoryBackend struct {
	pm      *vm.PhysMem
	history int

	mu     sync.Mutex
	images map[uint64][]*Image // group -> epoch-ordered chain
}

// NewMemoryBackend creates a memory backend retaining up to history
// images per group (0 = unlimited).
func NewMemoryBackend(pm *vm.PhysMem, history int) *MemoryBackend {
	return &MemoryBackend{pm: pm, history: history, images: make(map[uint64][]*Image)}
}

// Name implements Backend.
func (mb *MemoryBackend) Name() string { return "memory" }

// Ephemeral implements Backend.
func (mb *MemoryBackend) Ephemeral() bool { return true }

// Flush implements Backend: retaining the image is free beyond a DRAM
// write of the metadata; the frames are shared, not copied. The chain
// stays epoch-sorted even when the pipeline completes epochs out of
// order. History trimming is deferred to Trim — merging an old image
// forward mutates its successor, which must not race with another
// worker still flushing that successor elsewhere.
func (mb *MemoryBackend) Flush(img *Image) (time.Duration, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	chain := mb.images[img.Group]
	// A Sync retry after another backend's failure re-delivers the same
	// epoch; replace rather than duplicate.
	replaced := false
	for i, have := range chain {
		if have.Epoch == img.Epoch {
			chain[i] = img
			replaced = true
			break
		}
	}
	if !replaced {
		chain = append(chain, img)
		for i := len(chain) - 1; i > 0 && chain[i-1].Epoch > chain[i].Epoch; i-- {
			chain[i-1], chain[i] = chain[i], chain[i-1]
		}
	}
	mb.images[img.Group] = chain
	return time.Duration(len(img.Meta)) * 100 * time.Nanosecond, nil
}

// Trim enforces the history bound for one group. The flush pipeline
// calls it at epoch retirement, when every image in the chain up to
// the retired epoch is quiescent.
func (mb *MemoryBackend) Trim(group uint64) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	chain := mb.images[group]
	for mb.history > 0 && len(chain) > mb.history {
		// Consolidate: the oldest image's pages merge into the next
		// one by reference before release, mirroring the object
		// store's in-place GC.
		victim := chain[0]
		next := chain[1]
		mergeImageForward(victim, next, mb.pm)
		chain = chain[1:]
	}
	mb.images[group] = chain
}

// mergeImageForward folds victim's pages and metadata into next where
// next lacks them, then releases what remains.
func mergeImageForward(victim, next *Image, pm *vm.PhysMem) {
	for id, mi := range victim.Memory {
		heir, ok := next.Memory[id]
		if !ok {
			next.Memory[id] = mi
			continue
		}
		for idx, f := range mi.Pages {
			if _, shadowed := heir.Pages[idx]; shadowed {
				pm.Free(f)
			} else if _, shadowed := heir.SwapData[idx]; shadowed {
				pm.Free(f)
			} else {
				heir.Pages[idx] = f
			}
		}
		for idx, d := range mi.SwapData {
			if _, shadowed := heir.Pages[idx]; !shadowed {
				if heir.SwapData == nil {
					heir.SwapData = make(map[int64][]byte)
				}
				if _, shadowed := heir.SwapData[idx]; !shadowed {
					heir.SwapData[idx] = d
				}
			}
		}
	}
	seen := make(map[uint64]bool)
	for _, m := range next.Meta {
		seen[m.OID] = true
	}
	for _, m := range victim.Meta {
		if !seen[m.OID] {
			next.Meta = append(next.Meta, m)
		}
	}
	if victim.Full {
		next.Full = true
	}
	next.Prev = victim.Prev
}

// Load implements Backend.
func (mb *MemoryBackend) Load(group, epoch uint64) (*Image, time.Duration, error) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	chain := mb.images[group]
	if len(chain) == 0 {
		return nil, 0, fmt.Errorf("%w: group %d holds no images in memory", ErrNoImage, group)
	}
	if epoch == 0 {
		return chain[len(chain)-1], 0, nil
	}
	for _, img := range chain {
		if img.Epoch == epoch {
			return img, 0, nil
		}
	}
	return nil, 0, fmt.Errorf("%w: group %d epoch %d", ErrNoImage, group, epoch)
}

// History lists the retained epochs of a group.
func (mb *MemoryBackend) History(group uint64) []uint64 {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	out := make([]uint64, 0, len(mb.images[group]))
	for _, img := range mb.images[group] {
		out = append(out, img.Epoch)
	}
	return out
}

// StoreBackend persists images into an object store on a device: the
// paper's locally persistent backend (NVMe flash or NVDIMM).
type StoreBackend struct {
	store *objstore.Store
	pm    *vm.PhysMem
	clock *storage.Clock
	// History bounds the per-group epoch history kept on disk
	// (0 = unlimited); older epochs are garbage collected in place.
	HistoryLimit int
	// rec is the space-pressure reclaimer bound to this store (nil =
	// unbounded retention). Shared across WithLane views.
	rec *Reclaimer
}

// NewStoreBackend wraps an object store as a checkpoint backend.
func NewStoreBackend(store *objstore.Store, pm *vm.PhysMem, clock *storage.Clock) *StoreBackend {
	return &StoreBackend{store: store, pm: pm, clock: clock}
}

// Name implements Backend.
func (sb *StoreBackend) Name() string {
	return fmt.Sprintf("store:%s", sb.store.Device().Params().Name)
}

// Ephemeral implements Backend.
func (sb *StoreBackend) Ephemeral() bool { return false }

// Store exposes the underlying object store.
func (sb *StoreBackend) Store() *objstore.Store { return sb.store }

// SetReclaimer binds a space-pressure reclaimer to this backend: epoch
// retirements poke it (Trim), ENOSPC flushes trigger its emergency
// path, and the checkpoint admission control consults its watermarks.
func (sb *StoreBackend) SetReclaimer(r *Reclaimer) { sb.rec = r }

// Reclaimer returns the bound reclaimer (nil when none).
func (sb *StoreBackend) Reclaimer() *Reclaimer { return sb.rec }

// Trim implements the flush pipeline's trimmer hook: every epoch
// retirement is a chance to fold history forward. With a reclaimer
// attached this is watermark-driven (a no-op below the low watermark);
// without one it does nothing — HistoryLimit-based trimming already
// runs inside Flush.
func (sb *StoreBackend) Trim(group uint64) {
	if sb.rec != nil {
		sb.rec.Scan()
	}
}

// WithLane implements LaneBackend: the view shares the store's index
// and device state but charges hash and I/O costs to lane.
func (sb *StoreBackend) WithLane(lane *storage.Clock) Backend {
	return &StoreBackend{
		store:        sb.store.WithClock(lane),
		pm:           sb.pm,
		clock:        lane,
		HistoryLimit: sb.HistoryLimit,
		rec:          sb.rec,
	}
}

// Flush implements Backend: every metadata record and captured page
// becomes an object-store record; the modeled duration is the device
// time consumed, with page writes overlapped at the device queue
// depth.
func (sb *StoreBackend) Flush(img *Image) (time.Duration, error) {
	sw := sb.clock.Watch()
	// Fence check: a flush stamped with a store generation behind the
	// lineage's fence comes from a stale primary superseded by a
	// promotion; reject it before any state changes. A newer
	// generation is adopted as the new fence (the catch-up path).
	if err := sb.store.CheckGen(img.Group, img.Gen); err != nil {
		var floor uint64
		if m, merr := sb.store.LatestManifest(img.Group); merr == nil {
			floor = m.Epoch
		}
		return 0, &FenceError{Gen: sb.store.FenceGen(img.Group), Floor: floor, Err: err}
	}
	for _, m := range img.Meta {
		if _, err := sb.store.PutRecord(img.Group, m.OID, img.Epoch, uint16(m.Kind), img.Full, m.Data, nil, nil); err != nil {
			return 0, err
		}
	}
	var keys []objstore.RecordKey
	for _, m := range img.Meta {
		keys = append(keys, objstore.RecordKey{Group: img.Group, OID: m.OID, Epoch: img.Epoch})
	}
	for id, mi := range img.Memory {
		pages := make(map[int64][]byte, len(mi.Pages)+len(mi.SwapData))
		for idx, f := range mi.Pages {
			pages[idx] = f.Data
		}
		for idx, d := range mi.SwapData {
			pages[idx] = d
		}
		meta := encodeVMObjMeta(mi)
		if _, err := sb.store.PutRecord(img.Group, vmBit|id, img.Epoch, uint16(kernel.KindVMObject), img.Full, meta, pages, mi.Heat); err != nil {
			return 0, err
		}
		keys = append(keys, objstore.RecordKey{Group: img.Group, OID: vmBit | id, Epoch: img.Epoch})
	}
	var prev uint64
	if img.Prev != nil {
		prev = img.Prev.Epoch
	}
	sb.store.PutManifest(&objstore.Manifest{
		Group:   img.Group,
		Epoch:   img.Epoch,
		Name:    img.Name,
		Records: keys,
		Roots:   img.Roots,
		Prev:    prev,
	})
	if sb.HistoryLimit > 0 {
		if err := sb.store.TrimHistory(img.Group, sb.HistoryLimit); err != nil {
			return 0, err
		}
	}
	return sw.Elapsed(), nil
}

// Load implements Backend: it reads the checkpoint back from the
// store, reconstructing a standalone full image. The returned duration
// is the object-store read time of Table 4. Every block read is
// verified against its content hash, so a successfully loaded image is
// validated end to end.
func (sb *StoreBackend) Load(group, epoch uint64) (*Image, time.Duration, error) {
	return sb.load(group, epoch, false)
}

// LoadLazy reads the checkpoint's metadata but leaves page data in the
// store as block references (MemImage.Refs): restore attaches a
// fault-tolerant demand-paging source instead of materializing bytes.
// This is what makes lazy restores actually lazy at the device level —
// and what makes a mid-restore backend failure survivable, because
// each faulted page can fail over to a peer.
func (sb *StoreBackend) LoadLazy(group, epoch uint64) (*Image, time.Duration, error) {
	return sb.load(group, epoch, true)
}

func (sb *StoreBackend) load(group, epoch uint64, lazy bool) (*Image, time.Duration, error) {
	sw := sb.clock.Watch()
	var m *objstore.Manifest
	var err error
	if epoch == 0 {
		m, err = sb.store.LatestManifest(group)
	} else {
		m, err = sb.store.Manifest(group, epoch)
	}
	if err != nil {
		// Wrap both: callers match ErrNoImage or the store's own error.
		return nil, 0, fmt.Errorf("%w: group %d epoch %d: %w", ErrNoImage, group, epoch, err)
	}

	img := &Image{
		Group:  group,
		Epoch:  m.Epoch,
		Name:   m.Name,
		Full:   true,
		Memory: make(map[uint64]*MemImage),
		Roots:  m.Roots,
	}
	// Collect the effective record set along the chain.
	seen := make(map[uint64]bool)
	idxBytes := 0
	for cur := m; cur != nil; {
		for _, key := range cur.Records {
			if seen[key.OID] {
				continue
			}
			seen[key.OID] = true
			rec, err := sb.store.GetRecord(group, key.OID, key.Epoch)
			if err != nil {
				return nil, 0, err
			}
			if key.OID&vmBit != 0 {
				mi, err := sb.loadObject(group, key.OID, m.Epoch, lazy)
				if err != nil {
					return nil, 0, err
				}
				img.Memory[mi.ObjID] = mi
				idxBytes += 64 + 40*len(mi.Refs)
			} else {
				meta, kind, err := sb.store.ResolveMeta(group, key.OID, m.Epoch)
				if err != nil {
					return nil, 0, err
				}
				img.Meta = append(img.Meta, MetaRec{OID: key.OID, Kind: kernel.Kind(kind), Data: meta})
				idxBytes += 64 + len(meta)
				_ = rec
			}
		}
		if cur.Prev == 0 {
			break
		}
		next, err := sb.store.Manifest(group, cur.Prev)
		if err != nil {
			break
		}
		cur = next
	}
	if lazy {
		img.source = sb
		// A lazy load defers the data blocks but still reads the
		// persisted index entries that locate them: bill that.
		sb.store.ChargeIndexRead(idxBytes)
	}
	return img, sw.Elapsed(), nil
}

// loadObject reads one VM object's resolved pages into a MemImage:
// bytes for eager loads, block references for lazy ones.
func (sb *StoreBackend) loadObject(group, oid, epoch uint64, lazy bool) (*MemImage, error) {
	meta, _, err := sb.store.ResolveMeta(group, oid, epoch)
	if err != nil {
		return nil, err
	}
	mi, err := decodeVMObjMeta(meta)
	if err != nil {
		return nil, err
	}
	pages, heat, err := sb.store.ResolvePages(group, oid, epoch)
	if err != nil {
		return nil, err
	}
	mi.Heat = heat
	if lazy {
		mi.Refs = pages
		return mi, nil
	}
	idxs := make([]int64, 0, len(pages))
	refs := make([]objstore.BlockRef, 0, len(pages))
	for idx, ref := range pages {
		idxs = append(idxs, idx)
		refs = append(refs, ref)
	}
	// One batched read: the device overlaps the blocks at queue depth.
	data, err := sb.store.ReadBlocks(refs)
	if err != nil {
		return nil, err
	}
	mi.SwapData = make(map[int64][]byte, len(pages))
	for i, idx := range idxs {
		mi.SwapData[idx] = data[i]
	}
	return mi, nil
}

// Validate verifies every block a restore of (group, epoch) would
// touch against its manifest content hash, without materializing
// anything. This is the restore-validation pre-pass behind
// RestoreOpts.Validate.
func (sb *StoreBackend) Validate(group, epoch uint64) error {
	return sb.store.VerifyEpoch(group, epoch)
}

// Epochs lists the checkpoint epochs this store holds for a group,
// oldest first.
func (sb *StoreBackend) Epochs(group uint64) []uint64 {
	ms := sb.store.Manifests(group)
	out := make([]uint64, 0, len(ms))
	for _, m := range ms {
		out = append(out, m.Epoch)
	}
	return out
}

// epochUsable checks that an explicitly requested epoch exists and is
// not quarantined.
func (sb *StoreBackend) epochUsable(group, epoch uint64) (uint64, error) {
	if _, err := sb.store.Manifest(group, epoch); err != nil {
		return 0, fmt.Errorf("%w: group %d epoch %d: %w", ErrNoImage, group, epoch, err)
	}
	if sb.store.IsQuarantined(group, epoch) {
		return 0, fmt.Errorf("%w: group %d epoch %d", ErrEpochQuarantined, group, epoch)
	}
	return epoch, nil
}

// latestGoodEpoch returns the newest non-quarantined epoch of a group,
// strictly below `below` when below is nonzero.
func (sb *StoreBackend) latestGoodEpoch(group, below uint64) (uint64, error) {
	m, err := sb.store.LatestGoodManifest(group, below)
	if err != nil {
		return 0, fmt.Errorf("%w: group %d has no usable epoch: %w", ErrNoImage, group, err)
	}
	return m.Epoch, nil
}

// FetchBlock implements BlockProvider: a store backend can serve any
// group's blocks to a failing peer by content hash.
func (sb *StoreBackend) FetchBlock(h objstore.Hash) ([]byte, bool) {
	return sb.store.FetchBlock(h)
}

func encodeVMObjMeta(mi *MemImage) []byte {
	e := kernel.NewEncoder()
	e.U64(mi.ObjID)
	e.Str(mi.Name)
	e.I64(mi.Size)
	return e.Bytes()
}

func decodeVMObjMeta(meta []byte) (*MemImage, error) {
	d := kernel.NewDecoder(meta)
	mi := &MemImage{
		ObjID: d.U64(),
		Name:  d.Str(),
		Size:  d.I64(),
		Pages: make(map[int64]*vm.Frame),
	}
	if err := d.Finish("vmobject meta"); err != nil {
		return nil, err
	}
	return mi, nil
}
