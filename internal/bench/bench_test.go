package bench

import (
	"testing"
	"time"
)

// Scaled default working set for tests (the CLI can run the full 2 GiB).
const testWS = 64 << 20

func TestTable3Shape(t *testing.T) {
	r, err := Table3(testWS, 0.125)
	if err != nil {
		t.Fatal(err)
	}
	// Paper shape: metadata roughly equal; lazy data copy several times
	// faster incrementally; incremental stop well under full stop.
	mr := float64(r.Full.MetadataCopy) / float64(r.Incr.MetadataCopy)
	if mr < 0.8 || mr > 1.6 {
		t.Fatalf("metadata ratio = %.2f", mr)
	}
	dr := float64(r.Full.LazyDataCopy) / float64(r.Incr.LazyDataCopy)
	if dr < 3 {
		t.Fatalf("data copy ratio = %.2f, want >= 3 (paper: ~7)", dr)
	}
	if r.Incr.StopTime >= r.Full.StopTime {
		t.Fatal("incremental stop not below full")
	}
	if r.Incr.StopTime > 2*time.Millisecond {
		t.Fatalf("incremental stop %v above the sub-ms regime", r.Incr.StopTime)
	}
}

func TestTable4Shape(t *testing.T) {
	r, err := Table4(testWS)
	if err != nil {
		t.Fatal(err)
	}
	// Memory restores have no store read; disk restores do.
	if r.RedisMem.ObjectStoreRead != 0 || r.ServerlessMem.ObjectStoreRead != 0 {
		t.Fatal("memory restores must not read the store")
	}
	if r.ServerlessDisk.ObjectStoreRead <= 0 {
		t.Fatal("disk restore must read the store")
	}
	// Redis (big) memory state above serverless (small) memory state.
	if r.RedisMem.MemoryState <= r.ServerlessMem.MemoryState {
		t.Fatal("2 GiB-class memory state should exceed the hello-world's")
	}
	// Disk restore's memory/metadata slightly cheaper (implicit
	// restoration), total higher (read dominates).
	if r.ServerlessDisk.MemoryState >= r.ServerlessMem.MemoryState {
		t.Fatal("disk memory state should undercut memory restore")
	}
	if r.ServerlessDisk.MetadataState >= r.ServerlessMem.MetadataState {
		t.Fatal("disk metadata state should undercut memory restore")
	}
	if r.ServerlessDisk.Total <= r.ServerlessMem.Total {
		t.Fatal("disk total should exceed memory total")
	}
	// Everything stays sub-millisecond-class at the paper's scale.
	if r.ServerlessMem.Total > time.Millisecond || r.ServerlessDisk.Total > 2*time.Millisecond {
		t.Fatalf("serverless restores too slow: mem=%v disk=%v",
			r.ServerlessMem.Total, r.ServerlessDisk.Total)
	}
}

func TestFreqClaim(t *testing.T) {
	r, err := Freq(100, 20, 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.Overhead > 0.2 {
		t.Fatalf("100 Hz overhead = %.1f%%, not modest", r.Overhead*100)
	}
	if r.MaxStop > 5*time.Millisecond {
		t.Fatalf("max stop %v breaks the 10 ms period", r.MaxStop)
	}
}

func TestDensityClaim(t *testing.T) {
	r, err := Density(8)
	if err != nil {
		t.Fatal(err)
	}
	if r.BytesPerFn*20 > r.NaiveBytesPerFn {
		t.Fatalf("per-function cost %d vs naive %d: dedup not delivering density",
			r.BytesPerFn, r.NaiveBytesPerFn)
	}
}

func TestRedisPersistenceClaim(t *testing.T) {
	r, err := RedisPersistence(200, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.AuroraPerOp >= r.AOFPerOp {
		t.Fatalf("Aurora per-op %v not below AOF %v", r.AuroraPerOp, r.AOFPerOp)
	}
	if r.AuroraCkpt >= r.ForkSnapshot {
		t.Fatalf("sls_checkpoint %v not below fork snapshot %v", r.AuroraCkpt, r.ForkSnapshot)
	}
}

func TestCRIUClaim(t *testing.T) {
	r, err := CRIUCompare(16 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if r.CRIUStop < 10*r.AuroraStop {
		t.Fatalf("CRIU %v vs Aurora %v: expected >=10x", r.CRIUStop, r.AuroraStop)
	}
}

func TestWarmStartClaim(t *testing.T) {
	r, err := WarmStart()
	if err != nil {
		t.Fatal(err)
	}
	if r.WarmMem >= r.Cold || r.WarmDisk >= r.Cold {
		t.Fatalf("warm starts (mem %v, disk %v) not below cold %v", r.WarmMem, r.WarmDisk, r.Cold)
	}
}

func TestAblationSharedCOW(t *testing.T) {
	r, err := AblationSharedCOW()
	if err != nil {
		t.Fatal(err)
	}
	if r.SharedFaults != 1 {
		t.Fatalf("COW faults = %d, want exactly 1 for one page write", r.SharedFaults)
	}
}

func TestAblationDedup(t *testing.T) {
	r, err := AblationDedup(5, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	if r.SavedFrac < 0.5 {
		t.Fatalf("dedup saved only %.0f%% across identical checkpoints", r.SavedFrac*100)
	}
}

func TestPipelineStopBelowFullLatency(t *testing.T) {
	r, err := PipelineKVLSM(500, 50)
	if err != nil {
		t.Fatal(err)
	}
	if r.Checkpoints == 0 {
		t.Fatal("workload produced no checkpoints")
	}
	// The Table-3 stop-time breakdown must exclude flush time: with the
	// background pipeline, what the application pays (stop) is strictly
	// below the full checkpoint+flush latency.
	if r.TotalFlush <= 0 {
		t.Fatalf("no flush time recorded across %d checkpoints", r.Checkpoints)
	}
	if r.TotalStop >= r.TotalFull() {
		t.Fatalf("stop time %v not strictly below checkpoint+flush latency %v", r.TotalStop, r.TotalFull())
	}
	if r.MaxStop >= r.MaxFull {
		t.Fatalf("worst stop %v not below worst checkpoint+flush %v", r.MaxStop, r.MaxFull)
	}
}
