package kernel

import (
	"fmt"
	"sync"
)

// SocketPair is a connected pair of bidirectional endpoints
// (socketpair(2)). It is a single first-class object owning two
// queues; the descriptor-visible endpoints are the two Ends.
type SocketPair struct {
	oid    uint64
	kernel *Kernel
	ab, ba *segQueue // a->b and b->a directions
	ends   [2]*SockEnd
}

// OID implements Object.
func (sp *SocketPair) OID() uint64 { return sp.oid }

// Kind implements Object.
func (sp *SocketPair) Kind() Kind { return KindSocketPair }

// EncodeTo implements Object: both directions' in-flight data are part
// of the checkpoint, exactly as Aurora persists socket buffers from
// inside the kernel rather than reconstructing them at the syscall
// boundary.
func (sp *SocketPair) EncodeTo(e *Encoder) {
	e.U64(sp.oid)
	e.U64(sp.ends[0].oid)
	e.U64(sp.ends[1].oid)
	sp.ab.snapshot(e)
	sp.ba.snapshot(e)
}

// SockEnd is one endpoint of a socket pair or accepted unix-socket
// connection.
type SockEnd struct {
	oid    uint64
	kernel *Kernel
	in     *segQueue // data waiting for this end to read
	out    *segQueue // data this end writes (peer's in)
	parent Object    // the owning SocketPair or UnixSocket connection
	side   int       // 0 or 1 within the parent
}

// OID implements Object.
func (s *SockEnd) OID() uint64 { return s.oid }

// Kind implements Object. Endpoints serialize via their parent, which
// carries the buffered data; the endpoint record is a reference.
func (s *SockEnd) Kind() Kind { return KindSockEnd }

// EncodeTo implements Object. Endpoint state lives in the parent
// object's encoding; the endpoint record is a reference.
func (s *SockEnd) EncodeTo(e *Encoder) {
	e.U64(s.oid)
	e.U64(s.parent.OID())
	e.I64(int64(s.side))
}

// ReadFile implements OpenFile.
func (s *SockEnd) ReadFile(ctx IOCtx, buf []byte) (int, error) {
	var rg uint64
	if ctx.Proc != nil {
		rg = s.kernel.groupOf(ctx.Proc)
	}
	return s.in.pop(s.kernel, rg, buf)
}

// WriteFile implements OpenFile.
func (s *SockEnd) WriteFile(ctx IOCtx, buf []byte) (int, error) {
	return s.out.push(s.kernel, ctx, buf)
}

// CloseFile implements OpenFile: closes this direction for the peer.
func (s *SockEnd) CloseFile() error {
	s.out.close()
	s.in.close()
	s.kernel.unregister(s.oid)
	return nil
}

// Pending reports buffered bytes heading toward this endpoint as seen
// by an untracked reader: (total, held for external consistency).
func (s *SockEnd) Pending() (int, int) { return s.in.pending(s.kernel, 0) }

// NewSocketPair creates a connected pair and installs both ends in the
// process's descriptor table.
func (k *Kernel) NewSocketPair(p *Process) (int, int, error) {
	sp := &SocketPair{oid: k.NextOID(), kernel: k,
		ab: &segQueue{limit: 256 << 10}, ba: &segQueue{limit: 256 << 10}}
	a := &SockEnd{oid: k.NextOID(), kernel: k, in: sp.ba, out: sp.ab, parent: sp, side: 0}
	b := &SockEnd{oid: k.NextOID(), kernel: k, in: sp.ab, out: sp.ba, parent: sp, side: 1}
	sp.ends = [2]*SockEnd{a, b}
	k.register(sp)
	k.register(a)
	k.register(b)
	fa, _ := p.FDs.Install(k, a, ORdWr)
	fb, _ := p.FDs.Install(k, b, ORdWr)
	k.Clock.Advance(k.Costs.Syscall)
	return fa, fb, nil
}

// Ends exposes the pair's endpoints (used by restore patching).
func (sp *SocketPair) Ends() [2]*SockEnd { return sp.ends }

// restoreSocketPair rebuilds a socket pair and its endpoints.
func (k *Kernel) restoreSocketPair(d *Decoder) (*SocketPair, error) {
	sp := &SocketPair{oid: d.U64(), kernel: k}
	aOID := d.U64()
	bOID := d.U64()
	sp.ab = restoreQueue(d)
	sp.ba = restoreQueue(d)
	if err := d.Finish("socketpair"); err != nil {
		return nil, err
	}
	a := &SockEnd{oid: aOID, kernel: k, in: sp.ba, out: sp.ab, parent: sp, side: 0}
	b := &SockEnd{oid: bOID, kernel: k, in: sp.ab, out: sp.ba, parent: sp, side: 1}
	sp.ends = [2]*SockEnd{a, b}
	k.register(sp)
	k.register(a)
	k.register(b)
	return sp, nil
}

// UnixSocket is a bound, listening Unix-domain socket. Connections
// accepted from it are SockEnd pairs. CRIU needed seven years to
// support these; in Aurora's object model they serialize like
// everything else.
type UnixSocket struct {
	oid    uint64
	kernel *Kernel
	Path   string

	mu      sync.Mutex
	backlog []*SocketPair // queued, not yet accepted connections
	closed  bool
}

// OID implements Object.
func (u *UnixSocket) OID() uint64 { return u.oid }

// Kind implements Object.
func (u *UnixSocket) Kind() Kind { return KindUnixSocket }

// EncodeTo implements Object: the bound path plus references to the
// queued connections (each of which serializes independently).
func (u *UnixSocket) EncodeTo(e *Encoder) {
	u.mu.Lock()
	defer u.mu.Unlock()
	e.U64(u.oid)
	e.Str(u.Path)
	e.Bool(u.closed)
	refs := make([]uint64, len(u.backlog))
	for i, c := range u.backlog {
		refs[i] = c.OID()
	}
	e.U64Slice(refs)
}

// ReadFile implements OpenFile; listeners are not readable.
func (u *UnixSocket) ReadFile(IOCtx, []byte) (int, error) { return 0, ErrBadFD }

// WriteFile implements OpenFile; listeners are not writable.
func (u *UnixSocket) WriteFile(IOCtx, []byte) (int, error) { return 0, ErrBadFD }

// CloseFile implements OpenFile.
func (u *UnixSocket) CloseFile() error {
	u.mu.Lock()
	u.closed = true
	u.mu.Unlock()
	u.kernel.mu.Lock()
	delete(u.kernel.uds, u.Path)
	u.kernel.mu.Unlock()
	u.kernel.unregister(u.oid)
	return nil
}

// Listen binds a Unix-domain socket at path and installs the listener
// descriptor.
func (k *Kernel) Listen(p *Process, path string) (int, error) {
	k.mu.Lock()
	if _, exists := k.uds[path]; exists {
		k.mu.Unlock()
		return 0, ErrExists
	}
	u := &UnixSocket{oid: k.nextOIDLocked(), kernel: k, Path: path}
	k.uds[path] = u
	k.objects[u.oid] = u
	k.mu.Unlock()
	fd, _ := p.FDs.Install(k, u, ORdOnly)
	k.Clock.Advance(k.Costs.Syscall)
	return fd, nil
}

// Connect dials a bound Unix socket, returning the client descriptor.
// The server side is queued for Accept.
func (k *Kernel) Connect(p *Process, path string) (int, error) {
	k.mu.Lock()
	u, ok := k.uds[path]
	k.mu.Unlock()
	if !ok {
		return 0, ErrNoSuchObject
	}
	sp := &SocketPair{oid: k.NextOID(), kernel: k,
		ab: &segQueue{limit: 256 << 10}, ba: &segQueue{limit: 256 << 10}}
	client := &SockEnd{oid: k.NextOID(), kernel: k, in: sp.ba, out: sp.ab, parent: sp, side: 0}
	server := &SockEnd{oid: k.NextOID(), kernel: k, in: sp.ab, out: sp.ba, parent: sp, side: 1}
	sp.ends = [2]*SockEnd{client, server}
	k.register(sp)
	k.register(client)
	k.register(server)

	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return 0, ErrClosedPipe
	}
	u.backlog = append(u.backlog, sp)
	u.mu.Unlock()

	fd, _ := p.FDs.Install(k, client, ORdWr)
	k.Clock.Advance(k.Costs.Syscall)
	return fd, nil
}

// Accept dequeues a pending connection on the listener descriptor.
func (k *Kernel) Accept(p *Process, listenFD int) (int, error) {
	fd, err := p.FDs.Get(listenFD)
	if err != nil {
		return 0, err
	}
	u, ok := fd.File.(*UnixSocket)
	if !ok {
		return 0, ErrBadFD
	}
	u.mu.Lock()
	if len(u.backlog) == 0 {
		u.mu.Unlock()
		return 0, ErrWouldBlock
	}
	sp := u.backlog[0]
	u.backlog = u.backlog[1:]
	u.mu.Unlock()
	n, _ := p.FDs.Install(k, sp.ends[1], ORdWr)
	k.Clock.Advance(k.Costs.Syscall)
	return n, nil
}

// restoreUnixSocket rebuilds a listener; backlog references are
// patched by the restorer after the socket pairs are rebuilt.
func (k *Kernel) restoreUnixSocket(d *Decoder) (*UnixSocket, []uint64, error) {
	u := &UnixSocket{oid: d.U64(), kernel: k}
	u.Path = d.Str()
	u.closed = d.Bool()
	refs := d.U64Slice()
	if err := d.Finish("unixsocket"); err != nil {
		return nil, nil, err
	}
	k.mu.Lock()
	k.uds[u.Path] = u
	k.objects[u.oid] = u
	k.mu.Unlock()
	return u, refs, nil
}

// String names the socket for ps output.
func (u *UnixSocket) String() string { return fmt.Sprintf("unix:%s", u.Path) }

// Backlog lists the pending, unaccepted connections (serialized with
// the listener so checkpointed connections survive restore).
func (u *UnixSocket) Backlog() []*SocketPair {
	u.mu.Lock()
	defer u.mu.Unlock()
	out := make([]*SocketPair, len(u.backlog))
	copy(out, u.backlog)
	return out
}

// ParentOID returns the OID of the endpoint's owning socket pair or
// connection, which carries the serialized state.
func (s *SockEnd) ParentOID() uint64 { return s.parent.OID() }
