package core

import (
	"errors"
	"fmt"
	"time"

	"aurora/internal/objstore"
)

// This file implements replica promotion: turning a netback replica
// into the primary store when the primary is declared permanently
// dead. The protocol rests on the store generation (fencing token):
//
//  1. the replica's contiguous-epoch floor becomes the new durable
//     line — epochs beyond a gap were never acknowledged as a chain
//     and are quarantined as divergent;
//  2. the promotion mints generation = (highest witnessed) + 1,
//     persists it in the new primary store's superblock, and raises
//     the replica-side fence, so
//  3. a returning stale primary — still stamping the old generation —
//     has every flush rejected (ErrStaleGeneration), is marked fenced,
//     refuses further checkpoints, and is demoted to catch-up resync
//     with its divergent epochs quarantined via the PR 3 machinery.

// ErrStaleGeneration is the fencing rejection: a flush stamped with a
// store generation behind the lineage's fence. It is the same value
// objstore returns, so one errors.Is identity works end to end.
var ErrStaleGeneration = objstore.ErrStaleGeneration

// ErrPrimaryHealthy refuses a promotion while the current primary is
// not down: promoting over a live primary is how split-brain starts.
var ErrPrimaryHealthy = errors.New("core: current primary still healthy")

// FenceError decorates a fencing rejection with the fence generation
// that rejected the flush and the rejecting side's contiguous floor
// (the durable line of the new primary at fencing time). It wraps
// ErrStaleGeneration.
type FenceError struct {
	Gen   uint64 // the fence generation that rejected the flush
	Floor uint64 // the rejecting side's contiguous/latest epoch
	Err   error
}

func (e *FenceError) Error() string {
	return fmt.Sprintf("fenced by generation %d (floor epoch %d): %v", e.Gen, e.Floor, e.Err)
}

func (e *FenceError) Unwrap() error { return e.Err }

// noteFence inspects a flush error; if it is a fencing rejection the
// group is marked fenced and true is returned. Must not be called
// with healthMu held (markFenced takes g.mu).
func noteFence(g *Group, err error) bool {
	if err == nil || !errors.Is(err, ErrStaleGeneration) {
		return false
	}
	var fe *FenceError
	if errors.As(err, &fe) {
		g.markFenced(fe.Gen, fe.Floor)
	} else {
		g.markFenced(g.Generation()+1, 0)
	}
	return true
}

// ReplicaSource is the view of a replica that promotion consumes:
// netback.Receiver implements it.
type ReplicaSource interface {
	// ImageAt returns the replica's image for (group, epoch), linked
	// into its chain.
	ImageAt(group, epoch uint64) (*Image, error)
	// ContiguousEpoch is the newest epoch with no holes below it —
	// the replica's durable line.
	ContiguousEpoch(group uint64) uint64
	// ReplicaEpochs lists every epoch held, ascending.
	ReplicaEpochs(group uint64) []uint64
	// FenceGen is the highest store generation witnessed in deltas or
	// adopted fences for the group.
	FenceGen(group uint64) uint64
	// AdoptFence raises the replica-side fence: deltas stamped with an
	// older generation are answered with a fencing rejection.
	AdoptFence(group, gen uint64)
}

// ReplicaRepairTarget is an optional interface of ReplicaSource:
// replicas that accept read-repair adopt images they missed (a
// minority that lost epochs to a kill or partition is backfilled from
// the elected member after a quorum promotion). netback.Receiver
// implements it.
type ReplicaRepairTarget interface {
	// AdoptImage links an image into the replica's chain as if it had
	// been shipped over the wire.
	AdoptImage(img *Image)
}

// PromoteReport summarizes a promotion.
type PromoteReport struct {
	Group       *Group        // the promoted group (nil for PromoteBackend's in-place role move)
	Gen         uint64        // the new primary generation
	Floor       uint64        // the contiguous floor that became the durable line
	Quarantined []uint64      // divergent epochs beyond the floor
	Backfilled  int           // epochs copied into the new primary store
	Elected     int           // index of the elected replica (PromoteQuorum)
	Repaired    int           // epochs read-repaired onto lagging minority replicas
	TTR         time.Duration // modeled time to recovery (virtual clock)
}

// Promote turns a replica into the primary store for a lineage: the
// replica's contiguous-epoch floor becomes the new durable line, its
// history is backfilled into primary (the store that will anchor the
// promoted group) in epoch order, divergent epochs beyond the floor
// are quarantined, the fence advances to a freshly minted generation
// on both the replica and the store — persisted through the store's
// superblock — and the floor image is restored as a new group that
// resumes execution at the promoted generation.
func (o *Orchestrator) Promote(src ReplicaSource, lineage uint64, primary *StoreBackend, opts RestoreOpts) (*PromoteReport, error) {
	return o.promoteFrom(src, lineage, primary, opts, src.FenceGen(lineage)+1)
}

// promoteFrom is Promote with the new generation chosen by the caller:
// a quorum election mints it above the highest fence witnessed by ANY
// member, not just the elected one, so a fence adopted only by a
// minority still cannot outrank the promoted line.
func (o *Orchestrator) promoteFrom(src ReplicaSource, lineage uint64, primary *StoreBackend, opts RestoreOpts, newGen uint64) (*PromoteReport, error) {
	clock := o.K.Clock
	start := clock.Now()

	floor := src.ContiguousEpoch(lineage)
	if floor == 0 {
		return nil, fmt.Errorf("core: promoting lineage %d: replica holds no contiguous epoch: %w", lineage, ErrNoImage)
	}
	epochs := src.ReplicaEpochs(lineage)

	// Backfill the contiguous history into the new primary store in
	// epoch order, before the fence moves (the images still carry
	// their original generations, which the store adopts as it goes).
	backfilled := 0
	var divergent []uint64
	for _, ep := range epochs {
		if ep > floor {
			divergent = append(divergent, ep)
			continue
		}
		img, err := src.ImageAt(lineage, ep)
		if err != nil {
			return nil, fmt.Errorf("core: promoting lineage %d: reading epoch %d: %w", lineage, ep, err)
		}
		if primary != nil {
			if _, err := primary.Flush(img); err != nil {
				return nil, fmt.Errorf("core: promoting lineage %d: backfilling epoch %d: %w", lineage, ep, err)
			}
			backfilled++
		}
	}

	// Fence the old line on the replica: a stale primary reconnecting
	// after this point has its deltas rejected.
	src.AdoptFence(lineage, newGen)

	// Restore the floor image as the promoted group.
	img, err := src.ImageAt(lineage, floor)
	if err != nil {
		return nil, fmt.Errorf("core: promoting lineage %d: floor epoch %d: %w", lineage, floor, err)
	}
	ng, _, err := o.RestoreImage(img, 0, opts)
	if err != nil {
		return nil, fmt.Errorf("core: promoting lineage %d: restoring floor epoch %d: %w", lineage, floor, err)
	}
	ng.mu.Lock()
	ng.generation = newGen
	ng.mu.Unlock()

	if primary != nil {
		o.Attach(ng, primary)
		// Divergent epochs can never join the promoted line: poison
		// them durably via the quarantine machinery.
		for _, ep := range divergent {
			o.quarantineEpoch(ng, primary, lineage, ep,
				fmt.Errorf("divergent: beyond promotion floor %d at generation %d", floor, newGen))
		}
		// Claim the primary role and persist the fence — the
		// generation lives in the store's superblock from here on.
		if err := primary.Store().SetPrimary(lineage, newGen); err != nil {
			return nil, fmt.Errorf("core: promoting lineage %d: %w", lineage, err)
		}
		if err := o.syncWithReclaim(primary); err != nil {
			return nil, fmt.Errorf("core: promoting lineage %d: persisting fence: %w", lineage, err)
		}
	}

	return &PromoteReport{
		Group:       ng,
		Gen:         newGen,
		Floor:       floor,
		Quarantined: divergent,
		Backfilled:  backfilled,
		TTR:         clock.Now() - start,
	}, nil
}

// PromoteQuorum promotes from a replica set: the member with the
// highest contiguous acked floor is elected (ties break to the lowest
// index — election is deterministic), the new generation is minted
// above the highest fence any member has witnessed, every member
// adopts the fence (so the stale primary is rejected no matter which
// replica it reaches), and lagging members are read-repaired: every
// epoch at or below the promotion floor the elected member holds and
// they lack is backfilled into their chains, making a post-promotion
// restore from any member bit-identical.
func (o *Orchestrator) PromoteQuorum(srcs []ReplicaSource, lineage uint64, primary *StoreBackend, opts RestoreOpts) (*PromoteReport, error) {
	if len(srcs) == 0 {
		return nil, fmt.Errorf("core: promoting lineage %d: empty replica set: %w", lineage, ErrNoImage)
	}
	elected := 0
	for i, s := range srcs {
		if s.ContiguousEpoch(lineage) > srcs[elected].ContiguousEpoch(lineage) {
			elected = i
		}
	}
	var newGen uint64
	for _, s := range srcs {
		if fg := s.FenceGen(lineage); fg > newGen {
			newGen = fg
		}
	}
	newGen++
	rep, err := o.promoteFrom(srcs[elected], lineage, primary, opts, newGen)
	if err != nil {
		return nil, err
	}
	rep.Elected = elected
	for i, s := range srcs {
		if i == elected {
			continue
		}
		s.AdoptFence(lineage, newGen)
		rt, ok := s.(ReplicaRepairTarget)
		if !ok {
			continue
		}
		have := make(map[uint64]bool)
		for _, ep := range s.ReplicaEpochs(lineage) {
			have[ep] = true
		}
		for _, ep := range srcs[elected].ReplicaEpochs(lineage) {
			if ep > rep.Floor || have[ep] {
				continue
			}
			img, err := srcs[elected].ImageAt(lineage, ep)
			if err != nil {
				return rep, fmt.Errorf("core: promoting lineage %d: read-repair epoch %d: %w", lineage, ep, err)
			}
			rt.AdoptImage(img)
			rep.Repaired++
		}
	}
	return rep, nil
}

// PromoteBackend moves the primary role to another attached store
// backend of a running group (`sls promote`): the in-machine flavor
// of promotion, for when the primary store device is permanently
// dead but the processes survived. It refuses with ErrPrimaryHealthy
// unless the current primary is down, and with ErrStaleGeneration if
// the group itself has been fenced by a promotion elsewhere.
func (o *Orchestrator) PromoteBackend(g *Group, name string) (*PromoteReport, error) {
	if gen, _, fenced := g.Fenced(); fenced {
		return nil, fmt.Errorf("core: group %d fenced by generation %d: %w", g.ID, gen, ErrStaleGeneration)
	}
	var target *StoreBackend
	var others []Backend
	for _, b := range g.Backends() {
		if b.Name() == name {
			if sb, ok := b.(*StoreBackend); ok {
				target = sb
			}
			continue
		}
		if !b.Ephemeral() {
			others = append(others, b)
		}
	}
	if target == nil {
		return nil, fmt.Errorf("core: backend %q not attached or not store-backed", name)
	}
	lineage := g.ID
	// The current primary: the store claiming the role, else the
	// first other non-ephemeral backend in attach order. Promotion is
	// only legal once it is down.
	var current Backend
	for _, b := range others {
		if sb, ok := b.(*StoreBackend); ok {
			if _, primary := sb.Store().PrimaryGen(lineage); primary {
				current = b
				break
			}
		}
	}
	if current == nil && len(others) > 0 {
		current = others[0]
	}
	if current == nil {
		return nil, fmt.Errorf("core: %q is the only durable backend: %w", name, ErrPrimaryHealthy)
	}
	h := g.healthOf(current)
	g.healthMu.Lock()
	state := h.state
	g.healthMu.Unlock()
	if state != BackendDown {
		return nil, fmt.Errorf("core: primary %s is %s: %w", current.Name(), state, ErrPrimaryHealthy)
	}

	clock := o.K.Clock
	start := clock.Now()
	newGen := g.Generation() + 1
	if fg := target.Store().FenceGen(lineage); fg >= newGen {
		newGen = fg + 1
	}
	if err := target.Store().SetPrimary(lineage, newGen); err != nil {
		return nil, fmt.Errorf("core: promoting %s: %w", name, err)
	}
	if err := o.syncWithReclaim(target); err != nil {
		return nil, fmt.Errorf("core: promoting %s: persisting fence: %w", name, err)
	}
	g.mu.Lock()
	g.generation = newGen
	g.mu.Unlock()
	return &PromoteReport{
		Gen:   newGen,
		Floor: g.Durable(),
		TTR:   clock.Now() - start,
	}, nil
}

// DemoteStale demotes a fenced stale primary: its divergent epochs —
// those beyond the fence floor, written after the partition on a line
// nobody else acknowledges — are quarantined durably on every
// attached store backend, the newer generation is adopted into those
// stores' fence tables, and the now-undeliverable catch-up queues are
// dropped. The group stays fenced (it cannot checkpoint); its role
// from here is catch-up resync: its stores rejoin the promoted line
// as secondaries and bootstrap from the new primary's next full
// checkpoint. Returns the quarantined epochs.
func (o *Orchestrator) DemoteStale(g *Group) ([]uint64, error) {
	gen, floor, fenced := g.Fenced()
	if !fenced {
		return nil, fmt.Errorf("core: group %d is not fenced", g.ID)
	}
	o.Drain(g)
	seen := make(map[uint64]bool)
	var quarantined []uint64
	for _, b := range g.Backends() {
		sb, ok := b.(*StoreBackend)
		if !ok {
			continue
		}
		for _, ep := range sb.Epochs(g.ID) {
			if ep <= floor {
				continue
			}
			o.quarantineEpoch(g, sb, g.ID, ep,
				fmt.Errorf("divergent: stale primary epoch beyond fence floor %d (generation %d)", floor, gen))
			if !seen[ep] {
				seen[ep] = true
				quarantined = append(quarantined, ep)
			}
		}
		sb.Store().AdoptFence(g.ID, gen)
		if err := o.syncWithReclaim(sb); err != nil {
			return quarantined, fmt.Errorf("core: demoting group %d: persisting fence on %s: %w", g.ID, b.Name(), err)
		}
	}
	// Queued catch-up epochs of the fenced line can never be accepted
	// anywhere; keeping them would retry forever.
	g.healthMu.Lock()
	for _, h := range g.health {
		h.pending = nil
	}
	g.healthMu.Unlock()
	return quarantined, nil
}
