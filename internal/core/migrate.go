package core

import (
	"errors"
	"fmt"
	"time"

	"aurora/internal/storage"
)

// This file implements live migration: moving a running persistence
// group from a source orchestrator/store to a target machine while it
// executes, in three phases.
//
//	pre-copy   The migration link is attached as an ordinary acked
//	           backend, so every checkpoint streams to the target while
//	           the application keeps running; shipped epochs are drained
//	           into the target store so the blackout backfill is tiny.
//	           Iterates until the target's contiguous floor has caught
//	           the source epoch.
//	blackout   One final delta under a single serialization barrier,
//	           flushed inline to every backend (source store and link),
//	           then a generation-fenced handover: a fresh generation is
//	           minted above every fence any party has witnessed, the
//	           target adopts it (over the wire when the link supports
//	           in-band handoff frames), the target store claims the
//	           primary role at it, and the source is fenced below it —
//	           a zombie source can never re-advance durable, because
//	           both the receiver and the stores reject its stale
//	           generation with ErrStaleGeneration.
//	lazy tail  The target resumes immediately from a lazy restore of
//	           the floor image; cold pages are demand-paged through the
//	           pagesource failover path — target store first, then the
//	           source store / receiver / extra peers by content hash —
//	           with read-repair onto the target store.
//
// Every phase runs under bounded retries with exponential backoff
// charged to detached clock lanes, healing the link between attempts.
// A migration that cannot complete aborts cleanly: the source is
// re-minted ABOVE any generation the target may have adopted, so the
// source remains the sole max-generation primary and the half-fenced
// target can never outrank it. Failures carry the phase in a typed
// MigrationError wrapping ErrMigrationAborted plus the root cause, so
// one errors.Is/As chain answers "did the migration abort", "was it a
// fencing rejection", and "which phase died".
//
// Hot standby is the same machine kept perpetually in pre-copy:
// StandbyRound ships and drains epochs on the source's checkpoint
// cadence, and PromoteStandby performs the blackout-less unplanned
// handover — fence, backfill, lazy restore, primary claim — measuring
// time-to-recovery on the target clock.

// ErrMigrationAborted is the identity for migration failures: every
// error returned by a Migrator phase wraps it (via MigrationError), so
// callers select with one errors.Is regardless of phase or cause.
var ErrMigrationAborted = errors.New("core: migration aborted")

// MigrationPhase names the migration phase an error was raised in.
type MigrationPhase string

const (
	PhasePreCopy  MigrationPhase = "pre-copy"
	PhaseBlackout MigrationPhase = "blackout"
	PhaseHandover MigrationPhase = "handover"
	PhaseLazyTail MigrationPhase = "lazy-tail"
)

// MigrationError is a phase-tagged migration failure. It wraps the
// root cause (errors.Is/As see through it) and matches
// ErrMigrationAborted by identity, so a fencing rejection inside a
// failed handover satisfies errors.Is for ErrMigrationAborted,
// ErrStaleGeneration, and errors.As for *FenceError through the one
// chain.
type MigrationError struct {
	Phase   MigrationPhase
	Group   uint64 // the migrating lineage's stream ID
	Retries int    // retry attempts consumed before giving up
	Err     error
}

func (e *MigrationError) Error() string {
	return fmt.Sprintf("migration of group %d aborted in %s (after %d retries): %v",
		e.Group, e.Phase, e.Retries, e.Err)
}

func (e *MigrationError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrMigrationAborted) hold for every
// MigrationError without inserting the sentinel into the cause chain.
func (e *MigrationError) Is(target error) bool { return target == ErrMigrationAborted }

// HandoffAnnouncer is an optional interface of the migration link:
// links that can announce the handover in-band (netback's
// ReplicaBackend sends handoff frames) push the fence to the target
// over the wire, so the announcement is subject to the same injected
// link faults as the data stream and is retried the same way.
type HandoffAnnouncer interface {
	// Handoff tells the far side the lineage is being handed to it at
	// gen with contiguous floor; the receiver adopts the fence and
	// acknowledges.
	Handoff(group, gen, floor uint64) error
}

// MigratorConfig tunes a migration. Zero values select defaults.
type MigratorConfig struct {
	// MaxRounds bounds pre-copy convergence rounds (default 8).
	MaxRounds int
	// Retries bounds per-operation retry attempts within a phase
	// (default 4).
	Retries int
	// Backoff is the first retry's backoff, doubling per attempt,
	// charged to a detached clock lane (default 100µs virtual).
	Backoff time.Duration
	// Name labels the group restored on the target ("" keeps none).
	Name string
	// Prefetch warms the N hottest pages per object after the lazy
	// restore.
	Prefetch int
	// EagerTail copies every page during handover instead of
	// demand-paging the cold tail (trades blackout for no tail).
	EagerTail bool
	// Lineage overrides the fencing lineage key. Migration chains
	// (A→B→C) pass the original lineage so primary claims and fences
	// stay on one key across hops; the default is the group's origin
	// anchor.
	Lineage uint64
}

func (c MigratorConfig) maxRounds() int {
	if c.MaxRounds > 0 {
		return c.MaxRounds
	}
	return 8
}

func (c MigratorConfig) retries() int {
	if c.Retries > 0 {
		return c.Retries
	}
	return 4
}

func (c MigratorConfig) backoff() time.Duration {
	if c.Backoff > 0 {
		return c.Backoff
	}
	return 100 * time.Microsecond
}

// MigrateReport summarizes a completed migration or standby promotion.
type MigrateReport struct {
	Group      *Group        // the group now running on the target
	Gen        uint64        // the generation minted at handover
	Floor      uint64        // the epoch the target resumed from
	Rounds     int           // pre-copy rounds run
	PreCopied  uint64        // target's contiguous floor when the blackout began
	Backfilled int           // epochs copied into the target store
	SrcStop    time.Duration // source-side blackout: barrier + final delta (virtual)
	Handover   time.Duration // target-side blackout: backfill + restore + claim (virtual)
	Blackout   time.Duration // SrcStop + Handover
	TTR        time.Duration // unplanned standby promotion: death to running target
	Retries    int           // faulted operations retried across all phases
}

// Migrator drives one live migration (or a hot standby) of group G
// from the source orchestrator to the target.
type Migrator struct {
	Src *Orchestrator // source machine
	Dst *Orchestrator // target machine
	G   *Group        // the migrating group (runs on Src)

	// Link is the acked replication backend attached to G that streams
	// epochs to the target (netback.ReplicaBackend). When it also
	// implements HandoffAnnouncer the handover is announced in-band.
	Link Backend
	// Target is the far-side receiver view of the stream
	// (netback.Receiver): floors, images, fences.
	Target ReplicaSource
	// SrcStore / DstStore anchor the lineage on each machine.
	SrcStore *StoreBackend
	DstStore *StoreBackend
	// Sup, when set, is the source supervisor: the group is released
	// from it at handover so a late source crash-restart cannot
	// resurrect a fenced zombie copy.
	Sup *Supervisor
	// TailPeers are extra demand-paging peers for the lazy tail
	// (replica-set members); the source store and the receiver are
	// always added.
	TailPeers []BlockProvider
	// Reconnect re-establishes the Link connection after a drop; it is
	// invoked between retry attempts when set.
	Reconnect func() error

	Cfg MigratorConfig

	started      bool
	attachedLink bool // Start attached Link (vs. pre-attached by caller)
	released     bool // Sup.Release already ran
	report       MigrateReport
}

// sid is the stream ID: the key epochs travel under on the wire and
// in the stores (the source group's ID).
func (m *Migrator) sid() uint64 { return m.G.ID }

// lineage is the fencing key primary claims live under: stable across
// migration hops.
func (m *Migrator) lineage() uint64 {
	if m.Cfg.Lineage != 0 {
		return m.Cfg.Lineage
	}
	lin, _ := m.G.originAnchor()
	return lin
}

func (m *Migrator) fail(phase MigrationPhase, err error) *MigrationError {
	return &MigrationError{Phase: phase, Group: m.sid(), Retries: m.report.Retries, Err: err}
}

// attempt runs op under the bounded retry policy: between attempts it
// backs off on a detached lane of clock (doubling) and, when heal is
// set, re-establishes the link via Reconnect. A fencing rejection is
// terminal — fences do not heal. The returned error is phase-tagged.
func (m *Migrator) attempt(phase MigrationPhase, clock *storage.Clock, heal bool, op func() error) error {
	backoff := m.Cfg.backoff()
	var err error
	for i := 0; i <= m.Cfg.retries(); i++ {
		if i > 0 {
			m.report.Retries++
			lane := clock.Lane()
			lane.Advance(backoff)
			backoff *= 2
			if heal && m.Reconnect != nil {
				if rerr := m.Reconnect(); rerr != nil {
					err = rerr
					continue
				}
			}
		}
		if err = op(); err == nil {
			return nil
		}
		if errors.Is(err, ErrStaleGeneration) {
			break
		}
	}
	return m.fail(phase, err)
}

// converge syncs the source group until the target's contiguous floor
// has caught the source epoch: flusher drained, durable advanced, and
// every epoch acked across the link. Retries heal the link and replay
// the catch-up queue via Resync.
func (m *Migrator) converge(phase MigrationPhase) error {
	sid := m.sid()
	return m.attempt(phase, m.Src.K.Clock, true, func() error {
		if err := m.Src.Sync(m.G); err != nil {
			return err
		}
		if floor, epoch := m.Target.ContiguousEpoch(sid), m.G.Epoch(); floor < epoch {
			return fmt.Errorf("core: migration pre-copy: target floor %d behind source epoch %d: %w",
				floor, epoch, ErrBackendDown)
		}
		return nil
	})
}

// backfillDst drains every epoch the target's receiver holds (up to
// its contiguous floor) into the target store, so the handover restore
// reads locally and the lazy tail starts warm. Idempotent: epochs the
// store already has are skipped.
func (m *Migrator) backfillDst(phase MigrationPhase) error {
	if m.DstStore == nil {
		return nil
	}
	sid := m.sid()
	floor := m.Target.ContiguousEpoch(sid)
	have := make(map[uint64]bool)
	for _, ep := range m.DstStore.Epochs(sid) {
		have[ep] = true
	}
	for _, ep := range m.Target.ReplicaEpochs(sid) {
		if ep > floor || have[ep] {
			continue
		}
		img, err := m.Target.ImageAt(sid, ep)
		if err != nil {
			return m.fail(phase, err)
		}
		if err := m.attempt(phase, m.Dst.K.Clock, false, func() error {
			_, ferr := m.DstStore.Flush(img)
			return ferr
		}); err != nil {
			return err
		}
		m.report.Backfilled++
	}
	return nil
}

// mintGen returns a generation above every fence any party to the
// migration has witnessed, on either key: the handover generation.
func (m *Migrator) mintGen() uint64 {
	gen := m.G.Generation()
	sid, lin := m.sid(), m.lineage()
	if fg := m.Target.FenceGen(sid); fg > gen {
		gen = fg
	}
	for _, sb := range []*StoreBackend{m.SrcStore, m.DstStore} {
		if sb == nil {
			continue
		}
		for _, key := range []uint64{sid, lin} {
			if fg := sb.Store().FenceGen(key); fg > gen {
				gen = fg
			}
		}
	}
	return gen + 1
}

// Start attaches the migration link (if it is not already a backend
// of the group) and ships the initial full snapshot: the first
// pre-copy epoch is self-contained so the target's chain restores
// without any source history.
func (m *Migrator) Start() error {
	if m.started {
		return nil
	}
	attached := false
	for _, b := range m.G.Backends() {
		if b == m.Link || b.Name() == m.Link.Name() {
			attached = true
			break
		}
	}
	if !attached {
		m.Src.Attach(m.G, m.Link)
		m.attachedLink = true
	}
	if _, _, fenced := m.G.Fenced(); fenced {
		return m.fail(PhasePreCopy, fmt.Errorf("core: migrating group %d: %w", m.G.ID, ErrStaleGeneration))
	}
	if _, err := m.Src.Checkpoint(m.G, CheckpointOpts{Full: true, Name: "migrate-base"}); err != nil {
		return m.fail(PhasePreCopy, err)
	}
	if err := m.converge(PhasePreCopy); err != nil {
		return err
	}
	m.started = true
	return nil
}

// PreCopyRound runs one pre-copy iteration: the caller's workload step
// (the application keeps running), a checkpoint, convergence across
// the link, and a drain of shipped epochs into the target store. It
// returns the residual epoch gap (0 = converged).
func (m *Migrator) PreCopyRound(workload func() error) (uint64, error) {
	if err := m.Start(); err != nil {
		return 0, err
	}
	m.report.Rounds++
	if workload != nil {
		if err := workload(); err != nil {
			return 0, m.fail(PhasePreCopy, err)
		}
	}
	if _, err := m.Src.Checkpoint(m.G, CheckpointOpts{}); err != nil {
		return 0, m.fail(PhasePreCopy, err)
	}
	if err := m.converge(PhasePreCopy); err != nil {
		return m.residual(), err
	}
	if err := m.backfillDst(PhasePreCopy); err != nil {
		return m.residual(), err
	}
	return m.residual(), nil
}

// residual is the epoch gap between the source and the target's
// contiguous floor.
func (m *Migrator) residual() uint64 {
	floor := m.Target.ContiguousEpoch(m.sid())
	if epoch := m.G.Epoch(); epoch > floor {
		return epoch - floor
	}
	return 0
}

// Run executes a planned live migration end to end: pre-copy rounds
// (workload, when non-nil, models the application running between
// ships) until the residual is zero or MaxRounds is hit, then the
// blackout cutover.
func (m *Migrator) Run(workload func() error) (*MigrateReport, error) {
	for round := 0; round < m.Cfg.maxRounds(); round++ {
		residual, err := m.PreCopyRound(workload)
		if err != nil {
			return nil, err
		}
		if residual == 0 {
			break
		}
	}
	return m.Cutover()
}

// Cutover performs the blackout and handover: final delta under one
// serialization barrier, generation-fenced flip, lazy-tail restore on
// the target. On failure after the target may have adopted the new
// fence, the source is re-minted above it (rollback) so it remains
// the sole max-generation primary.
func (m *Migrator) Cutover() (*MigrateReport, error) {
	if err := m.Start(); err != nil {
		return nil, err
	}
	sid := m.sid()
	m.report.PreCopied = m.Target.ContiguousEpoch(sid)

	// --- Blackout, source side: one barrier, one final delta. ---
	srcSW := m.Src.K.Clock.Watch()
	if _, err := m.Src.Checkpoint(m.G, CheckpointOpts{SkipFlush: true, Name: "migrate-final"}); err != nil {
		noteFence(m.G, err)
		return nil, m.fail(PhaseBlackout, err)
	}
	// Sync's inline path flushes the barrier image to every backend —
	// source store and link — and advances durable in one step; the
	// converge check confirms the target acked the final epoch.
	if err := m.converge(PhaseBlackout); err != nil {
		return nil, err
	}
	floor := m.G.Epoch()
	m.report.SrcStop = srcSW.Elapsed()
	m.report.Floor = floor

	// --- Handover: fence first, then flip. ---
	newGen := m.mintGen()
	m.report.Gen = newGen
	announced := false
	err := m.attempt(PhaseHandover, m.Src.K.Clock, true, func() error {
		announced = true
		if ha, ok := m.Link.(HandoffAnnouncer); ok {
			return ha.Handoff(sid, newGen, floor)
		}
		m.Target.AdoptFence(sid, newGen)
		return nil
	})
	if err != nil {
		// The target may have adopted the fence on an attempt whose ack
		// was lost: re-mint the source above it.
		return nil, m.abort(err, newGen, announced)
	}

	dstSW := m.Dst.K.Clock.Watch()
	if err := m.backfillDst(PhaseHandover); err != nil {
		return nil, m.abort(err, newGen, announced)
	}
	ng, err := m.restoreOnDst(floor, newGen, PhaseHandover)
	if err != nil {
		return nil, m.abort(err, newGen, announced)
	}

	// Commit point: the target store claims the primary role at the
	// new generation, persisted through its superblock. From here the
	// target owns the lineage even if the source dies mid-fence.
	if err := m.claimDst(ng, newGen); err != nil {
		m.teardownDst(ng)
		return nil, m.abort(err, newGen, announced)
	}
	m.report.Handover = dstSW.Elapsed()
	m.report.Blackout = m.report.SrcStop + m.report.Handover
	m.report.Group = ng

	// Fence the source and retire it: migration moves, it does not
	// copy. Best-effort past the commit point — the target's higher
	// generation already outranks anything a zombie source can claim.
	m.fenceSource(newGen, floor)
	rep := m.report
	return &rep, nil
}

// claimDst persists the target store's primary claim at gen (the
// commit point), retrying transient store faults.
func (m *Migrator) claimDst(ng *Group, gen uint64) error {
	if m.DstStore == nil {
		return nil
	}
	lin := m.lineage()
	return m.attempt(PhaseHandover, m.Dst.K.Clock, false, func() error {
		if err := m.DstStore.Store().SetPrimary(lin, gen); err != nil {
			return err
		}
		return m.Dst.syncWithReclaim(m.DstStore)
	})
}

// restoreOnDst restores the floor image on the target at gen: a lazy
// restore from the target store with the source store, the receiver,
// and TailPeers wired as demand-paging peers, so the cold tail pages
// in over the pagesource failover path with read-repair onto the
// target store.
func (m *Migrator) restoreOnDst(floor, gen uint64, phase MigrationPhase) (*Group, error) {
	sid := m.sid()
	var ng *Group
	err := m.attempt(phase, m.Dst.K.Clock, false, func() error {
		var img *Image
		var readTime time.Duration
		var err error
		if m.DstStore != nil {
			img, readTime, err = m.DstStore.LoadLazy(sid, floor)
		} else {
			img, err = m.Target.ImageAt(sid, floor)
		}
		if err != nil {
			return err
		}
		peers := m.tailPeers()
		for _, p := range peers {
			img.AddBlockPeer(p)
		}
		opts := RestoreOpts{
			Lazy:     !m.Cfg.EagerTail,
			Prefetch: m.Cfg.Prefetch,
			Name:     m.Cfg.Name,
		}
		group, _, rerr := m.Dst.RestoreImage(img, readTime, opts)
		if rerr != nil {
			return rerr
		}
		group.mu.Lock()
		group.generation = gen
		group.mu.Unlock()
		if m.DstStore != nil {
			m.Dst.Attach(group, m.DstStore)
		}
		for _, p := range peers {
			m.Dst.AddRestorePeer(group, p)
		}
		ng = group
		return nil
	})
	return ng, err
}

// tailPeers is the demand-paging peer set for the migrated group: the
// source store and the receiver always, plus any TailPeers.
func (m *Migrator) tailPeers() []BlockProvider {
	var peers []BlockProvider
	if m.SrcStore != nil {
		peers = append(peers, m.SrcStore.Store())
	}
	if bp, ok := m.Target.(BlockProvider); ok {
		peers = append(peers, bp)
	}
	return append(peers, m.TailPeers...)
}

// fenceSource marks the source group fenced at gen, adopts the fence
// into the source store (persisted best-effort), releases the group
// from the supervisor, and retires its member processes.
func (m *Migrator) fenceSource(gen, floor uint64) {
	m.G.markFenced(gen, floor)
	if m.Sup != nil && !m.released {
		m.Sup.Release(m.G)
		m.released = true
	}
	if m.SrcStore != nil {
		m.SrcStore.Store().AdoptFence(m.sid(), gen)
		// The explicit lineage handoff: the source store renounces its
		// primary claim even if its fence already sat at gen.
		_ = m.SrcStore.Store().Handoff(m.lineage(), gen)
		_ = m.Src.syncWithReclaim(m.SrcStore)
	}
	for _, pid := range m.G.PIDs() {
		if p, err := m.Src.K.Process(pid); err == nil {
			m.Src.K.Exit(p, 0)
			_ = m.Src.K.Reap(p)
		}
	}
	m.Src.Unpersist(m.G)
}

// teardownDst unwinds a partially restored target group after a
// failed commit: its members are reaped and the group is unpersisted.
func (m *Migrator) teardownDst(ng *Group) {
	if ng == nil {
		return
	}
	for _, pid := range ng.PIDs() {
		if p, err := m.Dst.K.Process(pid); err == nil {
			m.Dst.K.Exit(p, 0)
			_ = m.Dst.K.Reap(p)
		}
	}
	m.Dst.Unpersist(ng)
}

// abort rolls a failed handover back to the source. If the handover
// was announced the target may hold a fence at gen, so the source is
// re-minted at gen+1 — strictly above anything the target adopted —
// its fence cleared, and its store's primary claim re-persisted: the
// source remains the sole max-generation primary and resumes
// checkpointing. The original phase-tagged error is returned.
func (m *Migrator) abort(cause error, gen uint64, announced bool) error {
	if announced {
		remint := gen + 1
		m.G.remint(remint)
		if m.SrcStore != nil {
			_ = m.SrcStore.Store().SetPrimary(m.lineage(), remint)
			_ = m.Src.syncWithReclaim(m.SrcStore)
		}
		if m.DstStore != nil {
			// Best effort: a reachable target store learns it lost.
			m.DstStore.Store().AdoptFence(m.lineage(), remint)
		}
		if m.Sup != nil && m.released {
			m.Sup.Watch(m.G)
			m.released = false
		}
	}
	return cause
}

// remint raises the group's generation to gen and clears any fence
// below it: the rollback path of an aborted handover, where the source
// re-takes the line above the generation the dead target adopted.
func (g *Group) remint(gen uint64) {
	g.mu.Lock()
	if gen > g.generation {
		g.generation = gen
	}
	if g.fencedBy != 0 && g.fencedBy <= gen {
		g.fencedBy, g.fenceFloor = 0, 0
	}
	g.mu.Unlock()
}

// Abandon gives up on an aborted migration for good: the link backend
// is detached from the source group (when Start attached it), so the
// group's durability path stops degrading on a target that will never
// come back. The source itself was already rolled back by the abort
// path; a fresh Migrator (or the same one after Reconnect heals) can
// start over later. No-op on a migration that completed.
func (m *Migrator) Abandon() {
	if m.attachedLink {
		_ = m.Src.Detach(m.G, m.Link.Name())
		m.attachedLink = false
		m.started = false
	}
}

// StandbyRound keeps a hot standby warm: one workload step on the
// source, a checkpoint, convergence across the link, and a drain into
// the standby's store. The target is thus perpetually one barrier
// behind the source.
func (m *Migrator) StandbyRound(workload func() error) error {
	_, err := m.PreCopyRound(workload)
	return err
}

// PromoteStandby performs the unplanned handover after source death:
// no blackout — the source is gone — just fence, backfill, lazy
// restore, and primary claim on the target, measured as TTR on the
// target's clock. The source group, if its corpse is still reachable,
// is fenced and released so a supervisor can never resurrect it.
func (m *Migrator) PromoteStandby() (*MigrateReport, error) {
	sid := m.sid()
	floor := m.Target.ContiguousEpoch(sid)
	if floor == 0 {
		return nil, m.fail(PhaseHandover, fmt.Errorf("core: standby holds no contiguous epoch for group %d: %w", sid, ErrNoImage))
	}
	sw := m.Dst.K.Clock.Watch()
	newGen := m.mintGen()
	m.report.Gen = newGen
	m.report.Floor = floor
	m.report.PreCopied = floor
	m.Target.AdoptFence(sid, newGen)
	if err := m.backfillDst(PhaseHandover); err != nil {
		return nil, err
	}
	ng, err := m.restoreOnDst(floor, newGen, PhaseLazyTail)
	if err != nil {
		return nil, err
	}
	if err := m.claimDst(ng, newGen); err != nil {
		m.teardownDst(ng)
		return nil, err
	}
	m.report.TTR = sw.Elapsed()
	m.report.Group = ng

	// Fence whatever is left of the source line.
	m.G.markFenced(newGen, floor)
	if m.Sup != nil && !m.released {
		m.Sup.Release(m.G)
		m.released = true
	}
	if m.SrcStore != nil {
		m.SrcStore.Store().AdoptFence(sid, newGen)
		_ = m.SrcStore.Store().Handoff(m.lineage(), newGen)
		_ = m.Src.syncWithReclaim(m.SrcStore)
	}
	rep := m.report
	return &rep, nil
}

// Report returns the migration counters accumulated so far (useful
// after an abort, where no MigrateReport is returned).
func (m *Migrator) Report() MigrateReport { return m.report }
