// Package spec implements application-level speculation on Aurora's
// rollback primitive (§4 of the paper): a client can execute as if an
// operation succeeded — e.g. assume a server received its data,
// saving a round trip — and, if the operation later fails, roll the
// whole application back to the pre-speculation checkpoint. Aurora
// notifies the application of the rollback so it can retry along a
// conservative path.
package spec

import (
	"errors"
	"sync"

	"aurora/internal/core"
	"aurora/internal/kernel"
)

// ErrNoSpeculation is returned by Commit/Abort without a Begin.
var ErrNoSpeculation = errors.New("spec: no speculation in progress")

// Outcome reports how a speculation ended.
type Outcome int

// Outcomes.
const (
	Committed Outcome = iota
	Aborted
)

// Speculator manages speculation epochs for one persistence group.
type Speculator struct {
	api *core.API

	mu     sync.Mutex
	active bool
	epoch  uint64
	// OnRollback, if set, is invoked with the rollback notice after an
	// abort — the application's cue to take the conservative path.
	OnRollback func(*core.RollbackNotice)

	commits int
	aborts  int
}

// New creates a speculator over the API.
func New(api *core.API) *Speculator { return &Speculator{api: api} }

// Begin opens a speculation: an ephemeral checkpoint (memory image,
// no flush) marks the state to return to on failure.
func (s *Speculator) Begin(p *kernel.Process) error {
	bd, err := s.api.O.Checkpoint(mustGroup(s.api, p), core.CheckpointOpts{SkipFlush: true, Name: "speculation"})
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.active = true
	s.epoch = bd.Epoch
	s.mu.Unlock()
	return nil
}

func mustGroup(api *core.API, p *kernel.Process) *core.Group {
	g, _ := api.O.GroupOfProcess(p.PID)
	return g
}

// Commit resolves the speculation successfully; execution continues
// and the speculation point is simply forgotten.
func (s *Speculator) Commit() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.active {
		return ErrNoSpeculation
	}
	s.active = false
	s.commits++
	return nil
}

// Abort rolls the application back to the speculation point. The
// restored group replaces the current one; the rollback notice is
// delivered to OnRollback and returned.
func (s *Speculator) Abort(p *kernel.Process) (*core.Group, *core.RollbackNotice, error) {
	s.mu.Lock()
	if !s.active {
		s.mu.Unlock()
		return nil, nil, ErrNoSpeculation
	}
	s.active = false
	s.aborts++
	cb := s.OnRollback
	s.mu.Unlock()

	ng, notice, err := s.api.Rollback(p)
	if err != nil {
		return nil, nil, err
	}
	if cb != nil {
		cb(notice)
	}
	return ng, notice, nil
}

// Stats reports (commits, aborts).
func (s *Speculator) Stats() (int, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.aborts
}
