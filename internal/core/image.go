// Package core implements the SLS orchestrator: the paper's primary
// contribution. It maps kernel objects to the object store, manages
// persistence groups, runs serialization barriers for full and
// incremental checkpoints, flushes asynchronously, restores (eagerly
// or lazily, with clock-driven prefetch), enforces external
// consistency, and exposes the libsls developer API of Table 2.
package core

import (
	"crypto/sha256"
	"fmt"
	"sync"

	"aurora/internal/codec"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/vm"
)

// vmBit tags VM-object IDs in the store's OID space so they never
// collide with kernel OIDs (bit 62 is the file system's).
const vmBit = uint64(1) << 63

// MetaRec is one serialized kernel object inside an image.
type MetaRec struct {
	OID  uint64
	Kind kernel.Kind
	Data []byte
}

// MemImage is the captured memory of one VM object at one epoch.
type MemImage struct {
	ObjID uint64 // original vm.Object ID
	Name  string
	Size  int64
	// Pages holds the captured frames. The image owns one reference
	// per frame; restores COW-share against them without copying.
	Pages map[int64]*vm.Frame
	// SwapData holds pages that were on swap at the barrier, already
	// read back as bytes.
	SwapData map[int64][]byte
	// Refs holds pages still sitting in an object store: a lazily
	// loaded image (StoreBackend.LoadLazy) carries block references
	// instead of bytes, and restore attaches a demand-paging source
	// that reads — and hash-verifies — each block at first touch.
	Refs map[int64]objstore.BlockRef
	// Heat is the access-count snapshot driving restore prefetch.
	Heat map[int64]uint32
}

// PageCount returns the total captured page count.
func (mi *MemImage) PageCount() int { return len(mi.Pages) + len(mi.SwapData) + len(mi.Refs) }

// PageData returns one page's bytes regardless of where it was
// captured from, or nil.
func (mi *MemImage) PageData(idx int64) []byte {
	if f, ok := mi.Pages[idx]; ok {
		return f.Data
	}
	return mi.SwapData[idx]
}

// Image is a complete in-memory checkpoint of a persistence group:
// everything needed to recreate the application, on this machine or
// another.
type Image struct {
	Group uint64
	Epoch uint64
	Name  string
	Full  bool
	// Gen is the store generation (fencing token) of the group that
	// checkpointed this image. A store or replica whose fence for the
	// image's lineage has moved past Gen rejects the flush: the writer
	// is a stale primary superseded by a promotion.
	Gen uint64
	// Meta holds every serialized kernel object.
	Meta []MetaRec
	// Memory holds per-VM-object page captures. For incremental
	// images this is the dirty delta; Prev links the chain.
	Memory map[uint64]*MemImage
	// Roots are the process OIDs of the group.
	Roots []uint64
	// Prev is the previous image in the chain (nil for full images or
	// when the chain was consolidated).
	Prev *Image

	// source is the store backend a lazily loaded image demand-pages
	// from (nil for fully materialized images); peers are consulted,
	// by content hash, when the source fails a page read.
	source *StoreBackend
	peers  []BlockProvider

	mu       sync.Mutex
	released bool
	sources  []*lazyPageSource // demand-paging sources created by restore
}

// AddBlockPeer registers a peer block provider (another store, a
// netback replica) that demand paging may fail over to when the
// image's primary store cannot serve a page.
func (img *Image) AddBlockPeer(p BlockProvider) {
	img.mu.Lock()
	img.peers = append(img.peers, p)
	img.mu.Unlock()
}

// takeSources drains the lazy sources restore created for this image,
// so the restored group can adopt them (health binding, repair stats).
func (img *Image) takeSources() []*lazyPageSource {
	img.mu.Lock()
	defer img.mu.Unlock()
	out := img.sources
	img.sources = nil
	return out
}

// MetaBytes totals the metadata payload size.
func (img *Image) MetaBytes() int {
	n := 0
	for _, m := range img.Meta {
		n += len(m.Data)
	}
	return n
}

// PageCount totals captured pages across all objects.
func (img *Image) PageCount() int {
	n := 0
	for _, mi := range img.Memory {
		n += mi.PageCount()
	}
	return n
}

// FootprintBytes reports the memory this image pins while it waits to
// flush: captured frames and swap-page copies. Refs are excluded —
// they point at store blocks, not RAM. This is what the fleet's global
// memory budget charges per queued image.
func (img *Image) FootprintBytes() int64 {
	var n int64
	for _, mi := range img.Memory {
		n += int64(len(mi.Pages)+len(mi.SwapData)) * vm.PageSize
	}
	return n
}

// Release drops the image's frame references. Safe to call twice.
func (img *Image) Release(pm *vm.PhysMem) {
	img.mu.Lock()
	if img.released {
		img.mu.Unlock()
		return
	}
	img.released = true
	img.mu.Unlock()
	for _, mi := range img.Memory {
		for _, f := range mi.Pages {
			pm.Free(f)
		}
	}
}

// Released reports whether the image's frames have been returned to
// the allocator (store backends own the data now).
func (img *Image) Released() bool {
	img.mu.Lock()
	defer img.mu.Unlock()
	return img.released
}

// ResolveObject materializes an object's complete page map at this
// image, walking the incremental chain back to a full image.
func (img *Image) ResolveObject(objID uint64) map[int64][]byte {
	var chain []*MemImage
	for cur := img; cur != nil; cur = cur.Prev {
		if mi, ok := cur.Memory[objID]; ok {
			chain = append(chain, mi)
		}
		if cur.Full {
			break
		}
	}
	if len(chain) == 0 {
		return nil
	}
	out := make(map[int64][]byte)
	for i := len(chain) - 1; i >= 0; i-- {
		mi := chain[i]
		for idx, f := range mi.Pages {
			out[idx] = f.Data
		}
		for idx, d := range mi.SwapData {
			out[idx] = d
		}
	}
	return out
}

// ResolveMeta finds the newest metadata record for an OID along the
// image chain.
func (img *Image) ResolveMeta(oid uint64) (MetaRec, bool) {
	for cur := img; cur != nil; cur = cur.Prev {
		for _, m := range cur.Meta {
			if m.OID == oid {
				return m, true
			}
		}
		if cur.Full {
			break
		}
	}
	return MetaRec{}, false
}

// AllMeta returns the effective metadata set at this image: the newest
// record per OID along the chain.
func (img *Image) AllMeta() []MetaRec {
	seen := make(map[uint64]bool)
	var out []MetaRec
	for cur := img; cur != nil; cur = cur.Prev {
		for _, m := range cur.Meta {
			if !seen[m.OID] {
				seen[m.OID] = true
				out = append(out, m)
			}
		}
		if cur.Full {
			break
		}
	}
	return out
}

// ObjectIDs lists the VM objects captured along the chain.
func (img *Image) ObjectIDs() []uint64 {
	seen := make(map[uint64]bool)
	var out []uint64
	for cur := img; cur != nil; cur = cur.Prev {
		for id := range cur.Memory {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		if cur.Full {
			break
		}
	}
	return out
}

// ResolveHeat finds the newest heat snapshot for an object.
func (img *Image) ResolveHeat(objID uint64) map[int64]uint32 {
	for cur := img; cur != nil; cur = cur.Prev {
		if mi, ok := cur.Memory[objID]; ok && len(mi.Heat) > 0 {
			return mi.Heat
		}
		if cur.Full {
			break
		}
	}
	return nil
}

// Encode serializes a *consolidated* view of the image chain (the
// effective state at this epoch) for network transfer or file export.
func (img *Image) Encode() []byte {
	e := codec.NewEncoder()
	e.U64(img.Group)
	e.U64(img.Epoch)
	e.U64(img.Gen)
	e.Str(img.Name)
	meta := img.AllMeta()
	e.U64(uint64(len(meta)))
	for _, m := range meta {
		e.U64(m.OID)
		e.U64(uint64(m.Kind))
		e.Bytes2(m.Data)
	}
	objIDs := img.ObjectIDs()
	e.U64(uint64(len(objIDs)))
	for _, id := range objIDs {
		pages := img.ResolveObject(id)
		var name string
		var size int64
		for cur := img; cur != nil; cur = cur.Prev {
			if mi, ok := cur.Memory[id]; ok {
				name, size = mi.Name, mi.Size
				break
			}
		}
		e.U64(id)
		e.Str(name)
		e.I64(size)
		e.U64(uint64(len(pages)))
		for idx, data := range pages {
			e.I64(idx)
			e.Bytes2(data)
		}
		heat := img.ResolveHeat(id)
		e.U64(uint64(len(heat)))
		for idx, h := range heat {
			e.I64(idx)
			e.U32(h)
		}
	}
	e.U64Slice(img.Roots)
	return e.Bytes()
}

// DecodeImage parses an encoded image into a standalone full image.
// Page data is copied into fresh frames owned by the image.
func DecodeImage(payload []byte, pm *vm.PhysMem) (*Image, error) {
	d := codec.NewDecoder(payload)
	img := &Image{
		Group:  d.U64(),
		Epoch:  d.U64(),
		Gen:    d.U64(),
		Name:   d.Str(),
		Full:   true,
		Memory: make(map[uint64]*MemImage),
	}
	nMeta := d.U64()
	for i := uint64(0); i < nMeta && d.Err() == nil; i++ {
		img.Meta = append(img.Meta, MetaRec{
			OID:  d.U64(),
			Kind: kernel.Kind(d.U64()),
			Data: d.Bytes2(),
		})
	}
	nObjs := d.U64()
	for i := uint64(0); i < nObjs && d.Err() == nil; i++ {
		mi := &MemImage{
			ObjID: d.U64(),
			Name:  d.Str(),
			Size:  d.I64(),
			Pages: make(map[int64]*vm.Frame),
		}
		nPages := d.U64()
		for j := uint64(0); j < nPages && d.Err() == nil; j++ {
			idx := d.I64()
			data := d.Bytes2()
			f, err := pm.Alloc()
			if err != nil {
				img.Release(pm)
				return nil, err
			}
			copy(f.Data, data)
			mi.Pages[idx] = f
		}
		nHeat := d.U64()
		if nHeat > 0 {
			mi.Heat = make(map[int64]uint32, nHeat)
		}
		for j := uint64(0); j < nHeat && d.Err() == nil; j++ {
			idx := d.I64()
			mi.Heat[idx] = d.U32()
		}
		img.Memory[mi.ObjID] = mi
	}
	img.Roots = d.U64Slice()
	if err := d.Finish("image"); err != nil {
		img.Release(pm)
		return nil, err
	}
	return img, nil
}

// EncodeDelta serializes only this image's own records (not the
// chain): the unit of continuous replication. The receiver links
// deltas onto its copy of the chain.
func (img *Image) EncodeDelta() []byte {
	e := codec.NewEncoder()
	e.U64(img.Group)
	e.U64(img.Epoch)
	e.U64(img.Gen)
	e.Str(img.Name)
	e.Bool(img.Full)
	e.U64(uint64(len(img.Meta)))
	for _, m := range img.Meta {
		e.U64(m.OID)
		e.U64(uint64(m.Kind))
		e.Bytes2(m.Data)
	}
	e.U64(uint64(len(img.Memory)))
	for id, mi := range img.Memory {
		e.U64(id)
		e.Str(mi.Name)
		e.I64(mi.Size)
		e.U64(uint64(mi.PageCount()))
		for idx, f := range mi.Pages {
			e.I64(idx)
			e.Bytes2(f.Data)
		}
		for idx, d := range mi.SwapData {
			e.I64(idx)
			e.Bytes2(d)
		}
		e.U64(uint64(len(mi.Heat)))
		for idx, h := range mi.Heat {
			e.I64(idx)
			e.U32(h)
		}
	}
	e.U64Slice(img.Roots)
	return e.Bytes()
}

// DecodeDelta parses one replication delta. The caller links Prev.
func DecodeDelta(payload []byte, pm *vm.PhysMem) (*Image, error) {
	d := codec.NewDecoder(payload)
	img := &Image{
		Group:  d.U64(),
		Epoch:  d.U64(),
		Gen:    d.U64(),
		Name:   d.Str(),
		Full:   d.Bool(),
		Memory: make(map[uint64]*MemImage),
	}
	nMeta := d.U64()
	for i := uint64(0); i < nMeta && d.Err() == nil; i++ {
		img.Meta = append(img.Meta, MetaRec{OID: d.U64(), Kind: kernel.Kind(d.U64()), Data: d.Bytes2()})
	}
	nObjs := d.U64()
	for i := uint64(0); i < nObjs && d.Err() == nil; i++ {
		mi := &MemImage{ObjID: d.U64(), Name: d.Str(), Size: d.I64(), Pages: make(map[int64]*vm.Frame)}
		nPages := d.U64()
		for j := uint64(0); j < nPages && d.Err() == nil; j++ {
			idx := d.I64()
			data := d.Bytes2()
			f, err := pm.Alloc()
			if err != nil {
				img.Release(pm)
				return nil, err
			}
			copy(f.Data, data)
			mi.Pages[idx] = f
		}
		nHeat := d.U64()
		if nHeat > 0 {
			mi.Heat = make(map[int64]uint32, nHeat)
		}
		for j := uint64(0); j < nHeat && d.Err() == nil; j++ {
			idx := d.I64()
			mi.Heat[idx] = d.U32()
		}
		img.Memory[mi.ObjID] = mi
	}
	img.Roots = d.U64Slice()
	if err := d.Finish("image delta"); err != nil {
		img.Release(pm)
		return nil, err
	}
	return img, nil
}

// Compact-delta page tags: a page entry in a compact delta carries
// either the literal bytes or just the content hash of bytes the
// receiver is believed to already hold (the dedup idea applied to the
// wire — "send log records instead of disk pages").
const (
	deltaPageLiteral byte = 0 // payload is the page bytes
	deltaPageRef     byte = 1 // payload is the 32-byte content hash
)

// PageContentHash is the content hash compact deltas and the dedup
// index key pages by.
func PageContentHash(data []byte) objstore.Hash {
	return sha256.Sum256(data)
}

// EncodeDeltaCompact serializes one replication delta like EncodeDelta
// but replaces every page whose content hash `skip` claims the
// receiver holds with a 34-byte hash reference. It returns the
// payload, the content hash of every page in the image (in encoding
// order — the sender caches these as receiver-held once the epoch is
// acked), and how many pages were elided. The claim is an
// optimization, never a correctness input: a receiver missing a
// referenced block answers with a resend request for the full delta.
func (img *Image) EncodeDeltaCompact(skip func(objstore.Hash) bool) (payload []byte, hashes []objstore.Hash, skipped int) {
	e := codec.NewEncoder()
	e.U64(img.Group)
	e.U64(img.Epoch)
	e.U64(img.Gen)
	e.Str(img.Name)
	e.Bool(img.Full)
	e.U64(uint64(len(img.Meta)))
	for _, m := range img.Meta {
		e.U64(m.OID)
		e.U64(uint64(m.Kind))
		e.Bytes2(m.Data)
	}
	encPage := func(idx int64, data []byte) {
		e.I64(idx)
		h := PageContentHash(data)
		hashes = append(hashes, h)
		if skip != nil && skip(h) {
			e.Bool(true) // deltaPageRef
			e.Bytes2(h[:])
			skipped++
			return
		}
		e.Bool(false) // deltaPageLiteral
		e.Bytes2(data)
	}
	e.U64(uint64(len(img.Memory)))
	for id, mi := range img.Memory {
		e.U64(id)
		e.Str(mi.Name)
		e.I64(mi.Size)
		e.U64(uint64(mi.PageCount()))
		for idx, f := range mi.Pages {
			encPage(idx, f.Data)
		}
		for idx, d := range mi.SwapData {
			encPage(idx, d)
		}
		e.U64(uint64(len(mi.Heat)))
		for idx, h := range mi.Heat {
			e.I64(idx)
			e.U32(h)
		}
	}
	e.U64Slice(img.Roots)
	return e.Bytes(), hashes, skipped
}

// DecodeDeltaCompact parses one compact replication delta, resolving
// hash references through `resolve` (the receiver's materialized block
// index, typically backed by its chains and local object store). Refs
// that fail to resolve are collected in missing; when missing is
// non-empty the image is incomplete — the caller must Release it and
// request a full resend — but Group/Epoch are valid for addressing the
// request.
func DecodeDeltaCompact(payload []byte, pm *vm.PhysMem, resolve func(objstore.Hash) ([]byte, bool)) (img *Image, missing []objstore.Hash, err error) {
	d := codec.NewDecoder(payload)
	img = &Image{
		Group:  d.U64(),
		Epoch:  d.U64(),
		Gen:    d.U64(),
		Name:   d.Str(),
		Full:   d.Bool(),
		Memory: make(map[uint64]*MemImage),
	}
	nMeta := d.U64()
	for i := uint64(0); i < nMeta && d.Err() == nil; i++ {
		img.Meta = append(img.Meta, MetaRec{OID: d.U64(), Kind: kernel.Kind(d.U64()), Data: d.Bytes2()})
	}
	nObjs := d.U64()
	for i := uint64(0); i < nObjs && d.Err() == nil; i++ {
		mi := &MemImage{ObjID: d.U64(), Name: d.Str(), Size: d.I64(), Pages: make(map[int64]*vm.Frame)}
		nPages := d.U64()
		for j := uint64(0); j < nPages && d.Err() == nil; j++ {
			idx := d.I64()
			var data []byte
			if d.Bool() { // deltaPageRef
				raw := d.Bytes2()
				if d.Err() != nil {
					break
				}
				if len(raw) != len(objstore.Hash{}) {
					img.Release(pm)
					return nil, nil, fmt.Errorf("core: compact delta: bad hash ref length %d", len(raw))
				}
				var h objstore.Hash
				copy(h[:], raw)
				var ok bool
				if resolve != nil {
					data, ok = resolve(h)
				}
				if !ok {
					missing = append(missing, h)
					continue
				}
			} else {
				data = d.Bytes2()
			}
			f, err := pm.Alloc()
			if err != nil {
				img.Release(pm)
				return nil, nil, err
			}
			copy(f.Data, data)
			mi.Pages[idx] = f
		}
		nHeat := d.U64()
		if nHeat > 0 {
			mi.Heat = make(map[int64]uint32, nHeat)
		}
		for j := uint64(0); j < nHeat && d.Err() == nil; j++ {
			idx := d.I64()
			mi.Heat[idx] = d.U32()
		}
		img.Memory[mi.ObjID] = mi
	}
	img.Roots = d.U64Slice()
	if err := d.Finish("compact image delta"); err != nil {
		img.Release(pm)
		return nil, nil, err
	}
	return img, missing, nil
}

// String summarizes the image.
func (img *Image) String() string {
	return fmt.Sprintf("image(group=%d epoch=%d full=%v objs=%d pages=%d)",
		img.Group, img.Epoch, img.Full, len(img.Memory), img.PageCount())
}
