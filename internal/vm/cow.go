package vm

// This file implements the checkpoint side of the VM object: the
// serialization-barrier protocol (BeginCheckpoint), Aurora's shared
// copy-on-write fault rule (CowFault), and the bookkeeping that makes
// incremental checkpoints never flush the same page twice.

// CheckpointSet is the set of frames an in-flight checkpoint owns for
// one object. The barrier takes a reference on every frame so the
// application can keep running (and COW-fault) while the flusher
// writes the original data asynchronously — the paper's "lazy data
// copy".
type CheckpointSet struct {
	Obj   *Object
	Epoch uint64
	// Pages maps object page index -> the frame as of the barrier.
	Pages map[int64]*Frame
	// SwapPages maps page index -> swap slot for pages that were paged
	// out since the last checkpoint; they are incorporated into this
	// checkpoint directly from swap.
	SwapPages map[int64]int64
	// SourcePages lists pages that live only in the object's
	// lazy-restore source (never faulted in): a full checkpoint must
	// pull them from the source or the image would lose them.
	SourcePages map[int64][]byte
	// Heat is a snapshot of the access counters, persisted to drive
	// clock-based eager paging on restore.
	Heat map[int64]uint32
}

// PageCount returns the number of in-memory pages in the set.
func (cs *CheckpointSet) PageCount() int { return len(cs.Pages) }

// Release drops the checkpoint's frame references after the flush
// completes.
func (cs *CheckpointSet) Release(pm *PhysMem) {
	for _, f := range cs.Pages {
		pm.Free(f)
	}
	cs.Pages = nil
}

// BeginCheckpoint executes the object's part of a serialization
// barrier and returns the frames the checkpoint must flush.
//
// In full mode every resident page is captured; in incremental mode
// only pages dirtied since the previous barrier are captured. Captured
// pages are write-protected: the next write to one triggers CowFault,
// which replaces the page with a copy shared by all mappers while this
// checkpoint keeps the original.
//
// The caller is responsible for reflecting the write-protection into
// every address space that maps the object (see
// AddressSpace.ProtectObject) and for charging PTE costs.
func (o *Object) BeginCheckpoint(epoch uint64, full bool) *CheckpointSet {
	// Exclude in-flight writes: a write that passed its permission check
	// before this barrier finishes its copy before we capture the frame
	// (see Object.BeginWrite).
	o.barrier.Lock()
	defer o.barrier.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()

	cs := &CheckpointSet{
		Obj:       o,
		Epoch:     epoch,
		Pages:     make(map[int64]*Frame),
		SwapPages: make(map[int64]int64),
		Heat:      make(map[int64]uint32, len(o.heat)),
	}
	capture := func(idx int64) {
		if f, ok := o.pages[idx]; ok {
			f.Ref()
			cs.Pages[idx] = f
			o.protected[idx] = true
		} else if slot, ok := o.swapSlots[idx]; ok {
			cs.SwapPages[idx] = slot
		}
	}
	if full {
		for idx := range o.pages {
			capture(idx)
		}
		for idx, slot := range o.swapSlots {
			if _, resident := o.pages[idx]; !resident {
				cs.SwapPages[idx] = slot
			}
		}
		// Pages still parked in the lazy-restore source belong to the
		// image as much as resident ones do.
		if o.source != nil {
			for _, idx := range o.source.Pages() {
				if _, resident := o.pages[idx]; resident {
					continue
				}
				if _, swapped := o.swapSlots[idx]; swapped {
					continue
				}
				data, err := o.source.FetchPage(idx)
				if err == nil && data != nil {
					if cs.SourcePages == nil {
						cs.SourcePages = make(map[int64][]byte)
					}
					cs.SourcePages[idx] = data
				}
			}
		}
	} else {
		for idx := range o.dirty {
			capture(idx)
		}
	}
	for idx, h := range o.heat {
		cs.Heat[idx] = h
	}
	o.dirty = make(map[int64]bool)
	o.epoch = epoch
	return cs
}

// ProtectedCount returns the number of currently write-protected pages.
func (o *Object) ProtectedCount() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.protected)
}

// IsProtected reports whether page idx is COW-protected by an
// in-flight or durable checkpoint.
func (o *Object) IsProtected(idx int64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.protected[idx]
}

// CowFault services a write fault on a checkpoint-protected page using
// Aurora's rule: allocate a new frame, copy the old contents into it,
// and install it as the page seen by every process mapping the object.
// The original frame remains owned by the checkpoint set that
// protected it. The new page is immediately dirty with respect to the
// next checkpoint.
//
// This differs from fork-style COW, which would give only the faulting
// process a private copy and thereby break shared-memory semantics —
// the reason stock kernels refuse to COW-track shared pages at all.
func (o *Object) CowFault(pm *PhysMem, idx int64, meter *Meter) (*Frame, error) {
	o.mu.Lock()
	old, ok := o.pages[idx]
	if !ok || !o.protected[idx] {
		// Raced with another fault that already resolved it.
		f := o.pages[idx]
		o.mu.Unlock()
		return f, nil
	}
	o.mu.Unlock()

	fresh, err := pm.AllocCopy(old)
	if err != nil {
		return nil, err
	}

	o.mu.Lock()
	// Re-check under the lock; a concurrent fault may have won.
	if cur, ok := o.pages[idx]; !ok || cur != old || !o.protected[idx] {
		cur := o.pages[idx]
		o.mu.Unlock()
		pm.Free(fresh)
		return cur, nil
	}
	o.pages[idx] = fresh
	delete(o.protected, idx)
	o.dirty[idx] = true
	o.mu.Unlock()

	pm.Free(old) // drop the object's reference; the checkpoint still holds one
	if meter != nil {
		meter.CowFaults.Add(1)
		meter.ChargeCopy(1)
	}
	return fresh, nil
}

// Unprotect clears COW protection without a copy. Used when a
// checkpoint aborts, and by tests.
func (o *Object) Unprotect(idx int64) {
	o.mu.Lock()
	delete(o.protected, idx)
	o.mu.Unlock()
}

// allocPageLocked allocates a zero frame at idx. Caller holds o.mu.
func (o *Object) allocPageLocked(pm *PhysMem, idx int64) (*Frame, error) {
	f, err := pm.Alloc()
	if err != nil {
		return nil, err
	}
	o.pages[idx] = f
	if end := (idx + 1) << PageShift; end > o.size {
		o.size = end
	}
	return f, nil
}

// EnsurePage returns the frame backing page idx of this object,
// allocating a zero-filled page (or privately copying a shadow page,
// fork-style) as needed. The returned frame always lives in o itself,
// making it safe to write. Reports whether a fork-style private copy
// was made.
func (o *Object) EnsurePage(pm *PhysMem, idx int64, meter *Meter) (*Frame, bool, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if f, ok := o.pages[idx]; ok {
		return f, false, nil
	}
	// Lazy restore: a write to an image-backed page pulls it in first.
	if o.source != nil {
		if _, ok := o.swapSlots[idx]; !ok && o.source.HasPage(idx) {
			src := o.source
			o.mu.Unlock()
			data, err := src.FetchPage(idx)
			if err != nil {
				o.mu.Lock()
				return nil, false, err
			}
			f, err := pm.Alloc()
			if err != nil {
				o.mu.Lock()
				return nil, false, err
			}
			copy(f.Data, data)
			o.mu.Lock()
			if cur, ok := o.pages[idx]; ok {
				pm.Free(f)
				o.dirty[idx] = true
				return cur, false, nil
			}
			o.pages[idx] = f
			if end := (idx + 1) << PageShift; end > o.size {
				o.size = end
			}
			o.dirty[idx] = true
			if meter != nil {
				meter.PageIns.Add(1)
			}
			return f, false, nil
		}
	}
	// Fall through the shadow chain: a hit there must be privately
	// copied up into this object before writing (fork-style COW).
	if f, owner := o.lookupLocked(idx); f != nil && owner != o {
		cp, err := pm.AllocCopy(f)
		if err != nil {
			return nil, false, err
		}
		o.pages[idx] = cp
		o.dirty[idx] = true
		if meter != nil {
			meter.ChargeCopy(1)
		}
		return cp, true, nil
	}
	f, err := o.allocPageLocked(pm, idx)
	if err != nil {
		return nil, false, err
	}
	if meter != nil {
		meter.ZeroFills.Add(1)
	}
	o.dirty[idx] = true
	return f, false, nil
}

// InstallSharedPage maps an image-owned frame into the object with
// COW protection: the restored application and the checkpoint image
// share the frame until the application writes, when CowFault gives
// the object a private copy and the image keeps the original. This is
// the paper's zero-copy memory restore.
func (o *Object) InstallSharedPage(pm *PhysMem, idx int64, f *Frame) {
	f.Ref()
	o.mu.Lock()
	old := o.pages[idx]
	o.pages[idx] = f
	o.protected[idx] = true
	delete(o.swapSlots, idx)
	if end := (idx + 1) << PageShift; end > o.size {
		o.size = end
	}
	o.mu.Unlock()
	if old != nil {
		pm.Free(old)
	}
}

// SwapOut removes page idx from memory, recording its swap slot. The
// caller has already written the frame to the swap device. Returns the
// evicted frame for the caller to release.
func (o *Object) SwapOut(idx int64, slot int64) *Frame {
	o.mu.Lock()
	defer o.mu.Unlock()
	f, ok := o.pages[idx]
	if !ok {
		return nil
	}
	delete(o.pages, idx)
	delete(o.protected, idx)
	o.swapSlots[idx] = slot
	return f
}

// SwapSlot reports the swap slot of a paged-out page.
func (o *Object) SwapSlot(idx int64) (int64, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	slot, ok := o.swapSlots[idx]
	return slot, ok
}

// SwappedPages lists pages currently on swap.
func (o *Object) SwappedPages() map[int64]int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	out := make(map[int64]int64, len(o.swapSlots))
	for k, v := range o.swapSlots {
		out[k] = v
	}
	return out
}
