package storage

import "time"

// DeviceClass identifies a storage technology. It selects a latency and
// bandwidth profile and is reported by the experiment harness.
type DeviceClass int

const (
	// ClassDRAM models an in-memory image "device": checkpoints held in
	// RAM, as used for debugging and speculative execution backends.
	ClassDRAM DeviceClass = iota
	// ClassNVDIMM models byte-addressable persistent memory.
	ClassNVDIMM
	// ClassOptaneNVMe models an Intel Optane 900P-class NVMe drive
	// (the paper's testbed has four of them).
	ClassOptaneNVMe
	// ClassFlashNVMe models a conventional flash NVMe drive.
	ClassFlashNVMe
	// ClassSATASSD models a SATA solid state drive.
	ClassSATASSD
	// ClassHDD models a spinning disk, the technology that made
	// historical single level stores impractical.
	ClassHDD
	// ClassNIC models a network interface for remote backends.
	ClassNIC
)

// String returns the conventional name of the device class.
func (c DeviceClass) String() string {
	switch c {
	case ClassDRAM:
		return "dram"
	case ClassNVDIMM:
		return "nvdimm"
	case ClassOptaneNVMe:
		return "optane-nvme"
	case ClassFlashNVMe:
		return "flash-nvme"
	case ClassSATASSD:
		return "sata-ssd"
	case ClassHDD:
		return "hdd"
	case ClassNIC:
		return "nic"
	default:
		return "unknown"
	}
}

// DeviceParams describes the performance envelope of a simulated device.
// The cost of an I/O is Latency + ceil(bytes/Bandwidth); queue depth
// allows that cost to overlap across concurrent requests, modeling the
// parallelism of NVMe hardware.
type DeviceParams struct {
	Name       string
	Class      DeviceClass
	Latency    time.Duration // fixed per-operation latency
	ReadBW     int64         // bytes per second
	WriteBW    int64         // bytes per second
	QueueDepth int           // concurrent in-flight operations
	Capacity   int64         // bytes; 0 means unbounded
	BlockSize  int           // allocation granularity in bytes
}

// Default device profiles. Latency and bandwidth figures follow the
// hardware cited by the paper (§2): Optane SSDs with ~10 µs latency,
// PCIe bandwidth approaching the memory bus, and DRAM two orders of
// magnitude faster than even Optane.
var (
	// ParamsDRAM is an in-memory backend: ~80 ns access, ~100 GB/s.
	ParamsDRAM = DeviceParams{
		Name: "dram0", Class: ClassDRAM,
		Latency: 80 * time.Nanosecond,
		ReadBW:  100 << 30, WriteBW: 80 << 30,
		QueueDepth: 64, BlockSize: 4096,
	}
	// ParamsNVDIMM models persistent memory at near-DRAM speed.
	ParamsNVDIMM = DeviceParams{
		Name: "nvdimm0", Class: ClassNVDIMM,
		Latency: 300 * time.Nanosecond,
		ReadBW:  30 << 30, WriteBW: 10 << 30,
		QueueDepth: 32, BlockSize: 256,
	}
	// ParamsOptaneNVMe models a single Intel Optane 900P: 10 µs access
	// latency, ~2.5 GB/s read and ~2.0 GB/s write bandwidth.
	ParamsOptaneNVMe = DeviceParams{
		Name: "nvme0", Class: ClassOptaneNVMe,
		Latency: 10 * time.Microsecond,
		ReadBW:  2_500 << 20, WriteBW: 2_000 << 20,
		QueueDepth: 16, BlockSize: 4096,
	}
	// ParamsFlashNVMe models a conventional flash NVMe drive: higher
	// latency than Optane but comparable sequential bandwidth.
	ParamsFlashNVMe = DeviceParams{
		Name: "flash0", Class: ClassFlashNVMe,
		Latency: 80 * time.Microsecond,
		ReadBW:  3_000 << 20, WriteBW: 1_500 << 20,
		QueueDepth: 32, BlockSize: 4096,
	}
	// ParamsSATASSD models a SATA SSD.
	ParamsSATASSD = DeviceParams{
		Name: "ssd0", Class: ClassSATASSD,
		Latency: 120 * time.Microsecond,
		ReadBW:  550 << 20, WriteBW: 500 << 20,
		QueueDepth: 8, BlockSize: 4096,
	}
	// ParamsNIC10G models the paper's Intel X722 10 GbE NIC as a
	// "device": replication streams pay its latency and line rate.
	ParamsNIC10G = DeviceParams{
		Name: "nic0", Class: ClassNIC,
		Latency: 40 * time.Microsecond,
		ReadBW:  1_250 << 20, WriteBW: 1_250 << 20,
		QueueDepth: 8, BlockSize: 1500,
	}
	// ParamsHDD models a 7200 RPM spinning disk with millisecond seeks —
	// the regime in which EROS-era single level stores struggled.
	ParamsHDD = DeviceParams{
		Name: "hdd0", Class: ClassHDD,
		Latency: 5 * time.Millisecond,
		ReadBW:  180 << 20, WriteBW: 160 << 20,
		QueueDepth: 1, BlockSize: 4096,
	}
)

// readCost returns the modeled duration of reading n bytes.
func (p DeviceParams) readCost(n int) time.Duration {
	return p.Latency + bwCost(n, p.ReadBW)
}

// writeCost returns the modeled duration of writing n bytes.
func (p DeviceParams) writeCost(n int) time.Duration {
	return p.Latency + bwCost(n, p.WriteBW)
}

// bwCost converts a transfer size and bandwidth into a duration.
func bwCost(n int, bw int64) time.Duration {
	if bw <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(int64(n) * int64(time.Second) / bw)
}
