// Package slsfs implements the Aurora file system: a POSIX-style file
// API layered directly over the object store.
//
// The file system exists to keep file state and process state in one
// store so a single checkpoint covers both. It provides what the
// paper highlights:
//
//   - zero-copy snapshots and clones: a snapshot is an object-store
//     manifest; a clone is a new namespace resolving against an
//     existing snapshot, sharing every data block by reference;
//   - correct handling of unlinked-but-open (anonymous) files: an
//     on-disk open reference count keeps their inodes alive across
//     crash and restore, where an ordinary POSIX file system would
//     reclaim them and strand the restored application; and
//   - incremental flushing: only pages dirtied since the previous
//     snapshot are rewritten.
//
// Files implement kernel.OpenFile, so simulated processes read and
// write them through ordinary descriptors.
package slsfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"aurora/internal/codec"
	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/vm"
)

// Errors returned by the file system.
var (
	ErrNotExist = errors.New("slsfs: no such file or directory")
	ErrExist    = errors.New("slsfs: file exists")
	ErrIsDir    = errors.New("slsfs: is a directory")
	ErrNotDir   = errors.New("slsfs: not a directory")
	ErrNotEmpty = errors.New("slsfs: directory not empty")
	ErrBadPath  = errors.New("slsfs: bad path")
)

// Object kinds used in the store for file-system records.
const (
	KindFSFile      kernel.Kind = 32
	KindFSNamespace kernel.Kind = 33
)

// inoBit tags file-system OIDs so they never collide with kernel OIDs
// in a shared store.
const inoBit = uint64(1) << 62

// nsOID is the reserved OID of the namespace record.
const nsOID = inoBit | 1

// Mode distinguishes files from directories.
type Mode uint8

// Inode modes.
const (
	ModeFile Mode = iota
	ModeDir
)

// Inode is one file or directory.
type Inode struct {
	Ino   uint64
	Mode  Mode
	Nlink int // namespace links
	// OpenRefs is the persistent open reference count: the number of
	// descriptor-table references that survive in checkpoints. An
	// unlinked inode stays alive while OpenRefs > 0.
	OpenRefs int

	mu    sync.Mutex
	size  int64
	pages map[int64][]byte // buffer cache
	dirty map[int64]bool   // pages modified since last snapshot
	// backing maps pages to store blocks for lazily loaded inodes
	// (clones and snapshot restores fault data in on demand).
	backing map[int64]objstore.BlockRef
	// children is the directory table for ModeDir inodes.
	children map[string]uint64
	// flushedEpoch is the last snapshot epoch this inode was written
	// to (0 = never flushed into the current group).
	flushedEpoch uint64
	// metaDirty marks metadata changes (links, open refs, size) that
	// must reach the next snapshot even with no page writes.
	metaDirty bool
}

// FS is a mounted Aurora file system.
type FS struct {
	store *objstore.Store
	group uint64

	// snapMu serializes whole-FS snapshots: a snapshot reads and clears
	// per-inode dirty tracking, so two overlapping snapshots would race
	// on which epoch owns a dirty page. Held across Snapshot only, so
	// file I/O keeps running during a snapshot.
	snapMu sync.Mutex

	mu      sync.Mutex
	inodes  map[uint64]*Inode
	nextIno uint64
	epoch   uint64
	rootIno uint64
	nsDirty bool
}

// New creates an empty file system that will snapshot into the given
// object-store group.
func New(store *objstore.Store, group uint64) *FS {
	fs := &FS{
		store:   store,
		group:   group,
		inodes:  make(map[uint64]*Inode),
		nextIno: 2,
	}
	root := fs.newInode(ModeDir)
	root.Nlink = 1
	fs.rootIno = root.Ino
	fs.nsDirty = true
	return fs
}

// Store returns the backing object store.
func (fs *FS) Store() *objstore.Store { return fs.store }

// Group returns the store group the file system snapshots into.
func (fs *FS) Group() uint64 { return fs.group }

// Epoch returns the snapshot epoch counter.
func (fs *FS) Epoch() uint64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.epoch
}

func (fs *FS) newInode(mode Mode) *Inode {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	ino := inoBit | fs.nextIno
	fs.nextIno++
	in := &Inode{
		Ino:     ino,
		Mode:    mode,
		pages:   make(map[int64][]byte),
		dirty:   make(map[int64]bool),
		backing: make(map[int64]objstore.BlockRef),
	}
	if mode == ModeDir {
		in.children = make(map[string]uint64)
	}
	fs.inodes[ino] = in
	return in
}

func (fs *FS) inode(ino uint64) *Inode {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.inodes[ino]
}

// splitPath normalizes and splits an absolute path.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrBadPath
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			return nil, ErrBadPath
		default:
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// walk resolves a path to (parent dir inode, leaf name, leaf inode).
// The leaf inode is nil if the entry does not exist.
func (fs *FS) walk(path string) (*Inode, string, *Inode, error) {
	parts, err := splitPath(path)
	if err != nil {
		return nil, "", nil, err
	}
	dir := fs.inode(fs.rootIno)
	if len(parts) == 0 {
		return nil, "", dir, nil
	}
	for i := 0; i < len(parts)-1; i++ {
		dir.mu.Lock()
		childIno, ok := dir.children[parts[i]]
		dir.mu.Unlock()
		if !ok {
			return nil, "", nil, ErrNotExist
		}
		child := fs.inode(childIno)
		if child == nil || child.Mode != ModeDir {
			return nil, "", nil, ErrNotDir
		}
		dir = child
	}
	leaf := parts[len(parts)-1]
	dir.mu.Lock()
	childIno, ok := dir.children[leaf]
	dir.mu.Unlock()
	if !ok {
		return dir, leaf, nil, nil
	}
	return dir, leaf, fs.inode(childIno), nil
}

// Mkdir creates a directory.
func (fs *FS) Mkdir(path string) error {
	dir, name, leaf, err := fs.walk(path)
	if err != nil {
		return err
	}
	if leaf != nil {
		return ErrExist
	}
	if dir == nil {
		return ErrBadPath
	}
	child := fs.newInode(ModeDir)
	child.Nlink = 1
	dir.mu.Lock()
	dir.children[name] = child.Ino
	dir.mu.Unlock()
	fs.markNSDirty()
	return nil
}

// Create creates (or truncates) a regular file and opens it.
func (fs *FS) Create(path string) (*File, error) {
	dir, name, leaf, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if dir == nil {
		return nil, ErrIsDir
	}
	if leaf != nil {
		if leaf.Mode == ModeDir {
			return nil, ErrIsDir
		}
		leaf.truncate(0)
		fs.markNSDirty()
		return fs.open(leaf), nil
	}
	in := fs.newInode(ModeFile)
	in.Nlink = 1
	dir.mu.Lock()
	dir.children[name] = in.Ino
	dir.mu.Unlock()
	fs.markNSDirty()
	return fs.open(in), nil
}

// Open opens an existing regular file.
func (fs *FS) Open(path string) (*File, error) {
	_, _, leaf, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if leaf == nil {
		return nil, ErrNotExist
	}
	if leaf.Mode == ModeDir {
		return nil, ErrIsDir
	}
	return fs.open(leaf), nil
}

func (fs *FS) open(in *Inode) *File {
	in.mu.Lock()
	in.OpenRefs++
	in.metaDirty = true
	in.mu.Unlock()
	fs.markNSDirty()
	return &File{fs: fs, in: in}
}

// OpenOrphan reopens an unlinked-but-open inode by number; restored
// descriptor tables use this to reattach to anonymous files.
func (fs *FS) OpenOrphan(ino uint64) (*File, error) {
	in := fs.inode(ino)
	if in == nil {
		return nil, ErrNotExist
	}
	return fs.open(in), nil
}

// Unlink removes a file's name. The inode survives while open
// descriptors (including checkpointed ones) reference it.
func (fs *FS) Unlink(path string) error {
	dir, name, leaf, err := fs.walk(path)
	if err != nil {
		return err
	}
	if leaf == nil {
		return ErrNotExist
	}
	if leaf.Mode == ModeDir {
		return ErrIsDir
	}
	dir.mu.Lock()
	delete(dir.children, name)
	dir.mu.Unlock()
	leaf.mu.Lock()
	leaf.Nlink--
	leaf.metaDirty = true
	drop := leaf.Nlink <= 0 && leaf.OpenRefs <= 0
	leaf.mu.Unlock()
	if drop {
		fs.dropInode(leaf.Ino)
	}
	fs.markNSDirty()
	return nil
}

// Rmdir removes an empty directory.
func (fs *FS) Rmdir(path string) error {
	dir, name, leaf, err := fs.walk(path)
	if err != nil {
		return err
	}
	if leaf == nil {
		return ErrNotExist
	}
	if leaf.Mode != ModeDir {
		return ErrNotDir
	}
	leaf.mu.Lock()
	empty := len(leaf.children) == 0
	leaf.mu.Unlock()
	if !empty {
		return ErrNotEmpty
	}
	dir.mu.Lock()
	delete(dir.children, name)
	dir.mu.Unlock()
	fs.dropInode(leaf.Ino)
	fs.markNSDirty()
	return nil
}

// Rename moves a file or directory.
func (fs *FS) Rename(oldPath, newPath string) error {
	oldDir, oldName, leaf, err := fs.walk(oldPath)
	if err != nil {
		return err
	}
	if leaf == nil {
		return ErrNotExist
	}
	newDir, newName, existing, err := fs.walk(newPath)
	if err != nil {
		return err
	}
	if existing != nil {
		return ErrExist
	}
	if newDir == nil {
		return ErrBadPath
	}
	oldDir.mu.Lock()
	delete(oldDir.children, oldName)
	oldDir.mu.Unlock()
	newDir.mu.Lock()
	newDir.children[newName] = leaf.Ino
	newDir.mu.Unlock()
	fs.markNSDirty()
	return nil
}

// ReadDir lists a directory's entries in order.
func (fs *FS) ReadDir(path string) ([]string, error) {
	_, _, leaf, err := fs.walk(path)
	if err != nil {
		return nil, err
	}
	if leaf == nil {
		return nil, ErrNotExist
	}
	if leaf.Mode != ModeDir {
		return nil, ErrNotDir
	}
	leaf.mu.Lock()
	defer leaf.mu.Unlock()
	out := make([]string, 0, len(leaf.children))
	for name := range leaf.children {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Stat reports (size, mode) of a path.
func (fs *FS) Stat(path string) (int64, Mode, error) {
	_, _, leaf, err := fs.walk(path)
	if err != nil {
		return 0, 0, err
	}
	if leaf == nil {
		return 0, 0, ErrNotExist
	}
	leaf.mu.Lock()
	defer leaf.mu.Unlock()
	return leaf.size, leaf.Mode, nil
}

func (fs *FS) dropInode(ino uint64) {
	fs.mu.Lock()
	delete(fs.inodes, ino)
	fs.mu.Unlock()
}

func (fs *FS) markNSDirty() {
	fs.mu.Lock()
	fs.nsDirty = true
	fs.mu.Unlock()
}

// --- inode data plane ---

func (in *Inode) truncate(size int64) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if size < in.size {
		first := (size + vm.PageSize - 1) >> vm.PageShift
		for idx := range in.pages {
			if idx >= first {
				delete(in.pages, idx)
				delete(in.dirty, idx)
			}
		}
		for idx := range in.backing {
			if idx >= first {
				delete(in.backing, idx)
			}
		}
	}
	in.size = size
	in.metaDirty = true
}

// WriteAt writes p at offset off, extending the file as needed.
func (in *Inode) WriteAt(p []byte, off int64) (int, error) {
	in.mu.Lock()
	defer in.mu.Unlock()
	n := 0
	for n < len(p) {
		idx := (off + int64(n)) >> vm.PageShift
		po := (off + int64(n)) & vm.PageMask
		span := int(vm.PageSize - po)
		if span > len(p)-n {
			span = len(p) - n
		}
		pg, ok := in.pages[idx]
		if !ok {
			pg = make([]byte, vm.PageSize)
			in.pages[idx] = pg
		}
		copy(pg[po:po+int64(span)], p[n:n+span])
		in.dirty[idx] = true
		n += span
	}
	if end := off + int64(len(p)); end > in.size {
		in.size = end
	}
	return n, nil
}

// Size returns the file size.
func (in *Inode) Size() int64 {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.size
}

func decodeInodeMeta(meta []byte) (*Inode, error) {
	d := codec.NewDecoder(meta)
	in := &Inode{
		Ino:     d.U64(),
		Mode:    Mode(d.U8()),
		pages:   make(map[int64][]byte),
		dirty:   make(map[int64]bool),
		backing: make(map[int64]objstore.BlockRef),
	}
	in.Nlink = int(d.I64())
	in.OpenRefs = int(d.I64())
	in.size = d.I64()
	if in.Mode == ModeDir {
		in.children = make(map[string]uint64)
	}
	if err := d.Finish("inode"); err != nil {
		return nil, err
	}
	return in, nil
}

// String describes the file system for diagnostics.
func (fs *FS) String() string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fmt.Sprintf("slsfs(group=%d, %d inodes, epoch=%d)", fs.group, len(fs.inodes), fs.epoch)
}
