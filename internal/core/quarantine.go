package core

import (
	"errors"
	"sort"
)

// ErrEpochQuarantined marks a checkpoint epoch that failed restore
// validation: its blocks no longer match their manifest hashes. The
// epoch is recorded as poisoned (in the group and, for store backends,
// persistently in the store) and skipped by every later restore, which
// falls back to the newest non-quarantined durable epoch. Always
// returned wrapped; select with errors.Is.
var ErrEpochQuarantined = errors.New("core: epoch quarantined")

// quarantineEpoch records that epoch of lineage gid failed validation
// against backend b: in the group's ledger (for `sls ps`/`sls epochs`)
// and, when b is store-backed, durably in the store itself so the
// epoch stays poisoned across remounts.
func (o *Orchestrator) quarantineEpoch(g *Group, b Backend, gid, epoch uint64, reason error) {
	why := "validation failed"
	if reason != nil {
		why = reason.Error()
	}
	if sb, ok := b.(*StoreBackend); ok {
		sb.store.Quarantine(gid, epoch, why)
	}
	g.healthMu.Lock()
	if g.quarantined == nil {
		g.quarantined = make(map[uint64]string)
	}
	g.quarantined[epoch] = why
	g.healthMu.Unlock()
}

// Quarantined returns the epochs of this group that failed restore
// validation, with the reason each was poisoned. It merges the group's
// own ledger with every attached store backend's persistent record.
func (g *Group) Quarantined() map[uint64]string {
	out := make(map[uint64]string)
	for _, b := range g.Backends() {
		sb, ok := b.(*StoreBackend)
		if !ok {
			continue
		}
		for ep, why := range sb.store.QuarantinedEpochs(g.ID) {
			out[ep] = why
		}
		// Marks recorded under the lineage this group was restored from
		// poison the same chain.
		if org := g.Origin(); org != 0 && org != g.ID {
			for ep, why := range sb.store.QuarantinedEpochs(org) {
				out[ep] = why
			}
		}
	}
	g.healthMu.Lock()
	for ep, why := range g.quarantined {
		out[ep] = why
	}
	g.healthMu.Unlock()
	return out
}

// QuarantinedEpochs returns the quarantined epochs sorted ascending.
func (g *Group) QuarantinedEpochs() []uint64 {
	m := g.Quarantined()
	out := make([]uint64, 0, len(m))
	for ep := range m {
		out = append(out, ep)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// AddRestorePeer registers an out-of-band block provider (e.g. a
// netback replica's receiver) that lazy restores of this group may
// fail over to, in addition to the group's own store backends.
func (o *Orchestrator) AddRestorePeer(g *Group, p BlockProvider) {
	g.mu.Lock()
	g.restorePeers = append(g.restorePeers, p)
	g.mu.Unlock()
}

// adoptSources binds the demand-paging sources a restore created to
// the restored group: read faults now drive the group's health ladder
// and the sources' repair counters aggregate under RecoveryStats.
func (g *Group) adoptSources(srcs []*lazyPageSource) {
	if len(srcs) == 0 {
		return
	}
	for _, s := range srcs {
		s.bind(g)
	}
	g.mu.Lock()
	g.sources = append(g.sources, srcs...)
	g.mu.Unlock()
}

// RecoveryStats sums the demand-paging repair effort of every lazy
// source attached to this group (failovers, read-repairs, retries).
func (g *Group) RecoveryStats() RecoveryStats {
	g.mu.Lock()
	srcs := append([]*lazyPageSource(nil), g.sources...)
	g.mu.Unlock()
	var out RecoveryStats
	for _, s := range srcs {
		st := s.stats()
		out.Failovers += st.Failovers
		out.PagesRepaired += st.PagesRepaired
		out.Retries += st.Retries
	}
	return out
}
