package bench

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"aurora/internal/core"
	"aurora/internal/kernel"
	"aurora/internal/netback"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// This file is the store-kill placement chaos harness: a fleet of N
// stores (each a full topology Node) is populated with hundreds of
// counter groups through core.Placer under failure-domain
// anti-affinity, driven with open-loop checkpoint load over
// fault-injecting links and store devices, and then one store's device
// dies permanently. The placer's probe ladder must declare the death,
// evacuate every resident lineage through the bounded-concurrency
// queue (standby promotion on the best surviving replica, typed
// ErrEvacuating while queued), and re-replicate to full strength.
// Invariants asserted after the heal, per resident lineage: durable
// never regressed, the workload state is bit-identical on the new
// primary (counter + patterned pages), a scratch-machine restore from
// the new primary's store is bit-identical, exactly one store claims
// the primary role at the max generation, and no placement violates
// anti-affinity. An optional drain leg then decommissions one
// survivor end to end.

// placePages is the patterned working set per group (beyond the
// counter page). Smaller than the single-group chaos harness's — the
// placement gate multiplies it by hundreds of groups.
const placePages = 2

// PlacementChaosConfig parameterizes one placement chaos run. Zero
// values pick defaults.
type PlacementChaosConfig struct {
	Seed int64

	// Stores is the fleet size (default 4); failure domains are
	// assigned round-robin over max(2, Stores/2) domains, so a domain
	// holds more than one store once the fleet is big enough.
	Stores int
	// Groups is the number of placed lineages (default 48; the
	// acceptance gate runs 256 via AURORA_PLACE_GROUPS).
	Groups int
	// Replicas is the copy count per lineage, primary included
	// (default 2).
	Replicas int

	// PreEpochs checkpoints run per group before the kill (default 3);
	// PostEpochs after the heal (default 2).
	PreEpochs  int
	PostEpochs int
	// StepsPerEpoch is scheduler quanta per group per epoch (default 2).
	StepsPerEpoch int

	// EvacConcurrency bounds evacuations per placer poll (default 8).
	EvacConcurrency int

	// Per-frame link fault probabilities on every replication wire.
	LinkDrop    float64
	LinkDup     float64
	LinkReorder float64
	LinkCorrupt float64
	// Store fault probabilities (every store's device).
	StoreWriteErr float64
	StoreReadErr  float64

	// SkipKill skips the store-kill leg (placement + load only).
	SkipKill bool
	// Drain decommissions one surviving store after the heal
	// (default on via withDefaults; set false after calling it to
	// disable).
	Drain bool
}

func (c PlacementChaosConfig) withDefaults() PlacementChaosConfig {
	if c.Stores == 0 {
		c.Stores = 4
	}
	if c.Groups == 0 {
		c.Groups = 48
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.PreEpochs == 0 {
		c.PreEpochs = 3
	}
	if c.PostEpochs == 0 {
		c.PostEpochs = 2
	}
	if c.StepsPerEpoch == 0 {
		c.StepsPerEpoch = 2
	}
	if c.EvacConcurrency == 0 {
		c.EvacConcurrency = 8
	}
	return c
}

// PlacementChaosReport is the outcome of one placement chaos run.
type PlacementChaosReport struct {
	Seed           int64
	Stores, Groups int

	Placed     int // lineages placed
	Victim     string
	Residents  int // primaries resident on the victim at kill time
	Evacuated  int // lineages re-homed by standby promotion
	Repaired   int // placements whose replica set was rebuilt
	Polls      int // placer poll rounds to drain the storm
	Evacuating int // ErrEvacuating lookups observed mid-storm

	// Evacuation TTR percentiles (virtual, per-promotion on the target
	// machine's clock).
	EvacTTRs                        []time.Duration
	EvacTTRp50, EvacTTRp99, EvacMax time.Duration

	RestoresVerified int // bit-identical verifications (live + scratch)
	Degraded         int // placements below full replication after heal
	Violations       int // anti-affinity violations after heal (must be 0)

	Drained        int // lineages migrated off by the drain leg
	ExemptRestores int // supervisor recoveries exempted as evacuation-initiated

	FinalDurable uint64 // max durable epoch across surviving lineages
	LinkDropped  int64
	LinkInjected int64
}

// placeRun carries the harness state.
type placeRun struct {
	cfg PlacementChaosConfig
	rep *PlacementChaosReport

	tp     *Topology
	dir    *netback.Directory
	placer *core.Placer
	nodes  []*core.StoreNode
	bench  map[*core.StoreNode]*Node // placer node -> topology node

	counterAt   map[uint64]map[uint64]uint64 // lineage -> epoch -> counter
	patternSeed map[uint64]int64             // lineage -> pattern seed
	lastDurable map[uint64]uint64            // lineage -> last observed durable
}

func domainOf(i, stores int) string {
	domains := stores / 2
	if domains < 2 {
		domains = stores
	}
	return fmt.Sprintf("rack%d", i%domains)
}

// PlacementChaosRun executes one placement chaos schedule.
func PlacementChaosRun(cfg PlacementChaosConfig) (*PlacementChaosReport, error) {
	cfg = cfg.withDefaults()
	r := &placeRun{
		cfg:         cfg,
		rep:         &PlacementChaosReport{Seed: cfg.Seed, Stores: cfg.Stores, Groups: cfg.Groups},
		bench:       make(map[*core.StoreNode]*Node),
		counterAt:   make(map[uint64]map[uint64]uint64),
		patternSeed: make(map[uint64]int64),
		lastDurable: make(map[uint64]uint64),
	}

	// Fleet: N stores, each a full topology node, linked through the
	// production netback directory (the same code path the CLI wires).
	r.tp = NewTopology(netback.LinkFaultConfig{
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	})
	r.dir = netback.NewDirectory(netback.LinkFaultConfig{
		Seed:    cfg.Seed,
		Drop:    cfg.LinkDrop,
		Dup:     cfg.LinkDup,
		Reorder: cfg.LinkReorder,
		Corrupt: cfg.LinkCorrupt,
	})
	r.placer = core.NewPlacer(r.dir, core.PlacerConfig{
		Replicas:        cfg.Replicas,
		EvacConcurrency: cfg.EvacConcurrency,
		DownAfter:       5, // ride out injected probe faults on healthy stores
		Retries:         8, // faulted cells need migrator retry headroom
	})
	for i := 0; i < cfg.Stores; i++ {
		bn := r.tp.Node(fmt.Sprintf("store%d", i), cfg.Seed*1000003+int64(i)*7919,
			cfg.StoreWriteErr, cfg.StoreReadErr)
		sn := &core.StoreNode{
			Name:   bn.name,
			Domain: domainOf(i, cfg.Stores),
			O:      bn.o,
			SB:     bn.sb,
			Sup:    core.NewSupervisor(bn.o, core.SupervisorConfig{}),
		}
		if err := r.placer.AddStore(sn); err != nil {
			return nil, err
		}
		r.nodes = append(r.nodes, sn)
		r.bench[sn] = bn
	}

	// Place the fleet's lineages.
	for i := 0; i < cfg.Groups; i++ {
		name := fmt.Sprintf("app%04d", i)
		pseed := cfg.Seed + int64(i)
		pl, err := r.placer.Place(name, func(n *core.StoreNode) (*core.Group, error) {
			p, err := n.O.K.Spawn(0, name)
			if err != nil {
				return nil, err
			}
			p.SetProgram(&chaosCounter{addr: p.HeapBase()})
			for pg := 1; pg <= placePages; pg++ {
				if err := p.WriteMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), recoveryPattern(pg, pseed)); err != nil {
					return nil, err
				}
			}
			return n.O.Persist(name, p)
		})
		if err != nil {
			return nil, fmt.Errorf("bench: placement seed %d: placing %s: %w", cfg.Seed, name, err)
		}
		r.patternSeed[pl.Lineage] = pseed
		r.counterAt[pl.Lineage] = make(map[uint64]uint64)
		r.rep.Placed++
	}
	if v := r.placer.AntiAffinityViolations(); len(v) != 0 {
		return nil, fmt.Errorf("bench: placement seed %d: violations at placement time: %v", cfg.Seed, v)
	}

	// Open-loop checkpoint load before the kill.
	for e := 0; e < cfg.PreEpochs; e++ {
		if err := r.epoch(); err != nil {
			return nil, err
		}
	}

	if !cfg.SkipKill {
		if err := r.killLeg(); err != nil {
			return nil, err
		}
	}

	// Post-heal load: the fleet keeps running.
	for e := 0; e < cfg.PostEpochs; e++ {
		if err := r.epoch(); err != nil {
			return nil, err
		}
	}
	if err := r.checkInvariants("post-heal load"); err != nil {
		return nil, err
	}

	if cfg.Drain && !cfg.SkipKill {
		if err := r.drainLeg(); err != nil {
			return nil, err
		}
	}

	for _, pl := range r.placer.Placements() {
		if _, err := r.placer.Lookup(pl.Lineage); err != nil {
			continue
		}
		if d := pl.Group().Durable(); d > r.rep.FinalDurable {
			r.rep.FinalDurable = d
		}
	}
	for _, sn := range r.nodes {
		if sup := sn.Sup; sup != nil {
			for _, ev := range sup.Events() {
				if ev.Exempt {
					r.rep.ExemptRestores++
				}
			}
		}
	}
	sort.Slice(r.rep.EvacTTRs, func(i, j int) bool { return r.rep.EvacTTRs[i] < r.rep.EvacTTRs[j] })
	if n := len(r.rep.EvacTTRs); n > 0 {
		r.rep.EvacTTRp50 = r.rep.EvacTTRs[n/2]
		r.rep.EvacTTRp99 = r.rep.EvacTTRs[(n*99)/100]
		r.rep.EvacMax = r.rep.EvacTTRs[n-1]
	}
	return r.rep, nil
}

// live reports whether the placement is routable (not evacuating, not
// lost) and returns it.
func (r *placeRun) live(lineage uint64) (*core.Placement, bool) {
	pl, err := r.placer.Lookup(lineage)
	if err != nil {
		return nil, false
	}
	return pl, true
}

func (r *placeRun) readCounter(pl *core.Placement) (uint64, error) {
	g := pl.Group()
	pids := g.PIDs()
	if len(pids) == 0 {
		return 0, fmt.Errorf("bench: placement seed %d: lineage %d has no members", r.cfg.Seed, pl.Lineage)
	}
	p, err := pl.Primary().O.K.Process(pids[0])
	if err != nil {
		return 0, err
	}
	var b [8]byte
	if err := p.ReadMem(p.HeapBase(), b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// epoch drives one open-loop round: every active store runs its
// resident groups, then every routable lineage checkpoints and syncs
// durable through the placer's wire-healing loop.
func (r *placeRun) epoch() error {
	placements := r.placer.Placements()
	resident := make(map[*core.StoreNode]int)
	for _, pl := range placements {
		if _, ok := r.live(pl.Lineage); ok {
			resident[pl.Primary()]++
		}
	}
	for sn, count := range resident {
		if st := sn.State(); st != core.StoreActive && st != core.StoreDraining {
			continue
		}
		if _, err := r.bench[sn].k.Run(count * r.cfg.StepsPerEpoch); err != nil {
			return fmt.Errorf("bench: placement seed %d: workload on %s: %w", r.cfg.Seed, sn.Name, err)
		}
	}
	for _, pl := range placements {
		pl, ok := r.live(pl.Lineage)
		if !ok {
			continue
		}
		c, err := r.readCounter(pl)
		if err != nil {
			return err
		}
		shed := true
		for attempt := 0; attempt < 16 && shed; attempt++ {
			bd, err := pl.Primary().O.Checkpoint(pl.Group(), core.CheckpointOpts{})
			if err != nil {
				return fmt.Errorf("bench: placement seed %d: checkpointing lineage %d: %w", r.cfg.Seed, pl.Lineage, err)
			}
			shed = bd.Shed
		}
		if shed {
			return fmt.Errorf("bench: placement seed %d: admission control starved lineage %d", r.cfg.Seed, pl.Lineage)
		}
		r.counterAt[pl.Lineage][pl.Group().Epoch()] = c
		if err := r.placer.SyncDurable(pl.Lineage); err != nil {
			return err
		}
		if d := pl.Group().Durable(); d < r.lastDurable[pl.Lineage] {
			return fmt.Errorf("bench: placement seed %d: lineage %d durable regressed %d -> %d",
				r.cfg.Seed, pl.Lineage, r.lastDurable[pl.Lineage], d)
		} else {
			r.lastDurable[pl.Lineage] = d
		}
	}
	return nil
}

// killLeg kills the busiest store's device permanently and polls the
// placer until every resident is re-homed.
func (r *placeRun) killLeg() error {
	// Victim: the store holding the most primaries (maximal storm).
	resident := make(map[*core.StoreNode]int)
	for _, pl := range r.placer.Placements() {
		resident[pl.Primary()]++
	}
	var victim *core.StoreNode
	for _, sn := range r.nodes {
		if victim == nil || resident[sn] > resident[victim] ||
			(resident[sn] == resident[victim] && sn.Name < victim.Name) {
			victim = sn
		}
	}
	r.rep.Victim = victim.Name
	r.rep.Residents = resident[victim]
	residents := make([]uint64, 0, resident[victim])
	for _, pl := range r.placer.Placements() {
		if pl.Primary() == victim {
			residents = append(residents, pl.Lineage)
		}
	}

	r.bench[victim].fd.Down()

	// Poll until the storm drains. Each poll probes every store once
	// (DownAfter consecutive failures declare the death) and processes
	// a bounded slice of the evacuation/repair queues.
	maxPolls := 16 + (r.cfg.Groups/r.cfg.EvacConcurrency)*4
	for poll := 0; poll < maxPolls; poll++ {
		evs := r.placer.Poll()
		r.rep.Polls++
		for _, ev := range evs {
			switch ev.Kind {
			case "evacuated":
				r.rep.Evacuated++
				r.rep.EvacTTRs = append(r.rep.EvacTTRs, ev.TTR)
			case "repaired":
				r.rep.Repaired++
			}
			if ev.Kind == "evac-failed" && ev.Err != nil && !errors.Is(ev.Err, core.ErrNoFeasiblePlacement) {
				return fmt.Errorf("bench: placement seed %d: evacuating lineage %d: %w", r.cfg.Seed, ev.Lineage, ev.Err)
			}
		}
		evac, repair := r.placer.QueueDepths()
		if evac > 0 {
			// Mid-storm: queued lineages must surface the typed error.
			for _, lin := range residents {
				if _, err := r.placer.Lookup(lin); errors.Is(err, core.ErrEvacuating) {
					r.rep.Evacuating++
					break
				}
			}
		}
		if victim.State() == core.StoreDown && evac == 0 && repair == 0 {
			break
		}
	}
	if evac, repair := r.placer.QueueDepths(); evac != 0 || repair != 0 {
		return fmt.Errorf("bench: placement seed %d: storm did not drain (evac %d, repair %d after %d polls)",
			r.cfg.Seed, evac, repair, r.rep.Polls)
	}

	// Every resident must be re-homed and bit-identical.
	for _, lin := range residents {
		pl, ok := r.live(lin)
		if !ok {
			return fmt.Errorf("bench: placement seed %d: lineage %d not routable after heal", r.cfg.Seed, lin)
		}
		if pl.Primary() == victim {
			return fmt.Errorf("bench: placement seed %d: lineage %d still resident on dead %s", r.cfg.Seed, lin, victim.Name)
		}
		if err := r.verifyLineage(pl, "post-evacuation"); err != nil {
			return err
		}
		if len(pl.Replicas()) < r.cfg.Replicas-1 {
			r.rep.Degraded++
		}
	}
	return r.checkInvariants("post-evacuation")
}

// verifyLineage checks the lineage bit-identical: the live counter and
// patterned pages on the current primary match the last checkpointed
// state, and a scratch-machine restore from the primary's store agrees.
func (r *placeRun) verifyLineage(pl *core.Placement, where string) error {
	g := pl.Group()
	want, ok := r.counterAt[pl.Lineage][g.Durable()]
	if !ok {
		// The durable frontier includes placer-internal seed
		// checkpoints; fall back to the newest engine-observed epoch at
		// or below it.
		var best uint64
		found := false
		for ep, c := range r.counterAt[pl.Lineage] {
			if ep <= g.Durable() && ep >= best {
				best, want, found = ep, c, true
			}
		}
		if !found {
			return fmt.Errorf("bench: placement seed %d %s: no recorded counter for lineage %d ≤ epoch %d",
				r.cfg.Seed, where, pl.Lineage, g.Durable())
		}
	}
	c, err := r.readCounter(pl)
	if err != nil {
		return fmt.Errorf("bench: placement seed %d %s: %w", r.cfg.Seed, where, err)
	}
	if c != want {
		return fmt.Errorf("bench: placement seed %d %s: lineage %d counter %d, want %d — state not bit-identical",
			r.cfg.Seed, where, pl.Lineage, c, want)
	}
	pids := g.PIDs()
	p, err := pl.Primary().O.K.Process(pids[0])
	if err != nil {
		return err
	}
	buf := make([]byte, vm.PageSize)
	for pg := 1; pg <= placePages; pg++ {
		if err := p.ReadMem(p.HeapBase()+vm.Addr(pg*vm.PageSize), buf); err != nil {
			return fmt.Errorf("bench: placement seed %d %s: paging lineage %d page %d: %w",
				r.cfg.Seed, where, pl.Lineage, pg, err)
		}
		ref := recoveryPattern(pg, r.patternSeed[pl.Lineage])
		for i := range buf {
			if buf[i] != ref[i] {
				return fmt.Errorf("bench: placement seed %d %s: lineage %d page %d byte %d differs",
					r.cfg.Seed, where, pl.Lineage, pg, i)
			}
		}
	}
	r.rep.RestoresVerified++

	// Scratch restore from the new primary's store: the image chain
	// the promotion backfilled must be independently restorable.
	var img *core.Image
	var readTime time.Duration
	for attempt := 0; attempt < 8; attempt++ { // ride out injected read faults
		if img, readTime, err = pl.Primary().SB.Load(g.ID, g.Durable()); err == nil {
			break
		}
	}
	if err != nil {
		return fmt.Errorf("bench: placement seed %d %s: loading lineage %d epoch %d: %w",
			r.cfg.Seed, where, pl.Lineage, g.Durable(), err)
	}
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := core.NewOrchestrator(k)
	ng, _, err := o.RestoreImage(img, readTime, core.RestoreOpts{})
	if err != nil {
		return fmt.Errorf("bench: placement seed %d %s: scratch restore of lineage %d: %w",
			r.cfg.Seed, where, pl.Lineage, err)
	}
	npids := ng.PIDs()
	if len(npids) == 0 {
		return fmt.Errorf("bench: placement seed %d %s: scratch restore of lineage %d at epoch %d (group %d): image restored no processes",
			r.cfg.Seed, where, pl.Lineage, img.Epoch, img.Group)
	}
	sp, err := k.Process(npids[0])
	if err != nil {
		return err
	}
	var b [8]byte
	if err := sp.ReadMem(sp.HeapBase(), b[:]); err != nil {
		return err
	}
	if got := binary.LittleEndian.Uint64(b[:]); got != want {
		return fmt.Errorf("bench: placement seed %d %s: scratch restore of lineage %d: counter %d, want %d",
			r.cfg.Seed, where, pl.Lineage, got, want)
	}
	r.rep.RestoresVerified++
	return nil
}

// checkInvariants asserts zero anti-affinity violations and the
// exactly-one-primary-at-max-gen fencing invariant for every lineage,
// across every store in the fleet (dead ones included — their stale
// claims must rank strictly below the promoted generation).
func (r *placeRun) checkInvariants(where string) error {
	if v := r.placer.AntiAffinityViolations(); len(v) != 0 {
		r.rep.Violations += len(v)
		return fmt.Errorf("bench: placement seed %d %s: anti-affinity violated: %v", r.cfg.Seed, where, v)
	}
	for _, pl := range r.placer.Placements() {
		if _, ok := r.live(pl.Lineage); !ok {
			continue
		}
		type claim struct {
			who string
			gen uint64
		}
		var claims []claim
		var maxGen uint64
		for _, sn := range r.nodes {
			if gen, primary := sn.SB.Store().PrimaryGen(pl.Lineage); primary {
				claims = append(claims, claim{sn.Name, gen})
				if gen > maxGen {
					maxGen = gen
				}
			}
		}
		n := 0
		for _, cl := range claims {
			if cl.gen == maxGen {
				n++
			}
		}
		if n != 1 {
			return fmt.Errorf("bench: placement seed %d %s: lineage %d has %d primary claims at max generation %d (want exactly 1: %v)",
				r.cfg.Seed, where, pl.Lineage, n, maxGen, claims)
		}
	}
	return nil
}

// drainLeg decommissions the active store with the fewest residents:
// every resident lineage live-migrates off, replica roles re-home, the
// store fences, and the moved lineages stay bit-identical.
func (r *placeRun) drainLeg() error {
	resident := make(map[*core.StoreNode]int)
	for _, pl := range r.placer.Placements() {
		if _, ok := r.live(pl.Lineage); ok {
			resident[pl.Primary()]++
		}
	}
	// Drain a store outside the dead victim's failure domain: with the
	// victim's domain already short a store, draining inside it can
	// leave lineages there with no anti-affine migration target.
	var victimDomain string
	for _, sn := range r.nodes {
		if sn.Name == r.rep.Victim {
			victimDomain = sn.Domain
		}
	}
	var target *core.StoreNode
	for _, sn := range r.nodes {
		if sn.State() != core.StoreActive || sn.Domain == victimDomain {
			continue
		}
		if target == nil || resident[sn] < resident[target] ||
			(resident[sn] == resident[target] && sn.Name < target.Name) {
			target = sn
		}
	}
	if target == nil {
		return nil
	}
	moved := make([]uint64, 0, resident[target])
	for _, pl := range r.placer.Placements() {
		if _, ok := r.live(pl.Lineage); ok && pl.Primary() == target {
			moved = append(moved, pl.Lineage)
		}
	}
	evs, err := r.placer.Drain(target)
	if err != nil {
		return fmt.Errorf("bench: placement seed %d: draining %s: %w", r.cfg.Seed, target.Name, err)
	}
	for _, ev := range evs {
		if ev.Kind == "migrated" {
			r.rep.Drained++
		}
	}
	if target.State() != core.StoreFenced {
		return fmt.Errorf("bench: placement seed %d: %s state %s after drain, want fenced",
			r.cfg.Seed, target.Name, target.State())
	}
	for _, lin := range moved {
		pl, ok := r.live(lin)
		if !ok {
			return fmt.Errorf("bench: placement seed %d: lineage %d lost by drain", r.cfg.Seed, lin)
		}
		if pl.Primary() == target {
			return fmt.Errorf("bench: placement seed %d: lineage %d still on drained %s", r.cfg.Seed, lin, target.Name)
		}
		if err := r.verifyLineage(pl, "post-drain"); err != nil {
			return err
		}
	}
	return r.checkInvariants("post-drain")
}

// --- Sweep -----------------------------------------------------------

// PlacementPoint is one cell of the placement matrix.
type PlacementPoint struct {
	Stores       int     `json:"stores"`
	LinkFaultPct float64 `json:"link_fault_pct"`
	Groups       int     `json:"groups"`
	Residents    int     `json:"residents_on_victim"`
	Evacuated    int     `json:"evacuated"`
	Repaired     int     `json:"repaired"`
	Degraded     int     `json:"degraded"`
	Polls        int     `json:"polls"`
	Verified     int     `json:"restores_verified"`
	Drained      int     `json:"drained"`
	EvacTTRp50us float64 `json:"evac_ttr_p50_us"`
	EvacTTRp99us float64 `json:"evac_ttr_p99_us"`
	EvacTTRMaxus float64 `json:"evac_ttr_max_us"`
}

// PlacementSweep runs the placement chaos matrix: fleet size × link
// fault rate (store fault rates ride along at rate/5, like the
// migration sweep), with a store kill and a drain in every cell.
func PlacementSweep(groups int, stores []int, rates []float64, seed int64) ([]PlacementPoint, error) {
	var out []PlacementPoint
	for _, n := range stores {
		for _, rate := range rates {
			cfg := PlacementChaosConfig{
				Seed:          seed,
				Stores:        n,
				Groups:        groups,
				Drain:         n > 2, // a 2-store fleet has nowhere to drain to
				LinkDrop:      rate,
				LinkDup:       rate / 2,
				LinkCorrupt:   rate / 2,
				StoreWriteErr: rate / 5,
				StoreReadErr:  rate / 5,
			}
			rep, err := PlacementChaosRun(cfg)
			if err != nil {
				return nil, fmt.Errorf("bench: placement sweep stores=%d rate=%g: %w", n, rate, err)
			}
			out = append(out, PlacementPoint{
				Stores:       n,
				LinkFaultPct: rate * 100,
				Groups:       rep.Groups,
				Residents:    rep.Residents,
				Evacuated:    rep.Evacuated,
				Repaired:     rep.Repaired,
				Degraded:     rep.Degraded,
				Polls:        rep.Polls,
				Verified:     rep.RestoresVerified,
				Drained:      rep.Drained,
				EvacTTRp50us: float64(rep.EvacTTRp50.Microseconds()),
				EvacTTRp99us: float64(rep.EvacTTRp99.Microseconds()),
				EvacTTRMaxus: float64(rep.EvacMax.Microseconds()),
			})
		}
	}
	return out, nil
}
