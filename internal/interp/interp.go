// Package interp implements a small register-machine interpreter that
// runs entirely on simulated state: its code and data live in the
// simulated address space and its execution state is exactly the
// thread's register file. Checkpointing a process running an interp
// program therefore captures a genuine mid-execution CPU state, and a
// restore resumes at the same PC with the same registers — the
// property the paper's hello-world serverless workload relies on.
package interp

import (
	"encoding/binary"
	"fmt"

	"aurora/internal/kernel"
	"aurora/internal/vm"
)

// ProgramName is the name interp programs are registered under.
const ProgramName = "interp"

// InstrSize is the size of one fixed-width instruction.
const InstrSize = 16

// Opcodes of the register machine.
const (
	OpNop uint32 = iota
	OpHalt
	OpLi   // r[a] = imm
	OpMov  // r[a] = r[b]
	OpAdd  // r[a] = r[b] + r[c]
	OpSub  // r[a] = r[b] - r[c]
	OpMul  // r[a] = r[b] * r[c]
	OpAddi // r[a] = r[b] + imm
	OpLd   // r[a] = mem64[r[b] + imm]
	OpSt   // mem64[r[b] + imm] = r[a]
	OpJmp  // pc = imm
	OpBeq  // if r[a] == r[b] pc = imm
	OpBne  // if r[a] != r[b] pc = imm
	OpBlt  // if r[a] < r[b] pc = imm
	OpSys  // syscall a: 1=write(r1 fd, r2 buf, r3 len) 2=exit(r1) 3=yield
	OpSt8  // mem8[r[b] + imm] = low byte of r[a]
	OpLd8  // r[a] = mem8[r[b] + imm]
)

// Syscall numbers for OpSys.
const (
	SysWrite = 1
	SysExit  = 2
	SysYield = 3
)

// Instr is one decoded instruction.
type Instr struct {
	Op   uint32
	A, B uint32
	Imm  uint32
}

// Encode packs the instruction into its 16-byte wire form.
func (i Instr) Encode() []byte {
	var b [InstrSize]byte
	binary.LittleEndian.PutUint32(b[0:], i.Op)
	binary.LittleEndian.PutUint32(b[4:], i.A)
	binary.LittleEndian.PutUint32(b[8:], i.B)
	binary.LittleEndian.PutUint32(b[12:], i.Imm)
	return b[:]
}

// Decode unpacks an instruction.
func Decode(b []byte) Instr {
	return Instr{
		Op:  binary.LittleEndian.Uint32(b[0:]),
		A:   binary.LittleEndian.Uint32(b[4:]),
		B:   binary.LittleEndian.Uint32(b[8:]),
		Imm: binary.LittleEndian.Uint32(b[12:]),
	}
}

// Asm is a tiny assembler for building programs in tests and examples.
type Asm struct {
	code []byte
}

// Emit appends an instruction and returns its byte offset.
func (a *Asm) Emit(op, ra, rb, imm uint32) int {
	off := len(a.code)
	a.code = append(a.code, Instr{Op: op, A: ra, B: rb, Imm: imm}.Encode()...)
	return off
}

// Len returns the current code size (the offset of the next Emit).
func (a *Asm) Len() int { return len(a.code) }

// Patch rewrites the immediate of the instruction at off.
func (a *Asm) Patch(off int, imm uint32) {
	binary.LittleEndian.PutUint32(a.code[off+12:], imm)
}

// Code returns the assembled bytes.
func (a *Asm) Code() []byte { return a.code }

// Program is the interp driver. It holds no state of its own: fetch,
// decode and execute all operate on the thread's registers and the
// process's simulated memory, so checkpoints need nothing from it.
type Program struct {
	// Quantum bounds instructions per scheduler step.
	Quantum int
}

// ProgName implements kernel.Program.
func (pr *Program) ProgName() string { return ProgramName }

// Snapshot implements kernel.Program: the driver is stateless.
func (pr *Program) Snapshot() []byte { return nil }

// Step implements kernel.Program: run up to Quantum instructions.
func (pr *Program) Step(k *kernel.Kernel, p *kernel.Process, t *kernel.Thread) error {
	q := pr.Quantum
	if q <= 0 {
		q = 64
	}
	var ibuf [InstrSize]byte
	executed := 0
	defer func() { k.Meter.ChargeInstr(int64(executed)) }()
	for n := 0; n < q; n++ {
		executed++
		if err := p.ReadMem(vm.Addr(t.Regs.PC), ibuf[:]); err != nil {
			return fmt.Errorf("interp: fetch at %#x: %w", t.Regs.PC, err)
		}
		in := Decode(ibuf[:])
		nextPC := t.Regs.PC + InstrSize
		r := &t.Regs.GPR
		switch in.Op {
		case OpNop:
		case OpHalt:
			return kernel.ErrThreadExit
		case OpLi:
			r[in.A&15] = uint64(in.Imm)
		case OpMov:
			r[in.A&15] = r[in.B&15]
		case OpAdd:
			r[in.A&15] = r[in.B&15] + r[in.Imm&15]
		case OpSub:
			r[in.A&15] = r[in.B&15] - r[in.Imm&15]
		case OpMul:
			r[in.A&15] = r[in.B&15] * r[in.Imm&15]
		case OpAddi:
			r[in.A&15] = r[in.B&15] + uint64(in.Imm)
		case OpLd:
			var b [8]byte
			if err := p.ReadMem(vm.Addr(r[in.B&15]+uint64(in.Imm)), b[:]); err != nil {
				return fmt.Errorf("interp: load: %w", err)
			}
			r[in.A&15] = binary.LittleEndian.Uint64(b[:])
		case OpSt:
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], r[in.A&15])
			if err := p.WriteMem(vm.Addr(r[in.B&15]+uint64(in.Imm)), b[:]); err != nil {
				return fmt.Errorf("interp: store: %w", err)
			}
		case OpLd8:
			var b [1]byte
			if err := p.ReadMem(vm.Addr(r[in.B&15]+uint64(in.Imm)), b[:]); err != nil {
				return fmt.Errorf("interp: load8: %w", err)
			}
			r[in.A&15] = uint64(b[0])
		case OpSt8:
			b := [1]byte{byte(r[in.A&15])}
			if err := p.WriteMem(vm.Addr(r[in.B&15]+uint64(in.Imm)), b[:]); err != nil {
				return fmt.Errorf("interp: store8: %w", err)
			}
		case OpJmp:
			nextPC = uint64(in.Imm)
		case OpBeq:
			if r[in.A&15] == r[in.B&15] {
				nextPC = uint64(in.Imm)
			}
		case OpBne:
			if r[in.A&15] != r[in.B&15] {
				nextPC = uint64(in.Imm)
			}
		case OpBlt:
			if r[in.A&15] < r[in.B&15] {
				nextPC = uint64(in.Imm)
			}
		case OpSys:
			switch in.A {
			case SysWrite:
				buf := make([]byte, r[3])
				if err := p.ReadMem(vm.Addr(r[2]), buf); err != nil {
					return fmt.Errorf("interp: sys write: %w", err)
				}
				if _, err := k.Write(p, int(r[1]), buf); err != nil && err != kernel.ErrWouldBlock {
					return fmt.Errorf("interp: sys write: %w", err)
				}
			case SysExit:
				return kernel.ErrThreadExit
			case SysYield:
				t.Regs.PC = nextPC
				return nil
			default:
				return fmt.Errorf("interp: bad syscall %d at %#x", in.A, t.Regs.PC)
			}
		default:
			return fmt.Errorf("interp: bad opcode %d at %#x", in.Op, t.Regs.PC)
		}
		t.Regs.PC = nextPC
	}
	return nil
}

// Load maps an assembled program at the text base, points the main
// thread's PC at it, and attaches the interp driver.
func Load(k *kernel.Kernel, p *kernel.Process, code []byte) (vm.Addr, error) {
	const textBase = vm.Addr(0x0040_0000)
	n := vm.RoundUpPage(int64(len(code)))
	text := vm.NewObject("text", n)
	if _, err := p.Space.Map(textBase, n, vm.ProtRead|vm.ProtWrite|vm.ProtExec, text, 0, false, "text"); err != nil {
		return 0, err
	}
	if err := p.WriteMem(textBase, code); err != nil {
		return 0, err
	}
	p.Threads[0].Regs.PC = uint64(textBase)
	p.SetProgram(&Program{})
	return textBase, nil
}

func init() {
	kernel.RegisterProgram(ProgramName, func(k *kernel.Kernel, p *kernel.Process, state []byte) (kernel.Program, error) {
		return &Program{}, nil
	})
}
