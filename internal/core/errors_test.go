package core

// Typed-error round trips: every sentinel the public API documents
// must survive its wrap sites so callers dispatch with errors.Is, not
// string matching. Each test drives a real end-to-end path — the
// wrap chain under test is the one production callers actually see.

import (
	"errors"
	"testing"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// TestErrNoImageRoundTrip: a store that never flushed anything
// surfaces ErrNoImage both from the backend Load and through the full
// Restore resolution loop (which wraps it again per chain searched).
func TestErrNoImageRoundTrip(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	if _, _, err := r.store.Load(g.ID, 7); !errors.Is(err, ErrNoImage) {
		t.Fatalf("store Load = %v, want ErrNoImage wrap", err)
	}
	if _, _, err := r.o.Restore(g, 0, RestoreOpts{}); !errors.Is(err, ErrNoImage) {
		t.Fatalf("Restore = %v, want ErrNoImage wrap", err)
	}
}

// TestQuarantineCorruptionRoundTrip: corruption caught by the eager
// load's hash-verified reads surfaces BOTH sentinels when the chain
// runs dry — ErrEpochQuarantined (the epoch was poisoned) and
// objstore.ErrCorruptBlock (why) — through one wrap chain.
func TestQuarantineCorruptionRoundTrip(t *testing.T) {
	r := newRig(t)
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	r.k.Run(2)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	corruptEpochBlock(t, r.store, g.ID, 1)
	_, _, rerr := r.o.Restore(g, 1, RestoreOpts{})
	if !errors.Is(rerr, ErrEpochQuarantined) {
		t.Fatalf("Restore = %v, want ErrEpochQuarantined wrap", rerr)
	}
	if !errors.Is(rerr, objstore.ErrCorruptBlock) {
		t.Fatalf("Restore = %v, must keep the ErrCorruptBlock cause", rerr)
	}
}

// TestFlushAllDeferredRoundTrip: an epoch every backend deferred (the
// lone backend is down, probe pacing skipped the device) records the
// typed ErrBackendDown on its flush job, selectable with errors.Is.
func TestFlushAllDeferredRoundTrip(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	r.o.FlushRetries = 1
	r.o.DownAfter = 1
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	lb := &ledgerBackend{}
	lb.setErr(errors.New("dead controller"))
	r.o.Attach(g, lb)

	r.k.Run(2)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	r.o.Drain(g) // epoch 1 fails on the device; backend down (DownAfter=1)

	r.k.Run(2)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	r.o.Drain(g) // epoch 2 skip-defers: no backend held it

	f := r.o.flusherOf(g)
	f.mu.Lock()
	job := f.byEpoch[2]
	f.mu.Unlock()
	if job == nil || job.err == nil {
		t.Fatalf("epoch 2 job = %+v, want a recorded failure", job)
	}
	if !errors.Is(job.err, ErrBackendDown) {
		t.Fatalf("all-deferred epoch error = %v, want ErrBackendDown wrap", job.err)
	}
}

// TestRestoreFallsBackWhenDurableEpochElsewhere: durability is a group
// property — an epoch retires once ANY non-ephemeral backend holds it.
// When the store's flush of the durable epoch was still deferred at
// crash time, a flexible restore (epoch 0) must fall back to the
// newest epoch the store does hold instead of failing outright.
func TestRestoreFallsBackWhenDurableEpochElsewhere(t *testing.T) {
	clock := storage.NewClock()
	k := kernel.NewWith(clock, vm.NewPhysMem(0))
	o := NewOrchestrator(k)
	o.FlushWorkers = 1
	fd := storage.NewFaultDevice(storage.NewMemDevice(storage.ParamsOptaneNVMe, clock), clock, storage.FaultConfig{Seed: 5})
	store := NewStoreBackend(objstore.Create(fd, clock), k.Mem, clock)

	p, err := k.Spawn(0, "counter")
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(&counter{addr: p.HeapBase()})
	g, err := o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	lb := &ledgerBackend{} // the healthy non-ephemeral peer (a replica stand-in)
	o.Attach(g, store)
	o.Attach(g, lb)

	k.Run(2)
	if _, err := o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := o.Sync(g); err != nil {
		t.Fatal(err) // epoch 1 on both backends
	}

	// Every further store write fails: epoch 2 lands only on the peer.
	fd.FailOps(storage.FaultWrite, fd.OpCount()+1, 1<<62)
	k.Run(2)
	if _, err := o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	o.Drain(g)
	if got := g.Durable(); got != 2 {
		t.Fatalf("durable = %d, want 2 (the peer held it)", got)
	}

	ng, bd, err := o.Restore(g, 0, RestoreOpts{})
	if err != nil {
		t.Fatalf("flexible restore must fall back, got %v", err)
	}
	if ng.Epoch() != 1 {
		t.Fatalf("restored epoch = %d, want 1 (the store's newest)", ng.Epoch())
	}
	if bd.FallbackFrom != 2 {
		t.Fatalf("FallbackFrom = %d, want 2", bd.FallbackFrom)
	}

	// An explicit epoch request keeps its strict meaning: epoch 2 is
	// not on this store, so the restore fails with ErrNoImage.
	if _, _, err := o.Restore(g, 2, RestoreOpts{}); !errors.Is(err, ErrNoImage) {
		t.Fatalf("explicit restore of a missing epoch = %v, want ErrNoImage", err)
	}
}

// TestErrQuorumLostRoundTrip: with a 3-of-3 write quorum and two dead
// members, the epoch must not retire — the background flush records
// ErrQuorumLost and Sync surfaces it, still wrapped, alongside the
// first member failure that caused it.
func TestErrQuorumLostRoundTrip(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	lb1, lb2 := &ledgerBackend{}, &ledgerBackend{}
	injected := errors.New("backplane gone")
	lb1.setErr(injected)
	lb2.setErr(injected)
	r.o.Attach(g, r.store)
	r.o.Attach(g, lb1)
	r.o.Attach(g, lb2)
	g.SetQuorum(QuorumPolicy{W: 3})

	r.k.Run(2)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	err = r.o.Sync(g)
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("Sync = %v, want ErrQuorumLost wrap", err)
	}
	if !errors.Is(err, injected) {
		t.Fatalf("Sync = %v, want the member failure preserved in the wrap", err)
	}
	if g.Durable() != 0 {
		t.Fatalf("durable = %d after a lost quorum, want 0", g.Durable())
	}

	// Quorum restored: the same epoch retires on the next Sync.
	lb1.setErr(nil)
	lb2.setErr(nil)
	if err := r.o.Sync(g); err != nil {
		t.Fatalf("Sync after quorum restored: %v", err)
	}
	if g.Durable() != 1 {
		t.Fatalf("durable = %d after quorum restored, want 1", g.Durable())
	}
}

// TestStaleGenerationUnderQuorumRoundTrip: a fenced member that makes
// the write quorum unreachable surfaces BOTH sentinels through one
// wrap chain — ErrQuorumLost (the epoch cannot retire) and
// ErrStaleGeneration with its *FenceError detail (why: this primary
// was superseded).
func TestStaleGenerationUnderQuorumRoundTrip(t *testing.T) {
	r := newRig(t)
	r.o.FlushWorkers = 1
	p := spawnCounter(t, r)
	g, err := r.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	fenced := &latencyBackend{err: &FenceError{Gen: 7, Err: ErrStaleGeneration}}
	r.o.Attach(g, r.store)
	r.o.Attach(g, fenced)
	g.SetQuorum(QuorumPolicy{W: 2})

	r.k.Run(2)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	err = r.o.Sync(g)
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("Sync = %v, want ErrQuorumLost wrap", err)
	}
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("Sync = %v, want ErrStaleGeneration preserved through the quorum wrap", err)
	}
	var fe *FenceError
	if !errors.As(err, &fe) || fe.Gen != 7 {
		t.Fatalf("Sync = %v, want *FenceError{Gen: 7} recoverable with errors.As", err)
	}
}

// fakeReplicaSource is a minimal migration target for error-path
// tests: it never holds any epoch.
type fakeReplicaSource struct{ fence uint64 }

func (f *fakeReplicaSource) ImageAt(group, epoch uint64) (*Image, error) { return nil, ErrNoImage }
func (f *fakeReplicaSource) ContiguousEpoch(group uint64) uint64         { return 0 }
func (f *fakeReplicaSource) ReplicaEpochs(group uint64) []uint64         { return nil }
func (f *fakeReplicaSource) FenceGen(group uint64) uint64                { return f.fence }
func (f *fakeReplicaSource) AdoptFence(group, gen uint64)                { f.fence = gen }

// TestMigrationAbortedRoundTrip: a migration whose pre-copy dies on a
// fenced quorum member surfaces EVERY sentinel through one wrap chain —
// ErrMigrationAborted (identity for "the migration failed"),
// ErrQuorumLost (why the epoch could not retire), ErrStaleGeneration
// (why the member refused), plus *MigrationError (which phase) and
// *FenceError (which generation) via errors.As.
func TestMigrationAbortedRoundTrip(t *testing.T) {
	src, dst := newRig(t), newRig(t)
	src.o.FlushWorkers = 1
	p := spawnCounter(t, src)
	g, err := src.o.Persist("app", p)
	if err != nil {
		t.Fatal(err)
	}
	fenced := &latencyBackend{err: &FenceError{Gen: 7, Err: ErrStaleGeneration}}
	src.o.Attach(g, src.store)
	src.o.Attach(g, fenced)
	g.SetQuorum(QuorumPolicy{W: 2})
	src.k.Run(2)

	m := &Migrator{
		Src: src.o, Dst: dst.o, G: g,
		Link:   fenced,
		Target: &fakeReplicaSource{},
		Cfg:    MigratorConfig{Retries: 1},
	}
	_, err = m.Run(nil)
	if err == nil {
		t.Fatal("migration over a fenced quorum succeeded")
	}
	if !errors.Is(err, ErrMigrationAborted) {
		t.Fatalf("err = %v, want ErrMigrationAborted wrap", err)
	}
	if !errors.Is(err, ErrQuorumLost) {
		t.Fatalf("err = %v, want ErrQuorumLost preserved through the migration wrap", err)
	}
	if !errors.Is(err, ErrStaleGeneration) {
		t.Fatalf("err = %v, want ErrStaleGeneration preserved through the migration wrap", err)
	}
	var me *MigrationError
	if !errors.As(err, &me) || me.Phase != PhasePreCopy || me.Group != g.ID {
		t.Fatalf("err = %v, want *MigrationError{Phase: pre-copy, Group: %d}", err, g.ID)
	}
	var fe *FenceError
	if !errors.As(err, &fe) || fe.Gen != 7 {
		t.Fatalf("err = %v, want *FenceError{Gen: 7} recoverable with errors.As", err)
	}
	// A fencing rejection is terminal: the bounded retry budget must
	// not have been burned on it.
	if me.Retries != 0 {
		t.Fatalf("retries = %d, want 0 — fences do not heal", me.Retries)
	}
}

// TestMigrationErrorIsNotGenericAborted: MigrationError matches only
// the migration sentinel by identity — it does not swallow unrelated
// Is targets.
func TestMigrationErrorIsNotGenericAborted(t *testing.T) {
	me := &MigrationError{Phase: PhaseHandover, Group: 3, Err: ErrNoImage}
	if !errors.Is(me, ErrMigrationAborted) {
		t.Fatal("MigrationError does not match ErrMigrationAborted")
	}
	if !errors.Is(me, ErrNoImage) {
		t.Fatal("MigrationError hides its cause from errors.Is")
	}
	if errors.Is(me, ErrQuorumLost) {
		t.Fatal("MigrationError matches an unrelated sentinel")
	}
}
