package kernel

import (
	"testing"

	"aurora/internal/vm"
)

// Tests for the kernel's restore glue, exercised directly (the
// orchestrator drives these paths in production).

func TestRestoreProcessRebuildSkeleton(t *testing.T) {
	k := New()
	src, _ := k.Spawn(0, "original", "arg")
	src.WriteMem(src.HeapBase(), []byte("heap-bytes"))
	e := NewEncoder()
	src.EncodeTo(e)
	pi, err := DecodeProcess(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}

	// Rebuild in a second kernel with substitute VM objects.
	k2 := New()
	objs := make(map[uint64]*vm.Object)
	lookup := func(id uint64) *vm.Object {
		if o, ok := objs[id]; ok {
			return o
		}
		o := vm.NewObject("sub", 1<<20)
		objs[id] = o
		return o
	}
	p, err := k2.RestoreProcess(pi, lookup)
	if err != nil {
		t.Fatal(err)
	}
	if p.PID != src.PID || p.Name != "original" || len(p.Args) != 1 {
		t.Fatalf("restored identity: %+v", p)
	}
	if len(p.Space.Mappings()) != len(src.Space.Mappings()) {
		t.Fatal("mapping count mismatch")
	}
	// The restored process starts stopped until explicitly resumed.
	if p.State() != ProcStopped {
		t.Fatalf("state = %v, want stopped", p.State())
	}
	if err := k2.ResumeRestored(p, "", nil); err != nil {
		t.Fatal(err)
	}
	if p.State() != ProcRunning {
		t.Fatal("resume failed")
	}
}

func TestRestoreProcessMissingObjectFails(t *testing.T) {
	k := New()
	src, _ := k.Spawn(0, "x")
	e := NewEncoder()
	src.EncodeTo(e)
	pi, _ := DecodeProcess(e.Bytes())
	k2 := New()
	if _, err := k2.RestoreProcess(pi, func(uint64) *vm.Object { return nil }); err == nil {
		t.Fatal("restore with missing VM objects should fail")
	}
}

func TestRestoreProcessPIDCollision(t *testing.T) {
	k := New()
	src, _ := k.Spawn(0, "twin")
	e := NewEncoder()
	src.EncodeTo(e)
	pi, _ := DecodeProcess(e.Bytes())
	// Restoring into the same kernel: pid 1 is taken, the clone gets a
	// fresh pid.
	p, err := k.RestoreProcess(pi, func(uint64) *vm.Object { return vm.NewObject("sub", 1<<20) })
	if err != nil {
		t.Fatal(err)
	}
	if p.PID == src.PID {
		t.Fatal("restored clone stole the live process's pid")
	}
}

func TestResumeRestoredUnknownProgram(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "x")
	if err := k.ResumeRestored(p, "no-such-program", nil); err == nil {
		t.Fatal("unknown program factory should fail")
	}
}

func TestAttachThreadSchedulesRunnable(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "host")
	ran := 0
	p.SetProgram(&FuncProgram{Name: "w", Fn: func(*Kernel, *Process, *Thread) error {
		ran++
		return nil
	}})
	// A restored runnable thread joins the scheduler.
	t2 := &Thread{oid: k.NextOID(), TID: 900, State: ThreadRunnable}
	k.AttachThread(p, t2)
	if len(p.Threads) != 2 {
		t.Fatalf("threads = %d", len(p.Threads))
	}
	k.Run(10)
	if ran != 10 {
		t.Fatalf("ran = %d (both threads step the program)", ran)
	}
	// A blocked thread must not be scheduled.
	t3 := &Thread{oid: k.NextOID(), TID: 901, State: ThreadBlocked}
	k.AttachThread(p, t3)
	k.Run(4)
	if ran != 14 {
		t.Fatalf("blocked thread was scheduled: ran = %d", ran)
	}
}

func TestBuildFileDescErrors(t *testing.T) {
	k := New()
	if _, err := k.BuildFileDesc(&FDImage{OID: 5, FileOID: 999}); err == nil {
		t.Fatal("dangling file reference should fail")
	}
	// A non-file object behind the reference also fails.
	p, _ := k.Spawn(0, "x")
	if _, err := k.BuildFileDesc(&FDImage{OID: 5, FileOID: p.OID()}); err == nil {
		t.Fatal("non-file OID should fail")
	}
	// A nil file (FileOID 0) is allowed: placeholder descriptors.
	fd, err := k.BuildFileDesc(&FDImage{OID: 6})
	if err != nil || fd.File != nil {
		t.Fatalf("placeholder descriptor: %v, %v", fd, err)
	}
}

func TestPatchUnixBacklogErrors(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "srv")
	lfd, _ := k.Listen(p, "/x")
	fd, _ := p.FDs.Get(lfd)
	u := fd.File.(*UnixSocket)
	if err := k.PatchUnixBacklog(u, []uint64{12345}); err == nil {
		t.Fatal("missing backlog OID should fail")
	}
	// A non-socketpair OID also fails.
	if err := k.PatchUnixBacklog(u, []uint64{p.OID()}); err == nil {
		t.Fatal("wrong-kind backlog OID should fail")
	}
}

func TestContainerRoundTrip(t *testing.T) {
	k := New()
	c := k.NewContainer("web")
	e := NewEncoder()
	c.EncodeTo(e)

	k2 := New()
	c2, err := k2.RestoreContainer(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if c2.ID != c.ID || c2.Name != "web" {
		t.Fatalf("restored container = %+v", c2)
	}
	// Spawning into the restored container works.
	if _, err := k2.Spawn(c2.ID, "inside"); err != nil {
		t.Fatal(err)
	}
	// Restoring the same container twice is idempotent.
	c3, err := k2.RestoreContainer(e.Bytes())
	if err != nil || c3 != c2 {
		t.Fatalf("second restore = %v, %v", c3, err)
	}
}

func TestCreateThread(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "mt")
	steps := 0
	p.SetProgram(&FuncProgram{Name: "mt", Fn: func(*Kernel, *Process, *Thread) error {
		steps++
		return nil
	}})
	t2 := k.CreateThread(p, Regs{PC: 0x1000})
	if t2.TID == p.Threads[0].TID {
		t.Fatal("thread ids collide")
	}
	k.Run(8)
	if steps != 8 {
		t.Fatalf("steps = %d (round robin over 2 threads)", steps)
	}
}

func TestFDCtlBadDescriptor(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "x")
	if err := k.FDCtl(p, 99, false); err != ErrBadFD {
		t.Fatalf("err = %v", err)
	}
}

func TestReadWriteBadDescriptor(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "x")
	if _, err := k.Read(p, 7, make([]byte, 4)); err != ErrBadFD {
		t.Fatalf("read err = %v", err)
	}
	if _, err := k.Write(p, 7, []byte("x")); err != ErrBadFD {
		t.Fatalf("write err = %v", err)
	}
}

func TestForkOfZombieFails(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "x")
	k.Exit(p, 0)
	if _, err := k.Fork(p); err != ErrNotRunning {
		t.Fatalf("fork of zombie err = %v", err)
	}
}

func TestConnectToClosedListener(t *testing.T) {
	k := New()
	srv, _ := k.Spawn(0, "srv")
	cli, _ := k.Spawn(0, "cli")
	lfd, _ := k.Listen(srv, "/gone")
	if err := srv.FDs.Close(lfd); err != nil {
		t.Fatal(err)
	}
	if _, err := k.Connect(cli, "/gone"); err == nil {
		t.Fatal("connect to closed listener should fail")
	}
}

func TestAcceptOnNonListener(t *testing.T) {
	k := New()
	p, _ := k.Spawn(0, "x")
	r, _, _ := k.NewPipe(p)
	if _, err := k.Accept(p, r); err != ErrBadFD {
		t.Fatalf("accept on pipe err = %v", err)
	}
}
