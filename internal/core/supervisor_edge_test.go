package core

import (
	"fmt"
	"testing"
	"time"

	"aurora/internal/kernel"
)

// Edge-case coverage for the supervisor's restart budget — the policy
// that keeps a fleet-scale crash storm from burning the machine
// re-restoring deterministically re-crashing state.

// supEdgeSpawn persists one workload (program built once the process
// exists, so it can address the heap) with a durable checkpoint after
// ckptAt steps, ready to be crashed.
func supEdgeSpawn(t *testing.T, r *rig, name string, mk func(p *kernel.Process) kernel.Program, ckptAt int) (*Group, *kernel.Process) {
	t.Helper()
	p, err := r.k.Spawn(0, name)
	if err != nil {
		t.Fatal(err)
	}
	p.SetProgram(mk(p))
	g, err := r.o.Persist(name, p)
	if err != nil {
		t.Fatal(err)
	}
	r.o.Attach(g, r.store)
	// Run is round-robin over every live process, so in multi-group
	// tests this may step an older crash-looper into its crash; that
	// error belongs to the storm, not to this spawn.
	r.k.Run(ckptAt)
	if _, err := r.o.Checkpoint(g, CheckpointOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.o.Sync(g); err != nil {
		t.Fatal(err)
	}
	return g, p
}

// TestSupervisorBudgetRefillAfterQuietWindow: a group that crashes,
// recovers, and then runs cleanly past a full budget window gets its
// restart count reset — transient crashes spread over time must never
// accumulate into a spurious crash-loop verdict.
func TestSupervisorBudgetRefillAfterQuietWindow(t *testing.T) {
	r := newRig(t)
	g, _ := supEdgeSpawn(t, r, "refill", func(p *kernel.Process) kernel.Program {
		return &counter{addr: p.HeapBase()}
	}, 10)
	const budget = 2
	window := 10 * time.Millisecond
	sup := NewSupervisor(r.o, SupervisorConfig{MaxRestarts: budget, Window: window})
	sup.Watch(g)

	cur := g
	// Far more crash cycles than the budget allows inside one window.
	// Each cycle first idles past a full window, so the budget refills
	// and every recovery must report Restarts == 1.
	for cycle := 0; cycle < budget*3; cycle++ {
		r.clock.Advance(window + time.Millisecond)
		p, err := r.k.Process(cur.PIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		r.k.Exit(p, 1)
		evs := sup.Poll()
		if len(evs) != 1 {
			t.Fatalf("cycle %d: events = %+v", cycle, evs)
		}
		ev := evs[0]
		if ev.GaveUp || ev.Err != nil {
			t.Fatalf("cycle %d: budget did not refill after a quiet window: %+v", cycle, ev)
		}
		if ev.Restarts != 1 {
			t.Fatalf("cycle %d: restarts = %d, want 1 (reset after quiet window)", cycle, ev.Restarts)
		}
		cur, err = r.o.Group(ev.NewGroup)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(sup.Watched()) != 1 {
		t.Fatalf("watched = %v, want exactly the live group", sup.Watched())
	}
}

// TestSupervisorBackoffResetAfterQuietWindow: the exponential backoff
// is charged to the virtual clock and doubles within a window, and a
// quiet window resets it to the base — otherwise long-lived groups
// would pay ever-growing restart latency for crashes months apart.
func TestSupervisorBackoffResetAfterQuietWindow(t *testing.T) {
	r := newRig(t)
	g, _ := supEdgeSpawn(t, r, "backoff", func(p *kernel.Process) kernel.Program {
		return &counter{addr: p.HeapBase()}
	}, 10)
	base := 100 * time.Microsecond
	window := 50 * time.Millisecond
	sup := NewSupervisor(r.o, SupervisorConfig{MaxRestarts: 10, BackoffBase: base, Window: window})
	sup.Watch(g)

	// pollCost crashes the current incarnation and measures the
	// recovery's virtual-time cost. The restore itself is the same
	// image each cycle (no new checkpoints), so cost differences
	// between cycles isolate the backoff charge.
	pollCost := func(cur *Group) (time.Duration, *Group) {
		t.Helper()
		p, err := r.k.Process(cur.PIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		r.k.Exit(p, 1)
		start := r.clock.Now()
		evs := sup.Poll()
		if len(evs) != 1 || evs[0].Err != nil || evs[0].GaveUp {
			t.Fatalf("recovery events = %+v", evs)
		}
		ng, err := r.o.Group(evs[0].NewGroup)
		if err != nil {
			t.Fatal(err)
		}
		return r.clock.Now() - start, ng
	}

	// Two crashes back-to-back within one window: the second pays
	// double backoff, so it costs exactly base more.
	cost1, g2 := pollCost(g)
	cost2, g3 := pollCost(g2)
	if cost2-cost1 != base {
		t.Fatalf("second restart backoff delta = %v, want %v (doubling)", cost2-cost1, base)
	}
	// Quiet window: backoff must reset to base, so the next recovery
	// costs the same as the very first one.
	r.clock.Advance(window + time.Millisecond)
	cost3, _ := pollCost(g3)
	if cost3 != cost1 {
		t.Fatalf("post-refill restart cost %v, want first-restart cost %v", cost3, cost1)
	}
}

// TestSupervisorBudgetExhaustedMidStorm: when a crash storm hits many
// watched groups at once and one of them is a deterministic
// crash-looper, the supervisor spends that group's budget, emits
// exactly one GaveUp event, and drops only that watch — the healthy
// groups keep their supervision.
func TestSupervisorBudgetExhaustedMidStorm(t *testing.T) {
	r := newRig(t)
	const budget = 3

	// One doomed group: its persisted counter re-crashes on sight.
	doomed, _ := supEdgeSpawn(t, r, "doomed", func(p *kernel.Process) kernel.Program {
		return &hardCrasher{addr: p.HeapBase(), limit: 15}
	}, 10)

	// Three heisencrash groups: the armed fuse is runtime state the
	// snapshot drops, so each crashes once and recovers clean.
	var healthy []*Group
	for i := 0; i < 3; i++ {
		g, _ := supEdgeSpawn(t, r, fmt.Sprintf("healthy-%d", i), func(p *kernel.Process) kernel.Program {
			return &crasher{addr: p.HeapBase(), fuse: 15, armed: true}
		}, 10)
		healthy = append(healthy, g)
	}

	sup := NewSupervisor(r.o, SupervisorConfig{MaxRestarts: budget, Window: time.Hour})
	sup.Watch(doomed)
	for _, g := range healthy {
		sup.Watch(g)
	}

	gaveUp, recoveries := 0, 0
	for rounds := 0; gaveUp == 0; rounds++ {
		if rounds > budget+10 {
			t.Fatal("crash-looper was never given up on")
		}
		r.k.Run(400) // run every incarnation into (or past) its crash
		for _, ev := range sup.Poll() {
			switch {
			case ev.GaveUp:
				gaveUp++
				if ev.Restarts != budget {
					t.Fatalf("gave up after %d restarts, want %d", ev.Restarts, budget)
				}
			case ev.Err != nil:
				t.Fatalf("recovery failed mid-storm: %+v", ev)
			default:
				recoveries++
			}
		}
	}
	if gaveUp != 1 {
		t.Fatalf("GaveUp events = %d, want exactly 1 (only the crash-looper)", gaveUp)
	}
	// The healthy groups' single heisencrash each was restored, and all
	// three are still watched; the doomed lineage is not.
	if got := len(sup.Watched()); got != 3 {
		t.Fatalf("watched after storm = %d groups (%v), want 3", got, sup.Watched())
	}
	// budget restarts burned on the looper + 3 heisencrash recoveries.
	if recoveries != budget+3 {
		t.Fatalf("successful recoveries = %d, want %d", recoveries, budget+3)
	}
}

// TestSupervisorCrashLoopGiveUpAtFleetScale: dozens of independent
// crash-looping groups exhaust their budgets concurrently; every one
// must be given up on after exactly its budget, the supervisor must
// end with zero watches, and the virtual clock must have been charged
// the full exponential backoff schedule for each group.
func TestSupervisorCrashLoopGiveUpAtFleetScale(t *testing.T) {
	r := newRig(t)
	const (
		fleet  = 32
		budget = 3
	)
	base := 100 * time.Microsecond
	sup := NewSupervisor(r.o, SupervisorConfig{MaxRestarts: budget, BackoffBase: base, Window: time.Hour})

	for i := 0; i < fleet; i++ {
		g, _ := supEdgeSpawn(t, r, fmt.Sprintf("loop-%d", i), func(p *kernel.Process) kernel.Program {
			return &hardCrasher{addr: p.HeapBase(), limit: 15}
		}, 10)
		sup.Watch(g)
	}

	start := r.clock.Now()
	for rounds := 0; len(sup.Watched()) > 0; rounds++ {
		if rounds > fleet*(budget+2) {
			t.Fatalf("crash storm did not converge; still watched: %v", sup.Watched())
		}
		r.k.Run(fleet * 20) // run every incarnation into its crash
		sup.Poll()
	}

	// Walk the event log, folding each recovery chain back to the
	// group that started it, and check every lineage's accounting.
	type tally struct{ restarts, gaveUp int }
	perLineage := make(map[uint64]*tally)
	roots := make(map[uint64]uint64) // group -> storm lineage root
	for _, ev := range sup.Events() {
		root, ok := roots[ev.Group]
		if !ok {
			root = ev.Group
		}
		st := perLineage[root]
		if st == nil {
			st = &tally{}
			perLineage[root] = st
		}
		if ev.GaveUp {
			st.gaveUp++
			if ev.Restarts != budget {
				t.Fatalf("lineage %d gave up after %d restarts, want %d", root, ev.Restarts, budget)
			}
		} else {
			if ev.Err != nil {
				t.Fatalf("restore failed during storm: %+v", ev)
			}
			st.restarts++
			roots[ev.NewGroup] = root
		}
	}
	if len(perLineage) != fleet {
		t.Fatalf("storm touched %d lineages, want %d", len(perLineage), fleet)
	}
	for root, st := range perLineage {
		if st.restarts != budget || st.gaveUp != 1 {
			t.Fatalf("lineage %d: %d restarts, %d give-ups; want %d and 1", root, st.restarts, st.gaveUp, budget)
		}
	}
	// Backoff accounting: each lineage paid base * (2^budget - 1) of
	// virtual-clock backoff (100+200+400 µs for budget 3), plus restore
	// costs — so the storm's total virtual time is bounded below.
	minBackoff := time.Duration(fleet) * base * time.Duration((1<<budget)-1)
	if elapsed := r.clock.Now() - start; elapsed < minBackoff {
		t.Fatalf("clock advanced %v during the storm, below the aggregate backoff floor %v", elapsed, minBackoff)
	}
}

// TestSupervisorEvacuationExemption: recoveries the placer initiates
// (the group's store is dying or draining) must not be charged against
// the restart budget — evacuation is policy, not a crash loop. The
// same crash cadence that exhausts an unexempted group's budget keeps
// an exempted one alive indefinitely, with no backoff billed to the
// virtual clock and every event flagged Exempt.
func TestSupervisorEvacuationExemption(t *testing.T) {
	r := newRig(t)
	const budget = 2

	run := func(name string, exempt bool) (gaveUp int, cycles int, backoff time.Duration) {
		g, _ := supEdgeSpawn(t, r, name, func(p *kernel.Process) kernel.Program {
			return &counter{addr: p.HeapBase()}
		}, 10)
		sup := NewSupervisor(r.o, SupervisorConfig{MaxRestarts: budget, Window: time.Hour})
		sup.Watch(g)
		if exempt {
			sup.ExemptEvacuations(func(*Group) bool { return true })
		}
		start := r.clock.Now()
		cur := g
		for cycle := 0; cycle < budget*4; cycle++ {
			p, err := r.k.Process(cur.PIDs()[0])
			if err != nil {
				t.Fatal(err)
			}
			r.k.Exit(p, 1)
			evs := sup.Poll()
			if len(evs) != 1 {
				t.Fatalf("%s cycle %d: events = %+v", name, cycle, evs)
			}
			ev := evs[0]
			if ev.Exempt != exempt {
				t.Fatalf("%s cycle %d: Exempt = %v, want %v", name, cycle, ev.Exempt, exempt)
			}
			if ev.GaveUp {
				gaveUp++
				return gaveUp, cycle, r.clock.Now() - start
			}
			if exempt && ev.Restarts != 0 {
				t.Fatalf("exempt cycle %d charged the budget: restarts = %d", cycle, ev.Restarts)
			}
			if ev.Err != nil {
				t.Fatalf("%s cycle %d: %v", name, cycle, ev.Err)
			}
			cur, err = r.o.Group(ev.NewGroup)
			if err != nil {
				t.Fatal(err)
			}
			r.k.Run(4)
		}
		return gaveUp, budget * 4, r.clock.Now() - start
	}

	if gaveUp, cycles, _ := run("exempted", true); gaveUp != 0 {
		t.Fatalf("exempted group gave up after %d cycles", cycles)
	}
	gaveUp, cycles, _ := run("charged", false)
	if gaveUp != 1 || cycles != budget {
		t.Fatalf("unexempted group: gaveUp=%d at cycle %d, want crash-loop verdict at cycle %d", gaveUp, cycles, budget)
	}
}
