package core

import (
	"testing"

	"aurora/internal/kernel"
	"aurora/internal/objstore"
	"aurora/internal/slsfs"
	"aurora/internal/storage"
	"aurora/internal/vm"
)

// TestFullMachineRebootRestore is the single level store's defining
// scenario: the whole machine goes down — kernel, memory, orchestrator,
// every in-RAM structure — and only the storage device survives. On
// reboot, the object store is remounted from its superblock, the
// persistence groups are discovered from the manifests, and the
// application restores and resumes.
func TestFullMachineRebootRestore(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)

	// --- first boot ---
	var groupID uint64
	var wantCounter uint64
	{
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := NewOrchestrator(k)
		store := objstore.Create(dev, clock)

		p, err := k.Spawn(0, "survivor")
		if err != nil {
			t.Fatal(err)
		}
		p.SetProgram(&counter{addr: p.HeapBase()})
		g, err := o.Persist("survivor", p)
		if err != nil {
			t.Fatal(err)
		}
		o.Attach(g, NewStoreBackend(store, k.Mem, clock))

		k.Run(37)
		if _, err := o.Checkpoint(g, CheckpointOpts{Name: "pre-crash"}); err != nil {
			t.Fatal(err)
		}
		if err := o.Sync(g); err != nil { // flush must land before the "crash"
			t.Fatal(err)
		}
		// Persist the store's index: the equivalent of the device
		// being consistent when the power goes out.
		if err := store.Sync(); err != nil {
			t.Fatal(err)
		}
		groupID = g.ID
		wantCounter = counterValue(p)
		// The machine now "dies": every reference to k, o, store is
		// dropped. Only dev and the clock remain.
	}

	// --- reboot ---
	{
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := NewOrchestrator(k)
		store, err := objstore.Open(dev, clock)
		if err != nil {
			t.Fatalf("remounting the store: %v", err)
		}
		// The manifests name the groups that were persisted.
		groups := store.Groups()
		if len(groups) != 1 || groups[0] != groupID {
			t.Fatalf("groups after reboot = %v, want [%d]", groups, groupID)
		}
		m, err := store.NamedManifest("pre-crash")
		if err != nil {
			t.Fatal(err)
		}

		sb := NewStoreBackend(store, k.Mem, clock)
		img, readTime, err := sb.Load(m.Group, m.Epoch)
		if err != nil {
			t.Fatal(err)
		}
		ng, bd, err := o.RestoreImage(img, readTime, RestoreOpts{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		if bd.ObjectStoreRead <= 0 {
			t.Fatal("reboot restore must read the store")
		}
		np, err := k.Process(ng.PIDs()[0])
		if err != nil {
			t.Fatal(err)
		}
		if got := counterValue(np); got != wantCounter {
			t.Fatalf("counter after reboot = %d, want %d", got, wantCounter)
		}
		// The application continues, oblivious to the reboot.
		k.Run(10)
		if got := counterValue(np); got != wantCounter+10 {
			t.Fatalf("counter did not advance after reboot: %d", got)
		}
	}
}

// TestRebootWithFileSystemState extends the reboot scenario with file
// state: the Aurora FS snapshot taken inside the checkpoint comes back
// from the same store, so file and process state restore together —
// the paper's "single checkpoint covers both" property.
func TestRebootWithFileSystemState(t *testing.T) {
	clock := storage.NewClock()
	dev := storage.NewMemDevice(storage.ParamsOptaneNVMe, clock)

	var groupID uint64
	var fsGroup uint64
	{
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := NewOrchestrator(k)
		store := objstore.Create(dev, clock)
		fs := slsfs.New(store, 1000)
		fsGroup = fs.Group()
		o.AttachFS(fs)

		p, _ := k.Spawn(0, "filer")
		p.SetProgram(&counter{addr: p.HeapBase()})
		f, err := fs.Create("/state.dat")
		if err != nil {
			t.Fatal(err)
		}
		f.WriteAt([]byte("file state at checkpoint"), 0)
		fd, _ := p.FDs.Install(k, f, kernel.ORdWr)
		_ = fd

		g, _ := o.Persist("filer", p)
		o.Attach(g, NewStoreBackend(store, k.Mem, clock))
		if _, err := o.Checkpoint(g, CheckpointOpts{Name: "with-files"}); err != nil {
			t.Fatal(err)
		}
		if err := o.Sync(g); err != nil { // the store must hold the epoch before Sync
			t.Fatal(err)
		}
		if err := store.Sync(); err != nil {
			t.Fatal(err)
		}
		groupID = g.ID
	}

	{
		k := kernel.NewWith(clock, vm.NewPhysMem(0))
		o := NewOrchestrator(k)
		store, err := objstore.Open(dev, clock)
		if err != nil {
			t.Fatal(err)
		}
		fs, err := slsfs.LoadLatest(store, fsGroup)
		if err != nil {
			t.Fatalf("remounting the file system: %v", err)
		}
		o.AttachFS(fs)

		sb := NewStoreBackend(store, k.Mem, clock)
		img, readTime, err := sb.Load(groupID, 0)
		if err != nil {
			t.Fatal(err)
		}
		ng, _, err := o.RestoreImage(img, readTime, RestoreOpts{Lazy: true})
		if err != nil {
			t.Fatal(err)
		}
		np, _ := k.Process(ng.PIDs()[0])

		// The restored descriptor reads the snapshotted file contents.
		nums := np.FDs.Numbers()
		if len(nums) == 0 {
			t.Fatal("file descriptor not restored")
		}
		buf := make([]byte, 24)
		n, err := k.Read(np, nums[0], buf)
		if err != nil || string(buf[:n]) != "file state at checkpoint" {
			t.Fatalf("restored file read = %q, %v", buf[:n], err)
		}
	}
}
