package netback

import (
	"fmt"
	"io"
	"sync"

	"aurora/internal/core"
)

// Directory is the fleet's store directory and replication link pool:
// the netback half of the placement control plane. The placer decides
// *which* stores a lineage's stream should connect; the directory owns
// *how* — one fault-injectable wire per (src, dst, stream), each with
// its own receiver on the destination machine's memory and clock, and
// a sender-side ReplicaBackend the placer attaches to the group. It
// implements core.PlacerLinks.
//
// Every wire runs through a FaultLink built from the directory's fault
// template, so the bench chaos engines inject link faults fleet-wide
// by constructing the directory with non-zero rates; production-shaped
// callers (the CLI) leave the template zero and get clean pipes with
// the same code path.
type Directory struct {
	// Faults is the per-frame fault template stamped onto every wire.
	// The Seed field is a base: each wire derives its own seed so two
	// wires never replay the same fault schedule.
	Faults LinkFaultConfig

	mu    sync.Mutex
	links map[dirKey]*dirLink
	seq   int64
}

type dirKey struct {
	src, dst *core.StoreNode
	stream   uint64
}

// dirLink is one live wire: fault link, far-side receiver serving the
// replica protocol, near-side acked backend. The per-wire mutex
// serializes connect/reset/teardown — scale churn (an autoscaler
// admitting one store while another drains) hits the pool from
// multiple control paths at once, and the serve-loop handshake dance
// must never interleave on one wire. The directory's own mutex guards
// only the map; holding d.mu while waiting out a serve loop would
// stall every other wire in the fleet.
type dirLink struct {
	mu         sync.Mutex
	link       *FaultLink
	endA, endB io.ReadWriteCloser
	rb         *ReplicaBackend
	recv       *Receiver
	serveDone  chan error
	serving    bool
}

// NewDirectory creates a directory whose wires inject faults per the
// template (zero template = clean wires).
func NewDirectory(faults LinkFaultConfig) *Directory {
	return &Directory{Faults: faults, links: make(map[dirKey]*dirLink)}
}

func (d *Directory) startServe(dl *dirLink) {
	dl.serving = true
	go func() {
		_, err := dl.recv.ServeReplica(dl.endB)
		// A dead serve loop is a hung-up peer. The one-shot loss error
		// that killed it may have been stale (the transaction it
		// belonged to completed off the queue) and the sender's copy
		// scrubbed by its own writes — so without this, the next flush
		// would block forever awaiting an ack nobody will send.
		// Partition the wire so the sender fails fast; reset heals it.
		dl.link.PartitionBoth()
		dl.serveDone <- err
	}()
}

// reset re-establishes a wire's connection: poison the serve loop,
// reap it, drain in-flight frames, heal, re-handshake. Retried because
// on a faulty wire the hello itself can be eaten. Caller holds dl.mu.
func (d *Directory) reset(dl *dirLink, stream uint64) error {
	dl.link.PartitionBoth()
	if dl.serving {
		<-dl.serveDone
		dl.serving = false
	}
	dl.rb.Disconnect()
	var err error
	for attempt := 0; attempt < 64; attempt++ {
		if !dl.serving {
			// A failed attempt leaves the wire poisoned (the dying
			// serve loop partitions it) and littered with half-sent
			// frames; scrub before re-handshaking.
			dl.link.DrainPending()
			dl.link.Heal()
			d.startServe(dl)
		}
		if _, err = dl.rb.Connect(dl.endA, stream); err == nil {
			return nil
		}
		<-dl.serveDone
		dl.serving = false
	}
	return fmt.Errorf("netback: directory link did not recover: %w", err)
}

// Link establishes (or returns) the replication wire src→dst for one
// stream, connected and serving. The returned backend is attached to
// the group on src; the returned source is the dst-side receiver view
// (floors, images, fences) that promotions read.
func (d *Directory) Link(src, dst *core.StoreNode, stream uint64) (core.Backend, core.ReplicaSource, error) {
	d.mu.Lock()
	key := dirKey{src, dst, stream}
	dl, ok := d.links[key]
	if !ok {
		d.seq++
		cfg := d.Faults
		cfg.Seed = d.Faults.Seed*1000003 + d.seq*7919
		dl = &dirLink{serveDone: make(chan error, 1)}
		dl.link = NewFaultLink(cfg, src.O.K.Clock)
		dl.endA, dl.endB = dl.link.A(), dl.link.B()
		dl.recv = NewReceiver(dst.O.K.Mem, dst.O.K.Clock)
		dl.rb = NewReplicaBackend(src.O.K.Clock)
		dl.rb.SetName(fmt.Sprintf("repl:%s->%s/%d", src.Name, dst.Name, stream))
		d.links[key] = dl
	}
	d.mu.Unlock()

	dl.mu.Lock()
	defer dl.mu.Unlock()
	if !dl.serving {
		d.startServe(dl)
	}
	if _, err := dl.rb.Connect(dl.endA, stream); err != nil {
		if err := d.reset(dl, stream); err != nil {
			return nil, nil, err
		}
	}
	return dl.rb, dl.recv, nil
}

// Reconnect re-establishes a dropped connection on an existing wire —
// the migrator's retry hook after a link fault kills the session.
func (d *Directory) Reconnect(src, dst *core.StoreNode, stream uint64) error {
	d.mu.Lock()
	dl, ok := d.links[dirKey{src, dst, stream}]
	d.mu.Unlock()
	if !ok {
		return fmt.Errorf("netback: no directory link %s->%s/%d: %w", src.Name, dst.Name, stream, ErrDisconnected)
	}
	dl.mu.Lock()
	defer dl.mu.Unlock()
	return d.reset(dl, stream)
}

// Drop tears a wire down for good (the stream moved or the member
// died). Unknown wires are a no-op: the placer drops liberally.
func (d *Directory) Drop(src, dst *core.StoreNode, stream uint64) {
	d.mu.Lock()
	key := dirKey{src, dst, stream}
	dl, ok := d.links[key]
	if ok {
		delete(d.links, key)
	}
	d.mu.Unlock()
	if !ok {
		return
	}
	dl.mu.Lock()
	defer dl.mu.Unlock()
	dl.link.PartitionBoth()
	if dl.serving {
		<-dl.serveDone
		dl.serving = false
	}
	dl.rb.Disconnect()
	dl.link.DrainPending()
	dl.link.Heal()
}

// Wires reports the live wire count (observability for tests and the
// CLI).
func (d *Directory) Wires() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.links)
}

var _ core.PlacerLinks = (*Directory)(nil)
